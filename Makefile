# AdaMBE reproduction — convenience targets.

GO ?= go

.PHONY: all build test test-race bench bench-parallel repro repro-quick fuzz clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# One testing.B benchmark per paper table/figure plus kernel micro-benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the checked-in scheduler perf trajectory (serial AdaMBE vs the
# ParAdaMBE thread sweep, with spawn/steal/inline counters). Fails if any
# parallel count diverges from the serial reference.
bench-parallel:
	$(GO) run ./cmd/mbebench -json BENCH_parallel.json -datasets UL,UF,GH

# Regenerate every table and figure of the paper's evaluation (text tables
# to stdout, CSV series to results/). Takes tens of minutes at full scale.
repro:
	$(GO) run ./cmd/mbebench -exp all -tle 60s -csv results/

repro-quick:
	$(GO) run ./cmd/mbebench -exp all -quick

fuzz:
	$(GO) test ./internal/graph -fuzz FuzzReadKonect -fuzztime 30s
	$(GO) test ./internal/graph -fuzz FuzzReadBinary -fuzztime 30s
	$(GO) test ./internal/core -fuzz FuzzEnumerateAgreement -fuzztime 60s

clean:
	rm -rf results/
