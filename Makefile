# AdaMBE reproduction — convenience targets.

GO ?= go

.PHONY: all build test test-race bench bench-kernels bench-parallel bench-server check-dist repro repro-quick fuzz difftest difftest-extended clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# One testing.B benchmark per paper table/figure plus kernel micro-benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Hot-path kernel micro-benches only: the batched packed-mask kernels at
# word widths 1/2/4 (batched vs per-vertex, fused vs two-pass) and the
# gallop-vs-merge intersection sweep.
bench-kernels:
	$(GO) test -bench='Packed|MaskAndCount|MaskAndThenCount|IntersectGallop' -benchmem ./internal/bitset ./internal/vset

# Regenerate the checked-in scheduler perf trajectory (serial AdaMBE vs the
# ParAdaMBE thread sweep, with spawn/steal/inline counters). Fails if any
# parallel count diverges from the serial reference, and refuses to record
# at GOMAXPROCS=1 — a one-thread "parallel" trajectory can't show scaling.
bench-parallel:
	$(GO) run ./cmd/mbebench -json BENCH_parallel.json -datasets UL,UF,GH

# Regenerate the checked-in daemon load-test trajectory: mbeload sweeps
# concurrent submit→stream→verify clients against an in-process mbed and
# records p50/p95/p99 latency, throughput and shed rate per level (the
# knee row is flagged). The file is schema-gated by `mbeload -check` in
# the CI server-smoke job.
bench-server:
	$(GO) run ./cmd/mbeload -self -dataset UL -levels 1,2,4,8 -jobs 8 -json BENCH_server.json

# Distributed-enumeration smoke (docs/DISTRIBUTED.md): coordinator plus
# three workers on this host, one worker kill -9'd mid-run, global digest
# compared against a direct single-process run; then the dist package's
# in-process cluster tests under the race detector.
check-dist:
	$(GO) build -o mbecoord_bin ./cmd/mbecoord
	$(GO) build -o mbe_bin ./cmd/mbe
	bash scripts/check_dist.sh ./mbecoord_bin ./mbe_bin GH
	$(GO) test -race -count=1 ./internal/dist
	rm -f mbecoord_bin mbe_bin

# Regenerate every table and figure of the paper's evaluation (text tables
# to stdout, CSV series to results/). Takes tens of minutes at full scale.
repro:
	$(GO) run ./cmd/mbebench -exp all -tle 60s -csv results/

repro-quick:
	$(GO) run ./cmd/mbebench -exp all -quick

# Differential + metamorphic correctness sweep (digest equality across all
# engines × orderings × thread counts); the PR-gating leg.
difftest:
	$(GO) test ./internal/difftest -v -run 'TestSweep|TestBBK|TestMetamorphic|TestInjected|TestDup|TestReplay'

# Nightly-scale sweep: larger graphs, fresh seed, race detector. Any
# disagreement is minimized into internal/difftest/testdata/repros/.
difftest-extended:
	MBE_DIFFTEST_EXTENDED=1 MBE_DIFFTEST_SEED=$${MBE_DIFFTEST_SEED:-$$(date +%s)} \
		$(GO) test -race ./internal/difftest -v -timeout 60m -run 'TestExtendedSweep|TestSweep|TestBBK|TestMetamorphic|TestReplay'

fuzz:
	$(GO) test ./internal/graph -fuzz FuzzReadKonect -fuzztime 30s
	$(GO) test ./internal/graph -fuzz FuzzReadBinary -fuzztime 30s
	$(GO) test ./internal/core -fuzz FuzzEnumerateAgreement -fuzztime 60s
	$(GO) test ./internal/difftest -fuzz FuzzBBK -fuzztime 60s

clean:
	rm -rf results/
