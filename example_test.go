package mbe_test

import (
	"fmt"

	mbe "repro"
)

// ExampleEnumerate enumerates the paper's Figure 1 graph.
func ExampleEnumerate() {
	g, _ := mbe.FromEdges(9, 4, []mbe.Edge{
		{U: 0, V: 0}, {U: 1, V: 0}, {U: 2, V: 0}, {U: 4, V: 0}, {U: 5, V: 0}, {U: 6, V: 0}, {U: 7, V: 0},
		{U: 0, V: 1}, {U: 1, V: 1}, {U: 2, V: 1},
		{U: 0, V: 2}, {U: 2, V: 2}, {U: 3, V: 2}, {U: 4, V: 2}, {U: 5, V: 2}, {U: 6, V: 2},
		{U: 0, V: 3}, {U: 3, V: 3}, {U: 4, V: 3}, {U: 5, V: 3}, {U: 6, V: 3}, {U: 8, V: 3},
	})
	res, _ := mbe.Enumerate(g, mbe.Options{})
	fmt.Println(res.Count)
	// Output: 9
}

// ExampleCount shows the one-call convenience API.
func ExampleCount() {
	g := mbe.GenerateUniform(1, 20, 8, 40)
	n, _ := mbe.Count(g)
	fmt.Println(n > 0)
	// Output: true
}

// ExampleMaximumEdgeBiclique finds the densest complete block of the
// Figure 1 graph: ({u0,u4,u5,u6},{v0,v2,v3}), 12 edges.
func ExampleMaximumEdgeBiclique() {
	g, _ := mbe.FromEdges(9, 4, []mbe.Edge{
		{U: 0, V: 0}, {U: 1, V: 0}, {U: 2, V: 0}, {U: 4, V: 0}, {U: 5, V: 0}, {U: 6, V: 0}, {U: 7, V: 0},
		{U: 0, V: 1}, {U: 1, V: 1}, {U: 2, V: 1},
		{U: 0, V: 2}, {U: 2, V: 2}, {U: 3, V: 2}, {U: 4, V: 2}, {U: 5, V: 2}, {U: 6, V: 2},
		{U: 0, V: 3}, {U: 3, V: 3}, {U: 4, V: 3}, {U: 5, V: 3}, {U: 6, V: 3}, {U: 8, V: 3},
	})
	res, _ := mbe.MaximumEdgeBiclique(g, mbe.FindOptions{})
	fmt.Println(res.Best.Edges(), len(res.Best.L), len(res.Best.R))
	// Output: 12 4 3
}

// ExampleEnumerateSizeBounded counts only the large maximal bicliques.
func ExampleEnumerateSizeBounded() {
	g, _ := mbe.FromEdges(9, 4, []mbe.Edge{
		{U: 0, V: 0}, {U: 1, V: 0}, {U: 2, V: 0}, {U: 4, V: 0}, {U: 5, V: 0}, {U: 6, V: 0}, {U: 7, V: 0},
		{U: 0, V: 1}, {U: 1, V: 1}, {U: 2, V: 1},
		{U: 0, V: 2}, {U: 2, V: 2}, {U: 3, V: 2}, {U: 4, V: 2}, {U: 5, V: 2}, {U: 6, V: 2},
		{U: 0, V: 3}, {U: 3, V: 3}, {U: 4, V: 3}, {U: 5, V: 3}, {U: 6, V: 3}, {U: 8, V: 3},
	})
	n, _ := mbe.EnumerateSizeBounded(g, 4, 2, nil, mbe.FindOptions{})
	fmt.Println(n)
	// Output: 3
}
