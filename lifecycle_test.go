package mbe_test

import (
	"context"
	"testing"
	"time"

	mbe "repro"
	"repro/internal/faultinject"
)

// lifecycleGraph carries ~12k maximal bicliques — enough work that mid-run
// stop conditions are always observed before any algorithm finishes.
func lifecycleGraph() *mbe.Graph {
	return mbe.GenerateUniform(5, 300, 120, 4000)
}

// TestStopReasonAllAlgorithms is the public-API lifecycle contract: every
// Algorithm honors both Deadline and Context, reports the matching
// StopReason with a partial monotone count, and leaks no goroutines.
func TestStopReasonAllAlgorithms(t *testing.T) {
	g := lifecycleGraph()
	full := make(map[mbe.Algorithm]int64)
	for _, a := range allAlgorithms() {
		res, err := mbe.Enumerate(g, mbe.Options{Algorithm: a, Threads: 4})
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if res.Count < 5000 {
			t.Fatalf("%s: lifecycle graph too small: %d bicliques", a, res.Count)
		}
		full[a] = res.Count
	}

	t.Run("PreExpiredDeadline", func(t *testing.T) {
		expired := time.Now().Add(-time.Hour)
		for _, a := range allAlgorithms() {
			checkLeaks := faultinject.CheckGoroutines(t)
			res, err := mbe.Enumerate(g, mbe.Options{Algorithm: a, Threads: 4, Deadline: expired})
			if err != nil {
				t.Fatalf("%s: %v", a, err)
			}
			if res.StopReason != mbe.StopDeadline {
				t.Fatalf("%s: StopReason = %v, want StopDeadline", a, res.StopReason)
			}
			if !res.TimedOut {
				t.Fatalf("%s: deprecated TimedOut not mirrored", a)
			}
			if res.Count != 0 {
				t.Fatalf("%s: pre-expired deadline emitted %d bicliques", a, res.Count)
			}
			checkLeaks()
		}
	})

	t.Run("PreCanceledContext", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		for _, a := range allAlgorithms() {
			checkLeaks := faultinject.CheckGoroutines(t)
			res, err := mbe.Enumerate(g, mbe.Options{Algorithm: a, Threads: 4, Context: ctx})
			if err != nil {
				t.Fatalf("%s: %v", a, err)
			}
			if res.StopReason != mbe.StopCanceled {
				t.Fatalf("%s: StopReason = %v, want StopCanceled", a, res.StopReason)
			}
			if res.TimedOut {
				t.Fatalf("%s: TimedOut set on cancellation", a)
			}
			if res.Count != 0 {
				t.Fatalf("%s: pre-canceled run emitted %d bicliques", a, res.Count)
			}
			checkLeaks()
		}
	})

	t.Run("MidRunCancel", func(t *testing.T) {
		for _, a := range allAlgorithms() {
			checkLeaks := faultinject.CheckGoroutines(t)
			ctx, cancel := context.WithCancel(context.Background())
			n := 0
			res, err := mbe.Enumerate(g, mbe.Options{
				Algorithm: a, Threads: 4, Context: ctx,
				OnBiclique: func(L, R []int32) {
					if n++; n == 50 {
						cancel()
					}
				},
			})
			cancel()
			if err != nil {
				t.Fatalf("%s: %v", a, err)
			}
			if res.StopReason != mbe.StopCanceled {
				t.Fatalf("%s: StopReason = %v, want StopCanceled", a, res.StopReason)
			}
			if res.Count < 50 || res.Count >= full[a] {
				t.Fatalf("%s: partial count %d, want in [50, %d)", a, res.Count, full[a])
			}
			checkLeaks()
		}
	})
}

func TestMemoryBudgetThroughAPI(t *testing.T) {
	g := lifecycleGraph()
	for _, a := range allAlgorithms() {
		res, err := mbe.Enumerate(g, mbe.Options{Algorithm: a, Threads: 4, MaxMemoryBytes: 1})
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if res.StopReason != mbe.StopMemoryBudget {
			t.Fatalf("%s: StopReason = %v, want StopMemoryBudget", a, res.StopReason)
		}
	}
}
