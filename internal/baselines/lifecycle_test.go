package baselines

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/gen"
	"repro/internal/graph"
)

// lifecycleGraph has enough maximal bicliques (~12k) that mid-run stop
// conditions are always observed before any baseline finishes.
func lifecycleGraph() *graph.Bipartite {
	return gen.Uniform(5, 300, 120, 4000)
}

func TestParMBEWorkerPanicMidRun(t *testing.T) {
	g := lifecycleGraph()
	full, err := Run(g, ParMBE, Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkLeaks := faultinject.CheckGoroutines(t)
	inj := faultinject.New(11)
	inj.PanicAt(SiteParMBETask, 500)
	res, err := Run(g, ParMBE, Options{Threads: 4, FaultHook: inj.Hook()})
	if !errors.Is(err, core.ErrPanic) {
		t.Fatalf("err = %v, want wrapping core.ErrPanic", err)
	}
	if res.StopReason != core.StopPanic {
		t.Fatalf("StopReason = %v, want StopPanic", res.StopReason)
	}
	if res.Count <= 0 || res.Count >= full.Count {
		t.Fatalf("partial count %d, want in (0, %d)", res.Count, full.Count)
	}
	checkLeaks()
}

func TestGMBEWarpPanicMidRun(t *testing.T) {
	g := lifecycleGraph()
	full, err := Run(g, GMBE, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkLeaks := faultinject.CheckGoroutines(t)
	inj := faultinject.New(13)
	inj.PanicAt(SiteGMBETask, 500)
	res, err := Run(g, GMBE, Options{Threads: 2, FaultHook: inj.Hook()})
	if !errors.Is(err, core.ErrPanic) {
		t.Fatalf("err = %v, want wrapping core.ErrPanic", err)
	}
	if res.StopReason != core.StopPanic {
		t.Fatalf("StopReason = %v, want StopPanic", res.StopReason)
	}
	if res.Count <= 0 || res.Count >= full.Count {
		t.Fatalf("partial count %d, want in (0, %d)", res.Count, full.Count)
	}
	checkLeaks()
}

func TestSerialBaselinePanicInHandlerRecovered(t *testing.T) {
	g := lifecycleGraph()
	for _, alg := range append(Serial(), BBK) {
		n := 0
		res, err := Run(g, alg, Options{
			OnBiclique: func(L, R []int32) {
				n++
				if n == 5 {
					panic("handler boom")
				}
			},
		})
		if !errors.Is(err, core.ErrPanic) {
			t.Fatalf("%s: err = %v, want wrapping core.ErrPanic", alg, err)
		}
		if res.StopReason != core.StopPanic {
			t.Fatalf("%s: StopReason = %v, want StopPanic", alg, res.StopReason)
		}
		if res.Count != 5 {
			t.Fatalf("%s: partial count %d, want 5", alg, res.Count)
		}
	}
}

func TestBaselinesPreCanceledContext(t *testing.T) {
	g := lifecycleGraph()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range allAlgorithms() {
		checkLeaks := faultinject.CheckGoroutines(t)
		res, err := Run(g, alg, Options{Threads: 2, Context: ctx})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.StopReason != core.StopCanceled {
			t.Fatalf("%s: StopReason = %v, want StopCanceled", alg, res.StopReason)
		}
		if res.Count != 0 {
			t.Fatalf("%s: pre-canceled run emitted %d bicliques", alg, res.Count)
		}
		checkLeaks()
	}
}

func TestBaselinesMemoryBudget(t *testing.T) {
	g := lifecycleGraph()
	for _, alg := range allAlgorithms() {
		// 1 byte: the mark-table/representation base charges alone blow it.
		res, err := Run(g, alg, Options{Threads: 2, MaxMemoryBytes: 1})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.StopReason != core.StopMemoryBudget {
			t.Fatalf("%s: StopReason = %v, want StopMemoryBudget", alg, res.StopReason)
		}
		// A generous budget must not trip.
		res, err = Run(g, alg, Options{Threads: 2, MaxMemoryBytes: 1 << 30})
		if err != nil || res.StopReason != core.StopNone {
			t.Fatalf("%s with 1GiB budget: StopReason = %v err = %v", alg, res.StopReason, err)
		}
	}
}

func TestBaselinesDeadlineStopReason(t *testing.T) {
	g := lifecycleGraph()
	expired := time.Now().Add(-time.Hour)
	for _, alg := range allAlgorithms() {
		res, err := Run(g, alg, Options{Threads: 2, Deadline: expired})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.StopReason != core.StopDeadline {
			t.Fatalf("%s: StopReason = %v, want StopDeadline", alg, res.StopReason)
		}
		if !res.TimedOut {
			t.Fatalf("%s: deprecated TimedOut not mirrored", alg)
		}
	}
}

func TestSerialBaselineAllocFailInjection(t *testing.T) {
	g := lifecycleGraph()
	full, err := Run(g, FMBE, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(17)
	inj.FailAllocAt(SiteSerialNode, 500)
	res, err := Run(g, FMBE, Options{FaultHook: inj.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	if res.StopReason != core.StopMemoryBudget {
		t.Fatalf("StopReason = %v, want StopMemoryBudget", res.StopReason)
	}
	if res.Count <= 0 || res.Count >= full.Count {
		t.Fatalf("partial count %d, want in (0, %d)", res.Count, full.Count)
	}
}

func TestBBKAllocFailInjection(t *testing.T) {
	g := lifecycleGraph()
	full, err := Run(g, BBK, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(19)
	inj.FailAllocAt(SiteBBKNode, 500)
	res, err := Run(g, BBK, Options{FaultHook: inj.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	if res.StopReason != core.StopMemoryBudget {
		t.Fatalf("StopReason = %v, want StopMemoryBudget", res.StopReason)
	}
	if res.Count <= 0 || res.Count >= full.Count {
		t.Fatalf("partial count %d, want in (0, %d)", res.Count, full.Count)
	}
}

func TestBBKMidRunCancel(t *testing.T) {
	g := lifecycleGraph()
	full, err := Run(g, BBK, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Count < 100 {
		t.Fatalf("degenerate lifecycle graph: %d bicliques", full.Count)
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := int64(0)
	res, err := Run(g, BBK, Options{
		Context: ctx,
		OnBiclique: func(L, R []int32) {
			if n++; n == 50 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.StopReason != core.StopCanceled {
		t.Fatalf("StopReason = %v, want StopCanceled", res.StopReason)
	}
	if res.Count < 50 || res.Count >= full.Count {
		t.Fatalf("partial count %d, want in [50, %d)", res.Count, full.Count)
	}
}
