package baselines

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/tle"
	"repro/internal/vset"
)

// BBK is the bipartite Bron–Kerbosch enumerator of Baudin, Danisch &
// Magnien (arXiv:2405.04428): branch-and-bound over the V side with an
// explicit excluded set, a maximum-local-degree pivot, and domination
// pruning. Where the paper's AdaMBE family grows one candidate at a time
// in ascending id order, BBK picks the candidate with the largest
// |N(w) ∩ L| at every node, which (a) absorbs the most co-connected
// candidates into R' per branch, and (b) lets every candidate whose
// L-neighborhood is contained in the pivot's be deleted outright — any
// maximal biclique it participates in lives inside the pivot's subtree.
//
// Invariants at a search node (L ⊆ U, R ⊆ V, P, X ⊆ V):
//
//   - every vertex of R is fully connected to L, and (L, R) itself has
//     already been emitted (preorder emission);
//   - every w ∈ P has 0 < |N(w) ∩ L| < |L|, with that local degree
//     cached alongside it — the pivot scan is O(|P|) with no set work;
//   - every x ∈ X has 0 < |N(x) ∩ L| < |L| and was exhausted earlier
//     (at a previous sibling branch or an earlier root), so a branch
//     whose L' is entirely covered by some x ∈ X enumerates nothing new
//     and is killed.
//
// Each maximal biclique (A, B) is emitted exactly once, under the root
// min(B) — the same root partition the core engines use, which is what
// makes the durable spool's checkpoint/resume protocol (root-tagged
// emission, frontier watermark, StartRoot) carry over unchanged.
type bbkEngine struct {
	g        *graph.Bipartite
	handler  core.Handler
	sink     core.Sink
	frontier core.FrontierObserver
	stop     tle.Stopper
	hook     func(site string) error
	count    int64
	curRoot  int32
	ids      vset.Slab[int32]

	// Local metric counters, flushed into Options.Metrics at the end so a
	// recovered panic still reports what was gathered.
	nodesGen    int64
	nodesMax    int64
	nodesNonMax int64
	setInts     int64
}

// bbkGallopFactor matches the core engines' merge-vs-gallop crossover.
const bbkGallopFactor = 16

// faultStep fires the injection hook at site; a returned error is treated
// as a failed allocation and degrades the run like a blown memory budget.
func (e *bbkEngine) faultStep(site string) {
	if e.hook == nil {
		return
	}
	if err := e.hook(site); err != nil {
		e.stop.Fail(tle.MemoryExceeded)
	}
}

// runBBK drives the engine under panic isolation, mirroring runMBEA: a
// panic anywhere in the recursion or a user handler is recovered into an
// error wrapping core.ErrPanic, with the monotone partial count (and any
// metrics gathered) still reported.
func runBBK(g *graph.Bipartite, opts Options, shared *tle.Shared) (res core.Result, err error) {
	e := &bbkEngine{
		g:        g,
		handler:  opts.OnBiclique,
		sink:     opts.Sink,
		frontier: opts.Frontier,
		hook:     opts.FaultHook,
	}
	e.stop = tle.NewStopper(shared, opts.stopConfig())
	e.ids.OnGrow = e.stop.AddMem
	e.stop.AddMem(int64(g.NV()) * 4) // two-hop mark table
	defer func() {
		if m := opts.Metrics; m != nil {
			m.NodesGenerated += e.nodesGen
			m.NodesMaximal += e.nodesMax
			m.NodesNonMaximal += e.nodesNonMax
			m.SetIntersections += e.setInts
		}
		res = core.Result{Count: e.count, StopReason: core.StopReasonOf(e.stop.Reason())}
		if r := recover(); r != nil {
			res.StopReason = core.StopPanic
			err = core.PanicError("BBK", r)
		}
	}()
	e.run(opts.StartRoot, opts.EndRoot)
	return res, nil
}

func (e *bbkEngine) rootDone(vp int32) {
	if e.frontier != nil {
		e.frontier.RootInlineDone(vp)
	}
}

// emit reports one maximal biclique, both sides sorted ascending.
func (e *bbkEngine) emit(L, R []int32) {
	e.count++
	if e.handler != nil {
		e.handler(L, R)
	}
	if e.sink != nil {
		e.sink.Emit(0, e.curRoot, L, R)
	}
}

// intersect writes a ∩ b into dst (capacity = expected result size) and
// returns the count, galloping when the size skew pays for it.
func (e *bbkEngine) intersect(dst, a, b []int32) int {
	e.setInts++
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a)*bbkGallopFactor <= len(b) {
		return vset.IntersectGallop(dst, a, b)
	}
	return vset.IntersectInto(dst, a, b)
}

func (e *bbkEngine) intersectLen(a, b []int32) int {
	e.setInts++
	return vset.IntersectLen(a, b)
}

// run is the root loop: one first-level node per V vertex with
// StartRoot/EndRoot range semantics and the core engines' frontier
// contract — RootInlineDone fires exactly once per root in the range, on
// every skip path, never after a stop.
func (e *bbkEngine) run(startRoot, endRoot int32) {
	g := e.g
	th := newTwoHop(g)
	limit := int32(g.NV())
	if endRoot > 0 {
		limit = endRoot
	}
	for vp := startRoot; vp < limit; vp++ {
		if e.stop.Hit() {
			return
		}
		if g.DegV(vp) == 0 {
			e.rootDone(vp)
			continue
		}
		e.faultStep(SiteBBKNode)
		e.curRoot = vp
		mark := e.ids.Mark()
		e.rootNode(vp, th)
		e.ids.Release(mark)
		if e.stop.Stopped() {
			return
		}
		e.rootDone(vp)
	}
}

// rootNode generates the first-level node for root vp: L = N(vp), the
// excluded set seeded from the two-hop prefix (roots already processed),
// candidates and absorbed vertices from the two-hop suffix.
func (e *bbkEngine) rootNode(vp int32, th *twoHop) {
	g := e.g
	lq := g.NeighborsOfV(vp)
	th.gather(vp, lq)
	e.nodesGen++

	// A prefix vertex fully connected to L means every biclique of this
	// subtree carries that earlier root in R and was already enumerated
	// under it: the whole root is dead.
	xq := e.ids.Alloc(len(th.prefix) + len(th.suffix))
	nx := 0
	for _, x := range th.prefix {
		m := e.intersectLen(lq, g.NeighborsOfV(x))
		if m == len(lq) {
			e.nodesNonMax++
			return
		}
		if m > 0 {
			xq[nx] = x
			nx++
		}
	}

	// Split the (sorted) suffix: fully connected → absorbed into R,
	// partially connected → candidate with its local degree cached.
	rq := e.ids.Alloc(1 + len(th.suffix))
	rq[0] = vp
	nr := 1
	pq := e.ids.Alloc(len(th.suffix))
	dq := e.ids.Alloc(len(th.suffix))
	np := 0
	for _, vc := range th.suffix {
		m := e.intersectLen(lq, g.NeighborsOfV(vc))
		if m == len(lq) {
			rq[nr] = vc
			nr++
		} else { // m > 0 by two-hop membership
			pq[np] = vc
			dq[np] = int32(m)
			np++
		}
	}
	e.nodesMax++
	e.emit(lq, rq[:nr])
	if np > 0 {
		e.search(lq, rq[:nr], pq[:np], dq[:np], xq, nx)
	}
}

// search processes one node: P/D are the candidates with cached local
// degrees (consumed destructively — processed pivots migrate into X's
// spare capacity, pivot-dominated candidates are compacted away), X[:nx]
// the excluded set. X must have capacity nx + len(P).
func (e *bbkEngine) search(L, R, P, D, X []int32, nx int) {
	g := e.g
	for len(P) > 0 {
		if e.stop.Hit() {
			return
		}
		e.faultStep(SiteBBKNode)

		// Pivot: maximum cached local degree, first occurrence, so runs
		// are deterministic for a given graph and ordering.
		pi := 0
		for i := 1; i < len(P); i++ {
			if D[i] > D[pi] {
				pi = i
			}
		}
		p := P[pi]

		mark := e.ids.Mark()
		lp := e.ids.Alloc(int(D[pi]))
		lp = lp[:e.intersect(lp, L, g.NeighborsOfV(p))]
		e.nodesGen++

		// Bound: an excluded vertex covering all of L' proves every
		// biclique below was emitted under an earlier branch or root.
		// Survivors with a non-empty intersection carry into the child.
		alive := true
		xq := e.ids.Alloc(nx + len(P) - 1)
		nxq := 0
		for k := 0; k < nx; k++ {
			m := e.intersectLen(lp, g.NeighborsOfV(X[k]))
			if m == len(lp) {
				alive = false
				break
			}
			if m > 0 {
				xq[nxq] = X[k]
				nxq++
			}
		}

		if alive {
			// One pass over P classifies each candidate against L'
			// (absorbed / child candidate / disjoint) and simultaneously
			// compacts this node's P: a candidate whose L-neighborhood is
			// contained in the pivot's (c == D[i]) is dominated — every
			// maximal biclique it joins lies in the pivot's subtree, and
			// p ∈ X subsumes its exclusion checks — so it is deleted.
			rq := e.ids.Alloc(len(R) + len(P))
			adds := e.ids.Alloc(len(P))
			pq := e.ids.Alloc(len(P) - 1)
			dq := e.ids.Alloc(len(P) - 1)
			na, np, keep := 0, 0, 0
			for i := 0; i < len(P); i++ {
				if i == pi {
					adds[na] = p
					na++
					continue
				}
				w := P[i]
				c := int32(e.intersectLen(lp, g.NeighborsOfV(w)))
				if c == int32(len(lp)) {
					adds[na] = w
					na++
				} else if c > 0 {
					pq[np] = w
					dq[np] = c
					np++
				}
				if c < D[i] {
					P[keep] = w
					D[keep] = D[i]
					keep++
				}
			}
			// adds is ascending (a subsequence of the ascending P), R is
			// ascending and disjoint from it: merge keeps R' sorted.
			nr := mergeAscending(rq, R, adds[:na])
			e.nodesMax++
			e.emit(lp, rq[:nr])
			if np > 0 {
				e.search(lp, rq[:nr], pq[:np], dq[:np], xq, nxq)
			}
			P, D = P[:keep], D[:keep]
		} else {
			e.nodesNonMax++
			copy(P[pi:], P[pi+1:])
			copy(D[pi:], D[pi+1:])
			P, D = P[:len(P)-1], D[:len(D)-1]
		}
		e.ids.Release(mark)

		// The pivot is exhausted: future siblings must not re-emit
		// anything containing it.
		X[nx] = p
		nx++
	}
}

// mergeAscending writes the union of two sorted, disjoint ascending lists
// into dst and returns the length written.
func mergeAscending(dst, a, b []int32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			dst[n] = a[i]
			i++
		} else {
			dst[n] = b[j]
			j++
		}
		n++
	}
	n += copy(dst[n:], a[i:])
	n += copy(dst[n:], b[j:])
	return n
}
