package baselines

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func allAlgorithms() []Algorithm {
	return All() // FMBE, PMBE, ooMBEA, ParMBE, GMBE, BBK
}

func collect(t *testing.T, g *graph.Bipartite, alg Algorithm, opts Options) ([]string, core.Result) {
	t.Helper()
	var keys []string
	opts.OnBiclique = func(L, R []int32) {
		keys = append(keys, core.BicliqueKey(L, R))
	}
	res, err := Run(g, alg, opts)
	if err != nil {
		t.Fatalf("%s: %v", alg, err)
	}
	sort.Strings(keys)
	return keys, res
}

func TestPaperExampleAllBaselines(t *testing.T) {
	g := graph.PaperExample()
	want := core.BruteForceKeys(g)
	for _, alg := range allAlgorithms() {
		got, res := collect(t, g, alg, Options{Threads: 3})
		if res.Count != int64(len(want)) {
			t.Fatalf("%s: count %d, want %d", alg, res.Count, len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: biclique sets differ at %d: %q vs %q", alg, i, got[i], want[i])
			}
		}
	}
}

func TestCrossValidationAgainstOracle(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed*13 + 1))
		nu := 1 + rng.Intn(35)
		nv := 1 + rng.Intn(12)
		m := rng.Intn(nu*nv + 1)
		g := gen.Uniform(seed, nu, nv, m)
		want := core.BruteForceKeys(g)
		for _, alg := range allAlgorithms() {
			got, res := collect(t, g, alg, Options{Threads: 2})
			if res.Count != int64(len(want)) {
				t.Fatalf("seed %d (nu=%d nv=%d m=%d) %s: count %d, want %d",
					seed, nu, nv, m, alg, res.Count, len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d %s: sets differ", seed, alg)
				}
			}
		}
	}
}

func TestBaselinesMatchAdaMBEOnMediumGraphs(t *testing.T) {
	graphs := map[string]*graph.Bipartite{
		"uniform":     gen.Uniform(5, 200, 60, 1500),
		"powerlaw":    gen.PowerLaw(6, 300, 80, 2000, 1.4, 1.4),
		"affiliation": gen.Affiliation(7, gen.AffiliationConfig{NU: 150, NV: 60, Communities: 25, MeanU: 6, MeanV: 4, Density: 0.9, NoiseEdges: 200}),
	}
	for name, g := range graphs {
		ref, err := core.Enumerate(g, core.Options{Variant: core.Ada})
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range allAlgorithms() {
			res, err := Run(g, alg, Options{Threads: 4})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, alg, err)
			}
			if res.Count != ref.Count {
				t.Fatalf("%s/%s: count %d, AdaMBE %d", name, alg, res.Count, ref.Count)
			}
		}
	}
}

func TestBaselinesEmptyGraphs(t *testing.T) {
	empty, _ := graph.FromEdges(0, 0, nil)
	edgeless, _ := graph.FromEdges(4, 3, nil)
	for _, g := range []*graph.Bipartite{empty, edgeless} {
		for _, alg := range allAlgorithms() {
			res, err := Run(g, alg, Options{Threads: 2})
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			if res.Count != 0 {
				t.Fatalf("%s: found %d bicliques in edgeless graph", alg, res.Count)
			}
		}
	}
}

func TestBaselinesDeadline(t *testing.T) {
	g := gen.Affiliation(9, gen.AffiliationConfig{NU: 300, NV: 100, Communities: 60, MeanU: 8, MeanV: 6, Density: 0.95})
	full, err := Run(g, FMBE, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Count == 0 {
		t.Fatal("degenerate test graph")
	}
	for _, alg := range allAlgorithms() {
		res, err := Run(g, alg, Options{Threads: 2, Deadline: time.Now().Add(-time.Second)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.TimedOut {
			t.Fatalf("%s: expired deadline not reported", alg)
		}
		if res.Count > full.Count {
			t.Fatalf("%s: partial count %d > full %d", alg, res.Count, full.Count)
		}
	}
}

func TestUnknownAlgorithmRejected(t *testing.T) {
	if _, err := Run(graph.PaperExample(), Algorithm("NOPE"), Options{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestSerialParallelLists(t *testing.T) {
	if len(Serial()) != 3 || len(Parallel()) != 2 {
		t.Fatalf("algorithm lists wrong: %v / %v", Serial(), Parallel())
	}
	all := All()
	if len(all) != 6 || all[len(all)-1] != BBK {
		t.Fatalf("All() must list the paper groups then BBK: %v", all)
	}
}

func TestOOMBEAReportsOriginalIDs(t *testing.T) {
	// ooMBEA permutes V internally; reported R ids must be in g's space.
	g := gen.Uniform(21, 40, 15, 150)
	var bad bool
	opts := Options{OnBiclique: func(L, R []int32) {
		for _, v := range R {
			if v < 0 || int(v) >= g.NV() {
				bad = true
			}
		}
		for _, u := range L {
			for _, v := range R {
				if !g.HasEdge(u, v) {
					bad = true
				}
			}
		}
	}}
	if _, err := Run(g, OOMBEA, opts); err != nil {
		t.Fatal(err)
	}
	if bad {
		t.Fatal("ooMBEA reported ids not valid in the original graph")
	}
}

func TestParallelAlgorithmsThreadCountInvariance(t *testing.T) {
	g := gen.PowerLaw(31, 250, 70, 1800, 1.3, 1.5)
	ref, err := Run(g, ParMBE, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Parallel() {
		for _, threads := range []int{1, 2, 8} {
			res, err := Run(g, alg, Options{Threads: threads})
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != ref.Count {
				t.Fatalf("%s threads=%d: count %d, want %d", alg, threads, res.Count, ref.Count)
			}
		}
	}
}
