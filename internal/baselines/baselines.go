// Package baselines reimplements the competitor MBE algorithms the paper
// evaluates against (§IV-A), from scratch and at the level of their core
// algorithmic ideas:
//
//   - FMBE  — plain MBEA-style backtracking on global adjacency lists with
//     an explicit excluded set; no ordering, no caching. Lowest memory,
//     slowest runtime (the paper's Fig. 8 profile).
//   - PMBE  — pivot-style enumeration: per-node candidate re-ordering by
//     local degree plus containment-based skipping of duplicate nodes.
//   - ooMBEA — unilateral-core (UC) global ordering computed up front (its
//     runtime includes that overhead, as the paper notes for Fig. 12),
//     then candidate-set backtracking.
//   - ParMBE — shared-memory parallel MBE using a hash-table graph
//     representation (§II-B) and per-vertex task parallelism.
//   - GMBE   — the authors' GPU algorithm. No GPU exists here, so this is
//     GMBE-sim: the same two-level decomposition (one first-level subtree
//     per "virtual warp") with per-thread pre-allocated workspaces, run on
//     an oversubscribed goroutine pool. It reproduces GMBE's two
//     signatures — large pre-allocated memory and strength on
//     many-small-subtree datasets — without claiming GPU bandwidth.
//
// Every implementation is cross-validated against the brute-force oracle
// and the core engines in the tests.
package baselines

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/tle"
)

// Algorithm names a competitor implementation.
type Algorithm string

// The competitor algorithms evaluated in the paper.
const (
	FMBE   Algorithm = "FMBE"
	PMBE   Algorithm = "PMBE"
	OOMBEA Algorithm = "ooMBEA"
	ParMBE Algorithm = "ParMBE"
	GMBE   Algorithm = "GMBE"
	// BBK is not in the paper's evaluation: it is the pivot-based
	// bipartite Bron–Kerbosch of Baudin et al. (arXiv:2405.04428), added
	// as a post-paper serial engine; see bbk.go. Unlike the other
	// competitors it supports the durable emission path
	// (Options.Sink/Frontier/StartRoot).
	BBK Algorithm = "BBK"
)

// Serial lists the serial competitors (Fig. 8a left group, Fig. 13).
func Serial() []Algorithm { return []Algorithm{FMBE, PMBE, OOMBEA} }

// Parallel lists the parallel competitors (Fig. 8a right group, Fig. 14).
func Parallel() []Algorithm { return []Algorithm{ParMBE, GMBE} }

// All lists every baseline algorithm, paper serial group first, then the
// parallel group, then the post-paper additions. The differential harness
// iterates this to cover the full engine matrix.
func All() []Algorithm { return append(append(Serial(), Parallel()...), BBK) }

// Options configures a baseline run.
type Options struct {
	// Threads is used by ParMBE and GMBE; serial algorithms ignore it.
	Threads int
	// OnBiclique receives every maximal biclique (slices reused; parallel
	// algorithms may call it concurrently — Run serializes user callbacks).
	OnBiclique core.Handler
	// Deadline, when set, stops the run early with
	// Result.StopReason == core.StopDeadline.
	Deadline time.Time
	// Context, if non-nil, stops the run when canceled; partial counts are
	// returned with StopReason == core.StopCanceled.
	Context context.Context
	// MaxMemoryBytes, if positive, is the same soft engine-tracked memory
	// budget core.Options exposes: slab scratch, the ParMBE hash
	// representation, GMBE warp workspaces and per-worker mark tables count
	// against it, and exceeding it stops the run with
	// StopReason == core.StopMemoryBudget.
	MaxMemoryBytes int64
	// FaultHook, if non-nil, is invoked at the baselines' instrumentation
	// sites (the Site* constants in this package). Same contract as
	// core.Options.FaultHook: an error simulates an allocation failure, a
	// panic exercises the panic-isolation path. Test-only.
	FaultHook func(site string) error
	// Metrics, if non-nil, gathers node and set-intersection counters.
	// Only BBK reports metrics; the paper competitors ignore it (their
	// instrumentation lives in the figures they were built to reproduce).
	Metrics *core.Metrics
	// Sink, Frontier, StartRoot and EndRoot attach the durable emission
	// path (root-tagged emission, frontier watermark, resume-from-watermark,
	// bounded root ranges) with the same contract as the core engines'
	// core.Options fields. BBK only: it shares the core engines' root
	// partition (a maximal biclique is emitted under root min(R)), so spool
	// checkpoints and root-range shards are exact for it too. The paper
	// competitors ignore all four.
	Sink      core.Sink
	Frontier  core.FrontierObserver
	StartRoot int32
	EndRoot   int32
}

// Instrumentation sites where Options.FaultHook fires.
const (
	// SiteSerialNode fires per candidate expansion in the shared serial
	// skeleton (FMBE, PMBE, ooMBEA).
	SiteSerialNode = "baselines/serial-node"
	// SiteParMBETask fires at every ParMBE task start and per candidate
	// inside its recursion.
	SiteParMBETask = "baselines/parmbe-task"
	// SiteGMBETask fires at every GMBE-sim task start and per candidate
	// expansion inside a warp.
	SiteGMBETask = "baselines/gmbe-task"
	// SiteBBKNode fires per root and per pivot branch in BBK.
	SiteBBKNode = "baselines/bbk-node"
)

// stopConfig translates Options into the shared stopper conditions.
func (o *Options) stopConfig() tle.Config {
	return tle.Config{
		Deadline:       o.Deadline,
		Context:        o.Context,
		MaxMemoryBytes: o.MaxMemoryBytes,
	}
}

// Run executes the named competitor algorithm on g. g's V side is used in
// its natural order except for ooMBEA, which applies its own UC ordering
// internally (ids reported to the handler are mapped back to g's ids).
//
// Lifecycle guarantees match core.Enumerate: deadline, context cancellation
// and the memory budget stop the run with partial monotone counts and the
// matching Result.StopReason, and a panic in any algorithm or user handler
// is recovered into an error wrapping core.ErrPanic with no goroutine
// leaked.
func Run(g *graph.Bipartite, alg Algorithm, opts Options) (core.Result, error) {
	if opts.StartRoot < 0 {
		return core.Result{}, fmt.Errorf("%w: negative StartRoot %d", core.ErrBadOptions, opts.StartRoot)
	}
	if err := core.ValidateRootRange(opts.StartRoot, opts.EndRoot, g.NV()); err != nil {
		return core.Result{}, err
	}
	start := time.Now()
	shared := &tle.Shared{}
	var res core.Result
	var err error
	switch alg {
	case FMBE:
		res, err = runMBEA(g, mbeaConfig{}, opts, shared)
	case PMBE:
		res, err = runMBEA(g, mbeaConfig{sortPerNode: true, skipDuplicateNodes: true}, opts, shared)
	case OOMBEA:
		perm := order.Permutation(g, order.UnilateralCore, 0)
		og, oerr := g.PermuteV(perm)
		if oerr != nil {
			return core.Result{}, fmt.Errorf("baselines: ooMBEA ordering: %w", oerr)
		}
		inner := opts
		if opts.OnBiclique != nil {
			h := opts.OnBiclique
			buf := make([]int32, 0, 64)
			inner.OnBiclique = func(L, R []int32) {
				buf = buf[:0]
				for _, v := range R {
					buf = append(buf, perm[v])
				}
				h(L, buf)
			}
		}
		res, err = runMBEA(og, mbeaConfig{}, inner, shared)
	case ParMBE:
		res, err = runParMBE(g, opts, shared)
	case GMBE:
		res, err = runGMBESim(g, opts, shared)
	case BBK:
		res, err = runBBK(g, opts, shared)
	default:
		return core.Result{}, fmt.Errorf("baselines: unknown algorithm %q", alg)
	}
	res.TimedOut = res.StopReason == core.StopDeadline
	res.Elapsed = time.Since(start)
	return res, err
}
