package baselines

import (
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/tle"
	"repro/internal/vset"
)

// mbeaConfig selects the per-algorithm twists layered on the shared
// candidate-set backtracking skeleton (the common core of FMBE, PMBE and
// ooMBEA). All of them work on the original adjacency lists — none keeps
// the computational-subgraph caches that define AdaMBE.
type mbeaConfig struct {
	// sortPerNode re-sorts the candidate suffix of every node by ascending
	// local degree |N(v) ∩ L| before expansion (PMBE's per-node ordering).
	sortPerNode bool
	// skipDuplicateNodes skips a pivot whose generated L equals the
	// previous pivot's L at the same node (PMBE's containment pruning for
	// duplicate nodes; always sound — such a node fails the maximality
	// check anyway).
	skipDuplicateNodes bool
}

// mbeaEngine is the shared serial competitor skeleton: Algorithm-1-style
// backtracking with an explicit excluded set Q for the maximality check,
// all set intersections against global adjacency.
type mbeaEngine struct {
	g       *graph.Bipartite
	cfg     mbeaConfig
	handler core.Handler
	stop    tle.Stopper
	hook    func(site string) error
	count   int64
	ids     vset.Slab[int32]
}

// faultStep fires the injection hook at site; a returned error is treated
// as a failed allocation and degrades the run like a blown memory budget.
func (e *mbeaEngine) faultStep(site string) {
	if e.hook == nil {
		return
	}
	if err := e.hook(site); err != nil {
		e.stop.Fail(tle.MemoryExceeded)
	}
}

// runMBEA drives the serial skeleton under panic isolation: a panic
// anywhere in the recursion or a user handler is recovered into an error
// wrapping core.ErrPanic, with the count gathered so far still reported.
func runMBEA(g *graph.Bipartite, cfg mbeaConfig, opts Options, shared *tle.Shared) (res core.Result, err error) {
	e := &mbeaEngine{g: g, cfg: cfg, handler: opts.OnBiclique, hook: opts.FaultHook}
	e.stop = tle.NewStopper(shared, opts.stopConfig())
	e.ids.OnGrow = e.stop.AddMem
	e.stop.AddMem(int64(g.NV()) * 4) // two-hop mark table
	defer func() {
		res = core.Result{Count: e.count, StopReason: core.StopReasonOf(e.stop.Reason())}
		if r := recover(); r != nil {
			res.StopReason = core.StopPanic
			err = core.PanicError("serial baseline", r)
		}
	}()
	th := newTwoHop(g)
	for vp := int32(0); vp < int32(g.NV()); vp++ {
		if g.DegV(vp) == 0 {
			continue
		}
		if e.stop.Hit() {
			break
		}
		e.faultStep(SiteSerialNode)
		lq := g.NeighborsOfV(vp) // L' = U ∩ N(v')
		th.gather(vp, lq)

		// Maximality of the first-level node against the traversed prefix.
		maximal := true
		mark := e.ids.Mark()
		qNew := e.ids.Alloc(len(th.prefix))
		nq := 0
		for _, x := range th.prefix {
			m := vset.IntersectLen(lq, g.NeighborsOfV(x))
			if m == len(lq) {
				maximal = false
				break
			}
			if m > 0 {
				qNew[nq] = x
				nq++
			}
		}
		if maximal {
			rq := e.ids.Alloc(1 + len(th.suffix))
			rq[0] = vp
			nr := 1
			pq := e.ids.Alloc(len(th.suffix))
			np := 0
			for _, vc := range th.suffix {
				m := vset.IntersectLen(lq, g.NeighborsOfV(vc))
				if m == len(lq) {
					rq[nr] = vc
					nr++
				} else { // m > 0 by two-hop membership
					pq[np] = vc
					np++
				}
			}
			e.count++
			if e.handler != nil {
				e.handler(lq, rq[:nr])
			}
			if np > 0 {
				e.search(lq, rq[:nr], pq[:np], qNew[:nq])
			}
		}
		e.ids.Release(mark)
	}
	return res, nil
}

// search processes node (L, R, P, Q): P candidates, Q excluded. Both hold
// V ids; every vertex in Q has a non-empty intersection with L.
func (e *mbeaEngine) search(L, R, P, Q []int32) {
	if e.stop.Stopped() {
		return
	}
	g := e.g
	if e.cfg.sortPerNode && len(P) > 1 {
		// PMBE-style: ascending local degree. Computed fresh per node
		// (this recomputation is part of the algorithm's cost profile).
		deg := make(map[int32]int, len(P))
		for _, v := range P {
			deg[v] = vset.IntersectLen(L, g.NeighborsOfV(v))
		}
		sort.SliceStable(P, func(i, j int) bool { return deg[P[i]] < deg[P[j]] })
	}

	var prevL []int32
	for i := 0; i < len(P); i++ {
		if e.stop.Hit() {
			return
		}
		e.faultStep(SiteSerialNode)
		vp := P[i]
		mark := e.ids.Mark()

		nvp := g.NeighborsOfV(vp)
		lq := e.ids.Alloc(min(len(L), len(nvp)))
		n := vset.IntersectInto(lq, L, nvp)
		e.ids.ShrinkLast(len(lq), n)
		lq = lq[:n]
		if n == 0 { // root-level candidate with no surviving neighbors
			e.ids.Release(mark)
			continue
		}
		if e.cfg.skipDuplicateNodes && prevL != nil && vset.Equal(lq, prevL) {
			// Identical L as the previous pivot: the previous pivot is now
			// excluded and fully connected to lq, so this node would fail
			// the maximality check. Skip the generation work entirely;
			// vp still joins the excluded prefix for later pivots.
			e.ids.Release(mark)
			continue
		}

		// Maximality against Q ∪ already-processed prefix of P, building
		// the child's Q as we go.
		maximal := true
		qCap := len(Q) + i
		qNew := e.ids.Alloc(qCap)
		nq := 0
		checkOne := func(x int32) bool {
			m := vset.IntersectLen(lq, g.NeighborsOfV(x))
			if m == len(lq) {
				return false
			}
			if m > 0 {
				qNew[nq] = x
				nq++
			}
			return true
		}
		for k := 0; k < len(Q) && maximal; k++ {
			maximal = checkOne(Q[k])
		}
		for k := 0; k < i && maximal; k++ {
			maximal = checkOne(P[k])
		}

		if maximal {
			rem := len(P) - i - 1
			rq := e.ids.Alloc(len(R) + 1 + rem)
			nr := copy(rq, R)
			rq[nr] = vp
			nr++
			pq := e.ids.Alloc(rem)
			np := 0
			for j := i + 1; j < len(P); j++ {
				vc := P[j]
				m := vset.IntersectLen(lq, g.NeighborsOfV(vc))
				if m == len(lq) {
					rq[nr] = vc
					nr++
				} else if m > 0 {
					pq[np] = vc
					np++
				}
			}
			e.count++
			if e.handler != nil {
				e.handler(lq, rq[:nr])
			}
			if np > 0 {
				e.search(lq, rq[:nr], pq[:np], qNew[:nq])
			}
		}
		if e.cfg.skipDuplicateNodes {
			// lq dies at the Release below; retain a copy for comparison.
			prevL = append(prevL[:0], lq...)
		}
		e.ids.Release(mark)
	}
}
