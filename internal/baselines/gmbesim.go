package baselines

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/tle"
	"repro/internal/vset"
)

// gmbeOversubscription is how many virtual warps run per requested thread.
// GMBE launches hundreds of thousands of GPU threads; the simulation
// oversubscribes goroutines so small first-level subtrees keep every core
// busy, which is exactly the regime where GMBE shines in Fig. 8a.
const gmbeOversubscription = 16

// runGMBESim simulates the authors' GPU algorithm (GMBE, SC'23) on the CPU
// — the DESIGN.md substitution for the A100. Faithful elements:
//
//   - two-level decomposition: each first-level subtree is one task,
//     processed by a pool of "virtual warps";
//   - membership tests against L via a per-warp |U|-bit bitmap (GMBE's
//     bitmap-over-L representation);
//   - per-warp worst-case workspace pre-allocated up front — the reason
//     GMBE's memory dwarfs every CPU algorithm in Fig. 8b.
//
// Not simulated: GPU memory bandwidth and warp-level SIMD; the simulation
// makes no absolute-speed claims.
//
// Lifecycle: each root task runs under panic recovery; a panic trips the
// run-wide stop state so every warp breaks out of the work loop, and the
// first panic is reported as the run's error with counts still merged.
func runGMBESim(g *graph.Bipartite, opts Options, shared *tle.Shared) (core.Result, error) {
	threads := opts.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	warps := threads * gmbeOversubscription

	handler := opts.OnBiclique
	if handler != nil {
		var mu sync.Mutex
		inner := handler
		handler = func(L, R []int32) {
			mu.Lock()
			defer mu.Unlock()
			inner(L, R)
		}
	}

	cand := make([]int32, 0, g.NV())
	for v := int32(0); v < int32(g.NV()); v++ {
		if g.DegV(v) > 0 {
			cand = append(cand, v)
		}
	}

	var total atomic.Int64
	var panicOnce sync.Once
	var panicErr error
	var next atomic.Int64
	var wg sync.WaitGroup

	runTask := func(e *gmbeWarp, vp int32) {
		defer func() {
			if r := recover(); r != nil {
				panicOnce.Do(func() { panicErr = core.PanicError("GMBE warp", r) })
				shared.Trip(tle.Aborted)
			}
		}()
		e.faultStep(SiteGMBETask)
		if e.stop.Stopped() {
			return
		}
		e.rootTask(vp)
	}

	for w := 0; w < warps; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := newGMBEWarp(g, handler, opts, shared)
			for {
				i := int(next.Add(1) - 1)
				// Forced poll at the task boundary: a pre-expired deadline
				// or canceled context stops the warp before any work, and a
				// sibling trip (panic, budget) ends the loop promptly.
				if i >= len(cand) || e.stop.Poll() {
					break
				}
				runTask(e, cand[i])
			}
			total.Add(e.count)
		}()
	}
	wg.Wait()

	res := core.Result{Count: total.Load(), StopReason: core.StopReasonOf(shared.Reason())}
	if panicErr != nil {
		res.StopReason = core.StopPanic
		return res, panicErr
	}
	return res, nil
}

// gmbeWarp is one virtual warp with its pre-allocated workspace.
type gmbeWarp struct {
	g       *graph.Bipartite
	handler core.Handler
	stop    tle.Stopper
	hook    func(site string) error
	count   int64

	lBits *bitset.Set // |U|-bit membership bitmap for the current L
	ids   vset.Slab[int32]
	th    *twoHop
}

// faultStep fires the injection hook at site; an error degrades the run
// like a blown memory budget.
func (e *gmbeWarp) faultStep(site string) {
	if e.hook == nil {
		return
	}
	if err := e.hook(site); err != nil {
		e.stop.Fail(tle.MemoryExceeded)
	}
}

func newGMBEWarp(g *graph.Bipartite, handler core.Handler, opts Options, shared *tle.Shared) *gmbeWarp {
	w := &gmbeWarp{
		g:       g,
		handler: handler,
		hook:    opts.FaultHook,
		lBits:   bitset.New(g.NU()),
		th:      newTwoHop(g),
	}
	w.stop = tle.NewStopper(shared, opts.stopConfig())
	w.ids.OnGrow = w.stop.AddMem
	// The bitmap and mark table are part of each warp's pre-allocated
	// footprint; slab reservations below are charged through OnGrow.
	w.stop.AddMem(int64(g.NU())/8 + int64(g.NV())*4)
	// GMBE pre-allocates each thread's worst-case node storage up front;
	// mirror that by reserving slab space for the widest possible node
	// (candidates + excluded + R all bounded by |V|, L by Δ(V)).
	maxDeg := 0
	for v := int32(0); v < int32(g.NV()); v++ {
		if d := g.DegV(v); d > maxDeg {
			maxDeg = d
		}
	}
	reserve := 4*g.NV() + 2*maxDeg
	m := w.ids.Mark()
	_ = w.ids.Alloc(reserve)
	w.ids.Release(m)
	return w
}

// intersectBitmap writes {u ∈ N(v) : u ∈ L} into dst using the L bitmap
// (GMBE's membership-test intersection; cost O(deg(v)), independent of
// |L|). Output is sorted because N(v) is.
func (e *gmbeWarp) intersectBitmap(dst []int32, v int32) int {
	n := 0
	for _, u := range e.g.NeighborsOfV(v) {
		if e.lBits.Contains(int(u)) {
			dst[n] = u
			n++
		}
	}
	return n
}

func (e *gmbeWarp) rootTask(vp int32) {
	mark := e.ids.Mark()
	defer e.ids.Release(mark)
	lq := e.ids.Alloc(e.g.DegV(vp))
	copy(lq, e.g.NeighborsOfV(vp))

	// Candidates and excluded prefix come from the two-hop neighborhood.
	e.th.gather(vp, lq)
	suffix := e.ids.Alloc(len(e.th.suffix))
	copy(suffix, e.th.suffix)
	prefix := e.ids.Alloc(len(e.th.prefix))
	copy(prefix, e.th.prefix)
	e.search(lq, nil, suffix, prefix, []int32{vp})
}

// search expands one node. L is the current left set; pending holds the
// vertex whose biclique this node represents (R ∪ pending after full
// classification). P/Q semantics as elsewhere; all intersections use the
// L-membership bitmap.
func (e *gmbeWarp) search(L, R, P, Q []int32, pending []int32) {
	if e.stop.Stopped() {
		return
	}
	// Load L into the bitmap for this node's classifications.
	e.lBits.AddSlice(L)
	defer e.lBits.ClearSlice(L)

	maximal := true
	mark := e.ids.Mark()
	defer e.ids.Release(mark)
	qNew := e.ids.Alloc(len(Q))
	nq := 0
	buf := e.ids.Alloc(len(L))
	for _, x := range Q {
		m := e.intersectBitmap(buf, x)
		if m == len(L) {
			maximal = false
			break
		}
		if m > 0 {
			qNew[nq] = x
			nq++
		}
	}
	if !maximal {
		return
	}
	rq := e.ids.Alloc(len(R) + len(pending) + len(P))
	nr := copy(rq, R)
	nr += copy(rq[nr:], pending)
	pq := e.ids.Alloc(len(P))
	np := 0
	for _, vc := range P {
		m := e.intersectBitmap(buf, vc)
		if m == len(L) {
			rq[nr] = vc
			nr++
		} else if m > 0 {
			pq[np] = vc
			np++
		}
	}
	e.count++
	if e.handler != nil {
		e.handler(L, rq[:nr])
	}

	// Expand children: traverse each remaining candidate.
	for i := 0; i < np; i++ {
		if e.stop.Hit() {
			return
		}
		e.faultStep(SiteGMBETask)
		vp := pq[i]
		cmark := e.ids.Mark()
		lq := e.ids.Alloc(len(L))
		n := e.intersectBitmap(lq, vp)
		e.ids.ShrinkLast(len(lq), n)
		lq = lq[:n] // never empty: vp was classified partial

		// Child excluded set: surviving Q plus this node's traversed
		// prefix of pq.
		qChild := e.ids.Alloc(nq + i)
		k := copy(qChild, qNew[:nq])
		k += copy(qChild[k:], pq[:i])

		e.lBits.ClearSlice(L) // child loads its own L view
		e.search(lq, rq[:nr], pq[i+1:np], qChild[:k], []int32{vp})
		e.lBits.AddSlice(L)
		e.ids.Release(cmark)
	}
}
