package baselines

import (
	"slices"

	"repro/internal/graph"
)

// twoHop gathers the distinct two-hop V-neighbors of a root candidate,
// split around its id — the same root optimization the core engines use
// (see core.rootScratch): generating a first-level node by scanning all of
// V costs O(|V|²) intersections across the root loop, while the vertices
// that can actually join the node all live in ⋃_{u∈N(v')} N(u).
// Not safe for concurrent use; each worker owns one.
type twoHop struct {
	g      *graph.Bipartite
	mark   []int32
	epoch  int32
	suffix []int32 // two-hop ids > v' (future candidates), sorted
	prefix []int32 // two-hop ids < v' (already traversed)
}

func newTwoHop(g *graph.Bipartite) *twoHop {
	t := &twoHop{g: g, mark: make([]int32, g.NV())}
	for i := range t.mark {
		t.mark[i] = -1
	}
	return t
}

func (t *twoHop) gather(vp int32, lq []int32) {
	t.epoch++
	if t.epoch < 0 {
		for i := range t.mark {
			t.mark[i] = -1
		}
		t.epoch = 0
	}
	t.suffix = t.suffix[:0]
	t.prefix = t.prefix[:0]
	for _, u := range lq {
		for _, w := range t.g.NeighborsOfU(u) {
			if w == vp || t.mark[w] == t.epoch {
				continue
			}
			t.mark[w] = t.epoch
			if w > vp {
				t.suffix = append(t.suffix, w)
			} else {
				t.prefix = append(t.prefix, w)
			}
		}
	}
	slices.Sort(t.suffix)
}
