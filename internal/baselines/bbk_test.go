package baselines

import (
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// recordingSink captures the durable emission stream (worker, root, copy
// of both sides) for assertions.
type recordingSink struct {
	workers []int
	roots   []int32
	keys    []string
}

func (s *recordingSink) Emit(worker int, root int32, L, R []int32) {
	s.workers = append(s.workers, worker)
	s.roots = append(s.roots, root)
	s.keys = append(s.keys, core.BicliqueKey(L, R))
}

// recordingFrontier counts RootInlineDone calls per root.
type recordingFrontier struct {
	done map[int32]int
}

func (f *recordingFrontier) RootInlineDone(root int32) { f.done[root]++ }
func (f *recordingFrontier) TaskSpawned(int32)         {}
func (f *recordingFrontier) TaskDone(int32)            {}
func (f *recordingFrontier) TaskDiscarded(int32)       {}

// TestBBKRootPartition pins the property the spool checkpoint protocol
// depends on: every biclique is emitted under root min(R), by worker 0,
// and the frontier marks every root done exactly once.
func TestBBKRootPartition(t *testing.T) {
	g := gen.Uniform(33, 80, 40, 600)
	sink := &recordingSink{}
	fr := &recordingFrontier{done: map[int32]int{}}
	minR := make([]int32, 0, 16)
	res, err := Run(g, BBK, Options{
		Sink:     sink,
		Frontier: fr,
		OnBiclique: func(L, R []int32) {
			minR = append(minR, R[0])
			for i := 1; i < len(R); i++ {
				if R[i] <= R[i-1] {
					t.Fatal("R side not sorted ascending")
				}
			}
			for i := 1; i < len(L); i++ {
				if L[i] <= L[i-1] {
					t.Fatal("L side not sorted ascending")
				}
			}
		},
	})
	if err != nil || res.StopReason != core.StopNone {
		t.Fatalf("run: %v %v", res.StopReason, err)
	}
	if int64(len(sink.roots)) != res.Count {
		t.Fatalf("sink saw %d emissions, count %d", len(sink.roots), res.Count)
	}
	for i, root := range sink.roots {
		if sink.workers[i] != 0 {
			t.Fatalf("emission %d from worker %d, BBK is serial", i, sink.workers[i])
		}
		if root != minR[i] {
			t.Fatalf("emission %d tagged root %d, want min(R) = %d", i, root, minR[i])
		}
	}
	for v := int32(0); v < int32(g.NV()); v++ {
		if fr.done[v] != 1 {
			t.Fatalf("root %d marked done %d times, want exactly once", v, fr.done[v])
		}
	}
}

// TestBBKStartRoot pins resume semantics: a run started at watermark w
// emits exactly the full run's bicliques whose root tag is ≥ w.
func TestBBKStartRoot(t *testing.T) {
	g := gen.PowerLaw(34, 90, 45, 700, 1.5, 1.7)
	full := &recordingSink{}
	if _, err := Run(g, BBK, Options{Sink: full}); err != nil {
		t.Fatal(err)
	}
	w := int32(g.NV() / 3)
	want := make([]string, 0, len(full.keys))
	for i, root := range full.roots {
		if root >= w {
			want = append(want, full.keys[i])
		}
	}
	part := &recordingSink{}
	fr := &recordingFrontier{done: map[int32]int{}}
	if _, err := Run(g, BBK, Options{Sink: part, Frontier: fr, StartRoot: w}); err != nil {
		t.Fatal(err)
	}
	sort.Strings(want)
	got := append([]string(nil), part.keys...)
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("StartRoot=%d emitted %d bicliques, want %d", w, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("StartRoot=%d biclique sets differ at %d", w, i)
		}
	}
	for v := int32(0); v < int32(g.NV()); v++ {
		wantDone := 0
		if v >= w {
			wantDone = 1
		}
		if fr.done[v] != wantDone {
			t.Fatalf("root %d marked done %d times, want %d", v, fr.done[v], wantDone)
		}
	}
}

// TestBBKMetrics checks the node accounting: every emission is a maximal
// node, the split sums, and set work is recorded.
func TestBBKMetrics(t *testing.T) {
	g := gen.Affiliation(35, gen.AffiliationConfig{NU: 60, NV: 30, Communities: 8, MeanU: 5, MeanV: 4, Density: 0.9, NoiseEdges: 60})
	var m core.Metrics
	res, err := Run(g, BBK, Options{Metrics: &m})
	if err != nil {
		t.Fatal(err)
	}
	if m.NodesMaximal != res.Count {
		t.Fatalf("NodesMaximal %d != count %d", m.NodesMaximal, res.Count)
	}
	if m.NodesGenerated != m.NodesMaximal+m.NodesNonMaximal {
		t.Fatalf("node split doesn't sum: %d != %d + %d", m.NodesGenerated, m.NodesMaximal, m.NodesNonMaximal)
	}
	if m.SetIntersections == 0 {
		t.Fatal("no set intersections recorded")
	}
}

// TestBBKPivotFixtures drives the pivot choice through its two extremes —
// a dense near-biclique (huge local degrees, heavy absorption and
// domination) and a star-heavy skew (hub pivots absorb whole stars) — and
// anchors both to the brute-force oracle.
func TestBBKPivotFixtures(t *testing.T) {
	graphs := map[string]*graph.Bipartite{
		"dense":      gen.Uniform(402, 24, 16, 300),
		"star-heavy": gen.PowerLaw(403, 120, 20, 400, 1.1, 2.8),
	}
	for name, g := range graphs {
		want := core.BruteForceKeys(g)
		got, res := collect(t, g, BBK, Options{})
		if res.Count != int64(len(want)) {
			t.Fatalf("%s: count %d, want %d", name, res.Count, len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: biclique sets differ at %d", name, i)
			}
		}
	}
}
