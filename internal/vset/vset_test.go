package vset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func sorted(xs []uint8) []int32 {
	set := map[int32]bool{}
	for _, x := range xs {
		set[int32(x)] = true
	}
	out := make([]int32, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestIntersectIntoBasic(t *testing.T) {
	a := []int32{1, 3, 5, 7, 9}
	b := []int32{3, 4, 5, 9, 11}
	dst := make([]int32, 5)
	n := IntersectInto(dst, a, b)
	want := []int32{3, 5, 9}
	if n != 3 || !Equal(dst[:n], want) {
		t.Fatalf("IntersectInto = %v (%d)", dst[:n], n)
	}
}

func TestIntersectIntoEmpty(t *testing.T) {
	dst := make([]int32, 4)
	if n := IntersectInto(dst, nil, []int32{1, 2}); n != 0 {
		t.Fatalf("empty ∩ x = %d", n)
	}
	if n := IntersectInto(dst, []int32{1, 2}, []int32{3, 4}); n != 0 {
		t.Fatalf("disjoint = %d", n)
	}
}

// IntersectInto documents that dst may alias either input.
func TestIntersectIntoAliasing(t *testing.T) {
	a := []int32{1, 2, 3, 4, 5, 6}
	b := []int32{2, 4, 6, 8}
	n := IntersectInto(a, a, b) // dst aliases the longer input
	if !Equal(a[:n], []int32{2, 4, 6}) {
		t.Fatalf("alias long: %v", a[:n])
	}
	c := []int32{2, 4, 6, 8}
	d := []int32{1, 2, 3, 4, 5, 6}
	n = IntersectInto(c, c, d) // dst aliases the shorter input
	if !Equal(c[:n], []int32{2, 4, 6}) {
		t.Fatalf("alias short: %v", c[:n])
	}
}

func TestQuickIntersectAgainstModel(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := sorted(xs), sorted(ys)
		dst := make([]int32, min(len(a), len(b)))
		n := IntersectInto(dst, a, b)
		if n != IntersectLen(a, b) {
			return false
		}
		inB := map[int32]bool{}
		for _, y := range b {
			inB[y] = true
		}
		var want []int32
		for _, x := range a {
			if inB[x] {
				want = append(want, x)
			}
		}
		return Equal(dst[:n], want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntersectGallopMatchesMerge(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := sorted(xs), sorted(ys)
		if len(a) > len(b) {
			a, b = b, a
		}
		d1 := make([]int32, len(a))
		d2 := make([]int32, len(a))
		n1 := IntersectInto(d1, a, b)
		n2 := IntersectGallop(d2, a, b)
		return n1 == n2 && Equal(d1[:n1], d2[:n2])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectGallopEdges(t *testing.T) {
	dst := make([]int32, 4)
	if n := IntersectGallop(dst, nil, []int32{1, 2}); n != 0 {
		t.Fatal("empty small")
	}
	if n := IntersectGallop(dst, []int32{5}, nil); n != 0 {
		t.Fatal("empty large")
	}
	if n := IntersectGallop(dst, []int32{0, 9}, []int32{9}); n != 1 || dst[0] != 9 {
		t.Fatalf("tail element: n=%d", n)
	}
	if n := IntersectGallop(dst, []int32{3, 4}, []int32{1, 2}); n != 0 {
		t.Fatal("past-end small elements")
	}
}

func TestQuickIsSubsetDefinition(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := sorted(xs), sorted(ys)
		return IsSubset(a, b) == (IntersectLen(a, b) == len(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEqual(t *testing.T) {
	if !Equal(nil, nil) || !Equal([]int32{1}, []int32{1}) {
		t.Fatal("Equal false negative")
	}
	if Equal([]int32{1}, []int32{2}) || Equal([]int32{1}, []int32{1, 2}) {
		t.Fatal("Equal false positive")
	}
}

func TestSlabStackDiscipline(t *testing.T) {
	var s Slab[int32]
	m0 := s.Mark()
	a := s.Alloc(10)
	for i := range a {
		a[i] = int32(i)
	}
	m1 := s.Mark()
	b := s.Alloc(20)
	for i := range b {
		b[i] = 100
	}
	s.Release(m1)
	c := s.Alloc(20) // reuses b's space
	_ = c
	for i := range a {
		if a[i] != int32(i) {
			t.Fatal("release corrupted earlier allocation")
		}
	}
	s.Release(m0)
	d := s.Alloc(5)
	_ = d
}

func TestSlabLargeAllocationsSpanBlocks(t *testing.T) {
	var s Slab[int32]
	sizes := []int{10, slabMinBlock, 3, slabMinBlock * 4, 7}
	ptrs := make([][]int32, len(sizes))
	for i, n := range sizes {
		ptrs[i] = s.Alloc(n)
		for j := range ptrs[i] {
			ptrs[i][j] = int32(i)
		}
	}
	for i, p := range ptrs {
		for _, v := range p {
			if v != int32(i) {
				t.Fatalf("allocation %d corrupted", i)
			}
		}
	}
}

func TestSlabShrinkLast(t *testing.T) {
	var s Slab[int32]
	a := s.Alloc(100)
	s.ShrinkLast(100, 10)
	b := s.Alloc(10)
	// b must start where a[10] would have been.
	b[0] = 42
	if a[10] != 42 {
		t.Fatal("ShrinkLast did not reclaim the tail")
	}
}

func TestSlabReuseAfterRelease(t *testing.T) {
	var s Slab[int32]
	m := s.Mark()
	total := 0
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		n := 1 + rng.Intn(200)
		buf := s.Alloc(n)
		total += len(buf)
		if i%10 == 9 {
			s.Release(m)
		}
	}
	if total == 0 {
		t.Fatal("no allocations")
	}
	// After full release the slab reuses block 0.
	s.Release(m)
	if got := s.Alloc(1); got == nil {
		t.Fatal("alloc failed after release")
	}
}
