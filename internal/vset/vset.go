// Package vset provides sorted-vertex-set kernels (merge intersections,
// subset tests) and a stack allocator shared by all enumeration engines.
// Slices are int32 vertex ids, sorted ascending and duplicate-free.
package vset

import "unsafe"

// IntersectInto writes a ∩ b into dst and returns the number of elements
// written. dst must have capacity ≥ min(len(a), len(b)); dst may alias a
// or b (the write position never overtakes either read position).
func IntersectInto(dst, a, b []int32) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		switch {
		case av == bv:
			dst[n] = av
			n++
			i++
			j++
		case av < bv:
			i++
		default:
			j++
		}
	}
	return n
}

// IntersectGallop writes small ∩ large into dst by binary-searching each
// element of small in large, and returns the count. Both inputs sorted
// duplicate-free; intended for |small| ≪ |large| where the merge's
// O(|small|+|large|) scan wastes most of its work.
//
// The probe after the gallop is the branch-free half-interval form: the
// search interval only ever shrinks by `half`, and the single data-
// dependent update (`base += half`) is a conditional add the compiler
// lowers to a CMOV instead of a predicted branch. On the adversarial
// near-uniform neighborhoods of the L ∩ N(v) hot path, mispredicted
// binary-search branches — not memory — dominate the classic form.
func IntersectGallop(dst, small, large []int32) int {
	n := 0
	lo := 0
	for _, x := range small {
		// Galloping upper bound within large[lo:]: exponential steps until
		// large[hi-1] >= x, giving an interval [lo, hi) that holds the
		// lower bound of x.
		step := 1
		hi := lo
		for hi < len(large) && large[hi] < x {
			lo = hi + 1
			hi += step
			step <<= 1
		}
		if hi > len(large) {
			hi = len(large)
		}
		// Branch-free lower bound in [lo, hi]: invariant — the lower bound
		// lies in [base, base+span]. Each iteration halves span with one
		// comparison and a conditional add; the final one-step fixup
		// resolves the two-element ambiguity the loop leaves.
		if span := hi - lo; span > 0 {
			base := lo
			for span > 1 {
				half := span >> 1
				if large[base+half-1] < x {
					base += half
				}
				span -= half
			}
			if large[base] < x {
				base++
			}
			lo = base
		}
		if lo < len(large) && large[lo] == x {
			dst[n] = x
			n++
			lo++
		}
		if lo >= len(large) {
			break
		}
	}
	return n
}

// IntersectLen returns |a ∩ b|.
func IntersectLen(a, b []int32) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		switch {
		case av == bv:
			n++
			i++
			j++
		case av < bv:
			i++
		default:
			j++
		}
	}
	return n
}

// IsSubset reports whether a ⊆ b.
func IsSubset(a, b []int32) bool {
	if len(a) > len(b) {
		return false
	}
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}

// Equal reports whether a and b hold identical elements.
func Equal(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Slab is a stack allocator for per-node scratch slices: mark on node
// entry, release when the node's subtree completes. Blocks are retained
// across releases so steady-state enumeration does not allocate.
type Slab[T any] struct {
	blocks [][]T
	bi     int // current block index
	off    int // offset in current block

	// OnGrow, if non-nil, is told the size in bytes of every new block the
	// slab retains. Blocks are never returned, so the sum of reported sizes
	// is the slab's live footprint — the hook behind the engines' soft
	// memory budget. Set it before the first Alloc.
	OnGrow func(bytes int64)
}

const slabMinBlock = 1 << 14

// Mark is a position in a Slab that Release can rewind to.
type Mark struct{ bi, off int }

// Mark returns the current position.
func (s *Slab[T]) Mark() Mark { return Mark{s.bi, s.off} }

// Release rewinds the slab to a previous Mark, freeing everything
// allocated since.
func (s *Slab[T]) Release(m Mark) { s.bi, s.off = m.bi, m.off }

// Alloc returns an uninitialized slice of length n carved from the slab.
func (s *Slab[T]) Alloc(n int) []T {
	if len(s.blocks) == 0 {
		s.blocks = append(s.blocks, make([]T, slabMinBlock))
		s.grew(slabMinBlock)
	}
	for s.off+n > len(s.blocks[s.bi]) {
		if s.bi+1 < len(s.blocks) {
			s.bi++
			s.off = 0
			continue
		}
		size := len(s.blocks[s.bi]) * 2
		for size < n {
			size *= 2
		}
		s.blocks = append(s.blocks, make([]T, size))
		s.grew(size)
		s.bi++
		s.off = 0
	}
	b := s.blocks[s.bi][s.off : s.off+n : s.off+n]
	s.off += n
	return b
}

// ShrinkLast gives back the unused tail of the most recent Alloc: the
// caller allocated `allocated`, used `used`, and the slab reclaims the
// difference. Only valid immediately after the corresponding Alloc.
func (s *Slab[T]) ShrinkLast(allocated, used int) {
	s.off -= allocated - used
}

func (s *Slab[T]) grew(elems int) {
	if s.OnGrow != nil {
		var zero T
		s.OnGrow(int64(elems) * int64(unsafe.Sizeof(zero)))
	}
}
