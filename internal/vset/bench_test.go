package vset

import (
	"math/rand"
	"testing"
)

func randSorted(rng *rand.Rand, n, space int) []int32 {
	seen := map[int32]bool{}
	out := make([]int32, 0, n)
	for len(out) < n {
		x := int32(rng.Intn(space))
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// The merge-intersection kernel at the three shapes the enumeration hits:
// balanced lists, skewed lists, and tiny-vs-large.
func BenchmarkIntersect(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	shapes := []struct {
		name   string
		na, nb int
	}{
		{"64x64", 64, 64},
		{"64x1024", 64, 1024},
		{"1024x1024", 1024, 1024},
		{"8x4096", 8, 4096},
	}
	for _, s := range shapes {
		a := randSorted(rng, s.na, 1<<16)
		c := randSorted(rng, s.nb, 1<<16)
		dst := make([]int32, min(s.na, s.nb))
		b.Run("Into/"+s.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				IntersectInto(dst, a, c)
			}
		})
		b.Run("Len/"+s.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				IntersectLen(a, c)
			}
		})
	}
}

// BenchmarkIntersectGallop isolates the gallop kernel (small-vs-large with
// the branch-free binary probe) at increasing skew; the merge kernel at the
// same shapes is the baseline the adaptive cutoff switches away from.
func BenchmarkIntersectGallop(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	shapes := []struct {
		name   string
		na, nb int
	}{
		{"8x1024", 8, 1024},
		{"8x16384", 8, 16384},
		{"64x16384", 64, 16384},
	}
	for _, s := range shapes {
		a := randSorted(rng, s.na, 1<<20)
		c := randSorted(rng, s.nb, 1<<20)
		dst := make([]int32, s.na)
		b.Run("Gallop/"+s.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				IntersectGallop(dst, a, c)
			}
		})
		b.Run("Merge/"+s.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				IntersectInto(dst, a, c)
			}
		})
	}
}

func BenchmarkSlabAllocRelease(b *testing.B) {
	var s Slab[int32]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := s.Mark()
		for j := 0; j < 32; j++ {
			buf := s.Alloc(64)
			buf[0] = int32(j)
		}
		s.Release(m)
	}
}

// BenchmarkSlabVsMake quantifies the design choice DESIGN.md calls out:
// slab-stack allocation versus per-node make for the enumeration scratch.
func BenchmarkSlabVsMake(b *testing.B) {
	b.Run("slab", func(b *testing.B) {
		var s Slab[int32]
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := s.Mark()
			buf := s.Alloc(256)
			buf[255] = 1
			s.Release(m)
		}
	})
	b.Run("make", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf := make([]int32, 256)
			buf[255] = 1
			_ = buf
		}
	})
}
