// Package faultinject provides seeded, deterministic fault injection for
// the enumeration engines' run-lifecycle tests. Engines expose a FaultHook
// option that is invoked at named instrumentation sites ("core/node",
// "baselines/parmbe-task", …); an Injector arms those sites with panics,
// delays, or simulated allocation failures keyed to the site's visit
// count, so "panic a ParAdaMBE worker on the 100th node it expands" is a
// reproducible scenario even under parallel execution.
//
// The package also ships a goroutine-leak checker (CheckGoroutines) used
// by the lifecycle tests to prove that worker pools never leak, whatever
// faults fire mid-run.
package faultinject

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Fault is what an armed site does when its trigger fires.
type Fault uint8

const (
	// FaultPanic panics with a *PanicValue.
	FaultPanic Fault = iota
	// FaultDelay sleeps for the armed duration.
	FaultDelay
	// FaultAllocFail returns ErrAllocFail; engines degrade exactly as if
	// the run's memory budget were exhausted.
	FaultAllocFail
	// FaultSkip returns ErrSkip. Harness-level sites (the differential
	// tester's emission wrapper) interpret it as "silently drop this
	// event" — a seeded correctness mutation rather than a crash.
	FaultSkip
	// FaultDup returns ErrDup: the harness replays the event twice,
	// simulating a double emission.
	FaultDup
)

// ErrAllocFail is the simulated allocation failure returned by an armed
// FaultAllocFail site.
var ErrAllocFail = errors.New("faultinject: simulated allocation failure")

// ErrSkip is returned by an armed FaultSkip site: the caller should drop
// the event that reached the site.
var ErrSkip = errors.New("faultinject: drop this event")

// ErrDup is returned by an armed FaultDup site: the caller should process
// the event that reached the site twice.
var ErrDup = errors.New("faultinject: duplicate this event")

// PanicValue is the value an injected panic carries, so recovery paths and
// tests can recognize synthetic faults.
type PanicValue struct {
	Site  string
	Visit uint64
}

func (p *PanicValue) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s (visit %d)", p.Site, p.Visit)
}

// rule arms one site. A rule fires on visit number `at`, and then — when
// every > 0 — on every `every`-th visit after that.
type rule struct {
	kind   Fault
	at     uint64
	every  uint64
	delay  time.Duration
	visits atomic.Uint64
}

func (r *rule) fires(n uint64) bool {
	if n < r.at {
		return false
	}
	if n == r.at {
		return true
	}
	return r.every > 0 && (n-r.at)%r.every == 0
}

// Injector is a deterministic fault plan keyed by site name. Arm sites
// first (PanicAt, DelayEvery, FailAllocAt, …), then install Hook() into
// the engine options; arming after the run has started is a data race and
// is not supported. Visit counters are atomic, so one Injector may serve
// any number of worker goroutines.
type Injector struct {
	seed  uint64
	rules map[string]*rule
}

// New returns an empty Injector whose seeded helpers (PanicWithin) derive
// trigger points from seed.
func New(seed int64) *Injector {
	return &Injector{seed: uint64(seed), rules: make(map[string]*rule)}
}

func (in *Injector) arm(site string, r *rule) {
	in.rules[site] = r
}

// PanicAt arms site to panic on exactly its visit-th invocation (1-based).
func (in *Injector) PanicAt(site string, visit uint64) {
	in.arm(site, &rule{kind: FaultPanic, at: max(visit, 1)})
}

// PanicWithin arms site to panic at a seed-derived visit in [1, window].
func (in *Injector) PanicWithin(site string, window uint64) {
	if window == 0 {
		window = 1
	}
	in.arm(site, &rule{kind: FaultPanic, at: 1 + in.mix(site)%window})
}

// DelayEvery arms site to sleep d on every every-th invocation.
func (in *Injector) DelayEvery(site string, every uint64, d time.Duration) {
	if every == 0 {
		every = 1
	}
	in.arm(site, &rule{kind: FaultDelay, at: every, every: every, delay: d})
}

// FailAllocAt arms site to report a simulated allocation failure on its
// visit-th invocation and every invocation after it (a blown budget does
// not un-blow).
func (in *Injector) FailAllocAt(site string, visit uint64) {
	in.arm(site, &rule{kind: FaultAllocFail, at: max(visit, 1), every: 1})
}

// SkipAt arms site to return ErrSkip on exactly its visit-th invocation
// (1-based): one event is silently dropped.
func (in *Injector) SkipAt(site string, visit uint64) {
	in.arm(site, &rule{kind: FaultSkip, at: max(visit, 1)})
}

// DupAt arms site to return ErrDup on exactly its visit-th invocation
// (1-based): one event is processed twice.
func (in *Injector) DupAt(site string, visit uint64) {
	in.arm(site, &rule{kind: FaultDup, at: max(visit, 1)})
}

// Visits returns how many times site has been reached so far.
func (in *Injector) Visits(site string) uint64 {
	if r, ok := in.rules[site]; ok {
		return r.visits.Load()
	}
	return 0
}

// Hook returns the function to install as an engine FaultHook. Unarmed
// sites return nil immediately; armed sites count the visit and fire their
// fault when triggered.
func (in *Injector) Hook() func(site string) error {
	return func(site string) error {
		r, ok := in.rules[site]
		if !ok {
			return nil
		}
		n := r.visits.Add(1)
		if !r.fires(n) {
			return nil
		}
		switch r.kind {
		case FaultPanic:
			panic(&PanicValue{Site: site, Visit: n})
		case FaultDelay:
			time.Sleep(r.delay)
			return nil
		case FaultAllocFail:
			return fmt.Errorf("%w (site %s, visit %d)", ErrAllocFail, site, n)
		case FaultSkip:
			return ErrSkip
		case FaultDup:
			return ErrDup
		}
		return nil
	}
}

// mix hashes the site name into the seed (splitmix64 over FNV-mixed
// bytes) so different sites armed from one seed get independent triggers.
func (in *Injector) mix(site string) uint64 {
	x := in.seed ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(site); i++ {
		x = (x ^ uint64(site[i])) * 0xbf58476d1ce4e5b9
	}
	x ^= x >> 30
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
