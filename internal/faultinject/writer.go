package faultinject

import (
	"errors"
	"io"
	"sync/atomic"
)

// ErrInjectedWrite is the default error a FailingWriter returns once its
// fail point is reached.
var ErrInjectedWrite = errors.New("faultinject: injected write failure")

// FailingWriter wraps an io.Writer and fails deterministically once a
// byte offset is reached — the storage-side counterpart of the engine
// fault sites. It simulates the two ways a spool write dies in the
// field:
//
//   - error mode (Short = false): the write that would cross FailAt
//     writes nothing and returns Err — a full disk or EIO surfaced by
//     the kernel before anything hit the file;
//   - short-write/torn-frame mode (Short = true): the crossing write
//     persists only the bytes up to FailAt and then reports Err — a
//     crash or power loss mid-frame, leaving a torn tail the reader
//     must recover from. The partial bytes deliberately reach the
//     underlying file so the corruption is real, not simulated.
//
// After the fail point every Write returns Err: a dead disk does not
// come back. The zero offset (FailAt = 0) fails on the first write.
// Safe for concurrent use; exactly one write performs the transition.
type FailingWriter struct {
	W      io.Writer
	FailAt int64 // bytes allowed through before failing
	Short  bool  // persist the partial prefix of the crossing write
	Err    error // defaults to ErrInjectedWrite

	n      atomic.Int64
	failed atomic.Bool
}

func (f *FailingWriter) err() error {
	if f.Err != nil {
		return f.Err
	}
	return ErrInjectedWrite
}

// Written reports how many bytes passed through to the underlying
// writer.
func (f *FailingWriter) Written() int64 { return f.n.Load() }

// Failed reports whether the fail point has been reached.
func (f *FailingWriter) Failed() bool { return f.failed.Load() }

func (f *FailingWriter) Write(p []byte) (int, error) {
	if f.failed.Load() {
		return 0, f.err()
	}
	end := f.n.Add(int64(len(p)))
	if end <= f.FailAt {
		return f.W.Write(p)
	}
	// This write crosses the fail point: exactly one writer wins the
	// transition (concurrent callers that lose just see the dead state).
	f.failed.Store(true)
	keep := f.FailAt - (end - int64(len(p)))
	if keep < 0 {
		keep = 0
	}
	if f.Short && keep > 0 {
		n, werr := f.W.Write(p[:keep])
		if werr != nil {
			return n, werr
		}
		return n, f.err()
	}
	return 0, f.err()
}
