package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestUnarmedSiteIsTransparent(t *testing.T) {
	hook := New(1).Hook()
	for i := 0; i < 100; i++ {
		if err := hook("core/node"); err != nil {
			t.Fatalf("unarmed site returned %v", err)
		}
	}
}

func TestPanicAtFiresOnExactVisit(t *testing.T) {
	in := New(1)
	in.PanicAt("s", 3)
	hook := in.Hook()
	for i := 1; i <= 2; i++ {
		if err := hook("s"); err != nil {
			t.Fatalf("visit %d: %v", i, err)
		}
	}
	defer func() {
		r := recover()
		pv, ok := r.(*PanicValue)
		if !ok {
			t.Fatalf("recovered %T (%v), want *PanicValue", r, r)
		}
		if pv.Site != "s" || pv.Visit != 3 {
			t.Fatalf("PanicValue = %+v, want site s visit 3", pv)
		}
		if got := pv.String(); got == "" {
			t.Fatal("empty PanicValue string")
		}
		if in.Visits("s") != 3 {
			t.Fatalf("Visits = %d, want 3", in.Visits("s"))
		}
	}()
	hook("s")
	t.Fatal("visit 3 did not panic")
}

func TestPanicWithinIsSeedDeterministic(t *testing.T) {
	fireAt := func(seed int64) uint64 {
		in := New(seed)
		in.PanicWithin("s", 50)
		hook := in.Hook()
		for i := uint64(1); i <= 50; i++ {
			fired := func() (fired bool) {
				defer func() {
					if recover() != nil {
						fired = true
					}
				}()
				hook("s")
				return false
			}()
			if fired {
				return i
			}
		}
		t.Fatal("PanicWithin(50) never fired in 50 visits")
		return 0
	}
	a, b := fireAt(7), fireAt(7)
	if a != b {
		t.Fatalf("same seed fired at different visits: %d vs %d", a, b)
	}
	if a < 1 || a > 50 {
		t.Fatalf("fired outside window: %d", a)
	}
}

func TestFailAllocAtStaysFailed(t *testing.T) {
	in := New(1)
	in.FailAllocAt("s", 2)
	hook := in.Hook()
	if err := hook("s"); err != nil {
		t.Fatalf("visit 1: %v", err)
	}
	for i := 2; i <= 5; i++ {
		if err := hook("s"); !errors.Is(err, ErrAllocFail) {
			t.Fatalf("visit %d: err = %v, want ErrAllocFail", i, err)
		}
	}
}

func TestDelayEvery(t *testing.T) {
	in := New(1)
	in.DelayEvery("s", 2, time.Millisecond)
	hook := in.Hook()
	start := time.Now()
	for i := 0; i < 4; i++ { // fires on visits 2 and 4
		if err := hook("s"); err != nil {
			t.Fatalf("visit %d: %v", i+1, err)
		}
	}
	if el := time.Since(start); el < 2*time.Millisecond {
		t.Fatalf("4 visits with DelayEvery(2, 1ms) took only %v", el)
	}
	if in.Visits("s") != 4 {
		t.Fatalf("Visits = %d, want 4", in.Visits("s"))
	}
}

func TestLeakCheckPassesOnCleanFunction(t *testing.T) {
	done := CheckGoroutines(t)
	ch := make(chan struct{})
	go func() { close(ch) }()
	<-ch
	done()
}

func TestSkipAtFiresExactlyOnce(t *testing.T) {
	in := New(1)
	in.SkipAt("s", 3)
	hook := in.Hook()
	for i := 1; i <= 6; i++ {
		err := hook("s")
		if i == 3 {
			if !errors.Is(err, ErrSkip) {
				t.Fatalf("visit %d: err = %v, want ErrSkip", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("visit %d: err = %v, want nil", i, err)
		}
	}
}

func TestDupAtFiresExactlyOnce(t *testing.T) {
	in := New(1)
	in.DupAt("s", 1)
	hook := in.Hook()
	if err := hook("s"); !errors.Is(err, ErrDup) {
		t.Fatalf("visit 1: err = %v, want ErrDup", err)
	}
	if err := hook("s"); err != nil {
		t.Fatalf("visit 2: err = %v, want nil", err)
	}
}
