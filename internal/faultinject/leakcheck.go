package faultinject

import (
	"runtime"
	"testing"
	"time"
)

// leakGrace is how long CheckGoroutines waits for stragglers: worker pools
// are expected to wind down promptly once their run returns, but the
// runtime needs a few scheduling quanta to retire exited goroutines.
const leakGrace = 5 * time.Second

// CheckGoroutines snapshots the goroutine count and returns a function to
// defer at the top of a test: it fails the test if, after a grace period,
// more goroutines are alive than at the snapshot — the signature of an
// enumeration worker leaked by a panic or a stuck queue. Tests using it
// must not run in parallel with tests that spawn background goroutines.
func CheckGoroutines(t testing.TB) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(leakGrace)
		var now int
		for {
			now = runtime.NumGoroutine()
			if now <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d goroutines before, %d still alive after %v\n%s",
			before, now, leakGrace, buf[:n])
	}
}
