package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFromEdgesBasic(t *testing.T) {
	g, err := FromEdges(3, 2, []Edge{{0, 0}, {1, 0}, {2, 1}, {0, 1}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NU() != 3 || g.NV() != 2 {
		t.Fatalf("sides = %d,%d", g.NU(), g.NV())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4 (dup collapsed)", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	wantV0 := []int32{0, 1}
	if got := g.NeighborsOfV(0); len(got) != 2 || got[0] != wantV0[0] || got[1] != wantV0[1] {
		t.Fatalf("N(v0) = %v", got)
	}
	if got := g.NeighborsOfU(0); len(got) != 2 {
		t.Fatalf("N(u0) = %v", got)
	}
	if !g.HasEdge(2, 1) || g.HasEdge(2, 0) {
		t.Fatal("HasEdge wrong")
	}
}

func TestFromEdgesRejectsOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, 2, []Edge{{2, 0}}); err == nil {
		t.Fatal("accepted u out of range")
	}
	if _, err := FromEdges(2, 2, []Edge{{0, -1}}); err == nil {
		t.Fatal("accepted negative v")
	}
	if _, err := FromEdges(-1, 2, nil); err == nil {
		t.Fatal("accepted negative side size")
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := FromEdges(0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 || g.NU() != 0 || g.NV() != 0 {
		t.Fatal("empty graph not empty")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIsolatedVertices(t *testing.T) {
	g, err := FromEdges(5, 4, []Edge{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.DegV(3) != 0 || g.DegU(4) != 0 {
		t.Fatal("isolated vertex has degree")
	}
	s := Summarize(g)
	if s.Isolated != 4+3 {
		t.Fatalf("Isolated = %d, want 7", s.Isolated)
	}
}

func TestPaperExample(t *testing.T) {
	g := PaperExample()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NU() != 9 || g.NV() != 4 || g.NumEdges() != 7+3+6+6 {
		t.Fatalf("paper graph stats wrong: %v", Summarize(g))
	}
	// The Figure 1 biclique ({u0,u4,u5,u6},{v0,v2,v3}) must be complete.
	for _, u := range []int32{0, 4, 5, 6} {
		for _, v := range []int32{0, 2, 3} {
			if !g.HasEdge(u, v) {
				t.Fatalf("missing edge (%d,%d)", u, v)
			}
		}
	}
}

func TestSwappedAndOrient(t *testing.T) {
	g := PaperExample() // |U|=9 > |V|=4
	sw := g.Swapped()
	if sw.NU() != 4 || sw.NV() != 9 {
		t.Fatalf("Swapped sides = %d,%d", sw.NU(), sw.NV())
	}
	if err := sw.Validate(); err != nil {
		t.Fatal(err)
	}
	// Edge mirroring.
	if !sw.HasEdge(2, 3) { // (v2, u3) since sides swapped
		t.Fatal("swap lost edge")
	}
	if got := g.Orient(); got != g {
		t.Fatal("Orient copied an already-oriented graph")
	}
	if got := sw.Orient(); got.NV() != 4 {
		t.Fatal("Orient failed to swap")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := PaperExample()
	es := g.Edges()
	g2, err := FromEdges(g.NU(), g.NV(), es)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, g2) {
		t.Fatal("Edges round trip changed the graph")
	}
}

func sameGraph(a, b *Bipartite) bool {
	if a.NU() != b.NU() || a.NV() != b.NV() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := int32(0); v < int32(a.NV()); v++ {
		ra, rb := a.NeighborsOfV(v), b.NeighborsOfV(v)
		if len(ra) != len(rb) {
			return false
		}
		for i := range ra {
			if ra[i] != rb[i] {
				return false
			}
		}
	}
	return true
}

func TestPermuteV(t *testing.T) {
	g := PaperExample()
	perm := []int32{3, 1, 0, 2} // new v0 = old v3, etc.
	ng, err := g.PermuteV(perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := ng.Validate(); err != nil {
		t.Fatal(err)
	}
	for newV := int32(0); newV < 4; newV++ {
		old := perm[newV]
		ra, rb := g.NeighborsOfV(old), ng.NeighborsOfV(newV)
		if len(ra) != len(rb) {
			t.Fatalf("row %d length changed", newV)
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("row %d contents changed", newV)
			}
		}
	}
	// U-side must mirror the relabeled V ids.
	for u := int32(0); u < int32(g.NU()); u++ {
		for _, v := range ng.NeighborsOfU(u) {
			if !ng.HasEdge(u, v) {
				t.Fatalf("U-side edge (%d,%d) not mirrored", u, v)
			}
		}
	}
}

func TestPermuteVRejectsBadPerms(t *testing.T) {
	g := PaperExample()
	if _, err := g.PermuteV([]int32{0, 1}); err == nil {
		t.Fatal("accepted short permutation")
	}
	if _, err := g.PermuteV([]int32{0, 1, 2, 9}); err == nil {
		t.Fatal("accepted out-of-range permutation")
	}
	if _, err := g.PermuteV([]int32{0, 1, 2, 2}); err == nil {
		t.Fatal("accepted repeated permutation entry")
	}
}

func TestReadKonect(t *testing.T) {
	in := `% bip comment header
% another comment
10 20
11 20 1 1234567
10 21
12 22

10 20
`
	g, err := ReadKonect(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// 3 distinct u {10,11,12}, 3 distinct v {20,21,22}; oriented so |V|<=|U|.
	if g.NU() != 3 || g.NV() != 3 || g.NumEdges() != 4 {
		t.Fatalf("konect parse: %v", Summarize(g))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadKonectErrors(t *testing.T) {
	if _, err := ReadKonect(strings.NewReader("justonefield\n")); err == nil {
		t.Fatal("accepted 1-field line")
	}
}

func TestReadKonectOrients(t *testing.T) {
	// 1 u, 3 v: after Orient the smaller side (1 vertex) must be V.
	in := "a x\na y\na z\n"
	g, err := ReadKonect(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NV() != 1 || g.NU() != 3 {
		t.Fatalf("orientation wrong: |U|=%d |V|=%d", g.NU(), g.NV())
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := PaperExample()
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadKonect(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// ReadKonect orients; PaperExample has |V| < |U| so orientation holds.
	if g2.NU() != g.NU() || g2.NV() != g.NV() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip stats changed: %v vs %v", Summarize(g2), Summarize(g))
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		nu, nv := 1+rng.Intn(50), 1+rng.Intn(30)
		var edges []Edge
		for i := 0; i < rng.Intn(200); i++ {
			edges = append(edges, Edge{U: int32(rng.Intn(nu)), V: int32(rng.Intn(nv))})
		}
		g, err := FromEdges(nu, nv, edges)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !sameGraph(g, g2) {
			t.Fatalf("trial %d: binary round trip changed the graph", trial)
		}
		if err := g2.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestBinaryRejectsCorrupt(t *testing.T) {
	g := PaperExample()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(raw[:4])); err == nil {
		t.Fatal("accepted truncated header")
	}
	bad := append([]byte("XXXX9999"), raw[8:]...)
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("accepted bad magic")
	}
	if _, err := ReadBinary(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Fatal("accepted truncated body")
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	g := PaperExample()
	path := t.TempDir() + "/g.bin"
	if err := g.WriteBinaryFile(path); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, g2) {
		t.Fatal("file round trip changed the graph")
	}
	if _, err := ReadBinaryFile(path + ".missing"); err == nil {
		t.Fatal("read of missing file succeeded")
	}
}

func TestSummarize(t *testing.T) {
	g := PaperExample()
	s := Summarize(g)
	if s.MaxDegV != 7 { // deg(v0)
		t.Fatalf("MaxDegV = %d, want 7", s.MaxDegV)
	}
	if s.MaxDegU != 4 { // u0 connects to all four v
		t.Fatalf("MaxDegU = %d, want 4", s.MaxDegU)
	}
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
}

// Property: FromEdges is permutation-invariant and idempotent over dupes.
func TestQuickFromEdgesCanonical(t *testing.T) {
	f := func(raw []uint16, seed int64) bool {
		const nu, nv = 40, 25
		edges := make([]Edge, 0, len(raw))
		for _, r := range raw {
			edges = append(edges, Edge{U: int32(r % nu), V: int32((r >> 8) % nv)})
		}
		g1, err := FromEdges(nu, nv, edges)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		edges = append(edges, edges...) // duplicate everything
		g2, err := FromEdges(nu, nv, edges)
		if err != nil {
			return false
		}
		return sameGraph(g1, g2) && g1.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
