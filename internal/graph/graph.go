// Package graph implements the bipartite-graph substrate for maximal
// biclique enumeration: a compact CSR (compressed sparse row)
// adjacency-list representation for both vertex sides, loaders for the
// KONECT edge-list format used by the paper's datasets, a binary cache
// format, and basic statistics.
//
// Conventions follow the paper: the graph is G(U, V, E); enumeration
// candidates are drawn from V and biclique L-sets from U, and by default
// the side with fewer vertices is designated V (§IV-A). Vertices on each
// side are dense int32 ids in [0, NU) and [0, NV).
package graph

import (
	"fmt"
	"sort"
)

// Bipartite is an immutable bipartite graph with CSR adjacency for both
// sides. Neighbor lists are sorted ascending and duplicate-free, which the
// enumeration kernels rely on for merge intersections.
type Bipartite struct {
	nu, nv int

	// V-side CSR: neighbors (in U) of each v.
	vOff []int64
	vAdj []int32

	// U-side CSR: neighbors (in V) of each u.
	uOff []int64
	uAdj []int32

	// meta is generation provenance, if any (see Meta).
	meta Meta
}

// Meta records the provenance of a generated graph: which generator built
// it, from which seed, with which parameters. It exists so that any graph
// a test fails on can be rebuilt byte-for-byte from three fields (see
// gen.FromMeta). Loaded graphs carry the zero Meta.
type Meta struct {
	// Generator is the gen constructor name ("uniform", "powerlaw",
	// "affiliation", "sample"), or "" for non-generated graphs.
	Generator string
	// Seed is the PRNG seed the generator was called with.
	Seed int64
	// Params is the generator's canonical "key=value ..." parameter string.
	Params string
}

// Meta returns the graph's provenance metadata (zero for loaded graphs).
func (g *Bipartite) Meta() Meta { return g.meta }

// WithMeta returns a copy of g (sharing CSR storage) carrying m as its
// provenance metadata.
func (g *Bipartite) WithMeta(m Meta) *Bipartite {
	ng := *g
	ng.meta = m
	return &ng
}

// Edge is a single (u, v) edge with u ∈ U, v ∈ V.
type Edge struct {
	U, V int32
}

// NU returns |U|.
func (g *Bipartite) NU() int { return g.nu }

// NV returns |V|.
func (g *Bipartite) NV() int { return g.nv }

// NumEdges returns |E|.
func (g *Bipartite) NumEdges() int64 { return int64(len(g.vAdj)) }

// NeighborsOfV returns the sorted U-side neighbor list of v. The returned
// slice aliases internal storage and must not be modified.
func (g *Bipartite) NeighborsOfV(v int32) []int32 {
	return g.vAdj[g.vOff[v]:g.vOff[v+1]]
}

// NeighborsOfU returns the sorted V-side neighbor list of u. The returned
// slice aliases internal storage and must not be modified.
func (g *Bipartite) NeighborsOfU(u int32) []int32 {
	return g.uAdj[g.uOff[u]:g.uOff[u+1]]
}

// DegV returns the degree of v ∈ V.
func (g *Bipartite) DegV(v int32) int { return int(g.vOff[v+1] - g.vOff[v]) }

// DegU returns the degree of u ∈ U.
func (g *Bipartite) DegU(u int32) int { return int(g.uOff[u+1] - g.uOff[u]) }

// HasEdge reports whether (u, v) ∈ E via binary search on the shorter list.
func (g *Bipartite) HasEdge(u, v int32) bool {
	if g.DegU(u) <= g.DegV(v) {
		return contains(g.NeighborsOfU(u), v)
	}
	return contains(g.NeighborsOfV(v), u)
}

func contains(sorted []int32, x int32) bool {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= x })
	return i < len(sorted) && sorted[i] == x
}

// Edges returns all edges as a fresh slice, ordered by (v, u).
func (g *Bipartite) Edges() []Edge {
	out := make([]Edge, 0, len(g.vAdj))
	for v := int32(0); v < int32(g.nv); v++ {
		for _, u := range g.NeighborsOfV(v) {
			out = append(out, Edge{U: u, V: v})
		}
	}
	return out
}

// Swapped returns a graph with the U and V sides exchanged. Provenance
// metadata is preserved.
func (g *Bipartite) Swapped() *Bipartite {
	return &Bipartite{
		nu: g.nv, nv: g.nu,
		vOff: g.uOff, vAdj: g.uAdj,
		uOff: g.vOff, uAdj: g.vAdj,
		meta: g.meta,
	}
}

// Orient returns the graph with the smaller side designated V, matching the
// dataset convention in §IV-A ("designate the vertex set with fewer vertices
// as V"). It returns the receiver when already oriented.
func (g *Bipartite) Orient() *Bipartite {
	if g.nv <= g.nu {
		return g
	}
	return g.Swapped()
}

// PermuteV returns a copy of g whose V side is relabeled so that new id i
// corresponds to old id perm[i]. Enumeration kernels always process V in
// ascending id order, so applying an ordering permutation here implements
// the paper's vertex-ordering step (Algorithm 2, line 1).
func (g *Bipartite) PermuteV(perm []int32) (*Bipartite, error) {
	if len(perm) != g.nv {
		return nil, fmt.Errorf("graph: permutation length %d != |V| %d", len(perm), g.nv)
	}
	inv := make([]int32, g.nv)
	seen := make([]bool, g.nv)
	for newID, oldID := range perm {
		if oldID < 0 || int(oldID) >= g.nv {
			return nil, fmt.Errorf("graph: permutation entry %d out of range", oldID)
		}
		if seen[oldID] {
			return nil, fmt.Errorf("graph: permutation repeats id %d", oldID)
		}
		seen[oldID] = true
		inv[oldID] = int32(newID)
	}

	ng := &Bipartite{
		nu:   g.nu,
		nv:   g.nv,
		vOff: make([]int64, g.nv+1),
		vAdj: make([]int32, len(g.vAdj)),
		uOff: g.uOff,
		uAdj: make([]int32, len(g.uAdj)),
		meta: g.meta,
	}
	// V-side CSR: rows move wholesale; contents (U ids) are unchanged.
	for newID := 0; newID < g.nv; newID++ {
		old := perm[newID]
		row := g.NeighborsOfV(old)
		ng.vOff[newID+1] = ng.vOff[newID] + int64(len(row))
		copy(ng.vAdj[ng.vOff[newID]:], row)
	}
	// U-side CSR: offsets unchanged; neighbor ids relabel then re-sort.
	for u := int32(0); u < int32(g.nu); u++ {
		row := ng.uAdj[g.uOff[u]:g.uOff[u+1]]
		src := g.NeighborsOfU(u)
		for i, v := range src {
			row[i] = inv[v]
		}
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
	}
	return ng, nil
}

// Validate checks structural invariants (sorted duplicate-free rows, edge
// sets on the two sides mirroring each other) and returns the first
// violation found. Intended for tests and loader verification.
func (g *Bipartite) Validate() error {
	if int64(len(g.vAdj)) != g.vOff[g.nv] || int64(len(g.uAdj)) != g.uOff[g.nu] {
		return fmt.Errorf("graph: CSR offsets inconsistent with storage")
	}
	if len(g.vAdj) != len(g.uAdj) {
		return fmt.Errorf("graph: side edge counts differ: %d vs %d", len(g.vAdj), len(g.uAdj))
	}
	for v := int32(0); v < int32(g.nv); v++ {
		row := g.NeighborsOfV(v)
		for i, u := range row {
			if u < 0 || int(u) >= g.nu {
				return fmt.Errorf("graph: v=%d has out-of-range neighbor %d", v, u)
			}
			if i > 0 && row[i-1] >= u {
				return fmt.Errorf("graph: v=%d row not strictly sorted at %d", v, i)
			}
		}
	}
	for u := int32(0); u < int32(g.nu); u++ {
		row := g.NeighborsOfU(u)
		for i, v := range row {
			if v < 0 || int(v) >= g.nv {
				return fmt.Errorf("graph: u=%d has out-of-range neighbor %d", u, v)
			}
			if i > 0 && row[i-1] >= v {
				return fmt.Errorf("graph: u=%d row not strictly sorted at %d", u, i)
			}
			if !contains(g.NeighborsOfV(v), u) {
				return fmt.Errorf("graph: edge (%d,%d) present on U side only", u, v)
			}
		}
	}
	return nil
}
