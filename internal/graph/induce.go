package graph

import "fmt"

// Induced is a vertex-induced subgraph together with the id maps back to
// the parent graph: new u-id i corresponds to parent id UIDs[i], and
// likewise for VIDs.
type Induced struct {
	G    *Bipartite
	UIDs []int32
	VIDs []int32
}

// Induce returns the subgraph induced by the given U- and V-side vertex
// sets (ids need not be sorted; duplicates are rejected). Edges of g with
// both endpoints kept are retained, with endpoints densely relabeled.
func (g *Bipartite) Induce(uKeep, vKeep []int32) (*Induced, error) {
	uMap := make(map[int32]int32, len(uKeep))
	for i, u := range uKeep {
		if u < 0 || int(u) >= g.nu {
			return nil, fmt.Errorf("graph: induce: u id %d out of range", u)
		}
		if _, dup := uMap[u]; dup {
			return nil, fmt.Errorf("graph: induce: duplicate u id %d", u)
		}
		uMap[u] = int32(i)
	}
	vMap := make(map[int32]int32, len(vKeep))
	for i, v := range vKeep {
		if v < 0 || int(v) >= g.nv {
			return nil, fmt.Errorf("graph: induce: v id %d out of range", v)
		}
		if _, dup := vMap[v]; dup {
			return nil, fmt.Errorf("graph: induce: duplicate v id %d", v)
		}
		vMap[v] = int32(i)
	}

	var edges []Edge
	// Iterate the smaller kept side's adjacency.
	if len(vKeep) <= len(uKeep) {
		for _, v := range vKeep {
			for _, u := range g.NeighborsOfV(v) {
				if nu, ok := uMap[u]; ok {
					edges = append(edges, Edge{U: nu, V: vMap[v]})
				}
			}
		}
	} else {
		for _, u := range uKeep {
			for _, v := range g.NeighborsOfU(u) {
				if nv, ok := vMap[v]; ok {
					edges = append(edges, Edge{U: uMap[u], V: nv})
				}
			}
		}
	}
	sub, err := FromEdges(len(uKeep), len(vKeep), edges)
	if err != nil {
		return nil, err
	}
	return &Induced{
		G:    sub,
		UIDs: append([]int32(nil), uKeep...),
		VIDs: append([]int32(nil), vKeep...),
	}, nil
}
