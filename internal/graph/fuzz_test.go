package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadKonect checks that arbitrary input never panics the loader and
// that every successfully parsed graph satisfies the structural invariants
// and round-trips through both serializers.
func FuzzReadKonect(f *testing.F) {
	f.Add("1 2\n3 4\n")
	f.Add("% comment\n1 2 5 99999\n\n1 2\n")
	f.Add("a b\nb a\n")
	f.Add("x")
	f.Add(strings.Repeat("7 9\n", 100))
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadKonect(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed graph invalid: %v", err)
		}
		if g.NV() > g.NU() {
			t.Fatal("loader did not orient")
		}
		var txt bytes.Buffer
		if err := g.WriteEdgeList(&txt); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadKonect(&txt)
		if err != nil {
			t.Fatalf("re-parse of own output failed: %v", err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("edge-list round trip: %d != %d edges", g2.NumEdges(), g.NumEdges())
		}
		var bin bytes.Buffer
		if err := g.WriteBinary(&bin); err != nil {
			t.Fatal(err)
		}
		g3, err := ReadBinary(&bin)
		if err != nil {
			t.Fatalf("binary round trip failed: %v", err)
		}
		if g3.NumEdges() != g.NumEdges() || g3.NU() != g.NU() || g3.NV() != g.NV() {
			t.Fatal("binary round trip changed the graph")
		}
	})
}

// FuzzReadBinary checks the binary loader against corrupt/hostile input.
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	if err := PaperExample().WriteBinary(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("MBEG0001"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("binary loader accepted invalid graph: %v", err)
		}
	})
}
