package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadKonect parses the KONECT / out.* edge-list format used by all the
// paper's datasets: one "u v [weight [timestamp]]" line per edge, '%'
// comment lines, whitespace-separated, 1-based (or arbitrary) vertex ids on
// each side. Ids are compacted to dense 0-based ids per side in first-seen
// order; duplicate edges collapse. The result is Orient()ed so the smaller
// side is V, matching §IV-A.
func ReadKonect(r io.Reader) (*Bipartite, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	uIDs := map[string]int32{}
	vIDs := map[string]int32{}
	var edges []Edge
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %q", line, text)
		}
		u, ok := uIDs[fields[0]]
		if !ok {
			u = int32(len(uIDs))
			uIDs[fields[0]] = u
		}
		v, ok := vIDs[fields[1]]
		if !ok {
			v = int32(len(vIDs))
			vIDs[fields[1]] = v
		}
		edges = append(edges, Edge{U: u, V: v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	g, err := FromEdges(len(uIDs), len(vIDs), edges)
	if err != nil {
		return nil, err
	}
	return g.Orient(), nil
}

// ReadKonectFile reads a KONECT edge list from a file.
func ReadKonectFile(path string) (*Bipartite, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := ReadKonect(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// WriteEdgeList writes the graph in KONECT format (0-based ids).
func (g *Bipartite) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%% bip u v  |U|=%d |V|=%d |E|=%d\n", g.nu, g.nv, g.NumEdges())
	for v := int32(0); v < int32(g.nv); v++ {
		for _, u := range g.NeighborsOfV(v) {
			bw.WriteString(strconv.Itoa(int(u)))
			bw.WriteByte(' ')
			bw.WriteString(strconv.Itoa(int(v)))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

const binMagic = "MBEG0001"

// WriteBinary serializes the graph in a compact cache format (little-endian
// CSR dump) so large generated datasets load in O(read) time.
func (g *Bipartite) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	hdr := []int64{int64(g.nu), int64(g.nv), g.NumEdges()}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.vOff); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.vAdj); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary, rebuilding the
// U-side CSR.
func ReadBinary(r io.Reader) (*Bipartite, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading binary header: %w", err)
	}
	if string(magic) != binMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var hdr [3]int64
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, err
	}
	nu, nv, ne := hdr[0], hdr[1], hdr[2]
	if nu < 0 || nv < 0 || ne < 0 || nu > 1<<31 || nv > 1<<31 {
		return nil, fmt.Errorf("graph: implausible binary header %v", hdr)
	}
	// The U side is rebuilt from a size that only the header attests to;
	// cap it relative to the data the file actually carries so a hostile
	// 40-byte header cannot force a gigabyte allocation. Real datasets
	// have |U| well below 64×(|E|+|V|).
	if nu > 1<<20 && nu > 64*(ne+nv+1) {
		return nil, fmt.Errorf("graph: implausible |U|=%d for |V|=%d, |E|=%d", nu, nv, ne)
	}
	// Read the arrays in bounded chunks so a hostile header cannot force a
	// huge up-front allocation: memory stays proportional to the bytes the
	// reader actually delivers.
	vOff, err := readChunkedInt64(br, nv+1)
	if err != nil {
		return nil, err
	}
	if vOff[0] != 0 || vOff[nv] != ne {
		return nil, fmt.Errorf("graph: offset table inconsistent with edge count")
	}
	for i := int64(1); i <= nv; i++ {
		if vOff[i] < vOff[i-1] {
			return nil, fmt.Errorf("graph: offset table not monotone at %d", i)
		}
	}
	vAdj, err := readChunkedInt32(br, ne)
	if err != nil {
		return nil, err
	}

	g := &Bipartite{nu: int(nu), nv: int(nv), vOff: vOff, vAdj: vAdj}
	// Validate rows (ids in range, strictly sorted — the format's
	// invariant, which the enumeration kernels rely on) while counting for
	// the U-side CSR rebuild.
	g.uOff = make([]int64, nu+1)
	for v := int64(0); v < nv; v++ {
		row := vAdj[vOff[v]:vOff[v+1]]
		for i, u := range row {
			if u < 0 || int64(u) >= nu {
				return nil, fmt.Errorf("graph: binary adjacency id %d out of range", u)
			}
			if i > 0 && row[i-1] >= u {
				return nil, fmt.Errorf("graph: v=%d adjacency row not strictly sorted", v)
			}
			g.uOff[u+1]++
		}
	}
	for i := int64(0); i < nu; i++ {
		g.uOff[i+1] += g.uOff[i]
	}
	g.uAdj = make([]int32, ne)
	cur := make([]int64, nu)
	for v := int32(0); v < int32(nv); v++ {
		for _, u := range g.NeighborsOfV(v) {
			g.uAdj[g.uOff[u]+cur[u]] = v
			cur[u]++
		}
	}
	return g, nil
}

// readChunk is the maximum number of elements a single untrusted-length
// read allocates at once.
const readChunk = 1 << 18

func readChunkedInt64(r io.Reader, n int64) ([]int64, error) {
	out := make([]int64, 0, min(n, readChunk))
	for int64(len(out)) < n {
		c := min(n-int64(len(out)), readChunk)
		buf := make([]int64, c)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, fmt.Errorf("graph: reading offset table: %w", err)
		}
		out = append(out, buf...)
	}
	return out, nil
}

func readChunkedInt32(r io.Reader, n int64) ([]int32, error) {
	out := make([]int32, 0, min(n, readChunk))
	for int64(len(out)) < n {
		c := min(n-int64(len(out)), readChunk)
		buf := make([]int32, c)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, fmt.Errorf("graph: reading adjacency: %w", err)
		}
		out = append(out, buf...)
	}
	return out, nil
}

// WriteBinaryFile writes the binary cache format to path.
func (g *Bipartite) WriteBinaryFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteBinary(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBinaryFile reads the binary cache format from path.
func ReadBinaryFile(path string) (*Bipartite, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := ReadBinary(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}
