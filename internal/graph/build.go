package graph

import (
	"fmt"
	"sort"
)

// FromEdges builds a Bipartite graph from an edge list. Duplicate edges are
// collapsed; nu and nv fix the side sizes (vertices may be isolated). It
// returns an error on out-of-range endpoints.
func FromEdges(nu, nv int, edges []Edge) (*Bipartite, error) {
	if nu < 0 || nv < 0 {
		return nil, fmt.Errorf("graph: negative side size (nu=%d, nv=%d)", nu, nv)
	}
	for _, e := range edges {
		if e.U < 0 || int(e.U) >= nu {
			return nil, fmt.Errorf("graph: edge (%d,%d): u out of range [0,%d)", e.U, e.V, nu)
		}
		if e.V < 0 || int(e.V) >= nv {
			return nil, fmt.Errorf("graph: edge (%d,%d): v out of range [0,%d)", e.U, e.V, nv)
		}
	}

	es := make([]Edge, len(edges))
	copy(es, edges)
	sort.Slice(es, func(i, j int) bool {
		if es[i].V != es[j].V {
			return es[i].V < es[j].V
		}
		return es[i].U < es[j].U
	})
	// Deduplicate in place.
	dedup := es[:0]
	for i, e := range es {
		if i == 0 || e != es[i-1] {
			dedup = append(dedup, e)
		}
	}
	es = dedup

	g := &Bipartite{
		nu:   nu,
		nv:   nv,
		vOff: make([]int64, nv+1),
		vAdj: make([]int32, len(es)),
		uOff: make([]int64, nu+1),
		uAdj: make([]int32, len(es)),
	}
	for _, e := range es {
		g.vOff[e.V+1]++
		g.uOff[e.U+1]++
	}
	for i := 0; i < nv; i++ {
		g.vOff[i+1] += g.vOff[i]
	}
	for i := 0; i < nu; i++ {
		g.uOff[i+1] += g.uOff[i]
	}
	vCur := make([]int64, nv)
	uCur := make([]int64, nu)
	for _, e := range es {
		g.vAdj[g.vOff[e.V]+vCur[e.V]] = e.U
		vCur[e.V]++
		g.uAdj[g.uOff[e.U]+uCur[e.U]] = e.V
		uCur[e.U]++
	}
	// vAdj rows are sorted by construction (edges sorted by (V,U)); uAdj rows
	// are sorted because for a fixed u, edges appear in increasing V order.
	return g, nil
}

// FromAdjacency builds a graph from per-v neighbor lists (rows may be
// unsorted and contain duplicates). nu fixes |U|.
func FromAdjacency(nu int, rows [][]int32) (*Bipartite, error) {
	var edges []Edge
	for v, row := range rows {
		for _, u := range row {
			edges = append(edges, Edge{U: u, V: int32(v)})
		}
	}
	return FromEdges(nu, len(rows), edges)
}

// PaperExample returns the 9×4 bipartite graph G0 from Figure 1 of the
// paper (u0..u8 × v0..v3). Its 9 maximal bicliques anchor several unit
// tests (including ({u0,u4,u5,u6},{v0,v2,v3}) from Figure 1).
func PaperExample() *Bipartite {
	// Edges transcribed from Figure 1/2: N(v0)={u0..u2,u4..u7},
	// N(v1)={u0,u1,u2}, N(v2)={u0,u2,u3,u4,u5,u6}, N(v3)={u0,u3,u4,u5,u6,u8}.
	g, err := FromAdjacency(9, [][]int32{
		{0, 1, 2, 4, 5, 6, 7},
		{0, 1, 2},
		{0, 2, 3, 4, 5, 6},
		{0, 3, 4, 5, 6, 8},
	})
	if err != nil {
		// Unreachable: the literal above is in range by inspection. Return
		// an empty-but-valid graph rather than panicking (no enumeration
		// entry point in this module is allowed to panic).
		return &Bipartite{vOff: make([]int64, 1), uOff: make([]int64, 1)}
	}
	return g
}
