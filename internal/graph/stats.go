package graph

import "fmt"

// Stats summarizes a bipartite graph in the shape of the paper's Table I /
// Table II rows (maximal biclique counts are computed by the enumeration
// engines, not here).
type Stats struct {
	NU, NV   int
	Edges    int64
	MaxDegU  int // Δ(U)
	MaxDegV  int // Δ(V)
	AvgDegU  float64
	AvgDegV  float64
	Isolated int // vertices (either side) with degree 0
}

// Summarize computes Stats for g.
func Summarize(g *Bipartite) Stats {
	s := Stats{NU: g.NU(), NV: g.NV(), Edges: g.NumEdges()}
	for u := int32(0); u < int32(g.NU()); u++ {
		d := g.DegU(u)
		if d > s.MaxDegU {
			s.MaxDegU = d
		}
		if d == 0 {
			s.Isolated++
		}
	}
	for v := int32(0); v < int32(g.NV()); v++ {
		d := g.DegV(v)
		if d > s.MaxDegV {
			s.MaxDegV = d
		}
		if d == 0 {
			s.Isolated++
		}
	}
	if s.NU > 0 {
		s.AvgDegU = float64(s.Edges) / float64(s.NU)
	}
	if s.NV > 0 {
		s.AvgDegV = float64(s.Edges) / float64(s.NV)
	}
	return s
}

// String renders the stats as a single Table-I-style row fragment.
func (s Stats) String() string {
	return fmt.Sprintf("|U|=%d |V|=%d |E|=%d Δ(U)=%d Δ(V)=%d",
		s.NU, s.NV, s.Edges, s.MaxDegU, s.MaxDegV)
}
