package dist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/spool"
)

// ManifestName is the coordinator's state file inside its directory.
const ManifestName = "dist-manifest.json"

// Range states as persisted in the manifest.
const (
	statePending = "pending"
	stateLeased  = "leased"
	stateDone    = "done"
)

// manifest is the coordinator's durable state: the run spec, every
// range's confirmed progress, and — once every range is done — the
// merged global digest. It is written with the spool's atomic
// temp+fsync+rename, so a reader never observes a torn file and kill -9
// at any instant leaves either the old or the new state.
//
// What is deliberately NOT persisted: lease holders' heartbeat clocks.
// On recovery every leased range reverts to pending and is re-issued
// from its persisted watermark; the attempt counter IS persisted, so the
// re-issue's attempt exceeds any frame a pre-crash zombie could still
// send (see the fencing rule in the package comment).
type manifest struct {
	Version    int         `json:"version"`
	Spec       Spec        `json:"spec"`
	LeaseTTLMS int64       `json:"lease_ttl_ms"`
	Complete   bool        `json:"complete"`
	Global     *DigestJSON `json:"global,omitempty"`
	Ranges     []rangeJSON `json:"ranges"`
	WrittenAt  string      `json:"written_at"`
}

// rangeJSON is one range's persisted state. Digest summarizes exactly
// the roots [Start, Watermark) — the two fields are updated together
// under the coordinator lock and persisted in one atomic write, which is
// what makes a crash-recovered resume merge-exact.
type rangeJSON struct {
	ID        int        `json:"id"`
	Start     int32      `json:"start"`
	End       int32      `json:"end"`
	State     string     `json:"state"`
	Attempt   int        `json:"attempt"`
	Watermark int32      `json:"watermark"`
	Worker    string     `json:"worker,omitempty"`
	Digest    DigestJSON `json:"digest"`
}

// manifestPath resolves the manifest file inside dir.
func manifestPath(dir string) string { return filepath.Join(dir, ManifestName) }

// writeManifest persists m atomically. durable additionally fsyncs the
// directory entry; non-durable writes keep rename atomicity (a crash
// may revert to the previous state, never expose a torn one).
func writeManifest(dir string, m manifest, durable bool) error {
	m.Version = ProtocolVersion
	m.WrittenAt = time.Now().UTC().Format(time.RFC3339)
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("dist: marshal manifest: %w", err)
	}
	return spool.AtomicWriteFile(manifestPath(dir), blob, durable)
}

// loadManifest reads the manifest in dir. found is false when no
// manifest exists (a fresh coordinator directory).
func loadManifest(dir string) (manifest, bool, error) {
	blob, err := os.ReadFile(manifestPath(dir))
	if os.IsNotExist(err) {
		return manifest{}, false, nil
	}
	if err != nil {
		return manifest{}, false, err
	}
	var m manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return manifest{}, false, fmt.Errorf("dist: corrupt manifest %s: %w", manifestPath(dir), err)
	}
	if m.Version != ProtocolVersion {
		return manifest{}, false, fmt.Errorf("dist: manifest %s is protocol v%d, this build speaks v%d", manifestPath(dir), m.Version, ProtocolVersion)
	}
	return m, true, nil
}

// specCompatible checks that a recovered manifest describes the same run
// the coordinator was configured with. Everything that pins the root
// decomposition must match; lease TTL and range count are allowed to
// change only insofar as the persisted ranges are authoritative.
func specCompatible(have, want Spec) error {
	switch {
	case have.GraphHash != want.GraphHash || have.NU != want.NU || have.NV != want.NV || have.Edges != want.Edges:
		return fmt.Errorf("dist: manifest graph mismatch: manifest %dx%d/%d (%s), run %dx%d/%d (%s)",
			have.NU, have.NV, have.Edges, have.GraphHash, want.NU, want.NV, want.Edges, want.GraphHash)
	case have.Algorithm != want.Algorithm:
		return fmt.Errorf("dist: manifest algorithm mismatch: manifest %s, run %s", have.Algorithm, want.Algorithm)
	case have.Ordering != want.Ordering || have.OrderSeed != want.OrderSeed:
		return fmt.Errorf("dist: manifest ordering mismatch: manifest %s/seed=%d, run %s/seed=%d — watermarks are only meaningful under the original root order",
			have.Ordering, have.OrderSeed, want.Ordering, want.OrderSeed)
	}
	return nil
}
