package dist

import (
	"fmt"
	"strconv"

	"repro/internal/difftest"
)

// Wire protocol version, carried in the config and the manifest. Bump on
// any incompatible change to the frame or manifest schema.
const ProtocolVersion = 1

// Config is the coordinator's run description, served at
// GET /dist/v1/config. Workers fetch it once at startup.
type Config struct {
	Version    int   `json:"version"`
	Spec       Spec  `json:"spec"`
	Ranges     int   `json:"ranges"`
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
}

// leaseRequest is the body of POST /dist/v1/lease.
type leaseRequest struct {
	Worker string `json:"worker"`
}

// Lease is a granted root range: enumerate [Resume, End) and stream
// frames tagged with Attempt. Resume > Start after a re-issue — the
// prefix [Start, Resume) is already confirmed durable at the
// coordinator and must not be re-enumerated.
type Lease struct {
	RangeID int   `json:"range_id"`
	Attempt int   `json:"attempt"`
	Start   int32 `json:"start"`
	Resume  int32 `json:"resume"`
	End     int32 `json:"end"`
	TTLMS   int64 `json:"ttl_ms"`
}

// Frame is one NDJSON line of a range stream
// (POST /dist/v1/ranges/{id}/stream). Every frame refreshes the lease's
// heartbeat. Types:
//
//   - "wm": the root interval [From, To) is complete; Delta is its
//     digest. Intervals are contiguous per attempt (From equals the
//     coordinator's current watermark) and To becomes the new watermark.
//   - "hb": heartbeat only (no watermark progress to report).
//   - "done": the final interval [From, To == range End) with Delta as
//     in "wm", plus Total — the digest of everything this attempt
//     streamed, which the coordinator cross-checks against its own
//     merge of the attempt's deltas before marking the range done.
type Frame struct {
	Type  string      `json:"type"`
	From  int32       `json:"from,omitempty"`
	To    int32       `json:"to,omitempty"`
	Delta *DigestJSON `json:"delta,omitempty"`
	Total *DigestJSON `json:"total,omitempty"`
}

// streamResult is the response body of a range stream (and of lease
// rejections): ok, or a reason the stream was refused.
type streamResult struct {
	OK     bool   `json:"ok"`
	Reason string `json:"reason,omitempty"`
}

// DigestJSON is the wire/manifest form of difftest.Digest. The three
// uint64 folds are hex strings: JSON numbers round-trip through float64
// in most decoders and silently lose bits above 2^53, which for a digest
// means false "equal" or false "different" — unacceptable either way.
type DigestJSON struct {
	Count int64  `json:"count"`
	Sum   string `json:"sum"`
	Xor   string `json:"xor"`
	Fold  string `json:"fold"`
}

// ToJSON converts a digest to its wire form.
func ToJSON(d difftest.Digest) DigestJSON {
	return DigestJSON{
		Count: d.Count,
		Sum:   fmt.Sprintf("%016x", d.Sum),
		Xor:   fmt.Sprintf("%016x", d.Xor),
		Fold:  fmt.Sprintf("%016x", d.Fold),
	}
}

// FromJSON parses the wire form back into a digest.
func FromJSON(j DigestJSON) (difftest.Digest, error) {
	sum, err := strconv.ParseUint(j.Sum, 16, 64)
	if err != nil {
		return difftest.Digest{}, fmt.Errorf("dist: bad digest sum %q: %w", j.Sum, err)
	}
	xor, err := strconv.ParseUint(j.Xor, 16, 64)
	if err != nil {
		return difftest.Digest{}, fmt.Errorf("dist: bad digest xor %q: %w", j.Xor, err)
	}
	fold, err := strconv.ParseUint(j.Fold, 16, 64)
	if err != nil {
		return difftest.Digest{}, fmt.Errorf("dist: bad digest fold %q: %w", j.Fold, err)
	}
	return difftest.Digest{Count: j.Count, Sum: sum, Xor: xor, Fold: fold}, nil
}
