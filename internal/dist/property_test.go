package dist

import (
	"math/rand"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/difftest"
	"repro/internal/graph"
)

// shardDigest enumerates one root range [start, end) with the given
// engine and digests its output. Ordering is identity throughout this
// file so every digest lives in the same id space as the brute-force
// oracle's.
func shardDigest(t *testing.T, g *graph.Bipartite, engine string, start, end int32) difftest.Digest {
	t.Helper()
	var d difftest.Digest
	var err error
	if engine == "BBK" {
		_, err = baselines.Run(g, baselines.BBK, baselines.Options{
			OnBiclique: d.Observe, StartRoot: start, EndRoot: end,
		})
	} else {
		kind, variant, _, rerr := resolveEngine(engine)
		if rerr != nil || kind != engineCore {
			t.Fatalf("engine %q: %v", engine, rerr)
		}
		_, err = core.Enumerate(g, core.Options{
			Variant: variant, OnBiclique: d.Observe, StartRoot: start, EndRoot: end,
		})
	}
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// randomPartition cuts [0, nv) into 1..nv contiguous ranges at random
// cut points.
func randomPartition(rng *rand.Rand, nv int) []RootRange {
	cuts := map[int32]bool{0: true, int32(nv): true}
	for i, k := 0, rng.Intn(nv); i < k; i++ {
		cuts[int32(1+rng.Intn(nv-1))] = true
	}
	var points []int32
	for p := range cuts {
		points = append(points, p)
	}
	for i := range points { // insertion sort; tiny
		for j := i; j > 0 && points[j] < points[j-1]; j-- {
			points[j], points[j-1] = points[j-1], points[j]
		}
	}
	out := make([]RootRange, 0, len(points)-1)
	for i := 0; i+1 < len(points); i++ {
		out = append(out, RootRange{Start: points[i], End: points[i+1]})
	}
	return out
}

// mergeTree folds digests in a random binary association: each step
// merges two random entries until one remains. Combined with a shuffle
// this exercises arbitrary (order, grouping) of the commutative monoid.
func mergeTree(rng *rand.Rand, ds []difftest.Digest) difftest.Digest {
	if len(ds) == 0 {
		return difftest.Digest{}
	}
	work := append([]difftest.Digest(nil), ds...)
	for len(work) > 1 {
		i := rng.Intn(len(work))
		j := rng.Intn(len(work) - 1)
		if j >= i {
			j++
		}
		if i > j {
			i, j = j, i
		}
		work[i].Merge(work[j])
		work[j] = work[len(work)-1]
		work = work[:len(work)-1]
	}
	return work[0]
}

// TestDigestMergeIsCommutativeAndAssociative is the shard-merge
// property behind the whole protocol: however the root space is
// partitioned, whichever engine enumerates each shard, and in whatever
// order and grouping the shard digests are merged, the result equals
// the brute-force oracle's digest of the full graph.
func TestDigestMergeIsCommutativeAndAssociative(t *testing.T) {
	engines := []string{"AdaMBE", "Baseline", "AdaMBE-LN", "AdaMBE-BIT", "BBK"}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		nu := 2 + rng.Intn(8)
		nv := 2 + rng.Intn(core.MaxBruteForceV-7) // keep the 2^nv oracle cheap
		m := 1 + rng.Intn(nu*nv)
		g := testGraph(t, int64(1000+trial), nu, nv, m)

		var oracle difftest.Digest
		core.BruteForce(g, oracle.Observe)

		parts := randomPartition(rng, nv)
		shards := make([]difftest.Digest, len(parts))
		for i, p := range parts {
			// A different engine per shard: the partition contract is an
			// engine-family property, so heterogeneous shards must still
			// merge to the same multiset.
			shards[i] = shardDigest(t, g, engines[(trial+i)%len(engines)], p.Start, p.End)
		}

		// Left-to-right in shard order.
		var seq difftest.Digest
		for _, s := range shards {
			seq.Merge(s)
		}
		// Shuffled order (commutativity).
		shuf := append([]difftest.Digest(nil), shards...)
		rng.Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
		var com difftest.Digest
		for _, s := range shuf {
			com.Merge(s)
		}
		// Random association (associativity).
		tree := mergeTree(rng, shards)

		for name, got := range map[string]difftest.Digest{"sequential": seq, "shuffled": com, "tree": tree} {
			if !got.Equal(oracle) || got.Count != oracle.Count {
				t.Fatalf("trial %d (%d shards, %dx%d/%d): %s merge %v != oracle %v",
					trial, len(parts), nu, nv, m, name, got, oracle)
			}
		}
	}
}
