package dist

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/difftest"
	"repro/internal/graph"
)

func testGraph(t testing.TB, seed int64, nu, nv, m int) *graph.Bipartite {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{U: int32(rng.Intn(nu)), V: int32(rng.Intn(nv))}
	}
	g, err := graph.FromEdges(nu, nv, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testSpec(t testing.TB, g *graph.Bipartite, algo, ordering string) Spec {
	t.Helper()
	s := Spec{Algorithm: algo, Ordering: ordering}.WithGraph(g)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

// fakeDigest builds an arbitrary non-empty digest for protocol-level
// tests that never run an engine.
func fakeDigest(fps ...uint64) difftest.Digest {
	var d difftest.Digest
	for _, fp := range fps {
		d.Add(fp)
	}
	return d
}

func TestSplitRootsTilesTheRootSpace(t *testing.T) {
	cases := []struct{ nv, n, want int }{
		{nv: 10, n: 3, want: 3},
		{nv: 100, n: 16, want: 16},
		{nv: 3, n: 10, want: 3}, // fewer ranges than requested
		{nv: 1, n: 1, want: 1},
		{nv: 0, n: 4, want: 0}, // empty V side
		{nv: 7, n: 0, want: 1}, // n < 1 clamps to 1
	}
	for _, c := range cases {
		rs := SplitRoots(c.nv, c.n)
		if len(rs) != c.want {
			t.Errorf("SplitRoots(%d, %d): %d ranges, want %d", c.nv, c.n, len(rs), c.want)
			continue
		}
		next := int32(0)
		for _, r := range rs {
			if r.Start != next || r.End <= r.Start {
				t.Errorf("SplitRoots(%d, %d): range [%d,%d) breaks the tiling at %d", c.nv, c.n, r.Start, r.End, next)
			}
			next = r.End
		}
		if next != int32(c.nv) {
			t.Errorf("SplitRoots(%d, %d): tiling ends at %d, want %d", c.nv, c.n, next, c.nv)
		}
	}
}

func TestDigestJSONRoundTrip(t *testing.T) {
	digests := []difftest.Digest{
		{},
		fakeDigest(1, 2, 3),
		{Count: 1 << 40, Sum: ^uint64(0), Xor: 1, Fold: 0x8000000000000000},
	}
	for _, d := range digests {
		got, err := FromJSON(ToJSON(d))
		if err != nil {
			t.Fatalf("round-trip %v: %v", d, err)
		}
		if !got.Equal(d) || got.Count != d.Count {
			t.Errorf("round-trip %v -> %v", d, got)
		}
	}
	for _, bad := range []DigestJSON{
		{Sum: "zz", Xor: "0", Fold: "0"},
		{Sum: "0", Xor: "", Fold: "0"},
		{Sum: "0", Xor: "0", Fold: "not hex"},
	} {
		if _, err := FromJSON(bad); err == nil {
			t.Errorf("FromJSON(%+v) accepted bad hex", bad)
		}
	}
}

func TestSpecValidateRejectsMisconfiguration(t *testing.T) {
	g := testGraph(t, 1, 8, 8, 24)
	good := Spec{Algorithm: "AdaMBE", Ordering: "asc"}.WithGraph(g)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}

	// Competitor engines do not share the root partition contract.
	for _, algo := range []string{"FMBE", "PMBE", "ooMBEA", "ParMBE", "GMBE", "nosuch"} {
		s := Spec{Algorithm: algo, Ordering: "asc"}.WithGraph(g)
		if err := s.Validate(); err == nil {
			t.Errorf("algorithm %q accepted; it cannot shard by root", algo)
		}
	}
	s := Spec{Algorithm: "AdaMBE", Ordering: "bogus"}.WithGraph(g)
	if err := s.Validate(); err == nil {
		t.Error("bogus ordering accepted")
	}
	if err := (Spec{Algorithm: "AdaMBE", Ordering: "asc"}).Validate(); err == nil {
		t.Error("spec without graph identity accepted")
	}

	other := testGraph(t, 2, 8, 8, 24)
	if err := good.CheckGraph(other); err == nil {
		t.Error("CheckGraph accepted a different graph")
	}
	if err := good.CheckGraph(g); err != nil {
		t.Errorf("CheckGraph rejected the spec's own graph: %v", err)
	}
}

// TestAttemptFencing drives the coordinator's ledger directly through
// the whole fencing story: wrong-attempt frames, expiry, zombie frames
// after expiry, and a re-issued lease that resumes at the confirmed
// watermark and out-fences the zombie.
func TestAttemptFencing(t *testing.T) {
	g := testGraph(t, 3, 8, 8, 24)
	c, err := NewCoordinator(CoordOptions{
		Spec: testSpec(t, g, "AdaMBE", "none"),
		Dir:  t.TempDir(), Ranges: 1, LeaseTTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}

	lease, ok := c.grantLease("victim")
	if !ok || lease.Attempt != 1 || lease.Resume != 0 || lease.End != int32(g.NV()) {
		t.Fatalf("first grant: %+v ok=%v", lease, ok)
	}

	d1 := ToJSON(fakeDigest(11, 12))
	// A frame tagged with an attempt that was never granted.
	if err := c.acceptFrame(0, 2, "evil", Frame{Type: "wm", From: 0, To: 1, Delta: &d1}); err == nil {
		t.Fatal("future-attempt frame accepted")
	}
	// The live attempt's frame merges and advances the watermark.
	if err := c.acceptFrame(0, 1, "victim", Frame{Type: "wm", From: 0, To: 3, Delta: &d1}); err != nil {
		t.Fatal(err)
	}
	if wm, state, _ := c.RangeWatermark(0); wm != 3 || state != stateLeased {
		t.Fatalf("after wm frame: watermark %d state %s", wm, state)
	}

	// Contiguity violations: a gap, a regression, and an overshoot.
	for _, f := range []Frame{
		{Type: "wm", From: 4, To: 5, Delta: &d1},                 // gap
		{Type: "wm", From: 0, To: 3, Delta: &d1},                 // replay
		{Type: "wm", From: 3, To: int32(g.NV()) + 1, Delta: &d1}, // past end
		{Type: "wm", From: 3, To: 3, Delta: &d1},                 // empty
		{Type: "wm", From: 3, To: 4},                             // no delta
		{Type: "done", From: 3, To: 4, Delta: &d1, Total: &d1},   // done before end
		{Type: "done", From: 3, To: int32(g.NV()), Delta: &d1},   // done without total
		{Type: "bogus"}, // unknown type
	} {
		if err := c.acceptFrame(0, 1, "victim", f); err == nil {
			t.Errorf("malformed frame %+v accepted", f)
		}
	}
	if wm, _, _ := c.RangeWatermark(0); wm != 3 {
		t.Fatalf("rejected frames moved the watermark to %d", wm)
	}

	// Expire the lease through the janitor's path (time seam).
	c.now = func() time.Time { return time.Now().Add(2 * time.Minute) }
	c.expireLeases()
	if wm, state, _ := c.RangeWatermark(0); state != statePending || wm != 3 {
		t.Fatalf("after expiry: state %s watermark %d", state, wm)
	}
	if v := c.leasesExpired.Value(); v != 1 {
		t.Errorf("dist_leases_expired_total = %d, want 1", v)
	}
	// The zombie's attempt is fenced even before a re-grant.
	if err := c.acceptFrame(0, 1, "victim", Frame{Type: "wm", From: 3, To: 4, Delta: &d1}); err == nil {
		t.Fatal("zombie frame accepted after expiry")
	}

	// The re-issue resumes at the confirmed watermark with a fresh
	// fencing token.
	lease2, ok := c.grantLease("healer")
	if !ok || lease2.Attempt != 2 || lease2.Resume != 3 || lease2.Start != 0 {
		t.Fatalf("re-grant: %+v ok=%v", lease2, ok)
	}
	if v := c.leasesReissued.Value(); v != 1 {
		t.Errorf("dist_leases_reissued_total = %d, want 1", v)
	}
	if err := c.acceptFrame(0, 1, "victim", Frame{Type: "wm", From: 3, To: 4, Delta: &d1}); err == nil {
		t.Fatal("zombie frame accepted after re-grant")
	}

	// The healer finishes: done's Total must cross-check against the
	// attempt's own deltas, not the range's lifetime digest.
	d2 := ToJSON(fakeDigest(21))
	if err := c.acceptFrame(0, 2, "healer", Frame{Type: "wm", From: 3, To: 5, Delta: &d2}); err != nil {
		t.Fatal(err)
	}
	d3 := ToJSON(fakeDigest(31))
	badTotal := ToJSON(fakeDigest(99))
	done := Frame{Type: "done", From: 5, To: int32(g.NV()), Delta: &d3, Total: &badTotal}
	if err := c.acceptFrame(0, 2, "healer", done); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("done with wrong total: err=%v, want digest mismatch", err)
	}
	attemptTotal := fakeDigest(21)
	attemptTotal.Merge(fakeDigest(31))
	tj := ToJSON(attemptTotal)
	done.Total = &tj
	if err := c.acceptFrame(0, 2, "healer", done); err != nil {
		t.Fatal(err)
	}

	want := fakeDigest(11, 12)
	want.Merge(fakeDigest(21))
	want.Merge(fakeDigest(31))
	got, complete := c.GlobalDigest()
	if !complete || !got.Equal(want) {
		t.Fatalf("global digest %v complete=%v, want %v complete", got, complete, want)
	}
	select {
	case <-c.Done():
	default:
		t.Error("Done not closed after the last range finished")
	}
	if v := c.framesRejected.Value(); v < 10 {
		t.Errorf("dist_frames_rejected_total = %d, want every rejection counted", v)
	}
}

// TestManifestRecovery simulates kill -9 by simply abandoning a live
// coordinator and constructing a fresh one over the same directory: the
// ranges must come back with their watermarks, digests and attempt
// counters, leased reverted to pending.
func TestManifestRecovery(t *testing.T) {
	g := testGraph(t, 5, 10, 12, 40)
	dir := t.TempDir()
	spec := testSpec(t, g, "AdaMBE", "asc")

	c1, err := NewCoordinator(CoordOptions{Spec: spec, Dir: dir, Ranges: 2, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	lease, ok := c1.grantLease("w0")
	if !ok {
		t.Fatal("no lease")
	}
	d1 := fakeDigest(7, 8, 9)
	dj := ToJSON(d1)
	if err := c1.acceptFrame(lease.RangeID, lease.Attempt, "w0",
		Frame{Type: "wm", From: lease.Resume, To: lease.Resume + 3, Delta: &dj}); err != nil {
		t.Fatal(err)
	}
	// kill -9: no Stop, no further writes; the manifest on disk is all
	// that survives.

	c2, err := NewCoordinator(CoordOptions{Spec: spec, Dir: dir, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if n := len(c2.ranges); n != 2 {
		t.Fatalf("recovered %d ranges, want the persisted 2 (CoordOptions.Ranges must be ignored)", n)
	}
	r0 := c2.ranges[lease.RangeID]
	if r0.state != statePending || r0.attempt != 1 || r0.watermark != lease.Resume+3 || !r0.digest.Equal(d1) {
		t.Fatalf("recovered range: state=%s attempt=%d watermark=%d digest=%v", r0.state, r0.attempt, r0.watermark, r0.digest)
	}
	// A re-grant after recovery continues the attempt sequence — the
	// fencing token can never alias a pre-crash zombie's.
	lease2, ok := c2.grantLease("w1")
	if !ok || lease2.Attempt != 2 || lease2.Resume != lease.Resume+3 {
		t.Fatalf("post-recovery grant: %+v ok=%v", lease2, ok)
	}

	// A mismatched spec must refuse the directory outright.
	for _, bad := range []Spec{
		testSpec(t, g, "BBK", "asc"),
		testSpec(t, g, "AdaMBE", "rand"),
		testSpec(t, testGraph(t, 6, 10, 12, 40), "AdaMBE", "asc"),
	} {
		if _, err := NewCoordinator(CoordOptions{Spec: bad, Dir: dir}); err == nil {
			t.Errorf("incompatible spec %+v accepted over an existing manifest", bad)
		}
	}
}

// TestManifestRecoveryComplete: a finished run's manifest recovers
// directly into the complete state with the same global digest.
func TestManifestRecoveryComplete(t *testing.T) {
	g := testGraph(t, 9, 8, 6, 20)
	dir := t.TempDir()
	spec := testSpec(t, g, "BBK", "none")

	c1, err := NewCoordinator(CoordOptions{Spec: spec, Dir: dir, Ranges: 2})
	if err != nil {
		t.Fatal(err)
	}
	for {
		lease, ok := c1.grantLease("w")
		if !ok {
			break
		}
		d := fakeDigest(uint64(lease.RangeID)*100 + 1)
		dj := ToJSON(d)
		if err := c1.acceptFrame(lease.RangeID, lease.Attempt, "w",
			Frame{Type: "done", From: lease.Resume, To: lease.End, Delta: &dj, Total: &dj}); err != nil {
			t.Fatal(err)
		}
	}
	want, complete := c1.GlobalDigest()
	if !complete {
		t.Fatal("run not complete after every range was sealed")
	}

	c2, err := NewCoordinator(CoordOptions{Spec: spec, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, complete := c2.GlobalDigest()
	if !complete || !got.Equal(want) {
		t.Fatalf("recovered complete run: digest %v complete=%v, want %v", got, complete, want)
	}
	select {
	case <-c2.Done():
	default:
		t.Error("recovered complete run: Done not closed")
	}
	// A complete run grants nothing and tells workers to exit.
	if _, ok := c2.grantLease("w"); ok {
		t.Error("complete run granted a lease")
	}
}

// TestEmptyDoneFrameSealsFullyStreamedRange: when the frontier reaches
// the range end before enumeration returns, the flusher streams the
// final interval as a wm frame and the done frame arrives empty
// (From == To == end). It must still seal the range — rejecting it
// would strand the range at watermark == end forever (the re-issued
// lease would have nothing to enumerate).
func TestEmptyDoneFrameSealsFullyStreamedRange(t *testing.T) {
	g := testGraph(t, 5, 8, 8, 24)
	c, err := NewCoordinator(CoordOptions{
		Spec: testSpec(t, g, "AdaMBE", "none"),
		Dir:  t.TempDir(), Ranges: 1, LeaseTTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.grantLease("w"); !ok {
		t.Fatal("no lease granted")
	}
	end := int32(g.NV())
	d := ToJSON(fakeDigest(41, 42))
	if err := c.acceptFrame(0, 1, "w", Frame{Type: "wm", From: 0, To: end, Delta: &d}); err != nil {
		t.Fatal(err)
	}

	empty := ToJSON(difftest.Digest{})
	// The cross-check still guards the empty tail: a total that does not
	// reproduce the attempt's streamed deltas is rejected.
	bad := ToJSON(fakeDigest(99))
	if err := c.acceptFrame(0, 1, "w", Frame{Type: "done", From: end, To: end, Delta: &empty, Total: &bad}); err == nil ||
		!strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("empty done with wrong total: err=%v, want digest mismatch", err)
	}
	// An empty wm frame is still a protocol violation.
	if err := c.acceptFrame(0, 1, "w", Frame{Type: "wm", From: end, To: end, Delta: &empty}); err == nil {
		t.Fatal("empty wm frame accepted")
	}

	if err := c.acceptFrame(0, 1, "w", Frame{Type: "done", From: end, To: end, Delta: &empty, Total: &d}); err != nil {
		t.Fatalf("empty done frame rejected: %v", err)
	}
	if wm, state, _ := c.RangeWatermark(0); state != stateDone || wm != end {
		t.Fatalf("after empty done: state %s watermark %d", state, wm)
	}
	got, complete := c.GlobalDigest()
	if !complete || !got.Equal(fakeDigest(41, 42)) {
		t.Fatalf("global digest %v complete=%v after empty-done seal", got, complete)
	}
	select {
	case <-c.Done():
	default:
		t.Error("Done not closed after empty-done seal")
	}
}
