package dist

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	mbe "repro"
	"repro/internal/core"
	"repro/internal/difftest"
	"repro/internal/faultinject"
	"repro/internal/graph"
)

// testGraphPair builds the same random bipartite graph twice from one
// edge list: the internal form the dist workers run on, and the public
// form the single-process oracle runs on (mbe.Edge aliases graph.Edge,
// and FromEdges collapses duplicates identically on both paths).
func testGraphPair(t testing.TB, seed int64, nu, nv, m int) (*graph.Bipartite, *mbe.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{U: int32(rng.Intn(nu)), V: int32(rng.Intn(nv))}
	}
	g, err := graph.FromEdges(nu, nv, edges)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := mbe.FromEdges(nu, nv, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g, pub
}

// oracleDigest runs the same (algorithm, ordering, seed) single-process
// through the public API and digests the output in the original id
// space — the ground truth every cluster run must reproduce exactly.
func oracleDigest(t *testing.T, pub *mbe.Graph, algo, ordering string, seed int64) difftest.Digest {
	t.Helper()
	alg, err := mbe.ParseAlgorithm(algo)
	if err != nil {
		t.Fatal(err)
	}
	ord, err := mbe.ParseOrdering(ordering)
	if err != nil {
		t.Fatal(err)
	}
	var d difftest.Digest
	if _, err := mbe.Enumerate(pub, mbe.Options{
		Algorithm: alg, Ordering: ord, Seed: seed,
		OnBiclique: d.Observe,
	}); err != nil {
		t.Fatal(err)
	}
	return d
}

// runCluster drives n in-process workers against c's HTTP handler until
// every one of them exits (the run completed or ctx gave up) and returns
// their errors.
func runCluster(ctx context.Context, t *testing.T, c *Coordinator, n int, mk func(i int) WorkerOptions) []error {
	t.Helper()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		opts := mk(i)
		opts.Coord = ts.URL
		if opts.ID == "" {
			opts.ID = fmt.Sprintf("w%d", i)
		}
		if opts.PollInterval == 0 {
			opts.PollInterval = 10 * time.Millisecond
		}
		if opts.FlushInterval == 0 {
			opts.FlushInterval = 5 * time.Millisecond
		}
		w := NewWorker(opts)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.Run(ctx)
		}(i)
	}
	wg.Wait()
	return errs
}

// TestClusterMatchesSingleProcess is the tentpole's correctness anchor:
// a 3-worker in-process cluster over every supported engine family and
// ordering must produce a global digest byte-identical to a
// single-process run of the same configuration.
func TestClusterMatchesSingleProcess(t *testing.T) {
	g, pub := testGraphPair(t, 7, 50, 70, 700)
	cases := []struct {
		algo, ordering string
		seed           int64
		threads        int
	}{
		{algo: "AdaMBE", ordering: "asc"},
		{algo: "ParAdaMBE", ordering: "rand", seed: 42, threads: 4},
		{algo: "AdaMBE-BIT", ordering: "none"},
		{algo: "BBK", ordering: "uc"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.algo+"/"+tc.ordering, func(t *testing.T) {
			t.Parallel()
			want := oracleDigest(t, pub, tc.algo, tc.ordering, tc.seed)

			spec := Spec{Algorithm: tc.algo, Ordering: tc.ordering, OrderSeed: tc.seed}.WithGraph(g)
			c, err := NewCoordinator(CoordOptions{Spec: spec, Dir: t.TempDir(), Ranges: 7})
			if err != nil {
				t.Fatal(err)
			}
			c.Start()
			defer c.Stop()

			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			errs := runCluster(ctx, t, c, 3, func(i int) WorkerOptions {
				return WorkerOptions{Graph: g, Threads: tc.threads}
			})
			for i, err := range errs {
				if err != nil {
					t.Errorf("worker %d: %v", i, err)
				}
			}

			got, complete := c.GlobalDigest()
			if !complete {
				t.Fatal("run did not complete")
			}
			if !got.Equal(want) || got.Count != want.Count {
				t.Errorf("cluster digest %v (count %d) != single-process %v (count %d)",
					got, got.Count, want, want.Count)
			}
			p := c.Progress()
			if !p.Complete || p.RootsDone != p.RootsTotal || p.RangesDone != p.RangesTotal || p.Bicliques != want.Count {
				t.Errorf("progress after completion: %+v", p)
			}
		})
	}
}

// TestWorkerKilledMidRangeResumesFromWatermark is the failure half of
// the anchor: a deliberately slow worker is killed mid-range after
// streaming partial watermarks; the janitor expires its lease, a healthy
// worker picks the range up from the confirmed watermark, and the final
// digest still equals the single-process run — which fails on any
// duplicated (re-enumerated below the watermark) or missing biclique.
func TestWorkerKilledMidRangeResumesFromWatermark(t *testing.T) {
	g, pub := testGraphPair(t, 11, 40, 60, 600)
	want := oracleDigest(t, pub, "AdaMBE", "asc", 0)

	spec := Spec{Algorithm: "AdaMBE", Ordering: "asc"}.WithGraph(g)
	c, err := NewCoordinator(CoordOptions{
		Spec: spec, Dir: t.TempDir(), Ranges: 2,
		LeaseTTL: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	// The victim crawls: a delay at every root visit keeps it mid-range
	// long enough to observe streamed watermarks before the kill.
	inj := faultinject.New(1)
	inj.DelayEvery(core.SiteRoot, 1, 3*time.Millisecond)
	victimCtx, killVictim := context.WithCancel(context.Background())
	defer killVictim()
	victim := NewWorker(WorkerOptions{
		Coord: ts.URL, ID: "victim", Graph: g,
		PollInterval: 5 * time.Millisecond, FlushInterval: 2 * time.Millisecond,
		FaultHook: inj.Hook(),
	})
	victimDone := make(chan error, 1)
	go func() { victimDone <- victim.Run(victimCtx) }()

	// Wait until some range has confirmed partial progress, then kill.
	deadline := time.Now().Add(30 * time.Second)
	killed, wmKill := -1, int32(0)
	for killed < 0 {
		if time.Now().After(deadline) {
			t.Fatal("no range ever streamed a partial watermark")
		}
		for id := 0; id < 2; id++ {
			wm, state, ok := c.RangeWatermark(id)
			if !ok {
				t.Fatalf("range %d missing", id)
			}
			start, end := rangeBounds(c, id)
			if state == stateLeased && wm > start && wm < end {
				killed, wmKill = id, wm
				break
			}
		}
		time.Sleep(time.Millisecond)
	}
	killVictim()
	if err := <-victimDone; err == nil {
		t.Fatal("killed worker reported success")
	}

	// The healthy worker finishes the run, re-leasing the victim's range
	// once the janitor expires it.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	healer := NewWorker(WorkerOptions{
		Coord: ts.URL, ID: "healer", Graph: g,
		PollInterval: 10 * time.Millisecond, FlushInterval: 2 * time.Millisecond,
	})
	if err := healer.Run(ctx); err != nil {
		t.Fatalf("healer: %v", err)
	}

	got, complete := c.GlobalDigest()
	if !complete {
		t.Fatal("run did not complete")
	}
	if !got.Equal(want) || got.Count != want.Count {
		t.Errorf("digest after kill+reissue %v (count %d) != single-process %v (count %d)",
			got, got.Count, want, want.Count)
	}
	if wm, state, _ := c.RangeWatermark(killed); state != stateDone || wm < wmKill {
		t.Errorf("killed range %d: state %s watermark %d, want done at >= %d (watermark regressed)",
			killed, state, wm, wmKill)
	}
	if v := c.leasesExpired.Value(); v < 1 {
		t.Errorf("dist_leases_expired_total = %d, want >= 1", v)
	}
	if v := c.leasesReissued.Value(); v < 1 {
		t.Errorf("dist_leases_reissued_total = %d, want >= 1", v)
	}
}

func rangeBounds(c *Coordinator, id int) (start, end int32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ranges[id].start, c.ranges[id].end
}

// TestCoordinatorRestartResumesRun kills the coordinator (abandons it
// mid-run, manifest on disk) and finishes the run under a recovered
// coordinator: persisted watermarks count, nothing double-merges.
func TestCoordinatorRestartResumesRun(t *testing.T) {
	g, pub := testGraphPair(t, 13, 40, 60, 600)
	want := oracleDigest(t, pub, "AdaMBE", "asc", 0)
	dir := t.TempDir()
	spec := Spec{Algorithm: "AdaMBE", Ordering: "asc"}.WithGraph(g)

	c1, err := NewCoordinator(CoordOptions{Spec: spec, Dir: dir, Ranges: 4, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(c1.Handler())
	inj := faultinject.New(2)
	inj.DelayEvery(core.SiteRoot, 1, 2*time.Millisecond)
	wctx, wcancel := context.WithCancel(context.Background())
	w1 := NewWorker(WorkerOptions{
		Coord: ts1.URL, ID: "pre-crash", Graph: g,
		PollInterval: 5 * time.Millisecond, FlushInterval: 2 * time.Millisecond,
		FaultHook: inj.Hook(),
	})
	w1done := make(chan error, 1)
	go func() { w1done <- w1.Run(wctx) }()

	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no watermark progress before the simulated coordinator crash")
		}
		if p := c1.Progress(); p.RootsDone > 0 && !p.Complete {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// Crash: tear the HTTP frontage down and abandon c1 un-stopped. The
	// worker's stream dies with it.
	ts1.Close()
	wcancel()
	<-w1done

	c2, err := NewCoordinator(CoordOptions{Spec: spec, Dir: dir, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	c2.Start()
	defer c2.Stop()
	if p := c2.Progress(); p.RootsDone == 0 {
		t.Error("recovered coordinator lost every persisted watermark")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	errs := runCluster(ctx, t, c2, 2, func(i int) WorkerOptions {
		return WorkerOptions{Graph: g}
	})
	for i, err := range errs {
		if err != nil {
			t.Errorf("post-recovery worker %d: %v", i, err)
		}
	}
	got, complete := c2.GlobalDigest()
	if !complete {
		t.Fatal("recovered run did not complete")
	}
	if !got.Equal(want) || got.Count != want.Count {
		t.Errorf("digest after coordinator restart %v (count %d) != single-process %v (count %d)",
			got, got.Count, want, want.Count)
	}
}

// TestResumeAtRangeEndSealsWithoutEnumerating: a lease can legitimately
// resume at the range end — the previous attempt streamed every root's
// delta but died (or was fenced) before its done frame landed. The next
// worker must seal the range with an empty done frame instead of trying
// to enumerate an empty root range, or the run livelocks on re-issued
// leases that can never finish.
func TestResumeAtRangeEndSealsWithoutEnumerating(t *testing.T) {
	g, pub := testGraphPair(t, 17, 30, 40, 300)
	want := oracleDigest(t, pub, "AdaMBE", "asc", 0)

	spec := Spec{Algorithm: "AdaMBE", Ordering: "asc"}.WithGraph(g)
	c, err := NewCoordinator(CoordOptions{Spec: spec, Dir: t.TempDir(), Ranges: 1, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	// Attempt 1 streams the whole range as one wm frame, then dies
	// before the done frame: watermark == end, state still leased.
	if _, ok := c.grantLease("crashed"); !ok {
		t.Fatal("no lease granted")
	}
	end := int32(g.NV())
	dj := ToJSON(want)
	if err := c.acceptFrame(0, 1, "crashed", Frame{Type: "wm", From: 0, To: end, Delta: &dj}); err != nil {
		t.Fatal(err)
	}
	c.now = func() time.Time { return time.Now().Add(2 * time.Minute) }
	c.expireLeases()
	if wm, state, _ := c.RangeWatermark(0); state != statePending || wm != end {
		t.Fatalf("setup: state %s watermark %d, want pending at %d", state, wm, end)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	w := NewWorker(WorkerOptions{
		Coord: ts.URL, ID: "sealer", Graph: g,
		PollInterval: 10 * time.Millisecond, FlushInterval: 5 * time.Millisecond,
	})
	if err := w.Run(ctx); err != nil {
		t.Fatalf("sealer: %v", err)
	}

	got, complete := c.GlobalDigest()
	if !complete {
		t.Fatal("run did not complete")
	}
	if !got.Equal(want) || got.Count != want.Count {
		t.Errorf("digest after empty-tail seal %v (count %d) != single-process %v (count %d)",
			got, got.Count, want, want.Count)
	}
}
