// Package dist is the distributed-enumeration layer: a coordinator that
// splits the root space [0, |V|) into ranges and leases them to workers,
// and a worker that enumerates its leased range and streams frontier
// watermarks with mergeable digest deltas back over HTTP/NDJSON.
//
// The design generalizes the single-process checkpoint model
// (internal/ckpt, docs/DURABILITY.md) to many processes: root subtrees
// partition the output — every maximal biclique is emitted exactly once,
// under the minimal vertex of its R side — so disjoint root ranges
// enumerate disjoint biclique sets, and the per-range multiset digests
// (internal/difftest) merge commutatively into the global run digest.
// This is the shape of Mukherjee & Tirthapura's MapReduce MBE
// (arXiv:1404.4910), carried on our own lease/watermark protocol instead
// of Hadoop.
//
// Exactly-once across worker death rests on three rules, the same ones
// the durable spool uses, lifted to the wire (docs/DISTRIBUTED.md is the
// normative spec):
//
//   - Workers stream watermark frames: each carries the digest delta of
//     the now-complete root interval [from, to). Intervals from one
//     attempt are contiguous and disjoint, so the coordinator's merge of
//     accepted deltas is the exact digest of [Start, Watermark).
//   - A lease re-issue (expiry, worker death, coordinator restart)
//     resumes at the range's confirmed watermark: nothing below it is
//     re-enumerated, everything at or above it is re-enumerated whole.
//   - Every frame carries the lease's attempt number as a fencing token:
//     frames from a stale attempt are rejected, so a zombie worker that
//     missed its expiry can never double-merge output the re-issued
//     lease is re-producing.
//
// The coordinator persists its state to dist-manifest.json with the
// spool's atomic write (temp + fsync + rename), so kill -9 at any point
// recovers: leased ranges return to pending and resume from their last
// persisted watermark.
package dist

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/spool"
)

// Spec pins everything that must agree between the coordinator and every
// worker for the root decomposition — and therefore the watermarks and
// digests — to be meaningful: the engine, the V ordering with its seed,
// τ, and the graph's identity. Workers verify their loaded graph against
// the signature before accepting leases.
type Spec struct {
	// Algorithm is the engine name in the public registry's spelling:
	// AdaMBE, ParAdaMBE, Baseline, AdaMBE-LN, AdaMBE-BIT, or BBK. The
	// paper competitors do not share the root partition contract and are
	// rejected.
	Algorithm string `json:"algorithm"`
	// Ordering is the V-side ordering tag (asc|rand|uc|none) with its
	// seed — the same pair a spool meta records, for the same reason: the
	// root ids every watermark refers to live in the ordered id space.
	Ordering  string `json:"ordering"`
	OrderSeed int64  `json:"order_seed"`
	Tau       int    `json:"tau"`

	// The graph: at most one locator, plus the identity every worker
	// must verify. Dataset names a built-in synthetic dataset; Path and
	// Bin are file paths valid on the workers' hosts (single-box or
	// shared-filesystem deployments). A worker constructed with an
	// explicit Graph ignores the locator.
	Dataset string `json:"dataset,omitempty"`
	Path    string `json:"path,omitempty"`
	Bin     string `json:"bin,omitempty"`

	NU        int    `json:"nu"`
	NV        int    `json:"nv"`
	Edges     int64  `json:"edges"`
	GraphHash string `json:"graph_hash"`
}

// WithGraph fills the Spec's graph-identity fields from g.
func (s Spec) WithGraph(g *graph.Bipartite) Spec {
	s.NU = g.NU()
	s.NV = g.NV()
	s.Edges = g.NumEdges()
	s.GraphHash = spool.GraphSignature(g)
	return s
}

// CheckGraph verifies that g is the graph the spec describes.
func (s Spec) CheckGraph(g *graph.Bipartite) error {
	if g.NU() != s.NU || g.NV() != s.NV || g.NumEdges() != s.Edges || spool.GraphSignature(g) != s.GraphHash {
		return fmt.Errorf("dist: graph mismatch: spec %dx%d/%d (%s), loaded %dx%d/%d (%s)",
			s.NU, s.NV, s.Edges, s.GraphHash, g.NU(), g.NV(), g.NumEdges(), spool.GraphSignature(g))
	}
	return nil
}

// engineKind distinguishes the two engine families a worker can drive
// through the durable emission path.
type engineKind int

const (
	engineCore engineKind = iota
	engineBBK
)

// resolveEngine maps a Spec.Algorithm spelling to its engine family and
// (for the core family) variant. parallel reports whether the engine may
// run with Threads > 1.
func resolveEngine(name string) (kind engineKind, variant core.Variant, parallel bool, err error) {
	switch {
	case strings.EqualFold(name, "AdaMBE"):
		return engineCore, core.Ada, false, nil
	case strings.EqualFold(name, "ParAdaMBE"):
		return engineCore, core.Ada, true, nil
	case strings.EqualFold(name, "Baseline"):
		return engineCore, core.Baseline, false, nil
	case strings.EqualFold(name, "AdaMBE-LN"):
		return engineCore, core.LN, false, nil
	case strings.EqualFold(name, "AdaMBE-BIT"):
		return engineCore, core.BIT, false, nil
	case strings.EqualFold(name, "BBK"):
		return engineBBK, 0, false, nil
	}
	return 0, 0, false, fmt.Errorf("dist: algorithm %q does not support the root partition contract (want AdaMBE|ParAdaMBE|Baseline|AdaMBE-LN|AdaMBE-BIT|BBK)", name)
}

// resolveOrdering maps a Spec.Ordering tag to the order package's Kind.
// ok is false for "none" (identity: no permutation is applied).
func resolveOrdering(tag string) (order.Kind, bool, error) {
	if tag == "" || tag == "none" {
		return 0, false, nil
	}
	k, err := order.ParseKind(tag)
	if err != nil {
		return 0, false, fmt.Errorf("dist: %w", err)
	}
	return k, true, nil
}

// Validate checks the spec's engine and ordering spellings and its graph
// identity fields, so misconfiguration fails at coordinator start, not
// at the first lease.
func (s Spec) Validate() error {
	if _, _, _, err := resolveEngine(s.Algorithm); err != nil {
		return err
	}
	if _, _, err := resolveOrdering(s.Ordering); err != nil {
		return err
	}
	if s.NV <= 0 || s.NU <= 0 || s.GraphHash == "" {
		return fmt.Errorf("dist: spec is missing its graph identity (nu=%d nv=%d hash=%q); build it with WithGraph", s.NU, s.NV, s.GraphHash)
	}
	return nil
}

// RootRange is one contiguous shard [Start, End) of the root space.
type RootRange struct {
	Start int32
	End   int32
}

// SplitRoots cuts [0, nv) into at most n contiguous non-empty ranges of
// near-equal width. Fewer than n come back when nv < n.
func SplitRoots(nv, n int) []RootRange {
	if n < 1 {
		n = 1
	}
	if n > nv {
		n = nv
	}
	out := make([]RootRange, 0, n)
	for i := 0; i < n; i++ {
		r := RootRange{Start: int32(i * nv / n), End: int32((i + 1) * nv / n)}
		if r.End > r.Start {
			out = append(out, r)
		}
	}
	return out
}
