package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/baselines"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/difftest"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/server"
)

// WorkerOptions configures NewWorker.
type WorkerOptions struct {
	// Coord is the coordinator's base URL, e.g. "http://127.0.0.1:7600".
	Coord string
	// ID names this worker in leases and logs; "" derives host-pid.
	ID string
	// Graph, when non-nil, skips the spec's graph locator — the caller
	// already has the graph in memory (in-process clusters, tests). It
	// is still verified against the spec's signature.
	Graph *graph.Bipartite
	// Threads bounds the parallel engine's width; <= 0 means 1. Ignored
	// by the serial engines.
	Threads int
	// Client is the HTTP client; nil uses a default with no overall
	// timeout (streams are long-lived).
	Client *http.Client
	// PollInterval is the wait between lease polls when the coordinator
	// answers 204 (everything currently leased); 0 means 500ms.
	PollInterval time.Duration
	// FlushInterval is the watermark flush cadence; 0 means 200ms.
	FlushInterval time.Duration
	// FaultHook passes through to the engine (test fault injection).
	FaultHook func(site string) error
	// Log receives structured events; nil discards them.
	Log *slog.Logger
}

// Worker enumerates leased root ranges against a coordinator until the
// run completes. One Worker runs one range at a time.
type Worker struct {
	opts   WorkerOptions
	client *http.Client
	log    *slog.Logger

	// Resolved once per process from the config.
	cfg     Config
	kind    engineKind
	variant core.Variant
	par     bool
	ordered *graph.Bipartite // graph with the spec's V ordering applied
	perm    []int32          // ordered V id -> original V id; nil for none
}

// NewWorker builds a worker. Nothing touches the network until Run.
func NewWorker(opts WorkerOptions) *Worker {
	if opts.ID == "" {
		host, _ := os.Hostname()
		opts.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 500 * time.Millisecond
	}
	if opts.FlushInterval <= 0 {
		opts.FlushInterval = 200 * time.Millisecond
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	log := opts.Log
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
	}
	return &Worker{opts: opts, client: client, log: log}
}

// retryPolicy is the worker's schedule for idempotent control calls
// (config, lease). Stream frames are NOT retried — the stream either
// lives or the range is re-leased — so exactly-once never depends on
// retry semantics.
func (w *Worker) retryPolicy() server.RetryPolicy {
	return server.RetryPolicy{MaxAttempts: 5, Backoff: server.Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second}}
}

// Run drives the worker loop: fetch config, then lease-enumerate-stream
// until the coordinator reports the run complete (or ctx is canceled).
// A failed range attempt is logged and abandoned — the lease expires at
// the coordinator and is re-issued, possibly to this same worker.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.bootstrap(ctx); err != nil {
		return err
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, state, err := w.acquireLease(ctx)
		switch {
		case err != nil:
			return err
		case state == leaseRunDone:
			w.log.Info("dist_worker_exit", "worker", w.opts.ID, "reason", "run complete")
			return nil
		case state == leaseNoneAvailable:
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(w.opts.PollInterval):
			}
			continue
		}
		if err := w.runRange(ctx, lease); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// Abandon the attempt; the coordinator's janitor re-issues
			// the range from its confirmed watermark.
			w.log.Warn("dist_range_attempt_failed", "worker", w.opts.ID,
				"range", lease.RangeID, "attempt", lease.Attempt, "err", err)
		}
	}
}

// bootstrap fetches the coordinator config, loads and verifies the
// graph, and applies the spec's ordering.
func (w *Worker) bootstrap(ctx context.Context) error {
	var cfg Config
	err := server.Retry(ctx, w.retryPolicy(), func(int) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.opts.Coord+"/dist/v1/config", nil)
		if err != nil {
			return server.Permanent(err)
		}
		resp, err := w.client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("config: HTTP %d", resp.StatusCode)
		}
		return json.NewDecoder(resp.Body).Decode(&cfg)
	})
	if err != nil {
		return fmt.Errorf("dist: worker %s: %w", w.opts.ID, err)
	}
	if cfg.Version != ProtocolVersion {
		return fmt.Errorf("dist: coordinator speaks protocol v%d, this worker v%d", cfg.Version, ProtocolVersion)
	}
	w.cfg = cfg

	kind, variant, par, err := resolveEngine(cfg.Spec.Algorithm)
	if err != nil {
		return err
	}
	w.kind, w.variant, w.par = kind, variant, par

	g := w.opts.Graph
	if g == nil {
		if g, err = loadSpecGraph(cfg.Spec); err != nil {
			return err
		}
	}
	if err := cfg.Spec.CheckGraph(g); err != nil {
		return err
	}

	ok, usePerm, err := resolveOrdering(cfg.Spec.Ordering)
	if err != nil {
		return err
	}
	w.ordered, w.perm = g, nil
	if usePerm {
		perm := order.Permutation(g, ok, cfg.Spec.OrderSeed)
		og, err := g.PermuteV(perm)
		if err != nil {
			return fmt.Errorf("dist: ordering: %w", err)
		}
		w.ordered, w.perm = og, perm
	}
	w.log.Info("dist_worker_ready", "worker", w.opts.ID, "algorithm", cfg.Spec.Algorithm,
		"ordering", cfg.Spec.Ordering, "nv", cfg.Spec.NV, "ranges", cfg.Ranges)
	return nil
}

// loadSpecGraph resolves the spec's graph locator.
func loadSpecGraph(s Spec) (*graph.Bipartite, error) {
	switch {
	case s.Dataset != "":
		spec, found := datasets.ByName(s.Dataset)
		if !found {
			return nil, fmt.Errorf("dist: unknown dataset %q", s.Dataset)
		}
		return spec.Build(), nil
	case s.Path != "":
		return graph.ReadKonectFile(s.Path)
	case s.Bin != "":
		f, err := os.Open(s.Bin)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadBinary(f)
	}
	return nil, errors.New("dist: spec has no graph locator and the worker was given no graph")
}

type leaseState int

const (
	leaseGranted leaseState = iota
	leaseNoneAvailable
	leaseRunDone
)

// acquireLease asks the coordinator for a range.
func (w *Worker) acquireLease(ctx context.Context) (Lease, leaseState, error) {
	var lease Lease
	state := leaseGranted
	body, _ := json.Marshal(leaseRequest{Worker: w.opts.ID})
	err := server.Retry(ctx, w.retryPolicy(), func(int) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.Coord+"/dist/v1/lease", bytes.NewReader(body))
		if err != nil {
			return server.Permanent(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := w.client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			state = leaseGranted
			return json.NewDecoder(resp.Body).Decode(&lease)
		case http.StatusNoContent:
			state = leaseNoneAvailable
			return nil
		case http.StatusGone:
			state = leaseRunDone
			return nil
		default:
			return fmt.Errorf("lease: HTTP %d", resp.StatusCode)
		}
	})
	if err != nil {
		return Lease{}, 0, fmt.Errorf("dist: worker %s: %w", w.opts.ID, err)
	}
	return lease, state, nil
}

// runRange enumerates one leased range, streaming watermark deltas as
// the frontier advances and a final done frame when the range subtree
// is exhausted.
func (w *Worker) runRange(ctx context.Context, lease Lease) error {
	rctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	// A lease resuming at the range end has nothing left to enumerate: a
	// prior attempt streamed every root's delta but its done frame never
	// landed (crash, or the coordinator restarted between the final wm
	// frame and the seal). Send the empty done frame the protocol owes.
	if lease.Resume >= lease.End {
		st, err := w.openStream(rctx, cancel, lease)
		if err != nil {
			return err
		}
		dj, tj := ToJSON(difftest.Digest{}), ToJSON(difftest.Digest{})
		if err := st.send(Frame{Type: "done", From: lease.Resume, To: lease.End, Delta: &dj, Total: &tj}); err != nil {
			return fmt.Errorf("range %d attempt %d: empty done frame: %w", lease.RangeID, lease.Attempt, err)
		}
		if err := st.finish(); err != nil {
			return fmt.Errorf("range %d attempt %d: %w", lease.RangeID, lease.Attempt, err)
		}
		w.log.Info("dist_range_sealed_empty", "worker", w.opts.ID,
			"range", lease.RangeID, "attempt", lease.Attempt)
		return nil
	}

	workers := w.opts.Threads
	if !w.par || workers < 1 {
		workers = 1
	}
	sink := newRangeSink(w.perm, lease.Resume, lease.End, workers)
	frontier := ckpt.NewFrontier(lease.Resume, lease.End)

	st, err := w.openStream(rctx, cancel, lease)
	if err != nil {
		return err
	}

	// The flusher turns frontier progress into wm frames at FlushInterval
	// cadence and falls back to hb frames when the watermark is parked
	// (deep subtree): either way the lease's heartbeat stays fresh. It
	// owns prog until it is stopped, so the final done frame (sent after
	// stopFlush is closed and drained) never races a wm frame.
	prog := &rangeProgress{sent: lease.Resume}
	hbEvery := time.Duration(lease.TTLMS) * time.Millisecond / 3
	if hbEvery <= 0 {
		hbEvery = DefaultLeaseTTL / 3
	}
	stopFlush := make(chan struct{})
	flushDone := make(chan struct{})
	go func() {
		defer close(flushDone)
		t := time.NewTicker(w.opts.FlushInterval)
		defer t.Stop()
		for {
			select {
			case <-stopFlush:
				return
			case <-rctx.Done():
				return
			case <-t.C:
				if err := w.flushWatermark(st, sink, frontier, prog, hbEvery); err != nil {
					// Stream gone: stop the enumeration, the attempt is over.
					cancel(err)
					return
				}
			}
		}
	}()

	res, runErr := w.enumerate(rctx, lease, sink, frontier)
	close(stopFlush)
	<-flushDone

	if cause := context.Cause(rctx); cause != nil && !errors.Is(cause, context.Canceled) {
		st.abort(cause)
		return fmt.Errorf("range %d attempt %d: stream failed: %w", lease.RangeID, lease.Attempt, cause)
	}
	if runErr != nil || res.StopReason != core.StopNone || !frontier.Complete() {
		err := fmt.Errorf("range %d attempt %d: enumeration stopped (%v, reason %v)",
			lease.RangeID, lease.Attempt, runErr, res.StopReason)
		st.abort(err)
		return err
	}

	// Final frame: the tail interval [sent, End) plus the attempt total.
	prog.mu.Lock()
	delta := sink.drain(prog.sent, lease.End)
	from := prog.sent
	prog.total.Merge(delta)
	total := prog.total
	prog.sent = lease.End
	prog.mu.Unlock()
	dj, tj := ToJSON(delta), ToJSON(total)
	if err := st.send(Frame{Type: "done", From: from, To: lease.End, Delta: &dj, Total: &tj}); err != nil {
		return fmt.Errorf("range %d attempt %d: done frame: %w", lease.RangeID, lease.Attempt, err)
	}
	if err := st.finish(); err != nil {
		return fmt.Errorf("range %d attempt %d: %w", lease.RangeID, lease.Attempt, err)
	}
	w.log.Info("dist_range_streamed", "worker", w.opts.ID, "range", lease.RangeID,
		"attempt", lease.Attempt, "bicliques", total.Count)
	return nil
}

// rangeProgress tracks what this attempt has streamed. sent is the
// exclusive end of the last streamed interval; total is the merge of
// every streamed delta (the done frame's cross-check value).
type rangeProgress struct {
	mu        sync.Mutex
	sent      int32
	total     difftest.Digest
	lastFrame time.Time
}

// flushWatermark sends one wm frame if the frontier advanced past what
// was already streamed, or an hb frame if the stream has been silent for
// a third of the TTL.
func (w *Worker) flushWatermark(st *stream, sink *rangeSink, frontier *ckpt.Frontier, prog *rangeProgress, hbEvery time.Duration) error {
	wm := frontier.Watermark()
	prog.mu.Lock()
	defer prog.mu.Unlock()
	if wm > prog.sent {
		delta := sink.drain(prog.sent, wm)
		dj := ToJSON(delta)
		f := Frame{Type: "wm", From: prog.sent, To: wm, Delta: &dj}
		if err := st.send(f); err != nil {
			return err
		}
		prog.total.Merge(delta)
		prog.sent = wm
		prog.lastFrame = time.Now()
		return nil
	}
	if time.Since(prog.lastFrame) >= hbEvery {
		if err := st.send(Frame{Type: "hb"}); err != nil {
			return err
		}
		prog.lastFrame = time.Now()
	}
	return nil
}

// enumerate runs the spec's engine over [lease.Resume, lease.End).
func (w *Worker) enumerate(ctx context.Context, lease Lease, sink *rangeSink, frontier *ckpt.Frontier) (core.Result, error) {
	switch w.kind {
	case engineBBK:
		return baselines.Run(w.ordered, baselines.BBK, baselines.Options{
			Context:   ctx,
			FaultHook: w.opts.FaultHook,
			Sink:      sink,
			Frontier:  frontier,
			StartRoot: lease.Resume,
			EndRoot:   lease.End,
		})
	default:
		threads := 0
		if w.par && w.opts.Threads > 1 {
			threads = w.opts.Threads
		}
		return core.Enumerate(w.ordered, core.Options{
			Variant:   w.variant,
			Tau:       w.cfg.Spec.Tau,
			Threads:   threads,
			Context:   ctx,
			FaultHook: w.opts.FaultHook,
			Sink:      sink,
			Frontier:  frontier,
			StartRoot: lease.Resume,
			EndRoot:   lease.End,
		})
	}
}

// stream is one NDJSON frame stream over a chunked HTTP POST. Frames
// are written to an io.Pipe that the transport streams to the
// coordinator; the response (200 on clean EOF, 409 on fencing
// rejection) arrives when the handler returns.
type stream struct {
	mu  sync.Mutex
	enc *json.Encoder
	pw  *io.PipeWriter

	respCh chan streamOutcome
}

type streamOutcome struct {
	code int
	body streamResult
	err  error
}

// openStream starts the range's frame stream. If the coordinator rejects
// the stream mid-flight (fencing), the response arrives early and
// cancels the range context via cancel.
func (w *Worker) openStream(ctx context.Context, cancel context.CancelCauseFunc, lease Lease) (*stream, error) {
	pr, pw := io.Pipe()
	url := fmt.Sprintf("%s/dist/v1/ranges/%d/stream?attempt=%d&worker=%s",
		w.opts.Coord, lease.RangeID, lease.Attempt, w.opts.ID)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, pr)
	if err != nil {
		pw.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	st := &stream{enc: json.NewEncoder(pw), pw: pw, respCh: make(chan streamOutcome, 1)}
	go func() {
		resp, err := w.client.Do(req)
		out := streamOutcome{err: err}
		if err == nil {
			out.code = resp.StatusCode
			json.NewDecoder(resp.Body).Decode(&out.body) //nolint:errcheck // reason is best-effort
			resp.Body.Close()
		}
		if out.err != nil && ctx.Err() == nil {
			cancel(fmt.Errorf("dist: stream transport: %w", out.err))
		} else if out.err == nil && out.code != http.StatusOK {
			cancel(fmt.Errorf("dist: stream rejected: HTTP %d: %s", out.code, out.body.Reason))
		}
		st.respCh <- out
	}()
	return st, nil
}

// send writes one frame. Safe for use by the flusher goroutine and the
// final done-frame path (which are serialized anyway); the mutex is for
// the encoder's buffer.
func (s *stream) send(f Frame) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enc.Encode(f)
}

// finish closes the stream cleanly and waits for the coordinator's
// verdict.
func (s *stream) finish() error {
	s.pw.Close()
	out := <-s.respCh
	if out.err != nil {
		return fmt.Errorf("stream: %w", out.err)
	}
	if out.code != http.StatusOK || !out.body.OK {
		return fmt.Errorf("stream rejected: HTTP %d: %s", out.code, out.body.Reason)
	}
	return nil
}

// abort tears the stream down without waiting for a verdict.
func (s *stream) abort(cause error) {
	s.pw.CloseWithError(cause)
	<-s.respCh
}

// rangeSink accumulates one digest per root of the leased range. It
// satisfies core's Sink interface structurally. Emission order within a
// root is irrelevant (digests are commutative); different engine workers
// may emit for the same root concurrently (stolen subtree tasks), so the
// per-root digests are guarded by striped locks. drain is safe against
// concurrent Emit because the frontier watermark guarantees no further
// emissions for roots below it, and the stripe locks order memory.
type rangeSink struct {
	perm    []int32 // ordered V id -> original id for the R side; nil = identity
	base    int32
	digests []difftest.Digest
	locks   [64]sync.Mutex
	scratch [][]int32
}

func newRangeSink(perm []int32, start, end int32, workers int) *rangeSink {
	return &rangeSink{
		perm:    perm,
		base:    start,
		digests: make([]difftest.Digest, end-start),
		scratch: make([][]int32, workers),
	}
}

// Emit fingerprints one biclique into its root's digest. R is mapped
// back to the original graph's id space first, so digests compare
// directly against a single-process run's (the engine reports R in the
// ordered id space; L is the U side and never permuted).
func (s *rangeSink) Emit(worker int, root int32, L, R []int32) {
	if s.perm != nil {
		m := s.scratch[worker%len(s.scratch)][:0]
		for _, v := range R {
			m = append(m, s.perm[v])
		}
		s.scratch[worker%len(s.scratch)] = m
		R = m
	}
	fp := difftest.Fingerprint(L, R)
	i := root - s.base
	lk := &s.locks[i&63]
	lk.Lock()
	s.digests[i].Add(fp)
	lk.Unlock()
}

// drain merges the digests of roots [from, to) — call only for roots at
// or below the frontier watermark.
func (s *rangeSink) drain(from, to int32) difftest.Digest {
	var d difftest.Digest
	for r := from; r < to; r++ {
		i := r - s.base
		lk := &s.locks[i&63]
		lk.Lock()
		d.Merge(s.digests[i])
		lk.Unlock()
	}
	return d
}
