package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/difftest"
	"repro/internal/obs"
)

// DefaultLeaseTTL is the heartbeat expiry when CoordOptions.LeaseTTL is
// zero: long enough that a loaded worker's frame cadence (sub-second)
// never false-expires, short enough that a dead worker's range is
// re-issued promptly.
const DefaultLeaseTTL = 10 * time.Second

// CoordOptions configures NewCoordinator.
type CoordOptions struct {
	// Spec describes the run; build it with Spec.WithGraph and validate
	// early. Workers re-verify it against their loaded graph.
	Spec Spec
	// Dir is the coordinator's state directory (created if absent);
	// dist-manifest.json lives there. Required: crash recovery is not
	// optional in this protocol.
	Dir string
	// Ranges is how many root ranges to cut [0, |V|) into; 0 means 16.
	// Ignored when Dir holds a recoverable manifest — the persisted
	// ranges are authoritative.
	Ranges int
	// LeaseTTL is the heartbeat expiry; 0 means DefaultLeaseTTL.
	LeaseTTL time.Duration
	// Durable fsyncs the manifest's directory entry on terminal state
	// changes (lease grants, range completion). Watermark updates always
	// keep rename atomicity but skip the directory fsync for throughput.
	Durable bool
	// Log receives structured events; nil discards them.
	Log *slog.Logger
}

// Coordinator owns the range ledger. All mutation happens under one
// mutex — the protocol is chatty per-range but ranges are coarse, so a
// single lock outlives any cleverness here.
type Coordinator struct {
	spec     Spec
	dir      string
	ttl      time.Duration
	durable  bool
	log      *slog.Logger
	now      func() time.Time // test seam; time.Now outside tests
	reg      *obs.Registry
	start    time.Time
	interval time.Duration // janitor scan cadence

	mu       sync.Mutex
	ranges   []*rangeState
	complete bool
	global   difftest.Digest

	doneCh   chan struct{}
	stopJan  chan struct{}
	janDone  chan struct{}
	janOnce  sync.Once
	stopOnce sync.Once

	leasesExpired  *obs.Counter
	leasesReissued *obs.Counter
	framesRejected *obs.Counter
	wmFrames       *obs.Counter
}

// rangeState is the in-memory ledger entry for one range. digest always
// summarizes exactly [Start, Watermark); attemptDigest summarizes what
// the CURRENT attempt has streamed (reset at each grant), for the
// done-frame cross-check.
type rangeState struct {
	id        int
	start     int32
	end       int32
	state     string
	attempt   int
	watermark int32
	worker    string
	lastBeat  time.Time
	digest    difftest.Digest
	attemptD  difftest.Digest
}

// NewCoordinator builds a coordinator, recovering from Dir's manifest if
// one exists (leased ranges revert to pending; watermarks, digests and
// attempt counters carry over) or cutting fresh ranges otherwise.
func NewCoordinator(opts CoordOptions) (*Coordinator, error) {
	if err := opts.Spec.Validate(); err != nil {
		return nil, err
	}
	if opts.Dir == "" {
		return nil, errors.New("dist: CoordOptions.Dir is required")
	}
	if err := ensureDir(opts.Dir); err != nil {
		return nil, err
	}
	ttl := opts.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	log := opts.Log
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
	}
	c := &Coordinator{
		spec:     opts.Spec,
		dir:      opts.Dir,
		ttl:      ttl,
		durable:  opts.Durable,
		log:      log,
		now:      time.Now,
		start:    time.Now(),
		interval: ttl / 4,
		doneCh:   make(chan struct{}),
		stopJan:  make(chan struct{}),
		janDone:  make(chan struct{}),
	}

	m, found, err := loadManifest(opts.Dir)
	if err != nil {
		return nil, err
	}
	if found {
		if err := specCompatible(m.Spec, opts.Spec); err != nil {
			return nil, err
		}
		for _, r := range m.Ranges {
			d, err := FromJSON(r.Digest)
			if err != nil {
				return nil, fmt.Errorf("dist: manifest range %d: %w", r.ID, err)
			}
			st := &rangeState{
				id: r.ID, start: r.Start, end: r.End,
				state: r.State, attempt: r.Attempt,
				watermark: r.Watermark, digest: d,
			}
			// Recovery: nobody holds a lease across a coordinator
			// restart. The attempt counter is preserved so the next grant
			// out-fences any zombie still streaming the old attempt.
			if st.state == stateLeased {
				st.state = statePending
			}
			c.ranges = append(c.ranges, st)
		}
		if m.Complete {
			if c.allDoneLocked() {
				c.finishLocked()
			} else {
				return nil, fmt.Errorf("dist: manifest claims complete but has unfinished ranges")
			}
		}
		c.log.Info("dist_manifest_recovered", "ranges", len(c.ranges), "complete", m.Complete)
	} else {
		n := opts.Ranges
		if n <= 0 {
			n = 16
		}
		for i, rr := range SplitRoots(opts.Spec.NV, n) {
			c.ranges = append(c.ranges, &rangeState{
				id: i, start: rr.Start, end: rr.End,
				state: statePending, watermark: rr.Start,
			})
		}
		if len(c.ranges) == 0 {
			// A graph with an empty V side: the run is vacuously done.
			c.finishLocked()
		}
	}
	if err := c.persistLocked(true); err != nil {
		return nil, err
	}
	c.initMetrics()
	return c, nil
}

func ensureDir(dir string) error {
	return os.MkdirAll(dir, 0o777)
}

// Start launches the lease janitor. Idempotent.
func (c *Coordinator) Start() {
	c.janOnce.Do(func() {
		go c.janitor()
	})
}

// Stop halts the janitor. The HTTP handler stays functional (a stopped
// coordinator still answers progress/metrics), it just stops expiring
// leases.
func (c *Coordinator) Stop() {
	c.stopOnce.Do(func() {
		close(c.stopJan)
	})
	c.janOnce.Do(func() { close(c.janDone) }) // never started
	<-c.janDone
}

// Done is closed when every range is done and the global digest is
// final.
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// GlobalDigest returns the merged digest of every range, and whether the
// run is complete (the digest is only final — and only meaningful —
// once it is).
func (c *Coordinator) GlobalDigest() (difftest.Digest, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.global, c.complete
}

// Registry exposes the coordinator's metrics registry (the /metrics
// source) for embedding and tests.
func (c *Coordinator) Registry() *obs.Registry { return c.reg }

// janitor scans for expired leases at a fraction of the TTL.
func (c *Coordinator) janitor() {
	defer close(c.janDone)
	t := time.NewTicker(c.interval)
	defer t.Stop()
	for {
		select {
		case <-c.stopJan:
			return
		case <-t.C:
			c.expireLeases()
		}
	}
}

// expireLeases reverts every lease whose heartbeat is older than the TTL
// to pending. The attempt counter is NOT bumped here — the next grant
// bumps it — but the state change alone already fences the old worker:
// frames are only accepted while state == leased with a matching
// attempt.
func (c *Coordinator) expireLeases() {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	expired := 0
	for _, r := range c.ranges {
		if r.state == stateLeased && now.Sub(r.lastBeat) > c.ttl {
			c.log.Warn("dist_lease_expired", "range", r.id, "worker", r.worker,
				"attempt", r.attempt, "watermark", r.watermark)
			r.state = statePending
			r.worker = ""
			c.leasesExpired.Inc()
			expired++
		}
	}
	if expired > 0 {
		c.persistLocked(true) //nolint:errcheck // next terminal persist retries; state is consistent
	}
}

// initMetrics registers the coordinator's metric families. Gauge
// functions read the ledger at scrape time so nothing can drift.
func (c *Coordinator) initMetrics() {
	c.reg = obs.NewRegistry()
	c.leasesExpired = c.reg.NewCounter("dist_leases_expired_total",
		"Leases whose heartbeat aged past the TTL and were reverted to pending.")
	c.leasesReissued = c.reg.NewCounter("dist_leases_reissued_total",
		"Lease grants for a range that had already been attempted (attempt > 1).")
	c.framesRejected = c.reg.NewCounter("dist_frames_rejected_total",
		"Stream frames rejected by attempt fencing or interval checks.")
	c.wmFrames = c.reg.NewCounter("dist_watermark_frames_total",
		"Watermark frames accepted and merged into range digests.")
	c.reg.NewGaugeFunc("dist_leases_outstanding",
		"Ranges currently leased to a worker.", func() int64 {
			return c.countState(stateLeased)
		})
	c.reg.NewGaugeFunc("dist_ranges_done",
		"Ranges fully enumerated and merged.", func() int64 {
			return c.countState(stateDone)
		})
	c.reg.NewGaugeFunc("dist_ranges_total",
		"Root ranges the run was split into.", func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return int64(len(c.ranges))
		})
	c.reg.NewGaugeFunc("dist_roots_done",
		"Roots below some range's confirmed watermark.", func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			var n int64
			for _, r := range c.ranges {
				n += int64(r.watermark - r.start)
			}
			return n
		})
	c.reg.NewGaugeFunc("dist_bicliques_total",
		"Maximal bicliques confirmed across all range watermarks.", func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			var n int64
			for _, r := range c.ranges {
				n += r.digest.Count
			}
			return n
		})
}

func (c *Coordinator) countState(s string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, r := range c.ranges {
		if r.state == s {
			n++
		}
	}
	return n
}

// persistLocked writes the manifest. Callers hold c.mu. durable
// additionally fsyncs the directory (terminal transitions); watermark
// cadence calls pass false and rely on rename atomicity — a crash may
// lose recent watermark progress, never corrupt state, and the matching
// digest is always the one persisted WITH its watermark.
func (c *Coordinator) persistLocked(durable bool) error {
	m := manifest{
		Spec:       c.spec,
		LeaseTTLMS: c.ttl.Milliseconds(),
		Complete:   c.complete,
		Ranges:     make([]rangeJSON, len(c.ranges)),
	}
	if c.complete {
		g := ToJSON(c.global)
		m.Global = &g
	}
	for i, r := range c.ranges {
		m.Ranges[i] = rangeJSON{
			ID: r.id, Start: r.start, End: r.end,
			State: r.state, Attempt: r.attempt,
			Watermark: r.watermark, Worker: r.worker,
			Digest: ToJSON(r.digest),
		}
	}
	durable = durable && c.durable
	if err := writeManifest(c.dir, m, durable); err != nil {
		c.log.Error("dist_manifest_write_failed", "err", err)
		return err
	}
	return nil
}

// allDoneLocked reports whether every range is done.
func (c *Coordinator) allDoneLocked() bool {
	for _, r := range c.ranges {
		if r.state != stateDone {
			return false
		}
	}
	return true
}

// finishLocked merges the global digest and closes Done. Idempotent.
func (c *Coordinator) finishLocked() {
	if c.complete {
		return
	}
	c.global = difftest.Digest{}
	for _, r := range c.ranges {
		c.global.Merge(r.digest)
	}
	c.complete = true
	close(c.doneCh)
}

// grantLease hands the lowest-id pending range to worker. The second
// return distinguishes "nothing pending right now" (retry later) from
// "the run is complete" via Progress.
func (c *Coordinator) grantLease(worker string) (Lease, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range c.ranges {
		if r.state != statePending {
			continue
		}
		r.state = stateLeased
		r.attempt++
		r.worker = worker
		r.lastBeat = c.now()
		r.attemptD = difftest.Digest{}
		if r.attempt > 1 {
			c.leasesReissued.Inc()
		}
		// Persist BEFORE the grant leaves the lock: if the coordinator
		// dies after the worker learns the lease but before the attempt
		// counter is durable, a recovered coordinator could re-grant the
		// same attempt number and the fencing token would alias.
		c.persistLocked(true) //nolint:errcheck // on write failure the lease still fences in-memory
		c.log.Info("dist_lease_granted", "range", r.id, "worker", worker,
			"attempt", r.attempt, "resume", r.watermark, "end", r.end)
		return Lease{
			RangeID: r.id, Attempt: r.attempt,
			Start: r.start, Resume: r.watermark, End: r.end,
			TTLMS: c.ttl.Milliseconds(),
		}, true
	}
	return Lease{}, false
}

// acceptFrame applies one stream frame under the ledger lock. A nil
// error means the frame was merged (or was a pure heartbeat); a non-nil
// error rejects the whole stream (the worker's attempt is stale or the
// worker is violating the protocol).
func (c *Coordinator) acceptFrame(rangeID, attempt int, worker string, f Frame) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rangeID < 0 || rangeID >= len(c.ranges) {
		c.framesRejected.Inc()
		return fmt.Errorf("unknown range %d", rangeID)
	}
	r := c.ranges[rangeID]
	if r.state != stateLeased || attempt != r.attempt {
		// The fencing rule: the lease expired (or the coordinator
		// restarted) and the range belongs to a newer attempt — or to
		// nobody. Nothing from this stream may merge.
		c.framesRejected.Inc()
		return fmt.Errorf("stale attempt %d for range %d (state %s, current attempt %d)",
			attempt, rangeID, r.state, r.attempt)
	}
	r.lastBeat = c.now()

	switch f.Type {
	case "hb":
		return nil
	case "wm", "done":
		if f.Delta == nil {
			c.framesRejected.Inc()
			return fmt.Errorf("%s frame without delta", f.Type)
		}
		delta, err := FromJSON(*f.Delta)
		if err != nil {
			c.framesRejected.Inc()
			return err
		}
		// Contiguity: deltas must tile [resume, end) exactly. From must
		// equal the confirmed watermark — anything else double-merges or
		// leaves a hole. One exception: a done frame may be EMPTY
		// (From == To == end) — the flusher legitimately streams the final
		// interval as a wm frame when the frontier reaches the range end
		// before enumeration returns, leaving the done frame nothing but
		// the total cross-check.
		emptyDone := f.Type == "done" && f.From == f.To
		if f.From != r.watermark || f.To > r.end || (f.To <= f.From && !emptyDone) {
			c.framesRejected.Inc()
			return fmt.Errorf("non-contiguous interval [%d,%d) for range %d at watermark %d",
				f.From, f.To, rangeID, r.watermark)
		}
		if f.Type == "done" {
			if f.To != r.end {
				c.framesRejected.Inc()
				return fmt.Errorf("done frame ends at %d, range ends at %d", f.To, r.end)
			}
			if f.Total == nil {
				c.framesRejected.Inc()
				return errors.New("done frame without total")
			}
			total, err := FromJSON(*f.Total)
			if err != nil {
				c.framesRejected.Inc()
				return err
			}
			// Cross-check before any merge: the attempt's deltas plus
			// this one must reproduce the worker's own total. A mismatch
			// means a frame was lost or reordered — reject and let the
			// lease expire into a clean re-issue.
			check := r.attemptD
			check.Merge(delta)
			if !check.Equal(total) {
				c.framesRejected.Inc()
				return fmt.Errorf("attempt digest mismatch for range %d: merged %v, worker total %v",
					rangeID, check, total)
			}
		}
		r.digest.Merge(delta)
		r.attemptD.Merge(delta)
		r.watermark = f.To
		c.wmFrames.Inc()
		if f.Type == "done" {
			r.state = stateDone
			r.worker = ""
			c.log.Info("dist_range_done", "range", rangeID, "attempt", attempt,
				"bicliques", r.digest.Count)
			if c.allDoneLocked() {
				c.finishLocked()
				c.log.Info("dist_run_complete", "bicliques", c.global.Count,
					"digest", c.global.String())
			}
			return c.persistLocked(true)
		}
		return c.persistLocked(false)
	default:
		c.framesRejected.Inc()
		return fmt.Errorf("unknown frame type %q", f.Type)
	}
}

// Progress is the coordinator's public progress snapshot
// (GET /dist/v1/progress).
type Progress struct {
	RootsDone         int64       `json:"roots_done"`
	RootsTotal        int64       `json:"roots_total"`
	RangesDone        int         `json:"ranges_done"`
	RangesTotal       int         `json:"ranges_total"`
	LeasesOutstanding int         `json:"leases_outstanding"`
	Bicliques         int64       `json:"bicliques"`
	Complete          bool        `json:"complete"`
	ElapsedMS         int64       `json:"elapsed_ms"`
	EtaMS             int64       `json:"eta_ms,omitempty"`
	Digest            *DigestJSON `json:"digest,omitempty"`
}

// Progress snapshots run progress with a crude rate-based ETA.
func (c *Coordinator) Progress() Progress {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := Progress{RangesTotal: len(c.ranges), Complete: c.complete}
	for _, r := range c.ranges {
		p.RootsDone += int64(r.watermark - r.start)
		p.RootsTotal += int64(r.end - r.start)
		p.Bicliques += r.digest.Count
		switch r.state {
		case stateDone:
			p.RangesDone++
		case stateLeased:
			p.LeasesOutstanding++
		}
	}
	elapsed := time.Since(c.start)
	p.ElapsedMS = elapsed.Milliseconds()
	if !c.complete && p.RootsDone > 0 && p.RootsTotal > p.RootsDone {
		perRoot := float64(elapsed) / float64(p.RootsDone)
		p.EtaMS = time.Duration(perRoot * float64(p.RootsTotal-p.RootsDone)).Milliseconds()
	}
	if c.complete {
		g := ToJSON(c.global)
		p.Digest = &g
	}
	return p
}

// RangeWatermark reports a range's confirmed watermark and state — the
// observation hook the tests and the smoke script poll.
func (c *Coordinator) RangeWatermark(id int) (watermark int32, state string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || id >= len(c.ranges) {
		return 0, "", false
	}
	return c.ranges[id].watermark, c.ranges[id].state, true
}

// Handler returns the coordinator's HTTP API:
//
//	GET  /dist/v1/config            run spec for workers
//	POST /dist/v1/lease             acquire a range lease
//	POST /dist/v1/ranges/{id}/stream  NDJSON frame stream for a lease
//	GET  /dist/v1/progress          progress + ETA (+ digest when done)
//	GET  /metrics                   Prometheus text (obs registry)
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /dist/v1/config", c.handleConfig)
	mux.HandleFunc("POST /dist/v1/lease", c.handleLease)
	mux.HandleFunc("POST /dist/v1/ranges/{id}/stream", c.handleStream)
	mux.HandleFunc("GET /dist/v1/progress", c.handleProgress)
	mux.Handle("GET /metrics", c.reg.Handler())
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client went away
}

func (c *Coordinator) handleConfig(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	n := len(c.ranges)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, Config{
		Version: ProtocolVersion, Spec: c.spec,
		Ranges: n, LeaseTTLMS: c.ttl.Milliseconds(),
	})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, streamResult{Reason: "bad lease request: " + err.Error()})
		return
	}
	if lease, ok := c.grantLease(req.Worker); ok {
		writeJSON(w, http.StatusOK, lease)
		return
	}
	c.mu.Lock()
	complete := c.complete
	c.mu.Unlock()
	if complete {
		// 410 Gone: the run is over, workers should exit.
		writeJSON(w, http.StatusGone, streamResult{OK: true, Reason: "run complete"})
		return
	}
	// Nothing pending (every remaining range is leased): poll again.
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleStream(w http.ResponseWriter, r *http.Request) {
	rangeID, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, streamResult{Reason: "bad range id"})
		return
	}
	attempt, err := strconv.Atoi(r.URL.Query().Get("attempt"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, streamResult{Reason: "bad attempt"})
		return
	}
	worker := r.URL.Query().Get("worker")

	dec := json.NewDecoder(r.Body)
	for {
		var f Frame
		if err := dec.Decode(&f); err != nil {
			if errors.Is(err, io.EOF) {
				// Clean end of stream. If the last frame was "done" the
				// range is sealed; otherwise the worker went away
				// mid-range (crash, re-lease) and the janitor will
				// handle the lease.
				writeJSON(w, http.StatusOK, streamResult{OK: true})
				return
			}
			// Torn stream (worker died mid-frame): nothing to undo —
			// only fully-decoded frames were merged.
			writeJSON(w, http.StatusBadRequest, streamResult{Reason: "stream decode: " + err.Error()})
			return
		}
		if err := c.acceptFrame(rangeID, attempt, worker, f); err != nil {
			c.log.Warn("dist_frame_rejected", "range", rangeID, "attempt", attempt,
				"worker", worker, "type", f.Type, "err", err)
			writeJSON(w, http.StatusConflict, streamResult{Reason: err.Error()})
			return
		}
	}
}

func (c *Coordinator) handleProgress(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Progress())
}
