package ckpt

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/spool"
)

func sessionMeta() spool.Meta {
	return spool.Meta{
		Version: 1, Tool: "ckpt_test", Algorithm: "AdaMBE", Ordering: "asc",
		Shards: 2, NU: 6, NV: 10, Edges: 30, GraphHash: "0123456789abcdef",
	}
}

// replayRoots reads back the spool as a multiset of root tags.
func replayRoots(t *testing.T, dir string) map[int32]int {
	t.Helper()
	got := map[int32]int{}
	states, err := spool.Replay(dir, func(root int32, L, R []int32) { got[root]++ })
	if err != nil {
		t.Fatal(err)
	}
	if err := spool.Clean(states); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestSessionInterruptResumeComplete walks the full durable-run
// lifecycle by hand: enumerate roots 0..4, emit a partial subtree of
// root 5, interrupt; resume (partial root-5 output must be compacted
// away, start at the watermark); finish roots 5..9; verify the spool
// holds each root's output exactly once; then check a further resume is
// a no-op.
func TestSessionInterruptResumeComplete(t *testing.T) {
	dir := t.TempDir()
	meta := sessionMeta()

	sess, err := Open(OpenOptions{Dir: dir, Meta: meta, Every: -1})
	if err != nil {
		t.Fatal(err)
	}
	if sess.AlreadyComplete() || sess.StartRoot() != 0 {
		t.Fatalf("fresh session: complete=%v start=%d", sess.AlreadyComplete(), sess.StartRoot())
	}
	sink := sess.Sink(nil, 2)
	fr := sess.Frontier()
	for r := int32(0); r < 5; r++ {
		sink.Emit(int(r)%2, r, []int32{r}, []int32{r + 1, r + 2})
		sink.Emit(int(r)%2, r, []int32{r, r + 1}, []int32{r + 3})
		fr.RootInlineDone(r)
	}
	// Root 5 was mid-flight at the interrupt: one emission, never done.
	sink.Emit(1, 5, []int32{5}, []int32{6})
	if err := sess.Finish(false); err != nil {
		t.Fatalf("interrupted Finish: %v", err)
	}

	ck, found, err := Load(dir)
	if err != nil || !found {
		t.Fatalf("checkpoint after interrupt: %v found=%v", err, found)
	}
	if ck.Watermark != 5 || ck.Complete {
		t.Fatalf("checkpoint = %+v, want watermark 5, incomplete", ck)
	}

	// Resume: compaction drops root 5's partial emission.
	sess2, err := Open(OpenOptions{Dir: dir, Meta: meta, Resume: true, Every: -1})
	if err != nil {
		t.Fatal(err)
	}
	if sess2.AlreadyComplete() {
		t.Fatal("incomplete spool reported AlreadyComplete")
	}
	if sess2.StartRoot() != 5 {
		t.Fatalf("resume start = %d, want 5", sess2.StartRoot())
	}
	roots := replayRoots(t, dir)
	if roots[5] != 0 {
		t.Fatalf("partial root-5 output survived compaction: %v", roots)
	}
	for r := int32(0); r < 5; r++ {
		if roots[r] != 2 {
			t.Fatalf("root %d has %d records after compaction, want 2", r, roots[r])
		}
	}

	sink2 := sess2.Sink(nil, 2)
	fr2 := sess2.Frontier()
	for r := int32(5); r < 10; r++ {
		sink2.Emit(int(r)%2, r, []int32{r}, []int32{r + 1, r + 2})
		sink2.Emit(int(r)%2, r, []int32{r, r + 1}, []int32{r + 3})
		fr2.RootInlineDone(r)
	}
	if err := sess2.Finish(true); err != nil {
		t.Fatalf("final Finish: %v", err)
	}
	ck, found, err = Load(dir)
	if err != nil || !found || !ck.Complete || ck.Watermark != 10 {
		t.Fatalf("final checkpoint = %+v (found=%v err=%v), want complete at 10", ck, found, err)
	}
	roots = replayRoots(t, dir)
	for r := int32(0); r < 10; r++ {
		if roots[r] != 2 {
			t.Fatalf("root %d emitted %d times, want exactly 2 (no dupes, no drops)", r, roots[r])
		}
	}

	// Resuming a complete spool is a no-op.
	sess3, err := Open(OpenOptions{Dir: dir, Meta: meta, Resume: true, Every: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !sess3.AlreadyComplete() {
		t.Fatal("complete spool must report AlreadyComplete")
	}
	if err := sess3.Finish(true); err != nil {
		t.Fatalf("Finish on AlreadyComplete session: %v", err)
	}
}

// TestSessionFinishIncompleteFrontier: claiming complete=true while the
// frontier is not actually done must downgrade to an incomplete
// checkpoint — the complete flag is verified, not trusted.
func TestSessionFinishIncompleteFrontier(t *testing.T) {
	dir := t.TempDir()
	sess, err := Open(OpenOptions{Dir: dir, Meta: sessionMeta(), Every: -1})
	if err != nil {
		t.Fatal(err)
	}
	sess.Frontier().RootInlineDone(0) // 1 of 10 roots
	if err := sess.Finish(true); err != nil {
		t.Fatal(err)
	}
	ck, _, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Complete {
		t.Fatal("checkpoint claims complete with 9 roots unfinished")
	}
	if ck.Watermark != 1 {
		t.Fatalf("watermark = %d, want 1", ck.Watermark)
	}
}

func TestSessionResumeMetaMismatch(t *testing.T) {
	dir := t.TempDir()
	sess, err := Open(OpenOptions{Dir: dir, Meta: sessionMeta(), Every: -1})
	if err != nil {
		t.Fatal(err)
	}
	sess.Finish(false)

	bad := sessionMeta()
	bad.GraphHash = "fedcba9876543210"
	if _, err := Open(OpenOptions{Dir: dir, Meta: bad, Resume: true, Every: -1}); err == nil {
		t.Fatal("resume with a different graph must be refused")
	}
	badOrd := sessionMeta()
	badOrd.Ordering = "rand"
	if _, err := Open(OpenOptions{Dir: dir, Meta: badOrd, Resume: true, Every: -1}); err == nil {
		t.Fatal("resume under a different ordering must be refused")
	}
}

// TestSessionResumeWithoutCheckpoint: a spool whose checkpoint file is
// missing (crash before the first checkpoint landed, or deleted by
// hand) resumes as a from-scratch run — watermark 0, spool emptied.
func TestSessionResumeWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	sess, err := Open(OpenOptions{Dir: dir, Meta: sessionMeta(), Every: -1})
	if err != nil {
		t.Fatal(err)
	}
	sess.Sink(nil, 1).Emit(0, 0, []int32{1}, []int32{2})
	sess.Frontier().RootInlineDone(0)
	if err := sess.Finish(false); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, spool.CheckpointFile)); err != nil {
		t.Fatal(err)
	}
	sess2, err := Open(OpenOptions{Dir: dir, Meta: sessionMeta(), Resume: true, Every: -1})
	if err != nil {
		t.Fatal(err)
	}
	if sess2.StartRoot() != 0 {
		t.Fatalf("no-checkpoint resume start = %d, want 0", sess2.StartRoot())
	}
	if roots := replayRoots(t, dir); len(roots) != 0 {
		t.Fatalf("no-checkpoint resume must empty the spool, found %v", roots)
	}
	sess2.Finish(false)
}

// TestSessionCheckpointDurableOffsets: a checkpoint's shard offsets
// must equal the on-disk shard sizes at write time (everything it
// claims is really flushed).
func TestSessionCheckpointDurableOffsets(t *testing.T) {
	dir := t.TempDir()
	sess, err := Open(OpenOptions{Dir: dir, Meta: sessionMeta(), Every: -1})
	if err != nil {
		t.Fatal(err)
	}
	sink := sess.Sink(nil, 2)
	for r := int32(0); r < 4; r++ {
		sink.Emit(int(r)%2, r, []int32{r}, []int32{r + 1})
		sess.Frontier().RootInlineDone(r)
	}
	if err := sess.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ck, _, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.ShardOffsets) != 2 {
		t.Fatalf("shard offsets = %v, want 2 entries", ck.ShardOffsets)
	}
	for i, off := range ck.ShardOffsets {
		info, err := os.Stat(filepath.Join(dir, spool.ShardName(i)))
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() != off {
			t.Errorf("shard %d: checkpoint offset %d != file size %d", i, off, info.Size())
		}
	}
	if ck.Seq < 2 { // initial checkpoint + this one
		t.Errorf("checkpoint seq = %d, want >= 2", ck.Seq)
	}
	sess.Finish(false)
}

// TestSessionSinkPermutation: the sink maps R through the run's V
// permutation while the root tag stays in engine order.
func TestSessionSinkPermutation(t *testing.T) {
	dir := t.TempDir()
	meta := sessionMeta()
	meta.NV = 3
	sess, err := Open(OpenOptions{Dir: dir, Meta: meta, Every: -1})
	if err != nil {
		t.Fatal(err)
	}
	perm := []int32{2, 0, 1} // engine id -> original id
	sink := sess.Sink(perm, 1)
	sink.Emit(0, 0, []int32{7}, []int32{0, 2})
	sess.Frontier().RootInlineDone(0)
	sess.Frontier().RootInlineDone(1)
	sess.Frontier().RootInlineDone(2)
	if err := sess.Finish(true); err != nil {
		t.Fatal(err)
	}
	var gotRoot int32 = -1
	var gotR []int32
	states, err := spool.Replay(dir, func(root int32, L, R []int32) {
		gotRoot = root
		gotR = append([]int32(nil), R...)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := spool.Clean(states); err != nil {
		t.Fatal(err)
	}
	if gotRoot != 0 {
		t.Errorf("root tag = %d, want engine-order 0", gotRoot)
	}
	// engine R {0,2} -> original {2,1}, stored sorted ascending.
	if !eq(gotR, []int32{1, 2}) {
		t.Errorf("stored R = %v, want [1 2]", gotR)
	}
}

func eq(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
