package ckpt

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/spool"
)

// writeInterrupted builds a spool with roots 0..4 done, a partial root-5
// emission, and an incomplete checkpoint at watermark 5 — the state a
// crash mid-run leaves behind.
func writeInterrupted(t *testing.T, dir string) {
	t.Helper()
	sess, err := Open(OpenOptions{Dir: dir, Meta: sessionMeta(), Every: -1})
	if err != nil {
		t.Fatal(err)
	}
	sink := sess.Sink(nil, 2)
	for r := int32(0); r < 5; r++ {
		sink.Emit(int(r)%2, r, []int32{r}, []int32{r + 1, r + 2})
		sess.Frontier().RootInlineDone(r)
	}
	sink.Emit(1, 5, []int32{5}, []int32{6})
	if err := sess.Finish(false); err != nil {
		t.Fatal(err)
	}
}

// TestLoadTornCheckpoint truncates checkpoint.json at every byte offset
// (the crash-at-offset sweep): each prefix must either load as the full
// checkpoint (offset == len) or come back as a *CorruptError with ok =
// false — never a different checkpoint, never a hard failure class the
// resume path can't recover from.
func TestLoadTornCheckpoint(t *testing.T) {
	dir := t.TempDir()
	writeInterrupted(t, dir)
	path := filepath.Join(dir, spool.CheckpointFile)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want, ok, err := Load(dir)
	if err != nil || !ok || want.Watermark != 5 {
		t.Fatalf("intact checkpoint: ck=%+v ok=%v err=%v", want, ok, err)
	}
	for off := 0; off < len(whole); off++ {
		if err := os.WriteFile(path, whole[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		ck, ok, err := Load(dir)
		if ok {
			// The only prefixes that still parse are the full document
			// minus trailing whitespace — and those must decode to the
			// same checkpoint, never a different one.
			if !reflect.DeepEqual(ck, want) {
				t.Fatalf("offset %d: truncated checkpoint loaded as a DIFFERENT checkpoint: %+v", off, ck)
			}
			continue
		}
		var corrupt *CorruptError
		if !errors.As(err, &corrupt) {
			t.Fatalf("offset %d: err = %v, want *CorruptError", off, err)
		}
	}
	// Restore and confirm the untruncated file still loads.
	if err := os.WriteFile(path, whole, 0o644); err != nil {
		t.Fatal(err)
	}
	if ck, ok, err := Load(dir); err != nil || !ok || ck.Watermark != 5 {
		t.Fatalf("restored checkpoint: ck=%+v ok=%v err=%v", ck, ok, err)
	}
}

// TestOpenTornCheckpointResumes: Open with Resume over a torn
// checkpoint must degrade to a from-scratch resume (watermark 0, spool
// compacted empty) and report the corruption through OnWarn instead of
// failing the run.
func TestOpenTornCheckpointResumes(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(path string) error
	}{
		{"truncated-half", func(path string) error {
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, b[:len(b)/2], 0o644)
		}},
		{"empty", func(path string) error {
			return os.WriteFile(path, nil, 0o644)
		}},
		{"garbage", func(path string) error {
			return os.WriteFile(path, []byte("\x00\xff not json"), 0o644)
		}},
		{"negative-watermark", func(path string) error {
			return os.WriteFile(path, []byte(`{"version":1,"watermark":-3,"seq":1}`), 0o644)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			writeInterrupted(t, dir)
			if err := tc.mut(filepath.Join(dir, spool.CheckpointFile)); err != nil {
				t.Fatal(err)
			}
			var warned error
			sess, err := Open(OpenOptions{
				Dir: dir, Meta: sessionMeta(), Resume: true, Every: -1,
				OnWarn: func(e error) { warned = e },
			})
			if err != nil {
				t.Fatalf("Open over torn checkpoint failed: %v", err)
			}
			if warned == nil {
				t.Error("torn checkpoint resumed without an OnWarn")
			}
			if sess.StartRoot() != 0 {
				t.Errorf("start = %d, want from-scratch 0", sess.StartRoot())
			}
			// Degrading to watermark 0 compacts everything away; the
			// re-run then reproduces the full output exactly once.
			if roots := replayRoots(t, dir); len(roots) != 0 {
				t.Errorf("spool not emptied on from-scratch resume: %v", roots)
			}
			sink := sess.Sink(nil, 2)
			for r := int32(0); r < 10; r++ {
				sink.Emit(int(r)%2, r, []int32{r}, []int32{r + 1})
				sess.Frontier().RootInlineDone(r)
			}
			if err := sess.Finish(true); err != nil {
				t.Fatal(err)
			}
			roots := replayRoots(t, dir)
			for r := int32(0); r < 10; r++ {
				if roots[r] != 1 {
					t.Fatalf("root %d emitted %d times after torn-checkpoint recovery, want 1", r, roots[r])
				}
			}
		})
	}
}
