package ckpt

import "testing"

func TestFrontierInlineOnly(t *testing.T) {
	f := NewFrontier(0, 10)
	if w := f.Watermark(); w != 0 {
		t.Fatalf("fresh watermark = %d, want 0", w)
	}
	for r := int32(0); r < 5; r++ {
		f.RootInlineDone(r)
	}
	if w := f.Watermark(); w != 5 {
		t.Fatalf("after inline 0..4: watermark = %d, want 5", w)
	}
	if f.Complete() {
		t.Fatal("not complete at watermark 5 of 10")
	}
	for r := int32(5); r < 10; r++ {
		f.RootInlineDone(r)
	}
	if w := f.Watermark(); w != 10 {
		t.Fatalf("watermark = %d, want 10", w)
	}
	if !f.Complete() {
		t.Fatal("all roots inline-done with nothing outstanding must be complete")
	}
}

func TestFrontierOutstandingHoldsWatermark(t *testing.T) {
	f := NewFrontier(0, 20)
	f.TaskSpawned(3) // spawned while root 3's inline pass runs
	f.TaskSpawned(3) // a second subtree of the same root
	for r := int32(0); r < 10; r++ {
		f.RootInlineDone(r)
	}
	if w := f.Watermark(); w != 3 {
		t.Fatalf("outstanding tasks at root 3: watermark = %d, want 3", w)
	}
	f.TaskDone(3)
	if w := f.Watermark(); w != 3 {
		t.Fatalf("one of two tasks done: watermark = %d, want 3", w)
	}
	f.TaskDone(3)
	if w := f.Watermark(); w != 10 {
		t.Fatalf("all tasks done: watermark = %d, want 10", w)
	}
	if f.Complete() {
		t.Fatal("inline frontier at 10 of 20 is not complete")
	}
}

func TestFrontierMonotone(t *testing.T) {
	f := NewFrontier(0, 20)
	for r := int32(0); r < 8; r++ {
		f.RootInlineDone(r)
	}
	if w := f.Watermark(); w != 8 {
		t.Fatalf("watermark = %d, want 8", w)
	}
	// A task spawned at a root BELOW the cached watermark cannot happen
	// in a real run (its root finished), but the cache must stay
	// monotone regardless.
	f.TaskSpawned(2)
	if w := f.Watermark(); w != 8 {
		t.Fatalf("watermark regressed to %d", w)
	}
}

func TestFrontierDiscardFreezes(t *testing.T) {
	f := NewFrontier(0, 20)
	for r := int32(0); r < 6; r++ {
		f.RootInlineDone(r)
	}
	f.TaskSpawned(7)
	f.RootInlineDone(6)
	f.RootInlineDone(7)
	f.TaskDiscarded(7)
	// The freeze-time advance captures completed work (roots 0..6) but
	// the discarded task pins the watermark at its root.
	if w := f.Watermark(); w != 7 {
		t.Fatalf("frozen watermark = %d, want 7", w)
	}
	if !f.Frozen() {
		t.Fatal("discard must freeze the frontier")
	}
	// Nothing moves it afterwards.
	f.TaskDone(7)
	for r := int32(8); r < 20; r++ {
		f.RootInlineDone(r)
	}
	if w := f.Watermark(); w != 7 {
		t.Fatalf("frozen watermark moved to %d", w)
	}
	if f.Complete() {
		t.Fatal("a frozen frontier is never complete")
	}
}

// TestFreezeAdvancesFirst is the regression test for the stale-cache
// bug: an interrupt before any Watermark() call must still checkpoint
// the real progress, not the resume-start value.
func TestFreezeAdvancesFirst(t *testing.T) {
	f := NewFrontier(0, 100)
	for r := int32(0); r < 42; r++ {
		f.RootInlineDone(r)
	}
	f.Freeze() // no Watermark() call before this
	if w := f.Watermark(); w != 42 {
		t.Fatalf("freeze-time watermark = %d, want 42", w)
	}
}

func TestFrontierResumeStart(t *testing.T) {
	f := NewFrontier(30, 50)
	if w := f.Watermark(); w != 30 {
		t.Fatalf("resume frontier starts at %d, want 30", w)
	}
	for r := int32(30); r < 50; r++ {
		f.RootInlineDone(r)
	}
	if !f.Complete() {
		t.Fatal("resumed run finished all remaining roots")
	}
}
