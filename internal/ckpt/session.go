package ckpt

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/spool"
)

// Session ties a spool writer, a frontier, and the checkpoint file into
// one resumable run. Both the public mbe layer and the difftest harness
// drive enumeration through a Session so resume semantics live in
// exactly one place:
//
//	sess, _ := ckpt.Open(ckpt.OpenOptions{Dir: dir, Meta: meta, Resume: resume})
//	if sess.AlreadyComplete() { ... nothing to do ... }
//	// wire sess.Sink(perm, workers), sess.Frontier(), sess.StartRoot()
//	// into the engine, sess.Start() the checkpoint ticker, enumerate,
//	err := sess.Finish(ranToCompletion)
type Session struct {
	dir      string
	meta     spool.Meta
	every    time.Duration
	durable  bool
	writer   *spool.Writer
	frontier *Frontier
	start    int32
	complete bool // spool was already complete at Open

	ckptMu sync.Mutex
	seq    int64

	tickStop chan struct{}
	tickDone chan struct{}
}

// OpenOptions configures Open.
type OpenOptions struct {
	// Dir is the spool directory (created if absent when not resuming).
	Dir string
	// Meta describes the CURRENT run. On create it is written verbatim;
	// on resume it is checked against the stored meta (graph signature,
	// ordering, seed must match — algorithm/τ/shard-modulus may differ).
	Meta spool.Meta
	// Resume appends to an existing spool instead of creating one.
	Resume bool
	// Every is the checkpoint cadence for Start. 0 means DefaultEvery;
	// negative disables the ticker (checkpoints only on demand/Finish).
	Every time.Duration
	// Writer passes through to the spool writer (fsync mode, frame
	// size, fault-injection wrapper, error callback).
	Writer spool.WriterOptions
	// OnWarn, if non-nil, receives recoverable resume anomalies — today
	// a torn/truncated checkpoint.json (*CorruptError), which Open
	// degrades to a from-scratch resume over the same spool instead of
	// failing the run. nil drops the warnings.
	OnWarn func(error)
}

// Open creates a fresh spooled run or resumes an interrupted one.
//
// Resume sequence: validate meta compatibility, load the checkpoint
// (missing file ⇒ watermark 0), compact every shard down to records
// with root < watermark — dropping both corrupt tails and the partial
// output of subtrees that were in flight at the interrupt — then reopen
// the shards for append. Enumeration restarts at the watermark.
func Open(opts OpenOptions) (*Session, error) {
	s := &Session{
		dir:     opts.Dir,
		meta:    opts.Meta,
		every:   opts.Every,
		durable: opts.Writer.Fsync != spool.FsyncNever,
	}
	if s.every == 0 {
		s.every = DefaultEvery
	}

	if !opts.Resume {
		w, err := spool.Create(opts.Dir, opts.Meta, opts.Writer)
		if err != nil {
			return nil, err
		}
		s.writer = w
		s.frontier = NewFrontier(0, int32(opts.Meta.NV))
		// An initial checkpoint so that interrupting before the first
		// tick still leaves a well-formed (watermark-0) resume point.
		if err := s.Checkpoint(); err != nil {
			w.Close()
			return nil, err
		}
		return s, nil
	}

	have, err := spool.LoadMeta(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: resume: %w", err)
	}
	if err := spool.CompatibleResume(have, opts.Meta); err != nil {
		return nil, err
	}
	ck, found, err := Load(opts.Dir)
	if err != nil {
		// A torn checkpoint is recoverable: the spool frames are
		// self-validating, so resuming from watermark 0 re-derives a
		// correct (if emptier) durable prefix. Anything else is fatal.
		var corrupt *CorruptError
		if !errors.As(err, &corrupt) {
			return nil, err
		}
		if opts.OnWarn != nil {
			opts.OnWarn(corrupt)
		}
		ck, found = Checkpoint{}, false
	}
	if found && ck.Complete {
		s.complete = true
		s.start = int32(have.NV)
		s.frontier = NewFrontier(s.start, int32(have.NV))
		return s, nil
	}
	s.start = ck.Watermark // zero when no checkpoint was found
	if s.start > int32(have.NV) {
		return nil, fmt.Errorf("ckpt: watermark %d exceeds graph V side %d", s.start, have.NV)
	}
	s.seq = ck.Seq
	w := s.start
	if err := spool.CompactBelow(opts.Dir, func(root int32) bool { return root < w }); err != nil {
		return nil, fmt.Errorf("ckpt: resume compaction: %w", err)
	}
	sw, err := spool.OpenAppend(opts.Dir, opts.Writer)
	if err != nil {
		return nil, err
	}
	s.writer = sw
	s.frontier = NewFrontier(s.start, int32(have.NV))
	// Re-checkpoint immediately: the compacted shards are the new
	// durable truth, and the old shard offsets no longer apply.
	if err := s.Checkpoint(); err != nil {
		sw.Close()
		return nil, err
	}
	return s, nil
}

// AlreadyComplete reports that the spool's checkpoint marks the run
// finished: there is nothing to enumerate and the writer is not open.
func (s *Session) AlreadyComplete() bool { return s.complete }

// StartRoot is the root vertex (engine order) enumeration must start
// from: 0 for a fresh run, the checkpoint watermark on resume.
func (s *Session) StartRoot() int32 { return s.start }

// Frontier returns the run's frontier tracker (plugs into
// core.Options.Frontier).
func (s *Session) Frontier() *Frontier { return s.frontier }

// Writer returns the spool writer (nil when AlreadyComplete).
func (s *Session) Writer() *spool.Writer { return s.writer }

// Stats snapshots the writer's flushed-output counters.
func (s *Session) Stats() spool.Stats {
	if s.writer == nil {
		return spool.Stats{}
	}
	return s.writer.Stats()
}

// Sink adapts the writer into a core emission sink, mapping the R side
// back through perm (the V permutation the engine ran under; nil for
// identity). Root tags stay in ENGINE order — that is the order the
// watermark and StartRoot live in — while stored vertex ids are
// original-graph ids. Per-worker scratch keeps the hot path
// allocation-free under unordered concurrent emission.
func (s *Session) Sink(perm []int32, workers int) *Sink {
	if workers < 1 {
		workers = 1
	}
	return &Sink{w: s.writer, perm: perm, scratch: make([][]int32, workers)}
}

// Sink is the emission adapter returned by Session.Sink. It satisfies
// core's Sink interface structurally.
type Sink struct {
	w       *spool.Writer
	perm    []int32
	scratch [][]int32
}

// Emit writes one biclique. Safe for concurrent use by distinct
// workers; a single worker's calls must be sequential (they are — each
// engine owns its worker id).
func (k *Sink) Emit(worker int, root int32, L, R []int32) {
	if k.perm != nil {
		m := k.scratch[worker%len(k.scratch)][:0]
		for _, v := range R {
			m = append(m, k.perm[v])
		}
		k.scratch[worker%len(k.scratch)] = m
		R = m
	}
	k.w.Emit(worker, root, L, R)
}

// Start launches the periodic checkpoint ticker. No-op if the cadence
// is negative or the run is already complete. Stop it via Finish.
func (s *Session) Start() {
	if s.every < 0 || s.writer == nil || s.tickStop != nil {
		return
	}
	s.tickStop = make(chan struct{})
	s.tickDone = make(chan struct{})
	go func() {
		defer close(s.tickDone)
		t := time.NewTicker(s.every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				// Ticker checkpoints are best-effort: a write error is
				// sticky in the writer and surfaces through Finish.
				s.Checkpoint() //nolint:errcheck
			case <-s.tickStop:
				return
			}
		}
	}()
}

// Checkpoint flushes all shards to durable storage and atomically
// writes a checkpoint claiming the current watermark. The watermark is
// read BEFORE the flush: anything it promises was emitted before the
// read, hence is inside the flushed prefix — the safe ordering.
func (s *Session) Checkpoint() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	return s.checkpointLocked(false)
}

func (s *Session) checkpointLocked(complete bool) error {
	wm := s.frontier.Watermark()
	offsets, err := s.writer.SyncAll()
	if err != nil {
		return err
	}
	s.seq++
	ck := Checkpoint{
		Version:      Version,
		Watermark:    wm,
		Complete:     complete,
		ShardOffsets: offsets,
		Records:      s.writer.Stats().Records,
		Seq:          s.seq,
		WrittenAt:    time.Now().UTC().Format(time.RFC3339),
	}
	if complete {
		ck.Watermark = int32(s.meta.NV)
	}
	return ck.Write(s.dir, s.durable)
}

// Finish stops the ticker and writes the final checkpoint. complete
// should be true only when enumeration ran to the end (StopNone): the
// checkpoint is then marked Complete and a later -resume is a no-op.
// When the run was interrupted, the final checkpoint captures the
// frozen watermark so a resume restarts exactly there. If the writer
// failed mid-run, the LAST GOOD checkpoint is kept (writing a new one
// could claim unflushed data) and the write error is returned.
func (s *Session) Finish(complete bool) error {
	if s.tickStop != nil {
		close(s.tickStop)
		<-s.tickDone
		s.tickStop = nil
	}
	if s.writer == nil { // AlreadyComplete
		return nil
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()

	if !complete {
		s.frontier.Freeze()
	}
	complete = complete && s.frontier.Complete()

	var err error
	if werr := s.writer.Err(); werr != nil {
		err = werr // keep the last good checkpoint
	} else {
		err = s.checkpointLocked(complete)
	}
	if cerr := s.writer.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return err
}
