// Package ckpt makes spooled enumeration runs resumable. It tracks the
// root frontier of a running enumeration (which root-vertex subtrees
// are fully finished), periodically persists a checkpoint — the
// completed-root watermark plus the spool shard offsets durable at that
// moment — and, on resume, rewinds the spool to exactly the watermark's
// worth of output before restarting enumeration at the watermark.
//
// The core invariant making a single watermark sufficient: every
// maximal biclique is emitted exactly once, in the subtree of the root
// vertex that is the minimum (in engine order) of its R side. Root
// subtrees therefore partition the output, and "all roots < W done"
// identifies a durable, exactly-once prefix of it regardless of thread
// count, stealing order, or algorithm variant. See docs/DURABILITY.md
// for why the pruned-root state lost across a resume cannot change the
// output.
package ckpt

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/spool"
)

// Version is the checkpoint schema version.
const Version = 1

// DefaultEvery is the checkpoint cadence when the caller doesn't pick
// one: frequent enough that an interrupt rarely loses more than a few
// seconds of enumeration, rare enough that fsync cost is noise.
const DefaultEvery = 10 * time.Second

// Checkpoint is the durable resume point, stored as checkpoint.json in
// the spool directory. Watermark W asserts: every root < W is fully
// enumerated AND its records are inside the flushed shard prefixes
// recorded here. Both claims are conservative — the shards may hold
// more (later frames, partial subtrees of roots ≥ W); resume compacts
// that excess away.
type Checkpoint struct {
	Version      int     `json:"version"`
	Watermark    int32   `json:"watermark"`
	Complete     bool    `json:"complete"`
	ShardOffsets []int64 `json:"shard_offsets"`
	Records      int64   `json:"records,omitempty"` // flushed records at write time (advisory)
	Seq          int64   `json:"seq"`
	WrittenAt    string  `json:"written_at,omitempty"`
}

// Write persists the checkpoint atomically (temp file + fsync + rename
// + directory fsync when durable): a crash at any instant leaves either
// the previous checkpoint or this one under checkpoint.json, never a
// torn file.
func (c Checkpoint) Write(dir string, durable bool) error {
	blob, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return spool.AtomicWriteFile(filepath.Join(dir, spool.CheckpointFile), append(blob, '\n'), durable)
}

// CorruptError reports a checkpoint.json whose bytes do not decode to a
// well-formed checkpoint — the signature of a torn or truncated write
// (possible only when the file was produced without the atomic
// temp+fsync+rename protocol, e.g. by a crashed copy or a filesystem
// that lost the rename). It is recoverable: the spool's frames are
// self-validating, so treating the checkpoint as absent restarts the
// run from watermark 0 over the same spool, losing only the watermark,
// never correctness. ckpt.Open does exactly that, surfacing the
// condition through OpenOptions.OnWarn.
type CorruptError struct {
	Path  string
	Cause error
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("ckpt: corrupt checkpoint %s (treating as absent): %v", e.Path, e.Cause)
}

func (e *CorruptError) Unwrap() error { return e.Cause }

// Load reads the checkpoint from a spool directory. A missing file is
// not an error: it returns a zero checkpoint (watermark 0) and ok =
// false, which resumes as a from-scratch run over the same spool. A
// file that exists but does not decode — torn, truncated, or otherwise
// mangled — returns ok = false with a *CorruptError, so callers can
// choose between failing loudly and degrading to a from-scratch resume
// (Open does the latter).
func Load(dir string) (Checkpoint, bool, error) {
	var c Checkpoint
	path := filepath.Join(dir, spool.CheckpointFile)
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return c, false, nil
	}
	if err != nil {
		return c, false, err
	}
	if err := json.Unmarshal(blob, &c); err != nil {
		return Checkpoint{}, false, &CorruptError{Path: path, Cause: err}
	}
	if c.Version != Version {
		return c, false, fmt.Errorf("ckpt: unsupported checkpoint version %d (want %d)", c.Version, Version)
	}
	if c.Watermark < 0 {
		return Checkpoint{}, false, &CorruptError{Path: path, Cause: fmt.Errorf("negative watermark %d", c.Watermark)}
	}
	return c, true, nil
}
