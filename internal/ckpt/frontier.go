package ckpt

import "sync"

// Frontier tracks which root subtrees of a running enumeration are
// fully finished. It satisfies core's FrontierObserver interface
// structurally (this package never imports core).
//
// The engine's root loop runs on one worker and completes roots' inline
// work in strictly ascending order; subtree tasks it spawns (tagged
// with their root) finish in arbitrary order on arbitrary workers. A
// root is done when its inline pass is done AND it has no outstanding
// spawned tasks, so the watermark — the first not-fully-done root — is
//
//	min(inlineDone, min{ r : outstanding[r] > 0 })
//
// computed lazily at Watermark() since callers only need it at
// checkpoint cadence.
//
// Conservatism rules, each load-bearing for exactly-once resume:
//
//   - TaskSpawned must be called BEFORE the task is pushed to the
//     scheduler; otherwise a thief could finish the task (TaskDone)
//     before its spawn was registered, letting the watermark jump past
//     a root whose work was still conceptually in flight.
//   - Any task that is discarded instead of run to completion (stop
//     tripped, panic isolation) freezes the frontier permanently: the
//     watermark can never again advance, because roots at or above it
//     may now be silently incomplete.
type Frontier struct {
	mu          sync.Mutex
	nv          int32
	inlineDone  int32 // first root whose inline pass has NOT completed
	outstanding map[int32]int
	frozen      bool
	watermark   int32 // cached; monotone non-decreasing
}

// NewFrontier makes a frontier for roots [start, nv). start is the
// resume watermark: roots below it are already durable and will not be
// re-enumerated, so the watermark begins there.
func NewFrontier(start, nv int32) *Frontier {
	return &Frontier{
		nv:          nv,
		inlineDone:  start,
		outstanding: make(map[int32]int),
		watermark:   start,
	}
}

// RootInlineDone records that root's inline pass finished. Roots
// complete inline in ascending order; a skipped root (degree 0, pruned,
// subtree filter) still reports here when the loop moves past it.
func (f *Frontier) RootInlineDone(root int32) {
	f.mu.Lock()
	if root+1 > f.inlineDone {
		f.inlineDone = root + 1
	}
	f.mu.Unlock()
}

// TaskSpawned records a subtree task tagged with root entering the
// scheduler. Call before the push (see type comment).
func (f *Frontier) TaskSpawned(root int32) {
	f.mu.Lock()
	f.outstanding[root]++
	f.mu.Unlock()
}

// TaskDone records a spawned task that ran to completion.
func (f *Frontier) TaskDone(root int32) {
	f.mu.Lock()
	if n := f.outstanding[root]; n <= 1 {
		delete(f.outstanding, root)
	} else {
		f.outstanding[root] = n - 1
	}
	f.mu.Unlock()
}

// TaskDiscarded records a spawned task that will never complete its
// subtree (the run is stopping). The frontier freezes at the current
// watermark.
func (f *Frontier) TaskDiscarded(root int32) {
	f.mu.Lock()
	f.freezeLocked()
	f.mu.Unlock()
}

// Freeze pins the watermark unconditionally. The engine calls the
// discard path for queued tasks, but a stop that hits while the root
// loop itself is mid-iteration has no task to discard — the run
// lifecycle freezes explicitly instead.
func (f *Frontier) Freeze() {
	f.mu.Lock()
	f.freezeLocked()
	f.mu.Unlock()
}

// freezeLocked advances the cached watermark one last time before
// pinning it. The advance is sound at freeze time: everything recorded
// Done before the freeze is genuinely done, and a discarded task's root
// is still in outstanding (Discarded never decrements), so it bounds
// the min. Without this, an interrupt that lands before the first
// checkpoint tick would freeze the watermark at its resume-start value
// and the final checkpoint would discard all progress.
func (f *Frontier) freezeLocked() {
	if !f.frozen {
		f.advanceLocked()
		f.frozen = true
	}
}

// advanceLocked recomputes min(inlineDone, min outstanding) into the
// monotone cache. Caller holds f.mu; must not be frozen.
func (f *Frontier) advanceLocked() {
	w := f.inlineDone
	for r := range f.outstanding {
		if r < w {
			w = r
		}
	}
	if w > f.watermark {
		f.watermark = w
	}
}

// Frozen reports whether the watermark is pinned.
func (f *Frontier) Frozen() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.frozen
}

// Watermark returns the first root not yet fully enumerated: every root
// below the watermark is completely done. Monotone non-decreasing over
// the life of the frontier.
func (f *Frontier) Watermark() int32 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.frozen {
		f.advanceLocked()
	}
	return f.watermark
}

// Complete reports whether every root finished: the watermark reached
// nv with nothing outstanding and no freeze.
func (f *Frontier) Complete() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return !f.frozen && f.inlineDone >= f.nv && len(f.outstanding) == 0
}
