package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

// drain runs a worker loop until the pool drains, applying fn to each task.
func drain(p *Pool[int], w int, fn func(int)) {
	for {
		t, ok := p.Next(w)
		if !ok {
			return
		}
		fn(t)
		p.TaskDone()
	}
}

func TestAllTasksRunExactlyOnce(t *testing.T) {
	const workers, tasks = 4, 1000
	p := NewPool[int](workers, SeedCapacity(tasks, workers, 8))
	seed := make([]int, tasks)
	for i := range seed {
		seed[i] = i
	}
	p.Seed(seed...)

	var seen [tasks]atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			drain(p, w, func(task int) { seen[task].Add(1) })
		}(w)
	}
	wg.Wait()
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("task %d ran %d times", i, n)
		}
	}
	if c := p.Counters(); c.Spawned != tasks {
		t.Fatalf("Spawned = %d, want %d", c.Spawned, tasks)
	}
}

// TestStealPathDeterministic is the steal-path guarantee: every seed lands
// in worker 0's deque, but only worker 1 drains — every task it gets must
// come through stealTop.
func TestStealPathDeterministic(t *testing.T) {
	const tasks = 50
	p := NewPool[int](2, tasks)
	for i := 0; i < tasks; i++ {
		p.Push(0, i)
	}
	ran := 0
	prev := -1
	drain(p, 1, func(task int) {
		ran++
		// Steals take the top (oldest-first), so seed order is preserved.
		if task <= prev {
			t.Fatalf("steal order not oldest-first: %d after %d", task, prev)
		}
		prev = task
	})
	if ran != tasks {
		t.Fatalf("worker 1 ran %d tasks, want %d", ran, tasks)
	}
	if c := p.Counters(); c.Stolen != tasks {
		t.Fatalf("Stolen = %d, want %d", c.Stolen, tasks)
	}
	if c := p.Counters(); c.MaxQueueDepth != tasks {
		t.Fatalf("MaxQueueDepth = %d, want %d", c.MaxQueueDepth, tasks)
	}
}

// TestReservation exercises the CanPush contract on a full deque: pushes
// are refused at capacity and guaranteed again after a pop, with the
// occupancy gauge tracking exactly.
func TestReservation(t *testing.T) {
	p := NewPool[int](2, 3)
	for i := 0; i < 3; i++ {
		if !p.CanPush(0) {
			t.Fatalf("CanPush false at occupancy %d, capacity 3", i)
		}
		p.Push(0, i)
	}
	if p.CanPush(0) {
		t.Fatal("CanPush true on a full deque")
	}
	if p.Occupancy(0) != 3 {
		t.Fatalf("Occupancy = %d, want 3", p.Occupancy(0))
	}
	// Owner pops LIFO: the youngest task comes back first.
	task, ok := p.deques[0].popBottom()
	if !ok || task != 2 {
		t.Fatalf("popBottom = %d,%v want 2,true", task, ok)
	}
	p.TaskDone()
	if !p.CanPush(0) {
		t.Fatal("CanPush false after pop freed a slot")
	}
	// Drain the remainder so pending reaches zero.
	for {
		task, ok := p.deques[0].popBottom()
		if !ok {
			break
		}
		_ = task
		p.TaskDone()
	}
	if _, ok := p.Next(0); ok {
		t.Fatal("Next returned a task from a drained pool")
	}
}

func TestEmptyPoolDrainsImmediately(t *testing.T) {
	p := NewPool[int](3, 4)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if _, ok := p.Next(w); ok {
				t.Errorf("worker %d got a task from an empty pool", w)
			}
		}(w)
	}
	wg.Wait()
}

// TestDynamicSpawning drives the pool the way the enumeration engines do:
// tasks spawn subtasks while running, bounded inline fallback when the
// local deque is full.
func TestDynamicSpawning(t *testing.T) {
	const workers = 4
	p := NewPool[int](workers, 4)
	var executed atomic.Int64
	var inlined atomic.Int64

	// Each task value is a remaining fan-out depth; a task of depth d
	// spawns two tasks of depth d-1 (inline-recursing when its deque is
	// full, exactly like the engine's fallback).
	var runTask func(w, d int)
	runTask = func(w, d int) {
		executed.Add(1)
		if d == 0 {
			return
		}
		for i := 0; i < 2; i++ {
			if p.CanPush(w) {
				p.Push(w, d-1)
			} else {
				inlined.Add(1)
				runTask(w, d-1)
			}
		}
	}

	p.Seed(10)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				d, ok := p.Next(w)
				if !ok {
					return
				}
				runTask(w, d)
				p.TaskDone()
			}
		}(w)
	}
	wg.Wait()

	// A full binary fan-out of depth 10 is 2^11 - 1 nodes, counted whether
	// a node ran as a task or inline.
	if got := executed.Load(); got != 1<<11-1 {
		t.Fatalf("executed %d nodes, want %d", got, 1<<11-1)
	}
	c := p.Counters()
	if c.Spawned+inlined.Load() != 1<<11-1 {
		t.Fatalf("spawned %d + inlined %d ≠ %d nodes", c.Spawned, inlined.Load(), 1<<11-1)
	}
	if c.MaxQueueDepth > 4 {
		t.Fatalf("MaxQueueDepth %d exceeds capacity 4", c.MaxQueueDepth)
	}
}

func TestSeedCapacity(t *testing.T) {
	cases := []struct{ n, workers, min, want int }{
		{0, 4, 8, 8},
		{100, 4, 8, 25},
		{101, 4, 8, 26},
		{3, 4, 8, 8},
		{64, 1, 4, 64},
	}
	for _, c := range cases {
		if got := SeedCapacity(c.n, c.workers, c.min); got != c.want {
			t.Fatalf("SeedCapacity(%d,%d,%d) = %d, want %d", c.n, c.workers, c.min, got, c.want)
		}
	}
}

func TestFreeList(t *testing.T) {
	var f FreeList[int]
	if _, ok := f.Get(); ok {
		t.Fatal("empty list returned a value")
	}
	a, b := new(int), new(int)
	*a, *b = 1, 2
	f.Put(a)
	f.Put(b)
	if f.Len() != 2 {
		t.Fatalf("Len = %d, want 2", f.Len())
	}
	// LIFO: the most recently parked object comes back first (warmest
	// buffers for the next reuse).
	got, ok := f.Get()
	if !ok || got != b {
		t.Fatalf("Get returned %v, want b", got)
	}
	if got, ok := f.Get(); !ok || got != a {
		t.Fatalf("Get returned %v, want a", got)
	}
	if _, ok := f.Get(); ok {
		t.Fatal("drained list returned a value")
	}
	hits, misses := f.Stats()
	if hits != 2 || misses != 2 {
		t.Fatalf("Stats = %d/%d, want 2 hits, 2 misses", hits, misses)
	}
}
