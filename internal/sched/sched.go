// Package sched provides the work-stealing task pool shared by the
// parallel enumeration engines (ParAdaMBE in internal/core, the ParMBE
// competitor in internal/baselines).
//
// The design follows the structure the paper gets from TBB's task
// scheduler: one bounded deque per worker. The owning worker pushes and
// pops at the bottom (LIFO — the freshest subtree, whose CG data is still
// cache-hot), while idle workers steal from the top (FIFO — the oldest,
// typically largest detached subtree, which amortizes the steal best).
// Each deque is a mutexed ring; with one push/pop per detached subtree the
// lock is far off the enumeration's critical path, and benchmarking showed
// it indistinguishable from a Chase-Lev deque at this task granularity.
//
// The bounded capacity plus the owner-only-push discipline give the
// reservation property the engines rely on: only the owner appends to its
// deque, so once CanPush observes a free slot, that slot cannot be taken
// by anyone else — occupancy only shrinks from the owner's point of view.
// Callers therefore check CanPush first, pay the expensive task
// materialization (the detach deep-copy) only on a guaranteed slot, and
// then Push, which never fails.
package sched

import (
	"sync"
	"sync/atomic"
)

// WorkerState classifies what a pool worker is doing, as reported to an
// Observer. Transitions happen at task granularity (acquire, park, drain),
// never per enumeration node.
type WorkerState int32

const (
	// StateBusy: the worker holds a task returned by Next.
	StateBusy WorkerState = iota
	// StateStealing: the worker is sweeping deques looking for work.
	StateStealing
	// StateParked: the worker is blocked waiting for a push or drain.
	StateParked
	// StateDone: Next returned ok=false; the pool drained for this worker.
	StateDone
)

// Observer receives scheduler lifecycle callbacks. Implementations must be
// fast and non-blocking (think: one atomic store) — WorkerStole in
// particular can fire while the pool's own lock is held. A nil observer
// costs one predictable branch per transition.
type Observer interface {
	// WorkerState reports worker w entering state s.
	WorkerState(w int, s WorkerState)
	// WorkerStole reports worker w taking a task from another deque.
	WorkerStole(w int)
}

// Counters is a snapshot of the pool's scheduling statistics.
type Counters struct {
	// Spawned counts every task pushed into the pool (seeds included).
	Spawned int64
	// Stolen counts tasks taken from a deque by a non-owner worker.
	Stolen int64
	// MaxQueueDepth is the highest single-deque occupancy observed.
	MaxQueueDepth int64
}

// deque is one worker's bounded ring. head is the steal end (oldest task);
// the owner pushes and pops at head+n (youngest). occ mirrors n for
// lock-free occupancy reads by the adaptive spawn cutoff.
type deque[T any] struct {
	mu   sync.Mutex
	buf  []T
	head int
	occ  atomic.Int32
	// Pad deques apart so one worker's push/pop traffic does not false-share
	// a cache line with its neighbor's.
	_ [64]byte
}

// Pool is a fixed-width work-stealing scheduler. Workers are identified by
// index [0, Workers()); worker w may call Next/CanPush/Push only with its
// own index. A task is pending from Push until the matching TaskDone; the
// pool drains (Next returns ok=false everywhere) once pending reaches zero.
type Pool[T any] struct {
	deques  []deque[T]
	pending atomic.Int64
	idle    atomic.Int32

	mu   sync.Mutex
	cond *sync.Cond

	spawned  atomic.Int64
	stolen   atomic.Int64
	maxDepth atomic.Int64

	obs Observer
}

// SetObserver attaches o to the pool's lifecycle callbacks. Must be called
// before the workers start; nil (the default) disables observation.
func (p *Pool[T]) SetObserver(o Observer) { p.obs = o }

// NewPool builds a pool with one capacity-slot ring per worker.
func NewPool[T any](workers, capacity int) *Pool[T] {
	if workers < 1 {
		workers = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	p := &Pool[T]{deques: make([]deque[T], workers)}
	for i := range p.deques {
		p.deques[i].buf = make([]T, capacity)
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Workers returns the pool width.
func (p *Pool[T]) Workers() int { return len(p.deques) }

// Capacity returns the per-worker deque capacity.
func (p *Pool[T]) Capacity() int { return len(p.deques[0].buf) }

// Occupancy returns how many tasks sit in worker w's deque right now.
func (p *Pool[T]) Occupancy(w int) int { return int(p.deques[w].occ.Load()) }

// IdleWorkers returns how many workers are currently parked waiting for
// work — the starvation signal the adaptive spawn cutoff feeds on.
func (p *Pool[T]) IdleWorkers() int { return int(p.idle.Load()) }

// QueuedTasks returns the total number of tasks sitting in deques right
// now (excluding running tasks). Together with IdleWorkers it tells a
// producer whether parked workers actually lack steal targets, or are
// merely waiting their turn on an oversubscribed machine.
func (p *Pool[T]) QueuedTasks() int {
	n := 0
	for i := range p.deques {
		n += int(p.deques[i].occ.Load())
	}
	return n
}

// CanPush reports whether worker w's next Push is guaranteed to succeed.
// Because only w itself appends to its deque, a true result is a
// reservation: the slot cannot disappear before the Push, however long the
// caller spends materializing the task.
func (p *Pool[T]) CanPush(w int) bool {
	return int(p.deques[w].occ.Load()) < len(p.deques[w].buf)
}

// Push appends a task at the bottom of worker w's deque. It must only be
// called by worker w after a true CanPush (it panics on a full deque —
// that is a scheduler bug, not load). Safe against concurrent steals.
func (p *Pool[T]) Push(w int, t T) {
	d := &p.deques[w]
	// The task must be pending before it becomes visible: a thief could
	// otherwise steal, run and TaskDone it first, driving pending to zero
	// and terminating the pool while this task still exists.
	p.pending.Add(1)
	d.mu.Lock()
	n := int(d.occ.Load())
	if n == len(d.buf) {
		d.mu.Unlock()
		panic("sched: Push without reservation on a full deque")
	}
	d.buf[(d.head+n)%len(d.buf)] = t
	d.occ.Store(int32(n + 1))
	d.mu.Unlock()

	p.spawned.Add(1)
	depth := int64(n + 1)
	for {
		cur := p.maxDepth.Load()
		if depth <= cur || p.maxDepth.CompareAndSwap(cur, depth) {
			break
		}
	}
	if p.idle.Load() > 0 {
		p.mu.Lock()
		p.cond.Signal()
		p.mu.Unlock()
	}
}

// Seed distributes tasks round-robin across the deques before the workers
// start. The per-worker capacity must accommodate them (callers size the
// pool with SeedCapacity).
func (p *Pool[T]) Seed(tasks ...T) {
	for i, t := range tasks {
		p.Push(i%len(p.deques), t)
	}
}

// SeedCapacity returns the per-worker capacity needed to Seed n tasks
// round-robin across workers deques, at least min.
func SeedCapacity(n, workers, min int) int {
	need := (n + workers - 1) / workers
	if need < min {
		return min
	}
	return need
}

// popBottom takes the youngest task of worker w's own deque.
func (d *deque[T]) popBottom() (T, bool) {
	var zero T
	d.mu.Lock()
	n := int(d.occ.Load())
	if n == 0 {
		d.mu.Unlock()
		return zero, false
	}
	n--
	i := (d.head + n) % len(d.buf)
	t := d.buf[i]
	d.buf[i] = zero
	d.occ.Store(int32(n))
	d.mu.Unlock()
	return t, true
}

// stealTop takes the oldest task of a victim's deque.
func (d *deque[T]) stealTop() (T, bool) {
	var zero T
	d.mu.Lock()
	n := int(d.occ.Load())
	if n == 0 {
		d.mu.Unlock()
		return zero, false
	}
	t := d.buf[d.head]
	d.buf[d.head] = zero
	d.head = (d.head + 1) % len(d.buf)
	d.occ.Store(int32(n - 1))
	d.mu.Unlock()
	return t, true
}

// take attempts one full acquisition sweep for worker w: own deque bottom
// first, then every sibling's top in round-robin order.
func (p *Pool[T]) take(w int) (T, bool) {
	if t, ok := p.deques[w].popBottom(); ok {
		return t, true
	}
	for off := 1; off < len(p.deques); off++ {
		v := (w + off) % len(p.deques)
		if p.deques[v].occ.Load() == 0 {
			continue
		}
		if t, ok := p.deques[v].stealTop(); ok {
			p.stolen.Add(1)
			if p.obs != nil {
				p.obs.WorkerStole(w)
			}
			return t, true
		}
	}
	var zero T
	return zero, false
}

// Next blocks until worker w acquires a task (ok=true) or every pending
// task has completed (ok=false, the pool is drained). Each ok=true result
// must be balanced by one TaskDone call after the task finishes.
func (p *Pool[T]) Next(w int) (T, bool) {
	var zero T
	if p.obs != nil {
		p.obs.WorkerState(w, StateStealing)
	}
	for {
		if t, ok := p.take(w); ok {
			if p.obs != nil {
				p.obs.WorkerState(w, StateBusy)
			}
			return t, true
		}
		if p.pending.Load() == 0 {
			if p.obs != nil {
				p.obs.WorkerState(w, StateDone)
			}
			return zero, false
		}
		p.mu.Lock()
		p.idle.Add(1)
		// Double-check after advertising idleness: a push that raced with
		// the failed sweep either landed before it (found now) or after,
		// in which case the pusher observes idle > 0 — our increment
		// happened before our sweep's deque-lock round trips — and will
		// take p.mu to signal, which it cannot do until we Wait.
		if t, ok := p.take(w); ok {
			p.idle.Add(-1)
			p.mu.Unlock()
			if p.obs != nil {
				p.obs.WorkerState(w, StateBusy)
			}
			return t, true
		}
		if p.pending.Load() == 0 {
			p.idle.Add(-1)
			p.mu.Unlock()
			if p.obs != nil {
				p.obs.WorkerState(w, StateDone)
			}
			return zero, false
		}
		if p.obs != nil {
			p.obs.WorkerState(w, StateParked)
		}
		p.cond.Wait()
		p.idle.Add(-1)
		if p.obs != nil {
			p.obs.WorkerState(w, StateStealing)
		}
		// Hand the wake along if there is visibly more work than us: one
		// Signal per Push can under-wake when a single worker absorbs
		// several wakes in a row.
		if p.idle.Load() > 0 {
			for i := range p.deques {
				if p.deques[i].occ.Load() > 0 {
					p.cond.Signal()
					break
				}
			}
		}
		p.mu.Unlock()
	}
}

// TaskDone marks one task (previously returned by Next) complete. The call
// that drives pending to zero wakes every parked worker so the pool can
// drain.
func (p *Pool[T]) TaskDone() {
	if p.pending.Add(-1) == 0 {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// Counters returns a snapshot of the scheduling statistics. Consistent
// only once the pool has drained.
func (p *Pool[T]) Counters() Counters {
	return Counters{
		Spawned:       p.spawned.Load(),
		Stolen:        p.stolen.Load(),
		MaxQueueDepth: p.maxDepth.Load(),
	}
}

// FreeList is a worker-local recycling stack for task objects, closing the
// allocation loop of the task lifecycle: the worker that finishes a task
// Puts its shell (retained buffers and all) and the next spawn Gets it back
// instead of allocating. Ownership follows the task — a node detached by
// worker A and executed by thief B lands on B's free list, which is exactly
// right: B is also the worker about to spawn from the stolen subtree.
//
// Not safe for concurrent use; each worker owns one FreeList, touched only
// from its own goroutine (Get at spawn, Put after TaskDone). The list only
// ever holds nodes that have left the pool, so its length is bounded by the
// worker's share of the peak in-flight task footprint, not by spawn
// traffic.
type FreeList[T any] struct {
	free   []*T
	hits   int64
	misses int64
}

// Get pops a recycled object, or reports a miss (the caller allocates).
func (f *FreeList[T]) Get() (*T, bool) {
	if n := len(f.free); n > 0 {
		t := f.free[n-1]
		f.free[n-1] = nil
		f.free = f.free[:n-1]
		f.hits++
		return t, true
	}
	f.misses++
	return nil, false
}

// Put pushes a finished task object for reuse. The caller must not touch t
// again until a Get returns it.
func (f *FreeList[T]) Put(t *T) {
	if t != nil {
		f.free = append(f.free, t)
	}
}

// Len returns the number of objects currently parked on the list.
func (f *FreeList[T]) Len() int { return len(f.free) }

// Stats returns how many Gets were served from the list vs fell through to
// allocation.
func (f *FreeList[T]) Stats() (hits, misses int64) { return f.hits, f.misses }
