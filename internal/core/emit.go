package core

import "sync"

// emitBatchPairs is the per-worker buffer size at which an emission shard
// flushes: large enough to amortize the shared lock over many bicliques,
// small enough that delivery latency stays bounded and partial buffers at
// cancellation are cheap to drain.
const emitBatchPairs = 128

// emitShard is one parallel worker's emission buffer. ParAdaMBE's serial
// ancestor took a global mutex around every OnBiclique call; on skewed
// datasets where a few subtrees emit millions of bicliques that mutex is
// the scaling cliff. Each worker instead copies its (L, R) pairs into a
// private arena and flushes the whole batch through one short critical
// section, so lock traffic drops by the batch factor while handler calls
// remain serialized (the documented default contract). A worker's own
// bicliques are delivered in discovery order; interleaving across workers
// is unspecified, exactly as with the old per-call mutex.
//
// The shard exists only when a handler is attached and UnorderedEmit is
// off; the unordered path hands the engine the user handler directly, and
// handler-less runs only count.
type emitShard struct {
	inner Handler
	mu    *sync.Mutex // shared across the run's shards

	// arena backs both sides of every buffered pair; pairs[i] spans
	// arena[pairs[i-1].rEnd:pairs[i].lEnd] (L) and
	// arena[pairs[i].lEnd:pairs[i].rEnd] (R).
	arena []int32
	pairs []emitPairRef
	next  int // first undelivered pair during/after a flush

	// dead is set when a flush panicked (a handler panic): the shard stops
	// delivering so a crashing user handler is not re-entered while the
	// run winds down. Emissions discarded this way are tallied in dropped
	// so the worker can reconcile its count (counts stay "delivered only").
	dead    bool
	dropped int64

	charge     func(int64) // engine memory gauge hook
	chargedCap int64       // bytes already charged for retained capacity
}

type emitPairRef struct{ lEnd, rEnd int32 }

func newEmitShard(inner Handler, mu *sync.Mutex) *emitShard {
	return &emitShard{inner: inner, mu: mu}
}

// emit buffers one biclique, flushing when the batch is full. It is the
// engine's Handler in sharded mode, so L and R are slab-backed and must be
// copied here.
func (s *emitShard) emit(L, R []int32) {
	if s.dead {
		s.dropped++
		return
	}
	s.arena = append(s.arena, L...)
	lEnd := int32(len(s.arena))
	s.arena = append(s.arena, R...)
	s.pairs = append(s.pairs, emitPairRef{lEnd: lEnd, rEnd: int32(len(s.arena))})
	s.accountGrowth()
	if len(s.pairs)-s.next >= emitBatchPairs {
		s.flush()
	}
}

// flush delivers every buffered pair under the shared lock. A panicking
// handler marks the shard dead (the panicking pair counts as delivered —
// the handler was invoked for it — matching the serial engine) and the
// panic propagates to the caller's recovery.
func (s *emitShard) flush() {
	if s.next >= len(s.pairs) || s.dead {
		return
	}
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
		if r := recover(); r != nil {
			s.dead = true
			panic(r)
		}
	}()
	for s.next < len(s.pairs) {
		i := s.next
		start := int32(0)
		if i > 0 {
			start = s.pairs[i-1].rEnd
		}
		p := s.pairs[i]
		s.next = i + 1 // advance before the call: a panic leaves the rest undelivered
		s.inner(s.arena[start:p.lEnd], s.arena[p.lEnd:p.rEnd])
	}
	s.arena = s.arena[:0]
	s.pairs = s.pairs[:0]
	s.next = 0
}

// undelivered reports how many counted bicliques this shard failed to
// deliver (buffered past a dead flush, or dropped after death); the worker
// subtracts it from its count so Result.Count keeps the monotone
// "every biclique counted was delivered" guarantee.
func (s *emitShard) undelivered() int64 {
	return int64(len(s.pairs)-s.next) + s.dropped
}

// accountGrowth charges retained buffer capacity growth to the run's soft
// memory budget (capacities are kept across flushes, so the charge is the
// shard's live footprint).
func (s *emitShard) accountGrowth() {
	if s.charge == nil {
		return
	}
	now := int64(cap(s.arena))*4 + int64(cap(s.pairs))*8
	if now > s.chargedCap {
		s.charge(now - s.chargedCap)
		s.chargedCap = now
	}
}
