package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/graph"
)

// lifecycleGraph returns a graph whose AdaMBE enumeration comfortably
// exceeds one amortized check quantum (~12k maximal bicliques), so mid-run
// stop conditions are always observed before the run finishes.
func lifecycleGraph(t testing.TB) *graph.Bipartite {
	t.Helper()
	return randomBipartite(t, 5, 300, 120, 4000)
}

func fullCount(t *testing.T, g *graph.Bipartite) int64 {
	t.Helper()
	res, err := Enumerate(g, Options{Variant: Ada})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count < 5000 {
		t.Fatalf("lifecycle graph too small for mid-run stop tests: %d bicliques", res.Count)
	}
	return res.Count
}

// TestParAdaMBEWorkerPanicMidRun is the headline lifecycle guarantee: a
// worker panicking mid-enumeration must surface as a clean error (wrapping
// ErrPanic) with a partial monotone count, not a crash or a hang, and must
// leak no goroutines.
func TestParAdaMBEWorkerPanicMidRun(t *testing.T) {
	g := lifecycleGraph(t)
	full := fullCount(t, g)

	checkLeaks := faultinject.CheckGoroutines(t)
	inj := faultinject.New(42)
	inj.PanicAt(SiteNode, 2000)
	// Tau: 1 keeps the enumeration on the LN path (SiteNode fires per
	// candidate expansion); the default τ would route these small nodes
	// through the bitmap procedure instead.
	res, err := Enumerate(g, Options{Variant: Ada, Tau: 1, Threads: 4, FaultHook: inj.Hook()})
	if err == nil {
		t.Fatal("worker panic did not surface as an error")
	}
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want wrapping ErrPanic", err)
	}
	if res.StopReason != StopPanic {
		t.Fatalf("StopReason = %v, want StopPanic", res.StopReason)
	}
	if res.Count <= 0 || res.Count >= full {
		t.Fatalf("partial count %d, want in (0, %d)", res.Count, full)
	}
	checkLeaks()
}

func TestSerialPanicInHandlerRecovered(t *testing.T) {
	g := lifecycleGraph(t)
	full := fullCount(t, g)
	for _, v := range []Variant{Baseline, LN, BIT, Ada} {
		n := 0
		res, err := Enumerate(g, Options{
			Variant: v,
			OnBiclique: func(L, R []int32) {
				n++
				if n == 5 {
					panic("handler boom")
				}
			},
		})
		if !errors.Is(err, ErrPanic) {
			t.Fatalf("%v: err = %v, want wrapping ErrPanic", v, err)
		}
		if res.StopReason != StopPanic {
			t.Fatalf("%v: StopReason = %v, want StopPanic", v, res.StopReason)
		}
		if res.Count != 5 || res.Count >= full {
			t.Fatalf("%v: partial count %d, want 5", v, res.Count)
		}
	}
}

func TestContextCancelMidRun(t *testing.T) {
	g := lifecycleGraph(t)
	full := fullCount(t, g)
	for _, threads := range []int{0, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var n int64
		res, err := Enumerate(g, Options{
			Variant: Ada, Threads: threads, Context: ctx,
			OnBiclique: func(L, R []int32) {
				if n++; n == 100 {
					cancel()
				}
			},
		})
		cancel()
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if res.StopReason != StopCanceled {
			t.Fatalf("threads=%d: StopReason = %v, want StopCanceled", threads, res.StopReason)
		}
		if res.Count < 100 || res.Count >= full {
			t.Fatalf("threads=%d: partial count %d, want in [100, %d)", threads, res.Count, full)
		}
		if res.TimedOut {
			t.Fatalf("threads=%d: TimedOut set on cancellation", threads)
		}
	}
}

func TestPreCanceledContextStopsBeforeWork(t *testing.T) {
	g := lifecycleGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, o := range []Options{
		{Variant: Baseline, Context: ctx},
		{Variant: LN, Context: ctx},
		{Variant: BIT, Context: ctx},
		{Variant: Ada, Context: ctx},
		{Variant: Ada, Threads: 4, Context: ctx},
	} {
		res, err := Enumerate(g, o)
		if err != nil {
			t.Fatalf("%s: %v", cfgName(o), err)
		}
		if res.StopReason != StopCanceled {
			t.Fatalf("%s: StopReason = %v, want StopCanceled", cfgName(o), res.StopReason)
		}
		if res.Count != 0 {
			t.Fatalf("%s: pre-canceled run emitted %d bicliques", cfgName(o), res.Count)
		}
	}
}

func TestMemoryBudgetStopsRun(t *testing.T) {
	g := lifecycleGraph(t)
	for _, threads := range []int{0, 4} {
		// 1 byte: the engine's base stamp-table charge alone blows it, so
		// the run must stop on its first poll.
		res, err := Enumerate(g, Options{Variant: Ada, Threads: threads, MaxMemoryBytes: 1})
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if res.StopReason != StopMemoryBudget {
			t.Fatalf("threads=%d: StopReason = %v, want StopMemoryBudget", threads, res.StopReason)
		}
	}
	// A generous budget must not trip.
	res, err := Enumerate(g, Options{Variant: Ada, MaxMemoryBytes: 1 << 30})
	if err != nil || res.StopReason != StopNone {
		t.Fatalf("1GiB budget: StopReason = %v err = %v, want clean run", res.StopReason, err)
	}
}

func TestAllocFailInjectionDegradesLikeBudget(t *testing.T) {
	g := lifecycleGraph(t)
	full := fullCount(t, g)
	inj := faultinject.New(7)
	inj.FailAllocAt(SiteNode, 500)
	res, err := Enumerate(g, Options{Variant: Ada, Tau: 1, FaultHook: inj.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	if res.StopReason != StopMemoryBudget {
		t.Fatalf("StopReason = %v, want StopMemoryBudget", res.StopReason)
	}
	if res.Count <= 0 || res.Count >= full {
		t.Fatalf("partial count %d, want in (0, %d)", res.Count, full)
	}
	if inj.Visits(SiteNode) < 500 {
		t.Fatalf("site visited %d times, want ≥ 500", inj.Visits(SiteNode))
	}
}

func TestDeadlineStopReasonAllVariants(t *testing.T) {
	g := lifecycleGraph(t)
	expired := time.Now().Add(-time.Hour)
	for _, o := range []Options{
		{Variant: Baseline, Deadline: expired},
		{Variant: LN, Deadline: expired},
		{Variant: BIT, Deadline: expired},
		{Variant: Ada, Deadline: expired},
		{Variant: Ada, Threads: 4, Deadline: expired},
	} {
		res, err := Enumerate(g, o)
		if err != nil {
			t.Fatalf("%s: %v", cfgName(o), err)
		}
		if res.StopReason != StopDeadline {
			t.Fatalf("%s: StopReason = %v, want StopDeadline", cfgName(o), res.StopReason)
		}
		if !res.TimedOut {
			t.Fatalf("%s: deprecated TimedOut not mirrored", cfgName(o))
		}
	}
}

func TestParallelCleanRunLeaksNothing(t *testing.T) {
	g := lifecycleGraph(t)
	checkLeaks := faultinject.CheckGoroutines(t)
	res, err := Enumerate(g, Options{Variant: Ada, Threads: 4})
	if err != nil || res.StopReason != StopNone {
		t.Fatalf("StopReason = %v err = %v", res.StopReason, err)
	}
	checkLeaks()
}

// TestSpawnSiteFaultInjection exercises the detach/spawn instrumentation
// point: a simulated allocation failure while detaching a subtree must
// degrade the run, not corrupt it.
func TestSpawnSiteFaultInjection(t *testing.T) {
	g := lifecycleGraph(t)
	checkLeaks := faultinject.CheckGoroutines(t)
	inj := faultinject.New(3)
	inj.FailAllocAt(SiteSpawn, 2)
	res, err := Enumerate(g, Options{Variant: Ada, Threads: 4, FaultHook: inj.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	if res.StopReason != StopMemoryBudget {
		t.Fatalf("StopReason = %v, want StopMemoryBudget", res.StopReason)
	}
	checkLeaks()
}
