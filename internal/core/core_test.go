package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/graph"
)

func randomBipartite(t testing.TB, seed int64, nu, nv, m int) *graph.Bipartite {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{U: int32(rng.Intn(nu)), V: int32(rng.Intn(nv))}
	}
	g, err := graph.FromEdges(nu, nv, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustAdj(t testing.TB, nu int, rows [][]int32) *graph.Bipartite {
	t.Helper()
	g, err := graph.FromAdjacency(nu, rows)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func keysEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// allConfigs is the matrix of engine configurations every correctness test
// sweeps: all four variants, several τ values, and the parallel engine.
func allConfigs() []Options {
	return []Options{
		{Variant: Baseline},
		{Variant: LN},
		{Variant: BIT},
		{Variant: BIT, Tau: 4},
		{Variant: BIT, Tau: 200},
		{Variant: Ada},
		{Variant: Ada, Tau: 1},
		{Variant: Ada, Tau: 7},
		{Variant: Ada, Tau: 130},
		{Variant: Ada, Threads: 4},
		{Variant: Ada, Threads: 4, Tau: 8},
		{Variant: Ada, Tau: 100, PadBitmaps: true},
		{Variant: BIT, Tau: 100, PadBitmaps: true},
	}
}

func cfgName(o Options) string {
	return fmt.Sprintf("%v/tau=%d/threads=%d", o.Variant, o.Tau, o.Threads)
}

func TestPaperExampleAllVariants(t *testing.T) {
	g := graph.PaperExample()
	want := BruteForceKeys(g)
	if len(want) != 9 {
		t.Fatalf("oracle found %d maximal bicliques on G0, want 9", len(want))
	}
	// The Figure 1 biclique must be among them.
	fig1 := BicliqueKey([]int32{0, 4, 5, 6}, []int32{0, 2, 3})
	found := false
	for _, k := range want {
		if k == fig1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("oracle missing the Figure 1 biclique %q", fig1)
	}
	for _, o := range allConfigs() {
		got, res, err := CollectKeys(g, o)
		if err != nil {
			t.Fatalf("%s: %v", cfgName(o), err)
		}
		if res.Count != int64(len(want)) || !keysEqual(got, want) {
			t.Fatalf("%s: got %d bicliques %v, want %v", cfgName(o), res.Count, got, want)
		}
	}
}

func TestCrossValidationRandomGraphs(t *testing.T) {
	// Hundreds of random graphs spanning sparse to dense; every engine
	// configuration must match the brute-force oracle exactly.
	trials := 0
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed * 7))
		nu := 1 + rng.Intn(40)
		nv := 1 + rng.Intn(12)
		m := rng.Intn(nu*nv + 1)
		g := randomBipartite(t, seed, nu, nv, m)
		want := BruteForceKeys(g)
		for _, o := range allConfigs() {
			got, res, err := CollectKeys(g, o)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, cfgName(o), err)
			}
			if res.Count != int64(len(want)) {
				t.Fatalf("seed %d (nu=%d nv=%d m=%d) %s: count %d, want %d",
					seed, nu, nv, m, cfgName(o), res.Count, len(want))
			}
			if !keysEqual(got, want) {
				t.Fatalf("seed %d %s: biclique sets differ", seed, cfgName(o))
			}
			trials++
		}
	}
	if trials < 600 {
		t.Fatalf("only %d trials ran", trials)
	}
}

func TestCrossValidationDenseAndStructured(t *testing.T) {
	cases := map[string]*graph.Bipartite{
		"complete_4x4": mustAdj(t, 4, [][]int32{
			{0, 1, 2, 3}, {0, 1, 2, 3}, {0, 1, 2, 3}, {0, 1, 2, 3},
		}),
		"star": mustAdj(t, 6, [][]int32{
			{0}, {0}, {0, 1, 2, 3, 4, 5},
		}),
		"matching": mustAdj(t, 5, [][]int32{
			{0}, {1}, {2}, {3}, {4},
		}),
		"chain": mustAdj(t, 5, [][]int32{
			{0, 1}, {1, 2}, {2, 3}, {3, 4},
		}),
		"isolated_vs": mustAdj(t, 4, [][]int32{
			{}, {0, 1}, {}, {2},
		}),
		"one_edge": mustAdj(t, 1, [][]int32{{0}}),
		"crossbars": mustAdj(t, 8, [][]int32{
			{0, 1, 2, 3}, {2, 3, 4, 5}, {4, 5, 6, 7}, {0, 1, 6, 7}, {0, 2, 4, 6},
		}),
	}
	for name, g := range cases {
		want := BruteForceKeys(g)
		for _, o := range allConfigs() {
			got, res, err := CollectKeys(g, o)
			if err != nil {
				t.Fatalf("%s %s: %v", name, cfgName(o), err)
			}
			if res.Count != int64(len(want)) || !keysEqual(got, want) {
				t.Fatalf("%s %s: got %v want %v", name, cfgName(o), got, want)
			}
		}
	}
	// complete_4x4 has exactly one maximal biclique.
	if n := len(BruteForceKeys(cases["complete_4x4"])); n != 1 {
		t.Fatalf("complete bipartite graph has %d maximal bicliques, want 1", n)
	}
}

func TestEmptyAndEdgelessGraphs(t *testing.T) {
	empty, err := graph.FromEdges(0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	edgeless, err := graph.FromEdges(5, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []*graph.Bipartite{empty, edgeless} {
		for _, o := range allConfigs() {
			res, err := Enumerate(g, o)
			if err != nil {
				t.Fatalf("%s: %v", cfgName(o), err)
			}
			if res.Count != 0 {
				t.Fatalf("%s: %d bicliques in edgeless graph", cfgName(o), res.Count)
			}
		}
	}
}

// Every emitted pair must be a biclique (complete) and maximal — checked
// directly against the graph, independent of the oracle.
func TestEmittedBicliquesAreMaximal(t *testing.T) {
	for seed := int64(100); seed < 112; seed++ {
		g := randomBipartite(t, seed, 30, 10, 90)
		for _, o := range []Options{{Variant: Ada}, {Variant: Ada, Threads: 3}} {
			o.OnBiclique = func(L, R []int32) {
				if len(L) == 0 || len(R) == 0 {
					t.Fatalf("seed %d: empty side emitted", seed)
				}
				for _, u := range L {
					for _, v := range R {
						if !g.HasEdge(u, v) {
							t.Fatalf("seed %d: emitted pair missing edge (%d,%d)", seed, u, v)
						}
					}
				}
				// Maximal in U direction: no u ∉ L adjacent to all of R.
				for u := int32(0); u < int32(g.NU()); u++ {
					inL := false
					for _, x := range L {
						if x == u {
							inL = true
						}
					}
					if inL {
						continue
					}
					all := true
					for _, v := range R {
						if !g.HasEdge(u, v) {
							all = false
							break
						}
					}
					if all {
						t.Fatalf("seed %d: L extensible by u%d", seed, u)
					}
				}
				// Maximal in V direction.
				for v := int32(0); v < int32(g.NV()); v++ {
					inR := false
					for _, x := range R {
						if x == v {
							inR = true
						}
					}
					if inR {
						continue
					}
					all := true
					for _, u := range L {
						if !g.HasEdge(u, v) {
							all = false
							break
						}
					}
					if all {
						t.Fatalf("seed %d: R extensible by v%d", seed, v)
					}
				}
			}
			if _, err := Enumerate(g, o); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestNoDuplicateEmissions(t *testing.T) {
	for seed := int64(200); seed < 220; seed++ {
		g := randomBipartite(t, seed, 25, 11, 80)
		for _, o := range allConfigs() {
			keys, _, err := CollectKeys(g, o)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(keys); i++ {
				if keys[i] == keys[i-1] {
					t.Fatalf("seed %d %s: duplicate biclique %q", seed, cfgName(o), keys[i])
				}
			}
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	g := graph.PaperExample()
	if _, err := Enumerate(g, Options{Tau: -1}); err == nil {
		t.Fatal("accepted negative tau")
	}
	if _, err := Enumerate(g, Options{Tau: MaxTau + 1}); err == nil {
		t.Fatal("accepted huge tau")
	}
	if _, err := Enumerate(g, Options{Threads: -2}); err == nil {
		t.Fatal("accepted negative threads")
	}
	if _, err := Enumerate(g, Options{Variant: Variant(99)}); err == nil {
		t.Fatal("accepted unknown variant")
	}
	if _, err := Enumerate(g, Options{Variant: Baseline, Threads: 4}); err == nil {
		t.Fatal("accepted parallel Baseline")
	}
	if _, err := Enumerate(g, Options{Variant: Ada, Threads: 4}); err != nil {
		t.Fatal("rejected ParAdaMBE")
	}
}

func TestDeadlineStopsEnumeration(t *testing.T) {
	// A dense-ish graph with plenty of bicliques; an already-expired
	// deadline must stop the run early and flag TimedOut.
	g := randomBipartite(t, 7, 60, 18, 500)
	full, err := Enumerate(g, Options{Variant: Ada})
	if err != nil {
		t.Fatal(err)
	}
	if full.Count == 0 {
		t.Fatal("test graph has no bicliques; pick another seed")
	}
	for _, threads := range []int{0, 4} {
		res, err := Enumerate(g, Options{
			Variant:  Ada,
			Threads:  threads,
			Deadline: time.Now().Add(-time.Second),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.TimedOut {
			t.Fatalf("threads=%d: run with expired deadline did not report TimedOut", threads)
		}
		if res.Count > full.Count {
			t.Fatalf("threads=%d: partial count %d exceeds full %d", threads, res.Count, full.Count)
		}
	}
	// A generous deadline must not trigger.
	res, err := Enumerate(g, Options{Variant: Ada, Deadline: time.Now().Add(time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut || res.Count != full.Count {
		t.Fatalf("generous deadline: TimedOut=%v count=%d want %d", res.TimedOut, res.Count, full.Count)
	}
}

func TestVariantString(t *testing.T) {
	names := map[Variant]string{
		Baseline: "Baseline", LN: "AdaMBE-LN", BIT: "AdaMBE-BIT", Ada: "AdaMBE",
	}
	for v, want := range names {
		if v.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(v), v.String(), want)
		}
	}
	if Variant(42).String() == "" {
		t.Fatal("unknown variant has empty name")
	}
}

func TestParallelMatchesSerialOnLargerGraph(t *testing.T) {
	g := randomBipartite(t, 11, 300, 80, 2400)
	serial, err := Enumerate(g, Options{Variant: Ada})
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{2, 3, 8} {
		par, err := Enumerate(g, Options{Variant: Ada, Threads: threads})
		if err != nil {
			t.Fatal(err)
		}
		if par.Count != serial.Count {
			t.Fatalf("threads=%d: count %d, serial %d", threads, par.Count, serial.Count)
		}
	}
}

func TestAllVariantsAgreeOnMediumGraph(t *testing.T) {
	// Larger than the oracle can verify; the four variants plus parallel
	// must still agree with each other exactly.
	g := randomBipartite(t, 13, 200, 60, 1500)
	base, err := Enumerate(g, Options{Variant: Baseline})
	if err != nil {
		t.Fatal(err)
	}
	if base.Count == 0 {
		t.Fatal("degenerate test graph")
	}
	for _, o := range allConfigs() {
		res, err := Enumerate(g, o)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != base.Count {
			t.Fatalf("%s: count %d, Baseline %d", cfgName(o), res.Count, base.Count)
		}
	}
}
