package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/graph"
)

func TestMetricsBaselineCountsOutsideAccesses(t *testing.T) {
	g := randomBipartite(t, 31, 80, 25, 500)
	var m Metrics
	if _, err := Enumerate(g, Options{Variant: Baseline, Metrics: &m}); err != nil {
		t.Fatal(err)
	}
	if m.NodesGenerated == 0 || m.SetIntersections == 0 {
		t.Fatalf("no instrumentation recorded: %+v", m)
	}
	if m.NodesGenerated != m.NodesMaximal+m.NodesNonMaximal {
		t.Fatalf("node counts inconsistent: %d != %d + %d",
			m.NodesGenerated, m.NodesMaximal, m.NodesNonMaximal)
	}
	if m.AccessesOutsideCG == 0 {
		t.Fatal("Baseline recorded zero outside-CG accesses (Fig. 5 would be empty)")
	}
	if m.NodesPruned != 0 {
		t.Fatal("Baseline must not prune (LN disabled)")
	}
}

func TestMetricsLNHasNoOutsideAccessesAndPrunes(t *testing.T) {
	g := randomBipartite(t, 31, 80, 25, 500)
	var base, ln Metrics
	if _, err := Enumerate(g, Options{Variant: Baseline, Metrics: &base}); err != nil {
		t.Fatal(err)
	}
	if _, err := Enumerate(g, Options{Variant: LN, Metrics: &ln}); err != nil {
		t.Fatal(err)
	}
	if ln.AccessesOutsideCG != 0 {
		t.Fatalf("LN recorded %d outside-CG accesses, want 0 (§III-A)", ln.AccessesOutsideCG)
	}
	// The Fig. 10c claim: LN reduces nodes with non-maximal bicliques.
	if ln.NodesNonMaximal > base.NodesNonMaximal {
		t.Fatalf("LN non-maximal nodes %d > Baseline %d", ln.NodesNonMaximal, base.NodesNonMaximal)
	}
	// Counts of *maximal* nodes are identical (same biclique set).
	if ln.NodesMaximal != base.NodesMaximal {
		t.Fatalf("maximal node counts differ: LN %d vs Baseline %d", ln.NodesMaximal, base.NodesMaximal)
	}
}

func TestMetricsBitCreatesBitmaps(t *testing.T) {
	g := randomBipartite(t, 31, 80, 25, 500)
	var m Metrics
	if _, err := Enumerate(g, Options{Variant: BIT, Metrics: &m}); err != nil {
		t.Fatal(err)
	}
	if m.BitmapsCreated == 0 {
		t.Fatal("BIT created no bitmaps on a graph with small CGs")
	}
	var ada Metrics
	if _, err := Enumerate(g, Options{Variant: Ada, Metrics: &ada}); err != nil {
		t.Fatal(err)
	}
	if ada.BitmapsCreated == 0 {
		t.Fatal("Ada created no bitmaps")
	}
}

func TestMetricsCGHistogramPopulated(t *testing.T) {
	g := randomBipartite(t, 31, 80, 25, 500)
	var m Metrics
	if _, err := Enumerate(g, Options{Variant: Baseline, Metrics: &m}); err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := range m.CGHist {
		for j := range m.CGHist[i] {
			total += m.CGHist[i][j]
		}
	}
	// Every maximal node plus the root is observed.
	if total != m.NodesMaximal+1 {
		t.Fatalf("histogram total %d, want %d", total, m.NodesMaximal+1)
	}
}

func TestMetricsSmallLargeTimeSplit(t *testing.T) {
	g := randomBipartite(t, 31, 200, 40, 1200)
	var m Metrics
	if _, err := Enumerate(g, Options{Variant: BIT, Metrics: &m}); err != nil {
		t.Fatal(err)
	}
	if m.SmallNodeTime < 0 || m.LargeNodeTime < 0 {
		t.Fatalf("negative time split: small=%v large=%v", m.SmallNodeTime, m.LargeNodeTime)
	}
	if m.SmallNodeTime == 0 && m.BitmapsCreated > 0 {
		// Bitmap subtrees are timed as small; with bitmaps created the
		// small time cannot be exactly zero on a monotonic clock... but
		// very fast runs may round to 0; only require non-negative total.
		t.Logf("small-node time rounded to zero (%d bitmaps)", m.BitmapsCreated)
	}
}

func TestMetricsParallelMerge(t *testing.T) {
	g := randomBipartite(t, 31, 120, 30, 800)
	var serial, par Metrics
	if _, err := Enumerate(g, Options{Variant: Ada, Metrics: &serial}); err != nil {
		t.Fatal(err)
	}
	if _, err := Enumerate(g, Options{Variant: Ada, Threads: 4, Metrics: &par}); err != nil {
		t.Fatal(err)
	}
	// The set of maximal nodes is identical regardless of scheduling.
	if par.NodesMaximal != serial.NodesMaximal {
		t.Fatalf("parallel maximal nodes %d, serial %d", par.NodesMaximal, serial.NodesMaximal)
	}
}

func TestHistBucket(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 31: 4, 32: 5, 1 << 20: 20, 1 << 25: 20}
	for n, want := range cases {
		if got := histBucket(n); got != want {
			t.Fatalf("histBucket(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestHistBucketPowerBoundaries pins the bucket function at every power-of-
// two edge: 2^k−1 stays in bucket k−1, 2^k opens bucket k, and everything
// at or beyond 2^20 saturates into the top bucket.
func TestHistBucketPowerBoundaries(t *testing.T) {
	for k := 1; k <= 30; k++ {
		below, at := (1<<k)-1, 1<<k
		wantBelow := min(k-1, CGHistBuckets-1)
		wantAt := min(k, CGHistBuckets-1)
		if got := histBucket(below); got != wantBelow {
			t.Fatalf("histBucket(2^%d-1) = %d, want %d", k, got, wantBelow)
		}
		if got := histBucket(at); got != wantAt {
			t.Fatalf("histBucket(2^%d) = %d, want %d", k, got, wantAt)
		}
	}
}

// TestObserveNodeBoundaries drops boundary (|L|, |C|) pairs into the joint
// histogram and checks each lands in exactly the expected cell.
func TestObserveNodeBoundaries(t *testing.T) {
	cases := []struct{ lenL, lenC, wantI, wantJ int }{
		{0, 0, 0, 0},
		{1, 0, 0, 0},
		{1, 2, 0, 1},
		{2, 1, 1, 0},
		{63, 64, 5, 6},
		{64, 63, 6, 5},
		{(1 << 20) - 1, 1 << 20, 19, 20},
		{1 << 20, 1 << 22, 20, 20},
	}
	for _, c := range cases {
		var m Metrics
		m.observeNode(c.lenL, c.lenC)
		for i := range m.CGHist {
			for j := range m.CGHist[i] {
				want := int64(0)
				if i == c.wantI && j == c.wantJ {
					want = 1
				}
				if m.CGHist[i][j] != want {
					t.Fatalf("observeNode(%d, %d): cell [%d][%d] = %d, expected hit at [%d][%d]",
						c.lenL, c.lenC, i, j, m.CGHist[i][j], c.wantI, c.wantJ)
				}
			}
		}
	}
}

// randomMetrics fills a Metrics with deterministic pseudo-random counters,
// standing in for one parallel worker's gathered instrumentation.
func randomMetrics(rng *rand.Rand) *Metrics {
	m := &Metrics{
		NodesGenerated:    rng.Int63n(1000),
		NodesMaximal:      rng.Int63n(1000),
		NodesNonMaximal:   rng.Int63n(1000),
		NodesPruned:       rng.Int63n(1000),
		AccessesInsideCG:  rng.Int63n(1000),
		AccessesOutsideCG: rng.Int63n(1000),
		SetIntersections:  rng.Int63n(1000),
		SmallNodeTime:     time.Duration(rng.Int63n(1e9)),
		LargeNodeTime:     time.Duration(rng.Int63n(1e9)),
		BitmapsCreated:    rng.Int63n(1000),
		TasksSpawned:      rng.Int63n(1000),
		TasksStolen:       rng.Int63n(1000),
		TasksInlined:      rng.Int63n(1000),
		MaxQueueDepth:     rng.Int63n(64),
	}
	for i := 0; i < 40; i++ {
		m.CGHist[rng.Intn(CGHistBuckets)][rng.Intn(CGHistBuckets)] += rng.Int63n(50)
	}
	return m
}

// TestMergeOrderIndependent: merging per-worker metrics must be order-
// independent (commutative and associative), or parallel runs would report
// schedule-dependent instrumentation. Simulated by merging the same worker
// set in shuffled orders and in different groupings.
func TestMergeOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	workers := make([]*Metrics, 6)
	for i := range workers {
		workers[i] = randomMetrics(rng)
	}

	mergeAll := func(order []int) Metrics {
		var total Metrics
		for _, i := range order {
			total.merge(workers[i])
		}
		return total
	}

	base := mergeAll([]int{0, 1, 2, 3, 4, 5})
	for trial := 0; trial < 20; trial++ {
		order := rng.Perm(len(workers))
		if got := mergeAll(order); got != base {
			t.Fatalf("merge is order-dependent: order %v gave %+v, want %+v", order, got, base)
		}
	}

	// Associativity: ((a+b)+c) == (a+(b+c)) via pre-merged subgroups.
	var left, lgroup Metrics
	lgroup.merge(workers[0])
	lgroup.merge(workers[1])
	left.merge(&lgroup)
	left.merge(workers[2])
	var right, rgroup Metrics
	rgroup.merge(workers[1])
	rgroup.merge(workers[2])
	right.merge(workers[0])
	right.merge(&rgroup)
	if left != right {
		t.Fatalf("merge is not associative: %+v vs %+v", left, right)
	}
}

// Property: pruning never changes the enumerated count (testing/quick over
// random adjacency structures).
func TestQuickLNPruningPreservesCounts(t *testing.T) {
	f := func(rows [6][]uint8) bool {
		adj := make([][]int32, 6)
		for i, row := range rows {
			for _, x := range row {
				adj[i] = append(adj[i], int32(x%20))
			}
		}
		g, err := graph.FromAdjacency(20, adj)
		if err != nil {
			return false
		}
		a, err1 := Enumerate(g, Options{Variant: Baseline})
		b, err2 := Enumerate(g, Options{Variant: LN})
		return err1 == nil && err2 == nil && a.Count == b.Count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: τ is a pure performance knob — counts are τ-invariant.
func TestQuickTauInvariance(t *testing.T) {
	f := func(rows [5][]uint8, tauSeed uint8) bool {
		adj := make([][]int32, 5)
		for i, row := range rows {
			for _, x := range row {
				adj[i] = append(adj[i], int32(x%30))
			}
		}
		g, err := graph.FromAdjacency(30, adj)
		if err != nil {
			return false
		}
		tau := 1 + int(tauSeed)%140
		a, err1 := Enumerate(g, Options{Variant: Ada})
		b, err2 := Enumerate(g, Options{Variant: Ada, Tau: tau})
		return err1 == nil && err2 == nil && a.Count == b.Count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
