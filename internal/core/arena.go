package core

import "repro/internal/sched"

// detachedNode is a heap-owned enumeration-tree node handed between
// ParAdaMBE workers. Its visible slices alias only the node's own retained
// backing buffers (flat/hdrBuf), never the spawning engine's slab.
type detachedNode struct {
	L, R     []int32
	candIDs  []int32
	candNbrs [][]int32
	exclIDs  []int32
	exclNbrs [][]int32
	depth    int
	// root tags the node with the root V vertex (engine order) of the
	// subtree it belongs to; it rides along so spooled emissions and the
	// checkpoint frontier can attribute the task's output to its root.
	root int32
	// mem is the footprint charged to the run's memory gauge at spawn,
	// released when the task completes (or is discarded during a drain).
	mem int64
	// isRoot marks the seed task: the receiving worker runs the two-hop
	// root loop instead of searchLN.
	isRoot bool

	// Retained backing storage, reused across arena recycles: flat holds
	// every int32 payload (L, R, candIDs, exclIDs, then all neighborhood
	// lists back to back), hdrBuf the candNbrs+exclNbrs slice headers.
	flat   []int32
	hdrBuf [][]int32
}

// memBytes approximates the node's heap footprint for the run's memory
// gauge: int32 payloads plus slice headers and the struct itself. The
// charge is taken when the node is queued and released when its task
// completes, so the gauge tracks the live queued footprint (up to
// threads×capacity nodes) rather than cumulative spawn traffic.
func (n *detachedNode) memBytes() int64 {
	ints := len(n.L) + len(n.R) + len(n.candIDs) + len(n.exclIDs)
	for _, nb := range n.candNbrs {
		ints += len(nb)
	}
	for _, nb := range n.exclNbrs {
		ints += len(nb)
	}
	headers := len(n.candNbrs) + len(n.exclNbrs)
	return int64(ints)*4 + int64(headers)*24 + 96
}

// nodeArena is one worker's allocator for detached spawn state. The spawn
// deep-copy is ParAdaMBE's dominant allocation: before the arena, every
// detachNode call allocated seven objects (four id slices, two header
// slices, one flattened neighborhood buffer) that died as soon as the task
// ran. The arena recycles whole nodes through the sched task lifecycle
// instead — detach Gets a finished node off the worker's FreeList and
// copies into its retained buffers; recycle Puts the node back once runTask
// (and every completion defer: frontier report, gauge release) has
// finished with it. Steady state spawns allocate nothing.
//
// Owned by a single worker goroutine; never shared. Retained capacity is
// not charged to the run's memory gauge: it is bounded by the peak live
// detached footprint, which was charged (per node, while live) at its peak.
type nodeArena struct {
	free        sched.FreeList[detachedNode]
	bytesReused int64
}

// detach deep-copies node state out of the spawning engine's slab into an
// arena-owned node so another worker can own it. reused reports whether the
// node shell came off the free list (an arena hit).
func (a *nodeArena) detach(L, R, candIDs []int32, candNbrs [][]int32, exclIDs []int32, exclNbrs [][]int32) (n *detachedNode, reused bool) {
	n, reused = a.free.Get()
	if !reused {
		n = &detachedNode{}
	}

	ints := len(L) + len(R) + len(candIDs) + len(exclIDs)
	for _, nb := range candNbrs {
		ints += len(nb)
	}
	for _, nb := range exclNbrs {
		ints += len(nb)
	}
	if cap(n.flat) < ints {
		n.flat = make([]int32, ints)
	} else {
		n.flat = n.flat[:ints]
		if reused {
			a.bytesReused += int64(ints) * 4
		}
	}
	hdrs := len(candNbrs) + len(exclNbrs)
	if cap(n.hdrBuf) < hdrs {
		n.hdrBuf = make([][]int32, hdrs)
	} else {
		n.hdrBuf = n.hdrBuf[:hdrs]
	}

	// Carve the flat buffer in deterministic order. Full-capacity slices
	// are fine: consumers only read the lengths set here.
	buf := n.flat[:0]
	carve := func(src []int32) []int32 {
		start := len(buf)
		buf = append(buf, src...)
		return buf[start:len(buf):len(buf)]
	}
	n.L = carve(L)
	n.R = carve(R)
	n.candIDs = carve(candIDs)
	n.exclIDs = carve(exclIDs)
	n.candNbrs = n.hdrBuf[:len(candNbrs):len(candNbrs)]
	for i, nb := range candNbrs {
		n.candNbrs[i] = carve(nb)
	}
	n.exclNbrs = n.hdrBuf[len(candNbrs):hdrs:hdrs]
	for i, nb := range exclNbrs {
		n.exclNbrs[i] = carve(nb)
	}
	n.depth = 0
	n.root = 0
	n.mem = 0
	n.isRoot = false
	return n, reused
}

// recycle parks a finished node for reuse. Must only be called after every
// reference from the task's execution (runTask and its defers) is dead.
func (a *nodeArena) recycle(n *detachedNode) {
	a.free.Put(n)
}

// stats folds the arena's counters into a worker's metrics at merge time.
func (a *nodeArena) stats(m *Metrics) {
	hits, misses := a.free.Stats()
	m.ArenaSpawnHits += hits
	m.ArenaSpawnMisses += misses
	m.ArenaBytesReused += a.bytesReused
}
