package core

import (
	"testing"

	"repro/internal/graph"
)

// graphFromBytes decodes an arbitrary byte string into a small bipartite
// graph: the first two bytes size the sides (1-16 each), each following
// byte pair is an edge.
func graphFromBytes(data []byte) *graph.Bipartite {
	if len(data) < 2 {
		return nil
	}
	nu := 1 + int(data[0]%16)
	nv := 1 + int(data[1]%16)
	var edges []graph.Edge
	for i := 2; i+1 < len(data) && len(edges) < 512; i += 2 {
		edges = append(edges, graph.Edge{
			U: int32(int(data[i]) % nu),
			V: int32(int(data[i+1]) % nv),
		})
	}
	g, err := graph.FromEdges(nu, nv, edges)
	if err != nil {
		return nil
	}
	return g
}

// FuzzEnumerateAgreement drives every engine variant over arbitrary small
// graphs and checks exact agreement with the brute-force closure oracle —
// the strongest correctness property the package has, fuzz-amplified.
func FuzzEnumerateAgreement(f *testing.F) {
	f.Add([]byte{9, 4, 0, 0, 1, 0, 2, 0, 4, 0, 0, 1, 1, 1, 0, 2, 2, 2})
	f.Add([]byte{1, 1, 0, 0})
	f.Add([]byte{16, 16})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := graphFromBytes(data)
		if g == nil {
			return
		}
		want := BruteForceKeys(g)
		for _, o := range []Options{
			{Variant: Baseline},
			{Variant: LN},
			{Variant: BIT, Tau: 3},
			{Variant: Ada, Tau: 5},
			{Variant: Ada},
			{Variant: Ada, Threads: 2},
		} {
			got, res, err := CollectKeys(g, o)
			if err != nil {
				t.Fatalf("%v: %v", o.Variant, err)
			}
			if res.Count != int64(len(want)) {
				t.Fatalf("%v tau=%d threads=%d: count %d, want %d (|U|=%d |V|=%d |E|=%d)",
					o.Variant, o.Tau, o.Threads, res.Count, len(want), g.NU(), g.NV(), g.NumEdges())
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v: biclique sets differ at %d", o.Variant, i)
				}
			}
		}
	})
}
