package core

import (
	"testing"

	"repro/internal/datasets"
	"repro/internal/order"
)

func BenchmarkProfileAdaGH(b *testing.B) {
	s, _ := datasets.ByName("GH")
	g := order.Apply(s.Build(), order.DegreeAscending, 0)
	for i := 0; i < b.N; i++ {
		if _, err := Enumerate(g, Options{Variant: Ada}); err != nil {
			b.Fatal(err)
		}
	}
}
