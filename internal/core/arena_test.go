package core

import (
	"testing"

	"repro/internal/gen"
)

// TestArenaDetachRoundTrip: a detached node must be a faithful deep copy
// whose slices stay intact after the source buffers are clobbered, and a
// recycled shell must produce an equally faithful copy on reuse.
func TestArenaDetachRoundTrip(t *testing.T) {
	var a nodeArena
	L := []int32{1, 2, 3}
	R := []int32{4}
	cand := []int32{5, 6}
	candN := [][]int32{{1, 2}, {2, 3}}
	excl := []int32{7}
	exclN := [][]int32{{1}}

	check := func(n *detachedNode) {
		t.Helper()
		if len(n.L) != 3 || n.L[0] != 1 || n.L[2] != 3 {
			t.Fatalf("L corrupted: %v", n.L)
		}
		if len(n.R) != 1 || n.R[0] != 4 {
			t.Fatalf("R corrupted: %v", n.R)
		}
		if len(n.candIDs) != 2 || len(n.candNbrs) != 2 || len(n.candNbrs[1]) != 2 || n.candNbrs[1][1] != 3 {
			t.Fatalf("cand corrupted: %v %v", n.candIDs, n.candNbrs)
		}
		if len(n.exclIDs) != 1 || len(n.exclNbrs) != 1 || n.exclNbrs[0][0] != 1 {
			t.Fatalf("excl corrupted: %v %v", n.exclIDs, n.exclNbrs)
		}
	}

	n, reused := a.detach(L, R, cand, candN, excl, exclN)
	if reused {
		t.Fatal("first detach cannot be an arena hit")
	}
	// Clobber every source slice: the node must not alias them.
	for i := range L {
		L[i] = -1
	}
	candN[1][1] = -1
	exclN[0][0] = -1
	check(n)

	a.recycle(n)
	n2, reused := a.detach([]int32{1, 2, 3}, []int32{4}, []int32{5, 6}, [][]int32{{1, 2}, {2, 3}}, []int32{7}, [][]int32{{1}})
	if !reused {
		t.Fatal("detach after recycle must be an arena hit")
	}
	if n2 != n {
		t.Fatal("recycled shell not reused")
	}
	check(n2)

	// A larger detach must still be correct (forces buffer regrowth).
	a.recycle(n2)
	big := make([]int32, 500)
	for i := range big {
		big[i] = int32(i)
	}
	n3, _ := a.detach(big, R, nil, nil, nil, nil)
	if len(n3.L) != 500 || n3.L[499] != 499 {
		t.Fatalf("regrown detach corrupted: len %d", len(n3.L))
	}

	var m Metrics
	a.stats(&m)
	if m.ArenaSpawnHits != 2 || m.ArenaSpawnMisses != 1 {
		t.Fatalf("arena stats hits=%d misses=%d, want 2/1", m.ArenaSpawnHits, m.ArenaSpawnMisses)
	}
}

// TestArenaParallelRecycling runs the parallel engine on a graph busy
// enough to spawn and steal, asserts the enumeration matches the serial
// engine exactly, and that the arena actually recycled (hits > 0) — i.e.
// the steady state runs on reused nodes, not fresh allocations. Run under
// -race in CI, this is also the aliasing check for recycle-after-steal.
func TestArenaParallelRecycling(t *testing.T) {
	// Dense uniform: thousands of spawn offers, so every run sustains
	// enough spawning for workers to re-spawn after recycling.
	g := gen.Uniform(7, 500, 180, 14000)
	want, _, err := CollectKeys(g, Options{Variant: Ada})
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{4, 8} {
		// Hit counts depend on steal timing, so they are accumulated over
		// a few runs; each individual run still checks exact agreement
		// with the serial engine.
		var total Metrics
		for rep := 0; rep < 3; rep++ {
			var m Metrics
			got, res, err := CollectKeys(g, Options{Variant: Ada, Threads: threads, Metrics: &m})
			if err != nil {
				t.Fatalf("threads=%d: %v", threads, err)
			}
			if res.Count != int64(len(want)) || !keysEqual(got, want) {
				t.Fatalf("threads=%d: %d bicliques, want %d", threads, res.Count, len(want))
			}
			total.merge(&m)
		}
		if total.TasksSpawned == 0 {
			t.Fatalf("threads=%d: no tasks spawned; fixture too small to test the arena", threads)
		}
		if total.ArenaSpawnHits+total.ArenaSpawnMisses == 0 {
			t.Fatalf("threads=%d: arena never used", threads)
		}
		if total.ArenaSpawnHits == 0 {
			t.Fatalf("threads=%d: arena never recycled (misses=%d)", threads, total.ArenaSpawnMisses)
		}
		if total.ArenaBytesReused == 0 {
			t.Fatalf("threads=%d: arena hits but no bytes reused", threads)
		}
	}
}
