package core

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// BicliqueKey returns a canonical, order-independent string key for a
// biclique: both sides sorted ascending, "u,u,…|v,v,…". It is the
// cross-validation currency of the test suites: two enumerators agree iff
// their key sets are equal.
func BicliqueKey(L, R []int32) string {
	ls := append([]int32(nil), L...)
	rs := append([]int32(nil), R...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
	var b strings.Builder
	for i, u := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(u)))
	}
	b.WriteByte('|')
	for i, v := range rs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(v)))
	}
	return b.String()
}

// MaxBruteForceV bounds |V| for the brute-force oracle (2^|V| subsets).
const MaxBruteForceV = 22

// BruteForce enumerates every maximal biclique of g by exhaustive closure
// over subsets of V and delivers each one to emit (slices are reused; copy
// to retain). It is the oracle the differential harness and the test
// suites compare every engine against: O(2^|V| · |V| · Δ) time, valid
// only for |V| ≤ MaxBruteForceV. A biclique here has both sides
// non-empty, matching the enumeration engines' convention.
//
// Method: for each non-empty R ⊆ V compute Γ(R) = ⋂_{v∈R} N(v); the pair
// (Γ(R), R) is a maximal biclique iff Γ(R) ≠ ∅ and R is closed, i.e.
// R = {v : Γ(R) ⊆ N(v)}. Every maximal biclique arises from exactly one
// closed R, so no deduplication is needed.
func BruteForce(g *graph.Bipartite, emit Handler) {
	nv := g.NV()
	if nv > MaxBruteForceV {
		panic("core: BruteForce graph too large")
	}
	var rs []int32
	for rMask := uint32(1); rMask < uint32(1)<<nv; rMask++ {
		gamma := gammaOfMask(g, rMask)
		if len(gamma) == 0 {
			continue
		}
		// Closure: all v whose neighborhood contains Γ(R).
		var closure uint32
		for v := int32(0); v < int32(nv); v++ {
			if isSubset(gamma, g.NeighborsOfV(v)) {
				closure |= 1 << uint(v)
			}
		}
		if closure != rMask {
			continue
		}
		rs = rs[:0]
		for v := int32(0); v < int32(nv); v++ {
			if rMask&(1<<uint(v)) != 0 {
				rs = append(rs, v)
			}
		}
		emit(gamma, rs)
	}
}

// BruteForceKeys runs BruteForce and returns the sorted canonical keys of
// every maximal biclique.
func BruteForceKeys(g *graph.Bipartite) []string {
	var keys []string
	BruteForce(g, func(L, R []int32) {
		keys = append(keys, BicliqueKey(L, R))
	})
	sort.Strings(keys)
	return keys
}

func gammaOfMask(g *graph.Bipartite, rMask uint32) []int32 {
	var gamma []int32
	first := true
	for v := int32(0); rMask != 0; v, rMask = v+1, rMask>>1 {
		if rMask&1 == 0 {
			continue
		}
		nv := g.NeighborsOfV(v)
		if first {
			gamma = append([]int32(nil), nv...)
			first = false
			continue
		}
		n := intersectInto(gamma, gamma, nv)
		gamma = gamma[:n]
		if n == 0 {
			return nil
		}
	}
	return gamma
}

// CollectKeys runs Enumerate with a key-collecting handler and returns the
// sorted canonical keys plus the result. Intended for tests (it retains
// every biclique).
func CollectKeys(g *graph.Bipartite, opts Options) ([]string, Result, error) {
	var keys []string
	opts.OnBiclique = func(L, R []int32) {
		keys = append(keys, BicliqueKey(L, R))
	}
	res, err := Enumerate(g, opts)
	if err != nil {
		return nil, res, err
	}
	sort.Strings(keys)
	return keys, res, nil
}
