package core

import "repro/internal/obs"

// searchGlobal is Algorithm 1 from the paper: backtracking enumeration that
// performs every set intersection against the *original* adjacency lists
// and checks maximality by computing Γ(L') globally. It implements the
// Baseline variant; with Variant == BIT it additionally switches to the
// bitwise procedure at nodes with |L| ≤ τ and C ≠ ∅ (AdaMBE-BIT).
//
// L and cand are sorted ascending; R is in traversal order. All slices are
// owned by the caller and only read here.
func (e *engine) searchGlobal(L, R []int32, cand []int32, depth int) {
	if e.stop.Stopped() {
		return
	}
	if e.variant == BIT && len(L) <= e.tau && len(cand) > 0 {
		e.notePromotion()
		cg := e.buildBitCGGlobal(L, R, cand)
		reg := obs.TraceRegion("mbe/bit-subtree")
		e.searchBitRoot(cg, R)
		reg.End()
		return
	}

	g := e.g
	for i := 0; i < len(cand); i++ {
		if e.stop.Hit() {
			return
		}
		e.faultStep(SiteNode)
		vp := cand[i]
		mark := e.ids.Mark()

		// Node generation, line #4: L' ← L ∩ N(v') on the global graph.
		nvp := g.NeighborsOfV(vp)
		lq := e.ids.Alloc(min(len(L), len(nvp)))
		n := intersectInto(lq, L, nvp)
		e.ids.ShrinkLast(len(lq), n)
		lq = lq[:n]
		if e.collect {
			e.metrics.SetIntersections++
			e.metrics.AccessesInsideCG += int64(len(L) + n)
			e.metrics.AccessesOutsideCG += int64(len(nvp) - n)
		}
		if n == 0 { // only possible at the root (isolated-ish v')
			e.ids.Release(mark)
			continue
		}
		if e.skipChild != nil && e.skipChild(n) {
			e.ids.Release(mark)
			continue
		}

		// Lines #5-9: split remaining candidates into R' and C'.
		rq := e.ids.Alloc(len(R) + 1 + (len(cand) - i - 1))
		nr := copy(rq, R)
		rq[nr] = vp
		nr++
		cq := e.ids.Alloc(len(cand) - i - 1)
		nc := 0
		for j := i + 1; j < len(cand); j++ {
			vc := cand[j]
			nvc := g.NeighborsOfV(vc)
			m := intersectLen(lq, nvc)
			if e.collect {
				e.metrics.SetIntersections++
				e.metrics.AccessesInsideCG += int64(len(lq) + m)
				e.metrics.AccessesOutsideCG += int64(len(nvc) - m)
			}
			if m == len(lq) {
				rq[nr] = vc
				nr++
			} else if m > 0 {
				cq[nc] = vc
				nc++
			}
		}
		rq, cq = rq[:nr], cq[:nc]

		// Line #10: node check R' = Γ(L'). Every member of R' is fully
		// connected to L' by construction, so R' ⊆ Γ(L') and it suffices
		// to compare sizes. Γ(L') is computed from the global adjacency
		// of L's minimum-degree vertex — the "outside-CG" accesses the
		// paper's Fig. 5 measures.
		e.probe.NodeLN()
		if e.collect {
			e.metrics.NodesGenerated++
		}
		if e.gammaSize(lq) == nr {
			if e.collect {
				e.metrics.NodesMaximal++
				e.metrics.observeNode(len(lq), nc)
			}
			e.emit(lq, rq)
			if e.skipSubtree == nil || !e.skipSubtree(len(lq), nr, nc) {
				t0, timed := e.enterSmallTimer(len(lq))
				e.searchGlobal(lq, rq, cq, depth+1)
				e.exitSmallTimer(t0, timed)
			}
		} else if e.collect {
			e.metrics.NodesNonMaximal++
		}
		e.ids.Release(mark)
		// Line #13: C ← C \ {v'} is implicit: later iterations start at i+1.
	}
}

// gammaSize returns |Γ(L)| for non-empty L, scanning the neighbor list of
// L's minimum-degree vertex against the global adjacency.
func (e *engine) gammaSize(L []int32) int {
	g := e.g
	u0 := L[0]
	for _, u := range L[1:] {
		if g.DegU(u) < g.DegU(u0) {
			u0 = u
		}
	}
	cnt := 0
	for _, v := range g.NeighborsOfU(u0) {
		nv := g.NeighborsOfV(v)
		m := intersectLen(L, nv)
		if e.collect {
			e.metrics.SetIntersections++
			e.metrics.AccessesInsideCG += int64(len(L) + m)
			e.metrics.AccessesOutsideCG += int64(len(nv) - m)
		}
		if m == len(L) {
			cnt++
		}
	}
	return cnt
}
