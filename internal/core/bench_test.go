package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/tle"
)

func benchGraph(b *testing.B) *graph.Bipartite {
	b.Helper()
	g := gen.Affiliation(42, gen.AffiliationConfig{
		NU: 2000, NV: 700, Communities: 280,
		MeanU: 10, MeanV: 5, Density: 0.9, NoiseEdges: 1500,
	})
	return order.Apply(g.Orient(), order.DegreeAscending, 0)
}

// BenchmarkVariant ablates the paper's two techniques on one workload:
// Baseline (neither), LN only, BIT only, and full AdaMBE.
func BenchmarkVariant(b *testing.B) {
	g := benchGraph(b)
	for _, v := range []Variant{Baseline, LN, BIT, Ada} {
		b.Run(v.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Enumerate(g, Options{Variant: v})
				if err != nil || res.Count == 0 {
					b.Fatalf("res=%+v err=%v", res, err)
				}
			}
		})
	}
}

// BenchmarkTauAblation measures the τ-dependence of the bitmap technique
// at micro scale (the full-scale version is harness Fig11).
func BenchmarkTauAblation(b *testing.B) {
	g := benchGraph(b)
	for _, tau := range []int{8, 64, 512} {
		b.Run(map[int]string{8: "tau8", 64: "tau64", 512: "tau512"}[tau], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Enumerate(g, Options{Variant: Ada, Tau: tau}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBitmapCreation isolates the cost of materializing bitmap CGs
// from local-neighborhood data (Algorithm 2 line 5).
func BenchmarkBitmapCreation(b *testing.B) {
	g := benchGraph(b)
	e := newEngine(g, Options{Variant: Ada}, &tle.Shared{}, 0)
	// A synthetic node: 48 L vertices, 200 candidates with ~16 local nbrs.
	L := make([]int32, 48)
	for i := range L {
		L[i] = int32(i * 3)
	}
	candIDs := make([]int32, 200)
	candNbrs := make([][]int32, 200)
	for i := range candIDs {
		candIDs[i] = int32(i)
		nb := make([]int32, 16)
		for j := range nb {
			nb[j] = L[(i+j*2)%len(L)]
		}
		// keep sorted subset semantics
		for j := 1; j < len(nb); j++ {
			for k := j; k > 0 && nb[k-1] > nb[k]; k-- {
				nb[k-1], nb[k] = nb[k], nb[k-1]
			}
		}
		dedup := nb[:0]
		for j, x := range nb {
			if j == 0 || x != dedup[len(dedup)-1] {
				dedup = append(dedup, x)
			}
		}
		candNbrs[i] = dedup
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cg := e.buildBitCGFromLN(L, candIDs, candNbrs, nil, nil)
		if cg.nCand != 200 {
			b.Fatal("bad CG")
		}
	}
}

// BenchmarkParallelOverhead compares serial AdaMBE with ParAdaMBE at one
// worker — the pure scheduling/detach overhead of the task machinery.
func BenchmarkParallelOverhead(b *testing.B) {
	g := benchGraph(b)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Enumerate(g, Options{Variant: Ada}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("par2workers", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Enumerate(g, Options{Variant: Ada, Threads: 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSkipHooks measures the cost of enabling (never-firing) search
// hooks — the price every finder search pays on top of raw enumeration.
func BenchmarkSkipHooks(b *testing.B) {
	g := benchGraph(b)
	never2 := func(int) bool { return false }
	never3 := func(int, int, int) bool { return false }
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Enumerate(g, Options{Variant: Ada}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Enumerate(g, Options{Variant: Ada, SkipChild: never2, SkipSubtree: never3}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
