package core

import (
	"testing"

	"repro/internal/graph"
)

// TestPaperExample2PruneFires verifies Example 2 of the paper on G0: when
// node w (entered via v0) generates its child via v2, candidate v3 has
// identical local neighborhoods at both nodes (|N_w(v3)| = |N_y(v3)| = 4),
// so the LN rule prunes the node that v3 would generate at w (node z of
// Figure 2, a non-maximal duplicate).
func TestPaperExample2PruneFires(t *testing.T) {
	g := graph.PaperExample()
	var ln Metrics
	if _, err := Enumerate(g, Options{Variant: LN, Metrics: &ln}); err != nil {
		t.Fatal(err)
	}
	if ln.NodesPruned == 0 {
		t.Fatal("LN pruning never fired on the paper's example graph")
	}
	// The prune must reduce generated non-maximal nodes vs Baseline.
	var base Metrics
	if _, err := Enumerate(g, Options{Variant: Baseline, Metrics: &base}); err != nil {
		t.Fatal(err)
	}
	if ln.NodesGenerated >= base.NodesGenerated {
		t.Fatalf("LN generated %d nodes, Baseline %d — pruning ineffective",
			ln.NodesGenerated, base.NodesGenerated)
	}
}

// TestPaperExample1NodeW verifies Example 1: the node entered via v0 is
// the maximal biclique ({u0,u1,u2,u4,u5,u6,u7}, {v0}).
func TestPaperExample1NodeW(t *testing.T) {
	g := graph.PaperExample()
	wantKey := BicliqueKey([]int32{0, 1, 2, 4, 5, 6, 7}, []int32{0})
	keys, _, err := CollectKeys(g, Options{Variant: Ada})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if k == wantKey {
			return
		}
	}
	t.Fatalf("node w's biclique %q not enumerated; got %v", wantKey, keys)
}

// TestPaperExample3BitmapThreshold verifies Example 3's τ semantics: with
// τ = 4 on G0 bitmaps are created for small-|L| nodes, and nodes with
// C = ∅ never create one (the example's node s).
func TestPaperExample3BitmapThreshold(t *testing.T) {
	g := graph.PaperExample()
	var m Metrics
	if _, err := Enumerate(g, Options{Variant: Ada, Tau: 4, Metrics: &m}); err != nil {
		t.Fatal(err)
	}
	if m.BitmapsCreated == 0 {
		t.Fatal("τ=4 never created a bitmap on G0")
	}
	// With τ = 1 no |L| ≤ 1 node has candidates on G0's interesting paths,
	// so strictly fewer (possibly zero) bitmaps are created than at τ = 4.
	var m1 Metrics
	if _, err := Enumerate(g, Options{Variant: Ada, Tau: 1, Metrics: &m1}); err != nil {
		t.Fatal(err)
	}
	if m1.BitmapsCreated > m.BitmapsCreated {
		t.Fatalf("τ=1 created %d bitmaps > τ=4's %d", m1.BitmapsCreated, m.BitmapsCreated)
	}
}
