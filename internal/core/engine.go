package core

import (
	"slices"
	"time"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/tle"
	"repro/internal/vset"
)

// Fault-injection site names (Options.FaultHook); see internal/faultinject.
const (
	// SiteRoot fires once per root candidate, in every root loop.
	SiteRoot = "core/root"
	// SiteNode fires once per searchLN child-node expansion.
	SiteNode = "core/node"
	// SiteBitmap fires once per bitmap-CG build.
	SiteBitmap = "core/bitmap"
	// SiteSpawn fires once per subtree detached to the parallel queue.
	SiteSpawn = "core/spawn"
)

// engine holds all per-run (or per-worker, in the parallel case) state for
// one enumeration. It is not safe for concurrent use; ParAdaMBE gives each
// worker its own engine and merges results.
type engine struct {
	g       *graph.Bipartite
	variant Variant
	tau     int
	handler Handler
	stop    tle.Stopper
	hook    func(site string) error // Options.FaultHook

	count int64

	// Durable-emission state (Options.Sink / Frontier / StartRoot; all
	// zero-valued and branch-free on ordinary runs). wid is this engine's
	// worker id (the sink routing key); curRoot is the root vertex of the
	// subtree currently being enumerated — set by the root loops per
	// iteration and by the parallel worker per task from the task's tag.
	wid       int
	sink      Sink
	frontier  FrontierObserver
	curRoot   int32
	startRoot int32
	endRoot   int32 // exclusive root limit; 0 means |V|

	collect bool
	metrics Metrics
	inSmall bool // currently timing a |L| ≤ τ subtree (Fig. 10d)
	padBits bool // Options.PadBitmaps

	// probe is this worker's live-counter sink (Options.Obs); nil when
	// observability is off — every probe method no-ops on nil.
	probe *obs.WorkerProbe

	ids  slab[int32]   // vertex-id and offset scratch
	hdrs slab[[]int32] // slice-header scratch for local-neighborhood lists

	// Epoch-stamped scratch maps (see stamp.go semantics below): value is
	// valid only when the matching mark equals the current epoch.
	epoch int32
	uMark []int32 // per-U stamp
	uVal  []int32 // position of u within the current bitmap's L*
	vMark []int32 // per-V stamp
	vVal  []int32 // CG-local index of v within the current bitmap

	// spawn, when non-nil, offers a generated maximal node to the parallel
	// scheduler; a true return means the subtree was handed off and the
	// caller must not recurse. The slices are slab-backed: the scheduler
	// must detach (deep-copy) them before returning true. depth is the
	// enumeration-tree depth of the offered node.
	spawn func(L, R, candIDs []int32, candNbrs [][]int32, exclIDs []int32, exclNbrs [][]int32, depth int) bool

	// allU caches [0, NU) for the root node.
	allU []int32

	// cg is the engine's single pooled bitmap CG (bitmap subtrees never
	// nest; see bitCG).
	cg bitCG

	// rels is the reusable candidate-classification buffer of the batched
	// multi-word bitwise kernels (see relScratch).
	rels []bitset.Rel

	// Optional search-pruning hooks (Options.SkipChild / SkipSubtree).
	skipChild   func(lenL int) bool
	skipSubtree func(lenL, lenR, lenC int) bool
}

// newEngine builds one enumeration engine (the whole run when serial, one
// worker when parallel). shared carries the run's stop state and memory
// gauge; every worker of a run must receive the same *tle.Shared. wid is
// the worker index used to claim a live-counter probe from Options.Obs
// (serial runs are worker 0).
func newEngine(g *graph.Bipartite, opts Options, shared *tle.Shared, wid int) *engine {
	e := &engine{
		g:       g,
		variant: opts.Variant,
		tau:     opts.tau(),
		handler: opts.OnBiclique,
		stop:    tle.NewStopper(shared, opts.stopConfig()),
		hook:    opts.FaultHook,
		collect: opts.Metrics != nil,
		probe:   opts.Obs.Worker(wid),

		wid:       wid,
		sink:      opts.Sink,
		frontier:  opts.Frontier,
		startRoot: opts.StartRoot,
		endRoot:   opts.EndRoot,
	}
	e.skipChild = opts.SkipChild
	e.skipSubtree = opts.SkipSubtree
	e.padBits = opts.PadBitmaps
	e.ids.OnGrow = e.chargeMem
	e.hdrs.OnGrow = e.chargeMem
	e.cg.charge = e.chargeMem
	e.uMark = make([]int32, g.NU())
	e.uVal = make([]int32, g.NU())
	e.vMark = make([]int32, g.NV())
	e.vVal = make([]int32, g.NV())
	for i := range e.uMark {
		e.uMark[i] = -1
	}
	for i := range e.vMark {
		e.vMark[i] = -1
	}
	e.allU = make([]int32, g.NU())
	for i := range e.allU {
		e.allU[i] = int32(i)
	}
	// Per-worker stamp tables and the root candidate list: 4 bytes each,
	// three |U|-sized and two |V|-sized arrays.
	e.chargeMem(int64(3*g.NU()+2*g.NV()) * 4)
	return e
}

// chargeMem accounts engine-side allocation growth against the run's soft
// memory budget.
func (e *engine) chargeMem(bytes int64) { e.stop.AddMem(bytes) }

// faultStep runs the test-only fault hook at an instrumentation site. An
// injected allocation failure degrades the worker exactly like an
// exhausted memory budget; injected panics propagate into the engine's
// panic-isolation path.
func (e *engine) faultStep(site string) {
	if e.hook == nil {
		return
	}
	if err := e.hook(site); err != nil {
		e.stop.Fail(tle.MemoryExceeded)
	}
}

// run executes the configured variant from the root node (U, ∅, V).
func (e *engine) run() {
	start := time.Now()
	switch e.variant {
	case Baseline, BIT:
		e.runGlobalRoot()
	case LN, Ada:
		e.runLNRoot()
	}
	if e.collect {
		e.metrics.LargeNodeTime = time.Since(start) - e.metrics.SmallNodeTime
	}
}

// rootScratch holds the reusable two-hop gathering buffers used by the
// root loops. Processing root children by scanning all |V| candidates per
// child costs O(|V|²) set intersections; instead the candidate suffix and
// excluded prefix relevant to a root child v' are gathered from v's two-hop
// neighborhood ⋃_{u∈N(v')} N(u), the standard root optimization in MBE
// implementations. It is applied identically to every engine (including
// Baseline and the competitor reimplementations), so no algorithm
// comparison is distorted.
type rootScratch struct {
	suffix []int32 // two-hop vertices with id > v' (future candidates)
	prefix []int32 // two-hop vertices with id < v' (already traversed)
}

// gatherTwoHop fills rs with the distinct two-hop neighbors of vp, split
// around vp, using the engine's epoch stamps. skip marks vertices to omit
// entirely (pruned root candidates); it may be nil. The suffix is returned
// sorted ascending so candidate order matches the sequential semantics.
func (e *engine) gatherTwoHop(vp int32, lq []int32, skip []bool, rs *rootScratch) {
	epoch := e.stampEpoch()
	rs.suffix = rs.suffix[:0]
	rs.prefix = rs.prefix[:0]
	for _, u := range lq {
		for _, w := range e.g.NeighborsOfU(u) {
			if w == vp || e.vMark[w] == epoch {
				continue
			}
			e.vMark[w] = epoch
			if skip != nil && skip[w] {
				continue
			}
			if w > vp {
				rs.suffix = append(rs.suffix, w)
			} else {
				rs.prefix = append(rs.prefix, w)
			}
		}
	}
	slices.Sort(rs.suffix)
}

// rootLimit resolves the engine's exclusive root bound: EndRoot when a
// range was requested, |V| otherwise.
func (e *engine) rootLimit(nv int) int32 {
	if e.endRoot > 0 {
		return e.endRoot
	}
	return int32(nv)
}

// runGlobalRoot runs the root loop of Algorithm 1 (Baseline / AdaMBE-BIT):
// for every v' ∈ V (ascending), generate the first-level node from v's
// two-hop neighborhood and recurse with searchGlobal.
func (e *engine) runGlobalRoot() {
	g := e.g
	nv := g.NV()
	if e.collect {
		e.metrics.observeNode(len(e.allU), nv)
	}
	var rs rootScratch
	for vp, limit := e.startRoot, e.rootLimit(nv); vp < limit; vp++ {
		e.probe.RootAdvance(int64(vp))
		if g.DegV(vp) == 0 {
			e.rootDone(vp)
			continue
		}
		if e.stop.Hit() {
			return
		}
		e.curRoot = vp
		e.faultStep(SiteRoot)
		lq := g.NeighborsOfV(vp) // L' = U ∩ N(v')
		if e.skipChild != nil && e.skipChild(len(lq)) {
			e.rootDone(vp)
			continue
		}
		e.gatherTwoHop(vp, lq, nil, &rs)

		mark := e.ids.Mark()
		rq := e.ids.Alloc(1 + len(rs.suffix))
		rq[0] = vp
		nr := 1
		cq := e.ids.Alloc(len(rs.suffix))
		nc := 0
		for _, vc := range rs.suffix {
			nvc := g.NeighborsOfV(vc)
			m := intersectLen(lq, nvc)
			if e.collect {
				e.metrics.SetIntersections++
				e.metrics.AccessesInsideCG += int64(len(lq) + m)
				e.metrics.AccessesOutsideCG += int64(len(nvc) - m)
			}
			if m == len(lq) {
				rq[nr] = vc
				nr++
			} else { // two-hop membership guarantees m > 0
				cq[nc] = vc
				nc++
			}
		}
		e.probe.NodeLN()
		if e.collect {
			e.metrics.NodesGenerated++
		}
		if e.gammaSize(lq) == nr {
			if e.collect {
				e.metrics.NodesMaximal++
				e.metrics.observeNode(len(lq), nc)
			}
			e.emit(lq, rq[:nr])
			if e.skipSubtree == nil || !e.skipSubtree(len(lq), nr, nc) {
				t0, timed := e.enterSmallTimer(len(lq))
				e.searchGlobal(lq, rq[:nr], cq[:nc], 1)
				e.exitSmallTimer(t0, timed)
			}
		} else if e.collect {
			e.metrics.NodesNonMaximal++
		}
		e.ids.Release(mark)
		// A stop observed mid-subtree means vp's emission is incomplete:
		// leave it unreported so the checkpoint watermark stays below it
		// and a resume re-enumerates the whole root (rootDone contract).
		if e.stop.Stopped() {
			return
		}
		e.rootDone(vp)
	}
}

// runLNRoot runs the root loop of the LN engines: children are generated
// from two-hop neighborhoods, their local-neighborhood caches are
// materialized, and the LN pruning rule applies across root candidates.
func (e *engine) runLNRoot() {
	g := e.g
	nv := g.NV()
	if e.collect {
		e.metrics.observeNode(len(e.allU), nv)
	}
	pruned := make([]bool, nv)
	e.chargeMem(int64(nv))
	var rs rootScratch
	for vp, limit := e.startRoot, e.rootLimit(nv); vp < limit; vp++ {
		e.probe.RootAdvance(int64(vp))
		if g.DegV(vp) == 0 || pruned[vp] {
			e.rootDone(vp)
			continue
		}
		if e.stop.Hit() {
			return
		}
		e.curRoot = vp
		e.faultStep(SiteRoot)
		lq := g.NeighborsOfV(vp)
		if e.skipChild != nil && e.skipChild(len(lq)) {
			e.rootDone(vp)
			continue
		}
		e.gatherTwoHop(vp, lq, pruned, &rs)
		ep := e.stampL(lq)

		idMark := e.ids.Mark()
		hdrMark := e.hdrs.Mark()
		rq := e.ids.Alloc(1 + len(rs.suffix))
		rq[0] = vp
		nr := 1
		cqIDs := e.ids.Alloc(len(rs.suffix))
		cqNbrs := e.hdrs.Alloc(len(rs.suffix))
		nc := 0
		for _, vc := range rs.suffix {
			nb := g.NeighborsOfV(vc) // root local neighborhood = N(v_c)
			buf := e.ids.Alloc(min(len(lq), len(nb)))
			m := e.localIntersect(buf, lq, nb, ep)
			e.ids.ShrinkLast(len(buf), m)
			if e.collect {
				e.metrics.SetIntersections++
				e.metrics.AccessesInsideCG += int64(len(lq) + len(nb))
			}
			if m == len(nb) {
				pruned[vc] = true
				if e.collect {
					e.metrics.NodesPruned++
				}
			}
			switch {
			case m == len(lq):
				rq[nr] = vc
				nr++
				e.ids.ShrinkLast(m, 0)
			default: // m > 0 by two-hop membership
				cqIDs[nc] = vc
				cqNbrs[nc] = buf[:m]
				nc++
			}
		}

		maximal := true
		exIDs := e.ids.Alloc(len(rs.prefix))
		exNbrs := e.hdrs.Alloc(len(rs.prefix))
		nx := 0
		for _, x := range rs.prefix {
			nb := g.NeighborsOfV(x)
			buf := e.ids.Alloc(min(len(lq), len(nb)))
			m := e.localIntersect(buf, lq, nb, ep)
			e.ids.ShrinkLast(len(buf), m)
			if e.collect {
				e.metrics.SetIntersections++
				e.metrics.AccessesInsideCG += int64(len(lq) + len(nb))
			}
			if m == len(lq) {
				maximal = false
				break
			}
			if m > 0 {
				exIDs[nx] = x
				exNbrs[nx] = buf[:m]
				nx++
			}
		}

		e.probe.NodeLN()
		if e.collect {
			e.metrics.NodesGenerated++
		}
		if maximal {
			if e.collect {
				e.metrics.NodesMaximal++
				e.metrics.observeNode(len(lq), nc)
			}
			e.emit(lq, rq[:nr])
			if nc > 0 && (e.skipSubtree == nil || !e.skipSubtree(len(lq), nr, nc)) {
				if e.spawn != nil &&
					e.spawn(lq, rq[:nr], cqIDs[:nc], cqNbrs[:nc], exIDs[:nx], exNbrs[:nx], 1) {
					// Subtree handed to the parallel scheduler.
				} else {
					t0, timed := e.enterSmallTimer(len(lq))
					e.searchLN(lq, rq[:nr], cqIDs[:nc], cqNbrs[:nc], exIDs[:nx], exNbrs[:nx], 1)
					e.exitSmallTimer(t0, timed)
				}
			}
		} else if e.collect {
			e.metrics.NodesNonMaximal++
		}
		e.ids.Release(idMark)
		e.hdrs.Release(hdrMark)
		// Mirror of runGlobalRoot: never report a stop-interrupted root as
		// inline-done — its durable output may be partial, and the resume
		// protocol only re-enumerates roots at or above the watermark.
		if e.stop.Stopped() {
			return
		}
		e.rootDone(vp)
	}
}

// emit reports one maximal biclique.
func (e *engine) emit(L, R []int32) {
	e.count++
	e.probe.Biclique()
	if e.handler != nil {
		e.handler(L, R)
	}
	if e.sink != nil {
		e.sink.Emit(e.wid, e.curRoot, L, R)
	}
}

// rootDone reports that root vp's inline pass is finished — every path
// that advances the root loop past vp (including degree-0, pruned, and
// skip-filter shortcuts) must land here, because the frontier watermark
// treats an unreported root as still in flight. Stop paths return
// without reporting: an interrupted root stays below the watermark.
func (e *engine) rootDone(vp int32) {
	if e.frontier != nil {
		e.frontier.RootInlineDone(vp)
	}
}

// stampL marks every member of lq in the U-side stamp map under a fresh
// epoch, enabling O(1) membership tests for the node-generation loops.
func (e *engine) stampL(lq []int32) int32 {
	ep := e.stampEpoch()
	for _, u := range lq {
		e.uMark[u] = ep
	}
	return ep
}

// localIntersect writes lq ∩ nb into dst and returns the count, choosing
// the cheapest kernel: galloping binary search when lq is much shorter
// than nb, otherwise an O(|nb|) stamped-membership scan (ep must come from
// a prior stampL(lq)). Results are sorted because nb (and lq) are.
func (e *engine) localIntersect(dst, lq, nb []int32, ep int32) int {
	if len(lq)*gallopFactor <= len(nb) {
		return vset.IntersectGallop(dst, lq, nb)
	}
	n := 0
	for _, u := range nb {
		if e.uMark[u] == ep {
			dst[n] = u
			n++
		}
	}
	return n
}

// stampEpoch advances the stamp epoch shared by the u/v scratch maps.
func (e *engine) stampEpoch() int32 {
	e.epoch++
	if e.epoch < 0 { // wrapped after 2^31 bitmaps; reset marks
		for i := range e.uMark {
			e.uMark[i] = -1
		}
		for i := range e.vMark {
			e.vMark[i] = -1
		}
		e.epoch = 0
	}
	return e.epoch
}

// enterSmallTimer starts the Fig. 10d small-subtree timer when crossing the
// τ boundary; it returns a zero time when no timing should happen.
func (e *engine) enterSmallTimer(lenL int) (time.Time, bool) {
	if !e.collect || e.inSmall || lenL > e.tau {
		return time.Time{}, false
	}
	e.inSmall = true
	return time.Now(), true
}

func (e *engine) exitSmallTimer(t0 time.Time, started bool) {
	if started {
		e.metrics.SmallNodeTime += time.Since(t0)
		e.inSmall = false
	}
}
