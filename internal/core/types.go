// Package core implements the paper's maximal biclique enumeration (MBE)
// algorithms: the backtracking Baseline (Algorithm 1), the two AdaMBE
// techniques — LN (local-neighborhood computational subgraphs, §III-A) and
// BIT (bitmap representation of small computational subgraphs, §III-B) —
// their integration AdaMBE (Algorithm 2), and the parallel ParAdaMBE.
//
// All engines operate on a graph whose V side has already been permuted
// into the desired processing order (see internal/order); candidates are
// always consumed in ascending V id.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/tle"
)

// Variant selects which enumeration algorithm runs.
type Variant int

const (
	// Baseline is Algorithm 1: backtracking on the original adjacency
	// lists, global Γ(L') maximality checks, no LN, no BIT. This is the
	// "Baseline" of the paper's breakdown analysis (§IV-C).
	Baseline Variant = iota
	// LN enables only the local-neighborhood technique (AdaMBE-LN).
	LN
	// BIT enables only the bitmap technique (AdaMBE-BIT): Algorithm 1 for
	// large nodes, the bitwise procedure once |L| ≤ τ and C ≠ ∅.
	BIT
	// Ada is full AdaMBE (Algorithm 2): LN for large nodes, BIT below τ.
	Ada
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case Baseline:
		return "Baseline"
	case LN:
		return "AdaMBE-LN"
	case BIT:
		return "AdaMBE-BIT"
	case Ada:
		return "AdaMBE"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Variants lists every serial variant in ablation order. The differential
// harness iterates this to cover the whole AdaMBE family.
func Variants() []Variant { return []Variant{Baseline, LN, BIT, Ada} }

// DefaultTau is the paper's default bitmap threshold τ (§III-B: one 64-bit
// word per set intersection).
const DefaultTau = 64

// MaxTau bounds configurable τ; masks are ⌈τ/64⌉ words.
const MaxTau = 4096

// Sink receives every maximal biclique on the durable emission path,
// tagged with the worker that produced it and the root V vertex (in the
// engine's processing order) whose enumeration subtree it belongs to.
// The root tag is what makes checkpoint/resume exact: root subtrees
// partition the output (each maximal biclique is emitted exactly once,
// under the minimal vertex of its R side), so a resume can discard the
// partial output of unfinished subtrees by root and re-enumerate them
// whole. Emit is called concurrently from parallel workers regardless
// of UnorderedEmit — a Sink must be safe for concurrent use by distinct
// worker ids (calls for one worker are sequential). Slices are reused;
// copy to retain. See internal/spool for the canonical implementation.
type Sink interface {
	Emit(worker int, root int32, L, R []int32)
}

// FrontierObserver tracks root-subtree completion for checkpointing.
// The engine guarantees: RootInlineDone(r) fires when the root loop
// finishes root r's inline pass (ascending order, exactly once per root
// at or above StartRoot, on every skip path too); TaskSpawned(r) fires
// BEFORE a subtree task tagged r enters the scheduler; each spawned
// task fires exactly one of TaskDone (subtree fully enumerated) or
// TaskDiscarded (the run is stopping and the subtree is incomplete).
// Implementations must be safe for concurrent use. See internal/ckpt.
type FrontierObserver interface {
	RootInlineDone(root int32)
	TaskSpawned(root int32)
	TaskDone(root int32)
	TaskDiscarded(root int32)
}

// Handler receives each maximal biclique (L ⊆ U, R ⊆ V). The slices are
// reused by the engine and must be copied if retained. By default handler
// invocations are serialized, even under the parallel engine (each worker
// batches its bicliques and delivers them through a short critical
// section); with Options.UnorderedEmit the parallel engine invokes the
// handler concurrently from multiple goroutines and the handler must be
// safe for concurrent use.
type Handler func(L, R []int32)

// Options configures an enumeration run.
type Options struct {
	// Variant selects the algorithm; default Baseline.
	Variant Variant
	// Tau is the bitmap threshold τ; 0 means DefaultTau. Only meaningful
	// for BIT and Ada.
	Tau int
	// Threads > 1 runs the parallel engine (ParAdaMBE for Ada, a parallel
	// Baseline otherwise is not provided — parallel runs require Ada).
	Threads int
	// OnBiclique, if non-nil, is called for every maximal biclique.
	OnBiclique Handler
	// UnorderedEmit opts the parallel engine into unordered, concurrent
	// handler delivery: each worker calls OnBiclique directly instead of
	// batching into per-worker emission shards flushed under a shared
	// lock. This removes every copy and lock from the emission path, but
	// the handler must be safe for concurrent calls. Every maximal
	// biclique is still delivered exactly once. Serial runs ignore it.
	UnorderedEmit bool
	// Deadline, if non-zero, makes the run stop (reporting partial counts
	// and Result.StopReason == StopDeadline) once the deadline passes.
	// This implements the paper's 48-hour TLE protocol at laptop scale
	// (Fig. 9b).
	Deadline time.Time
	// Context, if non-nil, stops the run when it is canceled: the run
	// returns partial monotone counts with StopReason == StopCanceled
	// within one amortized check quantum (tle.CheckEvery nodes).
	Context context.Context
	// MaxMemoryBytes, if positive, is a soft budget on engine-tracked
	// memory — slab scratch, bitmap-CG storage, detached parallel nodes
	// and per-worker stamp tables. When the run-wide gauge exceeds the
	// budget, the run degrades like a deadline stop: partial counts are
	// returned with StopReason == StopMemoryBudget. Accounting is
	// engine-side and approximate; it bounds the dominant, dataset-driven
	// allocations, not every byte of Go runtime overhead.
	MaxMemoryBytes int64
	// FaultHook, if non-nil, is invoked at engine instrumentation sites
	// (the Site* constants). A returned error simulates an allocation
	// failure: the worker degrades exactly as if the memory budget were
	// exhausted. Panics from the hook exercise the panic-isolation path.
	// Test-only; see internal/faultinject. Must be safe for concurrent
	// calls when Threads > 1.
	FaultHook func(site string) error
	// Metrics, if non-nil, gathers the instrumentation behind Figures 4,
	// 5 and 10 (CG-size histogram, inside/outside-CG vertex accesses,
	// non-maximal node counts, small/large-node time split).
	Metrics *Metrics
	// Obs, if non-nil, attaches the live observability recorder: per-worker
	// atomic counters updated on the hot paths, snapshottable mid-run by
	// the progress sampler and the /debug endpoint. Unlike Metrics (merged
	// once at the end), Obs is readable while the run is in flight. Nil
	// costs one predictable branch per probe site.
	Obs *obs.Recorder

	// Sink, if non-nil, additionally receives every maximal biclique with
	// its worker id and root tag (see the Sink type). Delivery order
	// matches OnBiclique's per-worker order but is unordered across
	// workers, like UnorderedEmit.
	Sink Sink
	// Frontier, if non-nil, observes root-subtree completion (see the
	// FrontierObserver type); internal/ckpt derives the checkpoint
	// watermark from it.
	Frontier FrontierObserver
	// StartRoot makes the root loops begin at this root vertex instead of
	// 0, skipping every earlier root subtree entirely. A resumed run sets
	// it to the checkpoint watermark: roots below it are already durable.
	// Root-side pruning state from the skipped prefix is not replayed —
	// that is sound (formerly-pruned roots re-enumerate to nothing but
	// non-maximal nodes; see docs/DURABILITY.md) but means a resumed run
	// may expand more nodes than the original would have.
	StartRoot int32
	// EndRoot, when positive, makes the root loops stop before this root
	// vertex: only the subtrees of roots in [StartRoot, EndRoot) are
	// enumerated. Zero means |V| (every root). Because root subtrees
	// partition the output — each maximal biclique is emitted exactly
	// once, under the minimal vertex of its R side — the ranges
	// [a, b) and [b, c) together emit exactly what [a, c) does, which is
	// what lets a distributed coordinator shard the root space across
	// workers and merge per-range digests (see internal/dist and
	// docs/DISTRIBUTED.md). An EndRoot at or below a positive StartRoot
	// (an empty or reversed range) or beyond |V| is rejected by
	// Enumerate.
	EndRoot int32

	// PadBitmaps forces every bitmap CG's mask width to ⌈τ/64⌉ words
	// instead of ⌈|L*|/64⌉. The paper's τ-sensitivity analysis (Fig. 11,
	// "when τ exceeds 64 the running time increases due to the additional
	// time required for each set intersection") implies masks sized by τ;
	// this implementation normally sizes them by the actual |L*| at
	// creation (often a single word even for large τ), which shifts the
	// optimum. Enable this to reproduce the paper's cost model.
	PadBitmaps bool

	// SkipChild, if non-nil, is consulted with |L'| before a child node is
	// generated; returning true skips the child and its entire subtree.
	// Because L only shrinks down any path, this is sound exactly for
	// predicates that are downward-closed in |L| (e.g. |L'| < p for
	// size-bounded search, or |L'|·bound ≤ best for branch-and-bound).
	// Skipped bicliques are NOT reported. The paper's §V positions AdaMBE
	// as a substrate for maximum-biclique problems; this hook (plus
	// SkipSubtree) is that substrate. Must be safe for concurrent calls
	// when Threads > 1.
	SkipChild func(lenL int) bool
	// SkipSubtree, if non-nil, is consulted after a maximal node
	// (|L|, |R|, |C|) is generated and reported; returning true skips the
	// recursion below it. Sound for bounds monotone under L-shrinking and
	// R-growth capped by |R|+|C|. Must be safe for concurrent calls when
	// Threads > 1.
	SkipSubtree func(lenL, lenR, lenC int) bool
}

func (o *Options) tau() int {
	if o.Tau == 0 {
		return DefaultTau
	}
	return o.Tau
}

// StopReason says why an enumeration run returned before exhausting the
// search tree. StopNone means the run completed.
type StopReason uint8

const (
	// StopNone: the run enumerated the full tree.
	StopNone StopReason = iota
	// StopDeadline: Options.Deadline passed (the paper's TLE protocol).
	StopDeadline
	// StopCanceled: Options.Context was canceled.
	StopCanceled
	// StopMemoryBudget: engine-tracked memory exceeded
	// Options.MaxMemoryBytes (or a fault hook simulated an allocation
	// failure).
	StopMemoryBudget
	// StopPanic: a worker panicked; Enumerate recovered, returned partial
	// results, and reported the panic as an error wrapping ErrPanic.
	StopPanic
)

// String names the stop reason.
func (r StopReason) String() string {
	switch r {
	case StopNone:
		return "none"
	case StopDeadline:
		return "deadline"
	case StopCanceled:
		return "canceled"
	case StopMemoryBudget:
		return "memory-budget"
	case StopPanic:
		return "panic"
	default:
		return fmt.Sprintf("StopReason(%d)", int(r))
	}
}

// StopReasonOf maps a tle.Reason observed by a stopper onto the Result
// vocabulary. Exported for sibling enumeration packages (the competitor
// baselines) that share the stopper infrastructure and report through
// core.Result.
func StopReasonOf(r tle.Reason) StopReason { return stopReasonFrom(r) }

// stopReasonFrom maps a tle.Reason observed by the stoppers onto the
// Result vocabulary. tle.Aborted means a sibling worker panicked, so the
// run as a whole stopped because of that panic.
func stopReasonFrom(r tle.Reason) StopReason {
	switch r {
	case tle.DeadlineExceeded:
		return StopDeadline
	case tle.Canceled:
		return StopCanceled
	case tle.MemoryExceeded:
		return StopMemoryBudget
	case tle.Aborted:
		return StopPanic
	default:
		return StopNone
	}
}

// Result summarizes an enumeration run.
type Result struct {
	// Count is the number of maximal bicliques reported. It is monotone:
	// every biclique counted was also delivered to the handler, whatever
	// stopped the run.
	Count int64
	// StopReason, when not StopNone, reports why the run stopped before
	// completing; Count and any gathered Metrics are still valid partial
	// results.
	StopReason StopReason
	// TimedOut mirrors StopReason == StopDeadline.
	//
	// Deprecated: use StopReason; TimedOut is kept as an alias for
	// callers of the original deadline-only API.
	TimedOut bool
	// Elapsed is the wall-clock enumeration time (graph loading excluded,
	// as in §IV-A).
	Elapsed time.Duration
}

// Metrics carries the instrumentation counters used by the paper's
// motivation and breakdown figures. Counters are only approximate under the
// parallel engine (merged per worker without ordering).
type Metrics struct {
	// NodesGenerated counts enumeration-tree nodes whose (L', R', C') sets
	// were materialized (maximal or not).
	NodesGenerated int64
	// NodesMaximal / NodesNonMaximal split NodesGenerated by the Γ check.
	NodesMaximal    int64
	NodesNonMaximal int64
	// NodesPruned counts children skipped by the LN pruning rule
	// (§III-A(3)); they are not included in NodesGenerated.
	NodesPruned int64
	// AccessesInsideCG / AccessesOutsideCG count adjacency entries touched
	// during set operations that fall inside vs outside the current
	// computational subgraph (Fig. 5).
	AccessesInsideCG  int64
	AccessesOutsideCG int64
	// SetIntersections counts pairwise set-intersection operations.
	SetIntersections int64
	// CGHist is a log₂-bucketed joint histogram of (|L|, |C|) over all
	// nodes entered (Fig. 4): CGHist[i][j] counts nodes with
	// 2^i ≤ max(|L|,1) < 2^(i+1) and likewise j for |C|.
	CGHist [CGHistBuckets][CGHistBuckets]int64
	// SmallNodeTime / LargeNodeTime split enumeration time at the τ
	// boundary (Fig. 10d): SmallNodeTime is the total time spent inside
	// maximal subtrees whose roots have |L| ≤ τ.
	SmallNodeTime time.Duration
	LargeNodeTime time.Duration
	// BitmapsCreated counts bitmap CGs materialized by BIT.
	BitmapsCreated int64
	// BitPromotions counts list-procedure subtrees (LN or global) that
	// switched to the bitwise procedure at the τ boundary. The promotion
	// rate — BitPromotions against NodesGenerated — says how much of the
	// tree the bitmap fast path captured at the configured τ.
	BitPromotions int64
	// BitWidthHist is a histogram of bitmap-CG mask widths in 64-bit
	// words: index w counts CGs built with w+1 words per mask, the last
	// bucket everything at least that wide. With multi-word kernels the
	// width distribution (not just the count) decides whether raising τ
	// pays: widths ≤ bitset.SmallStrideMax run the unrolled kernels.
	BitWidthHist [5]int64

	// Scheduler counters (parallel runs only; zero for serial engines).
	// TasksSpawned counts subtrees detached into the work-stealing pool,
	// TasksStolen the subset executed by a worker other than the one that
	// detached them, and TasksInlined the spawn offers the adaptive cutoff
	// declined (the subtree recursed inline instead of paying the detach
	// copy).
	TasksSpawned int64
	TasksStolen  int64
	TasksInlined int64
	// MaxQueueDepth is the highest per-worker deque occupancy observed;
	// merge keeps the maximum rather than summing.
	MaxQueueDepth int64

	// Spawn-arena counters (parallel runs only). A spawn served from the
	// worker's recycled-node arena is a hit — the detach copy reuses a
	// retained buffer instead of allocating; ArenaBytesReused totals the
	// payload bytes those hits avoided allocating.
	ArenaSpawnHits   int64
	ArenaSpawnMisses int64
	ArenaBytesReused int64
}

// CGHistBuckets is the number of log₂ buckets per axis in Metrics.CGHist
// (bucket 20 holds everything ≥ 2^20).
const CGHistBuckets = 21

func histBucket(n int) int {
	if n <= 1 {
		return 0
	}
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	if b >= CGHistBuckets {
		b = CGHistBuckets - 1
	}
	return b
}

func (m *Metrics) observeNode(lenL, lenC int) {
	m.CGHist[histBucket(lenL)][histBucket(lenC)]++
}

// merge adds o's counters into m (parallel workers).
func (m *Metrics) merge(o *Metrics) {
	m.NodesGenerated += o.NodesGenerated
	m.NodesMaximal += o.NodesMaximal
	m.NodesNonMaximal += o.NodesNonMaximal
	m.NodesPruned += o.NodesPruned
	m.AccessesInsideCG += o.AccessesInsideCG
	m.AccessesOutsideCG += o.AccessesOutsideCG
	m.SetIntersections += o.SetIntersections
	m.SmallNodeTime += o.SmallNodeTime
	m.LargeNodeTime += o.LargeNodeTime
	m.BitmapsCreated += o.BitmapsCreated
	m.BitPromotions += o.BitPromotions
	for i := range m.BitWidthHist {
		m.BitWidthHist[i] += o.BitWidthHist[i]
	}
	m.TasksSpawned += o.TasksSpawned
	m.TasksStolen += o.TasksStolen
	m.TasksInlined += o.TasksInlined
	m.ArenaSpawnHits += o.ArenaSpawnHits
	m.ArenaSpawnMisses += o.ArenaSpawnMisses
	m.ArenaBytesReused += o.ArenaBytesReused
	if o.MaxQueueDepth > m.MaxQueueDepth {
		m.MaxQueueDepth = o.MaxQueueDepth
	}
	for i := range m.CGHist {
		for j := range m.CGHist[i] {
			m.CGHist[i][j] += o.CGHist[i][j]
		}
	}
}

// ErrBadOptions reports invalid enumeration options.
var ErrBadOptions = errors.New("core: invalid options")

// ValidateRootRange checks a [start, end) root range against a graph
// with nv roots: end == 0 means "to the last root" and is always valid;
// a negative, empty, or reversed range, or one reaching past nv, is an
// ErrBadOptions. Shared by every layer that plumbs StartRoot/EndRoot
// (core, baselines, the public API and internal/dist), so the error
// vocabulary cannot drift between them.
// rootFrontierEnd is the exclusive end of the run's root frontier — the
// value progress reporting treats as "100% of roots".
func rootFrontierEnd(opts Options, nv int) int32 {
	if opts.EndRoot > 0 {
		return opts.EndRoot
	}
	return int32(nv)
}

func ValidateRootRange(start, end int32, nv int) error {
	switch {
	case end < 0:
		return fmt.Errorf("%w: negative EndRoot %d", ErrBadOptions, end)
	case end == 0:
		return nil
	case end <= start:
		return fmt.Errorf("%w: empty or reversed root range [%d, %d)", ErrBadOptions, start, end)
	case end > int32(nv):
		return fmt.Errorf("%w: EndRoot %d exceeds the graph's %d roots", ErrBadOptions, end, nv)
	}
	return nil
}

// ErrPanic reports that an enumeration worker panicked. Enumerate
// recovers the panic, winds the run down without leaking goroutines, and
// returns partial results alongside an error wrapping ErrPanic.
var ErrPanic = errors.New("core: panic during enumeration")

// PanicError wraps a recovered panic value (with its stack) as an error
// wrapping ErrPanic. Exported for sibling enumeration packages that apply
// the same panic-isolation discipline.
func PanicError(where string, r any) error {
	return fmt.Errorf("%w in %s: %v\n%s", ErrPanic, where, r, debug.Stack())
}

// panicError is the package-local spelling of PanicError.
func panicError(where string, r any) error { return PanicError(where, r) }

// stopConfig translates enumeration options into the stopper conditions.
func (o *Options) stopConfig() tle.Config {
	return tle.Config{
		Deadline:       o.Deadline,
		Context:        o.Context,
		MaxMemoryBytes: o.MaxMemoryBytes,
	}
}

// Enumerate runs the selected algorithm over g and returns the result.
// g's V side must already be in the desired processing order.
//
// Lifecycle guarantees: the run stops promptly when the deadline passes,
// the context is canceled, or the soft memory budget is exceeded —
// Result.StopReason says which — and a panic in any engine or worker is
// recovered into an error wrapping ErrPanic. In every case partial
// monotone counts (and Metrics gathered so far) are returned and no
// goroutines are leaked.
func Enumerate(g *graph.Bipartite, opts Options) (Result, error) {
	if opts.Tau < 0 || opts.Tau > MaxTau {
		return Result{}, fmt.Errorf("%w: tau %d out of range (0, %d]", ErrBadOptions, opts.Tau, MaxTau)
	}
	if opts.Threads < 0 {
		return Result{}, fmt.Errorf("%w: negative thread count %d", ErrBadOptions, opts.Threads)
	}
	if opts.Threads > 1 && opts.Variant != Ada {
		return Result{}, fmt.Errorf("%w: the parallel engine is ParAdaMBE and requires Variant == Ada", ErrBadOptions)
	}
	switch opts.Variant {
	case Baseline, LN, BIT, Ada:
	default:
		return Result{}, fmt.Errorf("%w: unknown variant %d", ErrBadOptions, int(opts.Variant))
	}
	if opts.StartRoot < 0 {
		return Result{}, fmt.Errorf("%w: negative StartRoot %d", ErrBadOptions, opts.StartRoot)
	}
	if err := ValidateRootRange(opts.StartRoot, opts.EndRoot, g.NV()); err != nil {
		return Result{}, err
	}

	start := time.Now()
	shared := &tle.Shared{}
	workers := 1
	if opts.Threads > 1 {
		workers = opts.Threads
	}
	opts.Obs.RunBegin(obs.RunConfig{
		Workers:        workers,
		Shared:         shared,
		Deadline:       opts.Deadline,
		MemBudgetBytes: opts.MaxMemoryBytes,
		Frontier:       int64(rootFrontierEnd(opts, g.NV())),
	})
	var res Result
	var err error
	if opts.Threads > 1 {
		res, err = enumerateParallel(g, opts, shared)
	} else {
		res, err = enumerateSerial(g, opts, shared)
	}
	res.TimedOut = res.StopReason == StopDeadline
	res.Elapsed = time.Since(start)
	opts.Obs.Finish(res.StopReason.String())
	return res, err
}

// enumerateSerial runs one engine with panic isolation: a panic anywhere
// in the engine (or a user handler) becomes an error return carrying the
// partial count and metrics gathered so far.
func enumerateSerial(g *graph.Bipartite, opts Options, shared *tle.Shared) (res Result, err error) {
	e := newEngine(g, opts, shared, 0)
	e.probe.SetState(obs.StateBusy)
	defer func() {
		if opts.Metrics != nil {
			opts.Metrics.merge(&e.metrics)
		}
		res = Result{Count: e.count, StopReason: stopReasonFrom(e.stop.Reason())}
		if r := recover(); r != nil {
			res.StopReason = StopPanic
			err = panicError("serial engine", r)
		}
	}()
	e.run()
	return res, nil
}
