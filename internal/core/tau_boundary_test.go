package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// tauBoundaryValues straddle every mask word boundary the unrolled kernels
// care about: exactly one/two/four words, and one bit either side.
var tauBoundaryValues = []int{64, 65, 127, 128, 129, 255, 256}

// denseBipartite builds a graph whose root subproblems have |L| large
// enough to exercise multi-word bitmaps: nu U-side vertices, nv V-side,
// each V vertex connected to a random ~frac of U. nv stays under
// MaxBruteForceV so the oracle is available.
func denseBipartite(t testing.TB, seed int64, nu, nv int, frac float64) *graph.Bipartite {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for v := 0; v < nv; v++ {
		for u := 0; u < nu; u++ {
			if rng.Float64() < frac {
				edges = append(edges, graph.Edge{U: int32(u), V: int32(v)})
			}
		}
	}
	g, err := graph.FromEdges(nu, nv, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestTauWordBoundariesAgainstOracle sweeps τ across the 1/2/3/4-word mask
// boundaries on graphs whose |L| actually reaches those widths, for both
// the serial and parallel engines, and checks the enumerated set (not just
// the count) against the brute-force oracle.
func TestTauWordBoundariesAgainstOracle(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Bipartite
	}{
		// deg(v) ≈ 90: promotions at τ ≥ 65 build 2-word masks.
		{"nu=150", denseBipartite(t, 11, 150, 10, 0.6)},
		// deg(v) ≈ 170: τ = 255/256 promotions build 3–4-word masks.
		{"nu=340", denseBipartite(t, 13, 340, 9, 0.5)},
	}
	for _, gr := range graphs {
		want := BruteForceKeys(gr.g)
		if len(want) == 0 {
			t.Fatalf("%s: oracle found nothing; fixture too sparse", gr.name)
		}
		for _, tau := range tauBoundaryValues {
			for _, threads := range []int{1, 4, 8} {
				name := fmt.Sprintf("%s/tau=%d/threads=%d", gr.name, tau, threads)
				var m Metrics
				o := Options{Variant: Ada, Tau: tau, Threads: threads, Metrics: &m}
				got, res, err := CollectKeys(gr.g, o)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if res.Count != int64(len(want)) || !keysEqual(got, want) {
					t.Fatalf("%s: got %d bicliques, want %d (sets differ: %v)",
						name, res.Count, len(want), !keysEqual(got, want))
				}
				// Vacuity guard: the sweep must actually reach the bitmap
				// path, otherwise it only retests LN.
				if m.BitPromotions == 0 {
					t.Fatalf("%s: no LN→BIT promotions; boundary not exercised", name)
				}
			}
		}
	}

	// The big fixture at τ = 256 must build masks wider than one word —
	// this pins the histogram too, so a silent fall-back to the scalar
	// path can't pass the sweep.
	var m Metrics
	if _, _, err := CollectKeys(graphs[1].g, Options{Variant: Ada, Tau: 256, Metrics: &m}); err != nil {
		t.Fatal(err)
	}
	multi := m.BitWidthHist[1] + m.BitWidthHist[2] + m.BitWidthHist[3] + m.BitWidthHist[4]
	if multi == 0 {
		t.Fatalf("tau=256 on nu=340 built only 1-word bitmaps: hist %v", m.BitWidthHist)
	}
}
