package core

import (
	"math/bits"

	"repro/internal/bitset"
)

// bitCG is a bitmap-represented computational subgraph (§III-B): one
// fixed-width bit mask per live V-side vertex, each bit addressing a member
// of the L* set at bitmap-creation time. With the default τ = 64 every mask
// is a single uint64 and each intersection is one AND, as in the paper.
// A bitCG is created once at a node with |L*| ≤ τ, C* ≠ ∅ and reused by
// the entire subtree. Bitmap subtrees never nest, so each engine owns a
// single bitCG whose storage is recycled across creations (reset), keeping
// steady-state enumeration allocation-free.
type bitCG struct {
	width     int      // words per mask (⌈|L*|/64⌉)
	lids      []int32  // bit position → U id (sorted; equals L*)
	vids      []int32  // CG-local index → V id
	masks     []uint64 // len(vids)*width packed masks
	nCand     int      // vids[0:nCand] are the creation node's candidates
	framesBuf []uint64 // per-depth L_q scratch (depth ≤ |L*|), width words each
	rootBuf   []uint64 // the root L_q ("all of L*") for the multi-word path

	// charge, if non-nil, accounts retained-capacity growth (bytes) to the
	// run's memory gauge.
	charge func(bytes int64)
}

func (cg *bitCG) charged(oldCap, newCap int) {
	if cg.charge != nil && newCap > oldCap {
		cg.charge(int64(newCap-oldCap) * 8)
	}
}

// reset prepares the pooled CG for a new subtree: width and L* ids set,
// mask storage for nMasks vertices zeroed, vertex list emptied.
func (cg *bitCG) reset(width int, lids []int32, nMasks int) {
	cg.width = width
	cg.lids = lids
	cg.vids = cg.vids[:0]
	need := nMasks * width
	if cap(cg.masks) < need {
		cg.charged(cap(cg.masks), need)
		cg.masks = make([]uint64, need)
	} else {
		cg.masks = cg.masks[:need]
		clear(cg.masks)
	}
}

// growMask appends storage for one more zeroed mask (global builder path).
// Growth is a single doubling allocation — and a single gauge charge — per
// reallocation, not one word-sized append per mask.
func (cg *bitCG) growMask() {
	need := len(cg.masks) + cg.width
	if need > cap(cg.masks) {
		before := cap(cg.masks)
		grown := make([]uint64, need, max(need, 2*cap(cg.masks)))
		copy(grown, cg.masks)
		cg.masks = grown
		cg.charged(before, cap(cg.masks))
		return
	}
	// Reusing capacity retained from an earlier, larger subtree: the region
	// beyond len may hold that subtree's stale mask bits.
	cg.masks = cg.masks[:need]
	clear(cg.masks[need-cg.width:])
}

func (cg *bitCG) mask(k int32) bitset.Mask {
	return bitset.Mask(cg.masks[int(k)*cg.width : (int(k)+1)*cg.width])
}

func (cg *bitCG) frame(d int) bitset.Mask {
	need := (d + 1) * cg.width
	if cap(cg.framesBuf) < need {
		// One doubling allocation per growth. The prefix holds the live L_q
		// frames of every ancestor depth and must be copied over; the new
		// frame itself needs no zeroing (MaskAnd fully overwrites it).
		before := cap(cg.framesBuf)
		grown := make([]uint64, max(need, 2*cap(cg.framesBuf)))
		copy(grown, cg.framesBuf)
		cg.framesBuf = grown
		cg.charged(before, cap(cg.framesBuf))
	}
	cg.framesBuf = cg.framesBuf[:cap(cg.framesBuf)]
	return bitset.Mask(cg.framesBuf[d*cg.width : (d+1)*cg.width])
}

// maskWidth returns the mask word-width for a bitmap whose L* has lenL
// members: sized to the actual L* normally, padded to τ under PadBitmaps
// (the paper's cost model for Fig. 11).
func (e *engine) maskWidth(lenL int) int {
	if e.padBits {
		return bitset.WordsFor(e.tau)
	}
	return bitset.WordsFor(lenL)
}

// notePromotion records one list-procedure subtree handing off to the
// bitwise procedure (the LN→BIT promotion the τ knob controls).
func (e *engine) notePromotion() {
	e.probe.Promote()
	if e.collect {
		e.metrics.BitPromotions++
	}
}

// observeBitmap records the width histogram row for a freshly built CG.
func (e *engine) observeBitmap(width int) {
	e.probe.Bitmap()
	if e.collect {
		e.metrics.BitmapsCreated++
		b := width - 1
		if b >= len(e.metrics.BitWidthHist) {
			b = len(e.metrics.BitWidthHist) - 1
		}
		e.metrics.BitWidthHist[b]++
	}
}

// buildBitCGFromLN materializes the bitmap CG from a node's cached local
// neighborhoods (Algorithm 2 line 5, reached from the LN procedure). No
// global adjacency is touched: U_bit = L*, V_bit = live candidates plus the
// live excluded set, and each mask is the vertex's local neighborhood
// re-encoded as bits.
func (e *engine) buildBitCGFromLN(L []int32, candIDs []int32, candNbrs [][]int32, exclIDs []int32, exclNbrs [][]int32) *bitCG {
	e.faultStep(SiteBitmap)
	epoch := e.stampEpoch()
	for pos, u := range L {
		e.uMark[u] = epoch
		e.uVal[u] = int32(pos)
	}
	width := e.maskWidth(len(L))
	nLive := len(exclIDs)
	for _, vc := range candIDs {
		if vc >= 0 {
			nLive++
		}
	}
	cg := &e.cg
	cg.reset(width, L, nLive)
	k := 0
	fill := func(id int32, nbrs []int32) {
		m := cg.mask(int32(k))
		for _, u := range nbrs {
			m.Set(int(e.uVal[u]))
		}
		cg.vids = append(cg.vids, id)
		k++
	}
	for j, vc := range candIDs {
		if vc >= 0 {
			fill(vc, candNbrs[j])
		}
	}
	cg.nCand = k
	for j, x := range exclIDs {
		fill(x, exclNbrs[j])
	}
	e.observeBitmap(width)
	return cg
}

// buildBitCGGlobal materializes the bitmap CG from the original adjacency
// lists (the AdaMBE-BIT variant, which has no local-neighborhood cache):
// V_bit = ⋃_{u∈L*} N(u) − R* (§III-B), with the creation node's candidates
// registered first so candidate order is preserved, and every other member
// of V_bit forming the excluded set.
func (e *engine) buildBitCGGlobal(L, R, cand []int32) *bitCG {
	e.faultStep(SiteBitmap)
	epoch := e.stampEpoch()
	for pos, u := range L {
		e.uMark[u] = epoch
		e.uVal[u] = int32(pos)
	}
	for _, v := range R {
		e.vMark[v] = epoch
		e.vVal[v] = -1 // R members are excluded from V_bit
	}
	width := e.maskWidth(len(L))
	cg := &e.cg
	cg.reset(width, L, len(cand))
	cg.nCand = len(cand)
	for k, v := range cand {
		e.vMark[v] = epoch
		e.vVal[v] = int32(k)
		cg.vids = append(cg.vids, v)
	}
	for pos, u := range L {
		for _, v := range e.g.NeighborsOfU(u) {
			if e.vMark[v] != epoch {
				e.vMark[v] = epoch
				e.vVal[v] = int32(len(cg.vids))
				cg.vids = append(cg.vids, v)
				cg.growMask()
			}
			k := e.vVal[v]
			if k < 0 {
				continue // member of R*
			}
			cg.masks[int(k)*width+(pos>>6)] |= 1 << (uint(pos) & 63)
		}
	}
	e.observeBitmap(width)
	return cg
}

// searchBitRoot seeds the bitwise procedure over a freshly built bitmap CG:
// L = all of L*, candidates and excluded vertices as laid out by the
// builder. The overwhelmingly common case — τ ≤ 64, every mask one machine
// word — dispatches to the scalar specialization searchBit1, realizing the
// paper's "each set intersection is a single bitwise AND between two
// 64-bit integers". Wider masks (τ up to 64·bitset.SmallStrideMax on the
// unrolled kernels, beyond that on a generic word loop) run searchBitPacked
// over the CG's packed mask storage.
func (e *engine) searchBitRoot(cg *bitCG, R []int32) {
	mark := e.ids.Mark()
	cand := e.ids.Alloc(cg.nCand)
	for i := range cand {
		cand[i] = int32(i)
	}
	excl := e.ids.Alloc(len(cg.vids) - cg.nCand)
	for i := range excl {
		excl[i] = int32(cg.nCand + i)
	}
	t0, timed := e.enterSmallTimer(len(cg.lids))
	if cg.width == 1 {
		var root uint64
		if n := len(cg.lids); n >= 64 {
			root = ^uint64(0)
		} else {
			root = (1 << uint(n)) - 1
		}
		e.searchBit1(cg, root, R, cand, excl)
	} else {
		if cap(cg.rootBuf) < cg.width {
			cg.charged(cap(cg.rootBuf), cg.width)
			cg.rootBuf = make([]uint64, cg.width)
		}
		root := bitset.Mask(cg.rootBuf[:cg.width])
		root.FillLow(len(cg.lids))
		e.searchBitPacked(cg, 0, root, R, cand, excl)
	}
	e.exitSmallTimer(t0, timed)
	e.ids.Release(mark)
}

// searchBit1 is searchBit specialized to one-word masks: every mask is a
// plain uint64 indexed directly in cg.masks, set intersection is a single
// AND, the subset test a single AND+CMP, and L_q lives in a register.
func (e *engine) searchBit1(cg *bitCG, lp uint64, R []int32, cand, excl []int32) {
	if e.stop.Stopped() {
		return
	}
	masks := cg.masks
	for i := 0; i < len(cand); i++ {
		if e.stop.Hit() {
			return
		}
		lq := lp & masks[cand[i]]
		if e.collect {
			e.metrics.SetIntersections++
		}
		if e.skipChild != nil && e.skipChild(bits.OnesCount64(lq)) {
			continue
		}

		// Node check against the excluded set and the traversed prefix.
		maximal := true
		for _, xk := range excl {
			if e.collect {
				e.metrics.SetIntersections++
			}
			if lq&^masks[xk] == 0 { // lq ⊆ mask(xk)
				maximal = false
				break
			}
		}
		if maximal {
			for _, xk := range cand[:i] {
				if e.collect {
					e.metrics.SetIntersections++
				}
				if lq&^masks[xk] == 0 {
					maximal = false
					break
				}
			}
		}
		e.probe.NodeBit()
		if e.collect {
			e.metrics.NodesGenerated++
		}
		if !maximal {
			if e.collect {
				e.metrics.NodesNonMaximal++
			}
			continue
		}

		// Node generation.
		mark := e.ids.Mark()
		rem := len(cand) - i - 1
		rq := e.ids.Alloc(len(R) + 1 + rem)
		nr := copy(rq, R)
		rq[nr] = cg.vids[cand[i]]
		nr++
		cq := e.ids.Alloc(rem)
		nc := 0
		for _, wk := range cand[i+1:] {
			mw := masks[wk]
			if e.collect {
				e.metrics.SetIntersections++
			}
			switch and := lq & mw; {
			case and == lq: // lq ⊆ mw
				rq[nr] = cg.vids[wk]
				nr++
			case and != 0:
				cq[nc] = wk
				nc++
			}
		}
		exq := e.ids.Alloc(len(excl) + i)
		nx := 0
		for _, xk := range excl {
			if lq&masks[xk] != 0 {
				exq[nx] = xk
				nx++
			}
		}
		for _, xk := range cand[:i] {
			if lq&masks[xk] != 0 {
				exq[nx] = xk
				nx++
			}
		}

		if e.collect {
			e.metrics.NodesMaximal++
			e.metrics.observeNode(bits.OnesCount64(lq), nc)
		}
		e.emitBit1(cg, lq, rq[:nr])
		if nc > 0 && (e.skipSubtree == nil || !e.skipSubtree(bits.OnesCount64(lq), nr, nc)) {
			e.searchBit1(cg, lq, rq[:nr], cq[:nc], exq[:nx])
		}
		e.ids.Release(mark)
	}
}

// emitBit1 is emitBit for one-word L masks.
func (e *engine) emitBit1(cg *bitCG, lq uint64, R []int32) {
	if e.handler == nil && e.sink == nil {
		e.count++
		e.probe.Biclique()
		return
	}
	mark := e.ids.Mark()
	L := e.ids.Alloc(bits.OnesCount64(lq))
	n := 0
	for w := lq; w != 0; w &= w - 1 {
		L[n] = cg.lids[bits.TrailingZeros64(w)]
		n++
	}
	e.emit(L, R)
	e.ids.Release(mark)
}

// searchBitPacked is the bitwise enumeration procedure (Algorithm 2, lines
// 24-40) for multi-word masks. All vertex sets except R hold CG-local
// indices; every set intersection is a width-word AND. The maximality test
// on line 29 is implemented as the subset check (L_q & N_bit(v”)) == L_q.
//
// Unlike the per-vertex original, each phase of a node runs as ONE batched
// kernel call over the packed mask storage (internal/bitset kernels):
// FirstSupersetPacked sweeps the excluded set for the maximality check,
// ClassifyPacked splits the whole remaining candidate block into R_q / C_q
// in a single pass (replacing the separate subset test and overlap test per
// candidate), and FilterIntersectsPacked builds the child excluded set.
// Each call hoists L_q's words into registers once per block and dispatches
// once on the stride, so τ ∈ (64, 256] stays on unrolled 2–4-word inner
// loops instead of falling back to LN.
func (e *engine) searchBitPacked(cg *bitCG, depth int, lp bitset.Mask, R []int32, cand, excl []int32) {
	if e.stop.Stopped() {
		return
	}
	width := cg.width
	masks := cg.masks
	for i := 0; i < len(cand); i++ {
		if e.stop.Hit() {
			return
		}
		vk := cand[i]
		lq := cg.frame(depth)
		bitset.AndPacked(lq, lp, masks, width, vk)
		if e.collect {
			e.metrics.SetIntersections++
		}
		if e.skipChild != nil && e.skipChild(lq.Count()) {
			continue
		}

		// Node check (lines 27-30): the excluded set is every V_bit vertex
		// outside R ∪ C — the builder's excluded list plus candidates
		// already traversed at this node or an ancestor within the bitmap.
		// SetIntersections counts one op per mask actually inspected, like
		// the early-exiting per-vertex loop it replaces.
		maximal := true
		if at := bitset.FirstSupersetPacked(lq, masks, width, excl); at >= 0 {
			maximal = false
			if e.collect {
				e.metrics.SetIntersections += int64(at + 1)
			}
		} else {
			if e.collect {
				e.metrics.SetIntersections += int64(len(excl))
			}
			if at := bitset.FirstSupersetPacked(lq, masks, width, cand[:i]); at >= 0 {
				maximal = false
				if e.collect {
					e.metrics.SetIntersections += int64(at + 1)
				}
			} else if e.collect {
				e.metrics.SetIntersections += int64(i)
			}
		}
		e.probe.NodeBit()
		if e.collect {
			e.metrics.NodesGenerated++
		}
		if !maximal {
			if e.collect {
				e.metrics.NodesNonMaximal++
			}
			continue
		}

		// Node generation (lines 31-37): classify the remaining candidate
		// block in one batched pass, then split by relation.
		mark := e.ids.Mark()
		rem := len(cand) - i - 1
		rq := e.ids.Alloc(len(R) + 1 + rem)
		nr := copy(rq, R)
		rq[nr] = cg.vids[vk]
		nr++
		cq := e.ids.Alloc(rem)
		nc := 0
		rels := e.relScratch(rem)
		bitset.ClassifyPacked(lq, masks, width, cand[i+1:], rels)
		if e.collect {
			e.metrics.SetIntersections += int64(rem)
		}
		for j, rel := range rels {
			switch rel {
			case bitset.RelSubset:
				rq[nr] = cg.vids[cand[i+1+j]]
				nr++
			case bitset.RelOverlap:
				cq[nc] = cand[i+1+j]
				nc++
			}
		}
		// Child excluded set: previous exclusions plus this node's
		// traversed prefix, filtered to those still overlapping L_q.
		exq := e.ids.Alloc(len(excl) + i)
		nx := bitset.FilterIntersectsPacked(lq, masks, width, excl, exq)
		nx += bitset.FilterIntersectsPacked(lq, masks, width, cand[:i], exq[nx:])

		if e.collect {
			e.metrics.NodesMaximal++
			e.metrics.observeNode(lq.Count(), nc)
		}
		e.emitBit(cg, lq, rq[:nr])
		if nc > 0 && (e.skipSubtree == nil || !e.skipSubtree(lq.Count(), nr, nc)) {
			e.searchBitPacked(cg, depth+1, lq, rq[:nr], cq[:nc], exq[:nx])
		}
		e.ids.Release(mark)
	}
}

// relScratch returns a classification buffer of length n. One buffer per
// engine suffices: it is consumed into R_q/C_q before any recursion, so no
// live rels survive a nested searchBitPacked call.
func (e *engine) relScratch(n int) []bitset.Rel {
	if cap(e.rels) < n {
		e.rels = make([]bitset.Rel, max(n, 2*cap(e.rels)))
		e.chargeMem(int64(cap(e.rels)))
	}
	return e.rels[:n]
}

// emitBit reports a maximal biclique found in bitmap mode, materializing
// the L side only when a handler is attached.
func (e *engine) emitBit(cg *bitCG, lq bitset.Mask, R []int32) {
	if e.handler == nil && e.sink == nil {
		e.count++
		e.probe.Biclique()
		return
	}
	mark := e.ids.Mark()
	L := e.ids.Alloc(lq.Count())
	n := 0
	lq.ForEach(func(bit int) {
		L[n] = cg.lids[bit]
		n++
	})
	e.emit(L, R)
	e.ids.Release(mark)
}
