package core

import (
	"repro/internal/vset"
)

// Type and function aliases keep the enumeration kernels terse; the shared
// implementations live in internal/vset and internal/tle.
type slab[T any] = vset.Slab[T]

func intersectInto(dst, a, b []int32) int { return vset.IntersectInto(dst, a, b) }

// gallopFactor selects binary-search intersection when one operand is at
// least this many times shorter than the other.
const gallopFactor = 16

func intersectLen(a, b []int32) int { return vset.IntersectLen(a, b) }
func isSubset(a, b []int32) bool    { return vset.IsSubset(a, b) }
