package core

import (
	"errors"
	"sort"
	"testing"
)

func TestValidateRootRange(t *testing.T) {
	const nv = 10
	cases := []struct {
		start, end int32
		ok         bool
	}{
		{0, 0, true},       // 0 means "to the last root"
		{5, 0, true},       // open-ended suffix
		{0, nv, true},      // exact full range
		{3, 7, true},       // interior
		{9, 10, true},      // single trailing root
		{0, -1, false},     // negative end
		{5, 5, false},      // empty
		{7, 3, false},      // reversed
		{0, nv + 1, false}, // past the graph
	}
	for _, c := range cases {
		err := ValidateRootRange(c.start, c.end, nv)
		if (err == nil) != c.ok {
			t.Errorf("ValidateRootRange(%d, %d, %d) = %v, want ok=%v", c.start, c.end, nv, err, c.ok)
		}
		if err != nil && !errors.Is(err, ErrBadOptions) {
			t.Errorf("ValidateRootRange(%d, %d, %d) error %v does not wrap ErrBadOptions", c.start, c.end, nv, err)
		}
	}
}

// TestEndRootPartitionsOutput: for every engine configuration, cutting
// the root space at any point yields two runs whose outputs are
// disjoint and union to the full run — the exactness property the
// distributed sharding layer (internal/dist) is built on.
func TestEndRootPartitionsOutput(t *testing.T) {
	g := randomBipartite(t, 77, 20, 14, 90)
	nv := int32(g.NV())
	for _, opts := range allConfigs() {
		full, _, err := CollectKeys(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, cut := range []int32{1, nv / 2, nv - 1} {
			lo := opts
			lo.StartRoot, lo.EndRoot = 0, cut
			hi := opts
			hi.StartRoot, hi.EndRoot = cut, nv
			loKeys, _, err := CollectKeys(g, lo)
			if err != nil {
				t.Fatal(err)
			}
			hiKeys, _, err := CollectKeys(g, hi)
			if err != nil {
				t.Fatal(err)
			}
			merged := append(append([]string(nil), loKeys...), hiKeys...)
			sort.Strings(merged)
			if !keysEqual(merged, full) {
				t.Fatalf("variant %v τ=%d threads=%d cut=%d: shards %d+%d != full %d (or overlap)",
					opts.Variant, opts.Tau, opts.Threads, cut, len(loKeys), len(hiKeys), len(full))
			}
		}
	}
}

// TestEndRootValidationAtEnumerate: Enumerate itself rejects bad ranges
// (the CLI and dist layers rely on this single checkpoint).
func TestEndRootValidationAtEnumerate(t *testing.T) {
	g := randomBipartite(t, 78, 6, 6, 18)
	for _, bad := range []Options{
		{EndRoot: -1},
		{StartRoot: 4, EndRoot: 4},
		{StartRoot: 5, EndRoot: 2},
		{EndRoot: int32(g.NV()) + 1},
	} {
		if _, err := Enumerate(g, bad); !errors.Is(err, ErrBadOptions) {
			t.Errorf("Enumerate with range [%d,%d) returned %v, want ErrBadOptions", bad.StartRoot, bad.EndRoot, err)
		}
	}
}
