package core

import "repro/internal/obs"

// searchLN is the AdaMBE large-node procedure (Algorithm 2, lines 8-23):
// enumeration driven entirely by *local* neighborhoods — the computational
// subgraph (CG) of the current node — with the three LN redesigns of
// §III-A:
//
//  1. R'/C' generation intersects against cached local neighborhoods
//     N_p(v_c) instead of global adjacency (no outside-CG accesses);
//  2. L_q is read directly from the cache as N_p(v') (the repetitive
//     L ∩ N(v') intersection of Algorithm 1 line 4 is gone);
//  3. when N_q(v_c) == N_p(v_c), the node that v_c would generate at p is
//     pruned from p's CG (identical local neighborhoods ⇒ identical L).
//
// The maximality check R_q = Γ(L_q) is evaluated locally against the
// excluded set (vertices already traversed at this node or an ancestor,
// with live local neighborhoods): any v ∈ Γ(L_q) survives every ancestor's
// non-empty-intersection filter, so it must be in R_q, the candidate set,
// or the excluded set; fully-connected candidates land in R_q, leaving the
// excluded set as the only source of maximality violations.
//
// candIDs/candNbrs and exclIDs/exclNbrs are parallel arrays; candIDs[j] < 0
// marks an entry pruned by rule 3. With Variant == Ada, entry into a node
// with |L| ≤ τ and a non-empty candidate set switches the whole subtree to
// the bitwise procedure (Algorithm 2, lines 4-7).
func (e *engine) searchLN(L, R []int32, candIDs []int32, candNbrs [][]int32, exclIDs []int32, exclNbrs [][]int32, depth int) {
	if e.stop.Stopped() {
		return
	}
	if e.variant == Ada && len(L) <= e.tau && len(candIDs) > 0 {
		e.notePromotion()
		cg := e.buildBitCGFromLN(L, candIDs, candNbrs, exclIDs, exclNbrs)
		reg := obs.TraceRegion("mbe/bit-subtree")
		e.searchBitRoot(cg, R)
		reg.End()
		return
	}

	for i := 0; i < len(candIDs); i++ {
		vp := candIDs[i]
		if vp < 0 { // pruned by rule 3 at this node
			continue
		}
		if e.stop.Hit() {
			return
		}
		e.faultStep(SiteNode)
		// Rule 2: L_q is exactly the cached local neighborhood of v'.
		lq := candNbrs[i]
		if e.skipChild != nil && e.skipChild(len(lq)) {
			continue
		}
		ep := e.stampL(lq)
		idMark := e.ids.Mark()
		hdrMark := e.hdrs.Mark()

		rem := len(candIDs) - i - 1
		rq := e.ids.Alloc(len(R) + 1 + rem)
		nr := copy(rq, R)
		rq[nr] = vp
		nr++
		cqIDs := e.ids.Alloc(rem)
		cqNbrs := e.hdrs.Alloc(rem)
		nc := 0

		// Lines 11-19: classify remaining candidates using local data.
		for j := i + 1; j < len(candIDs); j++ {
			vc := candIDs[j]
			if vc < 0 {
				continue
			}
			nb := candNbrs[j]
			buf := e.ids.Alloc(min(len(lq), len(nb)))
			m := e.localIntersect(buf, lq, nb, ep)
			e.ids.ShrinkLast(len(buf), m)
			if e.collect {
				e.metrics.SetIntersections++
				e.metrics.AccessesInsideCG += int64(len(lq) + len(nb))
			}
			if m == len(nb) {
				// Rule 3 (lines 14-15): N_q(v_c) == N_p(v_c); drop v_c
				// from this node's CG — its node here would duplicate
				// the one inside the current child's subtree.
				candIDs[j] = -1
				if e.collect {
					e.metrics.NodesPruned++
				}
			}
			switch {
			case m == len(lq): // fully connected: R_q (line 16-17)
				rq[nr] = vc
				nr++
				e.ids.ShrinkLast(m, 0) // buf not retained
			case m > 0: // partially connected: C_q (line 18-19)
				cqIDs[nc] = vc
				cqNbrs[nc] = buf[:m]
				nc++
			}
		}

		// Line 20: local maximality check against the excluded set, built
		// into the child's excluded set as we go (aborting early on a
		// violation).
		maximal := true
		exCap := len(exclIDs) + i
		exIDs := e.ids.Alloc(exCap)
		exNbrs := e.hdrs.Alloc(exCap)
		nx := 0
		checkExcluded := func(xid int32, xnb []int32) bool {
			buf := e.ids.Alloc(min(len(lq), len(xnb)))
			m := e.localIntersect(buf, lq, xnb, ep)
			e.ids.ShrinkLast(len(buf), m)
			if e.collect {
				e.metrics.SetIntersections++
				e.metrics.AccessesInsideCG += int64(len(lq) + len(xnb))
			}
			if m == len(lq) { // x ∈ Γ(L_q) but can never join R: not maximal
				return false
			}
			if m > 0 {
				exIDs[nx] = xid
				exNbrs[nx] = buf[:m]
				nx++
			} else {
				e.ids.ShrinkLast(m, 0)
			}
			return true
		}
		for k := 0; k < len(exclIDs) && maximal; k++ {
			maximal = checkExcluded(exclIDs[k], exclNbrs[k])
		}
		for k := 0; k < i && maximal; k++ {
			if candIDs[k] >= 0 {
				maximal = checkExcluded(candIDs[k], candNbrs[k])
			}
		}

		e.probe.NodeLN()
		if e.collect {
			e.metrics.NodesGenerated++
		}
		if maximal {
			if e.collect {
				e.metrics.NodesMaximal++
				e.metrics.observeNode(len(lq), nc)
			}
			e.emit(lq, rq[:nr])
			if nc > 0 && (e.skipSubtree == nil || !e.skipSubtree(len(lq), nr, nc)) {
				if e.spawn != nil &&
					e.spawn(lq, rq[:nr], cqIDs[:nc], cqNbrs[:nc], exIDs[:nx], exNbrs[:nx], depth+1) {
					// Subtree handed to the parallel scheduler.
				} else {
					t0, timed := e.enterSmallTimer(len(lq))
					e.searchLN(lq, rq[:nr], cqIDs[:nc], cqNbrs[:nc], exIDs[:nx], exNbrs[:nx], depth+1)
					e.exitSmallTimer(t0, timed)
				}
			}
		} else if e.collect {
			e.metrics.NodesNonMaximal++
		}
		e.ids.Release(idMark)
		e.hdrs.Release(hdrMark)
	}
}

