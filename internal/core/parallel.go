package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// spawnMaxDepth bounds how deep in the enumeration tree nodes may still be
// handed to other workers. The paper's ParAdaMBE parallelizes the outer
// enumeration loops via TBB; here shallow subtrees become tasks on a shared
// queue and deeper recursion stays worker-local, which keeps the
// detach-copy overhead negligible while providing enough tasks for dynamic
// load balancing on skewed datasets (CebWiki-like hubs).
const spawnMaxDepth = 8

// enumerateParallel is ParAdaMBE: a goroutine pool consuming detached
// enumeration-tree nodes from a shared queue. Pushes are non-blocking (a
// full queue means the producing worker just recurses inline), so the pool
// can never deadlock, and sibling-generation semantics are identical to the
// serial engine, so the enumerated biclique set is exactly the same.
func enumerateParallel(g *graph.Bipartite, opts Options) Result {
	threads := opts.Threads
	queue := make(chan *detachedNode, threads*64)
	var pending sync.WaitGroup // outstanding tasks
	var workers sync.WaitGroup
	var total atomic.Int64
	var timedOut atomic.Bool

	// Serialize user callbacks; the engines themselves never share state.
	handler := opts.OnBiclique
	if handler != nil {
		var mu sync.Mutex
		inner := handler
		handler = func(L, R []int32) {
			mu.Lock()
			defer mu.Unlock()
			inner(L, R)
		}
	}
	workerOpts := opts
	workerOpts.OnBiclique = handler

	var metricsMu sync.Mutex
	for w := 0; w < threads; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			e := newEngine(g, workerOpts)
			e.spawn = func(L, R, candIDs []int32, candNbrs [][]int32, exclIDs []int32, exclNbrs [][]int32, depth int) bool {
				if len(queue) >= cap(queue) {
					return false // cheap pre-check before paying the copy
				}
				n := detachNode(L, R, candIDs, candNbrs, exclIDs, exclNbrs)
				n.depth = depth
				pending.Add(1)
				select {
				case queue <- n:
					return true
				default:
					pending.Done()
					return false
				}
			}
			for n := range queue {
				if timedOut.Load() {
					pending.Done()
					continue
				}
				if n.isRoot {
					e.runLNRoot()
				} else {
					e.searchLN(n.L, n.R, n.candIDs, n.candNbrs, n.exclIDs, n.exclNbrs, n.depth)
				}
				if e.timedOut {
					timedOut.Store(true)
				}
				pending.Done()
			}
			total.Add(e.count)
			if opts.Metrics != nil {
				metricsMu.Lock()
				opts.Metrics.merge(&e.metrics)
				metricsMu.Unlock()
			}
		}()
	}

	// Seed with a root marker: the worker that picks it up runs the
	// two-hop root loop, spawning every first-level subtree as a task.
	pending.Add(1)
	queue <- &detachedNode{isRoot: true}
	go func() {
		pending.Wait()
		close(queue)
	}()
	workers.Wait()

	return Result{Count: total.Load(), TimedOut: timedOut.Load()}
}
