package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/tle"
)

// poolObserver adapts the scheduler's lifecycle callbacks onto the run's
// live-observability recorder: one atomic store per transition, at task
// granularity.
type poolObserver struct{ rec *obs.Recorder }

func (o poolObserver) WorkerState(w int, s sched.WorkerState) {
	var st obs.WorkerState
	switch s {
	case sched.StateBusy:
		st = obs.StateBusy
	case sched.StateStealing:
		st = obs.StateStealing
	case sched.StateParked:
		st = obs.StateParked
	case sched.StateDone:
		st = obs.StateDone
	default:
		st = obs.StateIdle
	}
	o.rec.Worker(w).SetState(st)
}

func (o poolObserver) WorkerStole(w int) { o.rec.Worker(w).Steal() }

// Scheduler sizing. The per-worker deque bound keeps the detached-node
// footprint proportional to the worker count (the queue is backpressure,
// not buffering: a full deque means the producer recurses inline, which is
// always correct). parallelSpawnHighWater and parallelMinSpawnCand are the
// adaptive spawn cutoff's knobs — see shouldSpawn. parallelQueueCap is a
// variable only so the saturation tests can shrink it.
var parallelQueueCap = 64

const (
	// parallelSpawnHighWater: once this many subtrees are queued locally
	// and no worker is starving, further offers recurse inline. Deep
	// backlogs add detach-copy cost without improving balance — thieves
	// only ever need a handful of outstanding subtrees to stay busy.
	parallelSpawnHighWater = 8
	// parallelMinSpawnCand: a subtree whose candidate set is smaller than
	// this is only worth detaching when someone is starving; otherwise the
	// deep-copy overhead exceeds the subtree.
	parallelMinSpawnCand = 4
	// parallelSpawnLowWater: absent starvation, each worker keeps this many
	// worthwhile subtrees queued as steal fodder.
	parallelSpawnLowWater = 2
)

// shouldSpawn is the adaptive spawn cutoff that replaces the fixed
// spawn-depth bound of the first scheduler: the decision is driven by what
// the pool looks like right now — queue occupancy and the size of the
// candidate set about to be detached — instead of where the node happens
// to sit in the enumeration tree. Skewed datasets (the CebWiki hubs the
// paper highlights) concentrate work in a few deep subtrees; a depth
// cutoff stops splitting exactly where those subtrees live, while this one
// keeps splitting any subtree, at any depth, for as long as the split can
// still feed a starving worker.
//
// Starvation means idle workers outnumber the tasks they could steal —
// merely having parked workers does not: on an oversubscribed machine
// (more workers than cores) most workers are parked most of the time, and
// spawning on that signal alone buys no balance while paying a detach
// copy per node. Absent starvation, each worker only keeps a couple of
// worthwhile subtrees queued as steal fodder.
func shouldSpawn(pool *sched.Pool[*detachedNode], w, nCand int) bool {
	if !pool.CanPush(w) {
		return false // deque full: inline recursion is the backpressure path
	}
	occ := pool.Occupancy(w)
	if occ >= parallelSpawnHighWater {
		return false
	}
	if pool.IdleWorkers() > pool.QueuedTasks() {
		return true // genuine starvation: any subtree is steal fodder
	}
	return occ < parallelSpawnLowWater && nCand >= parallelMinSpawnCand
}

// enumerateParallel is ParAdaMBE on a work-stealing scheduler: one bounded
// deque per worker (owner pushes and pops the youngest subtree, idle
// workers steal the oldest), the adaptive spawn cutoff above, and
// reservation-before-copy — sched.Pool.CanPush is a guaranteed
// reservation, so the arena detach deep-copy is only ever paid for a subtree
// that will actually be queued. Spawn decisions never change the
// enumerated set (a declined offer recurses inline with identical
// semantics), so counts and bicliques are bit-identical to the serial
// engine.
//
// Emission: with a handler attached, each worker buffers its bicliques in
// a private emitShard and flushes batches under one shared mutex
// (serialized delivery, the default contract); Options.UnorderedEmit
// bypasses the shard for direct concurrent calls. Handler-less runs only
// count and touch no shared state between task boundaries.
//
// Lifecycle: every task runs under panic recovery. A panicking task trips
// the run's shared stop state (tle.Aborted), so sibling workers wind down
// at their next amortized check; the panicking worker itself stays alive
// to keep draining (and discarding) queued tasks, which guarantees the
// pending count reaches zero and no goroutine leaks. The first panic is
// reported as the run's error; counts and metrics accumulated by every
// worker — including the one that panicked — are still merged, so the
// caller gets monotone partial results.
func enumerateParallel(g *graph.Bipartite, opts Options, shared *tle.Shared) (Result, error) {
	threads := opts.Threads
	pool := sched.NewPool[*detachedNode](threads, parallelQueueCap)
	if opts.Obs != nil {
		pool.SetObserver(poolObserver{rec: opts.Obs})
	}
	// Seed with a root marker: the worker that picks it up runs the
	// two-hop root loop, spawning every first-level subtree as a task.
	pool.Seed(&detachedNode{isRoot: true})

	var workers sync.WaitGroup
	var total atomic.Int64
	var panicOnce sync.Once
	var panicErr error
	var emitMu sync.Mutex // serializes shard flushes across workers
	fault := opts.FaultHook
	var metricsMu sync.Mutex

	for w := 0; w < threads; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			workerOpts := opts
			var shard *emitShard
			if opts.OnBiclique != nil && !opts.UnorderedEmit {
				shard = newEmitShard(opts.OnBiclique, &emitMu)
				workerOpts.OnBiclique = shard.emit
			}
			e := newEngine(g, workerOpts, shared, w)
			if shard != nil {
				shard.charge = e.chargeMem
			}
			// Worker-local spawn arena. Ownership follows the task: nodes
			// this worker executes — its own pops and its steals alike —
			// are recycled into this arena after runTask's last defer has
			// fired, then reused by this worker's next detach.
			var arena nodeArena
			// Drain this worker's results on every exit path — normal pool
			// drain, early stop, or a panic unwinding past the task-level
			// recovery — through the same flush/reconcile/merge sequence:
			// registered as a defer right here so a cancellation can never
			// skip the merge and lose counted bicliques or gathered metrics.
			defer func() {
				if shard != nil {
					func() {
						defer func() {
							if r := recover(); r != nil {
								panicOnce.Do(func() { panicErr = panicError("ParAdaMBE emit flush", r) })
								shared.Trip(tle.Aborted)
							}
						}()
						shard.flush()
					}()
					// Anything the shard could not deliver is reconciled out
					// of the count: Result.Count only ever counts bicliques
					// the handler actually received.
					e.count -= shard.undelivered()
				}
				total.Add(e.count)
				if opts.Metrics != nil {
					arena.stats(&e.metrics)
					metricsMu.Lock()
					opts.Metrics.merge(&e.metrics)
					metricsMu.Unlock()
				}
			}()
			e.spawn = func(L, R, candIDs []int32, candNbrs [][]int32, exclIDs []int32, exclNbrs [][]int32, depth int) bool {
				if !shouldSpawn(pool, w, len(candIDs)) {
					e.metrics.TasksInlined++
					return false
				}
				if fault != nil {
					if err := fault(SiteSpawn); err != nil {
						e.stop.Fail(tle.MemoryExceeded)
						return false
					}
				}
				// CanPush held above, and only this worker pushes to this
				// deque: the slot is reserved, the copy cannot be wasted
				// and the push cannot fail.
				n, reused := arena.detach(L, R, candIDs, candNbrs, exclIDs, exclNbrs)
				if reused {
					e.probe.ArenaReuse()
				}
				n.depth = depth
				n.root = e.curRoot
				n.mem = n.memBytes()
				e.stop.AddMem(n.mem)
				// The frontier must learn of the task before any thief can
				// report it done, so the spawn registers ahead of the push.
				if fr := e.frontier; fr != nil {
					fr.TaskSpawned(n.root)
				}
				pool.Push(w, n)
				return true
			}

			// runTask executes one task with panic isolation. TaskDone and
			// the memory-gauge release run on every exit path — normal,
			// skipped, or panicking — so the pool always drains and the
			// gauge tracks the live detached-node footprint, not
			// cumulative spawn traffic.
			runTask := func(n *detachedNode) {
				e.probe.TaskStart()
				// Registered first so it runs last, after the panic
				// recovery below has tripped the shared stop state: a
				// panicked or stop-interrupted task must report Discarded
				// (freezing the checkpoint watermark), never Done. The
				// forced Poll sees sibling trips the local stopper hasn't
				// observed yet — conservatively discarding a subtree that
				// did complete is safe; the converse would corrupt resume.
				if fr := e.frontier; fr != nil && !n.isRoot {
					defer func() {
						if e.stop.Poll() {
							fr.TaskDiscarded(n.root)
						} else {
							fr.TaskDone(n.root)
						}
					}()
				}
				defer obs.TraceRegion("mbe/task").End()
				defer pool.TaskDone()
				defer func() {
					if r := recover(); r != nil {
						panicOnce.Do(func() { panicErr = panicError("ParAdaMBE worker", r) })
						shared.Trip(tle.Aborted)
					}
				}()
				defer func() {
					if n.mem != 0 {
						e.stop.AddMem(-n.mem)
					}
				}()
				// Forced poll at the task boundary: observes sibling trips
				// (drain without work) and bounds deadline/cancel latency
				// to one task.
				if e.stop.Poll() {
					return
				}
				if n.isRoot {
					e.runLNRoot()
				} else {
					e.curRoot = n.root
					e.searchLN(n.L, n.R, n.candIDs, n.candNbrs, n.exclIDs, n.exclNbrs, n.depth)
				}
			}

			for {
				n, ok := pool.Next(w)
				if !ok {
					break
				}
				runTask(n)
				// runTask has returned, so every reference the task's defers
				// held (frontier report, gauge release) is dead; searchLN does
				// not retain its argument slices and spawn deep-copies into a
				// fresh node, so the shell and its backing buffers are free to
				// reuse. The root marker recycles harmlessly (empty buffers).
				arena.recycle(n)
			}
		}(w)
	}
	workers.Wait()

	if opts.Metrics != nil {
		c := pool.Counters()
		opts.Metrics.TasksSpawned += c.Spawned
		opts.Metrics.TasksStolen += c.Stolen
		if c.MaxQueueDepth > opts.Metrics.MaxQueueDepth {
			opts.Metrics.MaxQueueDepth = c.MaxQueueDepth
		}
	}

	res := Result{Count: total.Load(), StopReason: stopReasonFrom(shared.Reason())}
	if panicErr != nil {
		res.StopReason = StopPanic
		return res, panicErr
	}
	return res, nil
}
