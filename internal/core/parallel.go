package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/tle"
)

// spawnMaxDepth bounds how deep in the enumeration tree nodes may still be
// handed to other workers. The paper's ParAdaMBE parallelizes the outer
// enumeration loops via TBB; here shallow subtrees become tasks on a shared
// queue and deeper recursion stays worker-local, which keeps the
// detach-copy overhead negligible while providing enough tasks for dynamic
// load balancing on skewed datasets (CebWiki-like hubs).
const spawnMaxDepth = 8

// enumerateParallel is ParAdaMBE: a goroutine pool consuming detached
// enumeration-tree nodes from a shared queue. Pushes are non-blocking (a
// full queue means the producing worker just recurses inline), so the pool
// can never deadlock, and sibling-generation semantics are identical to the
// serial engine, so the enumerated biclique set is exactly the same.
//
// Lifecycle: every task runs under panic recovery. A panicking task trips
// the run's shared stop state (tle.Aborted), so sibling workers wind down
// at their next amortized check; the panicking worker itself stays alive to
// keep draining (and discarding) queued tasks, which guarantees the pending
// count reaches zero, the queue closes, and no goroutine leaks. The first
// panic is reported as the run's error; counts and metrics accumulated by
// every worker — including the one that panicked — are still merged, so the
// caller gets monotone partial results.
func enumerateParallel(g *graph.Bipartite, opts Options, shared *tle.Shared) (Result, error) {
	threads := opts.Threads
	queue := make(chan *detachedNode, threads*64)
	var pending sync.WaitGroup // outstanding tasks
	var workers sync.WaitGroup
	var total atomic.Int64
	var panicOnce sync.Once
	var panicErr error

	// Serialize user callbacks; the engines themselves never share state.
	handler := opts.OnBiclique
	if handler != nil {
		var mu sync.Mutex
		inner := handler
		handler = func(L, R []int32) {
			mu.Lock()
			defer mu.Unlock()
			inner(L, R)
		}
	}
	workerOpts := opts
	workerOpts.OnBiclique = handler
	fault := opts.FaultHook

	// runTask executes one queued task with panic isolation. pending.Done
	// runs on every exit path — normal, skipped, or panicking — so the
	// queue-closing goroutine can never hang on a crashed worker.
	runTask := func(e *engine, n *detachedNode) {
		defer pending.Done()
		defer func() {
			if r := recover(); r != nil {
				panicOnce.Do(func() { panicErr = panicError("ParAdaMBE worker", r) })
				shared.Trip(tle.Aborted)
			}
		}()
		// Forced poll at the task boundary: observes sibling trips (drain
		// without work) and bounds deadline/cancel latency to one task.
		if e.stop.Poll() {
			return
		}
		if n.isRoot {
			e.runLNRoot()
		} else {
			e.searchLN(n.L, n.R, n.candIDs, n.candNbrs, n.exclIDs, n.exclNbrs, n.depth)
		}
	}

	var metricsMu sync.Mutex
	for w := 0; w < threads; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			e := newEngine(g, workerOpts, shared)
			e.spawn = func(L, R, candIDs []int32, candNbrs [][]int32, exclIDs []int32, exclNbrs [][]int32, depth int) bool {
				if len(queue) >= cap(queue) {
					return false // cheap pre-check before paying the copy
				}
				if fault != nil {
					if err := fault(SiteSpawn); err != nil {
						e.stop.Fail(tle.MemoryExceeded)
						return false
					}
				}
				n := detachNode(L, R, candIDs, candNbrs, exclIDs, exclNbrs)
				n.depth = depth
				e.stop.AddMem(n.memBytes())
				pending.Add(1)
				select {
				case queue <- n:
					return true
				default:
					pending.Done()
					return false
				}
			}
			for n := range queue {
				runTask(e, n)
			}
			total.Add(e.count)
			if opts.Metrics != nil {
				metricsMu.Lock()
				opts.Metrics.merge(&e.metrics)
				metricsMu.Unlock()
			}
		}()
	}

	// Seed with a root marker: the worker that picks it up runs the
	// two-hop root loop, spawning every first-level subtree as a task.
	pending.Add(1)
	queue <- &detachedNode{isRoot: true}
	go func() {
		pending.Wait()
		close(queue)
	}()
	workers.Wait()

	res := Result{Count: total.Load(), StopReason: stopReasonFrom(shared.Reason())}
	if panicErr != nil {
		res.StopReason = StopPanic
		return res, panicErr
	}
	return res, nil
}
