package core

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
	"repro/internal/tle"
)

// schedTestGraphs is the graph set the scheduler equality tests sweep:
// random graphs from sparse to dense plus the structured shapes that
// stress spawning differently (stars spawn wide, chains spawn deep).
func schedTestGraphs(t *testing.T) map[string]*graph.Bipartite {
	return map[string]*graph.Bipartite{
		"paper":  graph.PaperExample(),
		"sparse": randomBipartite(t, 31, 120, 40, 300),
		"medium": randomBipartite(t, 32, 200, 60, 1500),
		"dense":  randomBipartite(t, 33, 60, 25, 1100),
		"star": mustAdj(t, 6, [][]int32{
			{0}, {0}, {0, 1, 2, 3, 4, 5},
		}),
		"crossbars": mustAdj(t, 8, [][]int32{
			{0, 1, 2, 3}, {2, 3, 4, 5}, {4, 5, 6, 7}, {0, 1, 6, 7}, {0, 2, 4, 6},
		}),
	}
}

// collectParallel drives enumerateParallel directly (Enumerate routes
// Threads ≤ 1 to the serial engine, but the scheduler must be exercised at
// width 1 too) and returns the sorted canonical keys.
func collectParallel(t *testing.T, g *graph.Bipartite, opts Options) ([]string, Result) {
	t.Helper()
	var mu sync.Mutex
	var keys []string
	opts.OnBiclique = func(L, R []int32) {
		mu.Lock()
		keys = append(keys, BicliqueKey(L, R))
		mu.Unlock()
	}
	res, err := enumerateParallel(g, opts, &tle.Shared{})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(keys)
	return keys, res
}

// TestSchedulerCountsMatchSerial is the work-stealing correctness bar: for
// every test graph and every pool width, counts and the exact biclique set
// must match the serial engine.
func TestSchedulerCountsMatchSerial(t *testing.T) {
	for name, g := range schedTestGraphs(t) {
		want, serial, err := CollectKeys(g, Options{Variant: Ada})
		if err != nil {
			t.Fatal(err)
		}
		for _, threads := range []int{1, 2, 4, 8} {
			var m Metrics
			keys, res := collectParallel(t, g, Options{Variant: Ada, Threads: threads, Metrics: &m})
			if res.Count != serial.Count {
				t.Fatalf("%s threads=%d: count %d, serial %d", name, threads, res.Count, serial.Count)
			}
			if !keysEqual(keys, want) {
				t.Fatalf("%s threads=%d: biclique sets differ", name, threads)
			}
			if m.TasksSpawned < 1 {
				t.Fatalf("%s threads=%d: TasksSpawned = %d, want ≥ 1 (the seed)", name, threads, m.TasksSpawned)
			}
			if m.MaxQueueDepth < 1 || m.MaxQueueDepth > int64(parallelQueueCap) {
				t.Fatalf("%s threads=%d: MaxQueueDepth = %d outside [1, %d]", name, threads, m.MaxQueueDepth, parallelQueueCap)
			}
		}
	}
}

// TestQueueSaturationInlineFallback shrinks the per-worker deque to a
// single slot so nearly every spawn offer is declined: the engines must
// recurse inline (TasksInlined grows) and still enumerate the exact set.
func TestQueueSaturationInlineFallback(t *testing.T) {
	old := parallelQueueCap
	parallelQueueCap = 1
	defer func() { parallelQueueCap = old }()

	g := randomBipartite(t, 34, 200, 60, 1500)
	want, serial, err := CollectKeys(g, Options{Variant: Ada})
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	keys, res := collectParallel(t, g, Options{Variant: Ada, Threads: 4, Metrics: &m})
	if res.Count != serial.Count || !keysEqual(keys, want) {
		t.Fatalf("saturated queue: count %d, serial %d", res.Count, serial.Count)
	}
	if m.TasksInlined == 0 {
		t.Fatal("single-slot deques never forced an inline fallback")
	}
	if m.MaxQueueDepth > 1 {
		t.Fatalf("MaxQueueDepth = %d with capacity 1", m.MaxQueueDepth)
	}
}

// TestEmissionExactlyOnce checks the delivery contract in both emission
// modes: every biclique of the serial reference arrives exactly once, and
// Result.Count equals the number of handler calls.
func TestEmissionExactlyOnce(t *testing.T) {
	g := randomBipartite(t, 35, 150, 50, 1000)
	want, serial, err := CollectKeys(g, Options{Variant: Ada})
	if err != nil {
		t.Fatal(err)
	}
	for _, unordered := range []bool{false, true} {
		for _, threads := range []int{2, 8} {
			var mu sync.Mutex
			seen := make(map[string]int, len(want))
			delivered := 0
			opts := Options{
				Variant:       Ada,
				Threads:       threads,
				UnorderedEmit: unordered,
				OnBiclique: func(L, R []int32) {
					mu.Lock()
					seen[BicliqueKey(L, R)]++
					delivered++
					mu.Unlock()
				},
			}
			res, err := enumerateParallel(g, opts, &tle.Shared{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != serial.Count {
				t.Fatalf("unordered=%v threads=%d: count %d, serial %d", unordered, threads, res.Count, serial.Count)
			}
			if int64(delivered) != res.Count {
				t.Fatalf("unordered=%v threads=%d: %d deliveries for count %d", unordered, threads, delivered, res.Count)
			}
			for _, k := range want {
				if seen[k] != 1 {
					t.Fatalf("unordered=%v threads=%d: biclique %q delivered %d times", unordered, threads, k, seen[k])
				}
			}
		}
	}
}

// TestEmissionExactlyOnceUnderCancellation cancels mid-run from inside the
// handler: the run must stop with StopCanceled, and the partial count must
// still equal the deliveries — bicliques buffered in the shards at
// cancellation are flushed, never dropped, never double-delivered.
func TestEmissionExactlyOnceUnderCancellation(t *testing.T) {
	g := randomBipartite(t, 36, 200, 60, 1500)
	full, err := Enumerate(g, Options{Variant: Ada})
	if err != nil {
		t.Fatal(err)
	}
	for _, unordered := range []bool{false, true} {
		ctx, cancel := context.WithCancel(context.Background())
		var mu sync.Mutex
		seen := make(map[string]int)
		var delivered atomic.Int64
		opts := Options{
			Variant:       Ada,
			Threads:       4,
			Context:       ctx,
			UnorderedEmit: unordered,
			OnBiclique: func(L, R []int32) {
				mu.Lock()
				seen[BicliqueKey(L, R)]++
				mu.Unlock()
				if delivered.Add(1) == 40 {
					cancel()
				}
			},
		}
		res, err := enumerateParallel(g, opts, &tle.Shared{})
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if res.StopReason != StopCanceled {
			t.Fatalf("unordered=%v: StopReason = %v, want StopCanceled", unordered, res.StopReason)
		}
		if res.Count != delivered.Load() {
			t.Fatalf("unordered=%v: count %d ≠ %d deliveries", unordered, res.Count, delivered.Load())
		}
		if res.Count >= full.Count {
			t.Fatalf("unordered=%v: canceled run delivered the full set (%d)", unordered, res.Count)
		}
		for k, n := range seen {
			if n != 1 {
				t.Fatalf("unordered=%v: biclique %q delivered %d times", unordered, k, n)
			}
		}
	}
}

// TestEmissionHandlerPanicReconciled panics inside the handler mid-run:
// the run must surface ErrPanic, and the partial count must be reconciled
// down to exactly the bicliques the handler actually received (buffered
// pairs stranded by the dead shard are subtracted).
func TestEmissionHandlerPanicReconciled(t *testing.T) {
	g := randomBipartite(t, 37, 200, 60, 1500)
	var delivered atomic.Int64
	opts := Options{
		Variant: Ada,
		Threads: 4,
		OnBiclique: func(L, R []int32) {
			if delivered.Add(1) == 200 {
				panic("handler boom")
			}
		},
	}
	res, err := enumerateParallel(g, opts, &tle.Shared{})
	if err == nil || !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
	if res.StopReason != StopPanic {
		t.Fatalf("StopReason = %v, want StopPanic", res.StopReason)
	}
	if res.Count > delivered.Load() {
		t.Fatalf("count %d exceeds %d actual deliveries", res.Count, delivered.Load())
	}
	if res.Count == 0 {
		t.Fatal("no partial count survived the handler panic")
	}
}

// TestMetricsMergedUnderCancellation cancels a parallel run mid-flight and
// checks that every worker's gathered metrics still reach the caller: the
// drain runs as a deferred step of the worker body, through the same
// flush/reconcile/merge path as a normal exit, so the merged counters must
// cover at least every biclique the handler saw. (A dropped merge would
// leave NodesMaximal short of the delivered count.)
func TestMetricsMergedUnderCancellation(t *testing.T) {
	g := randomBipartite(t, 44, 200, 60, 1500)
	for _, unordered := range []bool{false, true} {
		ctx, cancel := context.WithCancel(context.Background())
		var delivered atomic.Int64
		var m Metrics
		opts := Options{
			Variant:       Ada,
			Threads:       4,
			Context:       ctx,
			UnorderedEmit: unordered,
			Metrics:       &m,
			OnBiclique: func(L, R []int32) {
				if delivered.Add(1) == 60 {
					cancel()
				}
			},
		}
		res, err := enumerateParallel(g, opts, &tle.Shared{})
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if res.StopReason != StopCanceled {
			t.Fatalf("unordered=%v: StopReason = %v, want StopCanceled", unordered, res.StopReason)
		}
		if res.Count == 0 {
			t.Fatalf("unordered=%v: no partial count", unordered)
		}
		// Every emitted biclique is a maximal node some worker generated and
		// instrumented before emitting; a lost merge breaks this bound.
		if m.NodesMaximal < res.Count {
			t.Fatalf("unordered=%v: merged NodesMaximal %d < count %d — a worker's metrics were dropped",
				unordered, m.NodesMaximal, res.Count)
		}
		if m.NodesGenerated < m.NodesMaximal {
			t.Fatalf("unordered=%v: NodesGenerated %d < NodesMaximal %d",
				unordered, m.NodesGenerated, m.NodesMaximal)
		}
		if res.Count != delivered.Load() {
			t.Fatalf("unordered=%v: count %d ≠ %d deliveries", unordered, res.Count, delivered.Load())
		}
	}
}
