package gen

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestUniformDeterministicAndValid(t *testing.T) {
	a := Uniform(42, 100, 50, 400)
	b := Uniform(42, 100, 50, 400)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NU() != 100 || a.NV() != 50 {
		t.Fatalf("sides: %d,%d", a.NU(), a.NV())
	}
	if a.NumEdges() == 0 || a.NumEdges() > 400 {
		t.Fatalf("edges: %d", a.NumEdges())
	}
	c := Uniform(43, 100, 50, 400)
	if c.NumEdges() == a.NumEdges() && sameEdges(a, c) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func sameEdges(a, b *graph.Bipartite) bool {
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		return false
	}
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}

func TestPowerLawIsSkewed(t *testing.T) {
	g := PowerLaw(7, 2000, 500, 10000, 1.5, 1.5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := graph.Summarize(g)
	// A Zipf draw must concentrate: the max V degree should far exceed the
	// average degree.
	if float64(s.MaxDegV) < 5*s.AvgDegV {
		t.Fatalf("power law not skewed: max=%d avg=%.1f", s.MaxDegV, s.AvgDegV)
	}
}

func TestPowerLawDeterministic(t *testing.T) {
	a := PowerLaw(9, 300, 100, 2000, 2.0, 1.8)
	b := PowerLaw(9, 300, 100, 2000, 2.0, 1.8)
	if !sameEdges(a, b) {
		t.Fatal("same seed produced different power-law graphs")
	}
}

func TestAffiliationPlantsDenseBlocks(t *testing.T) {
	cfg := AffiliationConfig{
		NU: 500, NV: 200, Communities: 40,
		MeanU: 8, MeanV: 5, Density: 1.0, NoiseEdges: 100,
	}
	g := Affiliation(3, cfg)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() < 500 {
		t.Fatalf("suspiciously few edges: %d", g.NumEdges())
	}
	// Determinism.
	if !sameEdges(g, Affiliation(3, cfg)) {
		t.Fatal("affiliation generator not deterministic")
	}
}

func TestAffiliationDensityZeroish(t *testing.T) {
	cfg := AffiliationConfig{NU: 50, NV: 20, Communities: 10, MeanU: 3, MeanV: 3, Density: 0.0001}
	g := Affiliation(5, cfg)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Nearly all community edges suppressed: only sparse output expected.
	if g.NumEdges() > 50 {
		t.Fatalf("density ~0 produced %d edges", g.NumEdges())
	}
}

func TestSampleEdgesFraction(t *testing.T) {
	parent := Uniform(1, 400, 200, 20000)
	for _, frac := range []float64{0.1, 0.5, 0.9} {
		s := SampleEdges(parent, frac, 77)
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		got := float64(s.NumEdges()) / float64(parent.NumEdges())
		if math.Abs(got-frac) > 0.05 {
			t.Fatalf("frac %.2f: realized %.3f", frac, got)
		}
		if s.NU() != parent.NU() || s.NV() != parent.NV() {
			t.Fatal("sampling changed vertex sets")
		}
	}
}

func TestSampleEdgesExtremes(t *testing.T) {
	parent := Uniform(2, 100, 50, 2000)
	if s := SampleEdges(parent, 0, 1); s.NumEdges() != 0 {
		t.Fatalf("frac 0 kept %d edges", s.NumEdges())
	}
	if s := SampleEdges(parent, 1.1, 1); s.NumEdges() != parent.NumEdges() {
		t.Fatalf("frac ≥ 1 dropped edges: %d of %d", s.NumEdges(), parent.NumEdges())
	}
}

// Property: every sampled edge exists in the parent.
func TestQuickSampleIsSubset(t *testing.T) {
	parent := Uniform(3, 80, 40, 1500)
	f := func(seed int64, fracRaw uint8) bool {
		frac := float64(fracRaw) / 255
		s := SampleEdges(parent, frac, seed)
		for _, e := range s.Edges() {
			if !parent.HasEdge(e.U, e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: generators never produce out-of-range endpoints or invalid CSR.
func TestQuickGeneratorsValid(t *testing.T) {
	f := func(seed int64, nuRaw, nvRaw, mRaw uint8) bool {
		nu, nv, m := 1+int(nuRaw), 1+int(nvRaw), int(mRaw)*4
		if Uniform(seed, nu, nv, m).Validate() != nil {
			return false
		}
		if nu > 1 && nv > 1 {
			if PowerLaw(seed, nu, nv, m, 1.2, 1.4).Validate() != nil {
				return false
			}
		}
		cfg := AffiliationConfig{NU: nu, NV: nv, Communities: int(mRaw) % 8, MeanU: 2, MeanV: 2, Density: 0.8}
		return Affiliation(seed, cfg).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
