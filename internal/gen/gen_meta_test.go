package gen

import (
	"bytes"
	"testing"

	"repro/internal/graph"
)

// identical asserts byte-for-byte equality via the binary cache format
// (dims + CSR), the strongest equality the substrate exposes.
func identical(t *testing.T, a, b *graph.Bipartite) {
	t.Helper()
	var ba, bb bytes.Buffer
	if err := a.WriteBinary(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteBinary(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatalf("graphs differ: %d vs %d bytes", ba.Len(), bb.Len())
	}
}

func TestMetaRecordedAndReplayable(t *testing.T) {
	cases := []struct {
		name  string
		build func() *graph.Bipartite
		gen   string
		seed  int64
	}{
		{"uniform", func() *graph.Bipartite { return Uniform(42, 80, 40, 300) }, GenUniform, 42},
		{"powerlaw", func() *graph.Bipartite { return PowerLaw(7, 90, 45, 350, 1.5, 2.25) }, GenPowerLaw, 7},
		{"affiliation", func() *graph.Bipartite {
			return Affiliation(11, AffiliationConfig{
				NU: 60, NV: 30, Communities: 6, MeanU: 5, MeanV: 4,
				Density: 0.85, NoiseEdges: 25,
			})
		}, GenAffiliation, 11},
		{"sample-of-uniform", func() *graph.Bipartite {
			return SampleEdges(Uniform(42, 80, 40, 300), 0.5, 99)
		}, GenSample, 99},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.build()
			m := g.Meta()
			if m.Generator != tc.gen {
				t.Fatalf("Generator = %q, want %q", m.Generator, tc.gen)
			}
			if m.Seed != tc.seed {
				t.Fatalf("Seed = %d, want %d", m.Seed, tc.seed)
			}
			if m.Params == "" {
				t.Fatal("Params empty")
			}
			replayed, err := FromMeta(m)
			if err != nil {
				t.Fatalf("FromMeta: %v", err)
			}
			identical(t, g, replayed)
			if replayed.Meta() != m {
				t.Fatalf("replayed meta %+v != original %+v", replayed.Meta(), m)
			}
		})
	}
}

func TestMetaSurvivesDerivedGraphs(t *testing.T) {
	g := Uniform(5, 30, 60, 120) // nv > nu so Orient swaps
	m := g.Meta()
	if got := g.Orient().Meta(); got != m {
		t.Fatalf("Orient dropped meta: %+v", got)
	}
	if got := g.Swapped().Meta(); got != m {
		t.Fatalf("Swapped dropped meta: %+v", got)
	}
	perm := make([]int32, g.NV())
	for i := range perm {
		perm[i] = int32(g.NV() - 1 - i)
	}
	pg, err := g.PermuteV(perm)
	if err != nil {
		t.Fatal(err)
	}
	if got := pg.Meta(); got != m {
		t.Fatalf("PermuteV dropped meta: %+v", got)
	}
}

func TestFromMetaRejectsUnknown(t *testing.T) {
	if _, err := FromMeta(graph.Meta{Generator: "nope"}); err == nil {
		t.Fatal("want error for unknown generator")
	}
	if _, err := FromMeta(graph.Meta{Generator: GenUniform, Params: "nu=1"}); err == nil {
		t.Fatal("want error for missing params")
	}
	if _, err := FromMeta(graph.Meta{Generator: GenSample, Params: `frac=0.5 parent.gen= parent.seed=0 parent.params=""`}); err == nil {
		t.Fatal("want error for non-replayable sample parent")
	}
}
