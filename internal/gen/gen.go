// Package gen produces the synthetic bipartite graphs used as stand-ins
// for the paper's KONECT datasets (offline environment — see DESIGN.md's
// substitution table). Three structural families cover the dataset
// categories in Table I, plus the edge-sampling protocol behind Table II:
//
//   - Uniform: Erdős–Rényi-style background graphs.
//   - PowerLaw: Zipf-skewed degree distributions on both sides, matching
//     the heavy-tailed shape of KONECT feature/authorship graphs.
//   - Affiliation: planted overlapping communities (dense blocks), the
//     structure that makes membership/rating graphs (YouTube, GitHub,
//     BookCrossing) explode with maximal bicliques.
//   - SampleEdges: uniform edge sampling from a parent graph, the exact
//     protocol the paper applies to LiveJournal for LJ10–LJ50.
//
// Every generator is deterministic and self-seeding: the PRNG is an
// explicit rand.New(rand.NewSource(seed)) threaded through the whole
// construction (never the global rand, whose top-level functions are
// randomly seeded since Go 1.20), and the seed plus the full parameter set
// are recorded in the returned graph's Meta, so any generated graph — in
// particular one a differential test failed on — can be rebuilt
// byte-for-byte from its metadata alone via FromMeta.
package gen

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// Generator names recorded in graph.Meta.Generator.
const (
	GenUniform     = "uniform"
	GenPowerLaw    = "powerlaw"
	GenAffiliation = "affiliation"
	GenSample      = "sample"
)

// Uniform returns a graph with nu×nv vertices and ~m uniformly random
// edges (duplicates collapse, so the realized |E| may be slightly lower).
func Uniform(seed int64, nu, nv, m int) *graph.Bipartite {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{U: int32(rng.Intn(nu)), V: int32(rng.Intn(nv))}
	}
	g, err := graph.FromEdges(nu, nv, edges)
	if err != nil {
		panic(err) // endpoints are in range by construction
	}
	return g.WithMeta(graph.Meta{
		Generator: GenUniform,
		Seed:      seed,
		Params:    fmt.Sprintf("nu=%d nv=%d m=%d", nu, nv, m),
	})
}

// PowerLaw returns a graph with ~m edges whose endpoints are drawn from
// Zipf distributions with exponents sU, sV (> 1; larger = more skewed).
// Vertex identities are permuted so high-degree hubs are not clustered at
// low ids.
func PowerLaw(seed int64, nu, nv, m int, sU, sV float64) *graph.Bipartite {
	rng := rand.New(rand.NewSource(seed))
	zu := rand.NewZipf(rng, sU, 1, uint64(nu-1))
	zv := rand.NewZipf(rng, sV, 1, uint64(nv-1))
	permU := rng.Perm(nu)
	permV := rng.Perm(nv)
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			U: int32(permU[zu.Uint64()]),
			V: int32(permV[zv.Uint64()]),
		}
	}
	g, err := graph.FromEdges(nu, nv, edges)
	if err != nil {
		panic(err)
	}
	return g.WithMeta(graph.Meta{
		Generator: GenPowerLaw,
		Seed:      seed,
		Params: fmt.Sprintf("nu=%d nv=%d m=%d su=%s sv=%s",
			nu, nv, m, formatFloat(sU), formatFloat(sV)),
	})
}

// AffiliationConfig parameterizes the planted-community generator.
type AffiliationConfig struct {
	NU, NV      int     // side sizes
	Communities int     // number of planted communities
	MeanU       int     // mean U-side community size (≥1)
	MeanV       int     // mean V-side community size (≥1)
	Density     float64 // within-community edge probability (0,1]
	NoiseEdges  int     // uniform background edges added on top
}

// Affiliation returns a graph of overlapping dense blocks: each community
// picks random member sets on both sides and connects them with the given
// density. Overlapping memberships make the maximal-biclique count grow
// combinatorially, reproducing the paper's hardest dataset regimes.
func Affiliation(seed int64, cfg AffiliationConfig) *graph.Bipartite {
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	sizeAround := func(rng *rand.Rand, mean int) int {
		if mean <= 1 {
			return 1
		}
		// Geometric-ish spread around the mean, at least 1.
		s := 1 + rng.Intn(2*mean-1)
		return s
	}
	for c := 0; c < cfg.Communities; c++ {
		su, sv := sizeAround(rng, cfg.MeanU), sizeAround(rng, cfg.MeanV)
		us := make([]int32, su)
		for i := range us {
			us[i] = int32(rng.Intn(cfg.NU))
		}
		vs := make([]int32, sv)
		for i := range vs {
			vs[i] = int32(rng.Intn(cfg.NV))
		}
		for _, u := range us {
			for _, v := range vs {
				if cfg.Density >= 1 || rng.Float64() < cfg.Density {
					edges = append(edges, graph.Edge{U: u, V: v})
				}
			}
		}
	}
	for i := 0; i < cfg.NoiseEdges; i++ {
		edges = append(edges, graph.Edge{
			U: int32(rng.Intn(cfg.NU)),
			V: int32(rng.Intn(cfg.NV)),
		})
	}
	g, err := graph.FromEdges(cfg.NU, cfg.NV, edges)
	if err != nil {
		panic(err)
	}
	return g.WithMeta(graph.Meta{
		Generator: GenAffiliation,
		Seed:      seed,
		Params: fmt.Sprintf("nu=%d nv=%d c=%d mu=%d mv=%d density=%s noise=%d",
			cfg.NU, cfg.NV, cfg.Communities, cfg.MeanU, cfg.MeanV,
			formatFloat(cfg.Density), cfg.NoiseEdges),
	})
}

// SampleEdges returns a graph over the same vertex sets containing each
// edge of g independently with probability frac — the paper's LiveJournal
// sampling protocol ("LJx represents x% of LiveJournal's edges are used").
// The result's Meta records the sampling seed and fraction; it is
// replayable via FromMeta only when the parent graph itself carries
// generator metadata (the parent's meta is embedded in Params).
func SampleEdges(g *graph.Bipartite, frac float64, seed int64) *graph.Bipartite {
	rng := rand.New(rand.NewSource(seed))
	var kept []graph.Edge
	for v := int32(0); v < int32(g.NV()); v++ {
		for _, u := range g.NeighborsOfV(v) {
			if rng.Float64() < frac {
				kept = append(kept, graph.Edge{U: u, V: v})
			}
		}
	}
	ng, err := graph.FromEdges(g.NU(), g.NV(), kept)
	if err != nil {
		panic(err)
	}
	pm := g.Meta()
	return ng.WithMeta(graph.Meta{
		Generator: GenSample,
		Seed:      seed,
		Params: fmt.Sprintf("frac=%s parent.gen=%s parent.seed=%d parent.params=%q",
			formatFloat(frac), pm.Generator, pm.Seed, pm.Params),
	})
}

// formatFloat renders a float so that ParseFloat round-trips it exactly.
func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// FromMeta rebuilds the exact graph described by m — same generator, seed
// and parameters, hence byte-for-byte identical edges. It is the replay
// half of the self-seeding contract: a failing test needs to persist only
// the three Meta fields to make the input reproducible.
func FromMeta(m graph.Meta) (*graph.Bipartite, error) {
	kv, err := parseParams(m.Params)
	if err != nil {
		return nil, fmt.Errorf("gen: meta params %q: %w", m.Params, err)
	}
	switch m.Generator {
	case GenUniform:
		nu, nv, me, err := kv.ints("nu", "nv", "m")
		if err != nil {
			return nil, err
		}
		return Uniform(m.Seed, nu, nv, me), nil
	case GenPowerLaw:
		nu, nv, me, err := kv.ints("nu", "nv", "m")
		if err != nil {
			return nil, err
		}
		su, err := kv.float("su")
		if err != nil {
			return nil, err
		}
		sv, err := kv.float("sv")
		if err != nil {
			return nil, err
		}
		return PowerLaw(m.Seed, nu, nv, me, su, sv), nil
	case GenAffiliation:
		nu, nv, c, err := kv.ints("nu", "nv", "c")
		if err != nil {
			return nil, err
		}
		mu, mv, noise, err := kv.ints("mu", "mv", "noise")
		if err != nil {
			return nil, err
		}
		density, err := kv.float("density")
		if err != nil {
			return nil, err
		}
		return Affiliation(m.Seed, AffiliationConfig{
			NU: nu, NV: nv, Communities: c, MeanU: mu, MeanV: mv,
			Density: density, NoiseEdges: noise,
		}), nil
	case GenSample:
		pg, ok := kv["parent.gen"]
		if !ok || pg == "" {
			return nil, fmt.Errorf("gen: sample meta has no replayable parent")
		}
		pseed, err := strconv.ParseInt(kv["parent.seed"], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("gen: sample parent.seed: %w", err)
		}
		pparams, err := strconv.Unquote(kv["parent.params"])
		if err != nil {
			return nil, fmt.Errorf("gen: sample parent.params: %w", err)
		}
		parent, err := FromMeta(graph.Meta{Generator: pg, Seed: pseed, Params: pparams})
		if err != nil {
			return nil, err
		}
		frac, err := kv.float("frac")
		if err != nil {
			return nil, err
		}
		return SampleEdges(parent, frac, m.Seed), nil
	default:
		return nil, fmt.Errorf("gen: unknown generator %q", m.Generator)
	}
}

// params is the parsed key=value form of a Meta.Params string.
type params map[string]string

// parseParams splits "k=v k=v ..." honouring quoted values (parent.params).
func parseParams(s string) (params, error) {
	kv := make(params)
	for len(s) > 0 {
		s = strings.TrimLeft(s, " ")
		if s == "" {
			break
		}
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("malformed at %q", s)
		}
		key := s[:eq]
		rest := s[eq+1:]
		var val string
		if strings.HasPrefix(rest, `"`) {
			// Quoted value: find the closing unescaped quote.
			i := 1
			for i < len(rest) {
				if rest[i] == '\\' {
					i += 2
					continue
				}
				if rest[i] == '"' {
					break
				}
				i++
			}
			if i >= len(rest) {
				return nil, fmt.Errorf("unterminated quote in %q", rest)
			}
			val = rest[:i+1]
			s = rest[i+1:]
		} else {
			sp := strings.IndexByte(rest, ' ')
			if sp < 0 {
				val, s = rest, ""
			} else {
				val, s = rest[:sp], rest[sp:]
			}
		}
		kv[key] = val
	}
	return kv, nil
}

func (p params) ints(keys ...string) (int, int, int, error) {
	var out [3]int
	for i, k := range keys {
		v, ok := p[k]
		if !ok {
			return 0, 0, 0, fmt.Errorf("gen: missing param %q", k)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("gen: param %q: %w", k, err)
		}
		out[i] = n
	}
	return out[0], out[1], out[2], nil
}

func (p params) float(key string) (float64, error) {
	v, ok := p[key]
	if !ok {
		return 0, fmt.Errorf("gen: missing param %q", key)
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("gen: param %q: %w", key, err)
	}
	return f, nil
}
