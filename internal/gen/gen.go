// Package gen produces the synthetic bipartite graphs used as stand-ins
// for the paper's KONECT datasets (offline environment — see DESIGN.md's
// substitution table). Three structural families cover the dataset
// categories in Table I, plus the edge-sampling protocol behind Table II:
//
//   - Uniform: Erdős–Rényi-style background graphs.
//   - PowerLaw: Zipf-skewed degree distributions on both sides, matching
//     the heavy-tailed shape of KONECT feature/authorship graphs.
//   - Affiliation: planted overlapping communities (dense blocks), the
//     structure that makes membership/rating graphs (YouTube, GitHub,
//     BookCrossing) explode with maximal bicliques.
//   - SampleEdges: uniform edge sampling from a parent graph, the exact
//     protocol the paper applies to LiveJournal for LJ10–LJ50.
//
// All generators are deterministic in their seed.
package gen

import (
	"math/rand"

	"repro/internal/graph"
)

// Uniform returns a graph with nu×nv vertices and ~m uniformly random
// edges (duplicates collapse, so the realized |E| may be slightly lower).
func Uniform(seed int64, nu, nv, m int) *graph.Bipartite {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{U: int32(rng.Intn(nu)), V: int32(rng.Intn(nv))}
	}
	g, err := graph.FromEdges(nu, nv, edges)
	if err != nil {
		panic(err) // endpoints are in range by construction
	}
	return g
}

// PowerLaw returns a graph with ~m edges whose endpoints are drawn from
// Zipf distributions with exponents sU, sV (> 1; larger = more skewed).
// Vertex identities are permuted so high-degree hubs are not clustered at
// low ids.
func PowerLaw(seed int64, nu, nv, m int, sU, sV float64) *graph.Bipartite {
	rng := rand.New(rand.NewSource(seed))
	zu := rand.NewZipf(rng, sU, 1, uint64(nu-1))
	zv := rand.NewZipf(rng, sV, 1, uint64(nv-1))
	permU := rng.Perm(nu)
	permV := rng.Perm(nv)
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			U: int32(permU[zu.Uint64()]),
			V: int32(permV[zv.Uint64()]),
		}
	}
	g, err := graph.FromEdges(nu, nv, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// AffiliationConfig parameterizes the planted-community generator.
type AffiliationConfig struct {
	NU, NV      int     // side sizes
	Communities int     // number of planted communities
	MeanU       int     // mean U-side community size (≥1)
	MeanV       int     // mean V-side community size (≥1)
	Density     float64 // within-community edge probability (0,1]
	NoiseEdges  int     // uniform background edges added on top
}

// Affiliation returns a graph of overlapping dense blocks: each community
// picks random member sets on both sides and connects them with the given
// density. Overlapping memberships make the maximal-biclique count grow
// combinatorially, reproducing the paper's hardest dataset regimes.
func Affiliation(seed int64, cfg AffiliationConfig) *graph.Bipartite {
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	sizeAround := func(mean int) int {
		if mean <= 1 {
			return 1
		}
		// Geometric-ish spread around the mean, at least 1.
		s := 1 + rng.Intn(2*mean-1)
		return s
	}
	for c := 0; c < cfg.Communities; c++ {
		su, sv := sizeAround(cfg.MeanU), sizeAround(cfg.MeanV)
		us := make([]int32, su)
		for i := range us {
			us[i] = int32(rng.Intn(cfg.NU))
		}
		vs := make([]int32, sv)
		for i := range vs {
			vs[i] = int32(rng.Intn(cfg.NV))
		}
		for _, u := range us {
			for _, v := range vs {
				if cfg.Density >= 1 || rng.Float64() < cfg.Density {
					edges = append(edges, graph.Edge{U: u, V: v})
				}
			}
		}
	}
	for i := 0; i < cfg.NoiseEdges; i++ {
		edges = append(edges, graph.Edge{
			U: int32(rng.Intn(cfg.NU)),
			V: int32(rng.Intn(cfg.NV)),
		})
	}
	g, err := graph.FromEdges(cfg.NU, cfg.NV, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// SampleEdges returns a graph over the same vertex sets containing each
// edge of g independently with probability frac — the paper's LiveJournal
// sampling protocol ("LJx represents x% of LiveJournal's edges are used").
func SampleEdges(g *graph.Bipartite, frac float64, seed int64) *graph.Bipartite {
	rng := rand.New(rand.NewSource(seed))
	var kept []graph.Edge
	for v := int32(0); v < int32(g.NV()); v++ {
		for _, u := range g.NeighborsOfV(v) {
			if rng.Float64() < frac {
				kept = append(kept, graph.Edge{U: u, V: v})
			}
		}
	}
	ng, err := graph.FromEdges(g.NU(), g.NV(), kept)
	if err != nil {
		panic(err)
	}
	return ng
}
