package svgplot

import (
	"bytes"
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

// wellFormed parses the output as XML — catches unbalanced tags and
// unescaped content.
func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, svg[:min(len(svg), 400)])
		}
	}
}

func TestGroupedBars(t *testing.T) {
	var buf bytes.Buffer
	err := GroupedBars(&buf, "Fig. 8a <runtime>", "seconds",
		[]string{"UL", "UF"}, []Series{
			{Name: "AdaMBE", Values: []float64{0.1, 0.2}},
			{Name: "FMBE", Values: []float64{1.5, 0}},
		}, true)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wellFormed(t, out)
	if !strings.Contains(out, "Fig. 8a &lt;runtime&gt;") {
		t.Fatal("title not escaped")
	}
	if strings.Count(out, "<rect") < 3 { // background + ≥3 bars... one value is 0/TLE
		t.Fatalf("too few rects:\n%s", out)
	}
	if !strings.Contains(out, "×") {
		t.Fatal("missing TLE marker for zero value on log axis")
	}
	if !strings.Contains(out, "AdaMBE") || !strings.Contains(out, "FMBE") {
		t.Fatal("legend missing")
	}
}

func TestLines(t *testing.T) {
	var buf bytes.Buffer
	err := Lines(&buf, "Fig. 11", "tau", "seconds",
		[]float64{4, 8, 16, 32, 64},
		[]Series{{Name: "BX", Values: []float64{22, 19, 11, 7, 1.5}}},
		true, true)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wellFormed(t, out)
	if !strings.Contains(out, "<polyline") {
		t.Fatal("no polyline")
	}
	if strings.Count(out, "<circle") != 5 {
		t.Fatalf("want 5 markers, got %d", strings.Count(out, "<circle"))
	}
}

func TestStackedPercent(t *testing.T) {
	var buf bytes.Buffer
	err := StackedPercent(&buf, "Fig. 5", "% of accesses", []string{"UL", "UF", "empty"}, []Series{
		{Name: "inside", Values: []float64{30, 10, 0}},
		{Name: "outside", Values: []float64{70, 90, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wellFormed(t, out)
	// background + 2 categories × 2 segments (the all-zero category draws
	// nothing) + 2 legend swatches.
	if strings.Count(out, "<rect") != 1+4+2 {
		t.Fatalf("rect count = %d", strings.Count(out, "<rect"))
	}
}

func TestHeatmap(t *testing.T) {
	var buf bytes.Buffer
	err := Heatmap(&buf, "Fig. 4", "|C| bucket", "|L| bucket",
		[]string{"1", "2"}, []string{"1", "2", "4"},
		[][]float64{{50, 3, 0}, {10, 0, 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wellFormed(t, out)
	if strings.Count(out, "<rect") != 1+6 { // background + 6 cells (no legend)
		t.Fatalf("rect count = %d", strings.Count(out, "<rect"))
	}
}

func TestAxisLinearAndLog(t *testing.T) {
	lin := newAxis([]float64{0.5, 9}, false)
	if lin.min != 0 || lin.max <= 9 {
		t.Fatalf("linear axis: %+v", lin)
	}
	if y0, y9 := lin.y(0), lin.y(9); y0 <= y9 {
		t.Fatal("linear axis not decreasing in pixel space")
	}
	lg := newAxis([]float64{0.5, 90}, true)
	if lg.min != 0.1 || lg.max != 100 {
		t.Fatalf("log axis bounds: %+v", lg)
	}
	ticks := lg.ticks()
	if len(ticks) != 4 { // 0.1, 1, 10, 100
		t.Fatalf("log ticks: %v", ticks)
	}
	// Clamping.
	if lg.y(1e9) != float64(marginT) {
		t.Fatal("overflow not clamped to top")
	}
	if lg.y(-5) != float64(marginT+plotH) {
		t.Fatal("non-positive not clamped to bottom on log axis")
	}
}

func TestAxisDegenerate(t *testing.T) {
	a := newAxis(nil, true)
	if math.IsNaN(a.y(1)) {
		t.Fatal("NaN from empty axis")
	}
	b := newAxis([]float64{0, 0}, false)
	if math.IsNaN(b.y(0)) {
		t.Fatal("NaN from all-zero axis")
	}
}

func TestNiceStep(t *testing.T) {
	cases := map[float64]float64{10: 2, 100: 20, 7: 1, 35: 5, 0.5: 0.1}
	for span, want := range cases {
		if got := niceStep(span); math.Abs(got-want) > 1e-9 {
			t.Fatalf("niceStep(%g) = %g, want %g", span, got, want)
		}
	}
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{0: "0", 1500000: "2M", 2000: "2k", 2.5: "2.5", 0.01: "0.01"}
	for v, want := range cases {
		if got := fmtTick(v); got != want {
			t.Fatalf("fmtTick(%g) = %q, want %q", v, got, want)
		}
	}
}
