// Package svgplot renders the small family of charts the paper's figures
// use — grouped bars, multi-series lines, stacked percentage bars and a
// heatmap — as self-contained SVG, with optional log axes. It is the
// equivalent of the original artifact's fig/ plotting scripts, with no
// dependencies.
package svgplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named sequence of Y values over the shared X categories
// or positions of a chart.
type Series struct {
	Name   string
	Values []float64
}

// palette is a color-blind-safe cycle.
var palette = []string{
	"#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377",
	"#bbbbbb", "#000000",
}

const (
	chartW   = 760
	chartH   = 420
	marginL  = 70
	marginR  = 20
	marginT  = 40
	marginB  = 84
	plotW    = chartW - marginL - marginR
	plotH    = chartH - marginT - marginB
	fontFace = "font-family=\"Helvetica,Arial,sans-serif\""
)

type svgBuilder struct {
	strings.Builder
}

func (b *svgBuilder) open(title string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		chartW, chartH, chartW, chartH)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", chartW, chartH)
	fmt.Fprintf(b, `<text x="%d" y="24" text-anchor="middle" font-size="16" %s>%s</text>`+"\n",
		chartW/2, fontFace, escape(title))
}

func (b *svgBuilder) close() { b.WriteString("</svg>\n") }

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// axis maps data values into plot-pixel Y coordinates, linearly or
// logarithmically.
type axis struct {
	min, max float64
	log      bool
}

func newAxis(values []float64, logScale bool) axis {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if logScale && v <= 0 {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) { // no usable values
		if logScale {
			return axis{min: 0.1, max: 1, log: true}
		}
		lo, hi = 0, 1
	}
	if logScale {
		lo = math.Pow(10, math.Floor(math.Log10(lo)))
		hi = math.Pow(10, math.Ceil(math.Log10(hi)))
		if lo == hi {
			hi *= 10
		}
	} else {
		lo = 0
		if hi <= 0 {
			hi = 1
		}
		hi *= 1.05
	}
	return axis{min: lo, max: hi, log: logScale}
}

// y maps a value to a pixel Y (top of plot = max).
func (a axis) y(v float64) float64 {
	var frac float64
	if a.log {
		if v <= 0 {
			v = a.min
		}
		frac = (math.Log10(v) - math.Log10(a.min)) / (math.Log10(a.max) - math.Log10(a.min))
	} else {
		frac = (v - a.min) / (a.max - a.min)
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return float64(marginT) + float64(plotH)*(1-frac)
}

// ticks returns tick values for the axis.
func (a axis) ticks() []float64 {
	var out []float64
	if a.log {
		for v := a.min; v <= a.max*1.0001; v *= 10 {
			out = append(out, v)
		}
		return out
	}
	step := niceStep(a.max - a.min)
	for v := a.min; v <= a.max+step/2; v += step {
		out = append(out, v)
	}
	return out
}

func niceStep(span float64) float64 {
	raw := span / 5
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	switch {
	case raw/mag < 1.5:
		return mag
	case raw/mag < 3.5:
		return 2 * mag
	case raw/mag < 7.5:
		return 5 * mag
	default:
		return 10 * mag
	}
}

func fmtTick(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("%.0fM", v/1e6)
	case math.Abs(v) >= 1e3:
		return fmt.Sprintf("%.0fk", v/1e3)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func (b *svgBuilder) yAxis(a axis, label string) {
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, marginT+plotH)
	for _, tv := range a.ticks() {
		y := a.y(tv)
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`+"\n",
			marginL, y, marginL+plotW, y)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" text-anchor="end" font-size="11" %s>%s</text>`+"\n",
			marginL-6, y+4, fontFace, fmtTick(tv))
	}
	fmt.Fprintf(b, `<text x="16" y="%d" text-anchor="middle" font-size="12" %s transform="rotate(-90 16 %d)">%s</text>`+"\n",
		marginT+plotH/2, fontFace, marginT+plotH/2, escape(label))
}

func (b *svgBuilder) xCategoryLabels(cats []string) {
	n := len(cats)
	if n == 0 {
		return
	}
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	for i, c := range cats {
		x := float64(marginL) + (float64(i)+0.5)*float64(plotW)/float64(n)
		fmt.Fprintf(b, `<text x="%.1f" y="%d" text-anchor="end" font-size="11" %s transform="rotate(-40 %.1f %d)">%s</text>`+"\n",
			x, marginT+plotH+16, fontFace, x, marginT+plotH+16, escape(c))
	}
}

func (b *svgBuilder) legend(names []string) {
	x := marginL
	y := chartH - 14
	for i, name := range names {
		color := palette[i%len(palette)]
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`+"\n", x, y-10, color)
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="11" %s>%s</text>`+"\n", x+16, y, fontFace, escape(name))
		x += 16 + 8*len(name) + 24
	}
}

// GroupedBars renders one bar per (category, series) pair; zero or
// negative values are drawn as hatched "missing" markers when logY is set
// (the TLE convention in the figures).
func GroupedBars(w io.Writer, title, yLabel string, categories []string, series []Series, logY bool) error {
	var all []float64
	for _, s := range series {
		all = append(all, s.Values...)
	}
	a := newAxis(all, logY)
	var b svgBuilder
	b.open(title)
	b.yAxis(a, yLabel)
	b.xCategoryLabels(categories)
	nCat, nSer := len(categories), len(series)
	if nCat > 0 && nSer > 0 {
		groupW := float64(plotW) / float64(nCat)
		barW := groupW * 0.8 / float64(nSer)
		for si, s := range series {
			color := palette[si%len(palette)]
			for ci := 0; ci < nCat && ci < len(s.Values); ci++ {
				v := s.Values[ci]
				x := float64(marginL) + float64(ci)*groupW + groupW*0.1 + float64(si)*barW
				if logY && v <= 0 {
					// Missing / TLE marker.
					fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="9" %s fill="%s">×</text>`+"\n",
						x, float64(marginT+plotH-3), fontFace, color)
					continue
				}
				y := a.y(v)
				fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
					x, y, barW, float64(marginT+plotH)-y, color)
			}
		}
	}
	names := make([]string, nSer)
	for i, s := range series {
		names[i] = s.Name
	}
	b.legend(names)
	b.close()
	_, err := io.WriteString(w, b.String())
	return err
}

// Lines renders one polyline per series over shared numeric X positions.
func Lines(w io.Writer, title, xLabel, yLabel string, xs []float64, series []Series, logX, logY bool) error {
	var all []float64
	for _, s := range series {
		all = append(all, s.Values...)
	}
	a := newAxis(all, logY)
	xa := newAxis(xs, logX)
	xpos := func(v float64) float64 {
		var frac float64
		if logX {
			frac = (math.Log10(v) - math.Log10(xa.min)) / (math.Log10(xa.max) - math.Log10(xa.min))
		} else {
			span := xa.max - xa.min
			if span == 0 {
				span = 1
			}
			frac = (v - xa.min) / span
		}
		return float64(marginL) + frac*float64(plotW)
	}
	var b svgBuilder
	b.open(title)
	b.yAxis(a, yLabel)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	for _, xv := range xs {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" font-size="11" %s>%s</text>`+"\n",
			xpos(xv), marginT+plotH+16, fontFace, fmtTick(xv))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" font-size="12" %s>%s</text>`+"\n",
		marginL+plotW/2, marginT+plotH+38, fontFace, escape(xLabel))
	for si, s := range series {
		color := palette[si%len(palette)]
		var pts []string
		for i := 0; i < len(xs) && i < len(s.Values); i++ {
			if logY && s.Values[i] <= 0 {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xpos(xs[i]), a.y(s.Values[i])))
		}
		if len(pts) > 0 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
				strings.Join(pts, " "), color)
			for _, p := range pts {
				xy := strings.Split(p, ",")
				fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="3" fill="%s"/>`+"\n", xy[0], xy[1], color)
			}
		}
	}
	names := make([]string, len(series))
	for i, s := range series {
		names[i] = s.Name
	}
	b.legend(names)
	b.close()
	_, err := io.WriteString(w, b.String())
	return err
}

// StackedPercent renders 100%-stacked bars (e.g. Fig. 5's inside/outside
// access split, or the worker-utilization timeline). Each series
// contributes its share of the per-category total.
func StackedPercent(w io.Writer, title, yLabel string, categories []string, series []Series) error {
	var b svgBuilder
	b.open(title)
	a := axis{min: 0, max: 100}
	b.yAxis(a, yLabel)
	b.xCategoryLabels(categories)
	nCat := len(categories)
	if nCat > 0 {
		groupW := float64(plotW) / float64(nCat)
		for ci := 0; ci < nCat; ci++ {
			total := 0.0
			for _, s := range series {
				if ci < len(s.Values) {
					total += s.Values[ci]
				}
			}
			if total <= 0 {
				continue
			}
			yBase := float64(marginT + plotH)
			for si, s := range series {
				if ci >= len(s.Values) {
					continue
				}
				frac := s.Values[ci] / total * 100
				h := float64(plotH) * frac / 100
				x := float64(marginL) + float64(ci)*groupW + groupW*0.15
				fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
					x, yBase-h, groupW*0.7, h, palette[si%len(palette)])
				yBase -= h
			}
		}
	}
	names := make([]string, len(series))
	for i, s := range series {
		names[i] = s.Name
	}
	b.legend(names)
	b.close()
	_, err := io.WriteString(w, b.String())
	return err
}

// Heatmap renders a matrix of shares (Fig. 4's CG-size distribution):
// cell [r][c] colored by value relative to the matrix maximum.
func Heatmap(w io.Writer, title, xLabel, yLabel string, rows, cols []string, cells [][]float64) error {
	var b svgBuilder
	b.open(title)
	maxV := 0.0
	for _, row := range cells {
		for _, v := range row {
			maxV = math.Max(maxV, v)
		}
	}
	nR, nC := len(rows), len(cols)
	if nR > 0 && nC > 0 {
		cw := float64(plotW) / float64(nC)
		ch := float64(plotH) / float64(nR)
		for r := 0; r < nR; r++ {
			for c := 0; c < nC; c++ {
				v := 0.0
				if r < len(cells) && c < len(cells[r]) {
					v = cells[r][c]
				}
				frac := 0.0
				if maxV > 0 {
					frac = v / maxV
				}
				// White → deep blue.
				shade := int(255 - frac*200)
				x := float64(marginL) + float64(c)*cw
				y := float64(marginT) + float64(r)*ch
				fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="rgb(%d,%d,255)" stroke="#eeeeee"/>`+"\n",
					x, y, cw, ch, shade, shade)
				if v > 0 && frac > 0.02 {
					fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle" font-size="9" %s>%s</text>`+"\n",
						x+cw/2, y+ch/2+3, fontFace, fmtTick(v))
				}
			}
		}
		for r, name := range rows {
			fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" font-size="10" %s>%s</text>`+"\n",
				marginL-6, float64(marginT)+(float64(r)+0.5)*ch+3, fontFace, escape(name))
		}
		for c, name := range cols {
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" font-size="10" %s>%s</text>`+"\n",
				float64(marginL)+(float64(c)+0.5)*cw, marginT+plotH+14, fontFace, escape(name))
		}
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" font-size="12" %s>%s</text>`+"\n",
		marginL+plotW/2, marginT+plotH+34, fontFace, escape(xLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" text-anchor="middle" font-size="12" %s transform="rotate(-90 16 %d)">%s</text>`+"\n",
		marginT+plotH/2, fontFace, marginT+plotH/2, escape(yLabel))
	b.close()
	_, err := io.WriteString(w, b.String())
	return err
}
