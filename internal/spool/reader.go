package spool

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// LoadMeta reads and decodes the spool's meta file.
func LoadMeta(dir string) (Meta, error) {
	var m Meta
	blob, err := os.ReadFile(filepath.Join(dir, MetaFile))
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(blob, &m); err != nil {
		return m, fmt.Errorf("spool: %s: %w", MetaFile, err)
	}
	if m.Shards < 1 {
		return m, fmt.Errorf("spool: %s: shards = %d", MetaFile, m.Shards)
	}
	return m, nil
}

// ShardState is the verification result for one shard: how much of the
// file is a valid frame sequence and what, if anything, is wrong with
// the tail. ValidBytes < SizeBytes with a non-empty Tail is the
// signature of a crash mid-write — everything before ValidBytes is
// intact and recoverable.
type ShardState struct {
	Index      int    `json:"index"`
	Path       string `json:"path"`
	SizeBytes  int64  `json:"size_bytes"`
	ValidBytes int64  `json:"valid_bytes"`
	Frames     int64  `json:"frames"`
	Records    int64  `json:"records"`
	Tail       string `json:"tail,omitempty"` // "" when the shard ends cleanly
}

// Replay streams every record in the valid prefix of every shard to fn
// (shard order, frame order within a shard; fn may be nil to only
// verify). Format corruption is not an error — it is reported in the
// shard's Tail and scanning of that shard stops at the last good
// frame. The error return is reserved for I/O failures and a missing
// or malformed meta file.
func Replay(dir string, fn func(root int32, L, R []int32)) ([]ShardState, error) {
	meta, err := LoadMeta(dir)
	if err != nil {
		return nil, err
	}
	states := make([]ShardState, 0, meta.Shards)
	for i := 0; i < meta.Shards; i++ {
		st, err := replayShard(dir, i, fn)
		if err != nil {
			return states, err
		}
		states = append(states, st)
	}
	return states, nil
}

// Verify is Replay without a record consumer: it still decodes every
// frame (CRC and record-structure checks), reporting per-shard state.
func Verify(dir string) ([]ShardState, error) { return Replay(dir, nil) }

// Clean returns nil when every shard ends at a frame boundary with no
// tail corruption, else an error naming the first dirty shard.
func Clean(states []ShardState) error {
	for _, st := range states {
		if st.Tail != "" {
			return fmt.Errorf("spool: %s: %s (valid prefix %d of %d bytes)",
				st.Path, st.Tail, st.ValidBytes, st.SizeBytes)
		}
	}
	return nil
}

func replayShard(dir string, idx int, fn func(root int32, L, R []int32)) (ShardState, error) {
	st := ShardState{Index: idx, Path: filepath.Join(dir, ShardName(idx))}
	f, err := os.Open(st.Path)
	if err != nil {
		if os.IsNotExist(err) {
			// A crash between meta creation and shard creation, or a
			// shard deleted out from under us: treat as empty-with-tail
			// rather than a hard error so Verify can report it.
			st.Tail = "missing shard file"
			return st, nil
		}
		return st, err
	}
	defer f.Close()
	if info, err := f.Stat(); err == nil {
		st.SizeBytes = info.Size()
	}
	frames, records, valid, tailErr, ioErr := scanFrames(bufio.NewReaderSize(f, 1<<20), fn)
	st.Frames, st.Records, st.ValidBytes = frames, records, valid
	if tailErr != nil {
		st.Tail = tailErr.Error()
	}
	return st, ioErr
}

// scanFrames walks a frame sequence, streaming records to fn (which may
// be nil). It returns the frame/record counts and byte length of the
// valid prefix, a tail error describing why scanning stopped short (nil
// for a clean end), and an I/O error for real read failures.
//
// This is the function the fuzz target drives: for arbitrary input it
// must never panic and never allocate beyond the frame bound.
func scanFrames(br *bufio.Reader, fn func(root int32, L, R []int32)) (frames, records, validBytes int64, tailErr, ioErr error) {
	var (
		hdr     [frameHeaderSize]byte
		stored  []byte
		raw     []byte
		l, r    []int32
		flateRd io.ReadCloser
	)
	emit := func(root int32, L, R []int32) {
		records++
		if fn != nil {
			fn(root, L, R)
		}
	}
	for {
		if _, err := io.ReadFull(br, hdr[:1]); err != nil {
			if err == io.EOF {
				return frames, records, validBytes, nil, nil // clean end
			}
			return frames, records, validBytes, nil, err
		}
		if _, err := io.ReadFull(br, hdr[1:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return frames, records, validBytes, fmt.Errorf("%w: partial header", errTruncated), nil
			}
			return frames, records, validBytes, nil, err
		}
		if !bytes.Equal(hdr[:4], frameMagic) {
			return frames, records, validBytes, errBadMagic, nil
		}
		flags := hdr[4]
		if flags&^byte(flagCompressed) != 0 {
			return frames, records, validBytes, fmt.Errorf("spool: unknown frame flags %#02x", flags), nil
		}
		plen := binary.LittleEndian.Uint32(hdr[5:9])
		if plen > MaxFramePayload {
			return frames, records, validBytes, errTooLarge, nil
		}
		wantCRC := binary.LittleEndian.Uint32(hdr[9:13])

		if cap(stored) < int(plen) {
			stored = make([]byte, plen)
		}
		stored = stored[:plen]
		if _, err := io.ReadFull(br, stored); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return frames, records, validBytes, fmt.Errorf("%w: payload cut short", errTruncated), nil
			}
			return frames, records, validBytes, nil, err
		}
		if crc32.Checksum(stored, crcTable) != wantCRC {
			return frames, records, validBytes, errBadCRC, nil
		}

		payload := stored
		if flags&flagCompressed != 0 {
			var err error
			raw, flateRd, err = inflate(raw, stored, flateRd)
			if err != nil {
				return frames, records, validBytes, err, nil
			}
			payload = raw
		}
		var err error
		l, r, err = decodePayload(payload, l, r, emit)
		if err != nil {
			return frames, records, validBytes, err, nil
		}
		frames++
		validBytes += int64(frameHeaderSize) + int64(plen)
	}
}

// inflate decompresses stored into dst (reused across frames), bounding
// the output at MaxFramePayload so a corrupt-but-CRC-valid frame (or a
// fuzz input) cannot balloon memory.
func inflate(dst, stored []byte, rd io.ReadCloser) ([]byte, io.ReadCloser, error) {
	src := bytes.NewReader(stored)
	if rd == nil {
		rd = flate.NewReader(src)
	} else if err := rd.(flate.Resetter).Reset(src, nil); err != nil {
		return dst, rd, err
	}
	dst = dst[:0]
	if cap(dst) == 0 {
		dst = make([]byte, 0, 64<<10)
	}
	var chunk [32 << 10]byte
	for {
		n, err := rd.Read(chunk[:])
		if len(dst)+n > MaxFramePayload {
			return dst, rd, errTooLarge
		}
		dst = append(dst, chunk[:n]...)
		if err == io.EOF {
			return dst, rd, nil
		}
		if err != nil {
			return dst, rd, fmt.Errorf("%w: %v", errBadPayload, err)
		}
	}
}

// TotalRecords sums the record counts of a verification result.
func TotalRecords(states []ShardState) int64 {
	var n int64
	for _, st := range states {
		n += st.Records
	}
	return n
}

// ErrNotSpool reports a directory without a spool meta file.
var ErrNotSpool = errors.New("spool: no spool.json in directory")

// IsSpool checks whether dir looks like a spool directory.
func IsSpool(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, MetaFile))
	return err == nil
}
