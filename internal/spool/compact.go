package spool

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// CompactBelow rewrites every shard in place, keeping only records
// whose root satisfies keep (nil keeps everything) and discarding any
// corrupt tail. Each shard is rewritten to a temp file that is fsynced
// and renamed over the original, so a crash mid-compaction leaves
// either the old shard or the new one — never a mix.
//
// This is the first step of a resume: the checkpoint watermark W
// promises every root < W is completely enumerated, but under
// unordered sharded emission the durable prefix also interleaves
// partial output from roots ≥ W that were in flight at the crash.
// Compacting with keep = (root < W) deletes exactly those partial
// subtrees; re-enumerating from W then reproduces them in full, with
// zero duplicates.
func CompactBelow(dir string, keep func(root int32) bool) error {
	meta, err := LoadMeta(dir)
	if err != nil {
		return err
	}
	for i := 0; i < meta.Shards; i++ {
		if err := compactShard(dir, i, meta, keep); err != nil {
			return err
		}
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

func compactShard(dir string, idx int, meta Meta, keep func(int32) bool) error {
	dst := filepath.Join(dir, ShardName(idx))
	tmp, err := os.CreateTemp(dir, ShardName(idx)+".compact*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	abort := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}

	bw := bufio.NewWriterSize(tmp, 1<<20)
	enc := newFrameEncoder(bw, meta.Compress, meta.FrameBytes)
	_, err = replayShard(dir, idx, func(root int32, L, R []int32) {
		if keep == nil || keep(root) {
			enc.add(root, L, R)
		}
	})
	if err != nil {
		return abort(err)
	}
	if err := enc.flush(); err != nil {
		return abort(err)
	}
	if err := bw.Flush(); err != nil {
		return abort(err)
	}
	if err := tmp.Sync(); err != nil {
		return abort(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, dst); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// frameEncoder re-frames a record stream: the compaction-side twin of
// shardWriter, minus the concurrency, fault-injection, and stats
// concerns of the live write path. Records arrive pre-sorted (they come
// from the decoder, which enforces strictly ascending sides).
type frameEncoder struct {
	w        io.Writer
	target   int
	recBuf   []byte
	nrec     uint64
	prevRoot int32
	frameBuf []byte
	flateW   *flate.Writer
	flateBuf bytes.Buffer
	err      error
}

func newFrameEncoder(w io.Writer, compress bool, frameBytes int) *frameEncoder {
	e := &frameEncoder{w: w, target: frameBytes}
	if e.target <= 0 {
		e.target = DefaultFrameBytes
	}
	if compress {
		e.flateW, _ = flate.NewWriter(io.Discard, flate.BestSpeed)
	}
	return e
}

func (e *frameEncoder) add(root int32, L, R []int32) {
	if e.err != nil {
		return
	}
	e.recBuf = appendRecord(e.recBuf, root-e.prevRoot, L, R)
	e.prevRoot = root
	e.nrec++
	if len(e.recBuf) >= e.target {
		e.err = e.flush()
	}
}

func (e *frameEncoder) flush() error {
	if e.err != nil {
		return e.err
	}
	if e.nrec == 0 {
		return nil
	}
	payload := binary.AppendUvarint(e.frameBuf[:0], e.nrec)
	payload = append(payload, e.recBuf...)
	e.frameBuf = payload

	stored := payload
	flags := byte(0)
	if e.flateW != nil {
		e.flateBuf.Reset()
		e.flateW.Reset(&e.flateBuf)
		if _, err := e.flateW.Write(payload); err == nil && e.flateW.Close() == nil {
			if e.flateBuf.Len() < len(payload) {
				stored = e.flateBuf.Bytes()
				flags = flagCompressed
			}
		}
	}

	var hdr [frameHeaderSize]byte
	copy(hdr[:4], frameMagic)
	hdr[4] = flags
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(stored)))
	binary.LittleEndian.PutUint32(hdr[9:13], crc32.Checksum(stored, crcTable))
	if err := writeFull(e.w, hdr[:]); err != nil {
		return err
	}
	if err := writeFull(e.w, stored); err != nil {
		return err
	}
	e.recBuf = e.recBuf[:0]
	e.nrec = 0
	e.prevRoot = 0
	return nil
}
