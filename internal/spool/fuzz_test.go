package spool

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"slices"
	"testing"
)

// FuzzSpoolFrame drives the frame scanner — the exact code that parses
// untrusted bytes on every resume and every `mbe cat` — with arbitrary
// input. The invariants: never panic, never report more valid bytes
// than exist, and only ever deliver well-formed records (non-empty,
// strictly ascending sides). Allocation is bounded by construction
// (payload length is capped and side lengths are validated against the
// remaining payload before allocating), so a run under the fuzzer's
// memory limit doubles as an over-allocation check.
func FuzzSpoolFrame(f *testing.F) {
	// Seed corpus: real shards produced by the writer (plain and
	// compressed), their truncations, and a bit-flipped variant — the
	// corpus starts on the format's happy path so mutation explores the
	// boundary instead of random noise.
	for _, compress := range []bool{false, true} {
		dir := f.TempDir()
		w, err := Create(dir, Meta{Version: 1, Ordering: "asc", Shards: 1, Compress: compress}, WriterOptions{TargetFrameBytes: 64})
		if err != nil {
			f.Fatal(err)
		}
		for i := int32(0); i < 64; i++ {
			w.Emit(0, i/3, []int32{i, i + 2, i + 40}, []int32{i % 7, i + 100})
		}
		if err := w.Close(); err != nil {
			f.Fatal(err)
		}
		blob, err := os.ReadFile(filepath.Join(dir, ShardName(0)))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
		f.Add(blob[:len(blob)/2])
		f.Add(blob[:frameHeaderSize-1])
		flipped := append([]byte(nil), blob...)
		flipped[len(flipped)/2] ^= 0x40
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte("MBS1"))
	// A header declaring a huge payload with nothing behind it.
	f.Add(append([]byte("MBS1\x00\xff\xff\xff\x00"), 0, 0, 0, 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		var records int64
		frames, nrec, valid, _, ioErr := scanFrames(bufio.NewReader(bytes.NewReader(data)), func(root int32, L, R []int32) {
			records++
			if len(L) == 0 || len(R) == 0 {
				t.Fatalf("empty side delivered: L=%v R=%v", L, R)
			}
			if !slices.IsSorted(L) || !slices.IsSorted(R) {
				t.Fatalf("unsorted side delivered: L=%v R=%v", L, R)
			}
		})
		if ioErr != nil {
			t.Fatalf("bytes.Reader cannot fail, got I/O error %v", ioErr)
		}
		if nrec != records {
			t.Fatalf("scanner counted %d records, delivered %d", nrec, records)
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(data))
		}
		if frames < 0 || (frames == 0 && nrec != 0) {
			t.Fatalf("records without frames: frames=%d records=%d", frames, nrec)
		}
	})
}

// TestFuzzSeedsParse keeps the happy-path seed honest outside fuzz
// mode: an intact writer-produced shard must scan cleanly end to end.
func TestFuzzSeedsParse(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Meta{Version: 1, Ordering: "asc", Shards: 1, Compress: true}, WriterOptions{TargetFrameBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 64; i++ {
		w.Emit(0, i, []int32{i}, []int32{i + 1})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, ShardName(0)))
	if err != nil {
		t.Fatal(err)
	}
	_, nrec, valid, tailErr, ioErr := scanFrames(bufio.NewReader(bytes.NewReader(blob)), nil)
	if tailErr != nil || ioErr != nil {
		t.Fatalf("clean shard reported tail=%v io=%v", tailErr, ioErr)
	}
	if nrec != 64 || valid != int64(len(blob)) {
		t.Fatalf("scanned %d records over %d bytes, want 64 over %d", nrec, valid, len(blob))
	}
}
