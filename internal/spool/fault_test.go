package spool

import (
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/faultinject"
)

// emitStream writes a fixed, deterministic record stream; used to
// produce byte-identical shards for the clean twin and the injured run.
func emitStream(w *Writer) {
	for i := int32(0); i < 300; i++ {
		w.Emit(0, i/5, []int32{i, i + 3}, []int32{i % 11, i + 50})
	}
}

// TestCrashAtFrame kills the shard writer mid-frame — in both failure
// modes of the injector — and checks the reader recovers exactly the
// frames written before the injury, that the writer's error is sticky,
// and that the error callback fires exactly once.
func TestCrashAtFrame(t *testing.T) {
	// Clean twin: learn the byte length and frame count of the stream.
	clean := t.TempDir()
	cw, err := Create(clean, testMeta(1, false), WriterOptions{TargetFrameBytes: 96})
	if err != nil {
		t.Fatal(err)
	}
	emitStream(cw)
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	cleanStates, err := Verify(clean)
	if err != nil || cleanStates[0].Tail != "" {
		t.Fatalf("clean twin dirty: %v %+v", err, cleanStates)
	}
	if cleanStates[0].Frames < 3 {
		t.Fatalf("need >= 3 frames for a mid-stream injury, got %d", cleanStates[0].Frames)
	}
	// Fail inside the last frame's payload (the header writes first, so
	// offset size-5 is always payload bytes).
	failAt := cleanStates[0].SizeBytes - 5

	for _, tc := range []struct {
		name  string
		short bool
	}{
		{"short-write-torn-frame", true},
		{"write-error", false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			var onErr atomic.Int32
			var fw *faultinject.FailingWriter
			w, err := Create(dir, testMeta(1, false), WriterOptions{
				TargetFrameBytes: 96,
				WrapShard: func(shard int, out io.Writer) io.Writer {
					fw = &faultinject.FailingWriter{W: out, FailAt: failAt, Short: tc.short}
					return fw
				},
				OnError: func(error) { onErr.Add(1) },
			})
			if err != nil {
				t.Fatal(err)
			}
			emitStream(w)
			if cerr := w.Close(); cerr == nil {
				t.Fatal("Close must surface the injected write failure")
			}
			if w.Err() == nil || !fw.Failed() {
				t.Fatal("writer error must be sticky after the injury")
			}
			if n := onErr.Load(); n != 1 {
				t.Fatalf("OnError fired %d times, want exactly 1", n)
			}
			// Post-failure emissions are silent no-ops: nothing new lands.
			before, _ := os.Stat(filepath.Join(dir, ShardName(0)))
			w.Emit(0, 999, []int32{1}, []int32{2})
			if _, serr := w.SyncAll(); serr == nil {
				t.Fatal("SyncAll after failure must return the sticky error")
			}
			after, _ := os.Stat(filepath.Join(dir, ShardName(0)))
			if before.Size() != after.Size() {
				t.Fatal("emissions after the failure must not reach the file")
			}

			// Recovery: every frame before the injured one reads back.
			states, verr := Verify(dir)
			if verr != nil {
				t.Fatal(verr)
			}
			if states[0].Frames != cleanStates[0].Frames-1 {
				t.Errorf("recovered %d frames, want %d", states[0].Frames, cleanStates[0].Frames-1)
			}
			if tc.short && states[0].Tail == "" {
				t.Error("a torn frame must be reported in the shard tail")
			}
			// The torn tail is droppable: compaction leaves a clean shard
			// holding exactly the recovered records.
			if err := CompactBelow(dir, nil); err != nil {
				t.Fatal(err)
			}
			recs, cstates := collect(t, dir)
			if err := Clean(cstates); err != nil {
				t.Fatalf("compaction must scrub the torn tail: %v", err)
			}
			if int64(len(recs)) != states[0].Records {
				t.Errorf("compaction kept %d records, want the %d recovered", len(recs), states[0].Records)
			}
		})
	}
}

// TestFailingWriterExactOffset pins the injector's byte accounting: the
// crossing write persists exactly FailAt bytes in short mode and none
// of its own bytes in error mode.
func TestFailingWriterExactOffset(t *testing.T) {
	var buf writeCounter
	fw := &faultinject.FailingWriter{W: &buf, FailAt: 10, Short: true}
	if n, err := fw.Write(make([]byte, 6)); n != 6 || err != nil {
		t.Fatalf("pre-fail write: n=%d err=%v", n, err)
	}
	if n, err := fw.Write(make([]byte, 6)); n != 4 || err == nil {
		t.Fatalf("crossing write: n=%d err=%v, want 4 bytes and an error", n, err)
	}
	if buf.n != 10 {
		t.Fatalf("underlying writer saw %d bytes, want exactly FailAt=10", buf.n)
	}
	if n, err := fw.Write([]byte{1}); n != 0 || err == nil {
		t.Fatalf("post-fail write: n=%d err=%v, want dead writer", n, err)
	}

	var buf2 writeCounter
	fw2 := &faultinject.FailingWriter{W: &buf2, FailAt: 10, Short: false}
	fw2.Write(make([]byte, 6))
	if n, err := fw2.Write(make([]byte, 6)); n != 0 || err == nil {
		t.Fatalf("error-mode crossing write: n=%d err=%v, want 0 and an error", n, err)
	}
	if buf2.n != 6 {
		t.Fatalf("error mode leaked %d bytes past the fail point", buf2.n-6)
	}
}

type writeCounter struct{ n int }

func (w *writeCounter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }
