// Package spool is the durable output path for enumeration runs: a
// sharded on-disk sink that streams maximal bicliques to append-only
// shard files as they are found, so a run interrupted by SIGINT, a
// deadline, or a memory-budget stop keeps everything it already
// enumerated instead of discarding hours of work with the process.
//
// Layout: a spool is a directory holding one JSON meta file
// (spool.json, written once at creation) and N shard files
// (shard-0000.mbs …), one per worker of the run that created it. Each
// worker appends to its own shard through a per-shard buffer, so the
// emission path takes no lock shared between workers — the same
// discipline as core's UnorderedEmit.
//
// Shard format: a shard is a sequence of self-contained frames. Each
// frame is a CRC32C-protected, optionally flate-compressed block of
// delta-encoded biclique records (see docs/DURABILITY.md for the
// byte-level layout). Frames are the durability and recovery unit: a
// torn tail — a partial header, truncated payload, or CRC mismatch
// left by a crash — is detected by the reader, which recovers every
// frame before it. Every record carries the root V-vertex of the
// enumeration subtree that produced it, which is what lets a resumed
// run (internal/ckpt) drop the partial output of incomplete subtrees
// exactly.
package spool

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/graph"
)

// Format constants. The frame header is fixed-size and byte-exact; see
// docs/DURABILITY.md for the normative layout.
const (
	// frameMagic starts every frame ("MBS1": Maximal Biclique Spool v1).
	frameMagicString = "MBS1"
	// frameHeaderSize = magic(4) + flags(1) + payloadLen(4) + crc(4).
	frameHeaderSize = 13
	// flagCompressed marks a flate-compressed payload.
	flagCompressed = 0x01

	// MaxFramePayload bounds a stored frame payload. The writer targets
	// frames far smaller; the bound exists so the decoder never trusts a
	// corrupt length field into a huge allocation.
	MaxFramePayload = 16 << 20

	// DefaultFrameBytes is the payload size at which a shard writer cuts
	// a frame: large enough to amortize the header, CRC and (optional)
	// compression over thousands of records, small enough that a crash
	// loses little and checkpoint flushes stay cheap.
	DefaultFrameBytes = 128 << 10

	// MetaFile and CheckpointFile are the well-known names inside a
	// spool directory. CheckpointFile is owned by internal/ckpt; it is
	// named here so the two packages agree.
	MetaFile       = "spool.json"
	CheckpointFile = "checkpoint.json"
)

var frameMagic = []byte(frameMagicString)

// crcTable is CRC32C (Castagnoli), the polynomial with hardware support
// on both amd64 and arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// FsyncMode selects the durability/throughput trade-off of the shard
// writers. The zero value is FsyncCheckpoint.
type FsyncMode uint8

const (
	// FsyncCheckpoint (the default) fsyncs shards only when a checkpoint
	// (or the final Sync) asks for durability: frames stream through the
	// page cache between checkpoints, and the checkpoint protocol
	// guarantees everything a checkpoint claims is on disk.
	FsyncCheckpoint FsyncMode = iota
	// FsyncNever leaves persistence entirely to the OS — no fsync is
	// ever issued, including at checkpoints. Checkpoints written in this
	// mode are advisory: an OS crash can invalidate them (an ordinary
	// process death cannot).
	FsyncNever
	// FsyncAlways fsyncs after every frame write. Maximal durability,
	// measurable cost on high-output runs.
	FsyncAlways
)

// String names the mode as used by the CLI -fsync flag.
func (m FsyncMode) String() string {
	switch m {
	case FsyncCheckpoint:
		return "checkpoint"
	case FsyncNever:
		return "never"
	case FsyncAlways:
		return "always"
	default:
		return fmt.Sprintf("FsyncMode(%d)", int(m))
	}
}

// ParseFsyncMode inverts String.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "checkpoint":
		return FsyncCheckpoint, nil
	case "never":
		return FsyncNever, nil
	case "always":
		return FsyncAlways, nil
	}
	return 0, fmt.Errorf("spool: unknown fsync mode %q (want never|checkpoint|always)", s)
}

// Meta is the spool's identity, written once to spool.json at creation.
// A resume must present a compatible Meta: the graph signature, ordering
// and ordering seed pin the root decomposition the checkpoint watermark
// is meaningful against (algorithm, τ and thread count may change across
// a resume — they alter the traversal strategy, not which biclique
// belongs to which root subtree).
type Meta struct {
	Version   int    `json:"version"`
	Tool      string `json:"tool,omitempty"`
	Algorithm string `json:"algorithm"`
	Ordering  string `json:"ordering"`
	OrderSeed int64  `json:"order_seed"`
	Tau       int    `json:"tau"`
	Shards    int    `json:"shards"`

	// Graph identity: sizes plus a degree-sequence hash. Cheap to
	// compute (O(|U|+|V|)) and collision-resistant enough to catch every
	// accidental graph mismatch on resume.
	NU         int    `json:"nu"`
	NV         int    `json:"nv"`
	Edges      int64  `json:"edges"`
	GraphHash  string `json:"graph_hash"`
	Compress   bool   `json:"compress"`
	CreatedAt  string `json:"created_at,omitempty"`
	FrameBytes int    `json:"frame_bytes,omitempty"`
}

// CompatibleResume reports whether a run described by want may append to
// a spool created with have, with a reason when it may not.
func CompatibleResume(have, want Meta) error {
	switch {
	case have.Version != want.Version:
		return fmt.Errorf("spool: version mismatch: spool v%d, run v%d", have.Version, want.Version)
	case have.NU != want.NU || have.NV != want.NV || have.Edges != want.Edges || have.GraphHash != want.GraphHash:
		return fmt.Errorf("spool: graph mismatch: spool %dx%d/%d (%s), run %dx%d/%d (%s)",
			have.NU, have.NV, have.Edges, have.GraphHash, want.NU, want.NV, want.Edges, want.GraphHash)
	case have.Ordering != want.Ordering || have.OrderSeed != want.OrderSeed:
		return fmt.Errorf("spool: ordering mismatch: spool %s/seed=%d, run %s/seed=%d — the checkpoint watermark is only meaningful under the original root order",
			have.Ordering, have.OrderSeed, want.Ordering, want.OrderSeed)
	}
	return nil
}

// GraphSignature hashes the graph's degree sequences (FNV-1a over both
// sides plus the dimensions) into a short hex string for Meta.GraphHash.
func GraphSignature(g *graph.Bipartite) string {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x00000100000001b3
	)
	h := uint64(offset)
	mix := func(x uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], x)
		for _, c := range b {
			h = (h ^ uint64(c)) * prime
		}
	}
	mix(uint64(g.NU()))
	mix(uint64(g.NV()))
	mix(uint64(g.NumEdges()))
	for u := int32(0); u < int32(g.NU()); u++ {
		mix(uint64(g.DegU(u)))
	}
	for v := int32(0); v < int32(g.NV()); v++ {
		mix(uint64(g.DegV(v)))
	}
	return fmt.Sprintf("%016x", h)
}

// ShardName returns the file name of shard i.
func ShardName(i int) string { return fmt.Sprintf("shard-%04d.mbs", i) }

// Record encoding. Within a frame payload:
//
//	uvarint recordCount
//	recordCount × {
//	    varint  rootDelta   (root − previous record's root; starts at 0)
//	    uvarint |L|, uvarint |R|   (both ≥ 1)
//	    uvarint L[0], then uvarint L[i]−L[i−1]   (strictly ascending)
//	    uvarint R[0], then uvarint R[i]−R[i−1]   (strictly ascending)
//	}
//
// Sides are stored sorted ascending, which both makes the deltas small
// (typically one byte) and canonicalizes the record: replaying a spool
// yields each side in sorted order, and the digest is side-order
// invariant anyway.

// appendRecord encodes one record onto buf. L and R must already be
// sorted strictly ascending and non-empty.
func appendRecord(buf []byte, rootDelta int32, L, R []int32) []byte {
	buf = binary.AppendVarint(buf, int64(rootDelta))
	buf = binary.AppendUvarint(buf, uint64(len(L)))
	buf = binary.AppendUvarint(buf, uint64(len(R)))
	buf = appendSide(buf, L)
	buf = appendSide(buf, R)
	return buf
}

func appendSide(buf []byte, s []int32) []byte {
	prev := int32(0)
	for i, v := range s {
		if i == 0 {
			buf = binary.AppendUvarint(buf, uint64(uint32(v)))
		} else {
			buf = binary.AppendUvarint(buf, uint64(uint32(v-prev)))
		}
		prev = v
	}
	return buf
}

// Decode errors. errTruncatedFrame and friends are deliberately
// unexported: callers see them through ShardState / TailError.
var (
	errBadMagic   = errors.New("spool: bad frame magic")
	errBadCRC     = errors.New("spool: frame CRC mismatch")
	errTruncated  = errors.New("spool: truncated frame")
	errBadPayload = errors.New("spool: malformed frame payload")
	errTooLarge   = errors.New("spool: frame payload length exceeds bound")
)

// decodePayload streams every record of a decompressed frame payload to
// fn. The l/r scratch slices are reused across calls and returned (the
// caller threads them through). Allocation is bounded: a side's declared
// length is validated against the bytes remaining in the payload (every
// encoded id costs ≥ 1 byte) before anything is allocated, so a corrupt
// or adversarial length field cannot force an over-allocation.
func decodePayload(p []byte, l, r []int32, fn func(root int32, L, R []int32)) ([]int32, []int32, error) {
	count, n := binary.Uvarint(p)
	if n <= 0 || count > uint64(len(p)) {
		return l, r, errBadPayload
	}
	p = p[n:]
	root := int32(0)
	for rec := uint64(0); rec < count; rec++ {
		delta, n := binary.Varint(p)
		if n <= 0 || delta < math.MinInt32 || delta > math.MaxInt32 {
			return l, r, errBadPayload
		}
		p = p[n:]
		root += int32(delta)

		lenL, n := binary.Uvarint(p)
		if n <= 0 {
			return l, r, errBadPayload
		}
		p = p[n:]
		lenR, n := binary.Uvarint(p)
		if n <= 0 {
			return l, r, errBadPayload
		}
		p = p[n:]
		if lenL == 0 || lenR == 0 || lenL+lenR > uint64(len(p)) {
			return l, r, errBadPayload
		}

		var err error
		if l, err = decodeSide(l, int(lenL), &p); err != nil {
			return l, r, err
		}
		if r, err = decodeSide(r, int(lenR), &p); err != nil {
			return l, r, err
		}
		fn(root, l, r)
	}
	if len(p) != 0 {
		return l, r, errBadPayload
	}
	return l, r, nil
}

func decodeSide(dst []int32, k int, p *[]byte) ([]int32, error) {
	dst = dst[:0]
	if cap(dst) < k {
		dst = make([]int32, 0, k)
	}
	prev := int32(0)
	for i := 0; i < k; i++ {
		v, n := binary.Uvarint(*p)
		if n <= 0 || v > math.MaxUint32 {
			return dst, errBadPayload
		}
		*p = (*p)[n:]
		cur := prev + int32(uint32(v))
		if i > 0 && cur <= prev {
			return dst, errBadPayload // sides are strictly ascending
		}
		dst = append(dst, cur)
		prev = cur
	}
	return dst, nil
}
