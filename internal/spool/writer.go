package spool

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"sync/atomic"
)

// Stats is a snapshot of the writer's cumulative counters. All fields
// count bytes/frames/records handed to the OS (flushed frames), not
// records still buffered in open frames.
type Stats struct {
	Bytes   int64 `json:"bytes"`
	Frames  int64 `json:"frames"`
	Records int64 `json:"records"`
	Fsyncs  int64 `json:"fsyncs"`
}

// WriterOptions configures a spool Writer.
type WriterOptions struct {
	Fsync FsyncMode
	// TargetFrameBytes is the payload size at which an open frame is
	// cut. 0 means DefaultFrameBytes.
	TargetFrameBytes int
	// WrapShard, when non-nil, wraps each shard's underlying writer.
	// This is the fault-injection seam: tests interpose write errors and
	// short writes between the frame assembler and the file.
	WrapShard func(shard int, w io.Writer) io.Writer
	// OnError is invoked at most once, from whichever Emit/Sync first
	// hits a write error. Runs use it to cancel enumeration promptly
	// instead of churning out bicliques a broken spool silently drops.
	OnError func(error)
}

// Writer is the sharded spool sink. Emit routes each biclique to the
// shard owned by its worker, so concurrent workers never contend on a
// shared lock; the per-shard mutex exists only to serialize the owning
// worker against checkpoint-time SyncAll.
//
// Writes are sticky-failing: after the first error the writer goes
// inert (Emit becomes a no-op) and Err reports the cause. Nothing
// already flushed is lost — the durable prefix stays readable.
type Writer struct {
	dir    string
	meta   Meta
	opts   WriterOptions
	target int
	shards []*shardWriter

	errOnce sync.Once
	err     atomic.Pointer[error]

	bytes, frames, records, fsyncs atomic.Int64
}

type shardWriter struct {
	mu     sync.Mutex
	parent *Writer
	idx    int
	f      *os.File
	w      io.Writer // f, possibly wrapped by WrapShard

	recBuf   []byte // encoded records of the open frame
	nrec     uint64
	prevRoot int32
	offset   int64 // bytes of complete frames handed to w

	sortL, sortR []int32
	frameBuf     []byte
	flateW       *flate.Writer
	flateBuf     bytes.Buffer
}

// Create initializes a fresh spool directory: writes the meta file and
// creates meta.Shards empty shard files. It refuses to reuse a
// directory that already holds a spool.
func Create(dir string, meta Meta, opts WriterOptions) (*Writer, error) {
	if meta.Shards < 1 {
		return nil, fmt.Errorf("spool: meta.Shards = %d, want >= 1", meta.Shards)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	metaPath := filepath.Join(dir, MetaFile)
	if _, err := os.Stat(metaPath); err == nil {
		return nil, fmt.Errorf("spool: %s already holds a spool (resume instead of creating)", dir)
	}
	blob, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return nil, err
	}
	durable := opts.Fsync != FsyncNever
	if err := AtomicWriteFile(metaPath, append(blob, '\n'), durable); err != nil {
		return nil, err
	}
	w := &Writer{dir: dir, meta: meta, opts: opts, target: opts.TargetFrameBytes}
	if w.target <= 0 {
		w.target = DefaultFrameBytes
	}
	for i := 0; i < meta.Shards; i++ {
		f, err := os.OpenFile(filepath.Join(dir, ShardName(i)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			w.closeFiles()
			return nil, err
		}
		w.shards = append(w.shards, newShardWriter(w, i, f, 0))
	}
	return w, nil
}

// OpenAppend reopens an existing spool's shards for appending. The
// caller (internal/ckpt) is responsible for first compacting the shards
// so every file ends at a frame boundary with only wanted records.
func OpenAppend(dir string, opts WriterOptions) (*Writer, error) {
	meta, err := LoadMeta(dir)
	if err != nil {
		return nil, err
	}
	w := &Writer{dir: dir, meta: meta, opts: opts, target: opts.TargetFrameBytes}
	if w.target <= 0 {
		w.target = DefaultFrameBytes
	}
	for i := 0; i < meta.Shards; i++ {
		f, err := os.OpenFile(filepath.Join(dir, ShardName(i)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			w.closeFiles()
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			w.closeFiles()
			return nil, err
		}
		w.shards = append(w.shards, newShardWriter(w, i, f, st.Size()))
	}
	return w, nil
}

func newShardWriter(w *Writer, idx int, f *os.File, offset int64) *shardWriter {
	s := &shardWriter{parent: w, idx: idx, f: f, w: f, offset: offset}
	if w.opts.WrapShard != nil {
		s.w = w.opts.WrapShard(idx, f)
	}
	if w.meta.Compress {
		s.flateW, _ = flate.NewWriter(io.Discard, flate.BestSpeed)
	}
	return s
}

// Meta returns the spool's identity record.
func (w *Writer) Meta() Meta { return w.meta }

// Shards returns the shard count (the worker→shard routing modulus).
func (w *Writer) Shards() int { return len(w.shards) }

// Emit appends one biclique to worker's shard. Sides are copied (and
// sorted if needed) before encoding, so the caller may reuse its
// slices immediately — the same contract as an OnBiclique handler.
// After the first write error Emit is a no-op; see Err.
func (w *Writer) Emit(worker int, root int32, L, R []int32) {
	if w.err.Load() != nil {
		return
	}
	s := w.shards[worker%len(w.shards)]
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sortL = sortedCopy(s.sortL, L)
	s.sortR = sortedCopy(s.sortR, R)
	s.recBuf = appendRecord(s.recBuf, root-s.prevRoot, s.sortL, s.sortR)
	s.prevRoot = root
	s.nrec++
	if len(s.recBuf) >= s.parent.target {
		s.flushLocked()
	}
}

func sortedCopy(dst, src []int32) []int32 {
	dst = append(dst[:0], src...)
	if !slices.IsSorted(dst) {
		slices.Sort(dst)
	}
	return dst
}

// flushLocked cuts the open frame and writes it to the shard file.
// Caller holds s.mu.
func (s *shardWriter) flushLocked() {
	if s.nrec == 0 {
		return
	}
	w := s.parent
	payload := binary.AppendUvarint(s.frameBuf[:0], s.nrec)
	payload = append(payload, s.recBuf...)
	s.frameBuf = payload
	if len(payload) > MaxFramePayload {
		w.fail(fmt.Errorf("%w: %d bytes in one frame (a single biclique record may not exceed %d bytes)",
			errTooLarge, len(payload), MaxFramePayload))
		return
	}

	stored := payload
	flags := byte(0)
	if s.flateW != nil {
		s.flateBuf.Reset()
		s.flateW.Reset(&s.flateBuf)
		if _, err := s.flateW.Write(payload); err == nil && s.flateW.Close() == nil {
			if s.flateBuf.Len() < len(payload) {
				stored = s.flateBuf.Bytes()
				flags = flagCompressed
			}
		}
	}

	var hdr [frameHeaderSize]byte
	copy(hdr[:4], frameMagic)
	hdr[4] = flags
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(stored)))
	binary.LittleEndian.PutUint32(hdr[9:13], crc32.Checksum(stored, crcTable))

	if err := writeFull(s.w, hdr[:]); err != nil {
		w.fail(err)
		return
	}
	if err := writeFull(s.w, stored); err != nil {
		w.fail(err)
		return
	}
	n := int64(frameHeaderSize + len(stored))
	s.offset += n
	w.bytes.Add(n)
	w.frames.Add(1)
	w.records.Add(int64(s.nrec))
	s.recBuf = s.recBuf[:0]
	s.nrec = 0
	s.prevRoot = 0

	if w.opts.Fsync == FsyncAlways {
		if err := s.f.Sync(); err != nil {
			w.fail(err)
			return
		}
		w.fsyncs.Add(1)
	}
}

func writeFull(w io.Writer, p []byte) error {
	n, err := w.Write(p)
	if err == nil && n < len(p) {
		err = io.ErrShortWrite
	}
	return err
}

// SyncAll cuts every shard's open frame and, unless the mode is
// FsyncNever, fsyncs the shard files. It returns the per-shard frame
// boundary offsets that are now durable — exactly what a checkpoint
// records. Returns the writer's sticky error if any write has failed.
func (w *Writer) SyncAll() ([]int64, error) {
	offsets := make([]int64, len(w.shards))
	for i, s := range w.shards {
		s.mu.Lock()
		s.flushLocked()
		if w.err.Load() == nil && w.opts.Fsync != FsyncNever {
			if err := s.f.Sync(); err != nil {
				w.fail(err)
			} else {
				w.fsyncs.Add(1)
			}
		}
		offsets[i] = s.offset
		s.mu.Unlock()
	}
	return offsets, w.Err()
}

// Stats snapshots the cumulative flushed-output counters. Safe to call
// concurrently with Emit (it is the observability hook).
func (w *Writer) Stats() Stats {
	return Stats{
		Bytes:   w.bytes.Load(),
		Frames:  w.frames.Load(),
		Records: w.records.Load(),
		Fsyncs:  w.fsyncs.Load(),
	}
}

// Err reports the first write/sync error, or nil.
func (w *Writer) Err() error {
	if p := w.err.Load(); p != nil {
		return *p
	}
	return nil
}

func (w *Writer) fail(err error) {
	w.errOnce.Do(func() {
		w.err.Store(&err)
		if w.opts.OnError != nil {
			w.opts.OnError(err)
		}
	})
}

// Close flushes and syncs all shards, then closes the files. The
// returned error is the sticky write error if one occurred, else the
// first sync/close error.
func (w *Writer) Close() error {
	_, err := w.SyncAll()
	if cerr := w.closeFiles(); err == nil {
		err = cerr
	}
	return err
}

func (w *Writer) closeFiles() error {
	var first error
	for _, s := range w.shards {
		if s.f != nil {
			if err := s.f.Close(); err != nil && first == nil {
				first = err
			}
			s.f = nil
		}
	}
	return first
}

// AtomicWriteFile writes blob to path via a temp file + rename, with an
// fsync of the file (and, when durable, the containing directory) so a
// crash can never leave a half-written file under the final name.
func AtomicWriteFile(path string, blob []byte, durable bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(blob); err != nil {
		return cleanup(err)
	}
	if durable {
		if err := tmp.Sync(); err != nil {
			return cleanup(err)
		}
	}
	if err := tmp.Close(); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if durable {
		if d, err := os.Open(dir); err == nil {
			d.Sync()
			d.Close()
		}
	}
	return nil
}
