package spool

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/gen"
)

func testMeta(shards int, compress bool) Meta {
	return Meta{
		Version: 1, Tool: "spool_test", Algorithm: "AdaMBE", Ordering: "asc",
		Shards: shards, NU: 10, NV: 10, Edges: 20, GraphHash: "deadbeefcafef00d",
		Compress: compress,
	}
}

type rec struct {
	root int32
	L, R []int32
}

func collect(t *testing.T, dir string) ([]rec, []ShardState) {
	t.Helper()
	var out []rec
	states, err := Replay(dir, func(root int32, L, R []int32) {
		out = append(out, rec{root, append([]int32(nil), L...), append([]int32(nil), R...)})
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out, states
}

func eqSlice(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, testMeta(2, false), WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Unsorted sides: the writer canonicalizes to ascending.
	w.Emit(0, 0, []int32{3, 1, 2}, []int32{9, 0})
	w.Emit(1, 0, []int32{5}, []int32{7})
	w.Emit(0, 2, []int32{4}, []int32{2, 8, 5})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	recs, states := collect(t, dir)
	if err := Clean(states); err != nil {
		t.Fatalf("expected clean shards: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	// Shard 0 (worker 0) replays first, in emission order, sides sorted.
	want := []rec{
		{0, []int32{1, 2, 3}, []int32{0, 9}},
		{2, []int32{4}, []int32{2, 5, 8}},
		{0, []int32{5}, []int32{7}},
	}
	for i, r := range recs {
		if r.root != want[i].root || !eqSlice(r.L, want[i].L) || !eqSlice(r.R, want[i].R) {
			t.Errorf("record %d = %+v, want %+v", i, r, want[i])
		}
	}
	if n := TotalRecords(states); n != 3 {
		t.Errorf("TotalRecords = %d, want 3", n)
	}
	st := w.Stats()
	if st.Records != 3 || st.Frames == 0 || st.Bytes == 0 {
		t.Errorf("writer stats = %+v", st)
	}
}

// TestFrameRotation forces many small frames and checks the stream
// reassembles, including the per-frame root-delta reset.
func TestFrameRotation(t *testing.T) {
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			dir := t.TempDir()
			w, err := Create(dir, testMeta(1, compress), WriterOptions{TargetFrameBytes: 32})
			if err != nil {
				t.Fatal(err)
			}
			const n = 500
			for i := int32(0); i < n; i++ {
				w.Emit(0, i/7, []int32{i, i + 10}, []int32{i % 5, i%5 + 100})
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			recs, states := collect(t, dir)
			if err := Clean(states); err != nil {
				t.Fatal(err)
			}
			if len(recs) != n {
				t.Fatalf("got %d records, want %d", len(recs), n)
			}
			if states[0].Frames < 10 {
				t.Fatalf("expected many frames at a 32-byte target, got %d", states[0].Frames)
			}
			for i, r := range recs {
				i32 := int32(i)
				if r.root != i32/7 || !eqSlice(r.L, []int32{i32, i32 + 10}) {
					t.Fatalf("record %d mangled: %+v", i, r)
				}
			}
		})
	}
}

// TestCompressionShrinks checks that a compressible stream actually
// stores smaller with Compress set, and replays identically.
func TestCompressionShrinks(t *testing.T) {
	emitAll := func(w *Writer) {
		for i := int32(0); i < 2000; i++ {
			w.Emit(0, i, []int32{1, 2, 3, 4, 5, 6, 7, 8}, []int32{i, i + 1, i + 2})
		}
	}
	size := func(compress bool) int64 {
		dir := t.TempDir()
		w, err := Create(dir, testMeta(1, compress), WriterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		emitAll(w)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		recs, states := collect(t, dir)
		if err := Clean(states); err != nil {
			t.Fatal(err)
		}
		if len(recs) != 2000 {
			t.Fatalf("compress=%v: %d records, want 2000", compress, len(recs))
		}
		info, err := os.Stat(filepath.Join(dir, ShardName(0)))
		if err != nil {
			t.Fatal(err)
		}
		return info.Size()
	}
	plain, packed := size(false), size(true)
	if packed >= plain {
		t.Errorf("compressed shard %d bytes >= plain %d bytes", packed, plain)
	}
}

// TestTailRecovery injures a shard's tail four different ways and checks
// the reader recovers exactly the frames before the injury.
func TestTailRecovery(t *testing.T) {
	build := func(t *testing.T) (string, []ShardState) {
		dir := t.TempDir()
		w, err := Create(dir, testMeta(1, false), WriterOptions{TargetFrameBytes: 64})
		if err != nil {
			t.Fatal(err)
		}
		for i := int32(0); i < 200; i++ {
			w.Emit(0, i, []int32{i, i + 1}, []int32{i + 2})
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		_, states := collect(t, dir)
		if states[0].Frames < 3 {
			t.Fatalf("need >= 3 frames, got %d", states[0].Frames)
		}
		return dir, states
	}

	t.Run("truncated-payload", func(t *testing.T) {
		dir, states := build(t)
		shard := filepath.Join(dir, ShardName(0))
		if err := os.Truncate(shard, states[0].SizeBytes-3); err != nil {
			t.Fatal(err)
		}
		recs, got := collect(t, dir)
		if got[0].Tail == "" {
			t.Fatal("expected a tail error after truncation")
		}
		if got[0].Frames != states[0].Frames-1 {
			t.Errorf("recovered %d frames, want %d", got[0].Frames, states[0].Frames-1)
		}
		if int64(len(recs)) != got[0].Records {
			t.Errorf("replayed %d records, state says %d", len(recs), got[0].Records)
		}
	})

	t.Run("flipped-byte", func(t *testing.T) {
		dir, states := build(t)
		shard := filepath.Join(dir, ShardName(0))
		blob, err := os.ReadFile(shard)
		if err != nil {
			t.Fatal(err)
		}
		blob[len(blob)-5] ^= 0xff // inside the last frame's payload
		if err := os.WriteFile(shard, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		_, got := collect(t, dir)
		if got[0].Tail == "" {
			t.Fatal("expected a CRC tail error")
		}
		if got[0].Frames != states[0].Frames-1 {
			t.Errorf("recovered %d frames, want %d", got[0].Frames, states[0].Frames-1)
		}
	})

	t.Run("garbage-appended", func(t *testing.T) {
		dir, states := build(t)
		f, err := os.OpenFile(filepath.Join(dir, ShardName(0)), os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte("this is not a frame"))
		f.Close()
		_, got := collect(t, dir)
		if got[0].Tail == "" {
			t.Fatal("expected a bad-magic tail error")
		}
		if got[0].Frames != states[0].Frames || got[0].Records != states[0].Records {
			t.Errorf("garbage tail must not cost valid frames: got %+v want %+v", got[0], states[0])
		}
	})

	t.Run("partial-header", func(t *testing.T) {
		dir, states := build(t)
		f, err := os.OpenFile(filepath.Join(dir, ShardName(0)), os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.Write(frameMagic) // 4 of 13 header bytes
		f.Close()
		_, got := collect(t, dir)
		if got[0].Tail == "" {
			t.Fatal("expected a partial-header tail error")
		}
		if got[0].Records != states[0].Records {
			t.Errorf("partial header must not cost valid records")
		}
	})

	t.Run("missing-shard", func(t *testing.T) {
		dir, _ := build(t)
		if err := os.Remove(filepath.Join(dir, ShardName(0))); err != nil {
			t.Fatal(err)
		}
		states, err := Verify(dir)
		if err != nil {
			t.Fatalf("a missing shard is a verification finding, not an error: %v", err)
		}
		if states[0].Tail == "" {
			t.Fatal("expected a missing-shard tail")
		}
	})
}

func TestCompactBelow(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, testMeta(2, false), WriterOptions{TargetFrameBytes: 48})
	if err != nil {
		t.Fatal(err)
	}
	// Interleave roots across both shards, out of order within a shard —
	// exactly what unordered parallel emission produces.
	for i := int32(0); i < 100; i++ {
		w.Emit(int(i)%2, i%10, []int32{i}, []int32{i + 1, i + 2})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Injure the tail of shard 0 too: compaction must drop it silently.
	f, err := os.OpenFile(filepath.Join(dir, ShardName(0)), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xde, 0xad})
	f.Close()

	if err := CompactBelow(dir, func(root int32) bool { return root < 4 }); err != nil {
		t.Fatal(err)
	}
	recs, states := collect(t, dir)
	if err := Clean(states); err != nil {
		t.Fatalf("compacted shards must end clean: %v", err)
	}
	if len(recs) != 40 { // roots 0..3, 10 emissions each per root value
		t.Fatalf("got %d records after compaction, want 40", len(recs))
	}
	for _, r := range recs {
		if r.root >= 4 {
			t.Fatalf("record with root %d survived compaction below 4", r.root)
		}
	}

	// keep == nil preserves everything that remains.
	if err := CompactBelow(dir, nil); err != nil {
		t.Fatal(err)
	}
	recs2, _ := collect(t, dir)
	if len(recs2) != len(recs) {
		t.Fatalf("nil-keep compaction changed record count: %d -> %d", len(recs), len(recs2))
	}
}

func TestOpenAppend(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, testMeta(1, false), WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w.Emit(0, 0, []int32{1}, []int32{2})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenAppend(dir, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w2.Emit(0, 5, []int32{3}, []int32{4})
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, states := collect(t, dir)
	if err := Clean(states); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].root != 0 || recs[1].root != 5 {
		t.Fatalf("append round trip broken: %+v", recs)
	}
	if states[0].Frames != 2 {
		t.Errorf("expected 2 frames (one per session), got %d", states[0].Frames)
	}
}

func TestCreateRefusesExistingSpool(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, testMeta(1, false), WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := Create(dir, testMeta(1, false), WriterOptions{}); err == nil {
		t.Fatal("Create over an existing spool must fail")
	}
}

func TestConcurrentEmit(t *testing.T) {
	dir := t.TempDir()
	const workers, per = 4, 1000
	w, err := Create(dir, testMeta(workers, false), WriterOptions{TargetFrameBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for i := int32(0); i < per; i++ {
				w.Emit(wk, i, []int32{int32(wk), i + 10}, []int32{i})
			}
		}(wk)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, states := collect(t, dir)
	if err := Clean(states); err != nil {
		t.Fatal(err)
	}
	if len(recs) != workers*per {
		t.Fatalf("got %d records, want %d", len(recs), workers*per)
	}
}

func TestSyncAllOffsets(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, testMeta(2, false), WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w.Emit(0, 0, []int32{1}, []int32{2})
	offsets, err := w.SyncAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(offsets) != 2 || offsets[0] == 0 || offsets[1] != 0 {
		t.Fatalf("offsets = %v: shard 0 flushed a frame, shard 1 is empty", offsets)
	}
	info, err := os.Stat(filepath.Join(dir, ShardName(0)))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != offsets[0] {
		t.Errorf("shard 0 file size %d != durable offset %d", info.Size(), offsets[0])
	}
	w.Close()
}

func TestCompatibleResume(t *testing.T) {
	base := testMeta(2, false)
	ok := base
	ok.Shards = 8          // shard modulus may change
	ok.Algorithm = "other" // algorithm may change
	ok.Tau = 99            // τ may change
	if err := CompatibleResume(base, ok); err != nil {
		t.Errorf("algorithm/τ/shards changes must be resumable: %v", err)
	}
	for name, mut := range map[string]func(*Meta){
		"version":  func(m *Meta) { m.Version++ },
		"graph":    func(m *Meta) { m.GraphHash = "different" },
		"edges":    func(m *Meta) { m.Edges++ },
		"ordering": func(m *Meta) { m.Ordering = "rand" },
		"seed":     func(m *Meta) { m.OrderSeed++ },
	} {
		bad := base
		mut(&bad)
		if err := CompatibleResume(base, bad); err == nil {
			t.Errorf("%s mismatch must refuse resume", name)
		}
	}
}

func TestParseFsyncMode(t *testing.T) {
	for _, m := range []FsyncMode{FsyncNever, FsyncCheckpoint, FsyncAlways} {
		got, err := ParseFsyncMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseFsyncMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseFsyncMode("bogus"); err == nil {
		t.Error("ParseFsyncMode must reject unknown modes")
	}
}

func TestGraphSignature(t *testing.T) {
	a := gen.Uniform(1, 30, 20, 100)
	b := gen.Uniform(1, 30, 20, 100)
	c := gen.Uniform(2, 30, 20, 100)
	if GraphSignature(a) != GraphSignature(b) {
		t.Error("signature must be deterministic")
	}
	if GraphSignature(a) == GraphSignature(c) {
		t.Error("different graphs should hash differently")
	}
}

func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.json")
	for _, blob := range []string{"one", "two (overwrite)"} {
		if err := AtomicWriteFile(path, []byte(blob), true); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil || string(got) != blob {
			t.Fatalf("read back %q, %v; want %q", got, err, blob)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("temp files left behind: %v", ents)
	}
}
