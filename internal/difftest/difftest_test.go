package difftest

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/gen"
	"repro/internal/graph"
)

// quickFamilies are the PR-gating sweep inputs: one graph per generator
// family plus the smallest bundled dataset, all sized so the full
// engine × ordering × thread matrix stays well under the CI budget.
func quickFamilies(t *testing.T) map[string]*graph.Bipartite {
	t.Helper()
	ul, ok := datasets.ByName("UL")
	if !ok {
		t.Fatal("dataset UL missing from registry")
	}
	return map[string]*graph.Bipartite{
		"uniform":     gen.Uniform(101, 60, 30, 240),
		"powerlaw":    gen.PowerLaw(102, 70, 35, 260, 1.6, 1.9),
		"affiliation": gen.Affiliation(103, gen.AffiliationConfig{NU: 40, NV: 24, Communities: 6, MeanU: 4, MeanV: 3, Density: 0.9, NoiseEdges: 30}),
		"dataset-UL":  ul.Build(),
	}
}

// TestSweepAllEnginesAgree is the acceptance sweep: every engine ×
// ordering × thread-count cell must produce the same biclique-set digest,
// compared by fingerprint, not count.
func TestSweepAllEnginesAgree(t *testing.T) {
	configs := Matrix(MatrixOpts{Threads: []int{1, 4, 8}, Seed: 7})
	wantCells := 0
	for _, e := range Engines() {
		if e.Parallel() {
			wantCells += 3 * 3
		} else {
			wantCells += 3
		}
	}
	if len(configs) != wantCells {
		t.Fatalf("matrix has %d cells, want %d (engines × orderings × threads)", len(configs), wantCells)
	}
	for name, g := range quickFamilies(t) {
		t.Run(name, func(t *testing.T) {
			mismatches, err := Sweep(g, configs)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range mismatches {
				t.Error(m)
			}
		})
	}
}

// TestSweepAgreesWithBruteForce anchors the reference cell itself to the
// exhaustive oracle on graphs small enough to brute-force.
func TestSweepAgreesWithBruteForce(t *testing.T) {
	configs := Matrix(MatrixOpts{Threads: []int{1, 4}, Seed: 3})
	for seed := int64(0); seed < 8; seed++ {
		g := gen.Uniform(seed, 18, 12, 45)
		want := BruteDigest(g)
		for _, c := range configs {
			got, err := Run(g, c)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if !got.Equal(want) {
				t.Errorf("seed %d: [%s] digest %s != oracle %s", seed, c, got, want)
			}
		}
	}
}

// TestSweepTauBoundaries extends the acceptance sweep to the multi-word
// bitmap thresholds: τ at the 2- and 4-word mask boundaries, across the
// full engine × ordering matrix at 1/4/8 threads. The "dense" fixture has
// V-degrees ≈ 150 so τ = 128/256 promotions genuinely build 2–3-word
// masks; its digest is additionally anchored to the brute-force oracle.
func TestSweepTauBoundaries(t *testing.T) {
	dense := gen.Uniform(401, 340, 12, 1800)
	graphs := quickFamilies(t)
	graphs["dense"] = dense
	for _, tau := range []int{128, 256} {
		configs := Matrix(MatrixOpts{Threads: []int{1, 4, 8}, Seed: 17, Tau: tau})
		for name, g := range graphs {
			t.Run(fmt.Sprintf("tau=%d/%s", tau, name), func(t *testing.T) {
				mismatches, err := Sweep(g, configs)
				if err != nil {
					t.Fatal(err)
				}
				for _, m := range mismatches {
					t.Error(m)
				}
			})
		}
		want := BruteDigest(dense)
		for _, c := range configs {
			if c.Engine != EngAda && c.Engine != EngParAda {
				continue
			}
			got, err := Run(dense, c)
			if err != nil {
				t.Fatalf("[%s]: %v", c, err)
			}
			if !got.Equal(want) {
				t.Errorf("[%s]: digest %s != oracle %s", c, got, want)
			}
		}
	}
}

// TestBBKSweepAgainstOracle anchors BBK to the brute-force oracle across
// every ordering, on the standard quick families plus two fixtures aimed
// at its pivot rule: a dense near-biclique (every branch has huge local
// degrees, so absorption and domination pruning fire constantly) and a
// star-heavy skew (a few hub V vertices dominate every candidate set, so
// the max-degree pivot is always a hub and must still not lose the
// degree-1 periphery).
func TestBBKSweepAgainstOracle(t *testing.T) {
	graphs := map[string]*graph.Bipartite{
		"dense":      gen.Uniform(402, 24, 16, 300),
		"star-heavy": gen.PowerLaw(403, 120, 20, 400, 1.1, 2.8),
	}
	for name, g := range quickFamilies(t) {
		if g.NV() <= core.MaxBruteForceV {
			graphs[name] = g
		}
	}
	configs := Matrix(MatrixOpts{Threads: []int{1}, Seed: 11})
	for name, g := range graphs {
		want := BruteDigest(g)
		for _, c := range configs {
			if c.Engine != EngBBK {
				continue
			}
			got, err := Run(g, c)
			if err != nil {
				t.Fatalf("%s [%s]: %v", name, c, err)
			}
			if !got.Equal(want) {
				t.Errorf("%s [%s]: digest %s != oracle %s", name, c, got, want)
			}
		}
	}
	// The fixtures also join the full cross-engine sweep, so BBK's digest
	// is pinned to every other engine on them, not just the oracle.
	for name, g := range graphs {
		mismatches, err := Sweep(g, configs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, m := range mismatches {
			t.Error(name, m)
		}
	}
}

// TestMetamorphicInvariance applies every transformation and asserts the
// mapped-back digest matches the original enumeration's digest.
func TestMetamorphicInvariance(t *testing.T) {
	graphs := map[string]*graph.Bipartite{
		"uniform":     gen.Uniform(201, 50, 25, 200),
		"affiliation": gen.Affiliation(202, gen.AffiliationConfig{NU: 36, NV: 20, Communities: 5, MeanU: 4, MeanV: 3, Density: 0.9, NoiseEdges: 20}),
	}
	engines := []Config{
		{Engine: EngAda},
		{Engine: EngParAda, Threads: 4},
		{Engine: EngFMBE},
		{Engine: EngBBK},
	}
	for gname, g := range graphs {
		ref, err := Run(g, engines[0])
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range Transforms(42) {
			tg, mb, err := tr.Apply(g)
			if err != nil {
				t.Fatalf("%s/%s: apply: %v", gname, tr.Name, err)
			}
			for _, c := range engines {
				t.Run(fmt.Sprintf("%s/%s/%s", gname, tr.Name, c.Engine), func(t *testing.T) {
					got, err := RunMapped(tg, c, mb)
					if err != nil {
						t.Fatal(err)
					}
					if !got.Equal(ref) {
						t.Fatalf("digest not invariant: %s vs %s", got, ref)
					}
				})
			}
		}
	}
}

// TestExtendedSweep is the nightly leg: bigger generator sizes, a fresh
// seed per run (MBE_DIFFTEST_SEED, typically the epoch), the full
// thread matrix, and automatic minimization of any disagreement into
// testdata/repros for artifact upload. Gated behind MBE_DIFFTEST_EXTENDED
// so the PR job stays fast.
func TestExtendedSweep(t *testing.T) {
	if os.Getenv("MBE_DIFFTEST_EXTENDED") == "" {
		t.Skip("set MBE_DIFFTEST_EXTENDED=1 (nightly CI) to run the extended differential sweep")
	}
	seed := int64(424242)
	if s := os.Getenv("MBE_DIFFTEST_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("MBE_DIFFTEST_SEED: %v", err)
		}
		seed = v
	}
	t.Logf("extended sweep seed %d", seed)

	graphs := map[string]*graph.Bipartite{
		"uniform":     gen.Uniform(seed, 300, 150, 2000),
		"powerlaw":    gen.PowerLaw(seed+1, 400, 200, 2600, 1.6, 2.0),
		"affiliation": gen.Affiliation(seed+2, gen.AffiliationConfig{NU: 150, NV: 80, Communities: 12, MeanU: 6, MeanV: 5, Density: 0.8, NoiseEdges: 250}),
		"sample":      gen.SampleEdges(gen.Uniform(seed+3, 250, 120, 3000), 0.5, seed+4),
	}
	for _, name := range []string{"UL", "UF"} {
		spec, ok := datasets.ByName(name)
		if !ok {
			t.Fatalf("dataset %s missing", name)
		}
		graphs["dataset-"+name] = spec.Build()
	}

	configs := Matrix(MatrixOpts{Threads: []int{1, 4, 8}, Seed: seed})
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			mismatches, err := Sweep(g, configs)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range mismatches {
				t.Error(m)
				min := Minimize(m.Graph, MismatchProperty(m.A, m.B), 0)
				path, serr := SaveRepro("testdata/repros", Repro{
					Graph:  min,
					A:      m.A,
					B:      m.B,
					Expect: ExpectMismatch,
					Note:   fmt.Sprintf("extended sweep, input %s, seed %d (meta %+v)", name, seed, m.Graph.Meta()),
				})
				if serr != nil {
					t.Errorf("saving repro: %v", serr)
					continue
				}
				t.Logf("minimized repro written to %s (%d edges)", path, min.NumEdges())
			}
		})
	}
}

// TestRunRejectsIncompleteRuns: a partial run must never silently produce
// a comparable digest.
func TestRunRejectsIncompleteRuns(t *testing.T) {
	g := gen.Uniform(7, 40, 20, 160)
	// Force a pre-expired deadline through the dispatch layer by running
	// the engine directly: Run has no deadline knob (by design), so this
	// guards the StopReason check instead via a config that cannot
	// complete — the smallest way is an impossible thread/variant combo.
	if _, err := Run(g, Config{Engine: Engine(99)}); err == nil {
		t.Fatal("unknown engine must error")
	}
	var d Digest
	res, err := core.Enumerate(g, core.Options{Variant: core.Ada, OnBiclique: d.Observe})
	if err != nil || res.StopReason != core.StopNone {
		t.Fatalf("sanity: %v %v", res.StopReason, err)
	}
}
