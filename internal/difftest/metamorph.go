package difftest

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// A Transform rewrites a graph in a way whose effect on the maximal
// biclique set is known exactly, and supplies the MapBack that converts
// each biclique of the transformed graph into the original id space. The
// metamorphic property under test is always the same: enumerating the
// transformed graph and mapping back must yield the original digest.
type Transform struct {
	Name  string
	Apply func(g *graph.Bipartite) (*graph.Bipartite, MapBack, error)
}

// Transforms returns the metamorphic suite, seeded where randomized:
//
//   - relabel: permute both sides' ids (digest equivariant under the
//     inverse relabeling).
//   - side-swap: exchange U and V (bicliques mirror; fingerprints are
//     side-sensitive, so MapBack swaps the sides back).
//   - isolated: inject degree-0 vertices on both sides (biclique set
//     untouched — isolated vertices can never join a biclique).
//   - dup-v / dup-u: duplicate one vertex's neighborhood; every maximal
//     biclique containing the original must now contain the clone and
//     nothing else changes, so stripping the clone recovers the original
//     set (MapBack errors if the clone ever appears without the original
//     or vice versa).
//   - edge-perm: rebuild the graph from a shuffled edge list (identical
//     graph, so identical digest).
func Transforms(seed int64) []Transform {
	return []Transform{
		{Name: "relabel", Apply: relabelTransform(seed)},
		{Name: "side-swap", Apply: sideSwapTransform},
		{Name: "isolated", Apply: isolatedTransform},
		{Name: "dup-v", Apply: dupVertexTransform(false)},
		{Name: "dup-u", Apply: dupVertexTransform(true)},
		{Name: "edge-perm", Apply: edgePermTransform(seed + 1)},
	}
}

func relabelTransform(seed int64) func(*graph.Bipartite) (*graph.Bipartite, MapBack, error) {
	return func(g *graph.Bipartite) (*graph.Bipartite, MapBack, error) {
		rng := rand.New(rand.NewSource(seed))
		permU := rng.Perm(g.NU()) // old id -> new id
		permV := rng.Perm(g.NV())
		edges := g.Edges()
		for i, e := range edges {
			edges[i] = graph.Edge{U: int32(permU[e.U]), V: int32(permV[e.V])}
		}
		ng, err := graph.FromEdges(g.NU(), g.NV(), edges)
		if err != nil {
			return nil, nil, err
		}
		invU := invert(permU)
		invV := invert(permV)
		mb := func(L, R []int32) ([]int32, []int32, error) {
			return mapThrough(L, invU), mapThrough(R, invV), nil
		}
		return ng, mb, nil
	}
}

func sideSwapTransform(g *graph.Bipartite) (*graph.Bipartite, MapBack, error) {
	mb := func(L, R []int32) ([]int32, []int32, error) {
		// The swapped graph's U side is the original V side: a biclique
		// (L', R') there is the original biclique (R', L').
		return R, L, nil
	}
	return g.Swapped(), mb, nil
}

func isolatedTransform(g *graph.Bipartite) (*graph.Bipartite, MapBack, error) {
	const extra = 3
	ng, err := graph.FromEdges(g.NU()+extra, g.NV()+extra, g.Edges())
	if err != nil {
		return nil, nil, err
	}
	nu, nv := int32(g.NU()), int32(g.NV())
	mb := func(L, R []int32) ([]int32, []int32, error) {
		for _, u := range L {
			if u >= nu {
				return nil, nil, fmt.Errorf("isolated U vertex %d appeared in a biclique", u)
			}
		}
		for _, v := range R {
			if v >= nv {
				return nil, nil, fmt.Errorf("isolated V vertex %d appeared in a biclique", v)
			}
		}
		return L, R, nil
	}
	return ng, mb, nil
}

// dupVertexTransform duplicates the highest-degree vertex on one side:
// the clone (id = side size) gets an identical neighborhood. R-sets (or
// L-sets) of the transformed graph must contain the clone exactly when
// they contain the original; stripping the clone is then a bijection back
// onto the original biclique set.
func dupVertexTransform(uSide bool) func(*graph.Bipartite) (*graph.Bipartite, MapBack, error) {
	return func(g *graph.Bipartite) (*graph.Bipartite, MapBack, error) {
		var target int32 = -1
		best := 0
		if uSide {
			for u := int32(0); u < int32(g.NU()); u++ {
				if d := g.DegU(u); d > best {
					best, target = d, u
				}
			}
		} else {
			for v := int32(0); v < int32(g.NV()); v++ {
				if d := g.DegV(v); d > best {
					best, target = d, v
				}
			}
		}
		if target < 0 {
			return nil, nil, fmt.Errorf("dup transform needs a non-empty graph")
		}
		edges := g.Edges()
		nu, nv := g.NU(), g.NV()
		var clone int32
		if uSide {
			clone = int32(nu)
			nu++
			for _, v := range g.NeighborsOfU(target) {
				edges = append(edges, graph.Edge{U: clone, V: v})
			}
		} else {
			clone = int32(nv)
			nv++
			for _, u := range g.NeighborsOfV(target) {
				edges = append(edges, graph.Edge{U: u, V: clone})
			}
		}
		ng, err := graph.FromEdges(nu, nv, edges)
		if err != nil {
			return nil, nil, err
		}
		strip := func(side []int32) ([]int32, error) {
			hasOrig, hasClone := false, false
			out := side[:0:0]
			for _, x := range side {
				switch x {
				case target:
					hasOrig = true
					out = append(out, x)
				case clone:
					hasClone = true
				default:
					out = append(out, x)
				}
			}
			if hasOrig != hasClone {
				return nil, fmt.Errorf("duplicate vertex invariant violated: orig=%v clone=%v", hasOrig, hasClone)
			}
			return out, nil
		}
		mb := func(L, R []int32) ([]int32, []int32, error) {
			var err error
			if uSide {
				if L, err = strip(L); err != nil {
					return nil, nil, err
				}
			} else {
				if R, err = strip(R); err != nil {
					return nil, nil, err
				}
			}
			return L, R, nil
		}
		return ng, mb, nil
	}
}

func edgePermTransform(seed int64) func(*graph.Bipartite) (*graph.Bipartite, MapBack, error) {
	return func(g *graph.Bipartite) (*graph.Bipartite, MapBack, error) {
		rng := rand.New(rand.NewSource(seed))
		edges := g.Edges()
		rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		ng, err := graph.FromEdges(g.NU(), g.NV(), edges)
		if err != nil {
			return nil, nil, err
		}
		identity := func(L, R []int32) ([]int32, []int32, error) { return L, R, nil }
		return ng, identity, nil
	}
}

func invert(perm []int) []int32 {
	inv := make([]int32, len(perm))
	for old, nw := range perm {
		inv[nw] = int32(old)
	}
	return inv
}

func mapThrough(ids []int32, inv []int32) []int32 {
	out := make([]int32, len(ids))
	for i, x := range ids {
		out[i] = inv[x]
	}
	return out
}
