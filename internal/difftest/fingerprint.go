// Package difftest is the correctness-tooling layer for the enumeration
// engines: canonical per-biclique fingerprints folded into an
// order-independent run digest, a differential runner that executes every
// engine × ordering × thread-count combination and asserts digest
// equality, metamorphic graph transformations with known effects on the
// biclique set, and a delta-debugging minimizer that shrinks any
// disagreement to a standalone replayable repro file.
//
// The design premise comes from the paper's own validation gap: Table 4
// compares only total counts, and counts can collide — after the
// work-stealing scheduler a bug that drops one biclique and double-emits
// another is invisible to every count-based check. Digests compare the
// *set* of bicliques (up to astronomically unlikely hash collisions) in
// O(1) memory, so multi-million-biclique runs cross-check for free.
package difftest

import (
	"fmt"
	"math/bits"
)

// mix64 is SplitMix64's finalizer: a cheap, well-dispersed 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Per-side and digest-level mixing constants. The two sides use distinct
// seeds so a biclique and its mirror image fingerprint differently
// (Fingerprint(L,R) ≠ Fingerprint(R,L) in general), which is what lets
// the side-swap metamorphic check detect a swapped emission.
const (
	seedL    = 0x9e3779b97f4a7c15 // golden-ratio increment
	seedR    = 0xc2b2ae3d27d4eb4f // xxhash prime
	seedFold = 0x165667b19e3779f9 // second-moment remix seed
)

// sideHash combines one side's vertex ids commutatively: each id is mixed
// independently, then the per-vertex hashes are folded by sum, xor and
// cardinality. Commutative folding makes the hash independent of the
// order vertices appear in the slice — engines need not sort, and the
// harness need not copy.
func sideHash(s []int32, seed uint64) uint64 {
	var sum, xor uint64
	for _, v := range s {
		h := mix64(uint64(uint32(v))*0x9e3779b97f4a7c15 + seed)
		sum += h
		xor ^= h
	}
	return mix64(sum ^ bits.RotateLeft64(xor, 32) ^ (uint64(len(s))*seed + seed))
}

// Fingerprint maps a biclique (L, R) to a canonical 64-bit value:
// invariant to the order of vertices within each side, sensitive to which
// side a vertex is on, to every id, and to both cardinalities. Two
// enumeration runs emit the same biclique set iff (modulo hash
// collisions) their Digests are equal.
func Fingerprint(L, R []int32) uint64 {
	hl := sideHash(L, seedL)
	hr := sideHash(R, seedR)
	return mix64(hl + seedFold*hr)
}

// Digest is a commutative, O(1)-memory summary of a run's biclique set:
// the count plus three independent folds of the per-biclique
// fingerprints. Because every fold is commutative and associative, the
// digest is independent of emission order and shards merge losslessly —
// exactly what the parallel engines' unspecified interleaving requires.
//
// The zero value is the digest of the empty run. Digest methods are not
// safe for concurrent use; under ParAdaMBE's default serialized emission
// a single Digest works as the handler, while UnorderedEmit callers keep
// one Digest per goroutine and Merge them.
type Digest struct {
	// Count is the number of bicliques observed.
	Count int64
	// Sum, Xor and Fold are commutative folds of the fingerprints: their
	// modular sum, their xor, and the modular sum of a remixed copy. A
	// drop+duplicate pair that happened to cancel in one fold still
	// perturbs the others.
	Sum  uint64
	Xor  uint64
	Fold uint64
}

// Add folds one biclique fingerprint into the digest.
func (d *Digest) Add(fp uint64) {
	d.Count++
	d.Sum += fp
	d.Xor ^= fp
	d.Fold += mix64(fp ^ seedFold)
}

// Observe fingerprints (L, R) and folds it in. Its signature matches the
// engines' Handler, so a *Digest can be installed directly as OnBiclique.
func (d *Digest) Observe(L, R []int32) { d.Add(Fingerprint(L, R)) }

// Merge folds another digest (e.g. a per-worker shard) into d.
func (d *Digest) Merge(o Digest) {
	d.Count += o.Count
	d.Sum += o.Sum
	d.Xor ^= o.Xor
	d.Fold += o.Fold
}

// Equal reports whether two digests summarize the same biclique multiset.
func (d Digest) Equal(o Digest) bool {
	return d.Count == o.Count && d.Sum == o.Sum && d.Xor == o.Xor && d.Fold == o.Fold
}

// String renders the digest compactly for failure messages.
func (d Digest) String() string {
	return fmt.Sprintf("{n=%d sum=%016x xor=%016x fold=%016x}", d.Count, d.Sum, d.Xor, d.Fold)
}
