package difftest

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/order"
)

// resumeGraphs builds the 20-graph corpus for the resume matrix: a
// spread of uniform and power-law shapes small enough that the full
// matrix (graphs × interrupt points × thread counts) stays inside the
// CI budget but big enough that interrupts land mid-enumeration.
func resumeGraphs() []*graph.Bipartite {
	var gs []*graph.Bipartite
	for seed := int64(0); seed < 12; seed++ {
		gs = append(gs, gen.Uniform(seed, 40+int(seed)*2, 20+int(seed), 150+10*int(seed)))
	}
	for seed := int64(0); seed < 8; seed++ {
		gs = append(gs, gen.PowerLaw(100+seed, 50, 25, 200, 1.5, 1.8))
	}
	return gs
}

// TestResumeEquality is the tentpole acceptance matrix: for every graph
// × interrupt point × thread count, an interrupted-then-resumed spooled
// run must produce a spool whose digest equals an uninterrupted
// enumeration of the same graph — zero dropped, zero duplicated
// bicliques, proven by multiset fingerprint rather than count.
func TestResumeEquality(t *testing.T) {
	graphs := resumeGraphs()
	if len(graphs) != 20 {
		t.Fatalf("corpus has %d graphs, want 20", len(graphs))
	}
	interrupts := []int64{1, 40, 400} // first emission, early, mid-run
	threadCounts := []int{1, 4, 8}

	for gi, g := range graphs {
		// One oracle digest per graph: the ordinary in-memory serial run.
		oracle, err := Run(g, Config{Engine: EngAda, Order: order.DegreeAscending, Threads: 1})
		if err != nil {
			t.Fatalf("graph %d: oracle: %v", gi, err)
		}
		for _, after := range interrupts {
			for _, threads := range threadCounts {
				name := fmt.Sprintf("g%02d/interrupt=%d/threads=%d", gi, after, threads)
				t.Run(name, func(t *testing.T) {
					c := Config{Engine: EngAda, Order: order.DegreeAscending, Threads: 1}
					if threads > 1 {
						c = Config{Engine: EngParAda, Order: order.DegreeAscending, Threads: threads}
					}
					res, err := RunSpooled(g, c, t.TempDir(), []int64{after})
					if err != nil {
						t.Fatal(err)
					}
					if !res.Digest.Equal(oracle) {
						t.Errorf("[%s] resumed spool digest %s != oracle %s (attempts=%d)",
							c, res.Digest, oracle, res.Attempts)
					}
					if res.Records != oracle.Count {
						t.Errorf("[%s] spool holds %d records, oracle enumerated %d",
							c, res.Records, oracle.Count)
					}
				})
			}
		}
	}
}

// TestResumeActuallyResumes pins that the matrix above is not passing
// vacuously: with an interrupt after the very first emission, the run
// cannot complete in one attempt, so a resume must have happened.
func TestResumeActuallyResumes(t *testing.T) {
	g := gen.Uniform(7, 60, 30, 240)
	res, err := RunSpooled(g, Config{Engine: EngAda, Order: order.DegreeAscending, Threads: 1},
		t.TempDir(), []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts < 2 {
		t.Fatalf("interrupt-at-first-emission completed in %d attempt(s): the resume path was never exercised", res.Attempts)
	}
}

// TestSpooledUninterruptedMatchesRun: the spool replay digest of a run
// that was never interrupted equals the in-memory digest — the durable
// path loses and invents nothing even without the resume machinery,
// across orderings (the spool stores original-graph ids, mapped back
// through the run's permutation exactly like the in-memory handler).
func TestSpooledUninterruptedMatchesRun(t *testing.T) {
	g := gen.PowerLaw(42, 60, 30, 250, 1.6, 1.9)
	for _, c := range []Config{
		{Engine: EngAda, Order: order.DegreeAscending, Threads: 1},
		{Engine: EngAda, Order: order.Random, Seed: 5, Threads: 1},
		{Engine: EngParAda, Order: order.UnilateralCore, Threads: 4},
		{Engine: EngBIT, Order: order.DegreeAscending, Threads: 1},
		{Engine: EngLN, Order: order.DegreeAscending, Threads: 1},
	} {
		want, err := Run(g, c)
		if err != nil {
			t.Fatalf("[%s] %v", c, err)
		}
		res, err := RunSpooled(g, c, t.TempDir(), nil)
		if err != nil {
			t.Fatalf("[%s] %v", c, err)
		}
		if !res.Digest.Equal(want) {
			t.Errorf("[%s] spool digest %s != in-memory digest %s", c, res.Digest, want)
		}
		if res.Attempts != 1 {
			t.Errorf("[%s] uninterrupted run took %d attempts", c, res.Attempts)
		}
	}
}

// TestResumeDenseSubtrees interrupts runs on a graph dense enough that
// the amortized stop check (tle.CheckEvery node visits per poll) trips
// mid-subtree rather than at a root boundary. Regression for the bug
// where a root whose subtree was cut short by a stop was still reported
// inline-done, lifting the watermark past partially-emitted output.
func TestResumeDenseSubtrees(t *testing.T) {
	g := gen.Uniform(11, 200, 100, 2400)
	oracle, err := Run(g, Config{Engine: EngAda, Order: order.DegreeAscending, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []Config{
		{Engine: EngAda, Order: order.DegreeAscending, Threads: 1},
		{Engine: EngParAda, Order: order.DegreeAscending, Threads: 4},
	} {
		res, err := RunSpooled(g, c, t.TempDir(), []int64{oracle.Count / 3})
		if err != nil {
			t.Fatalf("[%s] %v", c, err)
		}
		if !res.Digest.Equal(oracle) {
			t.Errorf("[%s] resumed digest %s != oracle %s (attempts=%d)", c, res.Digest, oracle, res.Attempts)
		}
		if res.Records != oracle.Count {
			t.Errorf("[%s] spool holds %d records, oracle enumerated %d", c, res.Records, oracle.Count)
		}
	}
}

// TestResumeRepeatedInterrupts chains several interrupts on one spool —
// the "flaky node" scenario — and still requires exact equality.
func TestResumeRepeatedInterrupts(t *testing.T) {
	g := gen.Uniform(3, 70, 35, 300)
	oracle, err := Run(g, Config{Engine: EngAda, Order: order.DegreeAscending, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 8} {
		c := Config{Engine: EngAda, Order: order.DegreeAscending, Threads: 1}
		if threads > 1 {
			c = Config{Engine: EngParAda, Order: order.DegreeAscending, Threads: threads}
		}
		res, err := RunSpooled(g, c, t.TempDir(), []int64{1, 3, 10, 50, 100})
		if err != nil {
			t.Fatalf("[%s] %v", c, err)
		}
		if !res.Digest.Equal(oracle) {
			t.Errorf("[%s] after %d attempts: digest %s != oracle %s", c, res.Attempts, res.Digest, oracle)
		}
	}
}
