package difftest

import (
	"repro/internal/graph"
)

// Property is a deterministic predicate over graphs that the minimizer
// preserves while shrinking — canonically "these two configs disagree on
// this graph".
type Property func(g *graph.Bipartite) bool

// MismatchProperty returns the predicate "a and b produce different
// digests on g". Runs that fail outright (harness errors) make the
// predicate false, so the minimizer never wanders into graphs where the
// disagreement is not reproduced cleanly.
func MismatchProperty(a, b Config) Property {
	return func(g *graph.Bipartite) bool {
		da, err := Run(g, a)
		if err != nil {
			return false
		}
		db, err := Run(g, b)
		if err != nil {
			return false
		}
		return !da.Equal(db)
	}
}

// DefaultShrinkBudget caps property evaluations during Minimize. ddmin on
// e edges needs O(e log e) evaluations in the typical case; the cap only
// guards against pathological flapping predicates.
const DefaultShrinkBudget = 600

// Minimize delta-debugs g's edge list down to a 1-minimal set of edges
// still satisfying prop (removing any single remaining edge breaks it,
// budget permitting), then compacts away untouched vertices. prop(g) must
// be true on entry; the returned graph satisfies prop and is never larger
// than g. budget ≤ 0 means DefaultShrinkBudget.
//
// This is Zeller's ddmin over the edge list: try dropping ever-finer
// complements/chunks, restart coarse after every successful reduction.
func Minimize(g *graph.Bipartite, prop Property, budget int) *graph.Bipartite {
	if budget <= 0 {
		budget = DefaultShrinkBudget
	}
	edges := g.Edges()
	nu, nv := g.NU(), g.NV()
	tryEdges := func(subset []graph.Edge) bool {
		if budget <= 0 {
			return false
		}
		budget--
		ng, err := graph.FromEdges(nu, nv, subset)
		if err != nil {
			return false
		}
		return prop(ng)
	}

	n := 2
	for len(edges) >= 2 && n <= len(edges) {
		chunk := (len(edges) + n - 1) / n
		reduced := false
		// Try each chunk alone (subset), then each complement.
		for start := 0; start < len(edges); start += chunk {
			end := min(start+chunk, len(edges))
			if end-start == len(edges) {
				continue
			}
			complement := make([]graph.Edge, 0, len(edges)-(end-start))
			complement = append(complement, edges[:start]...)
			complement = append(complement, edges[end:]...)
			if tryEdges(complement) {
				edges = complement
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if reduced {
			continue
		}
		if n >= len(edges) {
			break
		}
		n = min(n*2, len(edges))
		if budget <= 0 {
			break
		}
	}

	out, err := graph.FromEdges(nu, nv, edges)
	if err != nil {
		return g // unreachable: edges came from g
	}
	if compacted, ok := compact(out, prop); ok {
		return compacted
	}
	return out
}

// compact drops vertices with no remaining edges and relabels the rest
// densely, re-checking the property (compaction changes ids, and a
// disagreement can in principle be id-sensitive). Returns ok=false when
// the compacted graph no longer satisfies prop.
func compact(g *graph.Bipartite, prop Property) (*graph.Bipartite, bool) {
	mapU := make([]int32, g.NU())
	mapV := make([]int32, g.NV())
	for i := range mapU {
		mapU[i] = -1
	}
	for i := range mapV {
		mapV[i] = -1
	}
	var nu, nv int32
	edges := g.Edges()
	for _, e := range edges {
		if mapU[e.U] < 0 {
			mapU[e.U] = nu
			nu++
		}
		if mapV[e.V] < 0 {
			mapV[e.V] = nv
			nv++
		}
	}
	if int(nu) == g.NU() && int(nv) == g.NV() {
		return g, true // nothing to compact
	}
	for i, e := range edges {
		edges[i] = graph.Edge{U: mapU[e.U], V: mapV[e.V]}
	}
	ng, err := graph.FromEdges(int(nu), int(nv), edges)
	if err != nil || !prop(ng) {
		return nil, false
	}
	return ng, true
}
