package difftest

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

func TestFingerprintOrderInvariantWithinSides(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		L := randomIDs(rng, 1+rng.Intn(12))
		R := randomIDs(rng, 1+rng.Intn(12))
		want := Fingerprint(L, R)
		for shuffle := 0; shuffle < 5; shuffle++ {
			ls := append([]int32(nil), L...)
			rs := append([]int32(nil), R...)
			rng.Shuffle(len(ls), func(i, j int) { ls[i], ls[j] = ls[j], ls[i] })
			rng.Shuffle(len(rs), func(i, j int) { rs[i], rs[j] = rs[j], rs[i] })
			if got := Fingerprint(ls, rs); got != want {
				t.Fatalf("fingerprint depends on order: %x vs %x", got, want)
			}
		}
	}
}

func TestFingerprintSideAsymmetric(t *testing.T) {
	L := []int32{1, 2, 3}
	R := []int32{1, 2, 3}
	if Fingerprint(L, R) == 0 {
		t.Fatal("degenerate zero fingerprint")
	}
	a := Fingerprint([]int32{1, 2}, []int32{7})
	b := Fingerprint([]int32{7}, []int32{1, 2})
	if a == b {
		t.Fatal("fingerprint symmetric under side swap; side-swap metamorphic check would be blind")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := Fingerprint([]int32{1, 2, 3}, []int32{10, 11})
	perturbed := []struct {
		name string
		L, R []int32
	}{
		{"change L id", []int32{1, 2, 4}, []int32{10, 11}},
		{"change R id", []int32{1, 2, 3}, []int32{10, 12}},
		{"drop L id", []int32{1, 2}, []int32{10, 11}},
		{"drop R id", []int32{1, 2, 3}, []int32{10}},
		{"move id across sides", []int32{1, 2}, []int32{3, 10, 11}},
	}
	for _, p := range perturbed {
		if Fingerprint(p.L, p.R) == base {
			t.Fatalf("%s: fingerprint unchanged", p.name)
		}
	}
}

func TestDigestCommutativeAndMergeable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	fps := make([]uint64, 200)
	for i := range fps {
		fps[i] = rng.Uint64()
	}
	var forward, backward, merged Digest
	for _, fp := range fps {
		forward.Add(fp)
	}
	for i := len(fps) - 1; i >= 0; i-- {
		backward.Add(fps[i])
	}
	var shards [4]Digest
	for i, f := range fps {
		shards[i%4].Add(f)
	}
	for _, s := range shards {
		merged.Merge(s)
	}
	if !forward.Equal(backward) {
		t.Fatalf("digest order-dependent: %s vs %s", forward, backward)
	}
	if !forward.Equal(merged) {
		t.Fatalf("sharded merge diverges: %s vs %s", forward, merged)
	}
}

func TestDigestDetectsDropAndDuplicate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fps := make([]uint64, 50)
	for i := range fps {
		fps[i] = rng.Uint64()
	}
	var clean Digest
	for _, f := range fps {
		clean.Add(f)
	}
	// Drop one, double another: the count collides with the clean run but
	// the folds must not.
	var corrupt Digest
	for i, f := range fps {
		if i == 7 {
			continue
		}
		corrupt.Add(f)
		if i == 23 {
			corrupt.Add(f)
		}
	}
	if corrupt.Count != clean.Count {
		t.Fatalf("test setup: counts should collide (%d vs %d)", corrupt.Count, clean.Count)
	}
	if corrupt.Equal(clean) {
		t.Fatal("digest blind to drop+duplicate with colliding counts")
	}
}

// TestDigestMatchesKeySetEquality ties the digest to the repo's
// ground-truth equality currency: on random graphs, two enumerations have
// equal digests iff their canonical key sets are equal.
func TestDigestMatchesKeySetEquality(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := gen.Uniform(seed, 14, 10, 35)
		keys := core.BruteForceKeys(g)
		var viaKeys []string
		d := BruteDigest(g)
		var d2 Digest
		core.BruteForce(g, func(L, R []int32) {
			viaKeys = append(viaKeys, core.BicliqueKey(L, R))
			d2.Observe(L, R)
		})
		sort.Strings(viaKeys)
		if !reflect.DeepEqual(keys, viaKeys) {
			t.Fatalf("seed %d: BruteForce emit disagrees with BruteForceKeys", seed)
		}
		if !d.Equal(d2) {
			t.Fatalf("seed %d: identical enumerations, different digests", seed)
		}
		if int(d.Count) != len(keys) {
			t.Fatalf("seed %d: digest count %d != %d keys", seed, d.Count, len(keys))
		}
	}
}

func randomIDs(rng *rand.Rand, n int) []int32 {
	seen := map[int32]bool{}
	out := make([]int32, 0, n)
	for len(out) < n {
		id := int32(rng.Intn(1 << 20))
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}
