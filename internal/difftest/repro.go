package difftest

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/graph"
)

// reproHeader is the first line of every repro file.
const reproHeader = "% mbe difftest repro v1"

// Repro is a standalone, replayable record of a differential
// disagreement: the (minimized) graph plus the two configs that disagreed
// on it. Files serialize as a KONECT-style edge list whose '%' comment
// lines carry the metadata, so any KONECT tool can still read the graph.
type Repro struct {
	Graph *graph.Bipartite
	A, B  Config
	// Expect records the outcome replay should assert: "mismatch" while
	// the underlying bug (or injected fault) is live, "agree" once it is
	// fixed and the file is kept as a regression fixture.
	Expect string
	// Note is free-form context (what produced the graph, which PR, …).
	Note string
}

// Outcomes a repro can expect on replay.
const (
	ExpectMismatch = "mismatch"
	ExpectAgree    = "agree"
)

// WriteRepro serializes r.
func WriteRepro(w io.Writer, r Repro) error {
	bw := bufio.NewWriter(w)
	expect := r.Expect
	if expect == "" {
		expect = ExpectMismatch
	}
	fmt.Fprintln(bw, reproHeader)
	fmt.Fprintf(bw, "%% expect: %s\n", expect)
	if r.Note != "" {
		fmt.Fprintf(bw, "%% note: %s\n", r.Note)
	}
	if m := r.Graph.Meta(); m.Generator != "" {
		fmt.Fprintf(bw, "%% provenance: gen=%s seed=%d params=%q\n", m.Generator, m.Seed, m.Params)
	}
	fmt.Fprintf(bw, "%% nu=%d nv=%d\n", r.Graph.NU(), r.Graph.NV())
	fmt.Fprintf(bw, "%% configA: %s\n", r.A)
	fmt.Fprintf(bw, "%% configB: %s\n", r.B)
	for _, e := range r.Graph.Edges() {
		fmt.Fprintf(bw, "%d %d\n", e.U, e.V)
	}
	return bw.Flush()
}

// ReadRepro parses a repro file. Unlike graph.ReadKonect it does not
// re-orient or compact ids: the recorded nu/nv are authoritative, so the
// replay runs on the byte-identical graph the writer minimized.
func ReadRepro(rd io.Reader) (Repro, error) {
	var r Repro
	var nu, nv int
	haveDims := false
	var edges []graph.Edge
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if first {
			if line != reproHeader {
				return Repro{}, fmt.Errorf("difftest: not a repro file (header %q)", line)
			}
			first = false
			continue
		}
		if strings.HasPrefix(line, "%") {
			body := strings.TrimSpace(strings.TrimPrefix(line, "%"))
			if n, _ := fmt.Sscanf(body, "nu=%d nv=%d", &nu, &nv); n == 2 {
				haveDims = true
				continue
			}
			key, val, ok := strings.Cut(body, ":")
			if !ok {
				continue
			}
			val = strings.TrimSpace(val)
			var err error
			switch strings.TrimSpace(key) {
			case "expect":
				r.Expect = val
			case "note":
				r.Note = val
			case "configA":
				r.A, err = ParseConfig(val)
			case "configB":
				r.B, err = ParseConfig(val)
			}
			if err != nil {
				return Repro{}, fmt.Errorf("difftest: repro metadata %q: %w", line, err)
			}
			continue
		}
		var u, v int32
		if _, err := fmt.Sscanf(line, "%d %d", &u, &v); err != nil {
			return Repro{}, fmt.Errorf("difftest: repro edge line %q: %w", line, err)
		}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	if err := sc.Err(); err != nil {
		return Repro{}, err
	}
	if first {
		return Repro{}, fmt.Errorf("difftest: empty repro file")
	}
	if !haveDims {
		return Repro{}, fmt.Errorf("difftest: repro missing %% nu=… nv=… line")
	}
	g, err := graph.FromEdges(nu, nv, edges)
	if err != nil {
		return Repro{}, fmt.Errorf("difftest: repro graph: %w", err)
	}
	r.Graph = g
	if r.Expect == "" {
		r.Expect = ExpectMismatch
	}
	return r, nil
}

// LoadRepro reads a repro from disk.
func LoadRepro(path string) (Repro, error) {
	f, err := os.Open(path)
	if err != nil {
		return Repro{}, err
	}
	defer f.Close()
	r, err := ReadRepro(f)
	if err != nil {
		return Repro{}, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// SaveRepro writes r into dir with a deterministic content-derived name
// and returns the path. Identical repros map to identical files, so a
// test regenerating its fixture leaves the tree unchanged.
func SaveRepro(dir string, r Repro) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	var d Digest
	for _, e := range r.Graph.Edges() {
		d.Add(Fingerprint([]int32{e.U}, []int32{e.V}))
	}
	name := fmt.Sprintf("%s-vs-%s-%016x.repro", slug(r.A.Engine.String()), slug(r.B.Engine.String()), d.Sum^d.Fold)
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := WriteRepro(f, r); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// Replay runs both recorded configs on the recorded graph and reports the
// observed outcome (ExpectMismatch or ExpectAgree) together with the two
// digests.
func (r Repro) Replay() (outcome string, a, b Digest, err error) {
	if a, err = Run(r.Graph, r.A); err != nil {
		return "", a, b, err
	}
	if b, err = Run(r.Graph, r.B); err != nil {
		return "", a, b, err
	}
	if a.Equal(b) {
		return ExpectAgree, a, b, nil
	}
	return ExpectMismatch, a, b, nil
}

// ListRepros returns the sorted repro files under dir ("" and a missing
// dir are fine: no repros).
func ListRepros(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".repro") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}

func slug(s string) string {
	s = strings.ToLower(s)
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	return strings.Trim(b.String(), "-")
}
