package difftest

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// fuzzGraphFromBytes decodes an arbitrary byte string into a small
// bipartite graph: the first two bytes size the sides (1–16 each), each
// following byte pair is an edge. Same encoding as the core package's
// FuzzEnumerateAgreement, so corpus entries transfer.
func fuzzGraphFromBytes(data []byte) *graph.Bipartite {
	if len(data) < 2 {
		return nil
	}
	nu := 1 + int(data[0]%16)
	nv := 1 + int(data[1]%16)
	var edges []graph.Edge
	for i := 2; i+1 < len(data) && len(edges) < 512; i += 2 {
		edges = append(edges, graph.Edge{
			U: int32(int(data[i]) % nu),
			V: int32(int(data[i+1]) % nv),
		})
	}
	g, err := graph.FromEdges(nu, nv, edges)
	if err != nil {
		return nil
	}
	return g
}

// encodeGraph inverts fuzzGraphFromBytes for seeding: it renders a
// generated graph (both sides ≤ 16) into the fuzz byte encoding.
func encodeGraph(g *graph.Bipartite) []byte {
	data := []byte{byte(g.NU() - 1), byte(g.NV() - 1)}
	for _, e := range g.Edges() {
		data = append(data, byte(e.U), byte(e.V))
	}
	return data
}

// FuzzBBK asserts BBK's digest equals the brute-force oracle's on
// arbitrary small graphs, across every ordering. The seed corpus covers
// the generator families (uniform, power-law with hub skew, affiliation)
// plus degenerate shapes. Any disagreement is ddmin-minimized and saved
// as a replayable .repro under testdata/repros before failing.
func FuzzBBK(f *testing.F) {
	f.Add([]byte{9, 4, 0, 0, 1, 0, 2, 0, 4, 0, 0, 1, 1, 1, 0, 2, 2, 2})
	f.Add([]byte{1, 1, 0, 0})
	f.Add([]byte{16, 16})
	f.Add([]byte{4, 1, 0, 0, 1, 0, 2, 0, 3, 0}) // star
	for seed := int64(0); seed < 4; seed++ {
		f.Add(encodeGraph(gen.Uniform(seed, 10, 8, 30)))
		f.Add(encodeGraph(gen.PowerLaw(seed+10, 14, 6, 40, 1.2, 2.5)))
		f.Add(encodeGraph(gen.Affiliation(seed+20, gen.AffiliationConfig{
			NU: 12, NV: 8, Communities: 3, MeanU: 3, MeanV: 3, Density: 0.9, NoiseEdges: 6,
		})))
	}
	configs := Matrix(MatrixOpts{Threads: []int{1}, Seed: 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := fuzzGraphFromBytes(data)
		if g == nil {
			return
		}
		want := BruteDigest(g)
		for _, c := range configs {
			if c.Engine != EngBBK {
				continue
			}
			got, err := Run(g, c)
			if err != nil {
				t.Fatalf("[%s]: %v", c, err)
			}
			if got.Equal(want) {
				continue
			}
			ref := Config{Engine: EngAda, Order: c.Order, Seed: c.Seed, Threads: 1}
			min := Minimize(g, MismatchProperty(c, ref), 0)
			path, serr := SaveRepro("testdata/repros", Repro{
				Graph:  min,
				A:      c,
				B:      ref,
				Expect: ExpectMismatch,
				Note:   fmt.Sprintf("FuzzBBK: digest %s != oracle %s (|U|=%d |V|=%d |E|=%d)", got, want, g.NU(), g.NV(), g.NumEdges()),
			})
			if serr != nil {
				t.Errorf("saving repro: %v", serr)
			} else {
				t.Logf("minimized repro written to %s (%d edges)", path, min.NumEdges())
			}
			t.Fatalf("[%s]: digest %s != oracle %s", c, got, want)
		}
	})
}

// TestFuzzBBKOracleCap documents why FuzzBBK never trips the oracle's
// size guard: the decoder caps |V| at 16, under core.MaxBruteForceV.
func TestFuzzBBKOracleCap(t *testing.T) {
	if 16 > core.MaxBruteForceV {
		t.Fatalf("fuzz decoder V cap 16 exceeds oracle cap %d", core.MaxBruteForceV)
	}
}
