package difftest

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/spool"
)

// Spooled-run differential harness: enumerate through the durable spool
// path (internal/spool + internal/ckpt), interrupting and resuming at
// chosen points, and digest what the spool holds at the end. The
// invariant under test is the tentpole guarantee — an interrupted +
// resumed spool is byte-equivalent (as a biclique multiset) to an
// uninterrupted enumeration, with zero dropped and zero duplicated
// bicliques — checked with the same canonical digests the rest of the
// differential harness uses.

// SpoolRunResult reports one RunSpooled lifecycle.
type SpoolRunResult struct {
	Digest   Digest
	Attempts int   // enumeration attempts (interrupts + the final complete run)
	Records  int64 // records in the final spool
}

// RunSpooled enumerates g under c through a spool at dir, interrupting
// the run (context cancellation, exactly how Ctrl-C lands) after each
// emission count in interrupts, resuming after each, then letting the
// final attempt run to completion. The digest of the final spool
// contents is returned. Only core engines are supported (the spool
// path is wired through core.Options).
func RunSpooled(g *graph.Bipartite, c Config, dir string, interrupts []int64) (SpoolRunResult, error) {
	var out SpoolRunResult
	for _, after := range interrupts {
		complete, err := runSpooledOnce(g, c, dir, out.Attempts > 0, after)
		out.Attempts++
		if err != nil {
			return out, err
		}
		if complete {
			// The run beat the interrupt point; nothing left to resume.
			break
		}
	}
	// Final attempt(s): run to completion. One resume normally suffices;
	// the loop guards against a pathological non-advancing sequence.
	for i := 0; i < 3; i++ {
		complete, err := runSpooledOnce(g, c, dir, out.Attempts > 0, 0)
		out.Attempts++
		if err != nil {
			return out, err
		}
		if complete {
			d, n, err := SpoolReplayDigest(dir)
			out.Digest, out.Records = d, n
			return out, err
		}
	}
	return out, fmt.Errorf("difftest: %s: spooled run did not complete after %d attempts", c, out.Attempts)
}

// cancelSink counts emissions and cancels the run's context once the
// budget is spent — a deterministic-enough stand-in for an interrupt
// that always lands mid-enumeration.
type cancelSink struct {
	inner     core.Sink
	remaining atomic.Int64
	cancel    context.CancelFunc
}

func (s *cancelSink) Emit(worker int, root int32, L, R []int32) {
	s.inner.Emit(worker, root, L, R)
	if s.remaining.Add(-1) == 0 {
		s.cancel()
	}
}

// runSpooledOnce is one attempt: open (or resume) the session, wire the
// sink/frontier/start-root into core, enumerate — cancelling after
// cancelAfter emissions when > 0 — and close the session with the
// outcome. Returns whether enumeration ran to completion.
func runSpooledOnce(g *graph.Bipartite, c Config, dir string, resume bool, cancelAfter int64) (bool, error) {
	variant, ok := c.Engine.coreVariant()
	if !ok {
		return false, fmt.Errorf("difftest: %s: only core engines support spooling", c)
	}
	threads := 0
	if c.Engine == EngParAda && c.Threads > 1 {
		threads = c.Threads
	}
	workers := threads
	if workers < 1 {
		workers = 1
	}

	perm := order.Permutation(g, c.Order, c.Seed)
	pg, err := g.PermuteV(perm)
	if err != nil {
		return false, fmt.Errorf("difftest: %s: apply ordering: %w", c, err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sess, err := ckpt.Open(ckpt.OpenOptions{
		Dir: dir,
		Meta: spool.Meta{
			Version: 1, Tool: "difftest", Algorithm: c.Engine.String(),
			Ordering: c.Order.String(), OrderSeed: c.Seed, Tau: c.Tau, Shards: workers,
			NU: g.NU(), NV: g.NV(), Edges: g.NumEdges(), GraphHash: spool.GraphSignature(g),
		},
		Resume: resume,
		Every:  -1, // checkpoints only at Finish: deterministic resume points
		Writer: spool.WriterOptions{OnError: func(error) { cancel() }},
	})
	if err != nil {
		return false, err
	}
	if sess.AlreadyComplete() {
		return true, nil
	}

	var sink core.Sink = sess.Sink(perm, workers)
	if cancelAfter > 0 {
		cs := &cancelSink{inner: sink, cancel: cancel}
		cs.remaining.Store(cancelAfter)
		sink = cs
	}
	res, err := core.Enumerate(pg, core.Options{
		Variant:   variant,
		Tau:       c.Tau,
		Threads:   threads,
		Context:   ctx,
		Sink:      sink,
		Frontier:  sess.Frontier(),
		StartRoot: sess.StartRoot(),
	})
	complete := err == nil && res.StopReason == core.StopNone
	if ferr := sess.Finish(complete); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		return false, fmt.Errorf("difftest: %s: %w", c, err)
	}
	return complete, nil
}

// SpoolReplayDigest digests the spool's contents — the replay-side twin
// of Run's in-memory digest, comparable against it directly (the spool
// stores sides sorted in the original id space, and the fingerprint is
// order-invariant within sides). Fails on a dirty shard tail: a digest
// of silently truncated output is not comparable.
func SpoolReplayDigest(dir string) (Digest, int64, error) {
	var d Digest
	var n int64
	states, err := spool.Replay(dir, func(_ int32, L, R []int32) {
		d.Observe(L, R)
		n++
	})
	if err != nil {
		return d, n, err
	}
	return d, n, spool.Clean(states)
}
