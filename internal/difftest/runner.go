package difftest

import (
	"errors"
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/order"
)

// EmitSite is the faultinject site the runner consults once per emitted
// biclique when Config.Fault is armed.
const EmitSite = "difftest/emit"

// MapBack rewrites a biclique of a transformed graph into the original
// graph's id space (see metamorph.go). The returned slices may alias the
// inputs; an error means the transformation's invariant was violated,
// which is itself a detected bug.
type MapBack func(L, R []int32) ([]int32, []int32, error)

// Run enumerates g under c and returns the canonical digest of the
// emitted biclique set, with all ids mapped back to g's id space
// (orderings are applied internally, exactly as the public API does).
// A run that stops early (deadline, budget, panic) returns an error: a
// partial digest is not comparable.
func Run(g *graph.Bipartite, c Config) (Digest, error) {
	return RunMapped(g, c, nil)
}

// RunMapped is Run with an extra id-space translation applied to every
// biclique before fingerprinting — the hook the metamorphic checks use to
// compare a transformed graph's enumeration against the original's.
func RunMapped(g *graph.Bipartite, c Config, mb MapBack) (Digest, error) {
	perm := order.Permutation(g, c.Order, c.Seed)
	pg, err := g.PermuteV(perm)
	if err != nil {
		return Digest{}, fmt.Errorf("difftest: %s: apply ordering: %w", c, err)
	}

	var d Digest
	var mbErr error
	buf := make([]int32, 0, 64)
	handler := func(L, R []int32) {
		// Emission is serialized by the engines (the default contract), so
		// the shared buffer and digest are safe here.
		buf = buf[:0]
		for _, v := range R {
			buf = append(buf, perm[v])
		}
		l, r := L, buf
		if mb != nil {
			var merr error
			if l, r, merr = mb(l, r); merr != nil {
				if mbErr == nil {
					mbErr = merr
				}
				return
			}
		}
		d.Observe(l, r)
	}
	if c.Fault != nil {
		handler = injectEmitFault(handler, *c.Fault)
	}

	res, err := dispatch(pg, c, handler)
	if err != nil {
		return Digest{}, fmt.Errorf("difftest: %s: %w", c, err)
	}
	if res.StopReason != core.StopNone {
		return Digest{}, fmt.Errorf("difftest: %s: run stopped early (%s); digest not comparable", c, res.StopReason)
	}
	if mbErr != nil {
		return Digest{}, fmt.Errorf("difftest: %s: map back: %w", c, mbErr)
	}
	return d, nil
}

// dispatch routes the config to the owning engine package.
func dispatch(pg *graph.Bipartite, c Config, handler core.Handler) (core.Result, error) {
	if variant, ok := c.Engine.coreVariant(); ok {
		threads := 0
		if c.Engine == EngParAda && c.Threads > 1 {
			threads = c.Threads
		}
		return core.Enumerate(pg, core.Options{
			Variant:    variant,
			Tau:        c.Tau,
			Threads:    threads,
			OnBiclique: handler,
		})
	}
	alg, ok := c.Engine.baselineAlg()
	if !ok {
		return core.Result{}, fmt.Errorf("unknown engine %d", int(c.Engine))
	}
	threads := 1
	if c.Engine.Parallel() {
		threads = c.Threads
	}
	return baselines.Run(pg, alg, baselines.Options{
		Threads:    threads,
		OnBiclique: handler,
	})
}

// injectEmitFault wraps a handler with a fresh, deterministic injector so
// repeated runs of the same Config mutate the same emission — a
// requirement for the minimizer, whose predicate re-runs the config many
// times.
func injectEmitFault(inner core.Handler, f FaultSpec) core.Handler {
	inj := faultinject.New(0)
	switch f.Kind {
	case "dup":
		inj.DupAt(EmitSite, f.Visit)
	default:
		inj.SkipAt(EmitSite, f.Visit)
	}
	hook := inj.Hook()
	return func(L, R []int32) {
		switch err := hook(EmitSite); {
		case errors.Is(err, faultinject.ErrSkip):
			// drop the biclique
		case errors.Is(err, faultinject.ErrDup):
			inner(L, R)
			inner(L, R)
		default:
			inner(L, R)
		}
	}
}

// BruteDigest computes the oracle digest by exhaustive enumeration
// (|V| ≤ core.MaxBruteForceV).
func BruteDigest(g *graph.Bipartite) Digest {
	var d Digest
	core.BruteForce(g, d.Observe)
	return d
}

// Mismatch records one differential disagreement: two configs whose
// digests differ on a graph.
type Mismatch struct {
	Graph *graph.Bipartite
	A, B  Config
	DigA  Digest
	DigB  Digest
}

func (m Mismatch) String() string {
	return fmt.Sprintf("difftest: digest mismatch on %dx%d graph (|E|=%d):\n  [%s] %s\n  [%s] %s",
		m.Graph.NU(), m.Graph.NV(), m.Graph.NumEdges(), m.A, m.DigA, m.B, m.DigB)
}

// Sweep runs every config against the first (the reference) and returns
// all digest disagreements. Harness errors (a config that cannot run to
// completion) are returned as err and abort the sweep; disagreements do
// not.
func Sweep(g *graph.Bipartite, configs []Config) ([]Mismatch, error) {
	if len(configs) == 0 {
		return nil, nil
	}
	ref, err := Run(g, configs[0])
	if err != nil {
		return nil, err
	}
	var out []Mismatch
	for _, c := range configs[1:] {
		d, err := Run(g, c)
		if err != nil {
			return out, err
		}
		if !d.Equal(ref) {
			out = append(out, Mismatch{Graph: g, A: configs[0], B: c, DigA: ref, DigB: d})
		}
	}
	return out, nil
}
