package difftest

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/order"
)

// Engine identifies one enumeration implementation: the four serial
// AdaMBE-family variants, ParAdaMBE, the five competitor baselines, and
// the post-paper BBK engine.
type Engine int

const (
	EngBaseline Engine = iota // core Baseline (Algorithm 1)
	EngLN                     // core AdaMBE-LN
	EngBIT                    // core AdaMBE-BIT
	EngAda                    // core AdaMBE (Algorithm 2)
	EngParAda                 // ParAdaMBE (AdaMBE under the work-stealing pool)
	EngFMBE
	EngPMBE
	EngOOMBEA
	EngParMBE
	EngGMBE
	EngBBK // pivot-based bipartite Bron–Kerbosch (baselines.BBK)
	numEngines
)

// Engines lists every engine the differential harness covers.
func Engines() []Engine {
	out := make([]Engine, numEngines)
	for i := range out {
		out[i] = Engine(i)
	}
	return out
}

// String names the engine as in the paper.
func (e Engine) String() string {
	switch e {
	case EngBaseline:
		return "Baseline"
	case EngLN:
		return "AdaMBE-LN"
	case EngBIT:
		return "AdaMBE-BIT"
	case EngAda:
		return "AdaMBE"
	case EngParAda:
		return "ParAdaMBE"
	case EngFMBE:
		return "FMBE"
	case EngPMBE:
		return "PMBE"
	case EngOOMBEA:
		return "ooMBEA"
	case EngParMBE:
		return "ParMBE"
	case EngGMBE:
		return "GMBE-sim"
	case EngBBK:
		return "BBK"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// ParseEngine inverts String.
func ParseEngine(s string) (Engine, error) {
	for e := Engine(0); e < numEngines; e++ {
		if e.String() == s {
			return e, nil
		}
	}
	return 0, fmt.Errorf("difftest: unknown engine %q", s)
}

// Parallel reports whether the engine honours Config.Threads > 1.
func (e Engine) Parallel() bool {
	return e == EngParAda || e == EngParMBE || e == EngGMBE
}

// coreVariant maps AdaMBE-family engines onto core.Variant.
func (e Engine) coreVariant() (core.Variant, bool) {
	switch e {
	case EngBaseline:
		return core.Baseline, true
	case EngLN:
		return core.LN, true
	case EngBIT:
		return core.BIT, true
	case EngAda, EngParAda:
		return core.Ada, true
	}
	return 0, false
}

// baselineAlg maps competitor engines onto baselines.Algorithm.
func (e Engine) baselineAlg() (baselines.Algorithm, bool) {
	switch e {
	case EngFMBE:
		return baselines.FMBE, true
	case EngPMBE:
		return baselines.PMBE, true
	case EngOOMBEA:
		return baselines.OOMBEA, true
	case EngParMBE:
		return baselines.ParMBE, true
	case EngGMBE:
		return baselines.GMBE, true
	case EngBBK:
		return baselines.BBK, true
	}
	return "", false
}

// FaultSpec is a seeded emission mutation the runner injects through
// internal/faultinject at EmitSite: exactly one biclique (the Visit-th
// emitted) is dropped ("skip") or delivered twice ("dup"). It simulates
// the class of bug the fingerprint digests exist to catch, and is what
// the end-to-end shrinker test arms.
type FaultSpec struct {
	Kind  string // "skip" or "dup"
	Visit uint64 // 1-based emission index the fault fires at
}

func (f FaultSpec) String() string { return fmt.Sprintf("%s@%d", f.Kind, f.Visit) }

// ParseFaultSpec inverts FaultSpec.String ("skip@3", "dup@1").
func ParseFaultSpec(s string) (FaultSpec, error) {
	kind, at, ok := strings.Cut(s, "@")
	if !ok || (kind != "skip" && kind != "dup") {
		return FaultSpec{}, fmt.Errorf("difftest: malformed fault spec %q", s)
	}
	visit, err := strconv.ParseUint(at, 10, 64)
	if err != nil || visit == 0 {
		return FaultSpec{}, fmt.Errorf("difftest: malformed fault visit in %q", s)
	}
	return FaultSpec{Kind: kind, Visit: visit}, nil
}

// Config pins one cell of the differential matrix: an engine, the V-side
// processing order applied to the input (all engines run on the permuted
// graph with emitted ids mapped back, so digests are comparable across
// orderings), the thread count, τ, and an optional injected emission
// fault. Configs are value types and serialize losslessly via String /
// ParseConfig for repro files.
type Config struct {
	Engine  Engine
	Order   order.Kind
	Seed    int64 // ordering seed (order.Random)
	Threads int   // 0 or 1 = serial; >1 only for Parallel() engines
	Tau     int   // 0 = core.DefaultTau; AdaMBE family only
	Fault   *FaultSpec
}

// String renders the config as "engine=… order=… seed=… threads=… tau=…
// [fault=…]"; ParseConfig inverts it.
func (c Config) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine=%s order=%s seed=%d threads=%d tau=%d",
		c.Engine, c.Order, c.Seed, c.Threads, c.Tau)
	if c.Fault != nil {
		fmt.Fprintf(&b, " fault=%s", c.Fault)
	}
	return b.String()
}

// ParseConfig inverts Config.String.
func ParseConfig(s string) (Config, error) {
	var c Config
	for _, field := range strings.Fields(s) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Config{}, fmt.Errorf("difftest: malformed config field %q", field)
		}
		var err error
		switch key {
		case "engine":
			c.Engine, err = ParseEngine(val)
		case "order":
			c.Order, err = order.ParseKind(val)
		case "seed":
			c.Seed, err = strconv.ParseInt(val, 10, 64)
		case "threads":
			c.Threads, err = strconv.Atoi(val)
		case "tau":
			c.Tau, err = strconv.Atoi(val)
		case "fault":
			var f FaultSpec
			if f, err = ParseFaultSpec(val); err == nil {
				c.Fault = &f
			}
		default:
			return Config{}, fmt.Errorf("difftest: unknown config field %q", key)
		}
		if err != nil {
			return Config{}, err
		}
	}
	return c, nil
}

// MatrixOpts scales the differential matrix.
type MatrixOpts struct {
	// Threads are the counts tried for parallel-capable engines (serial
	// engines always run with 1). Default {1, 4, 8}.
	Threads []int
	// Orders are the V-side orderings swept. Default ASC, RAND, UC.
	Orders []order.Kind
	// Seed feeds the random ordering.
	Seed int64
	// Tau overrides τ for the AdaMBE family (0 = default).
	Tau int
}

// Matrix expands the full engine × ordering × thread-count cross product.
// The first config is always the reference cell (serial AdaMBE, first
// ordering) that Sweep compares every other cell against.
func Matrix(o MatrixOpts) []Config {
	threads := o.Threads
	if len(threads) == 0 {
		threads = []int{1, 4, 8}
	}
	orders := o.Orders
	if len(orders) == 0 {
		orders = []order.Kind{order.DegreeAscending, order.Random, order.UnilateralCore}
	}
	var out []Config
	out = append(out, Config{Engine: EngAda, Order: orders[0], Seed: o.Seed, Threads: 1, Tau: o.Tau})
	for _, e := range Engines() {
		ts := []int{1}
		if e.Parallel() {
			ts = threads
		}
		for _, k := range orders {
			for _, t := range ts {
				c := Config{Engine: e, Order: k, Seed: o.Seed, Threads: t, Tau: o.Tau}
				if c == out[0] {
					continue // reference cell already present
				}
				out = append(out, c)
			}
		}
	}
	return out
}
