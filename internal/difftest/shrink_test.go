package difftest

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/order"
)

// reprosDir is the package-local store of minimized repro fixtures; the
// end-to-end test regenerates its fixture deterministically, so running
// the suite leaves the checked-in tree unchanged.
const reprosDir = "testdata/repros"

// TestInjectedMutationCaughtAndMinimized is the end-to-end exercise the
// acceptance criteria require: a seeded emission mutation (one biclique
// silently dropped via internal/faultinject) must be caught by the
// fingerprint sweep, shrunk by the delta-debugging minimizer, and written
// as a standalone repro under testdata/repros.
func TestInjectedMutationCaughtAndMinimized(t *testing.T) {
	g := gen.Affiliation(303, gen.AffiliationConfig{
		NU: 40, NV: 24, Communities: 6, MeanU: 4, MeanV: 3, Density: 0.9, NoiseEdges: 30,
	})
	clean := Config{Engine: EngAda, Order: order.DegreeAscending}
	faulty := clean
	faulty.Fault = &FaultSpec{Kind: "skip", Visit: 1}

	// 1. The sweep catches the mutation (count differs by one here, but
	// the assertion is digest equality, which also catches count-neutral
	// corruption).
	mismatches, err := Sweep(g, []Config{clean, faulty})
	if err != nil {
		t.Fatal(err)
	}
	if len(mismatches) != 1 {
		t.Fatalf("sweep found %d mismatches, want 1", len(mismatches))
	}
	m := mismatches[0]
	if m.DigA.Count != m.DigB.Count+1 {
		t.Fatalf("skip@1 should drop exactly one biclique: %s vs %s", m.DigA, m.DigB)
	}

	// 2. The minimizer shrinks the failing graph to a 1-minimal witness:
	// with skip@1 any single biclique witnesses the drop, so the minimum
	// is a single edge.
	prop := MismatchProperty(clean, faulty)
	if !prop(g) {
		t.Fatal("property must hold on the original failing graph")
	}
	min := Minimize(g, prop, 0)
	if !prop(min) {
		t.Fatal("minimized graph lost the mismatch")
	}
	if min.NumEdges() != 1 {
		t.Fatalf("minimized to %d edges, want 1 (graph %dx%d)", min.NumEdges(), min.NU(), min.NV())
	}
	if min.NU() != 1 || min.NV() != 1 {
		t.Fatalf("compaction left %dx%d vertices, want 1x1", min.NU(), min.NV())
	}

	// 3. The repro is standalone: written, re-read, and replayed from the
	// file alone it still reproduces the recorded outcome.
	path, err := SaveRepro(reprosDir, Repro{
		Graph:  min,
		A:      clean,
		B:      faulty,
		Expect: ExpectMismatch,
		Note:   "seeded emission-skip mutation, end-to-end shrinker fixture",
	})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.A != clean || loaded.B.Fault == nil || *loaded.B.Fault != *faulty.Fault {
		t.Fatalf("configs did not round-trip: A=%s B=%s", loaded.A, loaded.B)
	}
	outcome, da, db, err := loaded.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if outcome != ExpectMismatch {
		t.Fatalf("replay outcome %q, want %q (digests %s vs %s)", outcome, ExpectMismatch, da, db)
	}
}

// TestDupMutationCaughtAndMinimized covers the double-emission flavour,
// which count-based checks see but only when the count check is exact —
// and which digests catch even when paired with a drop.
func TestDupMutationCaughtAndMinimized(t *testing.T) {
	g := gen.Uniform(304, 40, 20, 160)
	clean := Config{Engine: EngAda}
	faulty := clean
	faulty.Fault = &FaultSpec{Kind: "dup", Visit: 1}

	prop := MismatchProperty(clean, faulty)
	if !prop(g) {
		t.Fatal("dup mutation not visible")
	}
	min := Minimize(g, prop, 0)
	if min.NumEdges() != 1 {
		t.Fatalf("minimized to %d edges, want 1", min.NumEdges())
	}
}

// TestReplayAllRepros replays every checked-in (or nightly-produced)
// repro and asserts its recorded expectation: "mismatch" fixtures must
// still disagree (they carry injected faults or open bugs), "agree"
// fixtures are regression tests for bugs since fixed.
func TestReplayAllRepros(t *testing.T) {
	paths, err := ListRepros(reprosDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Skip("no repros recorded")
	}
	for _, p := range paths {
		t.Run(filepath.Base(p), func(t *testing.T) {
			r, err := LoadRepro(p)
			if err != nil {
				t.Fatal(err)
			}
			outcome, da, db, err := r.Replay()
			if err != nil {
				t.Fatal(err)
			}
			if outcome != r.Expect {
				t.Fatalf("replay outcome %q, recorded expectation %q\n  [%s] %s\n  [%s] %s",
					outcome, r.Expect, r.A, da, r.B, db)
			}
		})
	}
}

func TestReproRoundTrip(t *testing.T) {
	g := gen.Uniform(55, 9, 6, 20)
	r := Repro{
		Graph:  g,
		A:      Config{Engine: EngParAda, Order: order.Random, Seed: 9, Threads: 8, Tau: 128},
		B:      Config{Engine: EngGMBE, Order: order.UnilateralCore, Threads: 4},
		Expect: ExpectAgree,
		Note:   "round-trip fixture",
	}
	var buf bytes.Buffer
	if err := WriteRepro(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRepro(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.A != r.A || got.B != r.B || got.Expect != r.Expect || got.Note != r.Note {
		t.Fatalf("metadata did not round-trip:\n got %+v\nwant %+v", got, r)
	}
	if got.Graph.NU() != g.NU() || got.Graph.NV() != g.NV() {
		t.Fatalf("dims did not round-trip: %dx%d vs %dx%d", got.Graph.NU(), got.Graph.NV(), g.NU(), g.NV())
	}
	ea, eb := g.Edges(), got.Graph.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge count %d vs %d", len(eb), len(ea))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d: %v vs %v", i, eb[i], ea[i])
		}
	}
	// And the replay machinery accepts it end to end.
	if outcome, _, _, err := got.Replay(); err != nil || outcome != ExpectAgree {
		t.Fatalf("replay: outcome=%q err=%v", outcome, err)
	}
}

// TestMinimizePreservesArbitraryProperty checks the minimizer against a
// property unrelated to engine digests (contains a specific edge), to
// pin its contract: result satisfies prop and is 1-minimal under budget.
func TestMinimizePreservesArbitraryProperty(t *testing.T) {
	g := gen.Uniform(8, 30, 15, 120)
	target := g.Edges()[17]
	prop := func(h *graph.Bipartite) bool {
		if int(target.U) >= h.NU() || int(target.V) >= h.NV() {
			return false
		}
		return h.HasEdge(target.U, target.V)
	}
	min := Minimize(g, prop, 0)
	if !prop(min) {
		t.Fatal("minimized graph lost the property")
	}
	if min.NumEdges() != 1 {
		t.Fatalf("want single surviving edge, got %d", min.NumEdges())
	}
}
