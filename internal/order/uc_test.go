package order

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// bruteProjection builds the one-mode projection of V by the definition:
// v and w are adjacent iff they share at least one U-neighbor. Quadratic
// on purpose — it shares no code with the fast builder.
func bruteProjection(g *graph.Bipartite) [][]int32 {
	nv := g.NV()
	adj := make([][]int32, nv)
	for v := int32(0); v < int32(nv); v++ {
		for w := v + 1; w < int32(nv); w++ {
			share := false
			for _, u := range g.NeighborsOfV(v) {
				if g.HasEdge(u, w) {
					share = true
					break
				}
			}
			if share {
				adj[v] = append(adj[v], w)
				adj[w] = append(adj[w], v)
			}
		}
	}
	return adj
}

// bruteCoreness computes coreness from its fixed-point definition rather
// than by peeling: core(v) = max k such that v survives in the k-core
// (the maximal subgraph of minimum degree ≥ k). For each k it re-derives
// the k-core from scratch by iterated deletion.
func bruteCoreness(adj [][]int32) []int32 {
	n := len(adj)
	core := make([]int32, n)
	for k := 1; ; k++ {
		alive := make([]bool, n)
		for i := range alive {
			alive[i] = true
		}
		for changed := true; changed; {
			changed = false
			for v := 0; v < n; v++ {
				if !alive[v] {
					continue
				}
				d := 0
				for _, w := range adj[v] {
					if alive[w] {
						d++
					}
				}
				if d < k {
					alive[v] = false
					changed = true
				}
			}
		}
		any := false
		for v := 0; v < n; v++ {
			if alive[v] {
				core[v] = int32(k)
				any = true
			}
		}
		if !any {
			return core
		}
	}
}

// TestUnilateralCorenessMatchesBruteForce cross-checks the bucket-queue
// peeling implementation against the definition-level oracle on 200
// seeded random instances covering empty, sparse, dense, and skewed
// shapes.
func TestUnilateralCorenessMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nu := 1 + rng.Intn(12)
		nv := 1 + rng.Intn(12)
		maxEdges := nu * nv
		m := rng.Intn(maxEdges + 1)
		edges := make([]graph.Edge, 0, m)
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: int32(rng.Intn(nu)), V: int32(rng.Intn(nv))})
		}
		g, err := graph.FromEdges(nu, nv, edges)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		want := bruteCoreness(bruteProjection(g))
		got := unilateralCorenessBudget(g, 1<<40)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("seed %d (%dx%d, %d edges): coreness[%d] = %d, want %d\n got %v\nwant %v",
					seed, nu, nv, g.NumEdges(), v, got[v], want[v], got, want)
			}
		}
	}
}

// TestUnilateralCorenessFallback pins the over-budget approximation to its
// documented formula: the two-hop degree Σ_{u∈N(v)} (deg(u)−1).
func TestUnilateralCorenessFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	edges := make([]graph.Edge, 0, 60)
	for i := 0; i < 60; i++ {
		edges = append(edges, graph.Edge{U: int32(rng.Intn(10)), V: int32(rng.Intn(8))})
	}
	g, err := graph.FromEdges(10, 8, edges)
	if err != nil {
		t.Fatal(err)
	}
	got := unilateralCorenessBudget(g, 0) // force the fallback path
	for v := int32(0); v < int32(g.NV()); v++ {
		var want int64
		for _, u := range g.NeighborsOfV(v) {
			want += int64(g.DegU(u) - 1)
		}
		if int64(got[v]) != want {
			t.Fatalf("fallback coreness[%d] = %d, want two-hop degree %d", v, got[v], want)
		}
	}
}
