// Package order implements the V-side vertex orderings evaluated in the
// paper (Fig. 12): ascending degree (AdaMBE's default), random, and the
// unilateral-core order introduced by ooMBEA. An ordering is materialized
// as a permutation and applied with graph.PermuteV, after which the
// enumeration kernels simply process V in ascending id order.
package order

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Kind selects a vertex-ordering scheme.
type Kind int

const (
	// DegreeAscending sorts V by degree ascending (AdaMBE-ASC, the paper's
	// default per Algorithm 2 line 1 and Fig. 12).
	DegreeAscending Kind = iota
	// Random shuffles V uniformly (AdaMBE-RAND).
	Random
	// UnilateralCore orders V by ascending unilateral coreness, the order
	// used by ooMBEA (AdaMBE-UC). Computing it requires peeling the
	// one-mode projection of V, which is the "additional overhead" the
	// paper attributes to this scheme.
	UnilateralCore
)

// String returns the name used in the paper's figures.
func (k Kind) String() string {
	switch k {
	case DegreeAscending:
		return "ASC"
	case Random:
		return "RAND"
	case UnilateralCore:
		return "UC"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind maps a name ("asc", "rand", "uc") to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "asc", "ASC", "increasing":
		return DegreeAscending, nil
	case "rand", "RAND", "random":
		return Random, nil
	case "uc", "UC", "unilateral":
		return UnilateralCore, nil
	}
	return 0, fmt.Errorf("order: unknown ordering %q (want asc|rand|uc)", s)
}

// Permutation returns a permutation p of V such that processing new id i =
// old id p[i] in ascending i realizes the ordering. seed is used only by
// Random.
func Permutation(g *graph.Bipartite, k Kind, seed int64) []int32 {
	nv := g.NV()
	perm := make([]int32, nv)
	for i := range perm {
		perm[i] = int32(i)
	}
	switch k {
	case DegreeAscending:
		sort.SliceStable(perm, func(i, j int) bool {
			return g.DegV(perm[i]) < g.DegV(perm[j])
		})
	case Random:
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(nv, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	case UnilateralCore:
		core := unilateralCoreness(g)
		sort.SliceStable(perm, func(i, j int) bool {
			return core[perm[i]] < core[perm[j]]
		})
	default:
		panic(fmt.Sprintf("order: unknown Kind %d", int(k)))
	}
	return perm
}

// Apply returns g with its V side relabeled into the given order.
func Apply(g *graph.Bipartite, k Kind, seed int64) *graph.Bipartite {
	ng, err := g.PermuteV(Permutation(g, k, seed))
	if err != nil {
		// Permutation always returns a valid permutation of g's V side.
		panic(fmt.Sprintf("order: internal error: %v", err))
	}
	return ng
}

// projectionBudget caps the one-mode projection size (in adjacency entries)
// before unilateralCoreness falls back to the two-hop-degree approximation.
const projectionBudget = 1 << 26

// unilateralCoreness computes, for every v ∈ V, its coreness in the
// one-mode projection of V (two V-vertices are adjacent iff they share at
// least one U-neighbor), by standard min-degree peeling. When the
// projection would exceed the budget (in adjacency entries) it falls back
// to the two-hop degree Σ_{u∈N(v)} (deg(u)−1), preserving the spirit of
// the order at bounded cost.
func unilateralCoreness(g *graph.Bipartite) []int32 {
	return unilateralCorenessBudget(g, projectionBudget)
}

func unilateralCorenessBudget(g *graph.Bipartite, budget int64) []int32 {
	nv := g.NV()
	var projEntries int64
	for u := int32(0); u < int32(g.NU()); u++ {
		d := int64(g.DegU(u))
		projEntries += d * (d - 1)
	}
	if projEntries > budget {
		core := make([]int32, nv)
		for v := int32(0); v < int32(nv); v++ {
			var s int64
			for _, u := range g.NeighborsOfV(v) {
				s += int64(g.DegU(u) - 1)
			}
			if s > 1<<30 {
				s = 1 << 30
			}
			core[v] = int32(s)
		}
		return core
	}

	// Build the projection adjacency (deduplicated per vertex).
	adj := make([][]int32, nv)
	seen := make([]int32, nv)
	for i := range seen {
		seen[i] = -1
	}
	for v := int32(0); v < int32(nv); v++ {
		for _, u := range g.NeighborsOfV(v) {
			for _, w := range g.NeighborsOfU(u) {
				if w != v && seen[w] != v {
					seen[w] = v
					adj[v] = append(adj[v], w)
				}
			}
		}
	}

	// Min-degree peeling with a bucket queue (O(E_proj)).
	deg := make([]int, nv)
	maxDeg := 0
	for v := range adj {
		deg[v] = len(adj[v])
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	buckets := make([][]int32, maxDeg+1)
	for v := 0; v < nv; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], int32(v))
	}
	core := make([]int32, nv)
	removed := make([]bool, nv)
	cur := int32(0)
	scanStart := 0
	for processed := 0; processed < nv; {
		// Find the lowest non-empty bucket. Degrees only drop by one per
		// removal, so resuming the scan one level below the last removal
		// keeps the whole peel O(E_proj + V·1).
		var v int32 = -1
		for d := scanStart; d <= maxDeg; d++ {
			for len(buckets[d]) > 0 {
				cand := buckets[d][len(buckets[d])-1]
				buckets[d] = buckets[d][:len(buckets[d])-1]
				if !removed[cand] && deg[cand] == d {
					v = cand
					if int32(d) > cur {
						cur = int32(d)
					}
					scanStart = d - 1
					if scanStart < 0 {
						scanStart = 0
					}
					break
				}
			}
			if v >= 0 {
				break
			}
		}
		if v < 0 {
			break // all stale entries; shouldn't happen
		}
		removed[v] = true
		core[v] = cur
		processed++
		for _, w := range adj[v] {
			if !removed[w] {
				deg[w]--
				buckets[deg[w]] = append(buckets[deg[w]], w)
			}
		}
	}
	return core
}
