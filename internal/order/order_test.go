package order

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/graph"
)

func randomGraph(t *testing.T, seed int64, nu, nv, m int) *graph.Bipartite {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{U: int32(rng.Intn(nu)), V: int32(rng.Intn(nv))}
	}
	g, err := graph.FromEdges(nu, nv, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustAdj(t *testing.T, nu int, rows [][]int32) *graph.Bipartite {
	t.Helper()
	g, err := graph.FromAdjacency(nu, rows)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func isPermutation(p []int32, n int) bool {
	if len(p) != n {
		return false
	}
	seen := make([]bool, n)
	for _, x := range p {
		if x < 0 || int(x) >= n || seen[x] {
			return false
		}
		seen[x] = true
	}
	return true
}

func TestPermutationIsValidForAllKinds(t *testing.T) {
	g := randomGraph(t, 1, 60, 40, 300)
	for _, k := range []Kind{DegreeAscending, Random, UnilateralCore} {
		p := Permutation(g, k, 99)
		if !isPermutation(p, g.NV()) {
			t.Fatalf("%v: not a permutation: %v", k, p)
		}
	}
}

func TestDegreeAscendingSorts(t *testing.T) {
	g := graph.PaperExample()
	p := Permutation(g, DegreeAscending, 0)
	degs := make([]int, len(p))
	for i, v := range p {
		degs[i] = g.DegV(v)
	}
	if !sort.IntsAreSorted(degs) {
		t.Fatalf("degrees not ascending: %v", degs)
	}
	// Paper graph degrees: v0=7, v1=3, v2=6, v3=6 → first must be v1.
	if p[0] != 1 {
		t.Fatalf("min-degree vertex = %d, want 1", p[0])
	}
}

func TestDegreeAscendingIsStable(t *testing.T) {
	// v2 and v3 tie at degree 6; stability must keep v2 before v3.
	g := graph.PaperExample()
	p := Permutation(g, DegreeAscending, 0)
	pos := map[int32]int{}
	for i, v := range p {
		pos[v] = i
	}
	if pos[2] > pos[3] {
		t.Fatalf("stable sort violated: pos(v2)=%d pos(v3)=%d", pos[2], pos[3])
	}
}

func TestRandomIsSeededAndDeterministic(t *testing.T) {
	g := randomGraph(t, 2, 30, 30, 200)
	a := Permutation(g, Random, 5)
	b := Permutation(g, Random, 5)
	c := Permutation(g, Random, 6)
	same := true
	diff := false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different shuffles")
	}
	if !diff {
		t.Fatal("different seeds produced identical shuffles (suspicious)")
	}
}

func TestUnilateralCoreOrdersByCoreness(t *testing.T) {
	// Two disjoint components: a dense K3,3 block (high unilateral core)
	// and three pendant v's each hanging off a private u (core 0).
	rows := [][]int32{
		{0, 1, 2}, {0, 1, 2}, {0, 1, 2}, // dense block, v0..v2
		{3}, {4}, {5}, // pendants, v3..v5
	}
	g := mustAdj(t, 6, rows)
	p := Permutation(g, UnilateralCore, 0)
	// The three pendants (core 0) must precede the dense block (core 2).
	posDense := len(p)
	for i, v := range p {
		if v <= 2 && i < posDense {
			posDense = i
		}
	}
	for i, v := range p {
		if v >= 3 && i > posDense {
			t.Fatalf("pendant v%d ordered after dense block: %v", v, p)
		}
	}
}

func TestUnilateralCoreFallback(t *testing.T) {
	// Force the fallback path by shrinking the budget? The budget is a
	// constant, so instead check the fallback math directly on a graph
	// whose projection is tiny — both paths must yield a valid permutation.
	g := randomGraph(t, 3, 500, 200, 3000)
	p := Permutation(g, UnilateralCore, 0)
	if !isPermutation(p, g.NV()) {
		t.Fatal("UC permutation invalid")
	}
}

func TestApplyPreservesGraph(t *testing.T) {
	g := randomGraph(t, 4, 40, 25, 150)
	for _, k := range []Kind{DegreeAscending, Random, UnilateralCore} {
		ng := Apply(g, k, 11)
		if ng.NumEdges() != g.NumEdges() || ng.NU() != g.NU() || ng.NV() != g.NV() {
			t.Fatalf("%v: Apply changed graph size", k)
		}
		if err := ng.Validate(); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		// Degree multiset must be preserved.
		a, b := make([]int, g.NV()), make([]int, g.NV())
		for v := 0; v < g.NV(); v++ {
			a[v], b[v] = g.DegV(int32(v)), ng.DegV(int32(v))
		}
		sort.Ints(a)
		sort.Ints(b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: degree multiset changed", k)
			}
		}
	}
}

func TestKindStringAndParse(t *testing.T) {
	for _, k := range []Kind{DegreeAscending, Random, UnilateralCore} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("ParseKind accepted bogus name")
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown kind has empty name")
	}
}

func TestOrderEmptyGraph(t *testing.T) {
	g, err := graph.FromEdges(0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []Kind{DegreeAscending, Random, UnilateralCore} {
		if p := Permutation(g, k, 0); len(p) != 0 {
			t.Fatalf("%v: non-empty permutation for empty graph", k)
		}
	}
}

func TestUnilateralCoreFallbackPath(t *testing.T) {
	// Force the two-hop-degree fallback with a zero budget; the result
	// must still be a usable coreness vector (orderable, right length) and
	// must rank an isolated pendant below a dense block, like the exact
	// peeling does.
	rows := [][]int32{
		{0, 1, 2}, {0, 1, 2}, {0, 1, 2}, // dense block v0..v2
		{3}, // pendant v3
	}
	g := mustAdj(t, 4, rows)
	exact := unilateralCorenessBudget(g, 1<<30)
	approx := unilateralCorenessBudget(g, 0)
	if len(exact) != 4 || len(approx) != 4 {
		t.Fatalf("lengths: %d, %d", len(exact), len(approx))
	}
	if approx[3] >= approx[0] {
		t.Fatalf("fallback ranks pendant (%d) above dense block (%d)", approx[3], approx[0])
	}
	if exact[3] >= exact[0] {
		t.Fatalf("exact ranks pendant (%d) above dense block (%d)", exact[3], exact[0])
	}
}

func TestUnilateralCoreFallbackSaturates(t *testing.T) {
	// A vertex whose two-hop degree overflows the int32 cap must saturate,
	// not wrap. Construct: one v adjacent to a single huge-degree u is not
	// feasible at test scale, so call the budgeted variant directly on a
	// modest star and just check non-negative outputs.
	rows := [][]int32{{0}, {0}, {0}}
	g := mustAdj(t, 1, rows)
	for _, c := range unilateralCorenessBudget(g, 0) {
		if c < 0 {
			t.Fatalf("negative coreness %d", c)
		}
	}
}
