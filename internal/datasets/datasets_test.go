package datasets

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/order"
)

func TestRegistryShape(t *testing.T) {
	if n := len(General()); n != 12 {
		t.Fatalf("General() has %d entries, want 12 (Table I)", n)
	}
	if n := len(Large()); n != 2 {
		t.Fatalf("Large() has %d entries, want 2", n)
	}
	if n := len(LJ()); n != 5 {
		t.Fatalf("LJ() has %d entries, want 5 (Table II)", n)
	}
	seen := map[string]bool{}
	for _, s := range All() {
		if s.Name == "" || s.Acronym == "" || s.Build == nil {
			t.Fatalf("malformed spec %+v", s)
		}
		if seen[s.Acronym] {
			t.Fatalf("duplicate acronym %q", s.Acronym)
		}
		seen[s.Acronym] = true
		if s.PaperMB <= 0 || s.PaperU <= 0 || s.PaperV <= 0 || s.PaperE <= 0 {
			t.Fatalf("%s: missing paper stats", s.Acronym)
		}
	}
}

func TestPaperMBOrderingAscending(t *testing.T) {
	gen := General()
	for i := 1; i < len(gen); i++ {
		if gen[i].PaperMB < gen[i-1].PaperMB {
			t.Fatalf("Table I order violated: %s (%d) before %s (%d)",
				gen[i-1].Acronym, gen[i-1].PaperMB, gen[i].Acronym, gen[i].PaperMB)
		}
	}
	lj := LJ()
	for i := 1; i < len(lj); i++ {
		if lj[i].PaperMB < lj[i-1].PaperMB {
			t.Fatal("Table II order violated")
		}
	}
}

func TestBuildsAreValidAndOriented(t *testing.T) {
	// Building every dataset is cheap; validating CSR structure is O(E).
	for _, s := range All() {
		g := s.Build()
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Acronym, err)
		}
		if g.NV() > g.NU() {
			t.Fatalf("%s: not oriented, |V|=%d > |U|=%d", s.Acronym, g.NV(), g.NU())
		}
		if g.NumEdges() == 0 {
			t.Fatalf("%s: empty graph", s.Acronym)
		}
	}
}

func TestBuildsAreDeterministic(t *testing.T) {
	for _, s := range General()[:4] { // a sample is enough; generators are seeded
		a, b := s.Build(), s.Build()
		if a.NumEdges() != b.NumEdges() || a.NU() != b.NU() || a.NV() != b.NV() {
			t.Fatalf("%s: non-deterministic build", s.Acronym)
		}
	}
}

func TestByName(t *testing.T) {
	if s, ok := ByName("GH"); !ok || s.Name != "Github" {
		t.Fatalf("ByName(GH) = %+v, %v", s, ok)
	}
	if s, ok := ByName("Github"); !ok || s.Acronym != "GH" {
		t.Fatalf("ByName(Github) = %+v, %v", s, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName accepted unknown dataset")
	}
}

func TestLJSamplesAreNestedScale(t *testing.T) {
	lj := LJ()
	var prev int64
	for _, s := range lj {
		g := s.Build()
		if g.NumEdges() <= prev {
			t.Fatalf("%s: edge count %d not increasing", s.Acronym, g.NumEdges())
		}
		prev = g.NumEdges()
	}
}

// TestSmallDatasetCountsOrdered verifies on the three cheapest datasets
// that the measured maximal-biclique counts preserve Table I's ascending
// order — the key property the analogue registry must reproduce.
func TestSmallDatasetCountsOrdered(t *testing.T) {
	names := []string{"UL", "UF", "Mti"}
	var prev int64 = -1
	for _, n := range names {
		s, _ := ByName(n)
		g := order.Apply(s.Build(), order.DegreeAscending, 0)
		res, err := core.Enumerate(g, core.Options{Variant: core.Ada})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count <= prev {
			t.Fatalf("%s: count %d not above previous %d", n, res.Count, prev)
		}
		prev = res.Count
	}
}

func TestLJParentShared(t *testing.T) {
	a, b := LJParent(), LJParent()
	if a != b {
		t.Fatal("LJParent not memoized")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	var _ *graph.Bipartite = a
}
