// Package datasets is the registry of synthetic stand-ins for the paper's
// datasets (Table I general + large sets, Table II LiveJournal samples).
// The real KONECT downloads are unavailable offline, so each entry is a
// seeded generator chosen to echo the original's *structure* — side skew,
// degree tail, community overlap — at a scale where every experiment
// finishes on a laptop. Entries are listed in the paper's order (ascending
// maximal-biclique count); the reproduction requirement is that this
// ordering and the algorithm rankings survive, not the absolute numbers.
//
// If a real KONECT edge list is present on disk, cmd/mbe can load it
// directly via graph.ReadKonectFile; the registry is only the offline
// default.
package datasets

import (
	"fmt"
	"sync"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Spec describes one dataset: how to build the synthetic analogue and what
// the paper reported for the original (for EXPERIMENTS.md comparisons).
type Spec struct {
	Name     string // full name used in Table I
	Acronym  string // paper's acronym (UL, UF, …)
	Category string // paper's category column
	Kind     string // "general", "large" or "lj"

	// Paper-scale statistics of the original dataset (Table I / II).
	PaperU, PaperV, PaperE int64
	PaperMB                int64

	// Build generates the analogue, oriented so |V| ≤ |U|.
	Build func() *graph.Bipartite
}

func orient(g *graph.Bipartite) *graph.Bipartite { return g.Orient() }

// General returns the twelve general datasets of Table I, in the paper's
// (ascending maximal-biclique-count) order.
func General() []Spec {
	return []Spec{
		{
			Name: "Unicode", Acronym: "UL", Category: "Feature", Kind: "general",
			PaperU: 614, PaperV: 254, PaperE: 1255, PaperMB: 460,
			Build: func() *graph.Bipartite {
				return orient(gen.Uniform(101, 614, 254, 1255))
			},
		},
		{
			Name: "UCforum", Acronym: "UF", Category: "Interaction", Kind: "general",
			PaperU: 899, PaperV: 522, PaperE: 7089, PaperMB: 16261,
			Build: func() *graph.Bipartite {
				return orient(gen.Uniform(102, 899, 522, 7089))
			},
		},
		{
			Name: "MovieLens", Acronym: "Mti", Category: "Feature", Kind: "general",
			PaperU: 16528, PaperV: 7601, PaperE: 71154, PaperMB: 140266,
			Build: func() *graph.Bipartite {
				return orient(gen.PowerLaw(103, 8000, 3600, 36000, 1.35, 1.35))
			},
		},
		{
			Name: "Teams", Acronym: "TM", Category: "Affiliation", Kind: "general",
			PaperU: 901130, PaperV: 34461, PaperE: 1366466, PaperMB: 517943,
			Build: func() *graph.Bipartite {
				return orient(gen.Affiliation(104, gen.AffiliationConfig{
					NU: 60000, NV: 2400, Communities: 5200,
					MeanU: 14, MeanV: 2, Density: 0.9, NoiseEdges: 8000,
				}))
			},
		},
		{
			Name: "ActorMovies", Acronym: "AM", Category: "Affiliation", Kind: "general",
			PaperU: 383640, PaperV: 127823, PaperE: 1470404, PaperMB: 1075444,
			Build: func() *graph.Bipartite {
				return orient(gen.Affiliation(105, gen.AffiliationConfig{
					NU: 40000, NV: 13000, Communities: 5500,
					MeanU: 10, MeanV: 3, Density: 0.95, NoiseEdges: 10000,
				}))
			},
		},
		{
			Name: "Wikipedia", Acronym: "WC", Category: "Feature", Kind: "general",
			PaperU: 1853493, PaperV: 182947, PaperE: 3795796, PaperMB: 1677522,
			Build: func() *graph.Bipartite {
				return orient(gen.PowerLaw(106, 30000, 3600, 130000, 1.55, 1.5))
			},
		},
		{
			Name: "YouTube", Acronym: "YG", Category: "Affiliation", Kind: "general",
			PaperU: 94238, PaperV: 30087, PaperE: 293360, PaperMB: 1826587,
			Build: func() *graph.Bipartite {
				return orient(gen.Affiliation(107, gen.AffiliationConfig{
					NU: 16000, NV: 5000, Communities: 2600,
					MeanU: 12, MeanV: 4, Density: 0.85, NoiseEdges: 9000,
				}))
			},
		},
		{
			Name: "StackOverflow", Acronym: "SO", Category: "Rating", Kind: "general",
			PaperU: 545195, PaperV: 96680, PaperE: 1301942, PaperMB: 3320824,
			Build: func() *graph.Bipartite {
				return orient(gen.PowerLaw(108, 24000, 4200, 113000, 1.52, 1.45))
			},
		},
		{
			Name: "DBLP", Acronym: "Pa", Category: "Authorship", Kind: "general",
			PaperU: 5624219, PaperV: 1953085, PaperE: 12282059, PaperMB: 4899032,
			Build: func() *graph.Bipartite {
				return orient(gen.Affiliation(109, gen.AffiliationConfig{
					NU: 70000, NV: 24000, Communities: 14000,
					MeanU: 6, MeanV: 4, Density: 0.97, NoiseEdges: 12000,
				}))
			},
		},
		{
			Name: "IMDB", Acronym: "IM", Category: "Affiliation", Kind: "general",
			PaperU: 896302, PaperV: 303617, PaperE: 3782463, PaperMB: 5160061,
			Build: func() *graph.Bipartite {
				return orient(gen.Affiliation(110, gen.AffiliationConfig{
					NU: 48000, NV: 16000, Communities: 7000,
					MeanU: 11, MeanV: 4, Density: 0.9, NoiseEdges: 14000,
				}))
			},
		},
		{
			Name: "BookCrossing", Acronym: "BX", Category: "Interaction", Kind: "general",
			PaperU: 340523, PaperV: 105278, PaperE: 1149739, PaperMB: 54458953,
			Build: func() *graph.Bipartite {
				return orient(gen.Affiliation(111, gen.AffiliationConfig{
					NU: 9000, NV: 2600, Communities: 1500,
					MeanU: 14, MeanV: 6, Density: 0.82, NoiseEdges: 7000,
				}))
			},
		},
		{
			Name: "Github", Acronym: "GH", Category: "Authorship", Kind: "general",
			PaperU: 120867, PaperV: 56519, PaperE: 440237, PaperMB: 55346398,
			Build: func() *graph.Bipartite {
				return orient(gen.Affiliation(112, gen.AffiliationConfig{
					NU: 7000, NV: 2200, Communities: 1300,
					MeanU: 15, MeanV: 7, Density: 0.8, NoiseEdges: 5000,
				}))
			},
		},
	}
}

// Large returns the two large datasets of Table I (Fig. 9).
func Large() []Spec {
	return []Spec{
		{
			Name: "CebWiki", Acronym: "ceb", Category: "Authorship", Kind: "large",
			PaperU: 8483068, PaperV: 3132, PaperE: 11792890, PaperMB: 263138916,
			Build: func() *graph.Bipartite {
				// Extreme side skew: a tiny V of super-hubs, like the
				// bot-driven CebWiki edit graph.
				return orient(gen.PowerLaw(113, 90000, 300, 430000, 1.18, 1.6))
			},
		},
		{
			Name: "TVTropes", Acronym: "DBT", Category: "Feature", Kind: "large",
			PaperU: 87678, PaperV: 64415, PaperE: 3232134, PaperMB: 19636996096,
			Build: func() *graph.Bipartite {
				// Dense overlapping feature blocks: the biclique-count
				// explosion dataset (19.6B in the paper).
				return orient(gen.Affiliation(114, gen.AffiliationConfig{
					NU: 12000, NV: 6200, Communities: 3100,
					MeanU: 20, MeanV: 9, Density: 0.78, NoiseEdges: 11000,
				}))
			},
		},
	}
}

var (
	ljOnce   sync.Once
	ljParent *graph.Bipartite
)

// LJParent returns the shared synthetic LiveJournal-analogue parent graph
// from which the LJ samples are drawn (paper: |U|=7.5M, |V|=3.2M,
// |E|=112M; here scaled down ~50×).
func LJParent() *graph.Bipartite {
	ljOnce.Do(func() {
		ljParent = gen.Affiliation(115, gen.AffiliationConfig{
			NU: 60000, NV: 26000, Communities: 11000,
			MeanU: 14, MeanV: 6, Density: 1.0, NoiseEdges: 90000,
		})
	})
	return ljParent
}

// LJ returns the five sampled datasets of Table II (LJ10–LJ50): x% of the
// parent's edges, matching the paper's sampling protocol.
func LJ() []Spec {
	specs := make([]Spec, 0, 5)
	paperStats := []struct{ u, v, e, mb int64 }{
		{2301031, 1421088, 11227130, 7430705},
		{2704651, 2357485, 22456757, 61836924},
		{3163966, 2889804, 33686334, 343257225},
		{3894262, 2992774, 44917368, 1524229722},
		{4572628, 3057410, 56150150, 6387845280},
	}
	for i, pct := range []int{10, 20, 30, 40, 50} {
		frac := float64(pct) / 100
		ps := paperStats[i]
		specs = append(specs, Spec{
			Name:    fmt.Sprintf("LJ%d", pct),
			Acronym: fmt.Sprintf("LJ%d", pct),
			Kind:    "lj", Category: "Sampled",
			PaperU: ps.u, PaperV: ps.v, PaperE: ps.e, PaperMB: ps.mb,
			Build: func() *graph.Bipartite {
				return orient(gen.SampleEdges(LJParent(), frac, 116))
			},
		})
	}
	return specs
}

// All returns every registered dataset.
func All() []Spec {
	out := General()
	out = append(out, Large()...)
	out = append(out, LJ()...)
	return out
}

// ByName finds a dataset by full name or acronym (case-sensitive).
func ByName(name string) (Spec, bool) {
	for _, s := range All() {
		if s.Name == name || s.Acronym == name {
			return s, true
		}
	}
	return Spec{}, false
}
