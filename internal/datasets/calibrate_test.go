package datasets

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/order"
)

// TestCalibration prints per-dataset stats and AdaMBE counts/runtimes.
// Run with: go test ./internal/datasets -run Calibration -v -calibrate
// It is skipped in -short mode and bounded per dataset.
func TestCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration skipped in short mode")
	}
	for _, s := range All() {
		s := s
		t.Run(s.Acronym, func(t *testing.T) {
			g := s.Build()
			st := graph.Summarize(g)
			og := order.Apply(g, order.DegreeAscending, 0)
			start := time.Now()
			res, err := core.Enumerate(og, core.Options{
				Variant:  core.Ada,
				Deadline: time.Now().Add(30 * time.Second),
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%-6s |U|=%-7d |V|=%-7d |E|=%-8d MB=%-10d timedOut=%v elapsed=%v",
				s.Acronym, st.NU, st.NV, st.Edges, res.Count, res.TimedOut, time.Since(start).Round(time.Millisecond))
		})
	}
}
