package bitset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSetAddContainsRemove(t *testing.T) {
	s := New(128)
	for _, i := range []int{0, 1, 63, 64, 65, 127} {
		if s.Contains(i) {
			t.Fatalf("fresh set contains %d", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("set missing %d after Add", i)
		}
	}
	if got := s.Len(); got != 6 {
		t.Fatalf("Len = %d, want 6", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("set contains 64 after Remove")
	}
	if got := s.Len(); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}
}

func TestSetGrowsBeyondCapacity(t *testing.T) {
	s := New(8)
	s.Add(1000)
	if !s.Contains(1000) {
		t.Fatal("set missing 1000 after growth")
	}
	if s.Contains(999) {
		t.Fatal("spurious member 999")
	}
}

func TestSetRemoveBeyondCapacityIsNoop(t *testing.T) {
	s := New(8)
	s.Remove(1 << 20) // must not panic or grow
	if !s.Empty() {
		t.Fatal("set not empty")
	}
}

func TestSetZeroValueUsable(t *testing.T) {
	var s Set
	if s.Contains(3) || !s.Empty() || s.Len() != 0 {
		t.Fatal("zero Set misbehaves before Add")
	}
	s.Add(3)
	if !s.Contains(3) {
		t.Fatal("zero Set missing 3 after Add")
	}
}

func TestSetSliceRoundTrip(t *testing.T) {
	in := []int{9, 2, 77, 2, 500, 0}
	s := FromSlice(in)
	want := []int{0, 2, 9, 77, 500}
	got := s.Slice()
	if len(got) != len(want) {
		t.Fatalf("Slice = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
}

func TestSetClearAndClearSlice(t *testing.T) {
	s := FromSlice([]int{1, 2, 3, 200})
	s.ClearSlice([]int32{2, 200})
	if s.Contains(2) || s.Contains(200) || !s.Contains(1) || !s.Contains(3) {
		t.Fatalf("ClearSlice wrong result: %v", s)
	}
	s.Clear()
	if !s.Empty() {
		t.Fatal("Clear left members behind")
	}
}

func TestSetEqualDifferentCapacities(t *testing.T) {
	a := New(8)
	b := New(1024)
	a.Add(5)
	b.Add(5)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("equal sets with different capacities compare unequal")
	}
	b.Add(900)
	if a.Equal(b) || b.Equal(a) {
		t.Fatal("unequal sets compare equal")
	}
}

func TestSetSubsetAndIntersection(t *testing.T) {
	a := FromSlice([]int{1, 2, 3})
	b := FromSlice([]int{1, 2, 3, 4, 100})
	if !a.SubsetOf(b) {
		t.Fatal("a ⊄ b")
	}
	if b.SubsetOf(a) {
		t.Fatal("b ⊆ a")
	}
	if got := a.IntersectionLen(b); got != 3 {
		t.Fatalf("IntersectionLen = %d, want 3", got)
	}
}

func TestSetString(t *testing.T) {
	s := FromSlice([]int{2, 0})
	if got := s.String(); got != "{0, 2}" {
		t.Fatalf("String = %q", got)
	}
}

// Property: Set semantics match map[int]bool under a random op sequence.
func TestSetMatchesMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		s := New(64)
		model := map[int]bool{}
		for op := 0; op < 500; op++ {
			i := rng.Intn(300)
			switch rng.Intn(3) {
			case 0:
				s.Add(i)
				model[i] = true
			case 1:
				s.Remove(i)
				delete(model, i)
			case 2:
				if s.Contains(i) != model[i] {
					t.Fatalf("trial %d: Contains(%d) = %v, model %v", trial, i, s.Contains(i), model[i])
				}
			}
		}
		if s.Len() != len(model) {
			t.Fatalf("trial %d: Len = %d, model %d", trial, s.Len(), len(model))
		}
		keys := make([]int, 0, len(model))
		for k := range model {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		got := s.Slice()
		for i := range keys {
			if got[i] != keys[i] {
				t.Fatalf("trial %d: Slice diverges from model", trial)
			}
		}
	}
}

// Property (testing/quick): intersection length is symmetric and bounded.
func TestQuickIntersectionSymmetric(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a, b := New(1<<16), New(1<<16)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		il := a.IntersectionLen(b)
		return il == b.IntersectionLen(a) && il <= a.Len() && il <= b.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property (testing/quick): SubsetOf agrees with the definition.
func TestQuickSubsetDefinition(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := New(256), New(256)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		want := true
		a.ForEach(func(i int) {
			if !b.Contains(i) {
				want = false
			}
		})
		return a.SubsetOf(b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaskBasics(t *testing.T) {
	for _, width := range []int{1, 2, 4} {
		a := NewMaskArena(width)
		m := a.New()
		if !m.Zero() || m.Count() != 0 {
			t.Fatalf("width %d: fresh mask not zero", width)
		}
		hi := width*64 - 1
		m.Set(0)
		m.Set(hi)
		if !m.Has(0) || !m.Has(hi) || m.Has(1) {
			t.Fatalf("width %d: Set/Has mismatch", width)
		}
		if m.Count() != 2 {
			t.Fatalf("width %d: Count = %d, want 2", width, m.Count())
		}
		bitsGot := m.Bits()
		if len(bitsGot) != 2 || bitsGot[0] != 0 || bitsGot[1] != hi {
			t.Fatalf("width %d: Bits = %v", width, bitsGot)
		}
	}
}

func TestMaskFillLow(t *testing.T) {
	for _, tc := range []struct{ width, n int }{
		{1, 0}, {1, 1}, {1, 63}, {1, 64}, {2, 64}, {2, 65}, {2, 128}, {3, 130},
	} {
		a := NewMaskArena(tc.width)
		m := a.New()
		m.FillLow(tc.n)
		if got := m.Count(); got != tc.n {
			t.Fatalf("width %d FillLow(%d): Count = %d", tc.width, tc.n, got)
		}
		for i := 0; i < tc.width*64; i++ {
			if m.Has(i) != (i < tc.n) {
				t.Fatalf("width %d FillLow(%d): bit %d = %v", tc.width, tc.n, i, m.Has(i))
			}
		}
	}
}

func TestMaskAndSubsetEqual(t *testing.T) {
	a := NewMaskArena(2)
	x, y, z := a.New(), a.New(), a.New()
	x.Set(3)
	x.Set(100)
	y.Set(3)
	y.Set(70)
	MaskAnd(z, x, y)
	if !z.Has(3) || z.Has(70) || z.Has(100) || z.Count() != 1 {
		t.Fatalf("MaskAnd wrong: %v", z.Bits())
	}
	if !z.SubsetOf(x) || !z.SubsetOf(y) {
		t.Fatal("intersection not subset of operands")
	}
	if x.SubsetOf(y) {
		t.Fatal("x ⊆ y but shouldn't be")
	}
	w := a.New()
	w.CopyFrom(x)
	if !w.Equal(x) || w.Equal(y) {
		t.Fatal("Equal/CopyFrom mismatch")
	}
}

func TestMaskAndNotZero(t *testing.T) {
	a := NewMaskArena(2)
	x, y, dst := a.New(), a.New(), a.New()
	x.Set(5)
	y.Set(6)
	if MaskAndNotZero(dst, x, y) {
		t.Fatal("disjoint masks reported non-zero intersection")
	}
	if !dst.Zero() {
		t.Fatal("dst not zero after disjoint AND")
	}
	y.Set(5)
	if !MaskAndNotZero(dst, x, y) {
		t.Fatal("overlapping masks reported zero intersection")
	}
	if !dst.Has(5) || dst.Count() != 1 {
		t.Fatalf("dst wrong: %v", dst.Bits())
	}
}

func TestMaskArenaIsolation(t *testing.T) {
	a := NewMaskArena(1)
	if a.Width() != 1 {
		t.Fatalf("Width = %d", a.Width())
	}
	// Ensure masks from the same arena never alias, across block refills.
	masks := make([]Mask, 0, arenaBlockWords+10)
	for i := 0; i < arenaBlockWords+10; i++ {
		m := a.New()
		m.Set(i % 64)
		masks = append(masks, m)
	}
	for i, m := range masks {
		if m.Count() != 1 || !m.Has(i%64) {
			t.Fatalf("mask %d corrupted: %v", i, m.Bits())
		}
	}
}

func TestMaskArenaInvalidWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMaskArena(0) did not panic")
		}
	}()
	NewMaskArena(0)
}

func TestWordsFor(t *testing.T) {
	cases := map[int]int{-1: 0, 0: 0, 1: 1, 64: 1, 65: 2, 128: 2, 129: 3}
	for n, want := range cases {
		if got := WordsFor(n); got != want {
			t.Fatalf("WordsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func BenchmarkMaskAnd1Word(b *testing.B) {
	a := NewMaskArena(1)
	x, y, z := a.New(), a.New(), a.New()
	x.FillLow(40)
	y.Set(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MaskAnd(z, x, y)
	}
}

func BenchmarkSetIntersectionLen(b *testing.B) {
	x, y := New(1<<16), New(1<<16)
	for i := 0; i < 1<<16; i += 3 {
		x.Add(i)
	}
	for i := 0; i < 1<<16; i += 5 {
		y.Add(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.IntersectionLen(y)
	}
}
