package bitset

import "math/bits"

// Batched mask kernels over packed mask storage.
//
// A bitmap CG stores its masks packed in one []uint64 (stride words per
// mask, see internal/core's bitCG). The enumeration hot loops never need a
// single mask in isolation — they need one query mask L_q compared against
// a *block* of candidate masks: classify every remaining candidate
// (disjoint / overlapping / superset), find the first excluded vertex that
// violates maximality, filter the excluded set down to the vertices still
// overlapping L_q. The kernels below take the packed storage and a block of
// CG-local indices and answer those questions in a single pass each,
// GMBE-style: L_q's words are hoisted into registers once per call and
// reused across the whole block, instead of being re-read (and its slice
// header re-materialized) once per candidate as the Mask methods would.
//
// Every kernel is unswitched on the stride: widths 1, 2, 3 and 4 words
// (τ ≤ 256, the configurable fast path) get dedicated inner loops whose
// word operations are fully unrolled, wider masks fall back to a generic
// loop. The dispatch happens once per call — once per candidate *block* —
// not once per candidate.

// SmallStrideMax is the widest mask stride (in 64-bit words) with a
// dedicated unrolled kernel; τ up to 64*SmallStrideMax stays on it.
const SmallStrideMax = 4

// Rel classifies the relation of one candidate mask m to the query mask
// L_q (always from L_q's point of view).
type Rel uint8

const (
	// RelDisjoint: L_q ∩ m = ∅ — the candidate leaves the subtree.
	RelDisjoint Rel = iota
	// RelOverlap: ∅ ⊂ L_q ∩ m ⊂ L_q — the candidate stays a candidate.
	RelOverlap
	// RelSubset: L_q ⊆ m — the candidate joins R_q.
	RelSubset
)

// AndPacked stores lq AND packed-mask k into dst. len(lq) == stride; dst
// may alias lq.
func AndPacked(dst, lq, packed []uint64, stride int, k int32) {
	off := int(k) * stride
	m := packed[off : off+stride]
	switch stride {
	case 1:
		dst[0] = lq[0] & m[0]
	case 2:
		dst[0] = lq[0] & m[0]
		dst[1] = lq[1] & m[1]
	case 3:
		dst[0] = lq[0] & m[0]
		dst[1] = lq[1] & m[1]
		dst[2] = lq[2] & m[2]
	case 4:
		dst[0] = lq[0] & m[0]
		dst[1] = lq[1] & m[1]
		dst[2] = lq[2] & m[2]
		dst[3] = lq[3] & m[3]
	default:
		for w := range m {
			dst[w] = lq[w] & m[w]
		}
	}
}

// ClassifyPacked classifies every packed mask named by ks against lq in
// one batched pass, writing out[i] for ks[i]. len(out) >= len(ks);
// len(lq) == stride. This is the node-generation kernel: one call splits a
// node's whole remaining candidate block into R_q / C_q / gone.
func ClassifyPacked(lq, packed []uint64, stride int, ks []int32, out []Rel) {
	switch stride {
	case 1:
		classify1(lq[0], packed, ks, out)
	case 2:
		classify2(lq[0], lq[1], packed, ks, out)
	case 3:
		classify3(lq[0], lq[1], lq[2], packed, ks, out)
	case 4:
		classify4(lq[0], lq[1], lq[2], lq[3], packed, ks, out)
	default:
		classifyGeneric(lq, packed, stride, ks, out)
	}
}

func rel3(subset bool, any uint64) Rel {
	if subset {
		return RelSubset
	}
	if any != 0 {
		return RelOverlap
	}
	return RelDisjoint
}

func classify1(l0 uint64, packed []uint64, ks []int32, out []Rel) {
	_ = out[:len(ks)]
	for i, k := range ks {
		a0 := l0 & packed[k]
		out[i] = rel3(a0 == l0, a0)
	}
}

func classify2(l0, l1 uint64, packed []uint64, ks []int32, out []Rel) {
	_ = out[:len(ks)]
	for i, k := range ks {
		off := int(k) * 2
		m := packed[off : off+2]
		a0, a1 := l0&m[0], l1&m[1]
		out[i] = rel3(a0 == l0 && a1 == l1, a0|a1)
	}
}

func classify3(l0, l1, l2 uint64, packed []uint64, ks []int32, out []Rel) {
	_ = out[:len(ks)]
	for i, k := range ks {
		off := int(k) * 3
		m := packed[off : off+3]
		a0, a1, a2 := l0&m[0], l1&m[1], l2&m[2]
		out[i] = rel3(a0 == l0 && a1 == l1 && a2 == l2, a0|a1|a2)
	}
}

func classify4(l0, l1, l2, l3 uint64, packed []uint64, ks []int32, out []Rel) {
	_ = out[:len(ks)]
	for i, k := range ks {
		off := int(k) * 4
		m := packed[off : off+4]
		a0, a1 := l0&m[0], l1&m[1]
		a2, a3 := l2&m[2], l3&m[3]
		out[i] = rel3(a0 == l0 && a1 == l1 && a2 == l2 && a3 == l3, a0|a1|a2|a3)
	}
}

func classifyGeneric(lq, packed []uint64, stride int, ks []int32, out []Rel) {
	_ = out[:len(ks)]
	for i, k := range ks {
		off := int(k) * stride
		m := packed[off : off+stride]
		var any, diff uint64
		for w := range m {
			any |= lq[w] & m[w]
			diff |= lq[w] &^ m[w]
		}
		out[i] = rel3(diff == 0, any)
	}
}

// FirstSupersetPacked returns the index i of the first ks[i] whose packed
// mask is a superset of lq (lq ⊆ mask, the maximality violation), or -1.
// Early exit at the first hit, like the per-vertex check it replaces.
func FirstSupersetPacked(lq, packed []uint64, stride int, ks []int32) int {
	switch stride {
	case 1:
		l0 := lq[0]
		for i, k := range ks {
			if l0&^packed[k] == 0 {
				return i
			}
		}
	case 2:
		l0, l1 := lq[0], lq[1]
		for i, k := range ks {
			off := int(k) * 2
			m := packed[off : off+2]
			if l0&^m[0]|l1&^m[1] == 0 {
				return i
			}
		}
	case 3:
		l0, l1, l2 := lq[0], lq[1], lq[2]
		for i, k := range ks {
			off := int(k) * 3
			m := packed[off : off+3]
			if l0&^m[0]|l1&^m[1]|l2&^m[2] == 0 {
				return i
			}
		}
	case 4:
		l0, l1, l2, l3 := lq[0], lq[1], lq[2], lq[3]
		for i, k := range ks {
			off := int(k) * 4
			m := packed[off : off+4]
			if l0&^m[0]|l1&^m[1]|l2&^m[2]|l3&^m[3] == 0 {
				return i
			}
		}
	default:
		for i, k := range ks {
			off := int(k) * stride
			m := packed[off : off+stride]
			var diff uint64
			for w := range m {
				diff |= lq[w] &^ m[w]
			}
			if diff == 0 {
				return i
			}
		}
	}
	return -1
}

// FilterIntersectsPacked writes into dst every k ∈ ks whose packed mask
// overlaps lq, preserving order, and returns the count. len(dst) >=
// len(ks). This builds a child's excluded set in one pass.
func FilterIntersectsPacked(lq, packed []uint64, stride int, ks []int32, dst []int32) int {
	n := 0
	switch stride {
	case 1:
		l0 := lq[0]
		for _, k := range ks {
			if l0&packed[k] != 0 {
				dst[n] = k
				n++
			}
		}
	case 2:
		l0, l1 := lq[0], lq[1]
		for _, k := range ks {
			off := int(k) * 2
			m := packed[off : off+2]
			if l0&m[0]|l1&m[1] != 0 {
				dst[n] = k
				n++
			}
		}
	case 3:
		l0, l1, l2 := lq[0], lq[1], lq[2]
		for _, k := range ks {
			off := int(k) * 3
			m := packed[off : off+3]
			if l0&m[0]|l1&m[1]|l2&m[2] != 0 {
				dst[n] = k
				n++
			}
		}
	case 4:
		l0, l1, l2, l3 := lq[0], lq[1], lq[2], lq[3]
		for _, k := range ks {
			off := int(k) * 4
			m := packed[off : off+4]
			if l0&m[0]|l1&m[1]|l2&m[2]|l3&m[3] != 0 {
				dst[n] = k
				n++
			}
		}
	default:
		for _, k := range ks {
			off := int(k) * stride
			m := packed[off : off+stride]
			var any uint64
			for w := range m {
				any |= lq[w] & m[w]
			}
			if any != 0 {
				dst[n] = k
				n++
			}
		}
	}
	return n
}

// MaskAndCount stores a AND b into dst and returns the population count of
// the result in the same pass (fused AND+popcount). Widths must match.
func MaskAndCount(dst, a, b Mask) int {
	_ = dst[len(a)-1]
	_ = b[len(a)-1]
	n := 0
	for i := range a {
		w := a[i] & b[i]
		dst[i] = w
		n += bits.OnesCount64(w)
	}
	return n
}
