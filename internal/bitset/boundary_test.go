package bitset

import (
	"math/rand"
	"testing"
)

// boundaryWidths are the universe sizes that straddle 64-bit word
// boundaries: one bit short of a word, exactly one/two/four words, and one
// bit over. Off-by-one bugs in the word/bit index arithmetic or in partial
// last-word handling show up exactly here. 129/255/256 exercise the 3- and
// 4-word unrolled kernels (SmallStrideMax) and the seam just past them.
var boundaryWidths = []int{63, 64, 65, 127, 128, 129, 255, 256}

// refSet is the oracle: a plain map-backed set.
type refSet map[int]bool

func (r refSet) popcount() int { return len(r) }

func (r refSet) subsetOf(o refSet) bool {
	for i := range r {
		if !o[i] {
			return false
		}
	}
	return true
}

func (r refSet) and(o refSet) refSet {
	out := refSet{}
	for i := range r {
		if o[i] {
			out[i] = true
		}
	}
	return out
}

func randomRef(rng *rand.Rand, width int, density float64) refSet {
	r := refSet{}
	for i := 0; i < width; i++ {
		if rng.Float64() < density {
			r[i] = true
		}
	}
	return r
}

func setFromRef(r refSet, width int) *Set {
	s := New(width)
	for i := range r {
		s.Add(i)
	}
	return s
}

func maskFromRef(r refSet, width int) Mask {
	m := make(Mask, WordsFor(width))
	for i := range r {
		m.Set(i)
	}
	return m
}

func TestSetBoundaryWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, width := range boundaryWidths {
		for trial := 0; trial < 50; trial++ {
			ra := randomRef(rng, width, 0.4)
			rb := randomRef(rng, width, 0.4)
			a, b := setFromRef(ra, width), setFromRef(rb, width)

			if got, want := a.Len(), ra.popcount(); got != want {
				t.Fatalf("width %d: Len %d, want %d", width, got, want)
			}
			for i := 0; i < width; i++ {
				if a.Contains(i) != ra[i] {
					t.Fatalf("width %d: Contains(%d) = %v, want %v", width, i, a.Contains(i), ra[i])
				}
			}
			if got, want := a.IntersectionLen(b), ra.and(rb).popcount(); got != want {
				t.Fatalf("width %d: IntersectionLen %d, want %d", width, got, want)
			}
			if got, want := a.SubsetOf(b), ra.subsetOf(rb); got != want {
				t.Fatalf("width %d: SubsetOf %v, want %v", width, got, want)
			}
			inter := a.Clone()
			for i := 0; i < width; i++ {
				if !b.Contains(i) {
					inter.Remove(i)
				}
			}
			if got, want := inter.Len(), ra.and(rb).popcount(); got != want {
				t.Fatalf("width %d: AND via Remove has %d members, want %d", width, got, want)
			}
			if !inter.SubsetOf(a) || !inter.SubsetOf(b) {
				t.Fatalf("width %d: intersection not a subset of its operands", width)
			}
		}
	}
}

// TestSetBoundaryBitIsolated verifies that setting only the last valid bit
// of each width (and its neighbors across the word seam) never bleeds into
// adjacent bits.
func TestSetBoundaryBitIsolated(t *testing.T) {
	for _, width := range boundaryWidths {
		for _, i := range []int{0, width - 1, width / 2} {
			s := New(width)
			s.Add(i)
			if s.Len() != 1 {
				t.Fatalf("width %d: Add(%d) produced %d members", width, i, s.Len())
			}
			for j := 0; j < width; j++ {
				if s.Contains(j) != (j == i) {
					t.Fatalf("width %d: after Add(%d), Contains(%d) = %v", width, i, j, s.Contains(j))
				}
			}
			s.Remove(i)
			if !s.Empty() {
				t.Fatalf("width %d: Remove(%d) left members: %s", width, i, s)
			}
		}
	}
}

func TestMaskBoundaryWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, width := range boundaryWidths {
		words := WordsFor(width)
		for trial := 0; trial < 50; trial++ {
			ra := randomRef(rng, width, 0.4)
			rb := randomRef(rng, width, 0.4)
			a, b := maskFromRef(ra, width), maskFromRef(rb, width)

			if got, want := a.Count(), ra.popcount(); got != want {
				t.Fatalf("width %d: Count %d, want %d", width, got, want)
			}
			for i := 0; i < width; i++ {
				if a.Has(i) != ra[i] {
					t.Fatalf("width %d: Has(%d) = %v, want %v", width, i, a.Has(i), ra[i])
				}
			}
			if got, want := a.SubsetOf(b), ra.subsetOf(rb); got != want {
				t.Fatalf("width %d: SubsetOf %v, want %v", width, got, want)
			}

			// Both AND kernels against the oracle.
			want := maskFromRef(ra.and(rb), width)
			dst := make(Mask, words)
			MaskAnd(dst, a, b)
			if !dst.Equal(want) {
				t.Fatalf("width %d: MaskAnd wrong: %v vs %v", width, dst.Bits(), want.Bits())
			}
			dst2 := make(Mask, words)
			nz := MaskAndNotZero(dst2, a, b)
			if !dst2.Equal(want) {
				t.Fatalf("width %d: MaskAndNotZero result wrong", width)
			}
			if nz != (ra.and(rb).popcount() != 0) {
				t.Fatalf("width %d: MaskAndNotZero reported %v for %d-bit result", width, nz, ra.and(rb).popcount())
			}
			if dst.Zero() != (ra.and(rb).popcount() == 0) {
				t.Fatalf("width %d: Zero() inconsistent with popcount", width)
			}
		}
	}
}

// TestMaskFillLowBoundary pins FillLow's partial-last-word handling: n
// exactly at, one under, and one over each word boundary.
func TestMaskFillLowBoundary(t *testing.T) {
	for _, width := range boundaryWidths {
		words := WordsFor(width)
		m := make(Mask, words)
		for _, n := range []int{0, 1, 63, 64, min(65, width), width - 1, width} {
			if n > width {
				continue
			}
			// Pre-dirty the mask so FillLow must clear high bits too.
			for i := range m {
				m[i] = ^uint64(0)
			}
			m.FillLow(n)
			if got := m.Count(); got != n {
				t.Fatalf("width %d: FillLow(%d) set %d bits", width, n, got)
			}
			for i := 0; i < width; i++ {
				if m.Has(i) != (i < n) {
					t.Fatalf("width %d: FillLow(%d): Has(%d) = %v", width, n, i, m.Has(i))
				}
			}
		}
	}
}
