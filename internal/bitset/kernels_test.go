package bitset

import (
	"math/rand"
	"testing"
)

// kernelStrides covers every dedicated unrolled kernel (1–4 words) plus the
// first stride that falls through to the generic loop.
var kernelStrides = []int{1, 2, 3, 4, 5}

// packedFixture builds packed mask storage for nMasks masks of the given
// stride, plus the per-mask refSet oracle. Width is stride*64 minus a few
// bits so partial-word handling is exercised at strides > 1.
func packedFixture(rng *rand.Rand, stride, nMasks int) ([]uint64, []refSet, int) {
	width := stride*64 - 3
	if stride == 1 {
		width = 64
	}
	packed := make([]uint64, stride*nMasks)
	refs := make([]refSet, nMasks)
	for k := 0; k < nMasks; k++ {
		refs[k] = randomRef(rng, width, 0.3)
		m := Mask(packed[k*stride : (k+1)*stride])
		for i := range refs[k] {
			m.Set(i)
		}
	}
	return packed, refs, width
}

func refRel(lq, m refSet) Rel {
	if lq.subsetOf(m) {
		return RelSubset
	}
	if lq.and(m).popcount() != 0 {
		return RelOverlap
	}
	return RelDisjoint
}

func TestPackedKernelsAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, stride := range kernelStrides {
		for trial := 0; trial < 30; trial++ {
			const nMasks = 40
			packed, refs, width := packedFixture(rng, stride, nMasks)

			// Query density varies so all three relations occur: sparse
			// queries produce subsets, dense ones disjoint/overlap.
			lqRef := randomRef(rng, width, []float64{0.05, 0.3, 0.8}[trial%3])
			lq := make([]uint64, stride)
			for i := range lqRef {
				Mask(lq).Set(i)
			}

			ks := make([]int32, 0, nMasks)
			for k := 0; k < nMasks; k++ {
				if rng.Intn(3) > 0 {
					ks = append(ks, int32(k))
				}
			}

			// AndPacked per mask.
			dst := make([]uint64, stride)
			for _, k := range ks {
				AndPacked(dst, lq, packed, stride, k)
				want := lqRef.and(refs[k])
				if got := Mask(dst).Count(); got != want.popcount() {
					t.Fatalf("stride %d: AndPacked(k=%d) count %d, want %d", stride, k, got, want.popcount())
				}
				for i := range want {
					if !Mask(dst).Has(i) {
						t.Fatalf("stride %d: AndPacked(k=%d) missing bit %d", stride, k, i)
					}
				}
			}

			// ClassifyPacked vs per-mask oracle relation.
			out := make([]Rel, len(ks))
			ClassifyPacked(lq, packed, stride, ks, out)
			for i, k := range ks {
				if want := refRel(lqRef, refs[k]); out[i] != want {
					t.Fatalf("stride %d: ClassifyPacked ks[%d]=%d got %d, want %d", stride, i, k, out[i], want)
				}
			}

			// FirstSupersetPacked: index of the first RelSubset, or -1.
			wantFirst := -1
			for i, k := range ks {
				if lqRef.subsetOf(refs[k]) {
					wantFirst = i
					break
				}
			}
			if got := FirstSupersetPacked(lq, packed, stride, ks); got != wantFirst {
				t.Fatalf("stride %d: FirstSupersetPacked got %d, want %d", stride, got, wantFirst)
			}

			// FilterIntersectsPacked: order-preserving overlap filter.
			filt := make([]int32, len(ks))
			n := FilterIntersectsPacked(lq, packed, stride, ks, filt)
			var wantFilt []int32
			for _, k := range ks {
				if lqRef.and(refs[k]).popcount() != 0 {
					wantFilt = append(wantFilt, k)
				}
			}
			if n != len(wantFilt) {
				t.Fatalf("stride %d: FilterIntersectsPacked kept %d, want %d", stride, n, len(wantFilt))
			}
			for i := range wantFilt {
				if filt[i] != wantFilt[i] {
					t.Fatalf("stride %d: FilterIntersectsPacked[%d] = %d, want %d", stride, i, filt[i], wantFilt[i])
				}
			}
		}
	}
}

func TestMaskAndCountAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, width := range boundaryWidths {
		for trial := 0; trial < 30; trial++ {
			ra := randomRef(rng, width, 0.4)
			rb := randomRef(rng, width, 0.4)
			a, b := maskFromRef(ra, width), maskFromRef(rb, width)
			dst := make(Mask, WordsFor(width))
			got := MaskAndCount(dst, a, b)
			want := ra.and(rb)
			if got != want.popcount() {
				t.Fatalf("width %d: MaskAndCount returned %d, want %d", width, got, want.popcount())
			}
			if got2 := dst.Count(); got2 != want.popcount() {
				t.Fatalf("width %d: MaskAndCount dst has %d bits, want %d", width, got2, want.popcount())
			}
		}
	}
}

// TestFirstSupersetPackedEmptyQuery pins the degenerate case the core hot
// path can hit: an all-zero L_q is a subset of every mask, so the first
// listed index must be returned (index 0 when ks is non-empty).
func TestFirstSupersetPackedEmptyQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, stride := range kernelStrides {
		packed, _, _ := packedFixture(rng, stride, 4)
		lq := make([]uint64, stride)
		if got := FirstSupersetPacked(lq, packed, stride, []int32{2, 0, 3}); got != 0 {
			t.Fatalf("stride %d: empty query should match first index, got %d", stride, got)
		}
		if got := FirstSupersetPacked(lq, packed, stride, nil); got != -1 {
			t.Fatalf("stride %d: empty ks should return -1, got %d", stride, got)
		}
	}
}
