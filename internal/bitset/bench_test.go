package bitset

import (
	"fmt"
	"math/rand"
	"testing"
)

// Kernel micro-benchmarks: the per-word cost of the packed batched kernels
// versus the per-vertex Mask-method loops they replaced, at each unrolled
// stride. Run via `make bench-kernels`. The interesting comparisons:
//
//	BenchmarkClassifyPacked vs BenchmarkClassifyPerVertex — batching win
//	BenchmarkMaskAndCount vs BenchmarkMaskAndThenCount    — fusion win
//	stride sweep 1/2/4 — word-width scaling of the unrolled kernels

const benchMasks = 256

func benchFixture(stride int) (lq, packed []uint64, ks []int32) {
	rng := rand.New(rand.NewSource(42))
	packed = make([]uint64, stride*benchMasks)
	for i := range packed {
		packed[i] = rng.Uint64()
	}
	lq = make([]uint64, stride)
	for i := range lq {
		lq[i] = rng.Uint64()
	}
	ks = make([]int32, benchMasks)
	for i := range ks {
		ks[i] = int32(i)
	}
	return
}

func strideName(stride int) string { return fmt.Sprintf("words=%d", stride) }

// maskIntersectsSlow reproduces the word loop the core engine used before
// the batched kernels (core's old maskIntersects helper).
func maskIntersectsSlow(a, b Mask) bool {
	for i := range a {
		if a[i]&b[i] != 0 {
			return true
		}
	}
	return false
}

func BenchmarkClassifyPacked(b *testing.B) {
	for _, stride := range []int{1, 2, 4} {
		b.Run(strideName(stride), func(b *testing.B) {
			lq, packed, ks := benchFixture(stride)
			out := make([]Rel, len(ks))
			b.SetBytes(int64(stride * 8 * len(ks)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ClassifyPacked(lq, packed, stride, ks, out)
			}
		})
	}
}

// BenchmarkClassifyPerVertex is the pre-batching shape: per candidate, a
// Mask header materialized from packed storage and two method calls
// (intersection test + subset test), with lq re-read each iteration.
func BenchmarkClassifyPerVertex(b *testing.B) {
	for _, stride := range []int{1, 2, 4} {
		b.Run(strideName(stride), func(b *testing.B) {
			lq, packed, ks := benchFixture(stride)
			out := make([]Rel, len(ks))
			lqm := Mask(lq)
			b.SetBytes(int64(stride * 8 * len(ks)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j, k := range ks {
					m := Mask(packed[int(k)*stride : (int(k)+1)*stride])
					if lqm.SubsetOf(m) {
						out[j] = RelSubset
					} else if maskIntersectsSlow(lqm, m) {
						out[j] = RelOverlap
					} else {
						out[j] = RelDisjoint
					}
				}
			}
		})
	}
}

func BenchmarkFirstSupersetPacked(b *testing.B) {
	for _, stride := range []int{1, 2, 4} {
		b.Run(strideName(stride), func(b *testing.B) {
			lq, packed, ks := benchFixture(stride)
			// Random fixture masks are ~50% dense, lq too: supersets are
			// vanishingly rare, so this measures the full-scan (no early
			// exit) path, which is the common case in enumeration.
			b.SetBytes(int64(stride * 8 * len(ks)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				FirstSupersetPacked(lq, packed, stride, ks)
			}
		})
	}
}

func BenchmarkFilterIntersectsPacked(b *testing.B) {
	for _, stride := range []int{1, 2, 4} {
		b.Run(strideName(stride), func(b *testing.B) {
			lq, packed, ks := benchFixture(stride)
			dst := make([]int32, len(ks))
			b.SetBytes(int64(stride * 8 * len(ks)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				FilterIntersectsPacked(lq, packed, stride, ks, dst)
			}
		})
	}
}

func BenchmarkMaskAndCount(b *testing.B) {
	for _, stride := range []int{1, 2, 4} {
		b.Run(strideName(stride), func(b *testing.B) {
			lq, packed, _ := benchFixture(stride)
			dst := make(Mask, stride)
			m := Mask(packed[:stride])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MaskAndCount(dst, Mask(lq), m)
			}
		})
	}
}

// BenchmarkMaskAndThenCount is the unfused shape: AND into dst, then a
// second pass to popcount it.
func BenchmarkMaskAndThenCount(b *testing.B) {
	for _, stride := range []int{1, 2, 4} {
		b.Run(strideName(stride), func(b *testing.B) {
			lq, packed, _ := benchFixture(stride)
			dst := make(Mask, stride)
			m := Mask(packed[:stride])
			var sink int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MaskAnd(dst, Mask(lq), m)
				sink += dst.Count()
			}
			_ = sink
		})
	}
}
