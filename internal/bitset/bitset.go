// Package bitset provides dense bit sets and fixed-width bit masks used to
// represent the bitmap form of computational subgraphs (CGs) in AdaMBE.
//
// Two flavours are provided:
//
//   - Set: a growable dense bit set over a vertex universe, used for
//     membership structures on the original graph.
//   - Mask: a fixed-width multi-word mask (width decided once per bitmap CG,
//     width = ceil(|L*|/64) words). With the paper's default threshold
//     τ = 64, every mask is a single uint64 and each set intersection is a
//     single AND, exactly as in the paper (§III-B).
//
// All operations are allocation-free unless documented otherwise.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const (
	// WordBits is the number of bits per machine word used by Set and Mask.
	WordBits = 64
	logWord  = 6
	wordMask = WordBits - 1
)

// WordsFor returns the number of 64-bit words needed to hold n bits.
func WordsFor(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + wordMask) >> logWord
}

// Set is a dense bit set. The zero value is an empty set of capacity 0; use
// New to pre-size it. Sets grow automatically on Add.
type Set struct {
	words []uint64
}

// New returns a Set able to hold members in [0, n) without reallocation.
func New(n int) *Set {
	return &Set{words: make([]uint64, WordsFor(n))}
}

// FromSlice builds a Set containing every id in members.
func FromSlice(members []int) *Set {
	s := &Set{}
	for _, m := range members {
		s.Add(m)
	}
	return s
}

func (s *Set) grow(word int) {
	if word < len(s.words) {
		return
	}
	w := make([]uint64, word+1)
	copy(w, s.words)
	s.words = w
}

// Add inserts i into the set, growing the backing storage if needed.
// i must be non-negative.
func (s *Set) Add(i int) {
	w := i >> logWord
	s.grow(w)
	s.words[w] |= 1 << (uint(i) & wordMask)
}

// Remove deletes i from the set. Removing an absent member is a no-op.
func (s *Set) Remove(i int) {
	w := i >> logWord
	if w < len(s.words) {
		s.words[w] &^= 1 << (uint(i) & wordMask)
	}
}

// Contains reports whether i is a member.
func (s *Set) Contains(i int) bool {
	w := i >> logWord
	return w < len(s.words) && s.words[w]&(1<<(uint(i)&wordMask)) != 0
}

// Len returns the number of members (population count).
func (s *Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clear removes all members while keeping capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// ClearSlice removes exactly the listed members; cheaper than Clear when the
// set is sparse relative to its capacity.
func (s *Set) ClearSlice(members []int32) {
	for _, m := range members {
		s.Remove(int(m))
	}
}

// AddSlice inserts every id in members.
func (s *Set) AddSlice(members []int32) {
	for _, m := range members {
		s.Add(int(m))
	}
}

// Empty reports whether the set has no members.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// IntersectionLen returns |s ∩ o| without materializing the intersection.
func (s *Set) IntersectionLen(o *Set) int {
	n := min(len(s.words), len(o.words))
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(s.words[i] & o.words[i])
	}
	return c
}

// SubsetOf reports whether every member of s is also in o.
func (s *Set) SubsetOf(o *Set) bool {
	for i, w := range s.words {
		if w == 0 {
			continue
		}
		if i >= len(o.words) || w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for every member in ascending order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		base := wi << logWord
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(base + b)
			w &= w - 1
		}
	}
}

// Slice returns the members in ascending order as a fresh slice.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.Len())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w}
}

// Equal reports whether s and o contain the same members.
func (s *Set) Equal(o *Set) bool {
	a, b := s.words, o.words
	if len(a) < len(b) {
		a, b = b, a
	}
	for i := range b {
		if a[i] != b[i] {
			return false
		}
	}
	for _, w := range a[len(b):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// String renders the set as "{1, 5, 9}" for debugging and tests.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}

// Mask is a fixed-width bit mask over a small universe (the L* side of a
// bitmap CG). Masks belonging to the same bitmap CG always share a width, so
// binary operations do not re-check lengths beyond the shared word count.
//
// Masks are plain slices: callers allocate batches of them contiguously via
// MaskArena to keep the per-node footprint cache-friendly.
type Mask []uint64

// MaskAnd stores a AND b into dst. All three must have the same width.
func MaskAnd(dst, a, b Mask) {
	_ = dst[len(a)-1]
	_ = b[len(a)-1]
	for i := range a {
		dst[i] = a[i] & b[i]
	}
}

// MaskAndNotZero stores a AND b into dst and reports whether the result is
// non-zero, in one pass.
func MaskAndNotZero(dst, a, b Mask) bool {
	var acc uint64
	_ = dst[len(a)-1]
	_ = b[len(a)-1]
	for i := range a {
		w := a[i] & b[i]
		dst[i] = w
		acc |= w
	}
	return acc != 0
}

// Zero reports whether the mask has no bits set.
func (m Mask) Zero() bool {
	var acc uint64
	for _, w := range m {
		acc |= w
	}
	return acc == 0
}

// Count returns the population count.
func (m Mask) Count() int {
	n := 0
	for _, w := range m {
		n += bits.OnesCount64(w)
	}
	return n
}

// SubsetOf reports whether m ⊆ o, i.e. (m AND o) == m.
func (m Mask) SubsetOf(o Mask) bool {
	_ = o[len(m)-1]
	for i, w := range m {
		if w&^o[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether m and o have identical bits. Widths must match.
func (m Mask) Equal(o Mask) bool {
	_ = o[len(m)-1]
	for i, w := range m {
		if w != o[i] {
			return false
		}
	}
	return true
}

// Set sets bit i.
func (m Mask) Set(i int) { m[i>>logWord] |= 1 << (uint(i) & wordMask) }

// Has reports whether bit i is set.
func (m Mask) Has(i int) bool { return m[i>>logWord]&(1<<(uint(i)&wordMask)) != 0 }

// FillLow sets the lowest n bits (the "all of L*" mask).
func (m Mask) FillLow(n int) {
	for i := range m {
		m[i] = 0
	}
	full := n >> logWord
	for i := 0; i < full; i++ {
		m[i] = ^uint64(0)
	}
	if rem := uint(n) & wordMask; rem != 0 {
		m[full] = (1 << rem) - 1
	}
}

// ForEach calls fn with each set bit index in ascending order.
func (m Mask) ForEach(fn func(i int)) {
	for wi, w := range m {
		base := wi << logWord
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Bits returns the indices of set bits in ascending order (allocates).
func (m Mask) Bits() []int {
	out := make([]int, 0, m.Count())
	m.ForEach(func(i int) { out = append(out, i) })
	return out
}

// CopyFrom copies o into m. Widths must match.
func (m Mask) CopyFrom(o Mask) { copy(m, o) }

// MaskArena hands out fixed-width masks carved from large contiguous blocks,
// amortizing allocation over thousands of masks per enumeration subtree.
// It is not safe for concurrent use; each worker owns its own arena.
type MaskArena struct {
	width int
	block []uint64
	off   int
}

// NewMaskArena returns an arena producing masks of the given word width.
func NewMaskArena(width int) *MaskArena {
	if width <= 0 {
		panic(fmt.Sprintf("bitset: invalid mask width %d", width))
	}
	return &MaskArena{width: width}
}

// Width returns the word width of masks produced by the arena.
func (a *MaskArena) Width() int { return a.width }

const arenaBlockWords = 8192

// New returns a zeroed mask of the arena's width.
func (a *MaskArena) New() Mask {
	if a.off+a.width > len(a.block) {
		n := arenaBlockWords
		if a.width > n {
			n = a.width * 64
		}
		a.block = make([]uint64, n)
		a.off = 0
	}
	m := Mask(a.block[a.off : a.off+a.width : a.off+a.width])
	a.off += a.width
	return m
}
