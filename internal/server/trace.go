package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"time"
)

// TraceHeader is the job-tracing header: a client may send one on
// submit (X-MBE-Trace: <id>) to stamp the whole job lifecycle with its
// own correlation id; otherwise the daemon mints one. Every response —
// including 429 sheds and NDJSON result streams — echoes it back, the
// id is persisted in the job manifest so it survives kill -9, and every
// structured log event for the job carries it as trace_id.
const TraceHeader = "X-MBE-Trace"

// maxTraceLen bounds accepted client trace ids; anything longer (or
// containing non-token characters) is replaced with a fresh id rather
// than propagated into logs and manifests.
const maxTraceLen = 64

// NewTraceID mints a fresh random trace id ("t" + 16 hex chars).
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unheard of; fall back to a fixed id
		// rather than plumbing an error through every submit path.
		return "t0000000000000000"
	}
	return "t" + hex.EncodeToString(b[:])
}

// sanitizeTrace validates a client-supplied trace id: printable
// URL/log-safe characters only, bounded length. Returns "" when the
// value cannot be propagated as-is.
func sanitizeTrace(s string) string {
	if s == "" || len(s) > maxTraceLen {
		return ""
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-' || r == '_' || r == '.' || r == ':' || r == '/':
		default:
			return ""
		}
	}
	return s
}

type traceKey struct{}

// traceFrom extracts the request's trace id stashed by the instrument
// middleware; "" outside an instrumented request.
func traceFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// --- slog plumbing ---------------------------------------------------

// logger resolves the Config's logging surface into one *slog.Logger:
// Logger wins, a legacy Logf func is adapted, and nothing configured
// means discard. Every operational event in the daemon goes through
// this — there is no second, ad-hoc log path.
func (c Config) logger() *slog.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	if c.Logf != nil {
		return slog.New(logfHandler{logf: c.Logf})
	}
	return slog.New(noopHandler{})
}

// logfHandler adapts a printf-style sink (tests pass t.Logf) into a
// slog.Handler: one line per event, "msg key=value ..." — structured
// enough to grep, flat enough for a test log.
type logfHandler struct {
	logf  func(format string, args ...any)
	attrs []slog.Attr
}

func (h logfHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Message)
	emit := func(a slog.Attr) {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value.Any())
	}
	for _, a := range h.attrs {
		emit(a)
	}
	r.Attrs(func(a slog.Attr) bool { emit(a); return true })
	h.logf("%s", b.String())
	return nil
}

func (h logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return logfHandler{logf: h.logf, attrs: append(append([]slog.Attr{}, h.attrs...), attrs...)}
}

func (h logfHandler) WithGroup(string) slog.Handler { return h }

// noopHandler discards everything (Config with neither Logger nor Logf).
type noopHandler struct{}

func (noopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (noopHandler) Handle(context.Context, slog.Record) error { return nil }
func (noopHandler) WithAttrs([]slog.Attr) slog.Handler        { return noopHandler{} }
func (noopHandler) WithGroup(string) slog.Handler             { return noopHandler{} }

// --- HTTP instrumentation -------------------------------------------

// statusWriter captures the response status for metrics while keeping
// http.Flusher visible — the NDJSON result stream flushes mid-body.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// routeLabel folds a request into a bounded route label for metrics —
// path parameters collapse to their pattern so the cardinality stays
// fixed no matter how many jobs exist.
func routeLabel(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/v1/graphs":
		return "/v1/graphs"
	case p == "/v1/jobs":
		return "/v1/jobs"
	case strings.HasSuffix(p, "/results") && strings.HasPrefix(p, "/v1/jobs/"):
		return "/v1/jobs/{id}/results"
	case strings.HasSuffix(p, "/cancel") && strings.HasPrefix(p, "/v1/jobs/"):
		return "/v1/jobs/{id}/cancel"
	case strings.HasPrefix(p, "/v1/jobs/"):
		return "/v1/jobs/{id}"
	case p == "/healthz":
		return "/healthz"
	case p == "/metrics":
		return "/metrics"
	case strings.HasPrefix(p, "/debug/"):
		return "/debug"
	default:
		return "other"
	}
}

// instrument is the outermost HTTP middleware: it resolves the
// request's trace id (honoring an incoming X-MBE-Trace, minting one
// otherwise), echoes it on the response before any handler writes —
// so 429 sheds and streamed NDJSON bodies carry it too — and records
// per-route latency and status counts.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tid := sanitizeTrace(r.Header.Get(TraceHeader))
		if tid == "" {
			tid = NewTraceID()
		}
		w.Header().Set(TraceHeader, tid)
		r = r.WithContext(context.WithValue(r.Context(), traceKey{}, tid))
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		route := routeLabel(r)
		s.met.httpRequests.With(route, fmt.Sprint(sw.code)).Inc()
		s.met.httpLatency.With(route).ObserveDuration(time.Since(start))
	})
}
