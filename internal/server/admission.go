package server

import (
	"fmt"
	"sync"
	"time"
)

// OverCapacityError is the admission-control rejection: the request was
// shed, the client should retry after RetryAfter. The HTTP layer maps
// it to 429 + Retry-After. Shedding is deliberate graceful degradation:
// a bounded queue plus an explicit retry hint beats an unbounded queue
// that converts overload into latency and OOM.
type OverCapacityError struct {
	Reason     string
	RetryAfter time.Duration
	// Kind is the stable metric/log label of the gate that shed the
	// request: "rate_limit", "queue_full" or "mem_budget" (Reason is
	// the human-readable elaboration).
	Kind string
}

func (e *OverCapacityError) Error() string {
	return fmt.Sprintf("server: over capacity (%s), retry after %v", e.Reason, e.RetryAfter.Round(time.Millisecond))
}

// tokenBucket is a minimal stdlib-only token bucket: capacity `burst`
// tokens, refilled at `rate` tokens/second. take() either consumes a
// token or reports how long until one is available.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time // test seam
}

func newTokenBucket(rate float64, burst int, now func() time.Time) *tokenBucket {
	if now == nil {
		now = time.Now
	}
	b := &tokenBucket{rate: rate, burst: float64(burst), now: now}
	if b.burst < 1 {
		b.burst = 1
	}
	b.tokens = b.burst
	b.last = now()
	return b
}

// take consumes one token if available; otherwise it returns false and
// the wait until the next token accrues. rate <= 0 disables limiting.
func (b *tokenBucket) take() (bool, time.Duration) {
	if b == nil || b.rate <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.rate
	return false, time.Duration(need * float64(time.Second))
}

// admission is the server's submit-side gate. Three independent checks,
// cheapest first: the token bucket (request rate), the queue bound
// (queued + running jobs), and the soft memory budget (sum of admitted
// jobs' engine-memory budgets). Read-side endpoints — status, results,
// /debug — never pass through it, so they keep working under load.
type admission struct {
	bucket    *tokenBucket
	maxJobs   int   // bound on queued+running jobs; <=0 = 64
	memBudget int64 // bound on sum of active jobs' memory budgets; <=0 = unlimited

	mu     sync.Mutex
	active int   // queued + running + retrying jobs
	mem    int64 // their admission-time memory charges
}

func newAdmission(rate float64, burst, maxJobs int, memBudget int64) *admission {
	a := &admission{maxJobs: maxJobs, memBudget: memBudget}
	if a.maxJobs <= 0 {
		a.maxJobs = 64
	}
	if rate > 0 {
		a.bucket = newTokenBucket(rate, burst, nil)
	}
	return a
}

// retryAfterQueue is the Retry-After hint when the queue or memory
// budget is full: there is no closed-form ETA for a job slot (jobs run
// for arbitrary lengths), so advertise a short constant poll interval.
const retryAfterQueue = time.Second

// admit charges one job with memCharge bytes, or returns an
// *OverCapacityError. On success the caller MUST eventually release()
// the same charge (when the job reaches a terminal state).
func (a *admission) admit(memCharge int64) error {
	if ok, wait := a.bucket.take(); !ok {
		return &OverCapacityError{Reason: "rate limit", RetryAfter: wait, Kind: "rate_limit"}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.active >= a.maxJobs {
		return &OverCapacityError{
			Reason:     fmt.Sprintf("job queue full (%d)", a.maxJobs),
			RetryAfter: retryAfterQueue,
			Kind:       "queue_full",
		}
	}
	if a.memBudget > 0 && a.mem+memCharge > a.memBudget {
		return &OverCapacityError{
			Reason:     fmt.Sprintf("memory budget exhausted (%d of %d bytes committed)", a.mem, a.memBudget),
			RetryAfter: retryAfterQueue,
			Kind:       "mem_budget",
		}
	}
	a.active++
	a.mem += memCharge
	return nil
}

// adopt re-charges a job during restart recovery, bypassing the rate
// limiter (recovered jobs were admitted before the crash) but keeping
// the accounting exact. Recovery may overshoot maxJobs — jobs already
// admitted are never shed.
func (a *admission) adopt(memCharge int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.active++
	a.mem += memCharge
}

// release returns a terminal job's charge.
func (a *admission) release(memCharge int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.active--
	a.mem -= memCharge
	if a.active < 0 || a.mem < 0 { // accounting bug tripwire
		panic(fmt.Sprintf("server: admission accounting underflow (active=%d mem=%d)", a.active, a.mem))
	}
}

// load reports the current charge (for /healthz and tests).
func (a *admission) load() (active int, mem int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.active, a.mem
}
