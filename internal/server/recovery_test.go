package server_test

import (
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/server"
)

var errInjected = errors.New("injected attempt fault")

// waitForFile polls until path exists (the durable evidence the test
// needs before simulating a crash).
func waitForFile(t *testing.T, path string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if _, err := os.Stat(path); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never appeared", path)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRecoveryResumesInterruptedJob is the crash-safety core: a job is
// interrupted mid-run after its first durable checkpoint, the daemon is
// torn down without writing a terminal state (exactly what a kill -9
// leaves behind: a manifest saying "running" and a half-written spool),
// and a fresh daemon over the same store must finish it exactly-once —
// the digest of the recovered job equals a direct in-process run, which
// fails on any dropped or duplicated biclique.
func TestRecoveryResumesInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	g := bigGraph()
	want := directDigest(t, g)

	d1 := startDaemon(t, server.Config{
		Dir:             dir,
		Concurrency:     1,
		CheckpointEvery: 2 * time.Millisecond,
	})
	id := d1.submitGraph(g)
	sub, resp := d1.submitJob(server.JobSpec{GraphID: id, Threads: 1})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}

	// Wait for the first durable checkpoint, then "crash" — Close
	// cancels the running attempt, and shutdown interruptions are
	// deliberately NOT recorded as terminal states.
	spoolDir := filepath.Join(dir, "jobs", sub.JobID, "spool")
	waitForFile(t, filepath.Join(spoolDir, "checkpoint.json"), 30*time.Second)
	d1.stop()

	m, err := readManifest(dir, sub.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if m.State.Terminal() {
		t.Fatalf("manifest after interrupt says %s; must stay resumable", m.State)
	}

	// Restart over the same store: recovery re-enqueues and the job
	// finishes from its checkpoint.
	d2 := startDaemon(t, server.Config{Dir: dir, Concurrency: 1})
	final := d2.wait(sub.JobID, 2*time.Minute)
	if final.State != server.JobDone || final.Result == nil {
		t.Fatalf("recovered job finished %s (error %q), want done", final.State, final.Error)
	}
	if final.Result.Count != want.Count || final.Result.Digest != want.String() {
		t.Errorf("recovered digest %s (count %d) != direct %s (count %d) — resume was not exactly-once",
			final.Result.Digest, final.Result.Count, want.String(), want.Count)
	}
}

// readManifest loads a job manifest straight off disk, bypassing any
// daemon — the view a restarted process starts from.
func readManifest(dir, jobID string) (server.Manifest, error) {
	st, err := server.OpenStore(dir)
	if err != nil {
		return server.Manifest{}, err
	}
	return st.ReadManifest(jobID)
}

// TestRecoveryResumesWithTornCheckpoint layers spool corruption on top
// of the interrupt: the checkpoint is truncated mid-write (a crash
// during the atomic rename's window cannot do this, but a torn disk
// can). The daemon must warn, restart the job from scratch, and still
// produce the exact digest.
func TestRecoveryResumesWithTornCheckpoint(t *testing.T) {
	dir := t.TempDir()
	g := bigGraph()
	want := directDigest(t, g)

	d1 := startDaemon(t, server.Config{Dir: dir, Concurrency: 1, CheckpointEvery: 2 * time.Millisecond})
	id := d1.submitGraph(g)
	sub, resp := d1.submitJob(server.JobSpec{GraphID: id, Threads: 1})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	ckptPath := filepath.Join(dir, "jobs", sub.JobID, "spool", "checkpoint.json")
	waitForFile(t, ckptPath, 30*time.Second)
	d1.stop()

	blob, err := os.ReadFile(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckptPath, blob[:len(blob)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := startDaemon(t, server.Config{Dir: dir, Concurrency: 1})
	final := d2.wait(sub.JobID, 2*time.Minute)
	if final.State != server.JobDone || final.Result == nil {
		t.Fatalf("job after torn checkpoint finished %s (error %q), want done", final.State, final.Error)
	}
	if final.Result.Count != want.Count || final.Result.Digest != want.String() {
		t.Errorf("digest after torn-checkpoint recovery %s (count %d) != direct %s (count %d)",
			final.Result.Digest, final.Result.Count, want.String(), want.Count)
	}
	// The silent-data-loss near-miss must be observable: the corrupt
	// checkpoint increments its dedicated counter (it pages, the generic
	// job_warning does not — docs/OBSERVABILITY.md).
	if m := d2.scrapeMetrics(); m["mbed_ckpt_corrupt_recovered_total"] < 1 {
		t.Errorf("mbed_ckpt_corrupt_recovered_total = %v after torn-checkpoint recovery, want >= 1",
			m["mbed_ckpt_corrupt_recovered_total"])
	}
}

// TestRecoveryAdoptsDoneJobs: completed jobs survive a restart as cache
// entries — resubmitting the same spec is served from the old job's
// spool without enumerating anything.
func TestRecoveryAdoptsDoneJobs(t *testing.T) {
	dir := t.TempDir()
	g := smallGraph()
	want := directDigest(t, g)

	d1 := startDaemon(t, server.Config{Dir: dir})
	id := d1.submitGraph(g)
	sub, _ := d1.submitJob(server.JobSpec{GraphID: id})
	if m := d1.wait(sub.JobID, time.Minute); m.State != server.JobDone {
		t.Fatalf("job finished %s", m.State)
	}
	d1.stop()

	// The restarted daemon would fail any attempt instantly — proof a
	// cache hit never reaches the executor.
	d2 := startDaemon(t, server.Config{
		Dir:       dir,
		FaultHook: func(site string) error { t.Errorf("attempt ran at %s; cache was not used", site); return nil },
	})
	hit, resp := d2.submitJob(server.JobSpec{GraphID: id})
	if resp.StatusCode != http.StatusOK || !hit.CacheHit || hit.JobID != sub.JobID {
		t.Fatalf("resubmit after restart: status %d %+v, want cache hit on %s", resp.StatusCode, hit, sub.JobID)
	}
	if hit.Result == nil || hit.Result.Digest != want.String() {
		t.Errorf("cached result %+v, want digest %s", hit.Result, want.String())
	}
}

// TestRecoverySkipsUncommittedJobDir: a job directory without a
// readable manifest (crash between MkdirAll and the first manifest
// write) is skipped, not fatal.
func TestRecoverySkipsUncommittedJobDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "jobs", "jhalfborn"), 0o755); err != nil {
		t.Fatal(err)
	}
	d := startDaemon(t, server.Config{Dir: dir})
	var out struct {
		Jobs []server.Manifest `json:"jobs"`
	}
	if resp := d.do("GET", "/v1/jobs", nil, &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("list: %d", resp.StatusCode)
	}
	if len(out.Jobs) != 0 {
		t.Errorf("uncommitted job dir surfaced as %+v", out.Jobs)
	}
}

// TestRetryPathRecovers drives the bounded-retry loop with injected
// attempt faults: two injected failures, then success — the job must
// come out done on the third attempt with the right digest.
func TestRetryPathRecovers(t *testing.T) {
	g := smallGraph()
	want := directDigest(t, g)
	fails := 2
	d := startDaemon(t, server.Config{
		Backoff: server.Backoff{Base: time.Millisecond, Jitter: server.NoJitter},
		FaultHook: func(site string) error {
			if site == "server/attempt" && fails > 0 {
				fails--
				return errInjected
			}
			return nil
		},
	})
	id := d.submitGraph(g)
	sub, _ := d.submitJob(server.JobSpec{GraphID: id})
	m := d.wait(sub.JobID, time.Minute)
	if m.State != server.JobDone || m.Attempts != 3 {
		t.Fatalf("state %s after %d attempts (error %q), want done after 3", m.State, m.Attempts, m.Error)
	}
	if m.Result.Digest != want.String() {
		t.Errorf("digest %s, want %s", m.Result.Digest, want.String())
	}
}

// TestRetryBudgetExhaustedIsTerminal: a job whose every attempt fails
// lands in the terminal failed state with the error preserved.
func TestRetryBudgetExhaustedIsTerminal(t *testing.T) {
	d := startDaemon(t, server.Config{
		MaxAttempts: 2,
		Backoff:     server.Backoff{Base: time.Millisecond, Jitter: server.NoJitter},
		FaultHook:   func(site string) error { return errInjected },
	})
	id := d.submitGraph(smallGraph())
	sub, _ := d.submitJob(server.JobSpec{GraphID: id})
	m := d.wait(sub.JobID, time.Minute)
	if m.State != server.JobFailed || m.Attempts != 2 || m.Error == "" {
		t.Fatalf("state %s after %d attempts (error %q), want failed after 2 with error kept",
			m.State, m.Attempts, m.Error)
	}
}
