package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	mbe "repro"
	"repro/internal/spool"
)

// Store is the daemon's on-disk layout under one root directory:
//
//	root/
//	  graphs/<graph_id>.bin      submitted graphs (binary cache format)
//	  jobs/<job_id>/job.json     atomically-written manifest
//	  jobs/<job_id>/spool/       the job's durable spool + checkpoint
//
// Everything the daemon must survive kill -9 with lives here; the
// in-memory index is a pure cache rebuilt by Scan on restart.
type Store struct {
	root string
}

// OpenStore creates (if needed) and opens the store root.
func OpenStore(root string) (*Store, error) {
	for _, d := range []string{root, filepath.Join(root, "graphs"), filepath.Join(root, "jobs")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	return &Store{root: root}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

func (s *Store) graphPath(id string) string {
	return filepath.Join(s.root, "graphs", id+".bin")
}

// JobDir returns the directory of job id.
func (s *Store) JobDir(id string) string { return filepath.Join(s.root, "jobs", id) }

// SpoolDir returns the job's spool directory.
func (s *Store) SpoolDir(id string) string { return filepath.Join(s.JobDir(id), "spool") }

func (s *Store) manifestPath(id string) string {
	return filepath.Join(s.JobDir(id), "job.json")
}

// SaveGraph persists g in the binary cache format under its signature
// and returns the graph id. Saving the same graph twice is an idempotent
// no-op (the id is content-derived).
func (s *Store) SaveGraph(g *mbe.Graph) (string, error) {
	id := g.Signature()
	path := s.graphPath(id)
	if _, err := os.Stat(path); err == nil {
		return id, nil
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".graph-*")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name())
	if err := g.WriteBinary(tmp); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	return id, os.Rename(tmp.Name(), path)
}

// LoadGraph reads a stored graph back.
func (s *Store) LoadGraph(id string) (*mbe.Graph, error) {
	f, err := os.Open(s.graphPath(id))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("server: unknown graph %q", id)
		}
		return nil, err
	}
	defer f.Close()
	return mbe.ReadBinary(f)
}

// HasGraph reports whether graph id is stored.
func (s *Store) HasGraph(id string) bool {
	_, err := os.Stat(s.graphPath(id))
	return err == nil
}

// NewJobID mints a fresh random job id.
func NewJobID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return "j" + hex.EncodeToString(b[:]), nil
}

// CreateJob materializes a fresh job directory and its initial queued
// manifest, stamped with the submit request's trace id. The manifest
// write is the commit point: a crash before it leaves nothing recovery
// would pick up.
func (s *Store) CreateJob(spec JobSpec, traceID string) (Manifest, error) {
	id, err := NewJobID()
	if err != nil {
		return Manifest{}, err
	}
	if err := os.MkdirAll(s.JobDir(id), 0o755); err != nil {
		return Manifest{}, err
	}
	now := time.Now().UTC().Format(time.RFC3339)
	m := Manifest{
		ID: id, Spec: spec, State: JobQueued, CacheKey: spec.CacheKey(), TraceID: traceID,
		CreatedAt: now, UpdatedAt: now,
	}
	return m, s.WriteManifest(m)
}

// WriteManifest persists m atomically: temp file + fsync + rename, the
// same protocol as checkpoint.json, so a crash at any instant leaves
// either the previous manifest or this one — never a torn file.
func (s *Store) WriteManifest(m Manifest) error {
	m.UpdatedAt = time.Now().UTC().Format(time.RFC3339)
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return spool.AtomicWriteFile(s.manifestPath(m.ID), append(blob, '\n'), true)
}

// ReadManifest loads one job's manifest.
func (s *Store) ReadManifest(id string) (Manifest, error) {
	blob, err := os.ReadFile(s.manifestPath(id))
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return Manifest{}, fmt.Errorf("server: manifest %s: %w", id, err)
	}
	return m, nil
}

// Scan loads every job manifest in the store, oldest first (by
// CreatedAt, then id, so recovery re-enqueues in submission order). A
// job directory without a readable manifest is skipped via onBad — with
// atomic manifest writes that means a crash between MkdirAll and the
// first WriteManifest, i.e. a job that was never committed.
func (s *Store) Scan(onBad func(id string, err error)) ([]Manifest, error) {
	entries, err := os.ReadDir(filepath.Join(s.root, "jobs"))
	if err != nil {
		return nil, err
	}
	var out []Manifest
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		m, err := s.ReadManifest(e.Name())
		if err != nil {
			if onBad != nil {
				onBad(e.Name(), err)
			}
			continue
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CreatedAt != out[j].CreatedAt {
			return out[i].CreatedAt < out[j].CreatedAt
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}
