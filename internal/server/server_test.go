package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	mbe "repro"
	"repro/internal/server"
)

// smallGraph is the round-trip test graph: dense enough to have a
// non-trivial result set, small enough to enumerate in milliseconds.
func smallGraph() *mbe.Graph { return mbe.GenerateUniform(1, 200, 100, 2400) }

// bigGraph runs ~0.5s serial (several seconds under -race): long enough
// to reliably interrupt mid-run in the recovery tests.
func bigGraph() *mbe.Graph { return mbe.GenerateUniform(1, 600, 300, 18000) }

// directDigest enumerates g in memory and returns the reference digest
// the daemon's results must match.
func directDigest(t *testing.T, g *mbe.Graph) mbe.Digest {
	t.Helper()
	var d mbe.Digest
	if _, err := mbe.Enumerate(g, mbe.Options{OnBiclique: d.Observe}); err != nil {
		t.Fatal(err)
	}
	return d
}

// testDaemon is one Server plus its httptest front end.
type testDaemon struct {
	t   *testing.T
	srv *server.Server
	ts  *httptest.Server
}

func startDaemon(t *testing.T, cfg server.Config) *testDaemon {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	d := &testDaemon{t: t, srv: srv, ts: ts}
	t.Cleanup(func() { d.stop() })
	return d
}

func (d *testDaemon) stop() {
	d.ts.Close()
	if err := d.srv.Close(30 * time.Second); err != nil {
		d.t.Error(err)
	}
}

// do issues a request and decodes the JSON body into out (if non-nil).
func (d *testDaemon) do(method, path string, body io.Reader, out any) *http.Response {
	d.t.Helper()
	req, err := http.NewRequest(method, d.ts.URL+path, body)
	if err != nil {
		d.t.Fatal(err)
	}
	resp, err := d.ts.Client().Do(req)
	if err != nil {
		d.t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		d.t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(blob, out); err != nil {
			d.t.Fatalf("%s %s: bad JSON %q: %v", method, path, blob, err)
		}
	}
	return resp
}

// submitGraph uploads g in the binary format and returns its graph id.
func (d *testDaemon) submitGraph(g *mbe.Graph) string {
	d.t.Helper()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		d.t.Fatal(err)
	}
	var out struct {
		GraphID string `json:"graph_id"`
	}
	resp := d.do("POST", "/v1/graphs?format=binary", &buf, &out)
	if resp.StatusCode != http.StatusOK || out.GraphID == "" {
		d.t.Fatalf("submit graph: status %d, id %q", resp.StatusCode, out.GraphID)
	}
	return out.GraphID
}

type submitResponse struct {
	JobID    string            `json:"job_id"`
	State    server.JobState   `json:"state"`
	CacheHit bool              `json:"cache_hit"`
	Result   *server.JobResult `json:"result"`
	Error    string            `json:"error"`
}

func (d *testDaemon) submitJob(spec server.JobSpec) (submitResponse, *http.Response) {
	d.t.Helper()
	blob, _ := json.Marshal(spec)
	var out submitResponse
	resp := d.do("POST", "/v1/jobs", bytes.NewReader(blob), &out)
	return out, resp
}

// wait polls the job until it reaches a terminal state.
func (d *testDaemon) wait(jobID string, timeout time.Duration) server.Manifest {
	d.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var st struct{ server.Manifest }
		resp := d.do("GET", "/v1/jobs/"+jobID, nil, &st)
		if resp.StatusCode != http.StatusOK {
			d.t.Fatalf("status %s: HTTP %d", jobID, resp.StatusCode)
		}
		if st.State.Terminal() {
			return st.Manifest
		}
		if time.Now().After(deadline) {
			d.t.Fatalf("job %s still %s after %v", jobID, st.State, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerRoundTrip(t *testing.T) {
	d := startDaemon(t, server.Config{})
	g := smallGraph()
	want := directDigest(t, g)

	id := d.submitGraph(g)
	// Idempotent: same graph, same id.
	if again := d.submitGraph(g); again != id {
		t.Errorf("resubmitted graph got id %q, want %q", again, id)
	}

	sub, resp := d.submitJob(server.JobSpec{GraphID: id})
	if resp.StatusCode != http.StatusAccepted || sub.JobID == "" {
		t.Fatalf("submit job: status %d, %+v", resp.StatusCode, sub)
	}

	m := d.wait(sub.JobID, time.Minute)
	if m.State != server.JobDone || m.Result == nil {
		t.Fatalf("job finished %s (error %q), want done", m.State, m.Error)
	}
	if m.Result.Count != want.Count || m.Result.Digest != want.String() {
		t.Errorf("daemon digest %s (count %d), direct run %s (count %d)",
			m.Result.Digest, m.Result.Count, want.String(), want.Count)
	}

	// Result streaming replays the full multiset.
	req, _ := http.NewRequest("GET", d.ts.URL+"/v1/jobs/"+sub.JobID+"/results", nil)
	sresp, err := d.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if h := sresp.Header.Get("X-MBE-Partial"); h != "" {
		t.Errorf("done job streamed with X-MBE-Partial=%q", h)
	}
	var streamed mbe.Digest
	dec := json.NewDecoder(sresp.Body)
	for {
		var rec struct {
			L []int32 `json:"l"`
			R []int32 `json:"r"`
		}
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		streamed.Observe(rec.L, rec.R)
	}
	if streamed != want {
		t.Errorf("streamed digest %s, want %s", streamed.String(), want.String())
	}

	// Same spec again: served from the result cache, no recompute.
	hit, resp2 := d.submitJob(server.JobSpec{GraphID: id})
	if resp2.StatusCode != http.StatusOK || !hit.CacheHit || hit.JobID != sub.JobID {
		t.Errorf("resubmit: status %d %+v, want cache hit on job %s", resp2.StatusCode, hit, sub.JobID)
	}
	if hit.Result == nil || hit.Result.Digest != want.String() {
		t.Errorf("cache hit result %+v, want digest %s", hit.Result, want.String())
	}
}

// TestServerBBKJob runs a daemon job under the BBK engine, submitted in
// the JSON convention's lowercase spelling, and requires the spooled
// result to match a direct in-memory enumeration digest — the end-to-end
// proof that BBK supports the durable-spool lifecycle the daemon needs.
func TestServerBBKJob(t *testing.T) {
	d := startDaemon(t, server.Config{})
	g := smallGraph()
	want := directDigest(t, g)

	id := d.submitGraph(g)
	sub, resp := d.submitJob(server.JobSpec{GraphID: id, Algorithm: "bbk"})
	if resp.StatusCode != http.StatusAccepted || sub.JobID == "" {
		t.Fatalf("submit bbk job: status %d, %+v", resp.StatusCode, sub)
	}
	m := d.wait(sub.JobID, time.Minute)
	if m.State != server.JobDone || m.Result == nil {
		t.Fatalf("bbk job finished %s (error %q), want done", m.State, m.Error)
	}
	if m.Result.Count != want.Count || m.Result.Digest != want.String() {
		t.Errorf("bbk daemon digest %s (count %d), direct run %s (count %d)",
			m.Result.Digest, m.Result.Count, want.String(), want.Count)
	}
}

func TestServerRejectsBadSubmissions(t *testing.T) {
	d := startDaemon(t, server.Config{})
	id := d.submitGraph(smallGraph())

	for name, tc := range map[string]struct {
		spec server.JobSpec
		code int
	}{
		"missing graph": {server.JobSpec{GraphID: "nope"}, http.StatusNotFound},
		"no graph id":   {server.JobSpec{}, http.StatusBadRequest},
		"bad algorithm": {server.JobSpec{GraphID: id, Algorithm: "FMBE"}, http.StatusBadRequest},
		"bad ordering":  {server.JobSpec{GraphID: id, Ordering: "zigzag"}, http.StatusBadRequest},
		"negative":      {server.JobSpec{GraphID: id, Threads: -1}, http.StatusBadRequest},
	} {
		if _, resp := d.submitJob(tc.spec); resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d", name, resp.StatusCode, tc.code)
		}
	}

	resp := d.do("POST", "/v1/graphs", strings.NewReader("onlyonefield\n"), nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage graph upload: status %d, want 400", resp.StatusCode)
	}
	if resp := d.do("GET", "/v1/jobs/jdeadbeef", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status: %d, want 404", resp.StatusCode)
	}
}

func TestServerCancel(t *testing.T) {
	d := startDaemon(t, server.Config{CheckpointEvery: 5 * time.Millisecond})
	id := d.submitGraph(bigGraph())
	sub, resp := d.submitJob(server.JobSpec{GraphID: id, Threads: 1})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}

	// Wait until it is actually running, then cancel.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st struct{ server.Manifest }
		d.do("GET", "/v1/jobs/"+sub.JobID, nil, &st)
		if st.State == server.JobRunning {
			break
		}
		if st.State.Terminal() {
			t.Fatalf("job reached %s before it could be canceled", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if resp := d.do("POST", "/v1/jobs/"+sub.JobID+"/cancel", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	m := d.wait(sub.JobID, 30*time.Second)
	if m.State != server.JobCanceled {
		t.Errorf("state after cancel = %s (error %q), want canceled", m.State, m.Error)
	}

	// A canceled job's durable prefix stays readable, flagged partial.
	req, _ := http.NewRequest("GET", d.ts.URL+"/v1/jobs/"+sub.JobID+"/results", nil)
	sresp, err := d.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, sresp.Body)
	sresp.Body.Close()
	if sresp.Header.Get("X-MBE-Partial") != "true" {
		t.Errorf("canceled job results not flagged partial")
	}
}

func TestServerDeadlineIsTerminal(t *testing.T) {
	d := startDaemon(t, server.Config{CheckpointEvery: 5 * time.Millisecond})
	id := d.submitGraph(bigGraph())
	sub, resp := d.submitJob(server.JobSpec{GraphID: id, Threads: 1, DeadlineMS: 50})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	m := d.wait(sub.JobID, time.Minute)
	if m.State != server.JobFailed || !strings.Contains(m.Error, "deadline") {
		t.Errorf("state = %s (error %q), want failed with deadline error", m.State, m.Error)
	}
	if m.Attempts > 1 {
		t.Errorf("deadline failure took %d attempts, want 1 (deadline must not be retried)", m.Attempts)
	}
}

func TestServerHealthz(t *testing.T) {
	d := startDaemon(t, server.Config{})
	var out struct {
		Status    string `json:"status"`
		JobsTotal int    `json:"jobs_total"`
	}
	resp := d.do("GET", "/healthz", nil, &out)
	if resp.StatusCode != http.StatusOK || out.Status != "ok" {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, out)
	}
}

// TestParseHelpers pins the shared flag/config spellings the CLI and
// the daemon both accept.
func TestParseHelpers(t *testing.T) {
	if a, err := mbe.ParseAlgorithm(""); err != nil || a != mbe.AdaMBE {
		t.Errorf(`ParseAlgorithm("") = %v, %v; want AdaMBE`, a, err)
	}
	if _, err := mbe.ParseAlgorithm("NoSuchAlgo"); err == nil {
		t.Error("ParseAlgorithm accepted garbage")
	}
	if o, err := mbe.ParseOrdering(""); err != nil || o != mbe.OrderAscendingDegree {
		t.Errorf(`ParseOrdering("") = %v, %v; want asc`, o, err)
	}
	for _, name := range mbe.AlgorithmNames {
		if _, err := mbe.ParseAlgorithm(name); err != nil {
			t.Errorf("ParseAlgorithm(%q): %v", name, err)
		}
	}
	for _, name := range mbe.OrderingNames {
		if _, err := mbe.ParseOrdering(name); err != nil {
			t.Errorf("ParseOrdering(%q): %v", name, err)
		}
	}
}
