package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/server"
)

func marshalSpec(t *testing.T, spec server.JobSpec) *bytes.Reader {
	t.Helper()
	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(blob)
}

// expectShed asserts a 429 with a usable Retry-After header and the
// retry hint mirrored into the JSON body.
func expectShed(t *testing.T, d *testDaemon, spec server.JobSpec, context string) {
	t.Helper()
	blob := marshalSpec(t, spec)
	req, _ := http.NewRequest("POST", d.ts.URL+"/v1/jobs", blob)
	resp, err := d.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("%s: status %d, want 429", context, resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Errorf("%s: Retry-After = %q, want an integer >= 1", context, ra)
	}
}

// TestSaturationShedsButReadsSurvive is the load-shedding acceptance
// test: with the queue saturated by in-flight work, further submits are
// shed with 429 + Retry-After while status reads, job listings, result
// streams and /debug endpoints all keep answering.
func TestSaturationShedsButReadsSurvive(t *testing.T) {
	checkLeaks := faultinject.CheckGoroutines(t)

	d := startDaemon(t, server.Config{
		Concurrency:     1,
		MaxJobs:         2,
		CheckpointEvery: 5 * time.Millisecond,
	})
	id := d.submitGraph(bigGraph())

	// Two slow jobs fill the admission window (one running, one queued).
	// Distinct seeds keep the second out of the first's cache key.
	first, resp1 := d.submitJob(server.JobSpec{GraphID: id, Threads: 1, Ordering: "rand", Seed: 1})
	second, resp2 := d.submitJob(server.JobSpec{GraphID: id, Threads: 1, Ordering: "rand", Seed: 2})
	if resp1.StatusCode != http.StatusAccepted || resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("fills: %d, %d", resp1.StatusCode, resp2.StatusCode)
	}

	expectShed(t, d, server.JobSpec{GraphID: id, Threads: 1, Ordering: "rand", Seed: 3}, "queue full")

	// Reads keep working while saturated.
	for _, path := range []string{
		"/healthz",
		"/v1/jobs",
		"/v1/jobs/" + first.JobID,
		"/v1/jobs/" + first.JobID + "/results",
		"/v1/jobs/" + second.JobID,
		"/debug/progress",
	} {
		if resp := d.do("GET", path, nil, nil); resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s while saturated: %d, want 200", path, resp.StatusCode)
		}
	}

	// Drain: once the jobs finish, their slots free and submits pass
	// admission again.
	d.wait(first.JobID, 2*time.Minute)
	d.wait(second.JobID, 2*time.Minute)
	if _, resp := d.submitJob(server.JobSpec{GraphID: id, Threads: 1, Ordering: "rand", Seed: 1}); resp.StatusCode != http.StatusOK {
		// Seed 1 finished above: this is a cache hit (200), proving the
		// shed submit was never silently queued.
		t.Errorf("post-drain submit: %d, want 200 cache hit", resp.StatusCode)
	}

	d.stop()
	checkLeaks()
}

// TestMemoryBudgetSheds: admission also sheds on the server-wide soft
// memory budget, independently of the queue bound.
func TestMemoryBudgetSheds(t *testing.T) {
	d := startDaemon(t, server.Config{
		Concurrency:        1,
		MaxJobs:            16,
		MemBudgetBytes:     1 << 20, // one default-sized job fits, two don't
		DefaultJobMemBytes: 1 << 20,
		CheckpointEvery:    5 * time.Millisecond,
	})
	id := d.submitGraph(bigGraph())
	if _, resp := d.submitJob(server.JobSpec{GraphID: id, Threads: 1}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	expectShed(t, d, server.JobSpec{GraphID: id, Threads: 1, Seed: 9, Ordering: "rand"}, "memory budget")
}

// TestRateLimitSheds: the token bucket sheds submit-side requests (both
// endpoints share it) while reads stay exempt.
func TestRateLimitSheds(t *testing.T) {
	d := startDaemon(t, server.Config{RatePerSec: 0.0001, Burst: 1})
	id := d.submitGraph(smallGraph()) // consumes the only token
	expectShed(t, d, server.JobSpec{GraphID: id}, "rate limit")
	if resp := d.do("GET", "/healthz", nil, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz rate-limited: %d", resp.StatusCode)
	}
}

// TestNoGoroutineLeaks runs a full lifecycle — submit, enumerate,
// stream, cancel, shutdown — and then requires the goroutine count to
// return to its baseline.
func TestNoGoroutineLeaks(t *testing.T) {
	checkLeaks := faultinject.CheckGoroutines(t)
	d := startDaemon(t, server.Config{Concurrency: 2})
	id := d.submitGraph(smallGraph())
	sub, _ := d.submitJob(server.JobSpec{GraphID: id})
	d.wait(sub.JobID, time.Minute)
	d.do("GET", "/v1/jobs/"+sub.JobID+"/results", nil, nil)
	d.stop()
	checkLeaks()
}
