// Package server is the MBE-as-a-service layer: a crash-safe,
// load-shedding enumeration daemon (cmd/mbed) over the library's
// durable spool/checkpoint primitives. It owns the job store (one spool
// dir + atomically-written manifest per job), the bounded admission
// queue (memory-budget + token-bucket shedding with 429 + Retry-After),
// the per-job execution loop (tle deadline, panic isolation, bounded
// retry with exponential backoff + jitter, exactly-once resume from the
// job's checkpoint), and restart recovery (re-adopt completed jobs into
// the result cache, resume interrupted ones). See docs/SERVER.md.
package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Backoff is an exponential backoff schedule with full jitter. The zero
// value means 100ms base, 5s cap, ×2 growth, full jitter.
type Backoff struct {
	// Base is the nominal first delay.
	Base time.Duration
	// Max caps the nominal delay (before jitter).
	Max time.Duration
	// Factor is the per-retry growth of the nominal delay.
	Factor float64
	// Jitter in (0,1] is the fraction of the nominal delay that is
	// randomized away: the actual delay is uniform in
	// [nominal·(1−Jitter), nominal]. The zero value means full jitter
	// (1), which decorrelates the retry storms of many jobs failing at
	// once; NoJitter pins the schedule to the nominal delays.
	Jitter float64
}

// NoJitter disables jitter when assigned to Backoff.Jitter.
const NoJitter = -1

func (b Backoff) base() time.Duration {
	if b.Base <= 0 {
		return 100 * time.Millisecond
	}
	return b.Base
}

func (b Backoff) max() time.Duration {
	if b.Max <= 0 {
		return 5 * time.Second
	}
	return b.Max
}

func (b Backoff) factor() float64 {
	if b.Factor < 1 {
		return 2
	}
	return b.Factor
}

func (b Backoff) jitter() float64 {
	switch {
	case b.Jitter == 0:
		return 1
	case b.Jitter < 0:
		return 0
	case b.Jitter > 1:
		return 1
	}
	return b.Jitter
}

// Delay returns the jittered delay before retry number retry (0 = the
// wait after the first failed attempt), drawing jitter from rng. A nil
// rng uses the process-global source; a seeded rng makes the whole
// schedule deterministic, which is how the tests pin it.
func (b Backoff) Delay(retry int, rng *rand.Rand) time.Duration {
	nominal := float64(b.base())
	f := b.factor()
	for i := 0; i < retry; i++ {
		nominal *= f
		if nominal >= float64(b.max()) {
			break
		}
	}
	if m := float64(b.max()); nominal > m {
		nominal = m
	}
	j := b.jitter()
	if j == 0 {
		return time.Duration(nominal)
	}
	u := rand.Float64
	if rng != nil {
		u = rng.Float64
	}
	// Uniform in [nominal·(1−j), nominal].
	return time.Duration(nominal * (1 - j*u()))
}

// permanent wraps an error to mark it non-retryable.
type permanent struct{ err error }

func (p *permanent) Error() string { return p.err.Error() }
func (p *permanent) Unwrap() error { return p.err }

// Permanent marks err as non-retryable: Retry returns it (unwrapped by
// errors.Is/As) without consuming further attempts.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanent{err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// with Permanent.
func IsPermanent(err error) bool {
	var p *permanent
	return errors.As(err, &p)
}

// RetryPolicy bounds the retry loop.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts, including the first;
	// <= 0 means 3.
	MaxAttempts int
	// Backoff is the delay schedule between attempts.
	Backoff Backoff
	// Rand, if non-nil, is the jitter source (seed it for deterministic
	// schedules in tests).
	Rand *rand.Rand
	// Sleep, if non-nil, replaces the context-aware wait between
	// attempts — the test seam for observing the schedule without
	// sleeping. It must return ctx.Err() if ctx is done before d
	// elapses.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts <= 0 {
		return 3
	}
	return p.MaxAttempts
}

func (p RetryPolicy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	if d <= 0 {
		// Still observe cancellation between back-to-back attempts.
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
			return nil
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// RetryBudgetError is returned by Retry when every attempt failed with
// a retryable error; Unwrap yields the last attempt's error.
type RetryBudgetError struct {
	Attempts int
	Last     error
}

func (e *RetryBudgetError) Error() string {
	return fmt.Sprintf("server: retry budget exhausted after %d attempts: %v", e.Attempts, e.Last)
}

func (e *RetryBudgetError) Unwrap() error { return e.Last }

// Retry runs attempt up to p.MaxAttempts times, sleeping the jittered
// backoff between failures. It stops early — returning the attempt's
// error as-is — when the error is marked Permanent, and returns
// ctx.Err() (wrapped with the last attempt error, if any) when ctx is
// canceled mid-backoff. attempt receives the 0-based try number.
func Retry(ctx context.Context, p RetryPolicy, attempt func(try int) error) error {
	var last error
	n := p.attempts()
	for try := 0; try < n; try++ {
		if try > 0 {
			if err := p.sleep(ctx, p.Backoff.Delay(try-1, p.Rand)); err != nil {
				return fmt.Errorf("%w (while backing off from: %v)", err, last)
			}
		}
		err := attempt(try)
		if err == nil {
			return nil
		}
		if IsPermanent(err) {
			return err
		}
		last = err
	}
	return &RetryBudgetError{Attempts: n, Last: last}
}
