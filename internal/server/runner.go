package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"time"

	mbe "repro"
	"repro/internal/ckpt"
	"repro/internal/obs"
	"repro/internal/spool"
)

// Sentinel terminal outcomes the retry loop distinguishes.
var (
	errJobCanceled  = errors.New("server: job canceled")
	errShutdown     = errors.New("server: daemon shutting down")
	errJobDeadline  = errors.New("server: job deadline exceeded")
	errMemExhausted = errors.New("server: memory budget exceeded at minimum parallelism")
)

// executorLoop is one worker of the execution pool: it drains the job
// queue until the server context is canceled.
func (s *Server) executorLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob drives one job through the retry loop to a terminal state —
// except on daemon shutdown, where the manifest is deliberately left
// queued/running/retrying so restart recovery resumes it exactly-once
// from its checkpoint.
func (s *Server) runJob(j *job) {
	jobCtx, cancel := context.WithCancel(s.ctx)
	defer cancel()

	j.mu.Lock()
	if j.canceled { // canceled while still queued
		j.m.State = JobCanceled
		j.m.Error = errJobCanceled.Error()
		m := j.m
		waitedMS := msSince(j.enqueuedAt)
		j.mu.Unlock()
		s.persist(m)
		s.met.jobsCompleted.With(string(JobCanceled)).Inc()
		s.log.Info("job_canceled",
			"trace_id", m.TraceID, "job_id", m.ID, "from_state", string(JobQueued),
			"queue_wait_ms", waitedMS)
		s.finalize(j)
		return
	}
	j.cancel = cancel
	if j.deadline.IsZero() {
		d := time.Duration(j.m.Spec.DeadlineMS) * time.Millisecond
		if d <= 0 {
			d = s.cfg.defaultDeadline()
		}
		j.deadline = time.Now().Add(d)
	}
	// First executor pickup ends the queue wait (recovered jobs measure
	// from re-enqueue); clear the mark so a retry loop does not re-count.
	if !j.enqueuedAt.IsZero() {
		wait := time.Since(j.enqueuedAt)
		j.enqueuedAt = time.Time{}
		j.stateSince = time.Now()
		s.met.queueWait.Observe(wait.Seconds())
	}
	j.mu.Unlock()

	g, err := s.store.LoadGraph(j.m.Spec.GraphID)
	if err != nil {
		s.fail(j, err)
		s.finalize(j)
		return
	}

	var elapsed time.Duration
	policy := RetryPolicy{MaxAttempts: s.cfg.maxAttempts(), Backoff: s.cfg.Backoff, Rand: s.cfg.Rand}
	err = Retry(jobCtx, policy, func(try int) error {
		res, aerr := s.attempt(jobCtx, j, g, try)
		elapsed += res.Elapsed
		return aerr
	})

	switch {
	case err == nil:
		s.complete(j, elapsed)
	case errors.Is(err, errShutdown) || (jobCtx.Err() != nil && s.ctx.Err() != nil):
		// Daemon is exiting (ctx canceled by Close, possibly observed
		// mid-backoff): do NOT write a terminal state. The on-disk
		// manifest still says running/retrying, which is exactly what
		// restart recovery looks for.
		s.log.Info("job_interrupted_by_shutdown",
			"trace_id", j.m.TraceID, "job_id", j.m.ID, "state", string(j.state()),
			"will_resume", true)
		return
	case errors.Is(err, errJobCanceled):
		s.transition(j, JobCanceled, err)
		s.finalize(j)
	default:
		s.fail(j, err)
		s.finalize(j)
	}
}

// attempt runs one enumeration attempt. It returns nil on completion,
// a Permanent error for terminal outcomes, and a plain error for
// retryable ones (spool I/O failure, worker panic, memory-budget trip
// with parallelism left to shed).
func (s *Server) attempt(jobCtx context.Context, j *job, g *mbe.Graph, try int) (mbe.Result, error) {
	j.mu.Lock()
	if j.canceled {
		j.mu.Unlock()
		return mbe.Result{}, Permanent(errJobCanceled)
	}
	deadline := j.deadline
	threads := j.m.EffectiveThreads
	if threads == 0 {
		threads = j.m.Spec.Threads
	}
	memBudget := j.m.Spec.MaxMemoryBytes
	if memBudget == 0 {
		memBudget = s.cfg.defaultJobMem()
	}
	spec := j.m.Spec
	prevState := j.m.State
	prevSince := j.stateSince
	j.m.State = JobRunning
	j.m.Attempts = try + 1
	j.stateSince = time.Now()
	m := j.m
	j.mu.Unlock()

	if !time.Now().Before(deadline) {
		return mbe.Result{}, Permanent(fmt.Errorf("%w (budget spent across %d attempts)", errJobDeadline, try))
	}
	s.persist(m)
	s.log.Info("attempt_start",
		"trace_id", m.TraceID, "job_id", m.ID, "attempt", m.Attempts,
		"threads", threads, "from_state", string(prevState),
		"ms_in_state", msSince(prevSince))

	// Server-side fault hook (internal/faultinject): lets tests inject
	// deterministic attempt failures without touching the engines.
	if s.cfg.FaultHook != nil {
		if ferr := s.cfg.FaultHook("server/attempt"); ferr != nil {
			return mbe.Result{}, s.classifyRetryable(j, fmt.Errorf("injected attempt fault: %w", ferr))
		}
	}

	alg, _ := mbe.ParseAlgorithm(spec.Algorithm) // validated at submit
	ord, _ := mbe.ParseOrdering(spec.Ordering)
	spoolDir := s.store.SpoolDir(j.m.ID)
	rec := mbe.NewRecorder(mbe.RunInfo{
		Algorithm: alg.String(), Dataset: "job:" + j.m.ID, Threads: max(threads, 1),
		NU: g.NU(), NV: g.NV(), Edges: g.NumEdges(),
	})
	j.mu.Lock()
	j.rec = rec
	j.mu.Unlock()
	obs.Publish(rec)
	defer func() {
		obs.Unpublish(rec)
		j.mu.Lock()
		j.rec = nil
		j.mu.Unlock()
	}()

	opts := mbe.Options{
		Algorithm:      alg,
		Ordering:       ord,
		Seed:           spec.Seed,
		Tau:            spec.Tau,
		Threads:        threads,
		Context:        jobCtx,
		Deadline:       deadline,
		MaxMemoryBytes: memBudget,
		Obs:            rec,
		SpoolDir:       spoolDir,
		// Exactly-once across attempts and daemon restarts: every
		// attempt after the spool exists resumes from its checkpoint
		// instead of starting over (ckpt compaction drops whatever the
		// failed attempt had half-written).
		Resume:     spool.IsSpool(spoolDir),
		Checkpoint: mbe.CheckpointOptions{Every: s.cfg.CheckpointEvery},
		OnWarning: func(e error) {
			// A torn checkpoint degraded to a from-scratch resume is the one
			// warning operators page on (durable progress was lost): count it
			// and emit a dedicated structured event instead of the generic one.
			var corrupt *ckpt.CorruptError
			if errors.As(e, &corrupt) {
				s.met.ckptCorrupt.Inc()
				s.log.Warn("ckpt_corrupt_recovered", "trace_id", m.TraceID, "job_id", m.ID,
					"path", corrupt.Path, "err", e)
				return
			}
			s.log.Warn("job_warning", "trace_id", m.TraceID, "job_id", m.ID, "err", e)
		},
	}

	// Panic isolation: the engines already recover worker panics into
	// mbe.ErrPanic; this recover is the belt for panics in the server's
	// own wiring, so one poisoned job can never take the daemon down.
	var res mbe.Result
	var err error
	func() {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("server: job attempt panicked: %v", p)
			}
		}()
		res, err = mbe.Enumerate(g, opts)
	}()

	// Per-attempt telemetry regardless of outcome: wall time in the run
	// histogram, and whatever this attempt flushed to the spool (the
	// recorder's spool stats are per checkpoint session, so summing per
	// attempt stays correct across resumes).
	s.met.runSeconds.Observe(res.Elapsed.Seconds())
	if snap := rec.Snapshot(); snap.SpoolBytes > 0 {
		s.met.spoolBytes.Add(snap.SpoolBytes)
	}

	if err != nil {
		// Spool I/O errors, worker panics (mbe.ErrPanic), injected
		// faults: the durable prefix survives, so these are retryable.
		return res, s.classifyRetryable(j, err)
	}
	switch res.StopReason {
	case mbe.StopNone:
		return res, nil
	case mbe.StopCanceled:
		if s.ctx.Err() != nil {
			return res, Permanent(errShutdown)
		}
		return res, Permanent(errJobCanceled)
	case mbe.StopDeadline:
		return res, Permanent(fmt.Errorf("%w (after %d attempts; partial results remain readable)", errJobDeadline, try+1))
	case mbe.StopMemoryBudget:
		if threads > 1 {
			// Transient OOM-budget trip: shed parallelism (fewer
			// in-flight task copies) and resume from the checkpoint.
			reduced := threads / 2
			j.mu.Lock()
			j.m.EffectiveThreads = reduced
			j.mu.Unlock()
			s.met.memSheds.Inc()
			s.log.Warn("parallelism_shed",
				"trace_id", m.TraceID, "job_id", m.ID, "attempt", m.Attempts,
				"threads", threads, "reduced_to", reduced)
			return res, s.classifyRetryable(j,
				fmt.Errorf("memory budget exceeded at %d threads, retrying at %d", threads, reduced))
		}
		return res, Permanent(errMemExhausted)
	default:
		return res, Permanent(fmt.Errorf("server: unexpected stop reason %v", res.StopReason))
	}
}

// classifyRetryable records a retryable failure on the manifest
// (state retrying, error preserved) before handing it to Retry.
func (s *Server) classifyRetryable(j *job, err error) error {
	j.mu.Lock()
	j.m.State = JobRetrying
	j.m.Error = err.Error()
	msRunning := msSince(j.stateSince)
	j.stateSince = time.Now()
	m := j.m
	j.mu.Unlock()
	s.persist(m)
	s.met.retries.Inc()
	s.log.Warn("job_retrying",
		"trace_id", m.TraceID, "job_id", m.ID, "attempt", m.Attempts,
		"ms_in_state", msRunning, "err", err)
	return err
}

// complete transitions the job to done: digest the spool, record the
// result, publish it to the result cache.
func (s *Server) complete(j *job, elapsed time.Duration) {
	spoolDir := s.store.SpoolDir(j.m.ID)
	d, err := mbe.SpoolDigest(spoolDir)
	if err != nil {
		// A complete run whose spool does not verify is a bug worth
		// failing loudly over — never serve a corrupt result.
		s.fail(j, fmt.Errorf("server: spool verification after completion: %w", err))
		s.finalize(j)
		return
	}
	j.mu.Lock()
	j.m.State = JobDone
	j.m.Error = ""
	j.m.Result = &JobResult{
		Count:     d.Count,
		Digest:    d.String(),
		ElapsedMS: float64(elapsed.Microseconds()) / 1e3,
	}
	msRunning := msSince(j.stateSince)
	m := j.m
	j.mu.Unlock()
	s.persist(m)
	s.cacheMu.Lock()
	s.cache[m.CacheKey] = m.ID
	s.cacheMu.Unlock()
	s.finalize(j)
	s.met.jobsCompleted.With(string(JobDone)).Inc()
	s.log.Info("job_done",
		"trace_id", m.TraceID, "job_id", m.ID, "bicliques", d.Count,
		"attempts", m.Attempts, "elapsed_ms", m.Result.ElapsedMS,
		"ms_in_state", msRunning)
}

// fail transitions the job to its terminal failed state, error kept.
func (s *Server) fail(j *job, err error) {
	s.transition(j, JobFailed, err)
}

// transition moves the job to a terminal state, persisting the manifest
// and emitting the terminal metric + structured event in one place.
func (s *Server) transition(j *job, to JobState, err error) {
	j.mu.Lock()
	from := j.m.State
	j.m.State = to
	if err != nil {
		j.m.Error = err.Error()
	}
	msInState := msSince(j.stateSince)
	m := j.m
	j.mu.Unlock()
	s.persist(m)
	if to.Terminal() {
		s.met.jobsCompleted.With(string(to)).Inc()
	}
	ev, level := "job_"+string(to), slog.LevelInfo
	if to == JobFailed {
		level = slog.LevelError
	}
	s.log.Log(context.Background(), level, ev,
		"trace_id", m.TraceID, "job_id", m.ID, "from_state", string(from),
		"attempts", m.Attempts, "ms_in_state", msInState, "err", m.Error)
}

// finalize releases the job's admission charge exactly once.
func (s *Server) finalize(j *job) {
	j.mu.Lock()
	charge := j.m.Spec.MaxMemoryBytes
	j.mu.Unlock()
	if charge == 0 {
		charge = s.cfg.defaultJobMem()
	}
	s.adm.release(charge)
}

// persist writes the manifest, logging (not propagating) failures: a
// manifest write error must not wedge the state machine — the in-memory
// state stays authoritative for this process's lifetime, and recovery
// degrades to the previous manifest.
func (s *Server) persist(m Manifest) {
	if err := s.store.WriteManifest(m); err != nil {
		s.log.Error("manifest_write_failed",
			"trace_id", m.TraceID, "job_id", m.ID, "err", err)
	}
}
