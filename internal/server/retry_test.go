package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestBackoffDeterministicSchedule pins the jittered schedule under a
// seeded rand: full jitter draws uniformly in [0, nominal], so with the
// same seed the exact delays must reproduce, and every delay must stay
// inside its attempt's envelope.
func TestBackoffDeterministicSchedule(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 5 * time.Second, Factor: 2}

	want := make([]time.Duration, 8)
	for i := range want {
		want[i] = b.Delay(i, rand.New(rand.NewSource(42)))
	}
	for i := range want {
		got := b.Delay(i, rand.New(rand.NewSource(42)))
		if got != want[i] {
			t.Errorf("retry %d: same seed gave %v then %v", i, want[i], got)
		}
		nominal := 100 * time.Millisecond << i
		if nominal > 5*time.Second {
			nominal = 5 * time.Second
		}
		if got < 0 || got > nominal {
			t.Errorf("retry %d: delay %v outside [0, %v]", i, got, nominal)
		}
	}

	// Different seeds should disagree somewhere — otherwise the jitter
	// isn't actually sampling.
	differs := false
	for i := range want {
		if b.Delay(i, rand.New(rand.NewSource(7))) != want[i] {
			differs = true
		}
	}
	if !differs {
		t.Error("schedules identical across seeds; jitter is not applied")
	}
}

func TestBackoffNoJitterAndCap(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: NoJitter}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second, // capped at Max
	}
	for i, w := range want {
		if got := b.Delay(i, nil); got != w {
			t.Errorf("retry %d: Delay = %v, want %v", i, got, w)
		}
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	var tries []int
	boom := errors.New("boom")
	p := RetryPolicy{
		MaxAttempts: 4,
		Backoff:     Backoff{Base: time.Nanosecond, Jitter: NoJitter},
		Sleep:       func(ctx context.Context, d time.Duration) error { return nil },
	}
	err := Retry(context.Background(), p, func(try int) error {
		tries = append(tries, try)
		return fmt.Errorf("attempt %d: %w", try, boom)
	})
	if len(tries) != 4 {
		t.Fatalf("attempts = %v, want [0 1 2 3]", tries)
	}
	var budget *RetryBudgetError
	if !errors.As(err, &budget) {
		t.Fatalf("err = %v, want *RetryBudgetError", err)
	}
	if budget.Attempts != 4 || !errors.Is(err, boom) {
		t.Errorf("budget = %+v (Is(boom)=%v), want Attempts=4 wrapping boom", budget, errors.Is(err, boom))
	}
}

func TestRetryNonRetryablePassthrough(t *testing.T) {
	calls := 0
	fatal := errors.New("fatal")
	p := RetryPolicy{MaxAttempts: 5, Sleep: func(context.Context, time.Duration) error { return nil }}
	err := Retry(context.Background(), p, func(try int) error {
		calls++
		return Permanent(fatal)
	})
	if calls != 1 {
		t.Errorf("attempt ran %d times, want 1 (Permanent must not retry)", calls)
	}
	if !errors.Is(err, fatal) {
		t.Errorf("err = %v, want it to wrap the original error", err)
	}
	if !IsPermanent(err) {
		t.Errorf("IsPermanent(%v) = false, want true", err)
	}
}

func TestRetrySucceedsMidBudget(t *testing.T) {
	calls := 0
	p := RetryPolicy{MaxAttempts: 5, Sleep: func(context.Context, time.Duration) error { return nil }}
	err := Retry(context.Background(), p, func(try int) error {
		calls++
		if try < 2 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Errorf("err = %v after %d calls, want nil after 3", err, calls)
	}
}

// TestRetryContextCanceledMidBackoff cancels the context while Retry is
// sleeping between attempts: the cancellation must surface promptly
// (no third attempt) and keep the last attempt error in the message.
func TestRetryContextCanceledMidBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sleeping := make(chan struct{})
	calls := 0
	p := RetryPolicy{
		MaxAttempts: 5,
		Backoff:     Backoff{Base: time.Hour, Jitter: NoJitter}, // real sleep would hang the test
		Sleep: func(ctx context.Context, d time.Duration) error {
			close(sleeping)
			<-ctx.Done()
			return ctx.Err()
		},
	}
	go func() {
		<-sleeping
		cancel()
	}()
	err := Retry(ctx, p, func(try int) error {
		calls++
		return errors.New("transient failure")
	})
	if calls != 1 {
		t.Errorf("attempt ran %d times, want 1 (canceled during first backoff)", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestRetryDefaultSleepHonorsContext exercises the real timer-based
// Sleep: an already-canceled context must return immediately even for
// a long delay.
func TestRetryDefaultSleepHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := RetryPolicy{MaxAttempts: 3, Backoff: Backoff{Base: time.Hour, Jitter: NoJitter}}
	start := time.Now()
	err := Retry(ctx, p, func(try int) error { return errors.New("transient") })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Retry blocked %v on a canceled context", elapsed)
	}
}
