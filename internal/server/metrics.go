package server

import (
	"repro/internal/obs"
)

// serverMetrics is the daemon's aggregate telemetry, served as
// Prometheus text at GET /metrics. One instance per Server (tests run
// many servers per process; a process-global registry would alias
// them), registered on its own obs.Registry.
//
// The family layout (names are the public contract, documented in
// docs/OBSERVABILITY.md "Service telemetry"):
//
//	mbed_http_requests_total{route,code}  counter
//	mbed_http_request_seconds{route}      histogram (DefLatencyBuckets)
//	mbed_jobs_submitted_total             counter
//	mbed_jobs_completed_total{state}      counter (done|failed|canceled)
//	mbed_job_queue_wait_seconds           histogram
//	mbed_job_run_seconds                  histogram (per attempt)
//	mbed_job_retries_total                counter
//	mbed_parallelism_sheds_total          counter (memory-budget thread halvings)
//	mbed_admission_shed_total{reason}     counter (rate_limit|queue_full|mem_budget)
//	mbed_jobs_recovered_total             counter (restart re-enqueues)
//	mbed_ckpt_corrupt_recovered_total     counter (torn checkpoints degraded to from-scratch resume)
//	mbed_cache_hits_total                 counter (result-cache serves)
//	mbed_cache_misses_total               counter (submits that enumerate)
//	mbed_spool_bytes_total                counter (bytes flushed to job spools)
//	mbed_jobs_active                      gauge  (queued+running+retrying)
//	mbed_mem_committed_bytes              gauge  (admission memory charges)
type serverMetrics struct {
	reg *obs.Registry

	httpRequests *obs.CounterVec
	httpLatency  *obs.HistogramVec

	jobsSubmitted *obs.Counter
	jobsCompleted *obs.CounterVec
	queueWait     *obs.Histogram
	runSeconds    *obs.Histogram
	retries       *obs.Counter
	memSheds      *obs.Counter
	sheds         *obs.CounterVec
	recovered     *obs.Counter
	ckptCorrupt   *obs.Counter
	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	spoolBytes    *obs.Counter
}

func newServerMetrics() *serverMetrics {
	reg := obs.NewRegistry()
	return &serverMetrics{
		reg: reg,
		httpRequests: reg.NewCounterVec("mbed_http_requests_total",
			"HTTP requests served, by route pattern and status code.", "route", "code"),
		httpLatency: reg.NewHistogramVec("mbed_http_request_seconds",
			"HTTP request latency in seconds, by route pattern.", nil, "route"),
		jobsSubmitted: reg.NewCounter("mbed_jobs_submitted_total",
			"Enumeration jobs admitted past admission control."),
		jobsCompleted: reg.NewCounterVec("mbed_jobs_completed_total",
			"Jobs reaching a terminal state, by state.", "state"),
		queueWait: reg.NewHistogram("mbed_job_queue_wait_seconds",
			"Seconds between job admission and its first executor pickup.", nil),
		runSeconds: reg.NewHistogram("mbed_job_run_seconds",
			"Enumeration wall seconds per job attempt.", nil),
		retries: reg.NewCounter("mbed_job_retries_total",
			"Retryable attempt failures that consumed retry budget."),
		memSheds: reg.NewCounter("mbed_parallelism_sheds_total",
			"Memory-budget trips that halved a job's thread count."),
		sheds: reg.NewCounterVec("mbed_admission_shed_total",
			"Submits shed with 429, by admission gate.", "reason"),
		recovered: reg.NewCounter("mbed_jobs_recovered_total",
			"Interrupted jobs re-enqueued by restart recovery."),
		ckptCorrupt: reg.NewCounter("mbed_ckpt_corrupt_recovered_total",
			"Torn/corrupt checkpoints found on resume and degraded to a from-scratch restart."),
		cacheHits: reg.NewCounter("mbed_cache_hits_total",
			"Job submits served from the digest-keyed result cache."),
		cacheMisses: reg.NewCounter("mbed_cache_misses_total",
			"Job submits that had to enumerate (no cache entry)."),
		spoolBytes: reg.NewCounter("mbed_spool_bytes_total",
			"Bytes flushed to job spool shards across all attempts."),
	}
}

// bindAdmission registers the scrape-time gauges that read the
// admission ledger directly — no mirrored state to drift.
func (m *serverMetrics) bindAdmission(adm *admission) {
	m.reg.NewGaugeFunc("mbed_jobs_active",
		"Jobs currently queued, running or retrying.", func() int64 {
			active, _ := adm.load()
			return int64(active)
		})
	m.reg.NewGaugeFunc("mbed_mem_committed_bytes",
		"Sum of admitted jobs' engine-memory charges in bytes.", func() int64 {
			_, mem := adm.load()
			return mem
		})
}

// Metrics exposes the server's registry (the /metrics handler source);
// tests reach through it to reconcile counters against observed work.
func (s *Server) Metrics() *obs.Registry { return s.met.reg }
