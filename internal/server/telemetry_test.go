package server_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// submitJobTraced is submitJob with an explicit X-MBE-Trace header.
func (d *testDaemon) submitJobTraced(spec server.JobSpec, trace string) (submitResponse, *http.Response) {
	d.t.Helper()
	blob, _ := json.Marshal(spec)
	req, err := http.NewRequest("POST", d.ts.URL+"/v1/jobs", bytes.NewReader(blob))
	if err != nil {
		d.t.Fatal(err)
	}
	req.Header.Set(server.TraceHeader, trace)
	resp, err := d.ts.Client().Do(req)
	if err != nil {
		d.t.Fatal(err)
	}
	defer resp.Body.Close()
	var out submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		d.t.Fatalf("submit: bad JSON: %v", err)
	}
	return out, resp
}

// scrapeMetrics fetches /metrics and parses the exposition into a
// map of "name{labels}" -> value.
func (d *testDaemon) scrapeMetrics() map[string]float64 {
	d.t.Helper()
	resp, err := d.ts.Client().Get(d.ts.URL + "/metrics")
	if err != nil {
		d.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		d.t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		d.t.Fatalf("GET /metrics content type %q", ct)
	}
	return parseProm(d.t, resp.Body)
}

// parseProm is a minimal Prometheus text-format reader: enough to fail
// on structurally broken output (bad value, sample before any header).
func parseProm(t *testing.T, r io.Reader) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sawHeader := false
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Fatalf("bad comment line %q", line)
			}
			sawHeader = true
			continue
		}
		if !sawHeader {
			t.Fatalf("sample %q before any HELP/TYPE header", line)
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("bad sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:idx]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsReconcile runs jobs against a live daemon and checks that
// GET /metrics serves parseable Prometheus text whose counters and
// histogram counts agree with the work actually performed.
func TestMetricsReconcile(t *testing.T) {
	d := startDaemon(t, server.Config{})
	g := smallGraph()
	id := d.submitGraph(g)

	const jobs = 3
	for i := 0; i < jobs; i++ {
		// Distinct seeds with ordering "rand" defeat the result cache.
		sub, resp := d.submitJob(server.JobSpec{GraphID: id, Ordering: "rand", Seed: int64(i + 1)})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		if m := d.wait(sub.JobID, time.Minute); m.State != server.JobDone {
			t.Fatalf("job %d finished %s", i, m.State)
		}
	}
	// One cache hit on top.
	if hit, _ := d.submitJob(server.JobSpec{GraphID: id, Ordering: "rand", Seed: 1}); !hit.CacheHit {
		t.Fatalf("expected cache hit, got %+v", hit)
	}

	m := d.scrapeMetrics()
	expect := map[string]float64{
		"mbed_jobs_submitted_total":               jobs,
		`mbed_jobs_completed_total{state="done"}`: jobs,
		"mbed_cache_misses_total":                 jobs,
		"mbed_cache_hits_total":                   1,
		"mbed_job_queue_wait_seconds_count":       jobs,
		"mbed_job_run_seconds_count":              jobs,
		"mbed_jobs_active":                        0,
	}
	for key, want := range expect {
		if got, ok := m[key]; !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v", key, got, ok, want)
		}
	}
	// Histogram internal consistency: the +Inf bucket is the count.
	if inf, cnt := m[`mbed_job_run_seconds_bucket{le="+Inf"}`], m["mbed_job_run_seconds_count"]; inf != cnt {
		t.Errorf("run_seconds +Inf bucket %v != count %v", inf, cnt)
	}
	// Requests flowed through the instrumented mux: at minimum the three
	// submits, the polls and this scrape itself.
	var reqs float64
	for key, v := range m {
		if strings.HasPrefix(key, "mbed_http_requests_total{") {
			reqs += v
		}
	}
	if reqs < jobs+1 {
		t.Errorf("mbed_http_requests_total sums to %v, want >= %d", reqs, jobs+1)
	}
	if m[`mbed_http_requests_total{route="/v1/jobs",code="202"}`] != jobs {
		t.Errorf("submit route counter = %v, want %d", m[`mbed_http_requests_total{route="/v1/jobs",code="202"}`], jobs)
	}

	// Counters are monotone across scrapes.
	m2 := d.scrapeMetrics()
	for key, v := range m {
		if strings.HasSuffix(key, "_total") || strings.HasSuffix(key, "_count") {
			if m2[key] < v {
				t.Errorf("%s went backwards: %v -> %v", key, v, m2[key])
			}
		}
	}
}

// TestTraceEchoAndMint checks the header contract: a client-supplied
// X-MBE-Trace is echoed verbatim and recorded on the job; absent one,
// the daemon mints an id and still echoes it.
func TestTraceEchoAndMint(t *testing.T) {
	d := startDaemon(t, server.Config{})
	id := d.submitGraph(smallGraph())

	const trace = "trace-echo-test.1"
	sub, resp := d.submitJobTraced(server.JobSpec{GraphID: id}, trace)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(server.TraceHeader); got != trace {
		t.Errorf("echoed trace %q, want %q", got, trace)
	}
	final := d.wait(sub.JobID, time.Minute)
	if final.TraceID != trace {
		t.Errorf("manifest trace %q, want %q", final.TraceID, trace)
	}

	// Results stream (NDJSON) echoes the trace too.
	req, _ := http.NewRequest("GET", d.ts.URL+"/v1/jobs/"+sub.JobID+"/results", nil)
	req.Header.Set(server.TraceHeader, trace)
	sresp, err := d.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, sresp.Body)
	sresp.Body.Close()
	if got := sresp.Header.Get(server.TraceHeader); got != trace {
		t.Errorf("results stream echoed %q, want %q", got, trace)
	}

	// No client trace: the daemon mints one (t + 16 hex).
	sub2, resp2 := d.submitJob(server.JobSpec{GraphID: id, Seed: 7, Ordering: "rand"})
	minted := resp2.Header.Get(server.TraceHeader)
	if len(minted) != 17 || !strings.HasPrefix(minted, "t") {
		t.Errorf("minted trace %q, want t+16 hex", minted)
	}
	if m := d.wait(sub2.JobID, time.Minute); m.TraceID != minted {
		t.Errorf("manifest trace %q != minted header %q", m.TraceID, minted)
	}
}

// TestTraceSurvivesRecovery is the kill -9 half of the tracing
// contract: interrupt a running job, restart over the same store, and
// the recovered job must carry the SAME trace id — on disk, in the
// status API, and in the recovery path's accounting.
func TestTraceSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	g := bigGraph()

	const trace = "trace-recovery-test"
	d1 := startDaemon(t, server.Config{
		Dir:             dir,
		Concurrency:     1,
		CheckpointEvery: 2 * time.Millisecond,
	})
	id := d1.submitGraph(g)
	sub, resp := d1.submitJobTraced(server.JobSpec{GraphID: id, Threads: 1}, trace)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}

	spoolDir := filepath.Join(dir, "jobs", sub.JobID, "spool")
	waitForFile(t, filepath.Join(spoolDir, "checkpoint.json"), 30*time.Second)
	d1.stop()

	// The manifest a kill -9 leaves behind already carries the trace.
	m, err := readManifest(dir, sub.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if m.TraceID != trace {
		t.Fatalf("interrupted manifest trace %q, want %q", m.TraceID, trace)
	}

	d2 := startDaemon(t, server.Config{Dir: dir, Concurrency: 1})
	final := d2.wait(sub.JobID, 2*time.Minute)
	if final.State != server.JobDone {
		t.Fatalf("recovered job finished %s (error %q)", final.State, final.Error)
	}
	if final.TraceID != trace {
		t.Errorf("trace changed across crash recovery: %q, want %q", final.TraceID, trace)
	}
	if mm := d2.scrapeMetrics(); mm["mbed_jobs_recovered_total"] != 1 {
		t.Errorf("mbed_jobs_recovered_total = %v, want 1", mm["mbed_jobs_recovered_total"])
	}
}

// TestShedCarriesTrace pins the 429 path: a shed response must echo the
// client's trace id, advertise Retry-After, and count the shed under
// its admission gate.
func TestShedCarriesTrace(t *testing.T) {
	// One token, near-zero refill: the graph submit spends it, the job
	// submit sheds deterministically.
	d := startDaemon(t, server.Config{RatePerSec: 1e-9, Burst: 1})
	id := d.submitGraph(smallGraph())

	const trace = "trace-shed-test"
	sub, resp := d.submitJobTraced(server.JobSpec{GraphID: id}, trace)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit: status %d (%+v), want 429", resp.StatusCode, sub)
	}
	if got := resp.Header.Get(server.TraceHeader); got != trace {
		t.Errorf("429 echoed trace %q, want %q", got, trace)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	m := d.scrapeMetrics()
	if m[`mbed_admission_shed_total{reason="rate_limit"}`] != 1 {
		t.Errorf(`shed{rate_limit} = %v, want 1`, m[`mbed_admission_shed_total{reason="rate_limit"}`])
	}
	if m[`mbed_http_requests_total{route="/v1/jobs",code="429"}`] != 1 {
		t.Errorf("429 request counter = %v, want 1", m[`mbed_http_requests_total{route="/v1/jobs",code="429"}`])
	}
}

// TestTraceSanitized: hostile or oversized trace headers must not be
// echoed verbatim into responses and logs.
func TestTraceSanitized(t *testing.T) {
	d := startDaemon(t, server.Config{})
	id := d.submitGraph(smallGraph())

	// Printable but hostile: quotes and angle brackets would break log
	// lines and exposition labels; the length would bloat every event.
	evil := `abc"def<script>` + strings.Repeat("x", 200)
	sub, resp := d.submitJobTraced(server.JobSpec{GraphID: id}, evil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	got := resp.Header.Get(server.TraceHeader)
	if strings.ContainsAny(got, `"<>`) || len(got) > 64 {
		t.Errorf("hostile trace echoed unsanitized: %q", got)
	}
	if m := d.wait(sub.JobID, time.Minute); strings.ContainsAny(m.TraceID, `"<>`) || len(m.TraceID) > 64 {
		t.Errorf("hostile trace persisted unsanitized: %q", m.TraceID)
	}
}
