package server

import (
	"fmt"
	"strings"
	"sync"
	"time"

	mbe "repro"
	"repro/internal/obs"
)

// JobState is one node of the job lifecycle state machine:
//
//	queued ──▶ running ──▶ done
//	  │           │  ▲
//	  │           ▼  │ (retryable failure, attempts left)
//	  │        retrying
//	  │           │ (budget exhausted / permanent)
//	  ▼           ▼
//	canceled    failed
//
// done, failed and canceled are terminal. A daemon crash can leave a
// manifest in queued/running/retrying; restart recovery re-enqueues
// those, resuming from the job's checkpoint (see Server recovery).
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobRetrying JobState = "retrying"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state can never change again.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// JobSpec is a client's enumeration request — the body of POST
// /v1/jobs. Zero values mean the server defaults.
type JobSpec struct {
	// GraphID names a graph previously stored via POST /v1/graphs (or
	// the dataset shortcut there).
	GraphID string `json:"graph_id"`
	// Algorithm is a mbe.ParseAlgorithm spelling. The AdaMBE family
	// and BBK are accepted: daemon jobs stream to a durable spool,
	// which the competitor engines do not support. Empty means AdaMBE,
	// or ParAdaMBE when the resolved thread count exceeds 1.
	Algorithm string `json:"algorithm,omitempty"`
	// Ordering is a mbe.ParseOrdering spelling; Seed feeds "rand".
	Ordering string `json:"ordering,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	// Tau is the bitmap threshold τ; 0 = 64.
	Tau int `json:"tau,omitempty"`
	// Threads for ParAdaMBE; 0 = the server's per-job default. A
	// memory-budget retry halves this.
	Threads int `json:"threads,omitempty"`
	// DeadlineMS is the job's total wall budget across all attempts;
	// 0 = the server default. Exceeding it is a terminal failure (the
	// partial spool stays readable).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// MaxMemoryBytes is the job's soft engine-memory budget; 0 = the
	// server's per-job default. It is also the job's admission-control
	// charge against the server memory budget.
	MaxMemoryBytes int64 `json:"max_memory_bytes,omitempty"`
}

// Validate resolves and checks the spec against server defaults.
func (s JobSpec) Validate() error {
	if s.GraphID == "" {
		return fmt.Errorf("graph_id is required")
	}
	a, err := mbe.ParseAlgorithm(s.Algorithm)
	if err != nil {
		return err
	}
	switch a {
	case mbe.AdaMBE, mbe.ParAdaMBE, mbe.BaselineMBE, mbe.AdaMBELN, mbe.AdaMBEBIT, mbe.BBK:
	default:
		return fmt.Errorf("algorithm %s does not support durable spooling; daemon jobs accept the AdaMBE family and BBK", a)
	}
	if _, err := mbe.ParseOrdering(s.Ordering); err != nil {
		return err
	}
	if s.Threads < 0 || s.Tau < 0 || s.DeadlineMS < 0 || s.MaxMemoryBytes < 0 {
		return fmt.Errorf("threads, tau, deadline_ms and max_memory_bytes must be >= 0")
	}
	return nil
}

// CacheKey is the result-cache identity of the spec over a graph: the
// graph signature plus every option that identifies the run's spool
// (algorithm/τ/threads deliberately excluded — they change the
// traversal, not the maximal-biclique multiset; ordering+seed stay in
// because they pin the root decomposition a resumable spool is keyed
// by, so equal keys can share a spool byte-for-byte).
func (s JobSpec) CacheKey() string {
	ord := s.Ordering
	if ord == "" {
		ord = "asc"
	}
	return strings.Join([]string{s.GraphID, ord, fmt.Sprint(s.Seed)}, "|")
}

// JobResult is the outcome recorded on a done job.
type JobResult struct {
	// Count is the number of maximal bicliques in the spool.
	Count int64 `json:"count"`
	// Digest is the order-invariant multiset digest of the output, in
	// the same form `mbe cat -digest` prints — compare it against any
	// other enumeration of the graph.
	Digest string `json:"digest"`
	// ElapsedMS sums the enumeration wall time across attempts.
	ElapsedMS float64 `json:"elapsed_ms"`
	// CacheHit marks a job served from the result cache without
	// enumerating anything.
	CacheHit bool `json:"cache_hit,omitempty"`
}

// Manifest is the crash-safe on-disk record of a job (job.json in the
// job's directory), written atomically (temp + fsync + rename, the
// internal/ckpt discipline) at every state transition. After kill -9,
// the manifests are the daemon's recovery truth.
type Manifest struct {
	ID       string   `json:"id"`
	Spec     JobSpec  `json:"spec"`
	State    JobState `json:"state"`
	CacheKey string   `json:"cache_key"`
	// TraceID is the job's correlation id (client-supplied X-MBE-Trace
	// or daemon-minted at submit). Persisting it here is what makes a
	// trace survive kill -9: recovery re-logs the job under the same id.
	TraceID string `json:"trace_id,omitempty"`
	// Attempts counts started attempts; Error preserves the terminal
	// (or most recent retryable) failure.
	Attempts int    `json:"attempts,omitempty"`
	Error    string `json:"error,omitempty"`
	// EffectiveThreads is the parallel width the next attempt will use
	// (memory-budget retries reduce it); 0 = spec/server default.
	EffectiveThreads int        `json:"effective_threads,omitempty"`
	Result           *JobResult `json:"result,omitempty"`
	CreatedAt        string     `json:"created_at"`
	UpdatedAt        string     `json:"updated_at"`
}

// job is the in-memory wrapper: the manifest plus runtime state the
// disk does not need (cancel hook, live recorder).
type job struct {
	mu       sync.Mutex
	m        Manifest
	cancel   func()        // cancels the running attempt's context
	rec      *obs.Recorder // live progress while an attempt runs
	canceled bool          // user asked; checked between attempts
	deadline time.Time     // absolute wall deadline, set at first attempt
	// enqueuedAt is when the job entered the executor queue (submit, or
	// restart recovery) — the queue-wait histogram's start mark. Kept in
	// memory: recovered jobs measure their wait from re-enqueue, which
	// is the wait the restarted daemon is accountable for.
	enqueuedAt time.Time
	// stateSince stamps the last state transition so each transition
	// event can report how long the job spent in the state it left.
	stateSince time.Time
}

// msSince reports elapsed milliseconds since t, 0 for a zero time.
func msSince(t time.Time) float64 {
	if t.IsZero() {
		return 0
	}
	return float64(time.Since(t).Microseconds()) / 1e3
}

// manifest returns a copy of the job's manifest under the lock.
func (j *job) manifest() Manifest {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.m
}

// state returns the current state under the lock.
func (j *job) state() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.m.State
}

// snapshot returns the live progress of a running attempt, or nil.
func (j *job) snapshot() *obs.Snapshot {
	j.mu.Lock()
	rec := j.rec
	j.mu.Unlock()
	if rec == nil {
		return nil
	}
	s := rec.Snapshot()
	return &s
}
