package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"net/http"
	"runtime"
	"sync"
	"time"

	mbe "repro"
	"repro/internal/obs"
	"repro/internal/spool"
)

// Config tunes a Server. The zero value (plus Dir) is a working
// daemon: 2 executors, 64-job queue, no rate limit, 256 MiB default
// per-job memory budget, 10-minute default job deadline, 3 attempts.
type Config struct {
	// Dir is the job store root (created if absent). Required.
	Dir string
	// Concurrency is the executor pool width — how many jobs enumerate
	// at once; 0 = 2.
	Concurrency int
	// MaxJobs bounds queued+running jobs (admission control); 0 = 64.
	MaxJobs int
	// MemBudgetBytes bounds the sum of admitted jobs' engine-memory
	// budgets; 0 = unlimited. This is the server-wide soft budget the
	// per-job tle budgets compose into.
	MemBudgetBytes int64
	// DefaultJobMemBytes is the per-job engine-memory budget (and
	// admission charge) when a spec doesn't set one; 0 = 256 MiB.
	DefaultJobMemBytes int64
	// RatePerSec + Burst configure the submit-side token bucket;
	// RatePerSec 0 disables rate limiting.
	RatePerSec float64
	Burst      int
	// DefaultDeadline is a job's total wall budget when the spec
	// doesn't set one; 0 = 10 minutes.
	DefaultDeadline time.Duration
	// DefaultThreads is the parallel width for specs with Threads = 0;
	// 0 = GOMAXPROCS.
	DefaultThreads int
	// MaxAttempts bounds the per-job retry loop (total attempts
	// including the first); 0 = 3.
	MaxAttempts int
	// Backoff is the retry delay schedule.
	Backoff Backoff
	// Rand seeds the backoff jitter (tests); nil = global source.
	Rand *rand.Rand
	// CheckpointEvery is each job's checkpoint cadence; 0 = the ckpt
	// default (10s). Tests shrink it so kill -9 has something to find.
	CheckpointEvery time.Duration
	// Logger receives the daemon's structured operational events (one
	// slog record per job state transition, admission decision, shed,
	// recovery action — each carrying trace_id and job_id). cmd/mbed
	// selects a text or JSON handler via -log-format.
	Logger *slog.Logger
	// Logf is the legacy printf-style sink; when Logger is nil it is
	// adapted into one (tests pass t.Logf). Nil both = silent.
	Logf func(format string, args ...any)
	// FaultHook is the server-side fault-injection seam (see
	// internal/faultinject): called at named sites ("server/attempt");
	// a non-nil return is treated as that site failing.
	FaultHook func(site string) error
}

func (c Config) concurrency() int {
	if c.Concurrency <= 0 {
		return 2
	}
	return c.Concurrency
}

func (c Config) defaultJobMem() int64 {
	if c.DefaultJobMemBytes <= 0 {
		return 256 << 20
	}
	return c.DefaultJobMemBytes
}

func (c Config) defaultDeadline() time.Duration {
	if c.DefaultDeadline <= 0 {
		return 10 * time.Minute
	}
	return c.DefaultDeadline
}

func (c Config) maxAttempts() int {
	if c.MaxAttempts <= 0 {
		return 3
	}
	return c.MaxAttempts
}

// Server is the enumeration daemon: a bounded job queue over the
// durable job store, an executor pool, and the HTTP surface. Create
// one with New, serve Handler(), stop with Close.
type Server struct {
	cfg   cfgResolved
	store *Store
	adm   *admission
	met   *serverMetrics
	log   *slog.Logger

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	queue  chan *job

	jobsMu sync.RWMutex
	jobs   map[string]*job

	cacheMu sync.RWMutex
	cache   map[string]string // CacheKey -> done job id

	started time.Time
}

// cfgResolved is Config plus the derived accessors — kept as the
// original struct so the methods above apply.
type cfgResolved = Config

// New opens (or reopens) the job store under cfg.Dir, runs restart
// recovery — re-adopting completed jobs into the result cache and
// re-enqueueing interrupted ones, which then resume exactly-once from
// their checkpoints — and starts the executor pool.
func New(cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		return nil, errors.New("server: Config.Dir is required")
	}
	store, err := OpenStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		store:   store,
		met:     newServerMetrics(),
		log:     cfg.logger(),
		jobs:    make(map[string]*job),
		cache:   make(map[string]string),
		started: time.Now(),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())

	manifests, err := store.Scan(func(id string, err error) {
		s.log.Warn("recovery_skip_uncommitted", "job_id", id, "err", err)
	})
	if err != nil {
		return nil, err
	}
	now := time.Now()
	var resume []*job
	for _, m := range manifests {
		j := &job{m: m, enqueuedAt: now, stateSince: now}
		s.jobs[m.ID] = j
		switch m.State {
		case JobDone:
			// Re-adopt into the result cache: hot repeated queries are
			// served from this job's spool, never recomputed.
			s.cache[m.CacheKey] = m.ID
		case JobFailed, JobCanceled:
			// Terminal; kept for status reads.
		default:
			resume = append(resume, j)
		}
	}

	maxJobs := cfg.MaxJobs
	if maxJobs <= 0 {
		maxJobs = 64
	}
	s.adm = newAdmission(cfg.RatePerSec, cfg.Burst, maxJobs, cfg.MemBudgetBytes)
	s.met.bindAdmission(s.adm)
	// Recovered jobs were admitted before the crash: re-charge them
	// without consulting the rate limiter, and size the queue so they
	// always fit alongside a full admission window.
	s.queue = make(chan *job, maxJobs+len(resume))
	for _, j := range resume {
		charge := j.m.Spec.MaxMemoryBytes
		if charge == 0 {
			charge = cfg.defaultJobMem()
		}
		s.adm.adopt(charge)
		s.queue <- j
		s.met.recovered.Inc()
		// Same trace_id as before the crash — the manifest carried it
		// through, so the trace is continuous across kill -9.
		s.log.Info("job_recovered",
			"trace_id", j.m.TraceID, "job_id", j.m.ID,
			"state", string(j.m.State), "attempt", j.m.Attempts)
	}
	if n := len(manifests); n > 0 {
		s.log.Info("recovery_done",
			"jobs_scanned", n, "jobs_resumed", len(resume), "cached_results", len(s.cache))
	}

	for i := 0; i < cfg.concurrency(); i++ {
		s.wg.Add(1)
		go s.executorLoop()
	}
	return s, nil
}

// Close stops the executor pool: running enumerations are canceled
// (they checkpoint on the way out via the spool session) and their
// manifests stay in a resumable state. It waits up to timeout for the
// executors to wind down.
func (s *Server) Close(timeout time.Duration) error {
	s.cancel()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("server: executors still draining after %v", timeout)
	}
}

// Handler returns the daemon's HTTP surface:
//
//	POST   /v1/graphs              submit a graph (KONECT body, binary
//	                               body with ?format=binary, or
//	                               ?dataset=<name> with an empty body)
//	POST   /v1/jobs                submit an enumeration job (JobSpec)
//	GET    /v1/jobs                list jobs
//	GET    /v1/jobs/{id}           job status (+ live progress)
//	GET    /v1/jobs/{id}/results   stream bicliques as NDJSON
//	POST   /v1/jobs/{id}/cancel    cancel (DELETE /v1/jobs/{id} works too)
//	GET    /healthz                liveness + load
//	GET    /metrics                Prometheus text exposition
//	GET    /debug/...              progress/expvar/pprof (internal/obs)
//
// Only the two POST submit endpoints pass through admission control;
// every read keeps working while submits are being shed. Every route is
// wrapped by the instrument middleware: the response carries the
// request's X-MBE-Trace id (client-supplied or minted) and the request
// is counted into the per-route latency histograms — including 429
// sheds and streamed NDJSON bodies.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/graphs", s.handleSubmitGraph)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleJobResults)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancelJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", s.met.reg.Handler())
	mux.Handle("/debug/", obs.DebugMux())
	return s.instrument(mux)
}

// --- HTTP plumbing ---------------------------------------------------

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error        string `json:"error"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}

// shed writes the 429 + Retry-After response for an admission miss.
// The trace id rides the Retry-After log line (and the response header,
// via the instrument middleware), so an overload incident is
// attributable per client after the fact.
func (s *Server) shed(w http.ResponseWriter, r *http.Request, oc *OverCapacityError) {
	secs := int64(math.Ceil(oc.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprint(secs))
	s.met.sheds.With(oc.Kind).Inc()
	s.log.Warn("job_shed",
		"trace_id", traceFrom(r.Context()), "reason", oc.Kind,
		"retry_after_s", secs, "detail", oc.Reason)
	writeJSON(w, http.StatusTooManyRequests, errorBody{
		Error:        oc.Error(),
		RetryAfterMS: oc.RetryAfter.Milliseconds(),
	})
}

// --- handlers --------------------------------------------------------

func (s *Server) handleSubmitGraph(w http.ResponseWriter, r *http.Request) {
	// Graph parsing/storing is submit-side work: rate-limit it with the
	// same bucket as job submission (but it holds no job slot).
	if ok, wait := s.adm.bucket.take(); !ok {
		s.shed(w, r, &OverCapacityError{Reason: "rate limit", RetryAfter: wait, Kind: "rate_limit"})
		return
	}
	var g *mbe.Graph
	var err error
	switch {
	case r.URL.Query().Get("dataset") != "":
		g, err = mbe.Dataset(r.URL.Query().Get("dataset"))
	case r.URL.Query().Get("format") == "binary":
		g, err = mbe.ReadBinary(r.Body)
	default:
		g, err = mbe.ReadKonect(r.Body)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	id, err := s.store.SaveGraph(g)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"graph_id": id,
		"nu":       g.NU(),
		"nv":       g.NV(),
		"edges":    g.NumEdges(),
	})
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
		return
	}
	if spec.Threads == 0 {
		spec.Threads = s.cfg.DefaultThreads
	}
	if spec.Threads == 0 {
		spec.Threads = runtime.GOMAXPROCS(0)
	}
	// An unspecified algorithm follows the resolved width: serial AdaMBE
	// would silently ignore threads > 1.
	if spec.Algorithm == "" && spec.Threads > 1 {
		spec.Algorithm = "ParAdaMBE"
	}
	if err := spec.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if !s.store.HasGraph(spec.GraphID) {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown graph %q (submit it via POST /v1/graphs first)", spec.GraphID))
		return
	}

	// Result cache: a completed job with the same key serves this query
	// from its spool — no enumeration, no admission charge.
	s.cacheMu.RLock()
	hitID, hit := s.cache[spec.CacheKey()]
	s.cacheMu.RUnlock()
	if hit {
		if j := s.lookup(hitID); j != nil {
			m := j.manifest()
			s.met.cacheHits.Inc()
			s.log.Info("job_cache_hit",
				"trace_id", traceFrom(r.Context()), "job_id", m.ID, "cache_key", m.CacheKey)
			writeJSON(w, http.StatusOK, map[string]any{
				"job_id": m.ID, "state": m.State, "cache_hit": true, "result": m.Result,
			})
			return
		}
	}

	charge := spec.MaxMemoryBytes
	if charge == 0 {
		charge = s.cfg.defaultJobMem()
	}
	if err := s.adm.admit(charge); err != nil {
		var oc *OverCapacityError
		if errors.As(err, &oc) {
			s.shed(w, r, oc)
			return
		}
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	m, err := s.store.CreateJob(spec, traceFrom(r.Context()))
	if err != nil {
		s.adm.release(charge)
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	now := time.Now()
	j := &job{m: m, enqueuedAt: now, stateSince: now}
	s.jobsMu.Lock()
	s.jobs[m.ID] = j
	s.jobsMu.Unlock()
	s.met.cacheMisses.Inc()
	s.met.jobsSubmitted.Inc()
	// The admission decision is the first transition of the job's trace.
	s.log.Info("job_admitted",
		"trace_id", m.TraceID, "job_id", m.ID, "graph_id", spec.GraphID,
		"algorithm", spec.Algorithm, "threads", spec.Threads, "mem_charge", charge)
	s.queue <- j // capacity ≥ MaxJobs, admission makes this non-blocking
	writeJSON(w, http.StatusAccepted, map[string]any{"job_id": m.ID, "state": m.State})
}

func (s *Server) lookup(id string) *job {
	s.jobsMu.RLock()
	defer s.jobsMu.RUnlock()
	return s.jobs[id]
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	s.jobsMu.RLock()
	out := make([]Manifest, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.manifest())
	}
	s.jobsMu.RUnlock()
	// Stable order for humans and scripts: newest last.
	sortManifests(out)
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func sortManifests(ms []Manifest) {
	for i := 1; i < len(ms); i++ { // insertion sort; job lists are small
		for k := i; k > 0 && (ms[k].CreatedAt < ms[k-1].CreatedAt ||
			(ms[k].CreatedAt == ms[k-1].CreatedAt && ms[k].ID < ms[k-1].ID)); k-- {
			ms[k], ms[k-1] = ms[k-1], ms[k]
		}
	}
}

// jobStatus is the GET /v1/jobs/{id} body: the manifest plus, while an
// attempt is in flight, the live progress snapshot.
type jobStatus struct {
	Manifest
	Progress *obs.Snapshot `json:"progress,omitempty"`
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, jobStatus{Manifest: j.manifest(), Progress: j.snapshot()})
}

// resultRecord is one NDJSON line of GET /v1/jobs/{id}/results.
type resultRecord struct {
	L []int32 `json:"l"`
	R []int32 `json:"r"`
}

func (s *Server) handleJobResults(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	m := j.manifest()
	dir := s.store.SpoolDir(m.ID)
	partial := m.State != JobDone
	w.Header().Set("Content-Type", "application/x-ndjson")
	if partial {
		// Graceful degradation: a running (or failed) job's durable
		// prefix is still readable — flag it so clients know it is not
		// the full result set.
		w.Header().Set("X-MBE-Partial", "true")
	}
	if !spool.IsSpool(dir) { // queued: nothing durable yet
		w.WriteHeader(http.StatusOK)
		return
	}
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	lines := 0
	_, err := mbe.ReadSpool(dir, func(L, R []int32) {
		_ = enc.Encode(resultRecord{L: L, R: R})
		if lines++; lines%4096 == 0 && flusher != nil {
			flusher.Flush()
		}
	})
	if err != nil && !partial {
		// A done job must replay cleanly; a torn tail mid-stream can
		// only be signaled by cutting the response short.
		s.log.Error("result_stream_error",
			"trace_id", m.TraceID, "job_id", m.ID, "err", err)
	}
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	j.mu.Lock()
	state := j.m.State
	tid := j.m.TraceID
	if !state.Terminal() {
		j.canceled = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	j.mu.Unlock()
	if !state.Terminal() {
		s.log.Info("job_cancel_requested",
			"trace_id", tid, "job_id", j.m.ID, "state", string(state))
	}
	writeJSON(w, http.StatusOK, map[string]any{"job_id": j.m.ID, "state": state, "canceling": !state.Terminal()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	active, mem := s.adm.load()
	s.jobsMu.RLock()
	total := len(s.jobs)
	s.jobsMu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":              "ok",
		"uptime_ms":           time.Since(s.started).Milliseconds(),
		"jobs_total":          total,
		"jobs_active":         active,
		"mem_committed_bytes": mem,
	})
}
