// Package finder implements the biclique-optimization problems the paper
// lists as applications of AdaMBE (§V): maximum edge biclique, maximum
// balanced biclique, maximum vertex biclique, personalized maximum
// biclique, and size-bounded maximal biclique enumeration. All of them run
// the AdaMBE engine with branch-and-bound pruning through the core
// SkipChild/SkipSubtree hooks; the incumbent is shared across ParAdaMBE
// workers through an atomic, so pruning tightens as the search proceeds.
package finder

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// Biclique is a concrete biclique with both sides materialized, ids in the
// input graph's id space.
type Biclique struct {
	L, R []int32
}

// Edges returns |L|·|R|.
func (b Biclique) Edges() int64 { return int64(len(b.L)) * int64(len(b.R)) }

// Balance returns min(|L|, |R|).
func (b Biclique) Balance() int { return min(len(b.L), len(b.R)) }

// Vertices returns |L| + |R|.
func (b Biclique) Vertices() int { return len(b.L) + len(b.R) }

// Options configures a finder search.
type Options struct {
	// Threads > 1 uses ParAdaMBE underneath.
	Threads int
	// Tau is AdaMBE's bitmap threshold; 0 = 64.
	Tau int
	// Deadline stops the search early, returning the best incumbent found
	// (Result.TimedOut set).
	Deadline time.Time
}

// Result describes a finder search outcome.
type Result struct {
	// Found reports whether any biclique satisfied the problem (false on
	// edgeless graphs or unsatisfiable size bounds).
	Found bool
	// Best is the optimal (or best-found, if TimedOut) biclique.
	Best Biclique
	// Explored counts maximal bicliques the search actually visited.
	Explored int64
	// TimedOut reports whether the deadline cut the search short.
	TimedOut bool
}

// objective scores a biclique and bounds it from above given node sizes.
type objective struct {
	// score of a concrete biclique (lenL, lenR).
	score func(lenL, lenR int) int64
	// subtreeBound is an upper bound on the score of any biclique in the
	// subtree of a node (lenL, lenR, lenC): L can only shrink, R can only
	// grow up to lenR+lenC.
	subtreeBound func(lenL, lenR, lenC int) int64
	// childBound is an upper bound given only |L'| (and the graph-wide
	// maximum possible |R|, baked in by the caller).
	childBound func(lenL int) int64
}

// MaximumEdgeBiclique finds a biclique maximizing |L|·|R| (the maximum
// edge biclique problem, Lyu et al. PVLDB'20, via AdaMBE per §V).
func MaximumEdgeBiclique(g *graph.Bipartite, opts Options) (Result, error) {
	maxR := int64(maxDegU(g))
	return optimize(g, opts, objective{
		score:        func(l, r int) int64 { return int64(l) * int64(r) },
		subtreeBound: func(l, r, c int) int64 { return int64(l) * int64(r+c) },
		childBound:   func(l int) int64 { return int64(l) * maxR },
	})
}

// MaximumBalancedBiclique finds a biclique maximizing min(|L|, |R|); the
// optimal k×k balanced biclique is any k-subset of each side of the
// returned biclique, k = min(|L|, |R|).
func MaximumBalancedBiclique(g *graph.Bipartite, opts Options) (Result, error) {
	return optimize(g, opts, objective{
		score:        func(l, r int) int64 { return int64(min(l, r)) },
		subtreeBound: func(l, r, c int) int64 { return int64(min(l, r+c)) },
		childBound:   func(l int) int64 { return int64(l) },
	})
}

// MaximumVertexBiclique finds a biclique maximizing |L| + |R|.
func MaximumVertexBiclique(g *graph.Bipartite, opts Options) (Result, error) {
	maxR := int64(maxDegU(g))
	return optimize(g, opts, objective{
		score:        func(l, r int) int64 { return int64(l + r) },
		subtreeBound: func(l, r, c int) int64 { return int64(l + r + c) },
		childBound:   func(l int) int64 { return int64(l) + maxR },
	})
}

// PersonalizedMaximumBiclique finds the maximum edge biclique containing
// the query vertex v ∈ V (Wang et al. ICDE'22's problem, via AdaMBE on the
// query's computational subgraph: U' = N(v), V' = the two-hop neighborhood
// of v — every biclique containing v lives there).
func PersonalizedMaximumBiclique(g *graph.Bipartite, v int32, opts Options) (Result, error) {
	if v < 0 || int(v) >= g.NV() {
		return Result{}, fmt.Errorf("finder: query vertex %d out of range", v)
	}
	uKeep := g.NeighborsOfV(v)
	if len(uKeep) == 0 {
		return Result{}, nil // isolated query: no biclique contains it
	}
	// Two-hop neighborhood of v (including v itself).
	seen := map[int32]bool{}
	var vKeep []int32
	for _, u := range uKeep {
		for _, w := range g.NeighborsOfU(u) {
			if !seen[w] {
				seen[w] = true
				vKeep = append(vKeep, w)
			}
		}
	}
	ind, err := g.Induce(uKeep, vKeep)
	if err != nil {
		return Result{}, err
	}
	// Within the induced graph, v is adjacent to all of U', so v belongs
	// to the R of every maximal biclique there: the personalized maximum
	// equals the induced graph's maximum edge biclique, mapped back.
	res, err := MaximumEdgeBiclique(ind.G, opts)
	if err != nil || !res.Found {
		return res, err
	}
	for i, u := range res.Best.L {
		res.Best.L[i] = ind.UIDs[u]
	}
	for i, w := range res.Best.R {
		res.Best.R[i] = ind.VIDs[w]
	}
	return res, nil
}

// EnumerateSizeBounded reports every maximal biclique with |L| ≥ p and
// |R| ≥ q (the size-constrained enumeration used by (p,q)-biclique
// analyses), pruning subtrees that cannot satisfy the bounds. The handler
// contract matches core.Handler (slices reused; concurrent when
// Threads > 1 — core serializes user callbacks). It returns the number of
// qualifying bicliques.
func EnumerateSizeBounded(g *graph.Bipartite, p, q int, handler core.Handler, opts Options) (int64, core.Result, error) {
	if p < 1 || q < 1 {
		return 0, core.Result{}, fmt.Errorf("finder: size bounds must be ≥ 1 (got p=%d q=%d)", p, q)
	}
	var count atomic.Int64
	res, err := core.Enumerate(g, core.Options{
		Variant:  core.Ada,
		Tau:      opts.Tau,
		Threads:  opts.Threads,
		Deadline: opts.Deadline,
		SkipChild: func(lenL int) bool {
			return lenL < p
		},
		SkipSubtree: func(lenL, lenR, lenC int) bool {
			return lenR+lenC < q
		},
		OnBiclique: func(L, R []int32) {
			if len(L) >= p && len(R) >= q {
				count.Add(1)
				if handler != nil {
					handler(L, R)
				}
			}
		},
	})
	return count.Load(), res, err
}

func optimize(g *graph.Bipartite, opts Options, obj objective) (Result, error) {
	var best atomic.Int64
	var mu sync.Mutex
	var out Result
	res, err := core.Enumerate(g, core.Options{
		Variant:  core.Ada,
		Tau:      opts.Tau,
		Threads:  opts.Threads,
		Deadline: opts.Deadline,
		SkipChild: func(lenL int) bool {
			return obj.childBound(lenL) <= best.Load()
		},
		SkipSubtree: func(lenL, lenR, lenC int) bool {
			return obj.subtreeBound(lenL, lenR, lenC) <= best.Load()
		},
		OnBiclique: func(L, R []int32) {
			s := obj.score(len(L), len(R))
			if s <= best.Load() {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if s > best.Load() {
				best.Store(s)
				out.Found = true
				out.Best = Biclique{
					L: append(out.Best.L[:0], L...),
					R: append(out.Best.R[:0], R...),
				}
			}
		},
	})
	if err != nil {
		return Result{}, err
	}
	out.Explored = res.Count
	out.TimedOut = res.TimedOut
	return out, nil
}

func maxDegU(g *graph.Bipartite) int {
	m := 0
	for u := int32(0); u < int32(g.NU()); u++ {
		if d := g.DegU(u); d > m {
			m = d
		}
	}
	return m
}
