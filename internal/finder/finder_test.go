package finder

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// bruteBest computes the optimum of an objective by unpruned enumeration.
func bruteBest(t *testing.T, g *graph.Bipartite, score func(l, r int) int64) (int64, bool) {
	t.Helper()
	var best int64
	found := false
	_, err := core.Enumerate(g, core.Options{
		Variant: core.Ada,
		OnBiclique: func(L, R []int32) {
			found = true
			if s := score(len(L), len(R)); s > best {
				best = s
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return best, found
}

func randomGraph(seed int64, nu, nv, m int) *graph.Bipartite {
	return gen.Uniform(seed, nu, nv, m)
}

func checkBiclique(t *testing.T, g *graph.Bipartite, b Biclique) {
	t.Helper()
	if len(b.L) == 0 || len(b.R) == 0 {
		t.Fatal("empty side in result")
	}
	for _, u := range b.L {
		for _, v := range b.R {
			if !g.HasEdge(u, v) {
				t.Fatalf("result not a biclique: missing (%d,%d)", u, v)
			}
		}
	}
}

func TestMaximumEdgeBicliqueMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g := randomGraph(seed, 40, 15, 150)
		want, any := bruteBest(t, g, func(l, r int) int64 { return int64(l) * int64(r) })
		for _, threads := range []int{0, 3} {
			res, err := MaximumEdgeBiclique(g, Options{Threads: threads})
			if err != nil {
				t.Fatal(err)
			}
			if res.Found != any {
				t.Fatalf("seed %d: Found=%v, want %v", seed, res.Found, any)
			}
			if !any {
				continue
			}
			if got := res.Best.Edges(); got != want {
				t.Fatalf("seed %d threads %d: edges %d, want %d", seed, threads, got, want)
			}
			checkBiclique(t, g, res.Best)
		}
	}
}

func TestMaximumBalancedBicliqueMatchesBruteForce(t *testing.T) {
	for seed := int64(30); seed < 50; seed++ {
		g := randomGraph(seed, 30, 14, 160)
		want, any := bruteBest(t, g, func(l, r int) int64 { return int64(min(l, r)) })
		res, err := MaximumBalancedBiclique(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !any {
			continue
		}
		if got := int64(res.Best.Balance()); got != want {
			t.Fatalf("seed %d: balance %d, want %d", seed, got, want)
		}
		checkBiclique(t, g, res.Best)
	}
}

func TestMaximumVertexBicliqueMatchesBruteForce(t *testing.T) {
	for seed := int64(60); seed < 80; seed++ {
		g := randomGraph(seed, 35, 12, 140)
		want, any := bruteBest(t, g, func(l, r int) int64 { return int64(l + r) })
		res, err := MaximumVertexBiclique(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !any {
			continue
		}
		if got := int64(res.Best.Vertices()); got != want {
			t.Fatalf("seed %d: vertices %d, want %d", seed, got, want)
		}
		checkBiclique(t, g, res.Best)
	}
}

func TestPersonalizedMaximumBiclique(t *testing.T) {
	for seed := int64(90); seed < 105; seed++ {
		g := randomGraph(seed, 30, 10, 120)
		for v := int32(0); v < int32(g.NV()); v++ {
			// Oracle: best edge-count among maximal bicliques containing v.
			var want int64
			found := false
			_, err := core.Enumerate(g, core.Options{
				Variant: core.Ada,
				OnBiclique: func(L, R []int32) {
					has := false
					for _, x := range R {
						if x == v {
							has = true
							break
						}
					}
					if has {
						found = true
						if s := int64(len(L)) * int64(len(R)); s > want {
							want = s
						}
					}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := PersonalizedMaximumBiclique(g, v, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Found != found {
				t.Fatalf("seed %d v%d: Found=%v, want %v", seed, v, res.Found, found)
			}
			if !found {
				continue
			}
			if got := res.Best.Edges(); got != want {
				t.Fatalf("seed %d v%d: edges %d, want %d", seed, v, got, want)
			}
			checkBiclique(t, g, res.Best)
			hasQuery := false
			for _, x := range res.Best.R {
				if x == v {
					hasQuery = true
				}
			}
			if !hasQuery {
				t.Fatalf("seed %d v%d: result does not contain the query", seed, v)
			}
		}
	}
}

func TestPersonalizedEdgeCases(t *testing.T) {
	g := randomGraph(1, 10, 5, 0) // edgeless
	res, err := PersonalizedMaximumBiclique(g, 2, Options{})
	if err != nil || res.Found {
		t.Fatalf("edgeless: %v %v", res, err)
	}
	if _, err := PersonalizedMaximumBiclique(g, 99, Options{}); err == nil {
		t.Fatal("out-of-range query accepted")
	}
}

func TestEnumerateSizeBoundedMatchesFilter(t *testing.T) {
	for seed := int64(110); seed < 125; seed++ {
		g := randomGraph(seed, 35, 14, 200)
		for _, pq := range [][2]int{{1, 1}, {2, 2}, {3, 2}, {5, 3}} {
			p, q := pq[0], pq[1]
			// Oracle: unpruned enumeration + filter.
			var want int64
			if _, err := core.Enumerate(g, core.Options{
				Variant: core.Ada,
				OnBiclique: func(L, R []int32) {
					if len(L) >= p && len(R) >= q {
						want++
					}
				},
			}); err != nil {
				t.Fatal(err)
			}
			got, res, err := EnumerateSizeBounded(g, p, q, nil, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("seed %d p=%d q=%d: count %d, want %d", seed, p, q, got, want)
			}
			if res.Count < got {
				t.Fatalf("visited %d < matched %d", res.Count, got)
			}
		}
	}
}

func TestEnumerateSizeBoundedPrunes(t *testing.T) {
	// With high bounds, the pruned search must visit far fewer nodes than
	// the full enumeration.
	g := gen.Affiliation(7, gen.AffiliationConfig{
		NU: 400, NV: 150, Communities: 60, MeanU: 8, MeanV: 5, Density: 0.9, NoiseEdges: 300,
	})
	full, err := core.Enumerate(g, core.Options{Variant: core.Ada})
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := EnumerateSizeBounded(g, 10, 6, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count >= full.Count {
		t.Fatalf("size bounds did not prune: visited %d of %d", res.Count, full.Count)
	}
}

func TestEnumerateSizeBoundedRejectsBadBounds(t *testing.T) {
	g := randomGraph(1, 5, 5, 10)
	if _, _, err := EnumerateSizeBounded(g, 0, 1, nil, Options{}); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, _, err := EnumerateSizeBounded(g, 1, -1, nil, Options{}); err == nil {
		t.Fatal("q=-1 accepted")
	}
}

func TestFinderHandlerReceivesBounds(t *testing.T) {
	g := randomGraph(3, 30, 12, 150)
	n, _, err := EnumerateSizeBounded(g, 2, 2, func(L, R []int32) {
		if len(L) < 2 || len(R) < 2 {
			t.Fatalf("handler got undersized biclique %dx%d", len(L), len(R))
		}
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no 2x2 bicliques found (degenerate seed)")
	}
}

func TestFinderDeadline(t *testing.T) {
	g := gen.Affiliation(9, gen.AffiliationConfig{
		NU: 500, NV: 200, Communities: 120, MeanU: 9, MeanV: 5, Density: 0.9,
	})
	res, err := MaximumEdgeBiclique(g, Options{Deadline: time.Now().Add(-time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatal("expired deadline not reported")
	}
}

func TestFinderPruningReducesExploration(t *testing.T) {
	g := gen.Affiliation(11, gen.AffiliationConfig{
		NU: 300, NV: 120, Communities: 50, MeanU: 8, MeanV: 5, Density: 0.95,
	})
	full, err := core.Enumerate(g, core.Options{Variant: core.Ada})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MaximumEdgeBiclique(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("nothing found")
	}
	if res.Explored >= full.Count {
		t.Fatalf("branch-and-bound explored %d ≥ full %d", res.Explored, full.Count)
	}
}

func TestBicliqueAccessors(t *testing.T) {
	b := Biclique{L: []int32{1, 2, 3}, R: []int32{4, 5}}
	if b.Edges() != 6 || b.Balance() != 2 || b.Vertices() != 5 {
		t.Fatalf("accessors wrong: %d %d %d", b.Edges(), b.Balance(), b.Vertices())
	}
}

func TestInduceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(5, 25, 18, 120)
	for trial := 0; trial < 20; trial++ {
		var uk, vk []int32
		for u := int32(0); u < int32(g.NU()); u++ {
			if rng.Intn(2) == 0 {
				uk = append(uk, u)
			}
		}
		for v := int32(0); v < int32(g.NV()); v++ {
			if rng.Intn(2) == 0 {
				vk = append(vk, v)
			}
		}
		ind, err := g.Induce(uk, vk)
		if err != nil {
			t.Fatal(err)
		}
		if err := ind.G.Validate(); err != nil {
			t.Fatal(err)
		}
		// Every induced edge maps to a parent edge and vice versa.
		var count int64
		for _, e := range ind.G.Edges() {
			if !g.HasEdge(ind.UIDs[e.U], ind.VIDs[e.V]) {
				t.Fatal("phantom edge in induced graph")
			}
			count++
		}
		var want int64
		for _, u := range uk {
			for _, v := range vk {
				if g.HasEdge(u, v) {
					want++
				}
			}
		}
		if count != want {
			t.Fatalf("induced edges %d, want %d", count, want)
		}
	}
}

func TestInduceRejectsBadInput(t *testing.T) {
	g := randomGraph(2, 5, 5, 10)
	if _, err := g.Induce([]int32{0, 0}, nil); err == nil {
		t.Fatal("duplicate u accepted")
	}
	if _, err := g.Induce([]int32{99}, nil); err == nil {
		t.Fatal("out-of-range u accepted")
	}
	if _, err := g.Induce(nil, []int32{-1}); err == nil {
		t.Fatal("negative v accepted")
	}
	if _, err := g.Induce(nil, []int32{0, 0}); err == nil {
		t.Fatal("duplicate v accepted")
	}
}
