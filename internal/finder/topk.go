package finder

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
)

// TopKEdgeBicliques returns the k maximal bicliques with the largest
// |L|·|R|, descending (ties in arbitrary order), using the AdaMBE engine
// with a branch-and-bound cutoff at the current k-th best score — the
// "top-k diversified biclique search" regime of Lyu et al. (VLDB J. '22)
// restricted to plain top-k.
func TopKEdgeBicliques(g *graph.Bipartite, k int, opts Options) ([]Biclique, core.Result, error) {
	if k < 1 {
		return nil, core.Result{}, fmt.Errorf("finder: k must be ≥ 1 (got %d)", k)
	}
	var (
		mu sync.Mutex
		h  scoreHeap
	)
	// kthBest is safe to read racily for pruning: it only grows, and a
	// stale (smaller) value merely prunes less.
	kthBest := func() int64 {
		mu.Lock()
		defer mu.Unlock()
		if len(h) < k {
			return 0
		}
		return h[0].score
	}
	maxR := int64(maxDegU(g))
	res, err := core.Enumerate(g, core.Options{
		Variant:  core.Ada,
		Tau:      opts.Tau,
		Threads:  opts.Threads,
		Deadline: opts.Deadline,
		SkipChild: func(lenL int) bool {
			return int64(lenL)*maxR <= kthBest()
		},
		SkipSubtree: func(lenL, lenR, lenC int) bool {
			return int64(lenL)*int64(lenR+lenC) <= kthBest()
		},
		OnBiclique: func(L, R []int32) {
			s := int64(len(L)) * int64(len(R))
			mu.Lock()
			defer mu.Unlock()
			if len(h) < k {
				heap.Push(&h, scored{score: s, b: Biclique{
					L: append([]int32(nil), L...),
					R: append([]int32(nil), R...),
				}})
				return
			}
			if s > h[0].score {
				h[0] = scored{score: s, b: Biclique{
					L: append([]int32(nil), L...),
					R: append([]int32(nil), R...),
				}}
				heap.Fix(&h, 0)
			}
		},
	})
	if err != nil {
		return nil, core.Result{}, err
	}
	out := make([]Biclique, len(h))
	for i, s := range h {
		out[i] = s.b
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Edges() > out[j].Edges() })
	return out, res, nil
}

type scored struct {
	score int64
	b     Biclique
}

// scoreHeap is a min-heap on score (root = k-th best).
type scoreHeap []scored

func (h scoreHeap) Len() int            { return len(h) }
func (h scoreHeap) Less(i, j int) bool  { return h[i].score < h[j].score }
func (h scoreHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *scoreHeap) Push(x interface{}) { *h = append(*h, x.(scored)) }
func (h *scoreHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
