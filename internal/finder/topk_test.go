package finder

import (
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

func TestTopKMatchesFullEnumeration(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g := gen.Uniform(seed, 40, 16, 220)
		// Oracle: all maximal biclique scores, descending.
		var scores []int64
		if _, err := core.Enumerate(g, core.Options{
			Variant: core.Ada,
			OnBiclique: func(L, R []int32) {
				scores = append(scores, int64(len(L))*int64(len(R)))
			},
		}); err != nil {
			t.Fatal(err)
		}
		sort.Slice(scores, func(i, j int) bool { return scores[i] > scores[j] })
		for _, k := range []int{1, 3, 10, len(scores) + 5} {
			got, _, err := TopKEdgeBicliques(g, k, Options{})
			if err != nil {
				t.Fatal(err)
			}
			wantLen := min(k, len(scores))
			if len(got) != wantLen {
				t.Fatalf("seed %d k=%d: returned %d, want %d", seed, k, len(got), wantLen)
			}
			for i, b := range got {
				if b.Edges() != scores[i] {
					t.Fatalf("seed %d k=%d: rank %d score %d, want %d",
						seed, k, i, b.Edges(), scores[i])
				}
				// Returned bicliques must be genuine.
				for _, u := range b.L {
					for _, v := range b.R {
						if !g.HasEdge(u, v) {
							t.Fatalf("seed %d: top-k result not a biclique", seed)
						}
					}
				}
			}
		}
	}
}

func TestTopKParallelAgrees(t *testing.T) {
	g := gen.Affiliation(4, gen.AffiliationConfig{
		NU: 400, NV: 160, Communities: 60, MeanU: 8, MeanV: 5, Density: 0.9, NoiseEdges: 400,
	})
	serial, _, err := TopKEdgeBicliques(g, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := TopKEdgeBicliques(g, 5, Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) {
		t.Fatalf("lengths differ: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i].Edges() != par[i].Edges() {
			t.Fatalf("rank %d: serial %d, parallel %d", i, serial[i].Edges(), par[i].Edges())
		}
	}
}

func TestTopKRejectsBadK(t *testing.T) {
	g := gen.Uniform(1, 5, 5, 10)
	if _, _, err := TopKEdgeBicliques(g, 0, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestTopKEmptyGraph(t *testing.T) {
	g := gen.Uniform(1, 5, 5, 0)
	got, _, err := TopKEdgeBicliques(g, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("edgeless graph returned %d bicliques", len(got))
	}
}

func TestTopKPrunes(t *testing.T) {
	g := gen.Affiliation(8, gen.AffiliationConfig{
		NU: 500, NV: 200, Communities: 90, MeanU: 9, MeanV: 5, Density: 0.9,
	})
	full, err := core.Enumerate(g, core.Options{Variant: core.Ada})
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := TopKEdgeBicliques(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count >= full.Count {
		t.Fatalf("top-1 search explored %d ≥ full %d", res.Count, full.Count)
	}
}
