package finder

import (
	"math"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

// brutePQ counts (p,q)-bicliques by exhaustive subset enumeration.
func brutePQ(t *testing.T, g *graph.Bipartite, p, q int) int64 {
	t.Helper()
	nu, nv := g.NU(), g.NV()
	if nu > 20 || nv > 20 {
		t.Fatal("graph too large for brute force")
	}
	var count int64
	var us, vs []int32
	var recU func(start int32)
	var recV func(start int32)
	complete := func() bool {
		for _, u := range us {
			for _, v := range vs {
				if !g.HasEdge(u, v) {
					return false
				}
			}
		}
		return true
	}
	recV = func(start int32) {
		if len(vs) == q {
			if complete() {
				count++
			}
			return
		}
		for v := start; v < int32(nv); v++ {
			vs = append(vs, v)
			recV(v + 1)
			vs = vs[:len(vs)-1]
		}
	}
	recU = func(start int32) {
		if len(us) == p {
			recV(0)
			return
		}
		for u := start; u < int32(nu); u++ {
			us = append(us, u)
			recU(u + 1)
			us = us[:len(us)-1]
		}
	}
	recU(0)
	return count
}

func TestCountPQMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		g := gen.Uniform(seed, 14, 10, 60)
		for _, pq := range [][2]int{{1, 1}, {2, 2}, {3, 2}, {2, 3}, {4, 1}, {1, 4}} {
			p, q := pq[0], pq[1]
			want := brutePQ(t, g, p, q)
			got, tle, err := CountPQBicliques(g, p, q, time.Time{})
			if err != nil || tle {
				t.Fatalf("seed %d (%d,%d): err=%v tle=%v", seed, p, q, err, tle)
			}
			if got != want {
				t.Fatalf("seed %d (%d,%d): count %d, want %d", seed, p, q, got, want)
			}
		}
	}
}

func TestCountPQKnownValues(t *testing.T) {
	// Complete bipartite K(4,3): number of (p,q)-bicliques = C(4,p)*C(3,q).
	rows := make([][]int32, 3)
	for v := range rows {
		rows[v] = []int32{0, 1, 2, 3}
	}
	g, err := graph.FromAdjacency(4, rows)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[[2]int]int64{
		{1, 1}: 12, {2, 2}: 18, {4, 3}: 1, {2, 1}: 18, {3, 3}: 4,
	}
	for pq, want := range cases {
		got, _, err := CountPQBicliques(g, pq[0], pq[1], time.Time{})
		if err != nil || got != want {
			t.Fatalf("K(4,3) (%d,%d): got %d, want %d (%v)", pq[0], pq[1], got, want, err)
		}
	}
	// (1,1)-bicliques are exactly the edges of any graph.
	g2 := gen.Uniform(3, 50, 30, 400)
	got, _, err := CountPQBicliques(g2, 1, 1, time.Time{})
	if err != nil || got != g2.NumEdges() {
		t.Fatalf("(1,1) count %d != |E| %d", got, g2.NumEdges())
	}
}

func TestCountPQValidationAndDeadline(t *testing.T) {
	g := gen.Uniform(1, 10, 10, 40)
	if _, _, err := CountPQBicliques(g, 0, 1, time.Time{}); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, _, err := CountPQBicliques(g, 1, -2, time.Time{}); err == nil {
		t.Fatal("q=-2 accepted")
	}
	big := gen.Affiliation(5, gen.AffiliationConfig{
		NU: 2000, NV: 900, Communities: 300, MeanU: 12, MeanV: 6, Density: 0.9,
	})
	_, tle, err := CountPQBicliques(big, 2, 3, time.Now().Add(-time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !tle {
		t.Fatal("expired deadline not reported")
	}
}

func TestBinomial(t *testing.T) {
	cases := map[[2]int]int64{
		{0, 0}: 1, {5, 0}: 1, {5, 5}: 1, {5, 2}: 10, {10, 3}: 120,
		{4, 5}: 0, {3, -1}: 0, {64, 32}: 1832624140942590534,
	}
	for nk, want := range cases {
		if got := binomial(nk[0], nk[1]); got != want {
			t.Fatalf("C(%d,%d) = %d, want %d", nk[0], nk[1], got, want)
		}
	}
	if binomial(200, 100) != math.MaxInt64 {
		t.Fatal("overflow did not saturate")
	}
}
