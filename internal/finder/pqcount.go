package finder

import (
	"fmt"
	"math"
	"math/big"
	"time"

	"repro/internal/graph"
	"repro/internal/tle"
	"repro/internal/vset"
)

// CountPQBicliques counts every (p,q)-biclique of g: complete bipartite
// subgraphs with exactly p U-side and q V-side vertices, maximal or not —
// the counting problem of Yang et al. (PVLDB'21), which the paper's §V
// lists among the neighborhoods AdaMBE's techniques transfer to. The
// count is exact.
//
// Method: depth-first enumeration of q-subsets of V in ascending id order,
// carrying the running common neighborhood Γ (local neighborhoods shrink
// down the tree exactly like AdaMBE's computational subgraphs); each
// completed q-subset contributes C(|Γ|, p). Subtrees with |Γ| < p are
// pruned. Complexity is output-sensitive in the number of q-subsets with
// ≥ p common neighbors; intended for small q (≤ ~5) as in the cited work.
//
// The result saturates at math.MaxInt64 on overflow. A zero deadline
// disables the time limit; on expiry the partial count and timedOut=true
// return.
func CountPQBicliques(g *graph.Bipartite, p, q int, deadline time.Time) (count int64, timedOut bool, err error) {
	if p < 1 || q < 1 {
		return 0, false, fmt.Errorf("finder: p and q must be ≥ 1 (got p=%d q=%d)", p, q)
	}
	e := &pqCounter{g: g, p: p, q: q, dl: tle.New(deadline)}
	nv := int32(g.NV())
	for v := int32(0); v < nv; v++ {
		if e.timedOut {
			break
		}
		nb := g.NeighborsOfV(v)
		if len(nb) < p {
			continue
		}
		e.rec(v+1, 1, nb)
	}
	return e.count, e.timedOut, nil
}

type pqCounter struct {
	g        *graph.Bipartite
	p, q     int
	dl       tle.Deadline
	count    int64
	timedOut bool
	ids      vset.Slab[int32]
}

func (e *pqCounter) rec(start int32, depth int, common []int32) {
	if depth == e.q {
		e.add(binomial(len(common), e.p))
		return
	}
	if e.dl.Hit() {
		e.timedOut = true
		return
	}
	nv := int32(e.g.NV())
	for v := start; v < nv; v++ {
		if e.timedOut {
			return
		}
		nb := e.g.NeighborsOfV(v)
		if len(nb) < e.p {
			continue
		}
		mark := e.ids.Mark()
		buf := e.ids.Alloc(min(len(common), len(nb)))
		m := vset.IntersectInto(buf, common, nb)
		if m >= e.p {
			e.rec(v+1, depth+1, buf[:m])
		}
		e.ids.Release(mark)
	}
}

func (e *pqCounter) add(n int64) {
	if n < 0 || e.count > math.MaxInt64-n {
		e.count = math.MaxInt64
		return
	}
	e.count += n
}

// binomial returns C(n, k), saturating at MaxInt64. Exact up to the
// saturation point (computed in big integers, so intermediate products
// cannot overflow early).
func binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	result := new(big.Int).Binomial(int64(n), int64(k))
	if !result.IsInt64() {
		return math.MaxInt64
	}
	return result.Int64()
}
