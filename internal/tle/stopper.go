package tle

import (
	"context"
	"sync/atomic"
	"time"
)

// Reason says why an enumeration run stopped before completing the search
// tree. The zero value None means the run is still going (or finished).
type Reason uint8

const (
	// None: not stopped.
	None Reason = iota
	// DeadlineExceeded: the wall-clock budget ran out (the paper's TLE).
	DeadlineExceeded
	// Canceled: the run's context was canceled.
	Canceled
	// MemoryExceeded: the soft memory budget was exceeded by engine-side
	// allocation accounting.
	MemoryExceeded
	// Aborted: a sibling worker failed (panic isolation): every other
	// worker of the run winds down and returns partial results.
	Aborted
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case None:
		return "none"
	case DeadlineExceeded:
		return "deadline"
	case Canceled:
		return "canceled"
	case MemoryExceeded:
		return "memory-budget"
	case Aborted:
		return "aborted"
	default:
		return "unknown"
	}
}

// Shared is the per-run state every worker's Stopper observes: a sticky
// first-stop reason and the run-wide memory gauge. One Shared is created
// per enumeration run and handed to every worker; the zero value is ready
// to use.
type Shared struct {
	reason atomic.Uint32
	mem    atomic.Int64
}

// Trip publishes r as the run's stop reason; the first reason wins.
func (s *Shared) Trip(r Reason) {
	if r != None {
		s.reason.CompareAndSwap(uint32(None), uint32(r))
	}
}

// Reason returns the published stop reason (None while running).
func (s *Shared) Reason() Reason { return Reason(s.reason.Load()) }

// AddMem adjusts the run's tracked memory gauge by delta bytes. Negative
// deltas release a prior charge — queued parallel tasks charge their
// footprint at spawn and release it at completion — so the gauge tracks
// live engine-side memory, not cumulative allocation traffic.
func (s *Shared) AddMem(delta int64) { s.mem.Add(delta) }

// MemBytes returns the current tracked memory usage of the run.
func (s *Shared) MemBytes() int64 { return s.mem.Load() }

// Config bundles the stop conditions of one run. All fields are optional:
// the zero Config never stops.
type Config struct {
	// Deadline, if non-zero, stops the run once the instant passes.
	Deadline time.Time
	// Context, if non-nil, stops the run when it is canceled.
	Context context.Context
	// MaxMemoryBytes, if positive, stops the run once the Shared memory
	// gauge exceeds it.
	MaxMemoryBytes int64
}

// Stopper folds deadline, context cancellation, the soft memory budget and
// sibling-worker aborts into the same amortized Hit check Deadline
// provides: engines call Hit on every node and the (comparatively
// expensive) clock/channel/atomic polls run once per CheckEvery calls.
// A Stopper belongs to one worker goroutine; workers of the same run share
// a *Shared so the first stop observed by any of them reaches all.
type Stopper struct {
	shared *Shared
	done   <-chan struct{}
	at     time.Time
	budget int64
	timed  bool
	armed  bool
	hits   int
	reason Reason
}

// NewStopper builds a worker Stopper. shared may be nil for a standalone
// serial run with no memory budget; cfg's zero value disables every check.
func NewStopper(shared *Shared, cfg Config) Stopper {
	s := Stopper{
		shared: shared,
		at:     cfg.Deadline,
		budget: cfg.MaxMemoryBytes,
		timed:  !cfg.Deadline.IsZero(),
		// As with Deadline, start one short of the threshold so the very
		// first Hit polls: an already-expired deadline or already-canceled
		// context stops the run before any work happens.
		hits: CheckEvery - 1,
	}
	if cfg.Context != nil {
		s.done = cfg.Context.Done()
	}
	s.armed = s.timed || s.done != nil || s.budget > 0 || shared != nil
	return s
}

// Hit reports whether the run must stop, polling the stop conditions
// lazily. Once it returns true it keeps returning true.
func (s *Stopper) Hit() bool {
	if s.reason != None {
		return true
	}
	if !s.armed {
		return false
	}
	s.hits++
	if s.hits < CheckEvery {
		return false
	}
	s.hits = 0
	return s.poll()
}

func (s *Stopper) poll() bool {
	if s.shared != nil {
		if r := s.shared.Reason(); r != None {
			s.reason = r
			return true
		}
	}
	if s.done != nil {
		select {
		case <-s.done:
			s.fail(Canceled)
			return true
		default:
		}
	}
	if s.timed && time.Now().After(s.at) {
		s.fail(DeadlineExceeded)
		return true
	}
	if s.budget > 0 && s.shared != nil && s.shared.MemBytes() > s.budget {
		s.fail(MemoryExceeded)
		return true
	}
	return false
}

// Poll forces an immediate check of the stop conditions, bypassing the
// amortization. Engines call it at coarse boundaries — parallel task
// starts — where a few extra clock/channel reads are negligible and
// promptness matters: cancellation latency becomes one task instead of one
// CheckEvery quantum per worker.
func (s *Stopper) Poll() bool {
	if s.reason != None {
		return true
	}
	if !s.armed {
		return false
	}
	s.hits = 0
	return s.poll()
}

// fail records r locally and publishes it to the run.
func (s *Stopper) fail(r Reason) {
	s.reason = r
	if s.shared != nil {
		s.shared.Trip(r)
	}
}

// Fail force-stops the worker outside the Hit cadence (simulated
// allocation failure, fault injection).
func (s *Stopper) Fail(r Reason) { s.fail(r) }

// Stopped reports whether a previous Hit (or Fail) stopped the worker.
func (s *Stopper) Stopped() bool { return s.reason != None }

// Reason returns the worker's local stop reason (None while running).
func (s *Stopper) Reason() Reason { return s.reason }

// AddMem charges delta bytes of engine-side allocation to the run's gauge
// (negative deltas release a prior charge). When a budget is armed, the
// next Hit polls immediately so a blown budget is observed promptly rather
// than CheckEvery nodes later.
func (s *Stopper) AddMem(delta int64) {
	if s.shared == nil {
		return
	}
	s.shared.AddMem(delta)
	if s.budget > 0 {
		s.hits = CheckEvery - 1
	}
}
