package tle

import (
	"testing"
	"time"
)

func TestZeroDeadlineNeverHits(t *testing.T) {
	var d Deadline
	for i := 0; i < 3*CheckEvery; i++ {
		if d.Hit() {
			t.Fatal("zero deadline hit")
		}
	}
	if d.Expired() {
		t.Fatal("zero deadline expired")
	}
}

func TestExpiredDeadlineHitsOnFirstCall(t *testing.T) {
	d := New(time.Now().Add(-time.Second))
	if !d.Hit() {
		t.Fatal("expired deadline not hit on first call")
	}
	if !d.Expired() {
		t.Fatal("Expired() false after hit")
	}
	// Stays expired.
	if !d.Hit() {
		t.Fatal("expired deadline recovered")
	}
}

func TestFutureDeadlineDoesNotHit(t *testing.T) {
	d := New(time.Now().Add(time.Hour))
	for i := 0; i < 3*CheckEvery; i++ {
		if d.Hit() {
			t.Fatal("future deadline hit")
		}
	}
}

func TestDeadlineEventuallyHits(t *testing.T) {
	d := New(time.Now().Add(20 * time.Millisecond))
	deadline := time.Now().Add(5 * time.Second)
	for !d.Hit() {
		if time.Now().After(deadline) {
			t.Fatal("deadline never hit")
		}
	}
}

func TestAmortizedPolling(t *testing.T) {
	// After the first poll, the clock is consulted only every CheckEvery
	// hits; between polls Hit must be false even if the wall clock passes
	// the deadline. This test just verifies the counter cadence: a fresh
	// non-expired deadline polls on call 1, then not until CheckEvery more.
	d := New(time.Now().Add(50 * time.Millisecond))
	if d.Hit() {
		t.Fatal("hit immediately")
	}
	time.Sleep(60 * time.Millisecond)
	// The deadline has passed, but the next poll happens only after
	// CheckEvery-1 more hits.
	for i := 0; i < CheckEvery-1; i++ {
		if d.Hit() {
			t.Fatalf("polled too early at hit %d", i)
		}
	}
	if !d.Hit() {
		t.Fatal("poll did not happen at the CheckEvery boundary")
	}
}
