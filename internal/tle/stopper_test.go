package tle

import (
	"context"
	"testing"
	"time"
)

func TestStopperZeroConfigNeverStops(t *testing.T) {
	s := NewStopper(nil, Config{})
	for i := 0; i < 3*CheckEvery; i++ {
		if s.Hit() {
			t.Fatalf("unarmed stopper stopped at hit %d", i)
		}
	}
	if s.Stopped() || s.Reason() != None {
		t.Fatalf("unarmed stopper: Stopped=%v Reason=%v", s.Stopped(), s.Reason())
	}
}

func TestStopperPreExpiredDeadlineStopsOnFirstHit(t *testing.T) {
	s := NewStopper(nil, Config{Deadline: time.Now().Add(-time.Hour)})
	if !s.Hit() {
		t.Fatal("first Hit did not observe the expired deadline")
	}
	if s.Reason() != DeadlineExceeded {
		t.Fatalf("Reason = %v, want DeadlineExceeded", s.Reason())
	}
	if !s.Hit() || !s.Stopped() {
		t.Fatal("stop must be sticky")
	}
}

func TestStopperPreCanceledContextStopsOnFirstHit(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	shared := &Shared{}
	s := NewStopper(shared, Config{Context: ctx})
	if !s.Hit() {
		t.Fatal("first Hit did not observe the canceled context")
	}
	if s.Reason() != Canceled {
		t.Fatalf("Reason = %v, want Canceled", s.Reason())
	}
	if shared.Reason() != Canceled {
		t.Fatalf("shared.Reason = %v, want Canceled (fail must publish)", shared.Reason())
	}
}

func TestStopperContextCancelObservedWithinOneQuantum(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := NewStopper(nil, Config{Context: ctx})
	if s.Hit() { // first poll: context live
		t.Fatal("stopped before cancel")
	}
	cancel()
	stopped := false
	for i := 0; i < CheckEvery; i++ {
		if s.Hit() {
			stopped = true
			break
		}
	}
	if !stopped {
		t.Fatal("cancel not observed within CheckEvery hits")
	}
	if s.Reason() != Canceled {
		t.Fatalf("Reason = %v, want Canceled", s.Reason())
	}
}

func TestStopperMemoryBudget(t *testing.T) {
	shared := &Shared{}
	s := NewStopper(shared, Config{MaxMemoryBytes: 1000})
	if s.Hit() {
		t.Fatal("stopped under budget")
	}
	s.AddMem(500)
	if s.Hit() {
		t.Fatal("stopped at 500 of 1000 bytes")
	}
	// AddMem beyond the budget forces the next Hit to poll immediately.
	s.AddMem(501)
	if !s.Hit() {
		t.Fatal("Hit after blowing the budget did not stop")
	}
	if s.Reason() != MemoryExceeded {
		t.Fatalf("Reason = %v, want MemoryExceeded", s.Reason())
	}
	if shared.MemBytes() != 1001 {
		t.Fatalf("MemBytes = %d, want 1001", shared.MemBytes())
	}
}

func TestSharedTripFirstReasonWins(t *testing.T) {
	var sh Shared
	sh.Trip(None) // no-op
	if sh.Reason() != None {
		t.Fatal("Trip(None) published a reason")
	}
	sh.Trip(DeadlineExceeded)
	sh.Trip(Aborted)
	if sh.Reason() != DeadlineExceeded {
		t.Fatalf("Reason = %v, want first-wins DeadlineExceeded", sh.Reason())
	}
}

func TestStopperObservesSiblingTrip(t *testing.T) {
	shared := &Shared{}
	a := NewStopper(shared, Config{})
	b := NewStopper(shared, Config{})
	a.Fail(Aborted) // e.g. a's task panicked
	if !b.Hit() {
		t.Fatal("sibling stopper did not observe the trip on first Hit")
	}
	if b.Reason() != Aborted {
		t.Fatalf("sibling Reason = %v, want Aborted", b.Reason())
	}
}

func TestStopperFailIsSticky(t *testing.T) {
	s := NewStopper(nil, Config{})
	s.Fail(MemoryExceeded)
	if !s.Stopped() || !s.Hit() || s.Reason() != MemoryExceeded {
		t.Fatalf("Fail not sticky: Stopped=%v Reason=%v", s.Stopped(), s.Reason())
	}
}

func TestPollBypassesAmortization(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := NewStopper(nil, Config{Context: ctx})
	if s.Hit() { // consumes the initial immediate poll
		t.Fatal("stopped before cancel")
	}
	cancel()
	// A plain Hit here would wait out the quantum; Poll must not.
	if !s.Poll() {
		t.Fatal("Poll did not observe the canceled context")
	}
	if s.Reason() != Canceled {
		t.Fatalf("Reason = %v, want Canceled", s.Reason())
	}
	if !s.Poll() {
		t.Fatal("Poll must stay stopped")
	}
	unarmed := NewStopper(nil, Config{})
	if unarmed.Poll() {
		t.Fatal("unarmed Poll stopped")
	}
}

func TestReasonStrings(t *testing.T) {
	want := map[Reason]string{
		None: "none", DeadlineExceeded: "deadline", Canceled: "canceled",
		MemoryExceeded: "memory-budget", Aborted: "aborted", Reason(99): "unknown",
	}
	for r, s := range want {
		if r.String() != s {
			t.Fatalf("Reason(%d).String() = %q, want %q", r, r.String(), s)
		}
	}
}
