// Package tle implements amortized wall-clock budget checks ("Time Limit
// Exceeded" in the paper's protocol, §IV-A): enumeration engines call Hit
// on every node and the clock is polled only once per CheckEvery calls.
package tle

import "time"

// CheckEvery is how many Hit calls elapse between clock polls.
const CheckEvery = 4096

// Deadline tracks an optional wall-clock budget. The zero value is a
// disabled deadline; construct with New.
type Deadline struct {
	at      time.Time
	enabled bool
	hits    int
	expired bool
}

// New returns a Deadline for the given instant; a zero instant disables it.
func New(at time.Time) Deadline {
	// hits starts one short of the threshold so the very first Hit polls
	// the clock; an already-expired deadline then stops the run at once.
	return Deadline{at: at, enabled: !at.IsZero(), hits: CheckEvery - 1}
}

// Hit reports whether the budget is exhausted, polling the clock lazily.
func (d *Deadline) Hit() bool {
	if !d.enabled {
		return false
	}
	if d.expired {
		return true
	}
	d.hits++
	if d.hits >= CheckEvery {
		d.hits = 0
		if time.Now().After(d.at) {
			d.expired = true
		}
	}
	return d.expired
}

// Expired reports whether a previous Hit observed an exceeded budget.
func (d *Deadline) Expired() bool { return d.expired }
