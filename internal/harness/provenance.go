package harness

import (
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// Provenance pins the environment a benchmark trajectory was measured in,
// so a diff of BENCH_parallel.json is attributable: same machine and
// toolchain, or not.
type Provenance struct {
	// GitCommit is the VCS revision the binary was built from ("+dirty"
	// when the working tree had local modifications). Empty when neither
	// build info nor a git checkout is available.
	GitCommit string `json:"git_commit,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Hostname names the measuring machine.
	Hostname string `json:"hostname,omitempty"`
	// TimestampUTC is the measurement time, RFC3339 in UTC.
	TimestampUTC string `json:"timestamp_utc"`
	// GoMaxProcs and NumCPU pin the parallelism the measurements ran
	// under: a trajectory recorded at GOMAXPROCS=1 cannot see scaling,
	// and comparing wall times across core counts is meaningless.
	GoMaxProcs int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
}

// CollectProvenance gathers the run environment. The commit comes from the
// binary's embedded VCS stamp when present (`go build` of a checkout embeds
// it); `go run` and test binaries fall back to asking git directly.
func CollectProvenance() Provenance {
	p := Provenance{
		GoVersion:    runtime.Version(),
		TimestampUTC: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
	}
	if host, err := os.Hostname(); err == nil {
		p.Hostname = host
	}
	p.GitCommit = vcsRevision()
	return p
}

func vcsRevision() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		var rev, dirty string
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "+dirty"
				}
			}
		}
		if rev != "" {
			return rev + dirty
		}
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	rev := strings.TrimSpace(string(out))
	if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(st) > 0 {
		rev += "+dirty"
	}
	return rev
}
