package harness

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"repro/internal/svgplot"
)

// RenderPlots reads the CSV series a previous experiment run wrote into
// dir and renders one SVG per figure (the original artifact's fig/
// directory). It returns the paths written; CSVs that are absent are
// skipped silently, malformed ones abort.
func RenderPlots(dir string) ([]string, error) {
	var written []string
	render := func(name string, fn func(rows [][]string, w *os.File) error) error {
		rows, err := readCSV(filepath.Join(dir, name+".csv"))
		if os.IsNotExist(err) {
			return nil
		}
		if err != nil {
			return err
		}
		out := filepath.Join(dir, name+".svg")
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := fn(rows, f); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		written = append(written, out)
		return nil
	}
	renderers := []struct {
		name string
		fn   func(rows [][]string, w *os.File) error
	}{
		{"fig4", plotFig4},
		{"fig5", plotFig5},
		{"fig8", plotFig8},
		{"fig9", plotFig9},
		{"fig10", plotFig10},
		{"fig11", plotFig11},
		{"fig12", plotFig12},
		{"fig13", plotFig13},
		{"fig14", plotFig14},
	}
	for _, r := range renderers {
		if err := render(r.name, r.fn); err != nil {
			return written, err
		}
	}
	return written, nil
}

func readCSV(path string) ([][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rows) < 1 {
		return nil, fmt.Errorf("%s: empty CSV", path)
	}
	return rows, nil
}

// col returns a column index by header name.
func col(rows [][]string, name string) (int, error) {
	for i, h := range rows[0] {
		if h == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("column %q not found in %v", name, rows[0])
}

func f64(s string) float64 {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0
	}
	return v
}

// pivot organizes rows into series keyed by seriesCol over the ordered
// distinct values of catCol, with valueCol as Y (TLE rows become 0 so the
// charts draw the missing-value marker).
func pivot(rows [][]string, catCol, seriesCol, valueCol string) (cats []string, series []svgplot.Series, err error) {
	ci, err := col(rows, catCol)
	if err != nil {
		return nil, nil, err
	}
	si, err := col(rows, seriesCol)
	if err != nil {
		return nil, nil, err
	}
	vi, err := col(rows, valueCol)
	if err != nil {
		return nil, nil, err
	}
	tleIdx := -1
	if ti, err := col(rows, "timed_out"); err == nil {
		tleIdx = ti
	}
	catIdx := map[string]int{}
	serIdx := map[string]int{}
	for _, r := range rows[1:] {
		if _, ok := catIdx[r[ci]]; !ok {
			catIdx[r[ci]] = len(cats)
			cats = append(cats, r[ci])
		}
		if _, ok := serIdx[r[si]]; !ok {
			serIdx[r[si]] = len(series)
			series = append(series, svgplot.Series{Name: r[si]})
		}
	}
	for i := range series {
		series[i].Values = make([]float64, len(cats))
	}
	for _, r := range rows[1:] {
		v := f64(r[vi])
		if tleIdx >= 0 && r[tleIdx] == "true" {
			v = 0 // draw as missing/TLE
		}
		series[serIdx[r[si]]].Values[catIdx[r[ci]]] = v
	}
	return cats, series, nil
}

func plotFig4(rows [][]string, w *os.File) error {
	li, err := col(rows, "log2_L_bucket")
	if err != nil {
		return err
	}
	ci, err := col(rows, "log2_C_bucket")
	if err != nil {
		return err
	}
	vi, err := col(rows, "share_pct")
	if err != nil {
		return err
	}
	const n = 8
	cells := make([][]float64, n)
	for i := range cells {
		cells[i] = make([]float64, n)
	}
	for _, r := range rows[1:] {
		i, j := int(f64(r[li])), int(f64(r[ci]))
		if i < n && j < n {
			cells[i][j] = f64(r[vi])
		}
	}
	labels := make([]string, n)
	for i := range labels {
		labels[i] = strconv.Itoa(1 << i)
	}
	return svgplot.Heatmap(w, "Fig. 4 — CG size distribution (% of nodes)",
		"|C| bucket (≥)", "|L| bucket (≥)", labels, labels, cells)
}

func plotFig5(rows [][]string, w *os.File) error {
	cats, _, err := pivot(rows, "dataset", "dataset", "inside_pct")
	if err != nil {
		return err
	}
	ii, err := col(rows, "inside_pct")
	if err != nil {
		return err
	}
	oi, err := col(rows, "outside_pct")
	if err != nil {
		return err
	}
	inside := svgplot.Series{Name: "inside CG"}
	outside := svgplot.Series{Name: "outside CG"}
	for _, r := range rows[1:] {
		inside.Values = append(inside.Values, f64(r[ii]))
		outside.Values = append(outside.Values, f64(r[oi]))
	}
	return svgplot.StackedPercent(w, "Fig. 5 — vertex accesses inside/outside CGs (Baseline)",
		"% of accesses", cats, []svgplot.Series{inside, outside})
}

func plotFig8(rows [][]string, w *os.File) error {
	cats, series, err := pivot(rows, "dataset", "algorithm", "seconds")
	if err != nil {
		return err
	}
	return svgplot.GroupedBars(w, "Fig. 8a — runtime (× = TLE)", "seconds", cats, series, true)
}

func plotFig9(rows [][]string, w *os.File) error {
	cats, series, err := pivot(rows, "dataset", "algorithm", "count")
	if err != nil {
		return err
	}
	return svgplot.GroupedBars(w, "Fig. 9 — maximal bicliques enumerated within TLE",
		"bicliques", cats, series, true)
}

func plotFig10(rows [][]string, w *os.File) error {
	cats, series, err := pivot(rows, "dataset", "variant", "seconds")
	if err != nil {
		return err
	}
	return svgplot.GroupedBars(w, "Fig. 10a — breakdown: runtime", "seconds", cats, series, true)
}

func plotFig11(rows [][]string, w *os.File) error {
	di, err := col(rows, "dataset")
	if err != nil {
		return err
	}
	ti, err := col(rows, "tau")
	if err != nil {
		return err
	}
	pi, err := col(rows, "padded_seconds")
	if err != nil {
		return err
	}
	ai, err := col(rows, "adaptive_seconds")
	if err != nil {
		return err
	}
	taus := map[float64]bool{}
	type key struct{ ds, mode string }
	vals := map[key]map[float64]float64{}
	for _, r := range rows[1:] {
		tau := f64(r[ti])
		taus[tau] = true
		for _, m := range []struct {
			mode string
			v    float64
		}{{"padded", f64(r[pi])}, {"adaptive", f64(r[ai])}} {
			k := key{r[di], m.mode}
			if vals[k] == nil {
				vals[k] = map[float64]float64{}
			}
			vals[k][tau] = m.v
		}
	}
	var xs []float64
	for tv := range taus {
		xs = append(xs, tv)
	}
	sort.Float64s(xs)
	var series []svgplot.Series
	var keys []key
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].ds != keys[j].ds {
			return keys[i].ds < keys[j].ds
		}
		return keys[i].mode < keys[j].mode
	})
	for _, k := range keys {
		s := svgplot.Series{Name: k.ds + "/" + k.mode}
		for _, x := range xs {
			s.Values = append(s.Values, vals[k][x])
		}
		series = append(series, s)
	}
	return svgplot.Lines(w, "Fig. 11 — impact of threshold τ", "τ", "seconds", xs, series, true, true)
}

func plotFig12(rows [][]string, w *os.File) error {
	cats, series, err := pivot(rows, "dataset", "ordering", "seconds")
	if err != nil {
		return err
	}
	return svgplot.GroupedBars(w, "Fig. 12 — impact of vertex ordering", "seconds", cats, series, false)
}

func plotFig13(rows [][]string, w *os.File) error {
	ei, err := col(rows, "edges")
	if err != nil {
		return err
	}
	ai, err := col(rows, "algorithm")
	if err != nil {
		return err
	}
	si, err := col(rows, "seconds")
	if err != nil {
		return err
	}
	tli, _ := col(rows, "timed_out")
	edgeSet := map[float64]bool{}
	vals := map[string]map[float64]float64{}
	for _, r := range rows[1:] {
		e := f64(r[ei])
		edgeSet[e] = true
		if vals[r[ai]] == nil {
			vals[r[ai]] = map[float64]float64{}
		}
		v := f64(r[si])
		if tli > 0 && r[tli] == "true" {
			v = 0
		}
		vals[r[ai]][e] = v
	}
	var xs []float64
	for e := range edgeSet {
		xs = append(xs, e)
	}
	sort.Float64s(xs)
	var names []string
	for n := range vals {
		names = append(names, n)
	}
	sort.Strings(names)
	var series []svgplot.Series
	for _, n := range names {
		s := svgplot.Series{Name: n}
		for _, x := range xs {
			s.Values = append(s.Values, vals[n][x])
		}
		series = append(series, s)
	}
	return svgplot.Lines(w, "Fig. 13 — impact of dataset size", "|E|", "seconds", xs, series, false, true)
}

func plotFig14(rows [][]string, w *os.File) error {
	di, err := col(rows, "dataset")
	if err != nil {
		return err
	}
	ti, err := col(rows, "threads")
	if err != nil {
		return err
	}
	pi, err := col(rows, "paradambe_seconds")
	if err != nil {
		return err
	}
	mi, err := col(rows, "parmbe_seconds")
	if err != nil {
		return err
	}
	threadSet := map[float64]bool{}
	vals := map[string]map[float64]float64{}
	for _, r := range rows[1:] {
		th := f64(r[ti])
		threadSet[th] = true
		for _, m := range []struct {
			name string
			v    float64
		}{
			{r[di] + "/ParAdaMBE", f64(r[pi])},
			{r[di] + "/ParMBE", f64(r[mi])},
		} {
			if vals[m.name] == nil {
				vals[m.name] = map[float64]float64{}
			}
			vals[m.name][th] = m.v
		}
	}
	var xs []float64
	for t := range threadSet {
		xs = append(xs, t)
	}
	sort.Float64s(xs)
	var names []string
	for n := range vals {
		names = append(names, n)
	}
	sort.Strings(names)
	var series []svgplot.Series
	for _, n := range names {
		s := svgplot.Series{Name: n}
		for _, x := range xs {
			s.Values = append(s.Values, vals[n][x])
		}
		series = append(series, s)
	}
	return svgplot.Lines(w, "Fig. 14 — impact of number of threads", "threads", "seconds", xs, series, true, true)
}
