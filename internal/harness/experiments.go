package harness

import (
	"fmt"
	"strconv"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/order"
)

var generalAcros = []string{"UL", "UF", "Mti", "TM", "AM", "WC", "YG", "SO", "Pa", "IM", "BX", "GH"}
var largerAcros = []string{"AM", "WC", "YG", "SO", "Pa", "IM", "BX", "GH"} // the paper's "eight larger datasets"

func quickCut(cfg Config, names []string, n int) []string {
	if cfg.Quick && len(names) > n {
		return names[:n]
	}
	return names
}

// Table1 reproduces Table I: dataset statistics plus the measured
// maximal-biclique count of every analogue (counted with ParAdaMBE under
// the TLE budget), next to the paper's original numbers.
func Table1(cfg Config) error {
	specs, err := cfg.selectSpecs(quickCut(cfg, append(append([]string{}, generalAcros...), "ceb", "DBT"), 6))
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Table I — dataset statistics (synthetic analogues; paper values in parentheses)")
	fmt.Fprintln(w, "dataset\t|U|\t|V|\t|E|\tmeasured MB\tpaper MB\ttime")
	rows := [][]string{{"dataset", "nu", "nv", "edges", "measured_mb", "paper_mb", "timed_out"}}
	for _, s := range specs {
		if err := cfg.ctx().Err(); err != nil {
			return err
		}
		g := s.Build()
		st := graph.Summarize(g)
		r, err := RunAlgorithm(g, AlgoParAdaMBE, cfg, nil)
		if err != nil {
			return err
		}
		count := strconv.FormatInt(r.Count, 10)
		if r.TimedOut {
			count = "≥" + count
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%s\t%d\t%s\n",
			s.Acronym, st.NU, st.NV, st.Edges, count, s.PaperMB, fmtRun(r))
		rows = append(rows, []string{
			s.Acronym, strconv.Itoa(st.NU), strconv.Itoa(st.NV),
			strconv.FormatInt(st.Edges, 10), strconv.FormatInt(r.Count, 10),
			strconv.FormatInt(s.PaperMB, 10), strconv.FormatBool(r.TimedOut),
		})
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return writeCSV(cfg, "table1", rows)
}

// Fig4 reproduces Figure 4: the joint (|L|, |C|) size distribution of
// computational subgraphs, measured on the Baseline engine. The paper's
// headline statistic — the share of CGs with both |L| and |C| below 32 —
// is printed alongside the bucket table.
func Fig4(cfg Config) error {
	specs, err := cfg.selectSpecs(quickCut(cfg, generalAcros, 4))
	if err != nil {
		return err
	}
	var m core.Metrics
	for _, s := range specs {
		if err := cfg.ctx().Err(); err != nil {
			return err
		}
		g := s.Build()
		if _, err := RunAlgorithm(g, AlgoBaseline, cfg, &m); err != nil {
			return err
		}
	}
	var total, small int64
	for i := range m.CGHist {
		for j := range m.CGHist[i] {
			n := m.CGHist[i][j]
			total += n
			if i < 5 && j < 5 { // both < 2^5 = 32
				small += n
			}
		}
	}
	out := cfg.out()
	fmt.Fprintf(out, "Fig. 4 — CG size distribution over %d nodes (datasets: %v)\n", total, specNames(specs))
	if total > 0 {
		fmt.Fprintf(out, "share of CGs with |L| < 32 and |C| < 32: %.1f%% (paper: 90%%)\n", 100*float64(small)/float64(total))
	}
	rows := [][]string{{"log2_L_bucket", "log2_C_bucket", "share_pct"}}
	fmt.Fprintln(out, "bucket shares (rows: |L| in [2^i, 2^i+1); cols: |C|; % of nodes; top 8×8):")
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(m.CGHist[i][j]) / float64(total)
			}
			fmt.Fprintf(out, "%6.2f", pct)
			rows = append(rows, []string{strconv.Itoa(i), strconv.Itoa(j), fmt.Sprintf("%.3f", pct)})
		}
		fmt.Fprintln(out)
	}
	return writeCSV(cfg, "fig4", rows)
}

// Fig5 reproduces Figure 5: the percentage of vertex accesses inside vs
// outside computational subgraphs under the Baseline engine, per dataset.
func Fig5(cfg Config) error {
	specs, err := cfg.selectSpecs(quickCut(cfg, generalAcros, 4))
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Fig. 5 — vertex accesses inside/outside CGs (Baseline; paper: >90% outside on most datasets)")
	fmt.Fprintln(w, "dataset\tinside %\toutside %\ttotal accesses")
	rows := [][]string{{"dataset", "inside_pct", "outside_pct", "total"}}
	for _, s := range specs {
		if err := cfg.ctx().Err(); err != nil {
			return err
		}
		g := s.Build()
		var m core.Metrics
		if _, err := RunAlgorithm(g, AlgoBaseline, cfg, &m); err != nil {
			return err
		}
		total := m.AccessesInsideCG + m.AccessesOutsideCG
		in, outp := 0.0, 0.0
		if total > 0 {
			in = 100 * float64(m.AccessesInsideCG) / float64(total)
			outp = 100 * float64(m.AccessesOutsideCG) / float64(total)
		}
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%d\n", s.Acronym, in, outp, total)
		rows = append(rows, []string{s.Acronym, fmt.Sprintf("%.2f", in), fmt.Sprintf("%.2f", outp), strconv.FormatInt(total, 10)})
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return writeCSV(cfg, "fig5", rows)
}

// Fig8 reproduces Figure 8: runtime (a) and peak memory (b) of four serial
// and three parallel algorithms across the general datasets.
func Fig8(cfg Config) error {
	specs, err := cfg.selectSpecs(quickCut(cfg, generalAcros, 4))
	if err != nil {
		return err
	}
	algos := append(SerialAlgos(), ParallelAlgos()...)
	w := tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Fig. 8 — overall evaluation (runtime | peak heap MiB); TLE budget", cfg.tle())
	header := "dataset"
	for _, a := range algos {
		header += "\t" + a
	}
	fmt.Fprintln(w, header)
	rows := [][]string{{"dataset", "algorithm", "seconds", "timed_out", "peak_heap_mib", "count"}}
	for _, s := range specs {
		if err := cfg.ctx().Err(); err != nil {
			return err
		}
		g := s.Build()
		line := s.Acronym
		for _, a := range algos {
			r, err := RunAlgorithm(g, a, cfg, nil)
			if err != nil {
				return err
			}
			line += fmt.Sprintf("\t%s|%s", fmtRun(r), fmtMB(r.PeakHeap))
			rows = append(rows, []string{
				s.Acronym, a, fmt.Sprintf("%.3f", r.Elapsed.Seconds()),
				strconv.FormatBool(r.TimedOut), fmtMB(r.PeakHeap), strconv.FormatInt(r.Count, 10),
			})
		}
		fmt.Fprintln(w, line)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return writeCSV(cfg, "fig8", rows)
}

// Fig9 reproduces Figure 9: (a) runtime of every algorithm on the CebWiki
// analogue; (b) maximal bicliques enumerated within the TLE budget on the
// TVTropes analogue.
func Fig9(cfg Config) error {
	specs, err := cfg.selectSpecs([]string{"ceb", "DBT"})
	if err != nil {
		return err
	}
	algos := append(SerialAlgos(), ParallelAlgos()...)
	w := tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Fig. 9 — large datasets; TLE budget", cfg.tle())
	fmt.Fprintln(w, "dataset\talgorithm\ttime\tcount\ttimed out")
	rows := [][]string{{"dataset", "algorithm", "seconds", "count", "timed_out"}}
	for _, s := range specs {
		if err := cfg.ctx().Err(); err != nil {
			return err
		}
		g := s.Build()
		for _, a := range algos {
			r, err := RunAlgorithm(g, a, cfg, nil)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%v\n", s.Acronym, a, fmtRun(r), r.Count, r.TimedOut)
			rows = append(rows, []string{
				s.Acronym, a, fmt.Sprintf("%.3f", r.Elapsed.Seconds()),
				strconv.FormatInt(r.Count, 10), strconv.FormatBool(r.TimedOut),
			})
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return writeCSV(cfg, "fig9", rows)
}

// Fig10 reproduces Figure 10: the breakdown analysis of the two AdaMBE
// techniques — (a) runtime and (b) peak memory of Baseline / AdaMBE-LN /
// AdaMBE-BIT / AdaMBE; (c) nodes with non-maximal bicliques under Baseline
// vs LN; (d) the small-node/large-node time split under Baseline vs BIT.
func Fig10(cfg Config) error {
	specs, err := cfg.selectSpecs(quickCut(cfg, largerAcros, 3))
	if err != nil {
		return err
	}
	variants := []string{AlgoBaseline, AlgoLN, AlgoBIT, AlgoAdaMBE}
	w := tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Fig. 10 — breakdown analysis (time | peak heap MiB | non-maximal nodes | small/large-node time)")
	fmt.Fprintln(w, "dataset\tvariant\ttime\theap MiB\tnon-max nodes\tsmall time\tlarge time")
	rows := [][]string{{"dataset", "variant", "seconds", "peak_heap_mib", "nonmax_nodes", "small_seconds", "large_seconds"}}
	for _, s := range specs {
		if err := cfg.ctx().Err(); err != nil {
			return err
		}
		g := s.Build()
		for _, v := range variants {
			var m core.Metrics
			r, err := RunAlgorithm(g, v, cfg, &m)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%d\t%s\t%s\n",
				s.Acronym, v, fmtRun(r), fmtMB(r.PeakHeap), m.NodesNonMaximal,
				fmtDur(m.SmallNodeTime), fmtDur(m.LargeNodeTime))
			rows = append(rows, []string{
				s.Acronym, v, fmt.Sprintf("%.3f", r.Elapsed.Seconds()), fmtMB(r.PeakHeap),
				strconv.FormatInt(m.NodesNonMaximal, 10),
				fmt.Sprintf("%.3f", m.SmallNodeTime.Seconds()),
				fmt.Sprintf("%.3f", m.LargeNodeTime.Seconds()),
			})
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return writeCSV(cfg, "fig10", rows)
}

// Fig11 reproduces Figure 11: AdaMBE-BIT runtime as the bitmap threshold τ
// sweeps from 4 to 512 on two time-consuming datasets; the paper's finding
// is a minimum at τ = 64 (one machine word).
func Fig11(cfg Config) error {
	specs, err := cfg.selectSpecs(quickCut(cfg, []string{"BX", "GH"}, 1))
	if err != nil {
		return err
	}
	taus := []int{4, 8, 16, 32, 64, 128, 256, 512}
	w := tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Fig. 11 — impact of threshold τ (AdaMBE-BIT runtime).")
	fmt.Fprintln(w, "The 'padded' series uses the paper's cost model (masks sized ⌈τ/64⌉ words);")
	fmt.Fprintln(w, "the 'adaptive' series is this implementation's default (masks sized to the actual |L*|).")
	fmt.Fprintln(w, "dataset\tτ\tpadded time\tadaptive time\tbitmaps created")
	rows := [][]string{{"dataset", "tau", "padded_seconds", "adaptive_seconds", "bitmaps"}}
	for _, s := range specs {
		if err := cfg.ctx().Err(); err != nil {
			return err
		}
		g := s.Build()
		og := order.Apply(g, order.DegreeAscending, 0)
		for _, tau := range taus {
			run := func(pad bool) (time.Duration, bool, int64, error) {
				var m core.Metrics
				deadline := time.Now().Add(cfg.tle())
				start := time.Now()
				res, err := core.Enumerate(og, core.Options{
					Variant: core.BIT, Tau: tau, Deadline: deadline,
					Context: cfg.ctx(), Metrics: &m, PadBitmaps: pad,
				})
				return time.Since(start), res.TimedOut, m.BitmapsCreated, err
			}
			padEl, padTLE, bitmaps, err := run(true)
			if err != nil {
				return err
			}
			adEl, adTLE, _, err := run(false)
			if err != nil {
				return err
			}
			tag := func(el time.Duration, tle bool) string {
				t := fmtDur(el)
				if tle {
					t = "TLE(" + t + ")"
				}
				return t
			}
			fmt.Fprintf(w, "%s\t%d\t%s\t%s\t%d\n",
				s.Acronym, tau, tag(padEl, padTLE), tag(adEl, adTLE), bitmaps)
			rows = append(rows, []string{
				s.Acronym, strconv.Itoa(tau),
				fmt.Sprintf("%.3f", padEl.Seconds()),
				fmt.Sprintf("%.3f", adEl.Seconds()),
				strconv.FormatInt(bitmaps, 10),
			})
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return writeCSV(cfg, "fig11", rows)
}

// Fig12 reproduces Figure 12: AdaMBE runtime under the three vertex
// orderings (ASC / RAND / UC); ordering time is included, so UC pays its
// unilateral-core computation as in the paper.
func Fig12(cfg Config) error {
	specs, err := cfg.selectSpecs(quickCut(cfg, largerAcros, 3))
	if err != nil {
		return err
	}
	kinds := []order.Kind{order.DegreeAscending, order.Random, order.UnilateralCore}
	w := tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Fig. 12 — impact of vertex ordering (AdaMBE)")
	fmt.Fprintln(w, "dataset\tordering\ttime\tcount")
	rows := [][]string{{"dataset", "ordering", "seconds", "count"}}
	for _, s := range specs {
		if err := cfg.ctx().Err(); err != nil {
			return err
		}
		g := s.Build()
		for _, k := range kinds {
			deadline := time.Now().Add(cfg.tle())
			start := time.Now()
			og := order.Apply(g, k, 7)
			res, err := core.Enumerate(og, core.Options{Variant: core.Ada, Deadline: deadline, Context: cfg.ctx()})
			if err != nil {
				return err
			}
			el := time.Since(start)
			tag := fmtDur(el)
			if res.TimedOut {
				tag = "TLE(" + tag + ")"
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%d\n", s.Acronym, k, tag, res.Count)
			rows = append(rows, []string{s.Acronym, k.String(), fmt.Sprintf("%.3f", el.Seconds()), strconv.FormatInt(res.Count, 10)})
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return writeCSV(cfg, "fig12", rows)
}

// Fig13 reproduces Figure 13 (with Table II): serial algorithm runtime as
// the LiveJournal sample grows from 10% to 50% of the parent's edges.
func Fig13(cfg Config) error {
	def := []string{"LJ10", "LJ20", "LJ30", "LJ40", "LJ50"}
	specs, err := cfg.selectSpecs(quickCut(cfg, def, 2))
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Fig. 13 / Table II — impact of dataset size (serial algorithms); TLE budget", cfg.tle())
	fmt.Fprintln(w, "dataset\t|E|\tMB count\talgorithm\ttime")
	rows := [][]string{{"dataset", "edges", "algorithm", "seconds", "timed_out", "count"}}
	for _, s := range specs {
		if err := cfg.ctx().Err(); err != nil {
			return err
		}
		g := s.Build()
		for _, a := range SerialAlgos() {
			r, err := RunAlgorithm(g, a, cfg, nil)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s\t%d\t%d\t%s\t%s\n", s.Acronym, g.NumEdges(), r.Count, a, fmtRun(r))
			rows = append(rows, []string{
				s.Acronym, strconv.FormatInt(g.NumEdges(), 10), a,
				fmt.Sprintf("%.3f", r.Elapsed.Seconds()), strconv.FormatBool(r.TimedOut),
				strconv.FormatInt(r.Count, 10),
			})
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return writeCSV(cfg, "fig13", rows)
}

// Fig14 reproduces Figure 14: ParAdaMBE vs ParMBE runtime as the thread
// count doubles from 1 to the configured width, on the GitHub and CebWiki
// analogues.
func Fig14(cfg Config) error {
	specs, err := cfg.selectSpecs(quickCut(cfg, []string{"GH", "ceb"}, 1))
	if err != nil {
		return err
	}
	var threadsSweep []int
	for t := 1; t <= cfg.threads(); t *= 2 {
		threadsSweep = append(threadsSweep, t)
	}
	if cfg.Quick && len(threadsSweep) > 3 {
		threadsSweep = threadsSweep[:3]
	}
	w := tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Fig. 14 — impact of number of threads")
	fmt.Fprintln(w, "dataset\tthreads\tParAdaMBE\tParMBE")
	rows := [][]string{{"dataset", "threads", "paradambe_seconds", "parmbe_seconds"}}
	for _, s := range specs {
		if err := cfg.ctx().Err(); err != nil {
			return err
		}
		g := s.Build()
		for _, th := range threadsSweep {
			sub := cfg
			sub.Threads = th
			ra, err := RunAlgorithm(g, AlgoParAdaMBE, sub, nil)
			if err != nil {
				return err
			}
			rb, err := RunAlgorithm(g, AlgoParMBE, sub, nil)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s\t%d\t%s\t%s\n", s.Acronym, th, fmtRun(ra), fmtRun(rb))
			rows = append(rows, []string{
				s.Acronym, strconv.Itoa(th),
				fmt.Sprintf("%.3f", ra.Elapsed.Seconds()),
				fmt.Sprintf("%.3f", rb.Elapsed.Seconds()),
			})
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return writeCSV(cfg, "fig14", rows)
}

func specNames(specs []datasets.Spec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Acronym
	}
	return out
}
