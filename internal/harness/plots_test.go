package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeCSVFile(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRenderPlotsAllFigures(t *testing.T) {
	dir := t.TempDir()
	writeCSVFile(t, dir, "fig4.csv", "log2_L_bucket,log2_C_bucket,share_pct\n0,0,55.5\n1,2,3.25\n")
	writeCSVFile(t, dir, "fig5.csv", "dataset,inside_pct,outside_pct,total\nUL,32.8,67.2,93353\nUF,11.3,88.7,20707421\n")
	writeCSVFile(t, dir, "fig8.csv", "dataset,algorithm,seconds,timed_out,peak_heap_mib,count\nUL,FMBE,0.5,false,2.0,637\nUL,AdaMBE,0.1,false,3.0,637\nUF,FMBE,60,true,2.0,100\nUF,AdaMBE,0.2,false,3.0,3723\n")
	writeCSVFile(t, dir, "fig9.csv", "dataset,algorithm,seconds,count,timed_out\nceb,FMBE,60,12345,true\nceb,AdaMBE,9,3170937,false\n")
	writeCSVFile(t, dir, "fig10.csv", "dataset,variant,seconds,peak_heap_mib,nonmax_nodes,small_seconds,large_seconds\nGH,Baseline,60,2.5,1,50,10\nGH,AdaMBE,1.4,7.0,1,1,0.4\n")
	writeCSVFile(t, dir, "fig11.csv", "dataset,tau,padded_seconds,adaptive_seconds,bitmaps\nBX,4,22,22,100\nBX,64,1.5,1.5,50\nBX,512,9,0.8,10\n")
	writeCSVFile(t, dir, "fig12.csv", "dataset,ordering,seconds,count\nGH,ASC,1.4,1\nGH,RAND,1.5,1\nGH,UC,2.0,1\n")
	writeCSVFile(t, dir, "fig13.csv", "dataset,edges,algorithm,seconds,timed_out,count\nLJ10,100963,FMBE,0.064,false,1\nLJ10,100963,AdaMBE,0.051,false,1\nLJ50,504848,FMBE,13.1,false,1\nLJ50,504848,AdaMBE,1.59,false,1\n")
	writeCSVFile(t, dir, "fig14.csv", "dataset,threads,paradambe_seconds,parmbe_seconds\nGH,1,2.16,25.7\nGH,2,1.4,20.1\n")

	written, err := RenderPlots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(written) != 9 {
		t.Fatalf("wrote %d figures, want 9: %v", len(written), written)
	}
	for _, f := range written {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		s := string(data)
		if !strings.HasPrefix(s, "<svg") || !strings.HasSuffix(strings.TrimSpace(s), "</svg>") {
			t.Fatalf("%s: not an SVG document", f)
		}
		if len(s) < 500 {
			t.Fatalf("%s: suspiciously small (%d bytes)", f, len(s))
		}
	}
}

func TestRenderPlotsSkipsMissing(t *testing.T) {
	dir := t.TempDir()
	writeCSVFile(t, dir, "fig12.csv", "dataset,ordering,seconds,count\nGH,ASC,1.4,1\n")
	written, err := RenderPlots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(written) != 1 || !strings.HasSuffix(written[0], "fig12.svg") {
		t.Fatalf("written = %v", written)
	}
}

func TestRenderPlotsRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	writeCSVFile(t, dir, "fig12.csv", "wrong,headers\n1,2\n")
	if _, err := RenderPlots(dir); err == nil {
		t.Fatal("malformed CSV accepted")
	}
}

func TestRenderPlotsEndToEnd(t *testing.T) {
	// Produce a real (quick) experiment CSV, then plot it.
	dir := t.TempDir()
	cfg := quickCfg(t)
	cfg.CSVDir = dir
	if err := Fig5(cfg); err != nil {
		t.Fatal(err)
	}
	written, err := RenderPlots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(written) != 1 {
		t.Fatalf("written = %v", written)
	}
}
