package harness

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	mbe "repro"
)

// traceHeader mirrors server.TraceHeader without importing the server
// package: mbeload is a client and speaks only the wire contract.
const traceHeader = "X-MBE-Trace"

// LoadConfig parameterizes one mbeload sweep against a running daemon.
type LoadConfig struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Dataset names the synthetic graph submitted once before the sweep
	// (POST /v1/graphs?dataset=...). Empty means "UL".
	Dataset string
	// Levels is the concurrency sweep, e.g. [1, 2, 4, 8]. Each level runs
	// JobsPerLevel jobs with that many concurrent clients.
	Levels []int
	// JobsPerLevel is how many jobs each level submits; 0 = 8.
	JobsPerLevel int
	// Timeout bounds one job end-to-end (submit, poll, stream, verify);
	// 0 = 120s.
	Timeout time.Duration
	// SeedBase offsets the per-job ordering seeds. Every job gets a
	// distinct seed with ordering "rand" so the daemon's result cache
	// (keyed by graph|ordering|seed) cannot serve it — a load test that
	// measures cache lookups would find no knee.
	SeedBase int64
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c LoadConfig) dataset() string { return strOr(c.Dataset, "UL") }
func (c LoadConfig) jobs() int {
	if c.JobsPerLevel <= 0 {
		return 8
	}
	return c.JobsPerLevel
}
func (c LoadConfig) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 120 * time.Second
	}
	return c.Timeout
}
func (c LoadConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

func strOr(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// LoadRow is one concurrency level of the sweep: client-observed latency
// quantiles over verified jobs, goodput, and the shed rate.
type LoadRow struct {
	Concurrency int `json:"concurrency"`
	// Jobs = OK + Shed + Errors. OK jobs completed AND their streamed
	// results digest-matched the server's recorded digest; Shed jobs were
	// rejected 429 at submit; Errors is everything else (timeouts, digest
	// mismatches, transport failures).
	Jobs   int `json:"jobs"`
	OK     int `json:"ok"`
	Shed   int `json:"shed"`
	Errors int `json:"errors"`
	// P50MS/P95MS/P99MS are end-to-end latency quantiles (submit through
	// digest verification) over OK jobs, milliseconds.
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	// ThroughputJPS is verified jobs per wall second for the level.
	ThroughputJPS float64 `json:"throughput_jobs_per_sec"`
	// ShedRate is Shed/Jobs.
	ShedRate float64 `json:"shed_rate"`
	// SaturationKnee marks the first level where adding clients stopped
	// paying: marginal throughput below +10% over the previous level, or
	// admission control began shedding.
	SaturationKnee bool `json:"saturation_knee,omitempty"`
}

// BenchServerFile is the BENCH_server.json schema: provenance-stamped
// like BENCH_parallel.json, one row per swept concurrency level.
type BenchServerFile struct {
	// Tool identifies the producer ("mbeload").
	Tool string `json:"tool"`
	Provenance
	Dataset string    `json:"dataset"`
	GraphID string    `json:"graph_id"`
	Rows    []LoadRow `json:"rows"`
}

// jobOutcome is one client's end-to-end result.
type jobOutcome struct {
	latencyMS float64
	shed      bool
	err       error
}

// RunLoad drives the sweep: submit the dataset graph once, then for each
// level run JobsPerLevel jobs with Concurrency concurrent clients, each
// doing submit → poll → stream → digest-verify. The knee is marked on
// the returned rows.
func RunLoad(cfg LoadConfig) (BenchServerFile, error) {
	client := &http.Client{} // per-job budgets, not a global socket timeout
	file := BenchServerFile{
		Tool:       "mbeload",
		Provenance: CollectProvenance(),
		Dataset:    cfg.dataset(),
	}

	graphID, err := submitDataset(client, cfg.BaseURL, cfg.dataset())
	if err != nil {
		return file, err
	}
	file.GraphID = graphID
	cfg.logf("graph %s submitted as %s", cfg.dataset(), graphID)

	var seedCounter atomic.Int64
	seedCounter.Store(cfg.SeedBase)
	for _, c := range cfg.Levels {
		if c <= 0 {
			return file, fmt.Errorf("harness: concurrency level %d must be positive", c)
		}
		row := runLevel(client, cfg, graphID, c, &seedCounter)
		file.Rows = append(file.Rows, row)
		cfg.logf("c=%d: ok=%d shed=%d err=%d p50=%.1fms p99=%.1fms %.2f jobs/s",
			c, row.OK, row.Shed, row.Errors, row.P50MS, row.P99MS, row.ThroughputJPS)
	}
	markKnee(file.Rows)
	return file, nil
}

// runLevel runs one concurrency level and reduces it to a row.
func runLevel(client *http.Client, cfg LoadConfig, graphID string, conc int, seeds *atomic.Int64) LoadRow {
	n := cfg.jobs()
	outcomes := make([]jobOutcome, n)
	var idx atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(idx.Add(1)) - 1
				if i >= n {
					return
				}
				seed := seeds.Add(1)
				outcomes[i] = runOneJob(client, cfg, graphID, conc, seed)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	row := LoadRow{Concurrency: conc, Jobs: n}
	var lats []float64
	for _, o := range outcomes {
		switch {
		case o.err != nil:
			row.Errors++
		case o.shed:
			row.Shed++
		default:
			row.OK++
			lats = append(lats, o.latencyMS)
		}
	}
	sort.Float64s(lats)
	row.P50MS = quantileSorted(lats, 0.50)
	row.P95MS = quantileSorted(lats, 0.95)
	row.P99MS = quantileSorted(lats, 0.99)
	if wall > 0 {
		row.ThroughputJPS = float64(row.OK) / wall.Seconds()
	}
	row.ShedRate = float64(row.Shed) / float64(n)
	return row
}

// runOneJob is one client's full protocol round trip. The latency clock
// covers everything a caller would wait for: submit, queue, enumeration,
// result streaming and digest verification.
func runOneJob(client *http.Client, cfg LoadConfig, graphID string, conc int, seed int64) jobOutcome {
	deadline := time.Now().Add(cfg.timeout())
	start := time.Now()
	trace := fmt.Sprintf("load-c%d-s%d", conc, seed)

	spec := map[string]any{"graph_id": graphID, "ordering": "rand", "seed": seed}
	body, _ := json.Marshal(spec)
	req, err := http.NewRequest("POST", cfg.BaseURL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return jobOutcome{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(traceHeader, trace)
	resp, err := client.Do(req)
	if err != nil {
		return jobOutcome{err: err}
	}
	if got := resp.Header.Get(traceHeader); got != trace {
		resp.Body.Close()
		return jobOutcome{err: fmt.Errorf("trace not echoed: got %q want %q", got, trace)}
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		resp.Body.Close()
		return jobOutcome{shed: true}
	}
	var m struct {
		JobID string `json:"job_id"`
		Error string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil || m.JobID == "" {
		return jobOutcome{err: fmt.Errorf("submit: status %d: %s (%v)", resp.StatusCode, m.Error, err)}
	}

	// Poll to terminal state.
	var status struct {
		State  string `json:"state"`
		Error  string `json:"error"`
		Result *struct {
			Count  int64  `json:"count"`
			Digest string `json:"digest"`
		} `json:"result"`
	}
	for {
		if !time.Now().Before(deadline) {
			return jobOutcome{err: fmt.Errorf("job %s: timed out in state %q", m.JobID, status.State)}
		}
		r, err := client.Get(cfg.BaseURL + "/v1/jobs/" + m.JobID)
		if err != nil {
			return jobOutcome{err: err}
		}
		err = json.NewDecoder(r.Body).Decode(&status)
		r.Body.Close()
		if err != nil {
			return jobOutcome{err: err}
		}
		if status.State == "done" || status.State == "failed" || status.State == "canceled" {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if status.State != "done" || status.Result == nil {
		return jobOutcome{err: fmt.Errorf("job %s: %s: %s", m.JobID, status.State, status.Error)}
	}

	// Stream the NDJSON results and verify the order-invariant digest
	// against the server's — the load test doubles as a correctness test.
	r, err := client.Get(cfg.BaseURL + "/v1/jobs/" + m.JobID + "/results")
	if err != nil {
		return jobOutcome{err: err}
	}
	defer r.Body.Close()
	var d mbe.Digest
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var rec struct {
			L []int32 `json:"l"`
			R []int32 `json:"r"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return jobOutcome{err: fmt.Errorf("job %s: results: %w", m.JobID, err)}
		}
		d.Observe(rec.L, rec.R)
	}
	if err := sc.Err(); err != nil {
		return jobOutcome{err: fmt.Errorf("job %s: results stream: %w", m.JobID, err)}
	}
	if got := d.String(); got != status.Result.Digest {
		return jobOutcome{err: fmt.Errorf("job %s: digest mismatch: streamed %s, server recorded %s",
			m.JobID, got, status.Result.Digest)}
	}
	return jobOutcome{latencyMS: float64(time.Since(start).Microseconds()) / 1e3}
}

// submitDataset stores the named synthetic dataset and returns its id.
func submitDataset(client *http.Client, baseURL, dataset string) (string, error) {
	resp, err := client.Post(baseURL+"/v1/graphs?dataset="+dataset, "application/octet-stream", nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var out struct {
		GraphID string `json:"graph_id"`
		Error   string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", fmt.Errorf("harness: graph submit: %w", err)
	}
	if resp.StatusCode != http.StatusOK || out.GraphID == "" {
		return "", fmt.Errorf("harness: graph submit: status %d: %s", resp.StatusCode, out.Error)
	}
	return out.GraphID, nil
}

// quantileSorted is the nearest-rank quantile over an ascending slice.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// markKnee flags the first level where concurrency stopped paying.
func markKnee(rows []LoadRow) {
	for i := range rows {
		if rows[i].Shed > 0 {
			rows[i].SaturationKnee = true
			return
		}
		if i > 0 && rows[i].ThroughputJPS < rows[i-1].ThroughputJPS*1.10 {
			rows[i].SaturationKnee = true
			return
		}
	}
}

// WriteBenchServer writes the sweep to path as indented JSON.
func WriteBenchServer(file BenchServerFile, path string) error {
	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ValidateBenchServer is the CI schema gate over a BENCH_server.json:
// it checks the invariants a well-formed sweep cannot violate, so a
// refactor that silently breaks mbeload fails the build instead of
// committing an empty or inconsistent benchmark file.
func ValidateBenchServer(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f BenchServerFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if f.Tool != "mbeload" {
		return fmt.Errorf("%s: tool = %q, want \"mbeload\"", path, f.Tool)
	}
	if f.GoVersion == "" || f.TimestampUTC == "" {
		return fmt.Errorf("%s: provenance incomplete (go_version=%q timestamp_utc=%q)",
			path, f.GoVersion, f.TimestampUTC)
	}
	if f.Dataset == "" || f.GraphID == "" {
		return fmt.Errorf("%s: dataset/graph_id missing", path)
	}
	if len(f.Rows) == 0 {
		return fmt.Errorf("%s: no rows", path)
	}
	for i, r := range f.Rows {
		if r.Concurrency <= 0 {
			return fmt.Errorf("%s: row %d: concurrency %d", path, i, r.Concurrency)
		}
		if r.Jobs <= 0 || r.OK+r.Shed+r.Errors != r.Jobs {
			return fmt.Errorf("%s: row %d: ok(%d)+shed(%d)+errors(%d) != jobs(%d)",
				path, i, r.OK, r.Shed, r.Errors, r.Jobs)
		}
		if r.P50MS > r.P95MS || r.P95MS > r.P99MS {
			return fmt.Errorf("%s: row %d: quantiles not monotone (p50=%g p95=%g p99=%g)",
				path, i, r.P50MS, r.P95MS, r.P99MS)
		}
		if r.OK > 0 && r.P50MS <= 0 {
			return fmt.Errorf("%s: row %d: %d ok jobs but p50 = %g", path, i, r.OK, r.P50MS)
		}
		if r.ShedRate < 0 || r.ShedRate > 1 {
			return fmt.Errorf("%s: row %d: shed_rate %g out of [0,1]", path, i, r.ShedRate)
		}
	}
	return nil
}

// ParseLevels parses a "1,2,4,8" concurrency sweep spec.
func ParseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("harness: bad concurrency level %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("harness: empty level sweep")
	}
	return out, nil
}
