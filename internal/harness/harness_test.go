package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/datasets"
)

func quickCfg(t *testing.T) Config {
	t.Helper()
	return Config{
		Quick:    true,
		TLE:      5 * time.Second,
		Threads:  2,
		Out:      &bytes.Buffer{},
		Datasets: []string{"UL", "UF"},
	}
}

func TestExperimentRegistry(t *testing.T) {
	want := []string{"fig10", "fig11", "fig12", "fig13", "fig14", "fig4", "fig5", "fig8", "fig9", "table1"}
	got := ExperimentNames()
	if len(got) != len(want) {
		t.Fatalf("experiments: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("experiments: %v, want %v", got, want)
		}
	}
}

func TestAllExperimentsQuick(t *testing.T) {
	for _, name := range ExperimentNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := quickCfg(t)
			if name == "fig13" {
				cfg.Datasets = []string{"LJ10"}
			}
			if name == "fig9" {
				// Keep fig9 fast: a single modest dataset and small TLE.
				cfg.Datasets = []string{"UL"}
				cfg.TLE = 3 * time.Second
			}
			var buf bytes.Buffer
			cfg.Out = &buf
			if err := Experiments[name](cfg); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", name)
			}
		})
	}
}

func TestRunAlgorithmAllNames(t *testing.T) {
	s, _ := datasets.ByName("UL")
	g := s.Build()
	cfg := quickCfg(t)
	var first int64 = -1
	for _, a := range []string{
		AlgoBaseline, AlgoLN, AlgoBIT, AlgoAdaMBE, AlgoParAdaMBE,
		AlgoFMBE, AlgoPMBE, AlgoOOMBEA, AlgoParMBE, AlgoGMBE,
	} {
		r, err := RunAlgorithm(g, a, cfg, nil)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if first < 0 {
			first = r.Count
		} else if r.Count != first {
			t.Fatalf("%s: count %d, others %d", a, r.Count, first)
		}
		if r.Elapsed <= 0 {
			t.Fatalf("%s: non-positive elapsed", a)
		}
	}
	if _, err := RunAlgorithm(g, "bogus", cfg, nil); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestCSVOutput(t *testing.T) {
	cfg := quickCfg(t)
	cfg.CSVDir = t.TempDir()
	var buf bytes.Buffer
	cfg.Out = &buf
	if err := Fig5(cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(cfg.CSVDir, "fig5.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "dataset,inside_pct") {
		t.Fatalf("csv header wrong: %q", string(data[:40]))
	}
	lines := strings.Count(string(data), "\n")
	if lines < 3 { // header + 2 datasets
		t.Fatalf("csv rows: %d", lines)
	}
}

func TestUnknownDatasetRejected(t *testing.T) {
	cfg := quickCfg(t)
	cfg.Datasets = []string{"NOPE"}
	if err := Fig5(cfg); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestHeapSampler(t *testing.T) {
	stop, peak := startHeapSampler()
	ballast := make([]byte, 64<<20)
	for i := range ballast {
		ballast[i] = byte(i)
	}
	time.Sleep(30 * time.Millisecond)
	stop()
	if peak() < 32<<20 {
		t.Fatalf("sampler missed the 64 MiB ballast: peak %d", peak())
	}
	_ = ballast[0]
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.tle() != 60*time.Second {
		t.Fatalf("default TLE = %v", c.tle())
	}
	c.Quick = true
	if c.tle() != 10*time.Second {
		t.Fatalf("quick TLE = %v", c.tle())
	}
	if c.threads() < 1 {
		t.Fatal("threads default < 1")
	}
	if c.out() == nil {
		t.Fatal("nil default writer")
	}
}

func TestFmtHelpers(t *testing.T) {
	if fmtDur(90*time.Second) != "1.5m" {
		t.Fatalf("fmtDur(90s) = %q", fmtDur(90*time.Second))
	}
	if fmtDur(1500*time.Millisecond) != "1.50s" {
		t.Fatalf("fmtDur = %q", fmtDur(1500*time.Millisecond))
	}
	if fmtDur(12*time.Millisecond) != "12ms" {
		t.Fatalf("fmtDur = %q", fmtDur(12*time.Millisecond))
	}
	if fmtMB(1<<20) != "1.0" {
		t.Fatalf("fmtMB = %q", fmtMB(1<<20))
	}
	r := RunResult{Elapsed: time.Second, TimedOut: true}
	if fmtRun(r) != "TLE(1.00s)" {
		t.Fatalf("fmtRun = %q", fmtRun(r))
	}
}
