package harness

import (
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/server"
)

// startLoadTarget boots a real mbed server on a loopback port.
func startLoadTarget(t *testing.T) string {
	t.Helper()
	srv, err := server.New(server.Config{Dir: t.TempDir(), Concurrency: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	t.Cleanup(func() {
		httpSrv.Close()
		srv.Close(5 * time.Second)
	})
	return "http://" + ln.Addr().String()
}

func TestRunLoadSweep(t *testing.T) {
	base := startLoadTarget(t)
	file, err := RunLoad(LoadConfig{
		BaseURL:      base,
		Dataset:      "UL",
		Levels:       []int{1, 2},
		JobsPerLevel: 2,
		Timeout:      60 * time.Second,
		SeedBase:     100,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(file.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(file.Rows))
	}
	for i, r := range file.Rows {
		if r.OK != 2 || r.Shed != 0 || r.Errors != 0 {
			t.Errorf("row %d: ok=%d shed=%d err=%d, want 2/0/0", i, r.OK, r.Shed, r.Errors)
		}
		if r.P50MS <= 0 || r.P50MS > r.P99MS {
			t.Errorf("row %d: quantiles p50=%g p99=%g", i, r.P50MS, r.P99MS)
		}
		if r.ThroughputJPS <= 0 {
			t.Errorf("row %d: throughput %g", i, r.ThroughputJPS)
		}
	}

	// Round-trip through the schema gate CI runs.
	path := filepath.Join(t.TempDir(), "BENCH_server.json")
	if err := WriteBenchServer(file, path); err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchServer(path); err != nil {
		t.Fatalf("ValidateBenchServer: %v", err)
	}
}

func TestValidateBenchServerRejects(t *testing.T) {
	dir := t.TempDir()
	write := func(mutate func(*BenchServerFile)) string {
		f := BenchServerFile{
			Tool: "mbeload", Provenance: CollectProvenance(),
			Dataset: "UL", GraphID: "g",
			Rows: []LoadRow{{Concurrency: 1, Jobs: 2, OK: 2, P50MS: 1, P95MS: 2, P99MS: 3, ThroughputJPS: 1}},
		}
		if mutate != nil {
			mutate(&f)
		}
		blob, _ := json.Marshal(f)
		path := filepath.Join(dir, "f.json")
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	if err := ValidateBenchServer(write(nil)); err != nil {
		t.Fatalf("well-formed file rejected: %v", err)
	}
	cases := map[string]func(*BenchServerFile){
		"wrong tool":      func(f *BenchServerFile) { f.Tool = "mbebench" },
		"no rows":         func(f *BenchServerFile) { f.Rows = nil },
		"count mismatch":  func(f *BenchServerFile) { f.Rows[0].OK = 1 },
		"bad quantiles":   func(f *BenchServerFile) { f.Rows[0].P50MS = 9 },
		"no provenance":   func(f *BenchServerFile) { f.GoVersion = "" },
		"zero latency ok": func(f *BenchServerFile) { f.Rows[0].P50MS, f.Rows[0].P95MS, f.Rows[0].P99MS = 0, 0, 0 },
	}
	for name, mutate := range cases {
		if err := ValidateBenchServer(write(mutate)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMarkKnee(t *testing.T) {
	rows := []LoadRow{
		{Concurrency: 1, ThroughputJPS: 10},
		{Concurrency: 2, ThroughputJPS: 19},
		{Concurrency: 4, ThroughputJPS: 20},
		{Concurrency: 8, ThroughputJPS: 21},
	}
	markKnee(rows)
	if rows[1].SaturationKnee || !rows[2].SaturationKnee || rows[3].SaturationKnee {
		t.Fatalf("knee flags = %v %v %v %v, want only c=4",
			rows[0].SaturationKnee, rows[1].SaturationKnee, rows[2].SaturationKnee, rows[3].SaturationKnee)
	}

	shed := []LoadRow{
		{Concurrency: 1, ThroughputJPS: 10, Shed: 1},
		{Concurrency: 2, ThroughputJPS: 30},
	}
	markKnee(shed)
	if !shed[0].SaturationKnee {
		t.Fatal("shedding level not marked as knee")
	}
}

func TestParseLevels(t *testing.T) {
	got, err := ParseLevels("1, 2,8")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 8 {
		t.Fatalf("ParseLevels = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "a", "1,-2"} {
		if _, err := ParseLevels(bad); err == nil {
			t.Errorf("ParseLevels(%q): no error", bad)
		}
	}
}
