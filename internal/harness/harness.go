// Package harness regenerates every table and figure of the paper's
// evaluation (§IV) on the synthetic dataset registry: Table I/II stats,
// Fig. 4-5 motivation measurements, Fig. 8-10 overall and breakdown
// comparisons, and the Fig. 11-14 sensitivity sweeps. Each experiment
// prints a text table mirroring the paper's rows/series and can optionally
// dump CSV for plotting.
package harness

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/order"
)

// Config controls an experiment run.
type Config struct {
	// Quick shrinks dataset selections and budgets for smoke runs.
	Quick bool
	// TLE is the per-run time budget (the paper's 48 h limit, scaled).
	// Zero selects 60 s (10 s when Quick).
	TLE time.Duration
	// Threads is the parallel width; 0 = GOMAXPROCS.
	Threads int
	// Out receives the text tables; nil = os.Stdout.
	Out io.Writer
	// CSVDir, when non-empty, receives one CSV file per experiment.
	CSVDir string
	// Datasets restricts experiments to the named datasets (acronyms).
	// Empty = each experiment's default selection.
	Datasets []string
	// Context, if non-nil, cancels in-flight enumerations (partial counts
	// are reported as TLE-style rows) and makes experiment loops stop
	// between datasets. Used by mbebench to honor SIGINT.
	Context context.Context
	// LiveObs attaches a live observability recorder to each benchmark
	// enumeration and publishes it to the process's /debug endpoint, so a
	// -debug-addr poller can watch bench runs in flight. Off by default:
	// the per-node probe counters are not free, and trajectory numbers
	// should be measured the way production runs are.
	LiveObs bool
}

func (c *Config) ctx() context.Context {
	if c.Context == nil {
		return context.Background()
	}
	return c.Context
}

func (c *Config) out() io.Writer {
	if c.Out == nil {
		return os.Stdout
	}
	return c.Out
}

func (c *Config) tle() time.Duration {
	if c.TLE > 0 {
		return c.TLE
	}
	if c.Quick {
		return 10 * time.Second
	}
	return 60 * time.Second
}

func (c *Config) threads() int {
	if c.Threads > 0 {
		return c.Threads
	}
	return runtime.GOMAXPROCS(0)
}

// selectSpecs resolves the dataset selection: the config override if set,
// otherwise the provided default acronyms.
func (c *Config) selectSpecs(def []string) ([]datasets.Spec, error) {
	names := def
	if len(c.Datasets) > 0 {
		names = c.Datasets
	}
	specs := make([]datasets.Spec, 0, len(names))
	for _, n := range names {
		s, ok := datasets.ByName(n)
		if !ok {
			return nil, fmt.Errorf("harness: unknown dataset %q", n)
		}
		specs = append(specs, s)
	}
	return specs, nil
}

// Runner executes one experiment.
type Runner func(Config) error

// Experiments maps experiment ids (the paper's table/figure numbers) to
// their runners.
var Experiments = map[string]Runner{
	"table1": Table1,
	"fig4":   Fig4,
	"fig5":   Fig5,
	"fig8":   Fig8,
	"fig9":   Fig9,
	"fig10":  Fig10,
	"fig11":  Fig11,
	"fig12":  Fig12,
	"fig13":  Fig13,
	"fig14":  Fig14,
}

// ExperimentNames returns the registered experiment ids, sorted.
func ExperimentNames() []string {
	names := make([]string, 0, len(Experiments))
	for n := range Experiments {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RunResult is one measured enumeration.
type RunResult struct {
	Algorithm  string
	Dataset    string
	Count      int64
	Elapsed    time.Duration
	TimedOut   bool
	StopReason core.StopReason
	PeakHeap   uint64 // bytes, sampled
}

// AlgoNames used across experiments. AdaMBE family applies the ASC
// ordering internally (its default per Algorithm 2); the competitors run
// with their own papers' default configurations (ooMBEA computes its UC
// order itself).
const (
	AlgoBaseline  = "Baseline"
	AlgoLN        = "AdaMBE-LN"
	AlgoBIT       = "AdaMBE-BIT"
	AlgoAdaMBE    = "AdaMBE"
	AlgoParAdaMBE = "ParAdaMBE"
	AlgoFMBE      = "FMBE"
	AlgoPMBE      = "PMBE"
	AlgoOOMBEA    = "ooMBEA"
	AlgoParMBE    = "ParMBE"
	AlgoGMBE      = "GMBE-sim"
	AlgoBBK       = "BBK"
)

// SerialAlgos is the Fig. 8a serial lineup; ParallelAlgos the parallel one.
func SerialAlgos() []string   { return []string{AlgoFMBE, AlgoPMBE, AlgoOOMBEA, AlgoAdaMBE} }
func ParallelAlgos() []string { return []string{AlgoParMBE, AlgoGMBE, AlgoParAdaMBE} }

// RunAlgorithm executes one named algorithm on g with the given budget and
// metrics hook (metrics only applies to the core variants), measuring peak
// heap. The elapsed time includes any ordering the algorithm performs,
// matching the paper's protocol (loading excluded, ordering included).
func RunAlgorithm(g *graph.Bipartite, algo string, cfg Config, metrics *core.Metrics) (RunResult, error) {
	deadline := time.Now().Add(cfg.tle())
	stop, peak := startHeapSampler()
	defer stop()

	start := time.Now()
	var res core.Result
	var err error
	switch algo {
	case AlgoBaseline, AlgoLN, AlgoBIT, AlgoAdaMBE, AlgoParAdaMBE:
		variant := map[string]core.Variant{
			AlgoBaseline: core.Baseline, AlgoLN: core.LN,
			AlgoBIT: core.BIT, AlgoAdaMBE: core.Ada, AlgoParAdaMBE: core.Ada,
		}[algo]
		og := order.Apply(g, order.DegreeAscending, 0)
		threads := 0
		if algo == AlgoParAdaMBE {
			threads = cfg.threads()
		}
		res, err = core.Enumerate(og, core.Options{
			Variant: variant, Threads: threads, Deadline: deadline,
			Context: cfg.ctx(), Metrics: metrics,
		})
	case AlgoFMBE:
		res, err = baselines.Run(g, baselines.FMBE, baselines.Options{Deadline: deadline, Context: cfg.ctx()})
	case AlgoPMBE:
		res, err = baselines.Run(g, baselines.PMBE, baselines.Options{Deadline: deadline, Context: cfg.ctx()})
	case AlgoOOMBEA:
		res, err = baselines.Run(g, baselines.OOMBEA, baselines.Options{Deadline: deadline, Context: cfg.ctx()})
	case AlgoParMBE:
		res, err = baselines.Run(g, baselines.ParMBE, baselines.Options{Deadline: deadline, Context: cfg.ctx(), Threads: cfg.threads()})
	case AlgoGMBE:
		res, err = baselines.Run(g, baselines.GMBE, baselines.Options{Deadline: deadline, Context: cfg.ctx(), Threads: cfg.threads()})
	case AlgoBBK:
		// BBK pins its root decomposition to the V ordering like the
		// AdaMBE family, so it gets the same ASC permutation.
		og := order.Apply(g, order.DegreeAscending, 0)
		res, err = baselines.Run(og, baselines.BBK, baselines.Options{Deadline: deadline, Context: cfg.ctx(), Metrics: metrics})
	default:
		return RunResult{}, fmt.Errorf("harness: unknown algorithm %q", algo)
	}
	elapsed := time.Since(start)
	if err != nil {
		return RunResult{}, err
	}
	return RunResult{
		Algorithm:  algo,
		Count:      res.Count,
		Elapsed:    elapsed,
		TimedOut:   res.TimedOut,
		StopReason: res.StopReason,
		PeakHeap:   peak(),
	}, nil
}

// startHeapSampler samples runtime heap usage in the background and
// returns a stop function and a peak getter (bytes). It forces a GC first
// so the baseline reflects live data.
func startHeapSampler() (stop func(), peak func() uint64) {
	runtime.GC()
	var max atomic.Uint64
	done := make(chan struct{})
	var wg sync.WaitGroup
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		for {
			cur := max.Load()
			if ms.HeapAlloc <= cur || max.CompareAndSwap(cur, ms.HeapAlloc) {
				break
			}
		}
	}
	sample()
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				sample()
			}
		}
	}()
	return func() {
			close(done)
			wg.Wait()
			sample()
		}, func() uint64 {
			return max.Load()
		}
}

// fmtDur renders a duration compactly for tables, with "TLE" annotation
// handled by callers.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return fmt.Sprintf("%dms", d.Milliseconds())
	}
}

func fmtRun(r RunResult) string {
	s := fmtDur(r.Elapsed)
	reason := r.StopReason
	if reason == core.StopNone && r.TimedOut { // legacy deadline-only callers
		reason = core.StopDeadline
	}
	switch reason {
	case core.StopDeadline:
		s = "TLE(" + s + ")"
	case core.StopCanceled:
		s = "canceled(" + s + ")"
	case core.StopMemoryBudget:
		s = "mem(" + s + ")"
	case core.StopPanic:
		s = "panic(" + s + ")"
	}
	return s
}

func fmtMB(bytes uint64) string {
	return fmt.Sprintf("%.1f", float64(bytes)/(1<<20))
}

// writeCSV dumps rows (first row = header) into CSVDir/name.csv when
// configured.
func writeCSV(cfg Config, name string, rows [][]string) error {
	if cfg.CSVDir == "" {
		return nil
	}
	if err := os.MkdirAll(cfg.CSVDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(cfg.CSVDir, name+".csv"))
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
