package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/baselines"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/order"
	"repro/internal/spool"
)

// BenchRun is one measured enumeration in the perf-trajectory file
// (BENCH_parallel.json): wall time plus the scheduler counters that explain
// it. Serial rows (threads = 1) have zero scheduler counters.
type BenchRun struct {
	Dataset       string  `json:"dataset"`
	Algorithm     string  `json:"algorithm"`
	Threads       int     `json:"threads"`
	WallMS        float64 `json:"wall_ms"`
	Count         int64   `json:"count"`
	TasksSpawned  int64   `json:"tasks_spawned"`
	TasksStolen   int64   `json:"tasks_stolen"`
	TasksInlined  int64   `json:"tasks_inlined"`
	MaxQueueDepth int64   `json:"max_queue_depth"`

	// Allocation profile of the run, from runtime.MemStats deltas taken
	// around the enumeration: allocator traffic (mallocs and bytes), not
	// live heap. Normalized per emitted biclique so rows are comparable
	// across datasets; the trajectory diff is what matters — an arena or
	// kernel regression shows up as a jump in allocs_per_biclique long
	// before it is visible in wall time.
	Allocs            int64   `json:"allocs"`
	AllocBytes        int64   `json:"alloc_bytes"`
	AllocsPerBiclique float64 `json:"allocs_per_biclique"`

	// SpeedupVsSerial is serial wall time over this row's wall time; set
	// on parallel rows only.
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`

	// Spool throughput fields, set only on the durable-emission row
	// (Spooled = true): what the sharded spool absorbed during the run
	// and the wall-time overhead relative to the same-thread unspooled
	// run above it. The overhead is the number the durability docs quote;
	// it is recorded, not asserted — wall-clock ratios on loaded CI
	// machines are too noisy for a hard gate.
	Spooled           bool    `json:"spooled,omitempty"`
	SpoolBytes        int64   `json:"spool_bytes,omitempty"`
	SpoolFrames       int64   `json:"spool_frames,omitempty"`
	SpoolMBPerSec     float64 `json:"spool_mb_per_sec,omitempty"`
	SpoolFramesPerSec float64 `json:"spool_frames_per_sec,omitempty"`
	SpoolOverheadPct  float64 `json:"spool_overhead_pct,omitempty"`
}

// BenchFile is the schema of BENCH_parallel.json. The file is regenerated
// by `mbebench -json` (see EXPERIMENTS.md); wall times are machine-specific
// but counts are not, which is what makes the file a useful trajectory:
// diffs show scheduling-behavior changes (spawn/steal/inline mix) exactly
// and performance changes approximately. The embedded Provenance says which
// commit, toolchain and machine produced the wall times.
type BenchFile struct {
	Tool string `json:"tool"`
	// Provenance fields are inlined at the top level of the JSON object —
	// including gomaxprocs and num_cpu, which say whether the machine
	// could show parallel scaling at all.
	Provenance
	TLESeconds float64      `json:"tle_seconds"`
	Gate       *ScalingGate `json:"scaling_gate,omitempty"`
	Runs       []BenchRun   `json:"runs"`
}

// ScalingGate is the trajectory's scaling assertion: ParAdaMBE at Threads
// on Dataset must reach MinSpeedup× the serial row. The spec travels in
// BENCH_parallel.json itself — regenerating the file re-reads the
// checked-in threshold, so tightening the gate is a one-line JSON diff.
// Enforcement is conditional on the machine: a recorder with fewer cores
// than Threads physically cannot show the speedup, so the gate records
// the observed ratio with enforced=false instead of failing bogusly
// (Reason says why). CI runners with enough cores enforce it hard.
type ScalingGate struct {
	Dataset    string  `json:"dataset"`
	Threads    int     `json:"threads"`
	MinSpeedup float64 `json:"min_speedup"`
	Observed   float64 `json:"observed_speedup,omitempty"`
	Enforced   bool    `json:"enforced"`
	Reason     string  `json:"reason,omitempty"`
}

// defaultScalingGate seeds the gate spec when outPath has no prior
// trajectory to inherit one from.
var defaultScalingGate = ScalingGate{Dataset: "GH", Threads: 8, MinSpeedup: 3.0}

// loadGateSpec recovers the gate spec (dataset/threads/threshold only)
// from an existing trajectory at path, falling back to the default.
func loadGateSpec(path string) ScalingGate {
	spec := defaultScalingGate
	data, err := os.ReadFile(path)
	if err != nil {
		return spec
	}
	var prior BenchFile
	if json.Unmarshal(data, &prior) != nil || prior.Gate == nil {
		return spec
	}
	g := *prior.Gate
	if g.Dataset == "" || g.Threads <= 0 || g.MinSpeedup <= 0 {
		return spec
	}
	return ScalingGate{Dataset: g.Dataset, Threads: g.Threads, MinSpeedup: g.MinSpeedup}
}

// benchThreadSweep is the ParAdaMBE width sweep recorded per dataset.
var benchThreadSweep = []int{2, 4, 8}

// benchDefaultDatasets are the two smallest registry entries — sized for
// the CI smoke job; override with Config.Datasets for fuller trajectories.
var benchDefaultDatasets = []string{"UL", "UF"}

// BenchParallel measures serial AdaMBE against the ParAdaMBE thread sweep
// on each selected dataset and writes the JSON trajectory to outPath. A
// parallel count differing from the serial reference — or any run ending
// early (TLE, cancellation) — is an error, so the CI smoke job fails on a
// scheduler correctness or budget regression, not just on crashes.
func BenchParallel(cfg Config, outPath string) error {
	// A parallel trajectory measured on one scheduler thread is noise:
	// every ParAdaMBE width collapses to ~1.0x serial and the file looks
	// like a scaling regression. Refuse loudly instead of recording it.
	if runtime.GOMAXPROCS(0) < 2 {
		return fmt.Errorf("harness: refusing to record a parallel trajectory at GOMAXPROCS=%d (NumCPU=%d): "+
			"ParAdaMBE cannot show scaling on one scheduler thread — run on a multi-core machine or raise GOMAXPROCS",
			runtime.GOMAXPROCS(0), runtime.NumCPU())
	}
	specs, err := cfg.selectSpecs(benchDefaultDatasets)
	if err != nil {
		return err
	}
	out := cfg.out()
	gate := loadGateSpec(outPath)
	file := BenchFile{
		Tool:       "mbebench -json",
		Provenance: CollectProvenance(),
		TLESeconds: cfg.tle().Seconds(),
		Gate:       &gate,
		Runs:       []BenchRun{},
	}

	// measureBBK records the serial BBK row: same wall/allocation columns
	// as the core rows (scheduler counters stay zero — BBK is serial), so
	// the trajectory tracks the pivot engine's perf alongside AdaMBE's.
	measureBBK := func(dataset string, g *graph.Bipartite) (BenchRun, error) {
		deadline := time.Now().Add(cfg.tle())
		var msBefore, msAfter runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		start := time.Now()
		res, err := baselines.Run(g, baselines.BBK, baselines.Options{
			Deadline: deadline,
			Context:  cfg.ctx(),
		})
		wall := time.Since(start)
		runtime.ReadMemStats(&msAfter)
		if err != nil {
			return BenchRun{}, fmt.Errorf("harness: %s on %s: %w", AlgoBBK, dataset, err)
		}
		if res.StopReason != core.StopNone {
			return BenchRun{}, fmt.Errorf("harness: %s on %s stopped early (%v); raise -tle for a comparable trajectory",
				AlgoBBK, dataset, res.StopReason)
		}
		run := BenchRun{
			Dataset:    dataset,
			Algorithm:  AlgoBBK,
			Threads:    1,
			WallMS:     float64(wall.Microseconds()) / 1e3,
			Count:      res.Count,
			Allocs:     int64(msAfter.Mallocs - msBefore.Mallocs),
			AllocBytes: int64(msAfter.TotalAlloc - msBefore.TotalAlloc),
		}
		if res.Count > 0 {
			run.AllocsPerBiclique = float64(run.Allocs) / float64(res.Count)
		}
		return run, nil
	}

	measure := func(dataset string, g *graph.Bipartite, algo string, threads int) (BenchRun, error) {
		var m core.Metrics
		var rec *obs.Recorder
		if cfg.LiveObs {
			rec = obs.NewRecorder(obs.RunInfo{
				Algorithm: algo, Dataset: dataset, Threads: threads,
				NU: g.NU(), NV: g.NV(), Edges: g.NumEdges(),
			})
			// Stays published until the next run replaces it, so a
			// -debug-addr poller always sees the latest (or final) state;
			// run_id tells pollers when the run rolled over.
			obs.Publish(rec)
		}
		deadline := time.Now().Add(cfg.tle())
		var msBefore, msAfter runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		start := time.Now()
		res, err := core.Enumerate(g, core.Options{
			Variant:  core.Ada,
			Threads:  threads,
			Deadline: deadline,
			Context:  cfg.ctx(),
			Metrics:  &m,
			Obs:      rec,
		})
		wall := time.Since(start)
		runtime.ReadMemStats(&msAfter)
		if err != nil {
			return BenchRun{}, fmt.Errorf("harness: %s on %s (t=%d): %w", algo, dataset, threads, err)
		}
		if res.StopReason != core.StopNone {
			return BenchRun{}, fmt.Errorf("harness: %s on %s (t=%d) stopped early (%v); raise -tle for a comparable trajectory",
				algo, dataset, threads, res.StopReason)
		}
		run := BenchRun{
			Dataset:       dataset,
			Algorithm:     algo,
			Threads:       threads,
			WallMS:        float64(wall.Microseconds()) / 1e3,
			Count:         res.Count,
			TasksSpawned:  m.TasksSpawned,
			TasksStolen:   m.TasksStolen,
			TasksInlined:  m.TasksInlined,
			MaxQueueDepth: m.MaxQueueDepth,
			Allocs:        int64(msAfter.Mallocs - msBefore.Mallocs),
			AllocBytes:    int64(msAfter.TotalAlloc - msBefore.TotalAlloc),
		}
		if res.Count > 0 {
			run.AllocsPerBiclique = float64(run.Allocs) / float64(res.Count)
		}
		return run, nil
	}

	// measureSpooled repeats the widest ParAdaMBE run with the durable
	// spool attached (internal/spool + internal/ckpt, exactly the `mbe
	// -out` path) and records what the spool absorbed: bytes, frames,
	// MB/s, frames/s, and the wall-time overhead vs the unspooled run.
	measureSpooled := func(dataset string, g *graph.Bipartite, threads int, baseMS float64, wantCount int64) (BenchRun, error) {
		tmp, err := os.MkdirTemp("", "mbebench-spool-")
		if err != nil {
			return BenchRun{}, err
		}
		defer os.RemoveAll(tmp)
		sess, err := ckpt.Open(ckpt.OpenOptions{
			Dir: filepath.Join(tmp, "spool"),
			Meta: spool.Meta{
				Version: 1, Tool: "mbebench", Algorithm: AlgoParAdaMBE, Ordering: "asc",
				Shards: threads, NU: g.NU(), NV: g.NV(), Edges: g.NumEdges(),
				GraphHash: spool.GraphSignature(g),
			},
		})
		if err != nil {
			return BenchRun{}, fmt.Errorf("harness: spooled %s: %w", dataset, err)
		}
		sess.Start()
		start := time.Now()
		res, err := core.Enumerate(g, core.Options{
			Variant:   core.Ada,
			Threads:   threads,
			Deadline:  time.Now().Add(cfg.tle()),
			Context:   cfg.ctx(),
			Sink:      sess.Sink(nil, threads),
			Frontier:  sess.Frontier(),
			StartRoot: sess.StartRoot(),
		})
		wall := time.Since(start)
		complete := err == nil && res.StopReason == core.StopNone
		if ferr := sess.Finish(complete); ferr != nil && err == nil {
			err = ferr
		}
		if err != nil {
			return BenchRun{}, fmt.Errorf("harness: spooled %s (t=%d): %w", dataset, threads, err)
		}
		if !complete {
			return BenchRun{}, fmt.Errorf("harness: spooled %s (t=%d) stopped early (%v); raise -tle for a comparable trajectory",
				dataset, threads, res.StopReason)
		}
		if res.Count != wantCount {
			return BenchRun{}, fmt.Errorf("harness: spooled %s (t=%d) counted %d, serial %d — durable-emission correctness regression",
				dataset, threads, res.Count, wantCount)
		}
		st := sess.Stats()
		run := BenchRun{
			Dataset: dataset, Algorithm: AlgoParAdaMBE, Threads: threads,
			WallMS: float64(wall.Microseconds()) / 1e3, Count: res.Count,
			Spooled: true, SpoolBytes: st.Bytes, SpoolFrames: st.Frames,
		}
		if sec := wall.Seconds(); sec > 0 {
			run.SpoolMBPerSec = float64(st.Bytes) / 1e6 / sec
			run.SpoolFramesPerSec = float64(st.Frames) / sec
		}
		if baseMS > 0 {
			run.SpoolOverheadPct = (run.WallMS - baseMS) / baseMS * 100
		}
		return run, nil
	}

	for _, spec := range specs {
		if err := cfg.ctx().Err(); err != nil {
			return err
		}
		g := order.Apply(spec.Build(), order.DegreeAscending, 0)

		serial, err := measure(spec.Acronym, g, AlgoAdaMBE, 1)
		if err != nil {
			return err
		}
		file.Runs = append(file.Runs, serial)
		fmt.Fprintf(out, "%-6s %-10s t=%d  %8.1fms  count=%d\n",
			spec.Acronym, serial.Algorithm, serial.Threads, serial.WallMS, serial.Count)

		bbk, err := measureBBK(spec.Acronym, g)
		if err != nil {
			return err
		}
		if bbk.Count != serial.Count {
			return fmt.Errorf("harness: BBK on %s counted %d, serial AdaMBE %d — enumeration correctness regression",
				spec.Acronym, bbk.Count, serial.Count)
		}
		file.Runs = append(file.Runs, bbk)
		fmt.Fprintf(out, "%-6s %-10s t=%d  %8.1fms  count=%d  allocs/bc=%.1f\n",
			spec.Acronym, bbk.Algorithm, bbk.Threads, bbk.WallMS, bbk.Count, bbk.AllocsPerBiclique)

		widestMS := serial.WallMS
		for _, t := range benchThreadSweep {
			run, err := measure(spec.Acronym, g, AlgoParAdaMBE, t)
			if err != nil {
				return err
			}
			if run.Count != serial.Count {
				return fmt.Errorf("harness: ParAdaMBE on %s (t=%d) counted %d, serial %d — scheduler correctness regression",
					spec.Acronym, t, run.Count, serial.Count)
			}
			if serial.WallMS > 0 {
				run.SpeedupVsSerial = serial.WallMS / run.WallMS
			}
			if spec.Acronym == gate.Dataset && t == gate.Threads {
				gate.Observed = run.SpeedupVsSerial
			}
			file.Runs = append(file.Runs, run)
			fmt.Fprintf(out, "%-6s %-10s t=%d  %8.1fms  %5.2fx  count=%d  spawned=%d stolen=%d inlined=%d maxq=%d allocs/bc=%.1f\n",
				spec.Acronym, run.Algorithm, run.Threads, run.WallMS, run.SpeedupVsSerial, run.Count,
				run.TasksSpawned, run.TasksStolen, run.TasksInlined, run.MaxQueueDepth, run.AllocsPerBiclique)
			widestMS = run.WallMS
		}

		spoolThreads := benchThreadSweep[len(benchThreadSweep)-1]
		spooled, err := measureSpooled(spec.Acronym, g, spoolThreads, widestMS, serial.Count)
		if err != nil {
			return err
		}
		file.Runs = append(file.Runs, spooled)
		fmt.Fprintf(out, "%-6s %-10s t=%d  %8.1fms  count=%d  spool=%dB %.1fMB/s %.0fframes/s overhead=%+.1f%%\n",
			spec.Acronym, spooled.Algorithm+"+spool", spooled.Threads, spooled.WallMS, spooled.Count,
			spooled.SpoolBytes, spooled.SpoolMBPerSec, spooled.SpoolFramesPerSec, spooled.SpoolOverheadPct)
	}

	// Gate evaluation. The trajectory is written even when the gate trips,
	// so a failing CI run still uploads the numbers that explain it.
	var gateErr error
	switch {
	case gate.Observed == 0:
		gate.Enforced = false
		gate.Reason = fmt.Sprintf("gate dataset %s (t=%d) not in this run set", gate.Dataset, gate.Threads)
	case runtime.NumCPU() < gate.Threads:
		gate.Enforced = false
		gate.Reason = fmt.Sprintf("num_cpu %d < gate threads %d: machine cannot show the speedup; recorded, not enforced",
			runtime.NumCPU(), gate.Threads)
	default:
		gate.Enforced = true
		if gate.Observed < gate.MinSpeedup {
			gateErr = fmt.Errorf("harness: scaling gate failed: ParAdaMBE on %s (t=%d) reached %.2fx serial, gate requires %.2fx",
				gate.Dataset, gate.Threads, gate.Observed, gate.MinSpeedup)
		}
	}
	if gate.Observed > 0 {
		fmt.Fprintf(out, "scaling gate: %s t=%d observed %.2fx (min %.2fx, enforced=%v)\n",
			gate.Dataset, gate.Threads, gate.Observed, gate.MinSpeedup, gate.Enforced)
	}

	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d runs)\n", outPath, len(file.Runs))
	return gateErr
}
