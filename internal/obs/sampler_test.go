package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// collectSink is a thread-safe in-memory Sink for tests.
type collectSink struct {
	mu     sync.Mutex
	events []Event
}

func (c *collectSink) Emit(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *collectSink) all() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

func (c *collectSink) byType(typ string) []Event {
	var out []Event
	for _, e := range c.all() {
		if e.Type == typ {
			out = append(out, e)
		}
	}
	return out
}

func TestSamplerEventSequence(t *testing.T) {
	r := NewRecorder(RunInfo{Algorithm: "AdaMBE", Dataset: "unit", Threads: 1, NV: 100})
	sink := &collectSink{}
	stop := StartSampler(r, SamplerOptions{Interval: 2 * time.Millisecond, Sink: sink})

	r.RunBegin(RunConfig{Workers: 1, Frontier: 100})
	p := r.Worker(0)
	for i := 0; i < 40; i++ {
		p.NodeLN()
		p.Biclique()
		p.RootAdvance(int64(i))
		time.Sleep(500 * time.Microsecond)
	}
	r.Finish("none")
	stop()
	stop() // idempotent

	events := sink.all()
	if len(events) < 3 {
		t.Fatalf("too few events: %d", len(events))
	}
	if events[0].Type != "run_start" {
		t.Fatalf("first event = %q, want run_start", events[0].Type)
	}
	if events[0].Algorithm != "AdaMBE" || events[0].Dataset != "unit" || events[0].NV != 100 {
		t.Fatalf("run_start payload wrong: %+v", events[0])
	}
	last := events[len(events)-1]
	if last.Type != "run_end" {
		t.Fatalf("last event = %q, want run_end", last.Type)
	}
	if last.StopReason != "none" || last.Nodes != 40 || last.Bicliques != 40 {
		t.Fatalf("run_end payload wrong: %+v", last)
	}

	samples := sink.byType("sample")
	if len(samples) == 0 {
		t.Fatal("no sample events emitted")
	}
	var prev int64 = -1
	for _, s := range samples {
		if s.Snap == nil {
			t.Fatal("sample without snapshot")
		}
		if s.Snap.Nodes < prev {
			t.Fatalf("sample nodes regressed: %d -> %d", prev, s.Snap.Nodes)
		}
		prev = s.Snap.Nodes
		if s.Run != r.RunID() {
			t.Fatalf("sample run id = %q, want %q", s.Run, r.RunID())
		}
	}

	// Phase transitions setup -> enumerate -> done must each appear.
	var seen []string
	for _, e := range sink.byType("phase") {
		seen = append(seen, e.PrevPhase+">"+e.Phase)
	}
	joined := strings.Join(seen, " ")
	if !strings.Contains(joined, "setup>enumerate") || !strings.Contains(joined, "enumerate>done") {
		t.Fatalf("phase transitions = %v", seen)
	}
}

func TestSamplerThroughputAndETA(t *testing.T) {
	r := NewRecorder(RunInfo{NV: 10})
	sink := &collectSink{}
	// Long interval: only the final forced sample fires, with a known delta.
	stop := StartSampler(r, SamplerOptions{Interval: time.Hour, Sink: sink})
	r.RunBegin(RunConfig{Workers: 1, Frontier: 10})
	p := r.Worker(0)
	for i := 0; i < 1000; i++ {
		p.NodeBit()
	}
	p.RootAdvance(4) // RootDone 5 of 10
	time.Sleep(5 * time.Millisecond)
	stop()

	samples := sink.byType("sample")
	if len(samples) != 1 {
		t.Fatalf("samples = %d, want exactly the final one", len(samples))
	}
	s := samples[0]
	if s.NodesPerSec <= 0 {
		t.Fatalf("NodesPerSec = %v, want > 0", s.NodesPerSec)
	}
	// f = 0.5 -> eta == elapsed, modulo the time between snapshot and check.
	if s.EtaMS <= 0 {
		t.Fatalf("EtaMS = %v, want > 0 at half frontier", s.EtaMS)
	}
	if s.Snap.RootDone != 5 {
		t.Fatalf("RootDone = %d, want 5", s.Snap.RootDone)
	}
}

func TestSamplerStallDetection(t *testing.T) {
	r := NewRecorder(RunInfo{Threads: 2})
	sink := &collectSink{}
	r.RunBegin(RunConfig{Workers: 2, Frontier: 10})
	r.Worker(0).SetState(StateBusy) // busy forever, no progress
	r.Worker(1).SetState(StateParked)
	stop := StartSampler(r, SamplerOptions{Interval: time.Millisecond, Sink: sink, StallAfter: 3})
	deadline := time.Now().Add(2 * time.Second)
	for len(sink.byType("worker_stall")) == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	stop()

	stalls := sink.byType("worker_stall")
	if len(stalls) == 0 {
		t.Fatal("no worker_stall for a progress-free busy worker")
	}
	for _, e := range stalls {
		if e.Worker == nil || *e.Worker != 0 {
			t.Fatalf("stall attributed to wrong worker: %+v", e)
		}
		if e.StalledMS <= 0 {
			t.Fatalf("stall without duration: %+v", e)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	w := 3
	in := []Event{
		{Type: "run_start", Run: "r1", Algorithm: "AdaMBE", Threads: 2},
		{Type: "sample", Run: "r1", TMS: 12.5, Snap: &Snapshot{RunID: "r1", Nodes: 7, Phase: "enumerate"}},
		{Type: "worker_stall", Run: "r1", Worker: &w, State: "busy", StalledMS: 5000},
		{Type: "run_end", Run: "r1", Nodes: 9, StopReason: "none"},
	}
	for _, e := range in {
		sink.Emit(e)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	out, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-tripped %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Type != in[i].Type || out[i].Run != in[i].Run {
			t.Fatalf("event %d = %+v, want %+v", i, out[i], in[i])
		}
	}
	if out[1].Snap == nil || out[1].Snap.Nodes != 7 {
		t.Fatalf("snapshot payload lost: %+v", out[1])
	}
	if out[2].Worker == nil || *out[2].Worker != 3 {
		t.Fatalf("worker payload lost: %+v", out[2])
	}
}

func TestReadEventsRejectsGarbage(t *testing.T) {
	if _, err := ReadEvents(strings.NewReader("{\"type\":\"sample\"}\nnot json\n")); err == nil {
		t.Fatal("malformed line must error")
	}
}

func TestMultiSink(t *testing.T) {
	a, b := &collectSink{}, &collectSink{}
	m := MultiSink(a, nil, b)
	m.Emit(Event{Type: "sample"})
	if len(a.all()) != 1 || len(b.all()) != 1 {
		t.Fatal("MultiSink did not fan out")
	}
}
