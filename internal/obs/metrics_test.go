package obs

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the le-inclusive bucket contract
// the same way internal/core's histBucket tests do: a value exactly on
// a bound lands in that bound's bucket, one ulp above spills into the
// next, and anything past the last bound lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, tc := range []struct {
		v    float64
		want int
	}{
		{0, 0}, {0.5, 0}, {1, 0}, // le="1" is inclusive
		{1.0001, 1}, {10, 1},
		{10.5, 2}, {100, 2},
		{100.5, 3}, {1e9, 3}, // +Inf
	} {
		if got := h.bucketIndex(tc.v); got != tc.want {
			t.Errorf("bucketIndex(%g) = %d, want %d", tc.v, got, tc.want)
		}
	}

	for _, v := range []float64{1, 10, 100, 101} {
		h.Observe(v)
	}
	if got := h.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	if got, want := h.Sum(), 212.0; got != want {
		t.Fatalf("Sum = %g, want %g", got, want)
	}
	for i, want := range []int64{1, 1, 1, 1} {
		if got := h.counts[i].Load(); got != want {
			t.Errorf("bucket %d holds %d, want %d", i, got, want)
		}
	}
}

// TestHistogramQuantileOracle drives Quantile against the exact sorted
// sample on seeded random data: the bucketed estimate must land within
// the width of the bucket containing the exact quantile — the best any
// fixed-bucket sketch can promise.
func TestHistogramQuantileOracle(t *testing.T) {
	bounds := ExpBuckets(0.001, 2, 18) // 1ms .. ~2min
	rng := rand.New(rand.NewSource(42))
	const n = 20000
	h := newHistogram(bounds)
	samples := make([]float64, n)
	for i := range samples {
		// Log-uniform over the bucket range plus a tail past the last
		// bound, so the +Inf clamp path is exercised too.
		v := 0.001 * pow(2, rng.Float64()*19)
		samples[i] = v
		h.Observe(v)
	}
	sort.Float64s(samples)

	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := samples[int(q*float64(n))-1]
		est := h.Quantile(q)
		// Tolerance: the full width of the bucket the exact value is in.
		i := sort.SearchFloat64s(bounds, exact)
		lo, hi := 0.0, bounds[len(bounds)-1]
		if i < len(bounds) {
			hi = bounds[i]
		}
		if i > 0 {
			lo = bounds[i-1]
		}
		if est < lo-1e-12 || est > hi+1e-12 {
			t.Errorf("Quantile(%g) = %g outside exact value %g's bucket [%g, %g]", q, est, exact, lo, hi)
		}
	}

	if got := newHistogram(bounds).Quantile(0.99); got != 0 {
		t.Errorf("Quantile on empty histogram = %g, want 0", got)
	}
}

func pow(b, e float64) float64 {
	r := 1.0
	for e >= 1 {
		r *= b
		e--
	}
	if e > 0 {
		// fractional exponent via exp2 approximation is overkill here;
		// linear blend keeps the sample spread log-ish, which is all the
		// test needs.
		r *= 1 + e*(b-1)
	}
	return r
}

// TestHistogramMergeOrderIndependence: the same observations sharded
// three ways and merged in every order must render identically — the
// property that makes per-worker (and per-process) shards sum into one
// truthful service histogram.
func TestHistogramMergeOrderIndependence(t *testing.T) {
	bounds := []float64{0.01, 0.1, 1, 10}
	rng := rand.New(rand.NewSource(7))
	shards := make([]*Histogram, 3)
	for i := range shards {
		shards[i] = newHistogram(bounds)
	}
	for i := 0; i < 5000; i++ {
		shards[i%3].Observe(rng.Float64() * 20)
	}

	render := func(h *Histogram) string {
		fam := &family{name: "m", kind: kindHistogram}
		var b strings.Builder
		h.write(&b, fam, "")
		return b.String()
	}
	merged := func(order []int) string {
		total := newHistogram(bounds)
		for _, i := range order {
			if err := total.Merge(shards[i]); err != nil {
				t.Fatal(err)
			}
		}
		return render(total)
	}

	want := merged([]int{0, 1, 2})
	for _, order := range [][]int{{2, 1, 0}, {1, 0, 2}, {2, 0, 1}} {
		if got := merged(order); got != want {
			t.Errorf("merge order %v diverged:\n%s\nvs\n%s", order, got, want)
		}
	}

	// Mismatched layouts must refuse, not silently corrupt.
	if err := newHistogram(bounds).Merge(newHistogram([]float64{1, 2})); err == nil {
		t.Error("merge across different bucket layouts did not error")
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines: the total count must be exact (each observation is one
// atomic add — none may be lost).
func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram([]float64{0.5})
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				// 0.75 is exactly representable, so the CAS-summed total
				// is exact regardless of accumulation order.
				h.Observe(float64(i%2) * 0.75)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("Count = %d, want %d", got, workers*per)
	}
	if got, want := h.Sum(), float64(workers*per/2)*0.75; got != want {
		t.Fatalf("Sum = %g, want %g", got, want)
	}
}

// TestRegistryExposition renders one of each metric kind and checks the
// Prometheus text format line by line.
func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("jobs_total", "total jobs").Add(3)
	reg.NewCounterVec("requests_total", "requests by route", "route", "code").
		With("/v1/jobs", "202").Add(2)
	reg.NewGauge("active", "active jobs").Set(5)
	reg.NewGaugeFunc("spool_bytes", "spool size", func() int64 { return 77 })
	h := reg.NewHistogram("latency_seconds", "request latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE jobs_total counter",
		"jobs_total 3",
		`requests_total{route="/v1/jobs",code="202"} 2`,
		"# TYPE active gauge",
		"active 5",
		"spool_bytes 77",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		"latency_seconds_sum 3.55",
		"latency_seconds_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryIdempotentRegistration: registering the same name again
// returns the same metric — the property that lets a relaunched server
// re-run its registration path without a duplicate panic.
func TestRegistryIdempotentRegistration(t *testing.T) {
	reg := NewRegistry()
	a := reg.NewCounter("c", "help")
	b := reg.NewCounter("c", "help")
	if a != b {
		t.Error("NewCounter twice returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("re-registered counter does not share state")
	}
	h1 := reg.NewHistogram("h", "help", nil)
	h2 := reg.NewHistogram("h", "help", nil)
	if h1 != h2 {
		t.Error("NewHistogram twice returned distinct histograms")
	}

	defer func() {
		if recover() == nil {
			t.Error("kind-mismatched re-registration did not panic")
		}
	}()
	reg.NewGauge("c", "now a gauge")
}

// TestDebugServerRestartIdempotent relaunches the debug server the way
// mbed does after SIGTERM-then-restart in tests: both generations must
// serve /metrics and /debug/vars without a duplicate-registration
// panic (expvar.Publish would panic; the Once guard and per-call mux
// must absorb it).
func TestDebugServerRestartIdempotent(t *testing.T) {
	for gen := 0; gen < 2; gen++ {
		addr, shutdown, err := ServeDebug("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		for _, path := range []string{"/metrics", "/debug/vars"} {
			resp, err := http.Get("http://" + addr + path)
			if err != nil {
				t.Fatalf("gen %d: GET %s: %v", gen, path, err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("gen %d: GET %s = %d", gen, path, resp.StatusCode)
			}
		}
		shutdown()
	}
}

// TestCounterVecConcurrent exercises the lazy child creation path under
// contention: every goroutine must land on the same child.
func TestCounterVecConcurrent(t *testing.T) {
	reg := NewRegistry()
	vec := reg.NewCounterVec("v", "help", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				vec.With(fmt.Sprint(j % 4)).Inc()
			}
		}()
	}
	wg.Wait()
	var total int64
	for j := 0; j < 4; j++ {
		total += vec.With(fmt.Sprint(j)).Value()
	}
	if total != 8000 {
		t.Fatalf("vec total = %d, want 8000", total)
	}
}
