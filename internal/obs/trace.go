package obs

import (
	"context"
	"runtime/trace"
)

// runtime/trace wrappers: the engines annotate coarse units of work —
// scheduler tasks and bitmap (BIT) subtrees, not individual nodes — so
// `go tool trace` shows where workers spend time and how steal/park
// behavior lines up with the user-region timeline. Capture a trace live
// from a running process via the /debug endpoint:
//
//	curl -o run.trace 'http://ADDR/debug/pprof/trace?seconds=10'
//	go tool trace run.trace
//
// All wrappers are no-ops costing one atomic load while tracing is off.

// TraceRegion opens a named user region; while tracing is off the
// returned region is runtime/trace's no-op singleton, so callers can
// defer End unconditionally.
func TraceRegion(name string) *trace.Region {
	return trace.StartRegion(context.Background(), name)
}

// TraceLog records a one-shot trace event (category/message) when tracing
// is enabled — used for scheduler steals, spawn declines, and stop trips.
func TraceLog(category, message string) {
	if trace.IsEnabled() {
		trace.Log(context.Background(), category, message)
	}
}
