package obs_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
)

func randomBipartite(t testing.TB, seed int64, nu, nv, m int) *graph.Bipartite {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{U: int32(rng.Intn(nu)), V: int32(rng.Intn(nv))}
	}
	g, err := graph.FromEdges(nu, nv, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func fetchProgress(t *testing.T, url string) (obs.Snapshot, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &snap); err != nil {
			t.Fatalf("bad progress JSON: %v\n%s", err, body)
		}
	}
	return snap, resp.StatusCode
}

// TestLiveProgressDuringRun is the tentpole's acceptance test: while a
// parallel enumeration is in flight, /debug/progress must expose non-empty,
// monotonically increasing node/biclique counts and per-worker states —
// without stopping or finishing the run.
func TestLiveProgressDuringRun(t *testing.T) {
	g := randomBipartite(t, 7, 400, 400, 14000)

	addr, shutdown, err := obs.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	url := fmt.Sprintf("http://%s/debug/progress", addr)

	rec := obs.NewRecorder(obs.RunInfo{
		Algorithm: "ParAdaMBE", Dataset: "live-test", Threads: 4,
		NU: g.NU(), NV: g.NV(), Edges: g.NumEdges(),
	})
	obs.Publish(rec)
	defer obs.Unpublish(rec)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan core.Result, 1)
	go func() {
		// The throttled handler stretches the run so the poller reliably
		// observes it mid-flight.
		res, _ := core.Enumerate(g, core.Options{
			Variant: core.Ada, Threads: 4, Context: ctx, Obs: rec,
			OnBiclique: func(L, R []int32) { time.Sleep(50 * time.Microsecond) },
		})
		done <- res
	}()

	// Poll until the run is visibly making progress.
	var first obs.Snapshot
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, code := fetchProgress(t, url)
		if code == http.StatusOK && snap.Nodes > 0 && snap.Phase == "enumerate" {
			first = snap
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run never became visible via /debug/progress (code %d, snap %+v)", code, snap)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if first.RunID == "" || first.Algorithm != "ParAdaMBE" || first.Dataset != "live-test" {
		t.Fatalf("first poll missing identity: %+v", first)
	}
	if len(first.Workers) != 4 {
		t.Fatalf("worker rows = %d, want 4", len(first.Workers))
	}
	valid := map[string]bool{"idle": true, "busy": true, "steal": true, "park": true, "done": true}
	for _, w := range first.Workers {
		if !valid[w.State] {
			t.Fatalf("invalid worker state %q in %+v", w.State, first.Workers)
		}
	}

	// Second poll mid-run: counters must be monotone, and strictly advance
	// within the window while workers are enumerating.
	var second obs.Snapshot
	for {
		snap, code := fetchProgress(t, url)
		if code != http.StatusOK || snap.RunID != first.RunID {
			t.Fatalf("run disappeared mid-poll (code %d)", code)
		}
		if snap.Nodes < first.Nodes || snap.Bicliques < first.Bicliques || snap.RootDone < first.RootDone {
			t.Fatalf("progress regressed: %+v -> %+v", first, snap)
		}
		if snap.Nodes > first.Nodes && snap.Phase == "enumerate" {
			second = snap
			break
		}
		if snap.Phase == "done" || time.Now().After(deadline) {
			// The run outpaced the poller; monotonicity was still verified.
			second = snap
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if second.ElapsedMS < first.ElapsedMS {
		t.Fatalf("elapsed went backwards: %v -> %v", first.ElapsedMS, second.ElapsedMS)
	}

	// Cancel and confirm the terminal snapshot is still readable with the
	// final stop reason.
	cancel()
	res := <-done
	final := rec.Snapshot()
	if final.Phase != "done" {
		t.Fatalf("phase after run = %q, want done", final.Phase)
	}
	if final.StopReason != res.StopReason.String() {
		t.Fatalf("final stop reason %q != result %q", final.StopReason, res.StopReason)
	}
	if final.Bicliques < res.Count {
		t.Fatalf("probe bicliques %d < delivered count %d", final.Bicliques, res.Count)
	}
}

// TestSerialRunPopulatesRecorder covers the serial engine path: worker 0
// carries the whole run and the root frontier reaches |V|.
func TestSerialRunPopulatesRecorder(t *testing.T) {
	g := randomBipartite(t, 11, 120, 120, 1800)
	rec := obs.NewRecorder(obs.RunInfo{Algorithm: "AdaMBE", Threads: 1, NV: g.NV()})
	res, err := core.Enumerate(g, core.Options{Variant: core.Ada, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	s := rec.Snapshot()
	if s.Bicliques != res.Count {
		t.Fatalf("probe bicliques %d != count %d", s.Bicliques, res.Count)
	}
	if s.Nodes == 0 || s.NodesBit == 0 {
		t.Fatalf("node split empty: %+v", s)
	}
	if s.RootDone != int64(g.NV()) {
		t.Fatalf("RootDone = %d, want %d", s.RootDone, g.NV())
	}
	if s.Phase != "done" || s.StopReason != "none" {
		t.Fatalf("terminal snapshot = %+v", s)
	}
}

// TestOverheadSmoke is the <5%-when-disabled guard's tripwire form: the
// enabled recorder must not blow up AdaMBE wall time. The bound is
// deliberately loose (2x) because single-process A/B timing on shared CI
// hardware is noisy; the real claim — a nil probe is one predictable
// branch — is structural, and this test exists to catch an accidental
// lock, allocation, or syscall creeping onto the hot path.
func TestOverheadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing smoke")
	}
	if raceEnabled {
		t.Skip("race instrumentation multiplies atomic costs; timing bound only meaningful unraced")
	}
	g := randomBipartite(t, 3, 500, 500, 15000)

	run := func(rec *obs.Recorder) time.Duration {
		best := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			res, err := core.Enumerate(g, core.Options{Variant: core.Ada, Obs: rec})
			if err != nil {
				t.Fatal(err)
			}
			if res.Elapsed < best {
				best = res.Elapsed
			}
		}
		return best
	}

	disabled := run(nil)
	enabled := run(obs.NewRecorder(obs.RunInfo{Algorithm: "AdaMBE"}))
	t.Logf("disabled %v, enabled %v", disabled, enabled)
	if enabled > 2*disabled && enabled-disabled > 50*time.Millisecond {
		t.Fatalf("observability overhead too high: disabled %v, enabled %v", disabled, enabled)
	}
}
