package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
)

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("bad JSON from %s: %v\n%s", url, err, body)
		}
	}
	return resp.StatusCode
}

func TestServeDebugProgress(t *testing.T) {
	addr, shutdown, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	base := fmt.Sprintf("http://%s", addr)

	// No run published: 404 with a JSON body pollers can retry on.
	var idle struct {
		Active bool `json:"active"`
	}
	if code := getJSON(t, base+"/debug/progress", &idle); code != http.StatusNotFound {
		t.Fatalf("idle /debug/progress = %d, want 404", code)
	}

	r := NewRecorder(RunInfo{Algorithm: "ParAdaMBE", Dataset: "http", Threads: 2})
	r.RunBegin(RunConfig{Workers: 2, Frontier: 50})
	r.Worker(0).NodeLN()
	r.Worker(0).Biclique()
	Publish(r)
	defer Unpublish(r)

	var snap Snapshot
	if code := getJSON(t, base+"/debug/progress", &snap); code != http.StatusOK {
		t.Fatalf("live /debug/progress = %d, want 200", code)
	}
	if snap.RunID != r.RunID() || snap.Nodes != 1 || snap.Bicliques != 1 {
		t.Fatalf("live snapshot = %+v", snap)
	}
	if len(snap.Workers) != 2 {
		t.Fatalf("worker rows = %d, want 2", len(snap.Workers))
	}

	// expvar carries the same snapshot under mbe.progress.
	var vars struct {
		Progress *Snapshot `json:"mbe.progress"`
	}
	if code := getJSON(t, base+"/debug/vars", &vars); code != http.StatusOK {
		t.Fatalf("/debug/vars = %d, want 200", code)
	}
	if vars.Progress == nil || vars.Progress.RunID != r.RunID() {
		t.Fatalf("expvar mbe.progress = %+v", vars.Progress)
	}

	// pprof index must be mounted.
	resp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d, want 200", resp.StatusCode)
	}
}

// TestServeDebugShutdownDrains pins the graceful-shutdown contract: an
// in-flight request is allowed to complete (bounded drain, not an abrupt
// connection reset), and after shutdown returns the listener is gone.
func TestServeDebugShutdownDrains(t *testing.T) {
	addr, shutdown, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := fmt.Sprintf("http://%s", addr)

	// Park a request inside a handler when shutdown fires: /debug/progress
	// responds fast, so gate on entry instead via a slow body read — start
	// the request, then shut down while its response is still streaming.
	started := make(chan struct{})
	result := make(chan error, 1)
	go func() {
		resp, err := http.Get(base + "/debug/progress")
		if err != nil {
			close(started)
			result <- err
			return
		}
		close(started)
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		result <- err
	}()
	<-started
	shutdown() // must drain the in-flight request, then close

	if err := <-result; err != nil {
		t.Fatalf("in-flight request failed across shutdown: %v", err)
	}
	// The listener must be gone: a fresh connection is refused.
	if _, err := net.Dial("tcp", addr); err == nil {
		t.Fatal("listener still accepting connections after shutdown")
	}
}

func TestPublishNewerWins(t *testing.T) {
	a := NewRecorder(RunInfo{Dataset: "a"})
	b := NewRecorder(RunInfo{Dataset: "b"})
	Publish(a)
	Publish(b)
	Unpublish(a) // stale unpublish must not retire b
	if Active() != b {
		t.Fatal("stale Unpublish retired the newer run")
	}
	Unpublish(b)
	if Active() != nil {
		t.Fatal("Unpublish did not clear the active run")
	}
}
