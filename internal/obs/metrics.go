package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the service-metrics half of the package: a small,
// stdlib-only metrics registry (counters, gauges, fixed-bucket
// histograms) exposed in the Prometheus text exposition format. It is
// the aggregate complement of the per-run Recorder above — a Recorder
// describes one enumeration in flight, the Registry describes a process
// serving many of them (the mbed daemon's /metrics endpoint).
//
// Design constraints, matching the probe layer's:
//
//   - Hot-path updates are lock-free: counters and gauges are one
//     atomic add; a histogram observation is one binary search over a
//     small fixed bound slice plus one atomic add (and a CAS loop for
//     the running sum). No allocation after registration.
//   - Histograms merge order-independently: bucket counts and sums are
//     plain sums, so shards recorded by independent workers (or
//     processes, in the distributed-enumeration roadmap item) combine
//     to the same totals in any order.
//   - Registration is idempotent: registering a name twice returns the
//     existing metric, so a daemon that tears its debug server down on
//     SIGTERM and relaunches it cannot hit a duplicate-registration
//     panic the way expvar.Publish would.

// A Registry holds a process's (or server's) metric families and
// renders them as Prometheus text exposition. Create one per server
// (tests run many servers per process); standalone tools share Default.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// Default is the process-wide registry standalone tools (mbe, mbebench
// -debug-addr) expose at /metrics on the debug mux. The mbed daemon
// uses its own per-Server registry instead.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

type familyKind int

const (
	kindCounter familyKind = iota
	kindGauge
	kindHistogram
)

func (k familyKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric family: an unlabeled singleton or a set of
// labeled children, rendered together under one HELP/TYPE header.
type family struct {
	name   string
	help   string
	kind   familyKind
	labels []string

	mu       sync.RWMutex
	children map[string]child // label-value key -> child
	order    []string         // insertion order of keys, for stable output
	single   child            // the unlabeled child (len(labels) == 0)
}

// child is the value slot a family variant points at.
type child interface {
	write(w io.Writer, fam *family, labelPairs string)
}

// register returns the family for name, creating it on first use.
// Re-registering an existing name with the same kind and label arity is
// an idempotent no-op returning the existing family; a kind or label
// mismatch is a programming error worth failing loudly over.
func (g *Registry) register(name, help string, kind familyKind, labels []string) *family {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.byName[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s with %d labels (was %s with %d)",
				name, kind, len(labels), f.kind, len(f.labels)))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels,
		children: make(map[string]child)}
	g.byName[name] = f
	g.families = append(g.families, f)
	return f
}

// --- counters --------------------------------------------------------

// Counter is a monotone event count.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotone).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) write(w io.Writer, fam *family, labelPairs string) {
	fmt.Fprintf(w, "%s%s %d\n", fam.name, labelPairs, c.Value())
}

// NewCounter registers (or returns the existing) unlabeled counter.
func (g *Registry) NewCounter(name, help string) *Counter {
	f := g.register(name, help, kindCounter, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single == nil {
		f.single = &Counter{}
	}
	return f.single.(*Counter)
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// NewCounterVec registers (or returns the existing) labeled counter
// family.
func (g *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: g.register(name, help, kindCounter, labels)}
}

// With returns the counter for the given label values (created on first
// use), in the order the labels were declared.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() child { return &Counter{} }).(*Counter)
}

// --- gauges ----------------------------------------------------------

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) write(w io.Writer, fam *family, labelPairs string) {
	fmt.Fprintf(w, "%s%s %d\n", fam.name, labelPairs, g.Value())
}

// NewGauge registers (or returns the existing) unlabeled gauge.
func (g *Registry) NewGauge(name, help string) *Gauge {
	f := g.register(name, help, kindGauge, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single == nil {
		f.single = &Gauge{}
	}
	return f.single.(*Gauge)
}

// gaugeFunc samples a callback at exposition time — for values some
// other subsystem already tracks (admission load, say) where mirroring
// them into a Gauge would just invite drift.
type gaugeFunc struct{ fn func() int64 }

func (g gaugeFunc) write(w io.Writer, fam *family, labelPairs string) {
	fmt.Fprintf(w, "%s%s %d\n", fam.name, labelPairs, g.fn())
}

// NewGaugeFunc registers a gauge whose value is read from fn at scrape
// time. fn must be safe to call from any goroutine. Re-registering the
// same name replaces the callback (the restart-idempotency contract:
// a relaunched server re-binds its fresh state).
func (g *Registry) NewGaugeFunc(name, help string, fn func() int64) {
	f := g.register(name, help, kindGauge, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.single = gaugeFunc{fn: fn}
}

// --- histograms ------------------------------------------------------

// DefLatencyBuckets is the default request/job latency layout, in
// seconds: exponential from 5 ms to ~2 min, wide enough for both a
// status read and a multi-attempt enumeration job.
var DefLatencyBuckets = []float64{
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// ExpBuckets builds n exponential bucket bounds: start, start·factor,
// start·factor², …
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Histogram is a fixed-bucket histogram with lock-free observation.
// Bounds are inclusive upper bounds (Prometheus `le` semantics); an
// implicit +Inf bucket catches everything above the last bound. Counts
// and the running sum are plain sums, so Merge is order-independent.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last = +Inf
	sumBits atomic.Uint64  // float64 bits of the running sum
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be sorted ascending")
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// NewHistogram registers (or returns the existing) unlabeled histogram.
// nil bounds select DefLatencyBuckets.
func (g *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	f := g.register(name, help, kindHistogram, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single == nil {
		f.single = newHistogram(bounds)
	}
	return f.single.(*Histogram)
}

// HistogramVec is a histogram family keyed by label values; every child
// shares the same bucket layout, which is what makes children (and
// scrapes of restarted shards) mergeable.
type HistogramVec struct {
	f      *family
	bounds []float64
}

// NewHistogramVec registers (or returns the existing) labeled histogram
// family. nil bounds select DefLatencyBuckets.
func (g *Registry) NewHistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: g.register(name, help, kindHistogram, labels), bounds: bounds}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() child { return newHistogram(v.bounds) }).(*Histogram)
}

// bucketIndex returns the index of the bucket v falls in: the first
// bound >= v (le-inclusive), or the +Inf slot.
func (h *Histogram) bucketIndex(v float64) int {
	return sort.SearchFloat64s(h.bounds, v)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[h.bucketIndex(v)].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Merge folds o's observations into h. Merging is commutative and
// associative — bucket counts and sums are plain sums — so shards can
// combine in any order and reach identical totals. The bucket layouts
// must match.
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil {
		return nil
	}
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("obs: merging histograms with %d vs %d buckets", len(h.bounds), len(o.bounds))
	}
	for i, b := range h.bounds {
		if b != o.bounds[i] {
			return fmt.Errorf("obs: merging histograms with different bounds at %d (%g vs %g)", i, b, o.bounds[i])
		}
	}
	for i := range h.counts {
		h.counts[i].Add(o.counts[i].Load())
	}
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + o.Sum())
		if h.sumBits.CompareAndSwap(old, next) {
			return nil
		}
	}
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the bucket holding the target rank. The
// estimate's error is bounded by that bucket's width; values landing in
// the +Inf bucket clamp to the last finite bound. Returns 0 with no
// observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i == len(h.bounds) { // +Inf bucket: clamp
				return h.bounds[len(h.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + frac*(h.bounds[i]-lower)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) write(w io.Writer, fam *family, labelPairs string) {
	// Per Prometheus text exposition: cumulative le buckets, then _sum
	// and _count. The label set gains `le` inside the existing braces.
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name, addLabel(labelPairs, "le", formatFloat(b)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name, addLabel(labelPairs, "le", "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", fam.name, labelPairs, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", fam.name, labelPairs, cum)
}

// --- family plumbing -------------------------------------------------

// vecKeySep separates label values in the child-map key; label values
// containing it are escaped at render time anyway, and the separator
// cannot produce key collisions for printable values.
const vecKeySep = "\x1f"

func (f *family) child(values []string, make func() child) child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q takes %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, vecKeySep)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c = make()
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// labelPairs renders a child's key as {k="v",...}; empty for the
// unlabeled singleton.
func (f *family) labelPairs(key string) string {
	if len(f.labels) == 0 {
		return ""
	}
	values := strings.Split(key, vecKeySep)
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range f.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l, escapeLabel(values[i]))
	}
	b.WriteByte('}')
	return b.String()
}

// addLabel inserts one more k="v" pair into an existing (possibly
// empty) label-pairs string.
func addLabel(pairs, k, v string) string {
	kv := fmt.Sprintf(`%s="%s"`, k, escapeLabel(v))
	if pairs == "" {
		return "{" + kv + "}"
	}
	return pairs[:len(pairs)-1] + "," + kv + "}"
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// formatFloat renders a float the way Prometheus expects (no exponent
// for typical values, no trailing zeros).
func formatFloat(f float64) string {
	switch {
	case math.IsInf(f, 1):
		return "+Inf"
	case math.IsInf(f, -1):
		return "-Inf"
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", f), "0"), ".")
}

// WritePrometheus renders every family in registration order.
func (g *Registry) WritePrometheus(w io.Writer) {
	g.mu.Lock()
	fams := make([]*family, len(g.families))
	copy(fams, g.families)
	g.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		f.mu.RLock()
		if f.single != nil {
			f.single.write(w, f, "")
		}
		for _, key := range f.order {
			f.children[key].write(w, f, f.labelPairs(key))
		}
		f.mu.RUnlock()
	}
}

// Handler serves the registry as Prometheus text exposition
// (content-type version 0.0.4), the GET /metrics endpoint.
func (g *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		g.WritePrometheus(w)
	})
}
