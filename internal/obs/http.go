package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// active is the Recorder the /debug endpoint and expvar currently expose.
// One run is active at a time (cmds and the bench harness publish each run
// for its duration); Publish/Unpublish are cheap atomic swaps.
var active atomic.Pointer[Recorder]

// Publish makes r the process's active run for /debug/progress and expvar.
func Publish(r *Recorder) {
	if r != nil {
		active.Store(r)
	}
}

// Unpublish retires r if it is still the active run (a newer Publish wins).
func Unpublish(r *Recorder) {
	if r != nil {
		active.CompareAndSwap(r, nil)
	}
}

// Active returns the currently published Recorder, or nil.
func Active() *Recorder { return active.Load() }

var expvarOnce sync.Once

// publishExpvar registers the live-progress expvar exactly once per
// process (expvar.Publish panics on duplicates).
func publishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("mbe.progress", expvar.Func(func() any {
			r := Active()
			if r == nil {
				return nil
			}
			return r.Snapshot()
		}))
	})
}

// progressHandler serves the active run's Snapshot as JSON. 404 with a
// JSON body while no run is published, so pollers can retry cheaply.
func progressHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	r := Active()
	if r == nil {
		w.WriteHeader(http.StatusNotFound)
		_, _ = w.Write([]byte(`{"active":false}` + "\n"))
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(r.Snapshot())
}

// DebugMux returns the /debug handler tree:
//
//	/metrics          — Default registry, Prometheus text exposition
//	/debug/progress   — live Snapshot of the published run (JSON)
//	/debug/vars       — expvar (includes mbe.progress)
//	/debug/pprof/...  — net/http/pprof (profile, heap, trace, ...)
//
// The mux is freshly built per call and the expvar side is Once-guarded,
// so tearing a debug server down (SIGTERM) and relaunching it never
// hits a duplicate-registration panic — the restart-idempotency
// contract TestDebugServerRestartIdempotent pins.
func DebugMux() *http.ServeMux {
	publishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/metrics", Default.Handler())
	mux.HandleFunc("/debug/progress", progressHandler)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ShutdownTimeout bounds how long a debug (or mbed) server drains
// in-flight requests on shutdown: long enough for a progress poll or a
// small pprof read to finish, short enough that exiting never hangs on
// an abandoned connection (a stuck `curl /debug/pprof/trace`, say).
const ShutdownTimeout = 3 * time.Second

// ServeDebug listens on addr and serves DebugMux in a background
// goroutine. It returns the bound address (useful with ":0") and a
// shutdown function. Serving errors after a successful bind are dropped:
// the debug endpoint must never take the enumeration down with it.
func ServeDebug(addr string) (bound string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: DebugMux()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { ShutdownServer(srv, ShutdownTimeout) }, nil
}

// ShutdownServer gracefully drains srv: the listener closes immediately
// (no new connections), in-flight requests get up to timeout to finish,
// and whatever is still open after that is force-closed so no listener
// or connection outlives the shutdown call. Shared by the cmd/mbe and
// cmd/mbebench -debug-addr endpoints and the mbed daemon.
func ShutdownServer(srv *http.Server, timeout time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		// Drain deadline hit (or listener already gone): hard-close the
		// stragglers rather than leak them.
		_ = srv.Close()
	}
}
