package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Event is one structured observability record. Events form a single flat
// schema so a JSONL log is trivially greppable and decodable without
// type-dispatch; fields irrelevant to an event type are omitted. Types:
//
//	run_start    — sampler attached: static run info (algorithm, dataset,
//	               threads, graph shape), wall-clock Time.
//	sample       — periodic progress: the full Snapshot plus derived
//	               throughput (nodes/s, bicliques/s over the last window)
//	               and the root-frontier ETA.
//	phase        — the run phase changed ("load" → "enumerate" → "done").
//	worker_stall — a worker reported busy made no counter progress for
//	               StallAfter consecutive samples.
//	run_end      — sampler detached: final totals and stop reason.
type Event struct {
	Type string `json:"type"`
	Run  string `json:"run,omitempty"`
	// Time is the wall-clock RFC3339 stamp (run_start/run_end only); TMS is
	// milliseconds since the recorder was created (every event).
	Time string  `json:"time,omitempty"`
	TMS  float64 `json:"t_ms"`

	// run_start payload.
	Algorithm string `json:"algorithm,omitempty"`
	Dataset   string `json:"dataset,omitempty"`
	Threads   int    `json:"threads,omitempty"`
	NU        int    `json:"nu,omitempty"`
	NV        int    `json:"nv,omitempty"`
	Edges     int64  `json:"edges,omitempty"`

	// phase payload (also set on run_start/run_end).
	Phase     string `json:"phase,omitempty"`
	PrevPhase string `json:"prev_phase,omitempty"`

	// sample payload.
	Snap            *Snapshot `json:"snap,omitempty"`
	NodesPerSec     float64   `json:"nodes_per_s,omitempty"`
	BicliquesPerSec float64   `json:"bicliques_per_s,omitempty"`
	// EtaMS estimates remaining run time from the root-frontier fraction;
	// absent until the frontier has moved. The enumeration tree is skewed,
	// so this is an order-of-magnitude progress signal, not a promise.
	EtaMS float64 `json:"eta_ms,omitempty"`

	// worker_stall payload.
	Worker    *int    `json:"worker,omitempty"`
	State     string  `json:"state,omitempty"`
	StalledMS float64 `json:"stalled_ms,omitempty"`

	// run_end payload.
	Nodes      int64  `json:"nodes,omitempty"`
	Bicliques  int64  `json:"bicliques,omitempty"`
	StopReason string `json:"stop_reason,omitempty"`
}

// Sink receives observability events. Implementations must be safe for
// concurrent use; the sampler serializes its own emissions but multiple
// samplers may share one sink.
type Sink interface {
	Emit(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Emit calls f.
func (f SinkFunc) Emit(e Event) { f(e) }

// MultiSink fans an event out to several sinks (nils skipped).
func MultiSink(sinks ...Sink) Sink {
	live := sinks[:0]
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	return SinkFunc(func(e Event) {
		for _, s := range live {
			s.Emit(e)
		}
	})
}

// JSONLSink writes one JSON object per line. Writes are serialized; the
// first write error is retained (and further events dropped) rather than
// failing the enumeration it observes.
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

// NewJSONLSink wraps w in a buffered JSONL event writer. Call Flush (or
// Close on the underlying file) when the run ends.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

// Emit writes e as one JSON line.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	data, err := json.Marshal(e)
	if err != nil {
		s.err = err
		return
	}
	data = append(data, '\n')
	if _, err := s.w.Write(data); err != nil {
		s.err = err
	}
}

// Flush drains the buffer and returns the first error seen.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

// ReadEvents decodes a JSONL event log (as written by JSONLSink). Blank
// lines are skipped; a malformed line aborts with an error so truncated
// logs are noticed rather than silently half-read.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return out, err
		}
		out = append(out, e)
	}
	return out, sc.Err()
}
