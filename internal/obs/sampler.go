package obs

import (
	"sync"
	"time"
)

// SamplerOptions configures StartSampler.
type SamplerOptions struct {
	// Interval between samples; default 1s.
	Interval time.Duration
	// Sink receives every event; nil discards (OnSample may still observe).
	Sink Sink
	// OnSample, if non-nil, additionally receives each sample event — the
	// hook cmd/mbe's -progress line printing rides on.
	OnSample func(Event)
	// StallAfter is how many consecutive zero-progress samples a busy
	// worker tolerates before a worker_stall event fires; default 5,
	// negative disables.
	StallAfter int
}

// StartSampler launches the progress sampler for r: every Interval it
// snapshots the recorder, derives throughput over the window and the
// root-frontier ETA, emits a sample event, detects stalled workers, and
// turns phase changes into phase events. A run_start event is emitted
// immediately; the returned stop function emits a final sample plus
// run_end and waits for the goroutine to exit (idempotent).
func StartSampler(r *Recorder, opt SamplerOptions) (stop func()) {
	if opt.Interval <= 0 {
		opt.Interval = time.Second
	}
	if opt.StallAfter == 0 {
		opt.StallAfter = 5
	}
	emit := func(e Event) {
		e.Run = r.RunID()
		if opt.Sink != nil {
			opt.Sink.Emit(e)
		}
		if opt.OnSample != nil && e.Type == "sample" {
			opt.OnSample(e)
		}
	}
	tms := func() float64 {
		return float64(time.Since(r.Started()).Microseconds()) / 1e3
	}

	info := r.Info()
	emit(Event{
		Type: "run_start", Time: time.Now().UTC().Format(time.RFC3339Nano),
		TMS: tms(), Algorithm: info.Algorithm, Dataset: info.Dataset,
		Threads: info.Threads, NU: info.NU, NV: info.NV, Edges: info.Edges,
		Phase: r.Phase(),
	})

	s := &sampler{r: r, opt: opt, emit: emit, tms: tms, done: make(chan struct{})}
	s.prev = r.Snapshot()
	s.prevAt = time.Now()
	s.lastPhase = s.prev.Phase
	s.wg.Add(1)
	go s.loop()

	var once sync.Once
	return func() {
		once.Do(func() {
			close(s.done)
			s.wg.Wait()
			final := s.sample() // one closing sample so short runs still record data
			emit(Event{
				Type: "run_end", Time: time.Now().UTC().Format(time.RFC3339Nano),
				TMS: tms(), Phase: final.Phase, Nodes: final.Nodes,
				Bicliques: final.Bicliques, StopReason: final.StopReason,
			})
		})
	}
}

type sampler struct {
	r    *Recorder
	opt  SamplerOptions
	emit func(Event)
	tms  func() float64
	done chan struct{}
	wg   sync.WaitGroup

	prev      Snapshot
	prevAt    time.Time
	lastPhase string
	stalls    []int // consecutive zero-progress samples per worker
}

func (s *sampler) loop() {
	defer s.wg.Done()
	tick := time.NewTicker(s.opt.Interval)
	defer tick.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-tick.C:
			s.sample()
		}
	}
}

// sample takes one snapshot, emits phase/sample/stall events, and rolls
// the throughput window forward.
func (s *sampler) sample() Snapshot {
	snap := s.r.Snapshot()
	now := time.Now()

	if snap.Phase != s.lastPhase {
		s.emit(Event{Type: "phase", TMS: s.tms(), Phase: snap.Phase, PrevPhase: s.lastPhase})
		s.lastPhase = snap.Phase
	}

	dt := now.Sub(s.prevAt).Seconds()
	ev := Event{Type: "sample", TMS: s.tms(), Snap: &snap}
	if dt > 0 {
		ev.NodesPerSec = float64(snap.Nodes-s.prev.Nodes) / dt
		ev.BicliquesPerSec = float64(snap.Bicliques-s.prev.Bicliques) / dt
	}
	// Root-frontier ETA: elapsed scaled by the unentered fraction of the
	// first enumeration-tree level.
	if snap.RootTotal > 0 && snap.RootDone > 0 && snap.Phase == "enumerate" {
		f := float64(snap.RootDone) / float64(snap.RootTotal)
		if f < 1 {
			ev.EtaMS = snap.ElapsedMS * (1 - f) / f
		}
	}
	s.emit(ev)
	s.detectStalls(snap)

	s.prev = snap
	s.prevAt = now
	return snap
}

// detectStalls flags workers that stay busy across StallAfter samples
// without any counter movement — the straggler signal per-task progress
// counters exist for.
func (s *sampler) detectStalls(snap Snapshot) {
	if s.opt.StallAfter < 0 || snap.Phase != "enumerate" {
		return
	}
	for len(s.stalls) < len(snap.Workers) {
		s.stalls = append(s.stalls, 0)
	}
	for i, w := range snap.Workers {
		progressed := i >= len(s.prev.Workers) ||
			w.Nodes != s.prev.Workers[i].Nodes ||
			w.Bicliques != s.prev.Workers[i].Bicliques ||
			w.Tasks != s.prev.Workers[i].Tasks
		if w.State != StateBusy.String() || progressed {
			s.stalls[i] = 0
			continue
		}
		s.stalls[i]++
		if s.stalls[i] == s.opt.StallAfter {
			id := w.ID
			s.emit(Event{
				Type: "worker_stall", TMS: s.tms(), Worker: &id, State: w.State,
				StalledMS: float64(s.opt.StallAfter) * s.opt.Interval.Seconds() * 1e3,
			})
		}
	}
}
