package obs

import (
	"testing"
	"time"

	"repro/internal/tle"
)

// TestNilSafety: every probe and recorder method used on the engine hot
// paths must be a no-op on a nil receiver — that IS the disabled path.
func TestNilSafety(t *testing.T) {
	var p *WorkerProbe
	p.NodeLN()
	p.NodeBit()
	p.Biclique()
	p.Bitmap()
	p.TaskStart()
	p.Steal()
	p.SetState(StateBusy)
	p.RootAdvance(7)

	var r *Recorder
	r.RunBegin(RunConfig{Workers: 4})
	r.Finish("none")
	r.SetPhase("enumerate")
	if r.Phase() != "" {
		t.Fatalf("nil recorder phase = %q, want empty", r.Phase())
	}
	if r.Worker(3) != nil {
		t.Fatal("nil recorder must hand out nil probes")
	}
}

func TestSnapshotSumsWorkers(t *testing.T) {
	r := NewRecorder(RunInfo{Algorithm: "ParAdaMBE", Dataset: "unit", Threads: 3, NU: 10, NV: 20, Edges: 40})
	shared := &tle.Shared{}
	shared.AddMem(1234)
	r.RunBegin(RunConfig{Workers: 3, Shared: shared, MemBudgetBytes: 1 << 20})

	for w := 0; w < 3; w++ {
		p := r.Worker(w)
		for i := 0; i <= w; i++ {
			p.NodeLN()
			p.NodeBit()
			p.Biclique()
		}
		p.Bitmap()
		p.TaskStart()
		p.Steal()
		p.SetState(StateBusy)
		p.RootAdvance(int64(4 * w))
	}

	s := r.Snapshot()
	if s.RunID != r.RunID() || s.Algorithm != "ParAdaMBE" || s.Dataset != "unit" || s.Threads != 3 {
		t.Fatalf("snapshot identity fields wrong: %+v", s)
	}
	if s.Phase != "enumerate" {
		t.Fatalf("phase = %q, want enumerate", s.Phase)
	}
	if s.NodesLN != 6 || s.NodesBit != 6 || s.Nodes != 12 {
		t.Fatalf("node sums = ln %d bit %d total %d, want 6/6/12", s.NodesLN, s.NodesBit, s.Nodes)
	}
	if s.Bicliques != 6 || s.Bitmaps != 3 || s.Tasks != 3 || s.Steals != 3 {
		t.Fatalf("sums wrong: %+v", s)
	}
	if s.RootDone != 9 { // max over workers of RootAdvance(v)+1
		t.Fatalf("RootDone = %d, want 9", s.RootDone)
	}
	if s.RootTotal != 20 { // falls back to RunInfo.NV
		t.Fatalf("RootTotal = %d, want 20", s.RootTotal)
	}
	if s.MemBytes != 1234 || s.MemBudgetBytes != 1<<20 {
		t.Fatalf("mem gauge = %d budget %d", s.MemBytes, s.MemBudgetBytes)
	}
	if s.StopReason != "none" {
		t.Fatalf("stop reason = %q, want none", s.StopReason)
	}
	if len(s.Workers) != 3 {
		t.Fatalf("worker rows = %d, want 3", len(s.Workers))
	}
	for i, w := range s.Workers {
		if w.ID != i || w.State != "busy" {
			t.Fatalf("worker row %d = %+v", i, w)
		}
		if w.Nodes != int64(2*(i+1)) || w.Bicliques != int64(i+1) {
			t.Fatalf("worker row %d counters = %+v", i, w)
		}
	}
}

// TestSnapshotMonotone: every run-total counter must be non-decreasing
// between two snapshots taken around concurrent-looking updates — the
// invariant the CI /debug/progress poller enforces.
func TestSnapshotMonotone(t *testing.T) {
	r := NewRecorder(RunInfo{Threads: 2})
	r.RunBegin(RunConfig{Workers: 2, Frontier: 100})
	p := r.Worker(1)
	prev := r.Snapshot()
	for i := 0; i < 50; i++ {
		p.NodeLN()
		if i%3 == 0 {
			p.Biclique()
		}
		p.RootAdvance(int64(i))
		cur := r.Snapshot()
		if cur.Nodes < prev.Nodes || cur.Bicliques < prev.Bicliques || cur.RootDone < prev.RootDone {
			t.Fatalf("snapshot regressed: %+v -> %+v", prev, cur)
		}
		prev = cur
	}
}

func TestFinishOverridesStopReason(t *testing.T) {
	r := NewRecorder(RunInfo{})
	shared := &tle.Shared{}
	r.RunBegin(RunConfig{Workers: 1, Shared: shared})
	shared.Trip(tle.Canceled)
	if got := r.Snapshot().StopReason; got != "canceled" {
		t.Fatalf("live stop reason = %q, want canceled", got)
	}
	r.Finish("deadline")
	s := r.Snapshot()
	if s.StopReason != "deadline" {
		t.Fatalf("final stop reason = %q, want deadline", s.StopReason)
	}
	if s.Phase != "done" {
		t.Fatalf("phase after Finish = %q, want done", s.Phase)
	}
	for _, w := range s.Workers {
		if w.State != "done" {
			t.Fatalf("worker state after Finish = %q, want done", w.State)
		}
	}
}

func TestWorkerGrowsProbes(t *testing.T) {
	r := NewRecorder(RunInfo{})
	p5 := r.Worker(5)
	if p5 == nil {
		t.Fatal("Worker(5) returned nil on a live recorder")
	}
	if r.Worker(5) != p5 {
		t.Fatal("Worker must be stable per index")
	}
	p5.NodeBit()
	if s := r.Snapshot(); s.NodesBit != 1 || len(s.Workers) != 6 {
		t.Fatalf("grown snapshot = %+v", s)
	}
}

func TestDeadlineRemaining(t *testing.T) {
	r := NewRecorder(RunInfo{})
	r.RunBegin(RunConfig{Workers: 1, Deadline: time.Now().Add(time.Hour)})
	s := r.Snapshot()
	if s.DeadlineMS <= 0 || s.DeadlineMS > 3.7e6 {
		t.Fatalf("DeadlineMS = %v, want ~3.6e6", s.DeadlineMS)
	}
}

func TestWorkerStateStrings(t *testing.T) {
	want := map[WorkerState]string{
		StateIdle: "idle", StateBusy: "busy", StateStealing: "steal",
		StateParked: "park", StateDone: "done",
	}
	for s, name := range want {
		if s.String() != name {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), name)
		}
	}
}
