//go:build race

package obs_test

// raceEnabled reports whether the race detector instruments this build;
// timing-bound tests skip under it.
const raceEnabled = true
