// Package obs is the live observability layer for enumeration runs: a
// long AdaMBE/ParAdaMBE run (the paper's billion-biclique workloads take
// minutes to hours) must be inspectable *while it runs*, not only after
// core.Metrics is merged at the end.
//
// The layer has four pieces, all stdlib-only:
//
//   - Recorder / WorkerProbe: lock-free atomic live counters (nodes
//     expanded with the LN vs BIT split, bicliques emitted, bitmaps built,
//     per-worker busy/steal/park state, root-frontier cursor) that the
//     engine hot paths update cheaply and any goroutine can snapshot
//     mid-run without stopping workers.
//   - Sampler (sampler.go): a goroutine that periodically snapshots a
//     Recorder, derives throughput and a root-frontier ETA, and emits
//     structured JSONL events (run_start, sample, phase, worker_stall,
//     run_end) through a pluggable Sink.
//   - runtime/trace helpers (trace.go): region/log wrappers the engines
//     use to annotate scheduler tasks and LN/BIT phases for `go tool
//     trace`.
//   - /debug HTTP endpoint (http.go): expvar + net/http/pprof + a
//     /debug/progress JSON view of the currently published Recorder.
//
// Cost contract: a nil *WorkerProbe (observability disabled, the default)
// makes every probe method a predictable nil-check branch — measured < 5%
// on the bench-smoke dataset and guarded by TestOverheadSmoke. Enabled,
// each counter is one uncontended atomic add on a worker-private cache
// line.
package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tle"
)

// WorkerState is the live scheduling state of one enumeration worker, as
// exposed in snapshots and the worker-utilization timeline.
type WorkerState int32

const (
	// StateIdle: the worker has not started (or the run has not begun).
	StateIdle WorkerState = iota
	// StateBusy: executing enumeration work.
	StateBusy
	// StateStealing: between tasks, sweeping sibling deques for work.
	StateStealing
	// StateParked: blocked waiting for work to appear.
	StateParked
	// StateDone: the worker exited (pool drained or run stopped).
	StateDone
)

// String names the state as used in the JSON schema.
func (s WorkerState) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateBusy:
		return "busy"
	case StateStealing:
		return "steal"
	case StateParked:
		return "park"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// WorkerProbe carries one worker's live counters. Every method is safe on
// a nil receiver (the disabled path) and safe for one writer (the owning
// worker) with any number of concurrent snapshot readers. The struct is
// padded so two workers' probes never share a cache line.
type WorkerProbe struct {
	nodesLN    atomic.Int64 // enumeration-tree nodes expanded in LN / list mode
	nodesBit   atomic.Int64 // nodes expanded inside bitmap (BIT) subtrees
	bicliques  atomic.Int64 // maximal bicliques counted by this worker
	bitmaps    atomic.Int64 // bitmap CGs materialized
	promotes   atomic.Int64 // LN→BIT subtree promotions at the τ boundary
	arenaReuse atomic.Int64 // spawn detach copies served from the node arena
	tasks      atomic.Int64 // scheduler tasks executed (parallel runs)
	steals     atomic.Int64 // tasks this worker stole from a sibling deque
	root       atomic.Int64 // highest root (first-level V) index entered, +1
	state      atomic.Int32 // WorkerState
	_          [64]byte     // pad to keep neighboring probes off this line
}

// NodeLN counts one node expanded by the list-based procedures (Baseline,
// LN, and the large-node half of Ada).
func (p *WorkerProbe) NodeLN() {
	if p != nil {
		p.nodesLN.Add(1)
	}
}

// NodeBit counts one node expanded by the bitwise procedure.
func (p *WorkerProbe) NodeBit() {
	if p != nil {
		p.nodesBit.Add(1)
	}
}

// Biclique counts one maximal biclique reported by this worker.
func (p *WorkerProbe) Biclique() {
	if p != nil {
		p.bicliques.Add(1)
	}
}

// Bitmap counts one bitmap CG materialization.
func (p *WorkerProbe) Bitmap() {
	if p != nil {
		p.bitmaps.Add(1)
	}
}

// Promote counts one list-procedure subtree switching to the bitwise
// procedure (LN→BIT promotion at the τ boundary).
func (p *WorkerProbe) Promote() {
	if p != nil {
		p.promotes.Add(1)
	}
}

// ArenaReuse counts one parallel spawn whose detach copy was served from
// the worker's recycled-node arena instead of a fresh allocation.
func (p *WorkerProbe) ArenaReuse() {
	if p != nil {
		p.arenaReuse.Add(1)
	}
}

// TaskStart counts one scheduler task picked up by this worker.
func (p *WorkerProbe) TaskStart() {
	if p != nil {
		p.tasks.Add(1)
	}
}

// Steal counts one task this worker took from a sibling's deque.
func (p *WorkerProbe) Steal() {
	if p != nil {
		p.steals.Add(1)
	}
}

// SetState publishes the worker's scheduling state.
func (p *WorkerProbe) SetState(s WorkerState) {
	if p != nil {
		p.state.Store(int32(s))
	}
}

// RootAdvance records that root candidate v (first-level index into the
// ordered V side) has been entered. The run-wide maximum over workers is
// the enumeration-tree frontier the ETA estimate is derived from.
func (p *WorkerProbe) RootAdvance(v int64) {
	if p == nil {
		return
	}
	// Only the root-loop worker writes this; a plain store of v+1 keeps the
	// hot path to one atomic op (the loop is ascending, so it is monotone).
	p.root.Store(v + 1)
}

// RunInfo is the static description of one enumeration run, supplied by
// the caller that builds the Recorder (typically a cmd).
type RunInfo struct {
	// Algorithm is the paper name of the algorithm ("AdaMBE", "ParAdaMBE").
	Algorithm string
	// Dataset names the input (dataset acronym or file path). Optional.
	Dataset string
	// Threads is the requested parallel width (1 for serial runs).
	Threads int
	// NU, NV, Edges describe the graph. Optional, but NV doubles as the
	// default root-frontier size if RunBegin passes 0.
	NU, NV int
	Edges  int64
}

// runSeq disambiguates RunIDs within a process.
var runSeq atomic.Int64

// Recorder is the per-run hub of the live counters: one WorkerProbe per
// worker plus run-level state (phase, stop/budget view, frontier). Create
// one per enumeration, pass it via Options.Obs, and Publish it to make it
// visible to the /debug endpoint.
type Recorder struct {
	info    RunInfo
	id      string
	started time.Time

	mu      sync.Mutex // guards workers growth
	workers atomic.Pointer[[]*WorkerProbe]

	phase     atomic.Pointer[string]
	frontier  atomic.Int64 // root candidates total (|V| of the ordered graph)
	shared    atomic.Pointer[tle.Shared]
	deadline  atomic.Int64 // unix nanos; 0 = none
	memBudget atomic.Int64 // Options.MaxMemoryBytes; 0 = none
	finalStop atomic.Pointer[string]

	// spoolStats, when attached, reads the run's durable-spool counters
	// (flushed bytes/frames/records, fsyncs) for inclusion in snapshots.
	spoolStats atomic.Pointer[func() SpoolStats]
}

// SpoolStats are the durable-emission gauges a spooled run exposes in
// its snapshots: cumulative flushed output, not in-memory buffers. The
// shape mirrors internal/spool's writer stats; obs declares its own
// copy so the dependency points spool-ward only at the wiring layer.
type SpoolStats struct {
	Bytes   int64
	Frames  int64
	Records int64
	Fsyncs  int64
}

// SetSpoolStats attaches a reader for the run's spool counters. fn must
// be safe to call from any goroutine at any point in the run. A nil
// Recorder ignores the call.
func (r *Recorder) SetSpoolStats(fn func() SpoolStats) {
	if r == nil || fn == nil {
		return
	}
	r.spoolStats.Store(&fn)
}

// NewRecorder builds a Recorder for one run. Workers are materialized by
// RunBegin (or lazily by Worker).
func NewRecorder(info RunInfo) *Recorder {
	r := &Recorder{info: info, started: time.Now()}
	r.id = fmt.Sprintf("r%d-%d", runSeq.Add(1), r.started.UnixNano())
	phase := "setup"
	r.phase.Store(&phase)
	empty := []*WorkerProbe{}
	r.workers.Store(&empty)
	return r
}

// RunID returns the process-unique id of this run. Pollers use it to
// detect that the published run changed between two /debug/progress reads.
func (r *Recorder) RunID() string { return r.id }

// Info returns the static run description.
func (r *Recorder) Info() RunInfo { return r.info }

// Started returns the recorder's creation time (the elapsed baseline).
func (r *Recorder) Started() time.Time { return r.started }

// RunConfig is what the engine front door knows when a run starts and the
// Recorder's builder (a cmd, the bench harness) does not: the effective
// worker count, the run's shared stop state and budgets, and the
// root-frontier size.
type RunConfig struct {
	Workers int
	// Shared is the run's tle stop state; snapshots read its memory gauge
	// and stop reason live.
	Shared *tle.Shared
	// Deadline and MemBudgetBytes mirror the run's tle budgets so
	// snapshots can show headroom, not just consumption.
	Deadline       time.Time
	MemBudgetBytes int64
	// Frontier is the number of root candidates (|V| of the ordered
	// graph); 0 falls back to RunInfo.NV.
	Frontier int64
}

// RunBegin is called by the engine front door when enumeration starts: it
// sizes the worker probe set, attaches the run's shared stop state and
// budgets so snapshots can surface the memory gauge and stop reason, sets
// the root-frontier size, and flips the phase to "enumerate".
func (r *Recorder) RunBegin(cfg RunConfig) {
	if r == nil {
		return
	}
	r.ensureWorkers(cfg.Workers)
	if cfg.Shared != nil {
		r.shared.Store(cfg.Shared)
	}
	if !cfg.Deadline.IsZero() {
		r.deadline.Store(cfg.Deadline.UnixNano())
	}
	if cfg.MemBudgetBytes > 0 {
		r.memBudget.Store(cfg.MemBudgetBytes)
	}
	if cfg.Frontier > 0 {
		r.frontier.Store(cfg.Frontier)
	} else if r.info.NV > 0 {
		r.frontier.Store(int64(r.info.NV))
	}
	r.SetPhase("enumerate")
}

// Finish records the run's final stop reason and flips the phase to
// "done". Counters remain readable afterwards.
func (r *Recorder) Finish(stopReason string) {
	if r == nil {
		return
	}
	r.finalStop.Store(&stopReason)
	for _, p := range *r.workers.Load() {
		p.SetState(StateDone)
	}
	r.SetPhase("done")
}

// SetPhase publishes a run phase ("load", "order", "enumerate", "done",
// ...); the sampler turns changes into phase events.
func (r *Recorder) SetPhase(phase string) {
	if r == nil {
		return
	}
	r.phase.Store(&phase)
}

// Phase returns the current phase.
func (r *Recorder) Phase() string {
	if r == nil {
		return ""
	}
	return *r.phase.Load()
}

func (r *Recorder) ensureWorkers(n int) {
	if n < 1 {
		n = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := *r.workers.Load()
	if len(cur) >= n {
		return
	}
	grown := make([]*WorkerProbe, n)
	copy(grown, cur)
	for i := len(cur); i < n; i++ {
		grown[i] = &WorkerProbe{}
	}
	r.workers.Store(&grown)
}

// Worker returns worker w's probe, growing the probe set if needed. A nil
// Recorder returns a nil probe, which disables every counter update.
func (r *Recorder) Worker(w int) *WorkerProbe {
	if r == nil || w < 0 {
		return nil
	}
	if ws := *r.workers.Load(); w < len(ws) {
		return ws[w]
	}
	r.ensureWorkers(w + 1)
	return (*r.workers.Load())[w]
}

// WorkerSnap is one worker's row in a Snapshot.
type WorkerSnap struct {
	ID        int    `json:"id"`
	State     string `json:"state"`
	Nodes     int64  `json:"nodes"`
	Bicliques int64  `json:"bicliques"`
	Tasks     int64  `json:"tasks,omitempty"`
	Steals    int64  `json:"steals,omitempty"`
}

// Snapshot is a consistent-enough point-in-time view of a run: totals are
// sums of per-worker atomic counters read without stopping the workers, so
// individual rows may be skewed by in-flight updates, but every counter is
// monotone non-decreasing over the life of a run.
type Snapshot struct {
	RunID     string  `json:"run_id"`
	Algorithm string  `json:"algorithm,omitempty"`
	Dataset   string  `json:"dataset,omitempty"`
	Threads   int     `json:"threads,omitempty"`
	Phase     string  `json:"phase"`
	ElapsedMS float64 `json:"elapsed_ms"`

	Nodes     int64 `json:"nodes"`
	NodesLN   int64 `json:"nodes_ln"`
	NodesBit  int64 `json:"nodes_bit"`
	Bicliques int64 `json:"bicliques"`
	Bitmaps   int64 `json:"bitmaps"`
	// BitPromotions counts LN→BIT subtree promotions; ArenaReuse counts
	// parallel spawns whose detach copy recycled an arena node.
	BitPromotions int64 `json:"bit_promotions,omitempty"`
	ArenaReuse    int64 `json:"arena_reuse,omitempty"`
	Tasks         int64 `json:"tasks"`
	Steals        int64 `json:"steals"`

	// RootDone/RootTotal is the enumeration-tree frontier: how many
	// first-level (root) candidates have been entered out of |V|.
	RootDone  int64 `json:"root_done"`
	RootTotal int64 `json:"root_total"`

	// MemBytes is the run's live engine-tracked memory gauge, with the
	// soft budget it is judged against (absent when unlimited); StopReason
	// the tle stop state ("none" while running). DeadlineMS is the
	// remaining wall budget (absent without a deadline).
	MemBytes       int64   `json:"mem_bytes"`
	MemBudgetBytes int64   `json:"mem_budget_bytes,omitempty"`
	StopReason     string  `json:"stop_reason"`
	DeadlineMS     float64 `json:"deadline_ms,omitempty"`

	// Durable-spool gauges (zero/absent unless the run writes a spool):
	// cumulative bytes/frames/records flushed to shard files and fsyncs
	// issued. Monotone like every other counter here.
	SpoolBytes   int64 `json:"spool_bytes,omitempty"`
	SpoolFrames  int64 `json:"spool_frames,omitempty"`
	SpoolRecords int64 `json:"spool_records,omitempty"`
	SpoolFsyncs  int64 `json:"spool_fsyncs,omitempty"`

	Workers []WorkerSnap `json:"workers"`
}

// Snapshot reads the live counters. Safe to call from any goroutine at any
// point in the run, including after Finish.
func (r *Recorder) Snapshot() Snapshot {
	s := Snapshot{
		RunID:     r.id,
		Algorithm: r.info.Algorithm,
		Dataset:   r.info.Dataset,
		Threads:   r.info.Threads,
		Phase:     r.Phase(),
		ElapsedMS: float64(time.Since(r.started).Microseconds()) / 1e3,
		RootTotal: r.frontier.Load(),
	}
	for i, p := range *r.workers.Load() {
		ln, bit := p.nodesLN.Load(), p.nodesBit.Load()
		w := WorkerSnap{
			ID:        i,
			State:     WorkerState(p.state.Load()).String(),
			Nodes:     ln + bit,
			Bicliques: p.bicliques.Load(),
			Tasks:     p.tasks.Load(),
			Steals:    p.steals.Load(),
		}
		s.Workers = append(s.Workers, w)
		s.NodesLN += ln
		s.NodesBit += bit
		s.Bicliques += w.Bicliques
		s.Bitmaps += p.bitmaps.Load()
		s.BitPromotions += p.promotes.Load()
		s.ArenaReuse += p.arenaReuse.Load()
		s.Tasks += w.Tasks
		s.Steals += w.Steals
		if root := p.root.Load(); root > s.RootDone {
			s.RootDone = root
		}
	}
	s.Nodes = s.NodesLN + s.NodesBit
	if sh := r.shared.Load(); sh != nil {
		s.MemBytes = sh.MemBytes()
		s.StopReason = sh.Reason().String()
	} else {
		s.StopReason = tle.None.String()
	}
	if final := r.finalStop.Load(); final != nil {
		s.StopReason = *final
	}
	s.MemBudgetBytes = r.memBudget.Load()
	if at := r.deadline.Load(); at != 0 {
		s.DeadlineMS = float64(at-time.Now().UnixNano()) / 1e6
	}
	if fn := r.spoolStats.Load(); fn != nil {
		st := (*fn)()
		s.SpoolBytes = st.Bytes
		s.SpoolFrames = st.Frames
		s.SpoolRecords = st.Records
		s.SpoolFsyncs = st.Fsyncs
	}
	return s
}
