package clique

import (
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// bruteForce enumerates maximal cliques by subset closure (n ≤ 22).
func bruteForce(t *testing.T, g *Graph) []string {
	t.Helper()
	n := g.N()
	if n > 22 {
		t.Fatal("graph too large for oracle")
	}
	adj := make([]uint32, n)
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(int32(v)) {
			adj[v] |= 1 << uint(w)
		}
	}
	isClique := func(set uint32) bool {
		for s := set; s != 0; s &= s - 1 {
			v := trailing(s)
			rest := set &^ (1 << uint(v))
			if rest&^adj[v] != 0 {
				return false
			}
		}
		return true
	}
	var keys []string
	for set := uint32(1); set < 1<<uint(n); set++ {
		if !isClique(set) {
			continue
		}
		// Maximal: no vertex outside adjacent to all members.
		maximal := true
		for v := 0; v < n && maximal; v++ {
			if set&(1<<uint(v)) != 0 {
				continue
			}
			if set&^adj[v] == 0 {
				maximal = false
			}
		}
		if maximal {
			keys = append(keys, maskKey(set))
		}
	}
	sort.Strings(keys)
	return keys
}

func trailing(x uint32) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

func maskKey(set uint32) string {
	var parts []string
	for v := 0; set != 0; v, set = v+1, set>>1 {
		if set&1 != 0 {
			parts = append(parts, strconv.Itoa(v))
		}
	}
	return strings.Join(parts, ",")
}

func sliceKey(c []int32) string {
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = strconv.Itoa(int(v))
	}
	return strings.Join(parts, ",")
}

func collect(t *testing.T, g *Graph, tau int) ([]string, Result) {
	t.Helper()
	var keys []string
	res, err := Enumerate(g, Options{Tau: tau, OnClique: func(c []int32) {
		keys = append(keys, sliceKey(c))
	}})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(keys)
	return keys, res
}

func randomGraph(t *testing.T, seed int64, n, m int) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var edges []Edge
	for i := 0; i < m; i++ {
		a, b := int32(rng.Intn(n)), int32(rng.Intn(n))
		if a != b {
			edges = append(edges, Edge{a, b})
		}
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCrossValidationAgainstOracle(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed + 1000))
		n := 1 + rng.Intn(16)
		m := rng.Intn(n * n)
		g := randomGraph(t, seed, n, m)
		want := bruteForce(t, g)
		for _, tau := range []int{64, 1, 7} {
			got, res := collect(t, g, tau)
			if int64(len(want)) != res.Count {
				t.Fatalf("seed %d tau %d: count %d, want %d", seed, tau, res.Count, len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d tau %d: clique sets differ: %v vs %v", seed, tau, got, want)
				}
			}
		}
	}
}

func TestKnownStructures(t *testing.T) {
	// Complete graph K6: exactly one maximal clique.
	var k6 []Edge
	for a := int32(0); a < 6; a++ {
		for b := a + 1; b < 6; b++ {
			k6 = append(k6, Edge{a, b})
		}
	}
	g, err := FromEdges(6, k6)
	if err != nil {
		t.Fatal(err)
	}
	keys, res := collect(t, g, 64)
	if res.Count != 1 || keys[0] != "0,1,2,3,4,5" {
		t.Fatalf("K6: %v", keys)
	}

	// Edgeless graph: n singleton cliques.
	g2, _ := FromEdges(5, nil)
	_, res2 := collect(t, g2, 64)
	if res2.Count != 5 {
		t.Fatalf("edgeless: %d cliques", res2.Count)
	}

	// Cocktail-party graph K_{k×2} (complement of a perfect matching on 2k
	// vertices): exactly 2^k maximal cliques.
	const k = 6
	var edges []Edge
	for a := int32(0); a < 2*k; a++ {
		for b := a + 1; b < 2*k; b++ {
			if b != a+k || a >= k { // exclude matched pairs (i, i+k)
				if b-a != k {
					edges = append(edges, Edge{a, b})
				}
			}
		}
	}
	g3, err := FromEdges(2*k, edges)
	if err != nil {
		t.Fatal(err)
	}
	_, res3 := collect(t, g3, 64)
	if res3.Count != 1<<k {
		t.Fatalf("cocktail party K_{%d×2}: %d cliques, want %d", k, res3.Count, 1<<k)
	}

	// Path P4: maximal cliques are its 3 edges.
	g4, _ := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	keys4, _ := collect(t, g4, 64)
	want4 := []string{"0,1", "1,2", "2,3"}
	if len(keys4) != 3 || keys4[0] != want4[0] || keys4[1] != want4[1] || keys4[2] != want4[2] {
		t.Fatalf("P4: %v", keys4)
	}
}

func TestTauInvariance(t *testing.T) {
	g := randomGraph(t, 9, 120, 1800)
	ref, res := collect(t, g, 64)
	if res.Count == 0 {
		t.Fatal("degenerate graph")
	}
	for _, tau := range []int{1, 8, 32} {
		got, res2 := collect(t, g, tau)
		if res2.Count != res.Count {
			t.Fatalf("tau %d: count %d, want %d", tau, res2.Count, res.Count)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("tau %d: sets differ", tau)
			}
		}
	}
}

func TestCliquesAreMaximalAndComplete(t *testing.T) {
	g := randomGraph(t, 11, 60, 500)
	if _, err := Enumerate(g, Options{OnClique: func(c []int32) {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				if !g.HasEdge(c[i], c[j]) {
					t.Fatalf("not a clique: %v", c)
				}
			}
		}
		for v := int32(0); v < int32(g.N()); v++ {
			in := false
			for _, x := range c {
				if x == v {
					in = true
				}
			}
			if in {
				continue
			}
			all := true
			for _, x := range c {
				if !g.HasEdge(v, x) {
					all = false
					break
				}
			}
			if all {
				t.Fatalf("clique %v extensible by %d", c, v)
			}
		}
	}}); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := FromEdges(-1, nil); err == nil {
		t.Fatal("negative n accepted")
	}
	if _, err := FromEdges(3, []Edge{{0, 0}}); err == nil {
		t.Fatal("self-loop accepted")
	}
	if _, err := FromEdges(3, []Edge{{0, 5}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	g, _ := FromEdges(3, []Edge{{0, 1}})
	if _, err := Enumerate(g, Options{Tau: 65}); err == nil {
		t.Fatal("tau > 64 accepted")
	}
	if _, err := Enumerate(g, Options{Tau: -1}); err == nil {
		t.Fatal("negative tau accepted")
	}
}

func TestDuplicateEdgesCollapse(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 1}, {1, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
}

func TestDeadline(t *testing.T) {
	g := randomGraph(t, 13, 200, 6000)
	res, err := Enumerate(g, Options{Deadline: time.Now().Add(-time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatal("expired deadline not reported")
	}
}

func TestDegeneracyOrderValid(t *testing.T) {
	g := randomGraph(t, 17, 50, 300)
	pos, order := degeneracyOrder(g)
	if len(order) != g.N() {
		t.Fatalf("order length %d", len(order))
	}
	seen := make([]bool, g.N())
	for i, v := range order {
		if pos[v] != int32(i) {
			t.Fatal("pos/order mismatch")
		}
		if seen[v] {
			t.Fatal("vertex repeated")
		}
		seen[v] = true
	}
}
