// Package clique implements maximal clique enumeration on general
// (unipartite) graphs — the first of the §V transfer targets the paper
// claims for its hybrid computational-subgraph representation ("our hybrid
// representation can be easily used for various subgraph enumeration
// problems like maximal clique enumeration... their computational
// subgraphs shrink during enumeration").
//
// The algorithm is Bron–Kerbosch with pivoting and a degeneracy-ordered
// root loop, and — exactly as AdaMBE does for bicliques — it adaptively
// re-encodes the shrinking computational subgraph (the P ∪ X candidate
// universe) as one-word-per-vertex bitmaps once it fits τ = 64 bits, so
// the inner loops become single AND operations.
package clique

import (
	"fmt"
	"math/bits"
	"sort"
	"time"

	"repro/internal/tle"
	"repro/internal/vset"
)

// Graph is an immutable undirected simple graph in CSR form. Vertex ids
// are dense in [0, N).
type Graph struct {
	n   int
	off []int64
	adj []int32
}

// Edge is an undirected edge {A, B}.
type Edge struct {
	A, B int32
}

// FromEdges builds a Graph with n vertices from an edge list. Self-loops
// are rejected; duplicate edges (in either orientation) collapse.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("clique: negative vertex count %d", n)
	}
	type pair struct{ a, b int32 }
	dir := make([]pair, 0, 2*len(edges))
	for _, e := range edges {
		if e.A < 0 || int(e.A) >= n || e.B < 0 || int(e.B) >= n {
			return nil, fmt.Errorf("clique: edge (%d,%d) out of range [0,%d)", e.A, e.B, n)
		}
		if e.A == e.B {
			return nil, fmt.Errorf("clique: self-loop at %d", e.A)
		}
		dir = append(dir, pair{e.A, e.B}, pair{e.B, e.A})
	}
	sort.Slice(dir, func(i, j int) bool {
		if dir[i].a != dir[j].a {
			return dir[i].a < dir[j].a
		}
		return dir[i].b < dir[j].b
	})
	g := &Graph{n: n, off: make([]int64, n+1)}
	g.adj = make([]int32, 0, len(dir))
	for i, p := range dir {
		if i > 0 && p == dir[i-1] {
			continue
		}
		g.adj = append(g.adj, p.b)
		g.off[p.a+1]++
	}
	for i := 0; i < n; i++ {
		g.off[i+1] += g.off[i]
	}
	return g, nil
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int64 { return int64(len(g.adj)) / 2 }

// Neighbors returns v's sorted adjacency; must not be modified.
func (g *Graph) Neighbors(v int32) []int32 { return g.adj[g.off[v]:g.off[v+1]] }

// Deg returns v's degree.
func (g *Graph) Deg(v int32) int { return int(g.off[v+1] - g.off[v]) }

// HasEdge reports whether {a, b} is an edge.
func (g *Graph) HasEdge(a, b int32) bool {
	row := g.Neighbors(a)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= b })
	return i < len(row) && row[i] == b
}

// Handler receives each maximal clique (sorted ascending). The slice is
// reused; copy to retain.
type Handler func(clique []int32)

// Options configures Enumerate.
type Options struct {
	// Tau is the bitmap threshold on |P ∪ X|; 0 = 64.
	Tau int
	// OnClique receives every maximal clique, if non-nil.
	OnClique Handler
	// Deadline stops enumeration early (Result.TimedOut reports it).
	Deadline time.Time
}

// Result summarizes an enumeration.
type Result struct {
	Count    int64
	TimedOut bool
}

// Enumerate reports every maximal clique of g (isolated vertices are
// maximal cliques of size 1).
func Enumerate(g *Graph, opts Options) (Result, error) {
	tau := opts.Tau
	if tau == 0 {
		tau = 64
	}
	if tau < 0 || tau > 64 {
		return Result{}, fmt.Errorf("clique: tau %d out of range (0, 64]", tau)
	}
	e := &engine{g: g, tau: tau, handler: opts.OnClique, dl: tle.New(opts.Deadline)}
	e.run()
	return Result{Count: e.count, TimedOut: e.timedOut}, nil
}

type engine struct {
	g        *Graph
	tau      int
	handler  Handler
	dl       tle.Deadline
	count    int64
	timedOut bool

	ids  vset.Slab[int32]
	hdrs vset.Slab[[]int32]
	r    []int32 // current clique (shared stack)
}

// run performs the degeneracy-ordered root loop: vertices in degeneracy
// order; each root call has P = later neighbors, X = earlier neighbors —
// the standard linear-degeneracy decomposition of Eppstein et al.
func (e *engine) run() {
	n := e.g.n
	if n == 0 {
		return
	}
	orderPos, order := degeneracyOrder(e.g)
	for _, v := range order {
		if e.timedOut {
			return
		}
		if e.dl.Hit() {
			e.timedOut = true
			return
		}
		mark := e.ids.Mark()
		hmark := e.hdrs.Mark()
		nb := e.g.Neighbors(v)
		p := e.ids.Alloc(len(nb))
		x := e.ids.Alloc(len(nb))
		np, nx := 0, 0
		for _, w := range nb {
			if orderPos[w] > orderPos[v] {
				p[np] = w
				np++
			} else {
				x[nx] = w
				nx++
			}
		}
		e.r = append(e.r[:0], v)
		// Local neighborhoods within this root subproblem, the biclique
		// engine's CG trick transplanted: every deeper intersection uses
		// these cached rows, never the global adjacency.
		e.bk(p[:np], x[:nx])
		e.ids.Release(mark)
		e.hdrs.Release(hmark)
	}
}

// bk is Bron–Kerbosch with pivoting on the current clique e.r, candidates
// P and excluded X (both sorted). It switches to the bitmap kernel when
// the computational subgraph fits τ bits.
func (e *engine) bk(p, x []int32) {
	if e.timedOut {
		return
	}
	if len(p) == 0 {
		if len(x) == 0 {
			e.emit()
		}
		return
	}
	if len(p)+len(x) <= e.tau {
		e.bkBit(p, x)
		return
	}
	if e.dl.Hit() {
		e.timedOut = true
		return
	}

	// Pivot: u ∈ P ∪ X maximizing |N(u) ∩ P|; iterate P \ N(u).
	pivot := p[0]
	best := -1
	for _, cand := range [2][]int32{p, x} {
		for _, u := range cand {
			if m := vset.IntersectLen(p, e.g.Neighbors(u)); m > best {
				best = m
				pivot = u
			}
		}
	}
	mark := e.ids.Mark()
	iter := e.ids.Alloc(len(p))
	nIter := 0
	pnb := e.g.Neighbors(pivot)
	j := 0
	for _, v := range p {
		for j < len(pnb) && pnb[j] < v {
			j++
		}
		if j < len(pnb) && pnb[j] == v {
			continue // covered by the pivot
		}
		iter[nIter] = v
		nIter++
	}

	// Mutable copies of P/X that shrink/grow across iterations.
	curP := e.ids.Alloc(len(p))
	copy(curP, p)
	nP := len(p)
	curX := e.ids.Alloc(len(x) + nIter)
	copy(curX, x)
	nX := len(x)

	for k := 0; k < nIter; k++ {
		if e.dl.Hit() {
			e.timedOut = true
			break
		}
		v := iter[k]
		nb := e.g.Neighbors(v)
		sub := e.ids.Mark()
		p2 := e.ids.Alloc(min(nP, len(nb)))
		np2 := vset.IntersectInto(p2, curP[:nP], nb)
		x2 := e.ids.Alloc(min(nX, len(nb)))
		nx2 := vset.IntersectInto(x2, curX[:nX], nb)
		e.r = append(e.r, v)
		e.bk(p2[:np2], x2[:nx2])
		e.r = e.r[:len(e.r)-1]
		e.ids.Release(sub)

		// P ← P \ {v}; X ← X ∪ {v} (keep both sorted).
		nP = removeSorted(curP[:nP], v)
		nX = insertSorted(curX[:nX+1], nX, v)
	}
	e.ids.Release(mark)
}

// bkBit runs Bron–Kerbosch on a bitmap-encoded computational subgraph:
// the ≤τ vertices of P ∪ X become bit positions, each with a one-word
// local adjacency mask — the BIT technique transplanted from AdaMBE.
func (e *engine) bkBit(p, x []int32) {
	n := len(p) + len(x)
	mark := e.ids.Mark()
	univ := e.ids.Alloc(n)
	copy(univ, p)
	copy(univ[len(p):], x)
	// Masks: adj[i] = bitset of universe members adjacent to univ[i].
	// Built by merging each vertex's global row against the sorted
	// universe... universe is not sorted (p then x), so use a position
	// lookup over the at-most-64 entries.
	var masks [64]uint64
	for i := 0; i < n; i++ {
		nb := e.g.Neighbors(univ[i])
		for j := i + 1; j < n; j++ {
			if containsSorted(nb, univ[j]) {
				masks[i] |= 1 << uint(j)
				masks[j] |= 1 << uint(i)
			}
		}
	}
	var pMask, xMask uint64
	if len(p) > 0 {
		pMask = (uint64(1) << uint(len(p))) - 1
	}
	for i := len(p); i < n; i++ {
		xMask |= 1 << uint(i)
	}
	e.bkBitRec(univ, &masks, pMask, xMask)
	e.ids.Release(mark)
}

func (e *engine) bkBitRec(univ []int32, masks *[64]uint64, p, x uint64) {
	if p == 0 {
		if x == 0 {
			e.emit()
		}
		return
	}
	if e.dl.Hit() {
		e.timedOut = true
		return
	}
	// Pivot from P ∪ X maximizing |N ∩ P|.
	pivot := -1
	best := -1
	for w := p | x; w != 0; w &= w - 1 {
		i := bits.TrailingZeros64(w)
		if m := bits.OnesCount64(masks[i] & p); m > best {
			best = m
			pivot = i
		}
	}
	for w := p &^ masks[pivot]; w != 0; w &= w - 1 {
		i := bits.TrailingZeros64(w)
		bit := uint64(1) << uint(i)
		e.r = append(e.r, univ[i])
		e.bkBitRec(univ, masks, p&masks[i], x&masks[i])
		e.r = e.r[:len(e.r)-1]
		p &^= bit
		x |= bit
	}
}

func (e *engine) emit() {
	e.count++
	if e.handler == nil {
		return
	}
	out := e.ids.Alloc(len(e.r))
	copy(out, e.r)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	e.handler(out)
	e.ids.ShrinkLast(len(out), 0)
}

// degeneracyOrder computes a degeneracy (smallest-last) ordering via
// bucketed peeling; returns position-of-vertex and the order itself.
func degeneracyOrder(g *Graph) (pos []int32, order []int32) {
	n := g.n
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Deg(int32(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	buckets := make([][]int32, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], int32(v))
	}
	pos = make([]int32, n)
	order = make([]int32, 0, n)
	removed := make([]bool, n)
	scan := 0
	for len(order) < n {
		var v int32 = -1
		for d := scan; d <= maxDeg; d++ {
			for len(buckets[d]) > 0 {
				cand := buckets[d][len(buckets[d])-1]
				buckets[d] = buckets[d][:len(buckets[d])-1]
				if !removed[cand] && deg[cand] == d {
					v = cand
					scan = max(d-1, 0)
					break
				}
			}
			if v >= 0 {
				break
			}
		}
		removed[v] = true
		pos[v] = int32(len(order))
		order = append(order, v)
		for _, w := range g.Neighbors(v) {
			if !removed[w] {
				deg[w]--
				buckets[deg[w]] = append(buckets[deg[w]], w)
			}
		}
	}
	return pos, order
}

func removeSorted(s []int32, v int32) int {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	copy(s[i:], s[i+1:])
	return len(s) - 1
}

// insertSorted inserts v into s[:n] (capacity must allow n+1) keeping
// order; returns n+1.
func insertSorted(s []int32, n int, v int32) int {
	i := sort.Search(n, func(i int) bool { return s[i] >= v })
	copy(s[i+1:n+1], s[i:n])
	s[i] = v
	return n + 1
}

func containsSorted(s []int32, v int32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}
