package mbe

import (
	"errors"
	"time"

	"repro/internal/finder"
)

// ErrTimedOut reports that a counting run hit its deadline; the returned
// count is the partial progress.
var ErrTimedOut = errors.New("mbe: deadline exceeded (partial result)")

// Biclique is a concrete biclique with both sides materialized.
type Biclique = finder.Biclique

// FindResult describes a biclique-optimization search outcome.
type FindResult = finder.Result

// FindOptions configures the biclique-optimization searches. These
// problems — maximum edge / balanced / vertex biclique, personalized
// maximum biclique, and size-bounded enumeration — are the §V applications
// the paper positions AdaMBE as a substrate for; all run the AdaMBE engine
// with branch-and-bound pruning.
type FindOptions struct {
	// Threads > 1 searches with ParAdaMBE underneath.
	Threads int
	// Tau is AdaMBE's bitmap threshold; 0 = 64.
	Tau int
	// Deadline stops the search early, returning the best incumbent.
	Deadline time.Time
}

func (o FindOptions) internal() finder.Options {
	return finder.Options{Threads: o.Threads, Tau: o.Tau, Deadline: o.Deadline}
}

// MaximumEdgeBiclique finds a biclique of g maximizing |L|·|R|.
func MaximumEdgeBiclique(g *Graph, opts FindOptions) (FindResult, error) {
	return finder.MaximumEdgeBiclique(g.b, opts.internal())
}

// MaximumBalancedBiclique finds a biclique maximizing min(|L|, |R|); any
// k-subset of each side of the result is an optimal balanced biclique.
func MaximumBalancedBiclique(g *Graph, opts FindOptions) (FindResult, error) {
	return finder.MaximumBalancedBiclique(g.b, opts.internal())
}

// MaximumVertexBiclique finds a biclique maximizing |L| + |R|.
func MaximumVertexBiclique(g *Graph, opts FindOptions) (FindResult, error) {
	return finder.MaximumVertexBiclique(g.b, opts.internal())
}

// PersonalizedMaximumBiclique finds the maximum edge biclique whose R side
// contains the query vertex v ∈ V.
func PersonalizedMaximumBiclique(g *Graph, v int32, opts FindOptions) (FindResult, error) {
	return finder.PersonalizedMaximumBiclique(g.b, v, opts.internal())
}

// EnumerateSizeBounded reports every maximal biclique with |L| ≥ p and
// |R| ≥ q, pruning enumeration subtrees that cannot satisfy the bounds,
// and returns the number of qualifying bicliques.
func EnumerateSizeBounded(g *Graph, p, q int, handler Handler, opts FindOptions) (int64, error) {
	n, _, err := finder.EnumerateSizeBounded(g.b, p, q, handler, opts.internal())
	return n, err
}

// TopKEdgeBicliques returns the k maximal bicliques with the largest
// |L|·|R|, in descending order (ties broken arbitrarily).
func TopKEdgeBicliques(g *Graph, k int, opts FindOptions) ([]Biclique, error) {
	out, _, err := finder.TopKEdgeBicliques(g.b, k, opts.internal())
	return out, err
}

// CountPQBicliques returns the exact number of (p,q)-bicliques — complete
// bipartite subgraphs with exactly p U-vertices and q V-vertices, maximal
// or not. Intended for small q; the count saturates at MaxInt64.
func CountPQBicliques(g *Graph, p, q int, opts FindOptions) (int64, error) {
	n, timedOut, err := finder.CountPQBicliques(g.b, p, q, opts.Deadline)
	if err != nil {
		return 0, err
	}
	if timedOut {
		return n, ErrTimedOut
	}
	return n, nil
}
