package mbe_test

import (
	"math/rand"
	"strings"
	"testing"

	mbe "repro"
)

func rootsTestGraph(t *testing.T, seed int64, nu, nv, m int) *mbe.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]mbe.Edge, m)
	for i := range edges {
		edges[i] = mbe.Edge{U: int32(rng.Intn(nu)), V: int32(rng.Intn(nv))}
	}
	g, err := mbe.FromEdges(nu, nv, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestRootRangeShardsMergeToFullRun: through the public API, digests of
// disjoint [StartRoot, EndRoot) shards merge into the full run's digest
// for every engine that supports the root partition contract, under a
// non-trivial ordering (the range is interpreted in the ordered root
// space, but emitted ids — and hence digests — are in the original id
// space either way).
func TestRootRangeShardsMergeToFullRun(t *testing.T) {
	g := rootsTestGraph(t, 4, 30, 40, 300)
	for _, alg := range []mbe.Algorithm{mbe.AdaMBE, mbe.ParAdaMBE, mbe.AdaMBEBIT, mbe.BBK} {
		base := mbe.Options{Algorithm: alg, Ordering: mbe.OrderRandom, Seed: 5, Threads: 2}

		var full mbe.Digest
		fullOpts := base
		fullOpts.OnBiclique = full.Observe
		if _, err := mbe.Enumerate(g, fullOpts); err != nil {
			t.Fatal(err)
		}

		var merged mbe.Digest
		var count int64
		for _, cut := range [][2]int32{{0, 13}, {13, 29}, {29, 0}} { // EndRoot 0 = |V|
			var d mbe.Digest
			opts := base
			opts.StartRoot, opts.EndRoot = cut[0], cut[1]
			opts.OnBiclique = d.Observe
			res, err := mbe.Enumerate(g, opts)
			if err != nil {
				t.Fatalf("%v shard [%d,%d): %v", alg, cut[0], cut[1], err)
			}
			if res.Count != d.Count {
				t.Errorf("%v shard [%d,%d): result count %d != observed %d", alg, cut[0], cut[1], res.Count, d.Count)
			}
			count += res.Count
			merged.Merge(d)
		}
		if !merged.Equal(full) || count != full.Count {
			t.Errorf("%v: merged shard digest %v (count %d) != full run %v (count %d)",
				alg, merged, count, full, full.Count)
		}
	}
}

// TestRootRangeRejections: the public API's guard rails around
// StartRoot/EndRoot.
func TestRootRangeRejections(t *testing.T) {
	g := rootsTestGraph(t, 6, 10, 10, 40)
	cases := []struct {
		name string
		opts mbe.Options
		want string
	}{
		{"spool", mbe.Options{StartRoot: 1, SpoolDir: t.TempDir()}, "SpoolDir"},
		{"competitor", mbe.Options{Algorithm: mbe.FMBE, EndRoot: 5}, "only supported"},
		{"reversed", mbe.Options{StartRoot: 7, EndRoot: 3}, "reversed"},
		{"past-end", mbe.Options{EndRoot: 11}, "exceeds"},
		{"negative-end", mbe.Options{EndRoot: -2}, "negative"},
	}
	for _, c := range cases {
		_, err := mbe.Enumerate(g, c.opts)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}
