package mbe_test

import (
	"testing"

	mbe "repro"
)

func TestMaximalCliquesThroughAPI(t *testing.T) {
	// Two triangles sharing vertex 2, plus an isolated vertex 5.
	g, err := mbe.NewUndirectedGraph(6, []mbe.UndirectedEdge{
		{A: 0, B: 1}, {A: 1, B: 2}, {A: 0, B: 2},
		{A: 2, B: 3}, {A: 3, B: 4}, {A: 2, B: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 6 || g.NumEdges() != 6 || !g.HasEdge(2, 4) || g.HasEdge(0, 5) {
		t.Fatal("graph accessors wrong")
	}
	var cliques [][]int32
	res, err := mbe.MaximalCliques(g, mbe.CliqueOptions{OnClique: func(c []int32) {
		cliques = append(cliques, append([]int32(nil), c...))
	}})
	if err != nil {
		t.Fatal(err)
	}
	// {0,1,2}, {2,3,4}, {5}.
	if res.Count != 3 || len(cliques) != 3 {
		t.Fatalf("count = %d, cliques = %v", res.Count, cliques)
	}
	sizes := map[int]int{}
	for _, c := range cliques {
		sizes[len(c)]++
	}
	if sizes[3] != 2 || sizes[1] != 1 {
		t.Fatalf("clique sizes wrong: %v", cliques)
	}
}

func TestMaximalCliquesValidation(t *testing.T) {
	if _, err := mbe.NewUndirectedGraph(2, []mbe.UndirectedEdge{{A: 0, B: 0}}); err == nil {
		t.Fatal("self-loop accepted")
	}
	g, _ := mbe.NewUndirectedGraph(2, []mbe.UndirectedEdge{{A: 0, B: 1}})
	if _, err := mbe.MaximalCliques(g, mbe.CliqueOptions{Tau: 100}); err == nil {
		t.Fatal("tau > 64 accepted")
	}
}
