package mbe

import (
	"time"

	"repro/internal/clique"
)

// UndirectedGraph is a general (unipartite) graph for maximal clique
// enumeration — the §V transfer of the paper's hybrid computational-
// subgraph representation to unipartite pattern mining.
type UndirectedGraph struct {
	g *clique.Graph
}

// UndirectedEdge is an undirected edge {A, B}.
type UndirectedEdge = clique.Edge

// NewUndirectedGraph builds an undirected simple graph with n vertices;
// self-loops are rejected, duplicate edges collapse.
func NewUndirectedGraph(n int, edges []UndirectedEdge) (*UndirectedGraph, error) {
	g, err := clique.FromEdges(n, edges)
	if err != nil {
		return nil, err
	}
	return &UndirectedGraph{g}, nil
}

// N returns the vertex count.
func (g *UndirectedGraph) N() int { return g.g.N() }

// NumEdges returns the undirected edge count.
func (g *UndirectedGraph) NumEdges() int64 { return g.g.NumEdges() }

// HasEdge reports whether {a, b} is an edge.
func (g *UndirectedGraph) HasEdge(a, b int32) bool { return g.g.HasEdge(a, b) }

// CliqueHandler receives each maximal clique, sorted ascending. The slice
// is reused by the engine; copy to retain.
type CliqueHandler = clique.Handler

// CliqueOptions configures MaximalCliques.
type CliqueOptions struct {
	// Tau is the bitmap threshold on the computational-subgraph size
	// (0 = 64, the maximum).
	Tau int
	// OnClique receives every maximal clique, if non-nil.
	OnClique CliqueHandler
	// Deadline stops enumeration early.
	Deadline time.Time
}

// CliqueResult summarizes a clique enumeration.
type CliqueResult = clique.Result

// MaximalCliques enumerates every maximal clique of g using
// Bron–Kerbosch with pivoting, degeneracy ordering, and AdaMBE-style
// adaptive bitmap subgraphs.
func MaximalCliques(g *UndirectedGraph, opts CliqueOptions) (CliqueResult, error) {
	return clique.Enumerate(g.g, clique.Options{
		Tau:      opts.Tau,
		OnClique: opts.OnClique,
		Deadline: opts.Deadline,
	})
}
