package mbe_test

import (
	"testing"
	"time"

	mbe "repro"
)

func TestFinderAPIMaximums(t *testing.T) {
	g := paperGraph(t)
	// From the hand enumeration of G0: the maximum edge biclique is
	// ({u0,u4,u5,u6},{v0,v2,v3}) with 12 edges (Figure 1's biclique);
	// ({u0..u2,u4..u7},{v0}) has only 7 edges but 8 vertices.
	edge, err := mbe.MaximumEdgeBiclique(g, mbe.FindOptions{})
	if err != nil || !edge.Found {
		t.Fatalf("edge: %v %v", edge, err)
	}
	if edge.Best.Edges() != 12 {
		t.Fatalf("max edge biclique = %d edges, want 12 (%v)", edge.Best.Edges(), edge.Best)
	}
	bal, err := mbe.MaximumBalancedBiclique(g, mbe.FindOptions{})
	if err != nil || !bal.Found {
		t.Fatalf("balance: %v %v", bal, err)
	}
	if bal.Best.Balance() != 3 { // ({u0,u4,u5,u6},{v0,v2,v3}) → min(4,3)=3
		t.Fatalf("max balance = %d, want 3", bal.Best.Balance())
	}
	vtx, err := mbe.MaximumVertexBiclique(g, mbe.FindOptions{})
	if err != nil || !vtx.Found {
		t.Fatalf("vertex: %v %v", vtx, err)
	}
	if vtx.Best.Vertices() != 8 { // ({u0,u1,u2,u4,u5,u6,u7},{v0})
		t.Fatalf("max vertices = %d, want 8", vtx.Best.Vertices())
	}
}

func TestFinderAPIPersonalized(t *testing.T) {
	g := paperGraph(t)
	// Bicliques containing v1: ({u0,u1,u2},{v0,v1}) with 6 edges,
	// ({u0,u2},{v0,v1,v2}) with 6, ({u0},{v0..v3}) with 4.
	res, err := mbe.PersonalizedMaximumBiclique(g, 1, mbe.FindOptions{})
	if err != nil || !res.Found {
		t.Fatalf("personalized: %v %v", res, err)
	}
	if res.Best.Edges() != 6 {
		t.Fatalf("personalized max = %d edges, want 6 (%v)", res.Best.Edges(), res.Best)
	}
	hasV1 := false
	for _, v := range res.Best.R {
		if v == 1 {
			hasV1 = true
		}
	}
	if !hasV1 {
		t.Fatal("personalized result does not contain v1")
	}
}

func TestFinderAPISizeBounded(t *testing.T) {
	g := paperGraph(t)
	// Maximal bicliques of G0 with |L| ≥ 4 and |R| ≥ 2:
	// ({u0,u4,u5,u6},{v0,v2,v3}), ({u0,u2,u4,u5,u6},{v0,v2}),
	// ({u0,u3,u4,u5,u6},{v2,v3}) → 3.
	n, err := mbe.EnumerateSizeBounded(g, 4, 2, nil, mbe.FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("size-bounded count = %d, want 3", n)
	}
	// Bounds of 1,1 recover the full count.
	n, err = mbe.EnumerateSizeBounded(g, 1, 1, nil, mbe.FindOptions{})
	if err != nil || n != 9 {
		t.Fatalf("1,1 bound = %d, want 9 (%v)", n, err)
	}
}

func TestFinderAPITopK(t *testing.T) {
	g := paperGraph(t)
	top, err := mbe.TopKEdgeBicliques(g, 3, mbe.FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 {
		t.Fatalf("got %d results", len(top))
	}
	// G0's three largest maximal bicliques by edges: 12, 10, 10.
	if top[0].Edges() != 12 || top[1].Edges() != 10 || top[2].Edges() != 10 {
		t.Fatalf("top-3 edges = %d,%d,%d; want 12,10,10",
			top[0].Edges(), top[1].Edges(), top[2].Edges())
	}
	if _, err := mbe.TopKEdgeBicliques(g, 0, mbe.FindOptions{}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestFinderAPIParallelAndDeadline(t *testing.T) {
	g := mbe.GenerateAffiliation(3, mbe.AffiliationConfig{
		NU: 600, NV: 250, Communities: 80, MeanU: 9, MeanV: 5, Density: 0.9, NoiseEdges: 500,
	})
	serial, err := mbe.MaximumEdgeBiclique(g, mbe.FindOptions{})
	if err != nil || !serial.Found {
		t.Fatal(err)
	}
	par, err := mbe.MaximumEdgeBiclique(g, mbe.FindOptions{Threads: 4})
	if err != nil || !par.Found {
		t.Fatal(err)
	}
	if par.Best.Edges() != serial.Best.Edges() {
		t.Fatalf("parallel optimum %d != serial %d", par.Best.Edges(), serial.Best.Edges())
	}
	timed, err := mbe.MaximumEdgeBiclique(g, mbe.FindOptions{Deadline: time.Now().Add(-time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if !timed.TimedOut {
		t.Fatal("deadline not honored")
	}
}

func TestFinderAPICountPQ(t *testing.T) {
	g := paperGraph(t)
	// (1,1)-bicliques = edges = 22.
	n, err := mbe.CountPQBicliques(g, 1, 1, mbe.FindOptions{})
	if err != nil || n != 22 {
		t.Fatalf("(1,1) = %d, %v; want 22", n, err)
	}
	// (4,3): subsets of the Figure 1 biclique's span plus any other
	// 4×3 complete blocks. The only 4×3-complete block in G0 is
	// ({u0,u4,u5,u6},{v0,v2,v3}) itself → exactly 1.
	n, err = mbe.CountPQBicliques(g, 4, 3, mbe.FindOptions{})
	if err != nil || n != 1 {
		t.Fatalf("(4,3) = %d, %v; want 1", n, err)
	}
	if _, err := mbe.CountPQBicliques(g, 0, 1, mbe.FindOptions{}); err == nil {
		t.Fatal("p=0 accepted")
	}
	// Expired deadline surfaces ErrTimedOut.
	big := mbe.GenerateAffiliation(3, mbe.AffiliationConfig{
		NU: 2000, NV: 800, Communities: 250, MeanU: 12, MeanV: 6, Density: 0.9,
	})
	if _, err := mbe.CountPQBicliques(big, 2, 3, mbe.FindOptions{Deadline: time.Now().Add(-time.Second)}); err != mbe.ErrTimedOut {
		t.Fatalf("want ErrTimedOut, got %v", err)
	}
}
