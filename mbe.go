// Package mbe is a library for maximal biclique enumeration (MBE) in
// bipartite graphs, implementing AdaMBE and ParAdaMBE from
//
//	Pan et al., "Enumeration of Billions of Maximal Bicliques in
//	Bipartite Graphs without Using GPUs", SC 2024,
//
// together with the competitor algorithms the paper evaluates (FMBE, PMBE,
// ooMBEA, ParMBE and a CPU simulation of the GPU algorithm GMBE), vertex
// orderings, synthetic dataset generators, and an experiment harness that
// regenerates every table and figure of the paper's evaluation.
//
// Quick start:
//
//	g, err := mbe.LoadKonect("out.github")          // or mbe.Dataset("GH")
//	res, err := mbe.Enumerate(g, mbe.Options{
//	    Algorithm: mbe.ParAdaMBE,
//	    OnBiclique: func(L, R []int32) { /* slices are reused: copy to keep */ },
//	})
//	fmt.Println(res.Count, res.Elapsed)
//
// The enumeration convention follows the paper: a maximal biclique (L, R)
// has L ⊆ U, R ⊆ V, both non-empty, contains every edge between L and R,
// and is not contained in any larger biclique.
package mbe

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/order"
	"repro/internal/spool"
)

// Graph is an immutable bipartite graph G(U, V, E). Obtain one from
// LoadKonect, FromEdges, a generator, or the Dataset registry.
type Graph struct {
	b *graph.Bipartite
}

// Edge is a single (U-side, V-side) edge.
type Edge = graph.Edge

// Stats summarizes a graph (Table I-style row).
type Stats = graph.Stats

// FromEdges builds a graph with the given side sizes from an edge list;
// duplicate edges collapse.
func FromEdges(nu, nv int, edges []Edge) (*Graph, error) {
	b, err := graph.FromEdges(nu, nv, edges)
	if err != nil {
		return nil, err
	}
	return &Graph{b}, nil
}

// LoadKonect reads a KONECT-format edge list ("u v [weight [ts]]" lines,
// '%' comments) from a file, compacting ids and orienting the graph so the
// smaller side is V, as in the paper's setup.
func LoadKonect(path string) (*Graph, error) {
	b, err := graph.ReadKonectFile(path)
	if err != nil {
		return nil, err
	}
	return &Graph{b}, nil
}

// ReadKonect is LoadKonect over an io.Reader.
func ReadKonect(r io.Reader) (*Graph, error) {
	b, err := graph.ReadKonect(r)
	if err != nil {
		return nil, err
	}
	return &Graph{b}, nil
}

// Dataset builds a named synthetic dataset analogue from the registry
// ("GH", "BX", "ceb", "LJ30", …); see internal/datasets for the catalogue.
func Dataset(name string) (*Graph, error) {
	s, ok := datasets.ByName(name)
	if !ok {
		return nil, fmt.Errorf("mbe: unknown dataset %q", name)
	}
	return &Graph{s.Build()}, nil
}

// GenerateUniform returns a uniform random bipartite graph with ~m edges.
func GenerateUniform(seed int64, nu, nv, m int) *Graph {
	return &Graph{gen.Uniform(seed, nu, nv, m)}
}

// GeneratePowerLaw returns a Zipf-degree-skewed bipartite graph.
func GeneratePowerLaw(seed int64, nu, nv, m int, sU, sV float64) *Graph {
	return &Graph{gen.PowerLaw(seed, nu, nv, m, sU, sV)}
}

// AffiliationConfig parameterizes GenerateAffiliation.
type AffiliationConfig = gen.AffiliationConfig

// GenerateAffiliation returns a planted-overlapping-community graph — the
// structure behind membership/rating datasets whose maximal-biclique
// counts explode.
func GenerateAffiliation(seed int64, cfg AffiliationConfig) *Graph {
	return &Graph{gen.Affiliation(seed, cfg)}
}

// NU returns |U|.
func (g *Graph) NU() int { return g.b.NU() }

// NV returns |V|.
func (g *Graph) NV() int { return g.b.NV() }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int64 { return g.b.NumEdges() }

// Stats computes summary statistics.
func (g *Graph) Stats() Stats { return graph.Summarize(g.b) }

// Orient returns the graph with the smaller side designated V (the paper's
// dataset convention). Loaders orient automatically.
func (g *Graph) Orient() *Graph { return &Graph{g.b.Orient()} }

// NeighborsOfV returns the sorted U-neighbors of v; the slice must not be
// modified.
func (g *Graph) NeighborsOfV(v int32) []int32 { return g.b.NeighborsOfV(v) }

// NeighborsOfU returns the sorted V-neighbors of u; the slice must not be
// modified.
func (g *Graph) NeighborsOfU(u int32) []int32 { return g.b.NeighborsOfU(u) }

// HasEdge reports whether (u, v) ∈ E.
func (g *Graph) HasEdge(u, v int32) bool { return g.b.HasEdge(u, v) }

// Signature returns the graph's identity hash — dimensions plus a
// degree-sequence hash, the same value a spool's meta file records.
// The enumeration server keys its graph store and result cache on it.
func (g *Graph) Signature() string { return spool.GraphSignature(g.b) }

// WriteEdgeList writes the graph in KONECT text format (0-based ids).
func (g *Graph) WriteEdgeList(w io.Writer) error { return g.b.WriteEdgeList(w) }

// WriteBinary / ReadBinary give a fast binary cache format for large
// generated graphs.
func (g *Graph) WriteBinary(w io.Writer) error { return g.b.WriteBinary(w) }

// ReadBinary reads a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	b, err := graph.ReadBinary(r)
	if err != nil {
		return nil, err
	}
	return &Graph{b}, nil
}

// Algorithm selects the enumeration algorithm.
type Algorithm int

const (
	// AdaMBE is the paper's serial algorithm (Algorithm 2): local
	// neighborhoods + adaptive bitmaps. The default.
	AdaMBE Algorithm = iota
	// ParAdaMBE is the shared-memory parallel AdaMBE.
	ParAdaMBE
	// BaselineMBE is Algorithm 1 without LN or BIT (for ablations).
	BaselineMBE
	// AdaMBELN enables only the local-neighborhood technique.
	AdaMBELN
	// AdaMBEBIT enables only the bitmap technique.
	AdaMBEBIT
	// FMBE, PMBE, OOMBEA are the serial competitors; ParMBE and GMBESim
	// the parallel ones (GMBESim is the CPU simulation of the GPU
	// algorithm GMBE).
	FMBE
	PMBE
	OOMBEA
	ParMBE
	GMBESim
	// BBK is the pivot-based bipartite Bron–Kerbosch of Baudin et al.
	// (arXiv:2405.04428), a post-paper serial engine. Unlike the paper
	// competitors it honors Ordering and supports the durable spool
	// (SpoolDir/Resume).
	BBK
)

// algorithmTable is the single source of truth for every Algorithm's
// spellings: String, AlgorithmNames and ParseAlgorithm all derive from
// it, so the CLI/daemon help and the "want a|b|…" error can never drift
// from the enum (TestAlgorithmTableDrift pins this). Menu order: the
// AdaMBE family in the paper's ablation order, then every other engine
// sorted case-insensitively by name. name is the canonical CLI/API
// spelling; display, when non-empty, is the distinct String() form.
var algorithmTable = []struct {
	alg     Algorithm
	name    string
	display string
}{
	{alg: AdaMBE, name: "AdaMBE"},
	{alg: ParAdaMBE, name: "ParAdaMBE"},
	{alg: BaselineMBE, name: "Baseline"},
	{alg: AdaMBELN, name: "AdaMBE-LN"},
	{alg: AdaMBEBIT, name: "AdaMBE-BIT"},
	{alg: BBK, name: "BBK"},
	{alg: FMBE, name: "FMBE"},
	{alg: GMBESim, name: "GMBE", display: "GMBE-sim"},
	{alg: OOMBEA, name: "ooMBEA"},
	{alg: ParMBE, name: "ParMBE"},
	{alg: PMBE, name: "PMBE"},
}

// String returns the algorithm's name as used in the paper.
func (a Algorithm) String() string {
	for _, e := range algorithmTable {
		if e.alg == a {
			if e.display != "" {
				return e.display
			}
			return e.name
		}
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// AlgorithmNames lists the CLI/API spellings accepted by ParseAlgorithm,
// in menu order: the AdaMBE family first, then the remaining engines
// sorted case-insensitively. Derived from the same table as String and
// ParseAlgorithm.
var AlgorithmNames = func() []string {
	names := make([]string, len(algorithmTable))
	for i, e := range algorithmTable {
		names[i] = e.name
	}
	return names
}()

// ParseAlgorithm maps a CLI/API algorithm name to its Algorithm,
// case-insensitively ("bbk" and "BBK" both work, as do display forms
// like "GMBE-sim"); the empty string is the default, AdaMBE. It is the
// shared flag plumbing of cmd/mbe and cmd/mbed, so a job submitted to
// the daemon accepts exactly the spellings the CLI does.
func ParseAlgorithm(name string) (Algorithm, error) {
	if name == "" {
		return AdaMBE, nil
	}
	for _, e := range algorithmTable {
		if strings.EqualFold(name, e.name) || (e.display != "" && strings.EqualFold(name, e.display)) {
			return e.alg, nil
		}
	}
	return 0, fmt.Errorf("mbe: unknown algorithm %q (want %s)", name, strings.Join(AlgorithmNames, "|"))
}

// OrderingNames lists the spellings accepted by ParseOrdering.
var OrderingNames = []string{"asc", "rand", "uc", "none"}

// ParseOrdering maps a CLI/API ordering name to its Ordering.
func ParseOrdering(name string) (Ordering, error) {
	switch name {
	case "asc", "":
		return OrderAscendingDegree, nil
	case "rand":
		return OrderRandom, nil
	case "uc":
		return OrderUnilateralCore, nil
	case "none":
		return OrderNone, nil
	}
	return 0, fmt.Errorf("mbe: unknown ordering %q (want %s)", name, strings.Join(OrderingNames, "|"))
}

// Ordering selects the V-side processing order for the AdaMBE family and
// BBK (the paper competitors use their own papers' defaults).
type Ordering int

const (
	// OrderAscendingDegree is AdaMBE's default (Fig. 12's winner).
	OrderAscendingDegree Ordering = iota
	// OrderRandom shuffles V (seeded).
	OrderRandom
	// OrderUnilateralCore is ooMBEA's UC order.
	OrderUnilateralCore
	// OrderNone keeps the input order.
	OrderNone
)

// Handler receives each maximal biclique. Slices are reused by the engine:
// copy them to retain. Parallel algorithms serialize handler calls unless
// Options.UnorderedEmit is set.
type Handler = core.Handler

// Metrics exposes the instrumentation counters behind the paper's
// motivation and breakdown figures (see core.Metrics).
type Metrics = core.Metrics

// Recorder is a live observability hub: attach one via Options.Obs and its
// Snapshot method (or the /debug/progress endpoint, see internal/obs) shows
// in-flight node/biclique counts, per-worker states and root-frontier
// progress while Enumerate is still running. See docs/OBSERVABILITY.md.
type Recorder = obs.Recorder

// RunInfo identifies a run on a Recorder's snapshots and events.
type RunInfo = obs.RunInfo

// NewRecorder returns a Recorder describing one upcoming run.
func NewRecorder(info RunInfo) *Recorder { return obs.NewRecorder(info) }

// Result summarizes an enumeration run.
type Result = core.Result

// StopReason reports why a run returned before exhausting the search tree
// (Result.StopReason); StopNone means the run completed.
type StopReason = core.StopReason

// The stop reasons a Result can carry.
const (
	StopNone         = core.StopNone
	StopDeadline     = core.StopDeadline
	StopCanceled     = core.StopCanceled
	StopMemoryBudget = core.StopMemoryBudget
	StopPanic        = core.StopPanic
)

// ErrPanic is wrapped by the error Enumerate returns when a worker
// panicked; the run still winds down cleanly with partial results.
var ErrPanic = core.ErrPanic

// Options configures Enumerate. The zero value runs serial AdaMBE with
// τ = 64 and ascending-degree ordering.
type Options struct {
	// Algorithm to run; default AdaMBE.
	Algorithm Algorithm
	// Tau is the bitmap threshold τ (AdaMBE family); 0 = 64.
	Tau int
	// Threads for the parallel algorithms; 0 = GOMAXPROCS.
	Threads int
	// Ordering for the AdaMBE family; default ascending degree.
	Ordering Ordering
	// Seed for OrderRandom.
	Seed int64
	// OnBiclique receives every maximal biclique, if non-nil.
	OnBiclique Handler
	// UnorderedEmit lifts the serialized-delivery guarantee for ParAdaMBE:
	// workers call OnBiclique directly and concurrently instead of batching
	// under a shared lock. The handler must be safe for concurrent use.
	// Ignored by the serial algorithms and the competitors.
	UnorderedEmit bool
	// Deadline stops the run early with partial counts and
	// Result.StopReason == StopDeadline.
	Deadline time.Time
	// Context, if non-nil, stops the run when canceled (e.g. on SIGINT via
	// signal.NotifyContext); partial counts are returned with
	// Result.StopReason == StopCanceled.
	Context context.Context
	// MaxMemoryBytes, if positive, is a soft budget on engine-tracked
	// memory (slab scratch, bitmap CGs, parallel task copies, hash/bitmap
	// representations of the competitors). Exceeding it stops the run with
	// partial counts and Result.StopReason == StopMemoryBudget.
	MaxMemoryBytes int64
	// Metrics, if non-nil, gathers instrumentation (AdaMBE family and
	// BBK; the paper competitors ignore it).
	Metrics *Metrics
	// Obs, if non-nil, receives live progress: in-flight counters, worker
	// states and root-frontier advance, snapshottable mid-run (AdaMBE
	// family only). Unlike Metrics, which is merged once at the end, Obs
	// is readable while the run is in flight.
	Obs *Recorder

	// StartRoot and EndRoot bound the run to the root range
	// [StartRoot, EndRoot) of V — interpreted after Ordering is applied,
	// i.e. in the same permuted root order a spool checkpoint watermark
	// uses. EndRoot == 0 means |V|. Every maximal biclique whose minimal
	// R-vertex (in the ordered id space) falls inside the range is emitted
	// exactly once and no others, so disjoint ranges partition the full
	// output — the contract the distributed coordinator (internal/dist,
	// docs/DISTRIBUTED.md) shards on. AdaMBE family and BBK only; an empty
	// or reversed range, or one combined with SpoolDir/Resume (a spool
	// manages its own root frontier) or a paper competitor, is an error.
	StartRoot int32
	EndRoot   int32

	// SpoolDir, if non-empty, streams every maximal biclique to a durable
	// sharded on-disk spool in that directory (created if absent) and
	// periodically checkpoints the run so an interrupted enumeration can
	// be resumed with Resume — see docs/DURABILITY.md. AdaMBE family and
	// BBK only. OnBiclique still fires if set; a spooled run does not
	// need one. Read results back with ReadSpool or SpoolDigest.
	SpoolDir string
	// Resume continues an interrupted spooled run: the spool in SpoolDir
	// is rewound to its last checkpoint and enumeration restarts at the
	// checkpoint watermark. Graph, Ordering and Seed must match the
	// original run (validated); Algorithm, Tau and Threads may differ.
	// Resuming a spool whose checkpoint is marked complete is a no-op
	// returning a zero count. Requires SpoolDir.
	Resume bool
	// SpoolFsync selects the spool's durability/throughput trade-off;
	// the zero value fsyncs at checkpoints only.
	SpoolFsync SpoolFsync
	// SpoolCompress flate-compresses spool frames (per-frame, skipped
	// when a frame doesn't shrink).
	SpoolCompress bool
	// Checkpoint tunes checkpointing; the zero value checkpoints every
	// 10s while a spooled run is in flight.
	Checkpoint CheckpointOptions
	// OnWarning, if non-nil, receives recoverable anomalies a run chose
	// to degrade around instead of failing — today a torn/truncated
	// checkpoint.json found on Resume, which restarts the spool from
	// scratch (see docs/DURABILITY.md). nil drops the warnings.
	OnWarning func(error)
}

// SpoolFsync is the spool fsync policy; see FsyncCheckpoint (default),
// FsyncNever, FsyncAlways.
type SpoolFsync = spool.FsyncMode

// The spool fsync policies.
const (
	// FsyncCheckpoint (default): shards are fsynced when a checkpoint is
	// written; a checkpoint never claims data the OS could still lose.
	FsyncCheckpoint = spool.FsyncCheckpoint
	// FsyncNever: no fsync ever; checkpoints survive process death but
	// not OS crashes.
	FsyncNever = spool.FsyncNever
	// FsyncAlways: fsync after every frame.
	FsyncAlways = spool.FsyncAlways
)

// CheckpointOptions tunes the checkpoint cadence of a spooled run.
type CheckpointOptions struct {
	// Every is the wall-clock interval between checkpoints; 0 means 10s,
	// negative disables periodic checkpoints (one is still written when
	// the run ends, however it ends).
	Every time.Duration
}

// Enumerate runs the configured algorithm and returns the result. The
// reported ids are always in g's id space.
func Enumerate(g *Graph, opts Options) (Result, error) {
	if opts.Resume && opts.SpoolDir == "" {
		return Result{}, fmt.Errorf("mbe: Resume requires SpoolDir")
	}
	if (opts.StartRoot != 0 || opts.EndRoot != 0) && opts.SpoolDir != "" {
		return Result{}, fmt.Errorf("mbe: StartRoot/EndRoot cannot be combined with SpoolDir (a spool manages its own root frontier)")
	}
	switch opts.Algorithm {
	case AdaMBE, ParAdaMBE, BaselineMBE, AdaMBELN, AdaMBEBIT:
		if opts.SpoolDir != "" {
			return enumerateSpooled(g, opts)
		}
		return enumerateCore(g, opts)
	case BBK:
		if opts.SpoolDir != "" {
			return enumerateSpooledBBK(g, opts)
		}
		return enumerateBBK(g, opts)
	case FMBE, PMBE, OOMBEA, ParMBE, GMBESim:
		if opts.SpoolDir != "" {
			return Result{}, fmt.Errorf("mbe: SpoolDir is only supported by the AdaMBE family and BBK, not %s", opts.Algorithm)
		}
		if opts.StartRoot != 0 || opts.EndRoot != 0 {
			return Result{}, fmt.Errorf("mbe: StartRoot/EndRoot are only supported by the AdaMBE family and BBK, not %s", opts.Algorithm)
		}
		alg := map[Algorithm]baselines.Algorithm{
			FMBE: baselines.FMBE, PMBE: baselines.PMBE, OOMBEA: baselines.OOMBEA,
			ParMBE: baselines.ParMBE, GMBESim: baselines.GMBE,
		}[opts.Algorithm]
		return baselines.Run(g.b, alg, baselines.Options{
			Threads:        opts.Threads,
			OnBiclique:     opts.OnBiclique,
			Deadline:       opts.Deadline,
			Context:        opts.Context,
			MaxMemoryBytes: opts.MaxMemoryBytes,
		})
	default:
		return Result{}, fmt.Errorf("mbe: unknown algorithm %d", int(opts.Algorithm))
	}
}

// resolveOrdering applies the requested V-side ordering: it returns the
// (possibly permuted) graph and the permutation used (nil for OrderNone).
// Shared by the AdaMBE-family paths and BBK — both pin the root
// decomposition to the ordering, which is what a spool's checkpoint
// watermark refers to.
func resolveOrdering(g *Graph, opts Options) (*graph.Bipartite, []int32, error) {
	b := g.b
	var perm []int32
	switch opts.Ordering {
	case OrderNone:
	case OrderAscendingDegree, OrderRandom, OrderUnilateralCore:
		kind := map[Ordering]order.Kind{
			OrderAscendingDegree: order.DegreeAscending,
			OrderRandom:          order.Random,
			OrderUnilateralCore:  order.UnilateralCore,
		}[opts.Ordering]
		perm = order.Permutation(b, kind, opts.Seed)
		var err error
		b, err = b.PermuteV(perm)
		if err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, fmt.Errorf("mbe: unknown ordering %d", int(opts.Ordering))
	}
	return b, perm, nil
}

// resolveCoreRun maps an AdaMBE-family Options onto the core engine's
// inputs: the variant, the V-permuted graph, and the permutation used
// (nil for OrderNone).
func resolveCoreRun(g *Graph, opts Options) (*graph.Bipartite, core.Variant, []int32, error) {
	variant := map[Algorithm]core.Variant{
		AdaMBE: core.Ada, ParAdaMBE: core.Ada, BaselineMBE: core.Baseline,
		AdaMBELN: core.LN, AdaMBEBIT: core.BIT,
	}[opts.Algorithm]
	b, perm, err := resolveOrdering(g, opts)
	if err != nil {
		return nil, variant, nil, err
	}
	return b, variant, perm, nil
}

// enumerateBBK runs the BBK engine with the mbe-level ordering applied
// and R ids mapped back to g's id space, like enumerateCore.
func enumerateBBK(g *Graph, opts Options) (Result, error) {
	b, perm, err := resolveOrdering(g, opts)
	if err != nil {
		return Result{}, err
	}
	return baselines.Run(b, baselines.BBK, baselines.Options{
		OnBiclique:     wrapMapBack(opts, perm),
		Deadline:       opts.Deadline,
		Context:        opts.Context,
		MaxMemoryBytes: opts.MaxMemoryBytes,
		Metrics:        opts.Metrics,
		StartRoot:      opts.StartRoot,
		EndRoot:        opts.EndRoot,
	})
}

// coreThreads resolves the effective parallel width (0 = serial).
func (o Options) coreThreads() int {
	if o.Algorithm != ParAdaMBE {
		return 0
	}
	if o.Threads == 0 {
		return defaultThreads()
	}
	return o.Threads
}

func enumerateCore(g *Graph, opts Options) (Result, error) {
	b, variant, perm, err := resolveCoreRun(g, opts)
	if err != nil {
		return Result{}, err
	}

	handler := wrapMapBack(opts, perm)

	return core.Enumerate(b, core.Options{
		Variant:        variant,
		Tau:            opts.Tau,
		Threads:        opts.coreThreads(),
		OnBiclique:     handler,
		UnorderedEmit:  opts.UnorderedEmit,
		Deadline:       opts.Deadline,
		Context:        opts.Context,
		MaxMemoryBytes: opts.MaxMemoryBytes,
		Metrics:        opts.Metrics,
		Obs:            opts.Obs,
		StartRoot:      opts.StartRoot,
		EndRoot:        opts.EndRoot,
	})
}

func defaultThreads() int { return runtime.GOMAXPROCS(0) }

// Count enumerates with default options (serial AdaMBE) and returns only
// the number of maximal bicliques.
func Count(g *Graph) (int64, error) {
	res, err := Enumerate(g, Options{})
	return res.Count, err
}
