// Benchmarks mirroring the paper's evaluation: one Benchmark* per table or
// figure, each exercising the same code path the corresponding mbebench
// experiment drives at full scale (run `mbebench -exp all` for the
// paper-shaped tables; these benches give repeatable testing.B numbers on
// small registry datasets).
package mbe_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	mbe "repro"
)

var (
	dsCache   = map[string]*mbe.Graph{}
	dsCacheMu sync.Mutex
)

func dataset(b *testing.B, name string) *mbe.Graph {
	b.Helper()
	dsCacheMu.Lock()
	defer dsCacheMu.Unlock()
	if g, ok := dsCache[name]; ok {
		return g
	}
	g, err := mbe.Dataset(name)
	if err != nil {
		b.Fatal(err)
	}
	dsCache[name] = g
	return g
}

func runAlgo(b *testing.B, g *mbe.Graph, opts mbe.Options) {
	b.Helper()
	b.ReportAllocs()
	var total int64
	for i := 0; i < b.N; i++ {
		res, err := mbe.Enumerate(g, opts)
		if err != nil {
			b.Fatal(err)
		}
		total += res.Count
	}
	b.ReportMetric(float64(total)/float64(b.N), "bicliques/op")
}

// BenchmarkTable1Stats regenerates a Table I row: dataset construction,
// statistics and the maximal-biclique count.
func BenchmarkTable1Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := mbe.Dataset("UL")
		if err != nil {
			b.Fatal(err)
		}
		st := g.Stats()
		n, err := mbe.Count(g)
		if err != nil || n == 0 || st.Edges == 0 {
			b.Fatalf("count=%d err=%v", n, err)
		}
	}
}

// BenchmarkFig4CGSizes measures the Baseline run that feeds the Fig. 4
// CG-size histogram (instrumented enumeration).
func BenchmarkFig4CGSizes(b *testing.B) {
	g := dataset(b, "UF")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var m mbe.Metrics
		if _, err := mbe.Enumerate(g, mbe.Options{Algorithm: mbe.BaselineMBE, Metrics: &m}); err != nil {
			b.Fatal(err)
		}
		if m.NodesGenerated == 0 {
			b.Fatal("no nodes observed")
		}
	}
}

// BenchmarkFig5Accesses measures the instrumented Baseline run behind the
// Fig. 5 inside/outside-CG access split.
func BenchmarkFig5Accesses(b *testing.B) {
	g := dataset(b, "UF")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var m mbe.Metrics
		if _, err := mbe.Enumerate(g, mbe.Options{Algorithm: mbe.BaselineMBE, Metrics: &m}); err != nil {
			b.Fatal(err)
		}
		if m.AccessesOutsideCG == 0 {
			b.Fatal("no outside accesses measured")
		}
	}
}

// BenchmarkFig8Overall is the Fig. 8 algorithm matrix on a medium dataset:
// four serial and three parallel algorithms.
func BenchmarkFig8Overall(b *testing.B) {
	g := dataset(b, "Mti")
	for _, algo := range []mbe.Algorithm{
		mbe.FMBE, mbe.PMBE, mbe.OOMBEA, mbe.AdaMBE,
		mbe.ParMBE, mbe.GMBESim, mbe.ParAdaMBE,
	} {
		b.Run(algo.String(), func(b *testing.B) {
			runAlgo(b, g, mbe.Options{Algorithm: algo, Threads: 4})
		})
	}
}

// BenchmarkFig9Large drives the large-dataset path (Fig. 9): ParAdaMBE on
// the CebWiki analogue under a TLE budget, reporting enumeration progress.
func BenchmarkFig9Large(b *testing.B) {
	g := dataset(b, "ceb")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := mbe.Enumerate(g, mbe.Options{
			Algorithm: mbe.ParAdaMBE,
			Deadline:  time.Now().Add(5 * time.Second),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Count), "bicliques/op")
	}
}

// BenchmarkFig10Breakdown is the Fig. 10 ablation: Baseline vs AdaMBE-LN
// vs AdaMBE-BIT vs AdaMBE on one of the paper's "larger" datasets.
func BenchmarkFig10Breakdown(b *testing.B) {
	g := dataset(b, "YG")
	for _, algo := range []mbe.Algorithm{
		mbe.BaselineMBE, mbe.AdaMBELN, mbe.AdaMBEBIT, mbe.AdaMBE,
	} {
		b.Run(algo.String(), func(b *testing.B) {
			runAlgo(b, g, mbe.Options{Algorithm: algo})
		})
	}
}

// BenchmarkFig11Tau sweeps the bitmap threshold τ (Fig. 11); the paper's
// expected minimum is at τ = 64.
func BenchmarkFig11Tau(b *testing.B) {
	g := dataset(b, "YG")
	for _, tau := range []int{4, 8, 16, 32, 64, 128, 256, 512} {
		b.Run(fmt.Sprintf("tau=%d", tau), func(b *testing.B) {
			runAlgo(b, g, mbe.Options{Algorithm: mbe.AdaMBEBIT, Tau: tau})
		})
	}
}

// BenchmarkFig12Ordering compares the vertex orderings (Fig. 12): ASC
// (AdaMBE's default), RAND, and ooMBEA's UC order.
func BenchmarkFig12Ordering(b *testing.B) {
	g := dataset(b, "YG")
	for _, o := range []struct {
		name string
		kind mbe.Ordering
	}{
		{"ASC", mbe.OrderAscendingDegree},
		{"RAND", mbe.OrderRandom},
		{"UC", mbe.OrderUnilateralCore},
	} {
		b.Run(o.name, func(b *testing.B) {
			runAlgo(b, g, mbe.Options{Ordering: o.kind, Seed: 7})
		})
	}
}

// BenchmarkFig13Scaling runs AdaMBE across the LiveJournal sample sizes
// (Fig. 13 / Table II).
func BenchmarkFig13Scaling(b *testing.B) {
	for _, name := range []string{"LJ10", "LJ20", "LJ30"} {
		g := dataset(b, name)
		b.Run(name, func(b *testing.B) {
			runAlgo(b, g, mbe.Options{Algorithm: mbe.AdaMBE})
		})
	}
}

// BenchmarkFig14Threads scales ParAdaMBE across thread counts (Fig. 14).
func BenchmarkFig14Threads(b *testing.B) {
	g := dataset(b, "YG")
	for _, t := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", t), func(b *testing.B) {
			runAlgo(b, g, mbe.Options{Algorithm: mbe.ParAdaMBE, Threads: t})
		})
	}
}
