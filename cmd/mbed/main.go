// Command mbed is the maximal-biclique enumeration daemon: a
// crash-safe HTTP service over the same engines and durable spool as
// the mbe CLI. Submit graphs and enumeration jobs, poll status, stream
// results, cancel — all over stdlib HTTP+JSON (see docs/SERVER.md for
// the API).
//
//	mbed -addr :8080 -dir /var/lib/mbed
//
// Robustness properties:
//
//   - Admission control: a bounded job queue, a soft server-wide
//     memory budget and a token-bucket rate limiter gate the two
//     submit endpoints. Over capacity, submits are shed with
//     429 + Retry-After; status, result streaming and /debug keep
//     answering under any load.
//   - Per-job deadlines and retries: each job runs under its own wall
//     deadline and engine-memory budget; retryable failures (spool I/O
//     errors, worker panics, memory-budget trips with parallelism left
//     to shed) are retried with exponential backoff + jitter, resuming
//     from the job's checkpoint; a job out of retry budget lands in a
//     terminal failed state with the error preserved.
//   - Restart recovery: every state transition is an atomic manifest
//     write, every job spools to its own checkpointed directory, so
//     kill -9 at any instant is recoverable — on restart, completed
//     jobs are re-adopted into the result cache and interrupted jobs
//     resume exactly-once from their checkpoints.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address")
		dir         = flag.String("dir", "", "job store directory (required); survives restarts")
		concurrency = flag.Int("concurrency", 0, "executor pool width: jobs enumerating at once (0 = 2)")
		maxJobs     = flag.Int("max-jobs", 0, "admission bound on queued+running jobs (0 = 64)")
		memBudget   = flag.Int64("mem-budget", 0, "server-wide soft memory budget in MiB across admitted jobs (0 = unlimited)")
		jobMem      = flag.Int64("job-mem", 0, "default per-job engine-memory budget in MiB (0 = 256)")
		rate        = flag.Float64("rate", 0, "token-bucket submit rate limit in requests/sec (0 = unlimited)")
		burst       = flag.Int("burst", 0, "token-bucket burst size (0 = 1)")
		deadline    = flag.Duration("deadline", 0, "default per-job wall deadline across attempts (0 = 10m)")
		threads     = flag.Int("t", 0, "default threads for jobs that don't set them (0 = all cores)")
		attempts    = flag.Int("max-attempts", 0, "retry budget per job, including the first attempt (0 = 3)")
		ckptEvery   = flag.Duration("ckpt-every", 0, "per-job checkpoint cadence (0 = default 10s)")
		quiet       = flag.Bool("quiet", false, "suppress operational log lines")
		logFormat   = flag.String("log-format", "text", "structured log format: text or json")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "mbed: -dir is required (the job store must survive restarts)")
		flag.Usage()
		os.Exit(2)
	}

	// Structured operational logs on stderr; -quiet raises the level so
	// only errors (failed jobs, manifest write failures) still surface.
	level := slog.LevelInfo
	if *quiet {
		level = slog.LevelError
	}
	hopts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, hopts)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, hopts)
	default:
		fmt.Fprintf(os.Stderr, "mbed: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler).With("component", "mbed")

	srv, err := server.New(server.Config{
		Dir:                *dir,
		Concurrency:        *concurrency,
		MaxJobs:            *maxJobs,
		MemBudgetBytes:     *memBudget << 20,
		DefaultJobMemBytes: *jobMem << 20,
		RatePerSec:         *rate,
		Burst:              *burst,
		DefaultDeadline:    *deadline,
		DefaultThreads:     *threads,
		MaxAttempts:        *attempts,
		CheckpointEvery:    *ckptEvery,
		Logger:             logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbed:", err)
		os.Exit(1)
	}

	// SIGINT/SIGTERM trigger the same graceful path: stop accepting,
	// drain in-flight handlers (obs.ShutdownServer), cancel running
	// jobs — their manifests stay resumable, so the next start picks
	// them back up. The same handling mbe/mbebench use for runs.
	ctx, cancelSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancelSignals()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbed:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	logger.Info("listening", "addr", ln.Addr().String(), "store", *dir)

	select {
	case <-ctx.Done():
		logger.Info("shutdown_signal")
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "mbed:", err)
		os.Exit(1)
	}
	obs.ShutdownServer(httpSrv, obs.ShutdownTimeout)
	if err := srv.Close(10 * time.Second); err != nil {
		logger.Error("close_error", "err", err)
	}
	logger.Info("stopped", "note", "interrupted jobs resume on next start")
}
