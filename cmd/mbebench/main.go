// Command mbebench regenerates the paper's evaluation tables and figures
// (the equivalent of the original artifact's scripts/gen-fig-*.sh):
//
//	mbebench -exp fig8                 # one experiment
//	mbebench -exp all                  # everything (Table I, Figs. 4-14)
//	mbebench -exp fig9 -tle 60s        # custom TLE budget
//	mbebench -exp fig8 -quick          # smoke-sized run
//	mbebench -exp fig10 -csv results/  # also dump CSV series for plotting
//	mbebench -exp fig12 -datasets BX,GH
//	mbebench -json BENCH_parallel.json # scheduler perf trajectory (no -exp)
//
// Text tables go to stdout; each experiment states which paper figure it
// regenerates and, where applicable, the paper's headline number next to
// the measured one.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id: "+strings.Join(harness.ExperimentNames(), "|")+"|all")
		quick     = flag.Bool("quick", false, "smoke-sized datasets and budgets")
		tle       = flag.Duration("tle", 0, "per-run time budget (default 60s, quick 10s)")
		threads   = flag.Int("t", 0, "parallel width (0 = all cores)")
		csvDir    = flag.String("csv", "", "directory for CSV series (optional)")
		dsets     = flag.String("datasets", "", "comma-separated dataset override (acronyms)")
		jsonOut   = flag.String("json", "", "write the parallel-scheduler benchmark trajectory to this file and exit")
		debugAddr = flag.String("debug-addr", "", "serve /debug (progress, expvar, pprof) on this address and attach live counters to bench runs")
	)
	flag.Parse()

	if *exp == "" && *jsonOut == "" {
		flag.Usage()
		os.Exit(2)
	}
	// SIGINT/SIGTERM cancels the in-flight enumeration (its partial result
	// still prints) and stops the experiment sequence at the next boundary.
	ctx, cancelSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancelSignals()

	cfg := harness.Config{
		Quick:   *quick,
		TLE:     *tle,
		Threads: *threads,
		CSVDir:  *csvDir,
		Context: ctx,
	}
	if *dsets != "" {
		cfg.Datasets = strings.Split(*dsets, ",")
	}
	if *debugAddr != "" {
		bound, shutdown, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mbebench: debug endpoint:", err)
			os.Exit(1)
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "mbebench: serving /debug on http://%s\n", bound)
		cfg.LiveObs = true
	}

	if *jsonOut != "" {
		if err := harness.BenchParallel(cfg, *jsonOut); err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "mbebench: benchmark interrupted; no trajectory written")
			} else {
				fmt.Fprintln(os.Stderr, "mbebench:", err)
			}
			os.Exit(1)
		}
		return
	}

	names := []string{*exp}
	if *exp == "all" {
		names = harness.ExperimentNames()
	}
	for _, name := range names {
		runner, ok := harness.Experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "mbebench: unknown experiment %q (want %s)\n",
				name, strings.Join(harness.ExperimentNames(), ", "))
			os.Exit(2)
		}
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "mbebench: interrupted; remaining experiments skipped")
			os.Exit(1)
		}
		start := time.Now()
		fmt.Printf("=== %s ===\n", name)
		if err := runner(cfg); err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "mbebench: %s interrupted (results above are partial)\n", name)
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "mbebench:", err)
			os.Exit(1)
		}
		fmt.Printf("(%s finished in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
