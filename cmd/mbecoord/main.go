// Command mbecoord runs the distributed-enumeration coordinator — or,
// with -worker, one worker process (docs/DISTRIBUTED.md).
//
// Coordinator: split the root space into ranges, lease them to workers
// with heartbeat expiry, merge their streamed digests, persist
// dist-manifest.json (kill -9 recoverable), and serve progress and
// /metrics:
//
//	mbecoord -addr 127.0.0.1:7600 -dir run.dist -d GH -a ParAdaMBE -ranges 16 -exit-when-done
//
// Worker: lease ranges from a coordinator until the run completes. The
// graph is loaded from the coordinator's config (dataset name or file
// path) and verified by signature:
//
//	mbecoord -worker -coord http://127.0.0.1:7600 -t 4
//
// Restarting the coordinator over the same -dir resumes the run from
// the manifest: finished ranges stay finished, leased ranges are
// re-issued from their confirmed watermarks.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/datasets"
	"repro/internal/dist"
	"repro/internal/graph"
)

func main() {
	var (
		workerMode = flag.Bool("worker", false, "run as a worker against -coord instead of as the coordinator")

		// Coordinator flags.
		addr     = flag.String("addr", "127.0.0.1:7600", "coordinator listen address")
		dir      = flag.String("dir", "", "coordinator state directory (dist-manifest.json); required")
		input    = flag.String("i", "", "input KONECT edge-list file (workers must see the same path)")
		binary   = flag.String("bin", "", "input binary graph cache")
		dataset  = flag.String("d", "", "built-in synthetic dataset name (e.g. GH, BX, ceb)")
		algo     = flag.String("a", "AdaMBE", "algorithm: AdaMBE|ParAdaMBE|Baseline|AdaMBE-LN|AdaMBE-BIT|BBK")
		ord      = flag.String("o", "asc", "vertex ordering: asc|rand|uc|none")
		seed     = flag.Int64("seed", 0, "seed for -o rand")
		tau      = flag.Int("tau", 0, "bitmap threshold τ (0 = 64)")
		ranges   = flag.Int("ranges", 16, "number of root ranges to shard the run into")
		leaseTTL = flag.Duration("lease-ttl", dist.DefaultLeaseTTL, "lease heartbeat expiry")
		durable  = flag.Bool("durable", false, "fsync the manifest directory on terminal state changes")
		exitDone = flag.Bool("exit-when-done", false, "exit (printing the global digest) once every range is done")

		// Worker flags.
		coord   = flag.String("coord", "", "coordinator base URL (worker mode)")
		id      = flag.String("id", "", "worker id (default host-pid)")
		threads = flag.Int("t", 0, "threads for the parallel engine (worker mode)")
	)
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))

	if *workerMode {
		if *coord == "" {
			fmt.Fprintln(os.Stderr, "mbecoord: -worker requires -coord")
			os.Exit(2)
		}
		ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer cancel()
		w := dist.NewWorker(dist.WorkerOptions{
			Coord:   strings.TrimRight(*coord, "/"),
			ID:      *id,
			Threads: *threads,
			Log:     log,
		})
		if err := w.Run(ctx); err != nil && ctx.Err() == nil {
			fmt.Fprintln(os.Stderr, "mbecoord: worker:", err)
			os.Exit(1)
		}
		return
	}

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "mbecoord: -dir is required")
		os.Exit(2)
	}
	g, err := loadGraph(*input, *binary, *dataset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbecoord:", err)
		os.Exit(1)
	}
	spec := dist.Spec{
		Algorithm: *algo,
		Ordering:  *ord,
		OrderSeed: *seed,
		Tau:       *tau,
		Dataset:   *dataset,
		Path:      *input,
		Bin:       *binary,
	}.WithGraph(g)

	c, err := dist.NewCoordinator(dist.CoordOptions{
		Spec: spec, Dir: *dir, Ranges: *ranges,
		LeaseTTL: *leaseTTL, Durable: *durable, Log: log,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbecoord:", err)
		os.Exit(1)
	}
	c.Start()
	defer c.Stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbecoord:", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: c.Handler()}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "mbecoord: serve:", err)
			os.Exit(1)
		}
	}()
	fmt.Printf("mbecoord: coordinating %d ranges on http://%s (dir %s)\n",
		len(dist.SplitRoots(spec.NV, *ranges)), ln.Addr(), *dir)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *exitDone {
		select {
		case <-c.Done():
			d, _ := c.GlobalDigest()
			p := c.Progress()
			fmt.Printf("maximal bicliques: %d\ndigest: %s\nranges: %d elapsed: %v\n",
				d.Count, d.String(), p.RangesTotal,
				(time.Duration(p.ElapsedMS) * time.Millisecond).Round(time.Millisecond))
		case <-ctx.Done():
		}
	} else {
		<-ctx.Done()
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer shutCancel()
	srv.Shutdown(shutCtx) //nolint:errcheck // exiting anyway; manifest is already durable
}

// loadGraph mirrors cmd/mbe's input selection.
func loadGraph(input, binary, dataset string) (*graph.Bipartite, error) {
	n := 0
	for _, s := range []string{input, binary, dataset} {
		if s != "" {
			n++
		}
	}
	if n != 1 {
		return nil, fmt.Errorf("exactly one of -i, -bin, -d is required")
	}
	switch {
	case input != "":
		return graph.ReadKonectFile(input)
	case binary != "":
		f, err := os.Open(binary)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, err := graph.ReadBinary(f)
		if err != nil {
			return nil, err
		}
		return g, nil
	default:
		spec, found := datasets.ByName(dataset)
		if !found {
			return nil, fmt.Errorf("unknown dataset %q", dataset)
		}
		return spec.Build(), nil
	}
}
