// Command mbegen generates synthetic bipartite graphs — the offline
// stand-in for the paper's KONECT downloads (see preprocess/ in the
// original artifact):
//
//	mbegen -d GH -out gh.tsv                # a registry dataset as edge list
//	mbegen -d ceb -bin ceb.bin              # binary cache (fast reload)
//	mbegen -kind uniform -nu 1000 -nv 400 -m 8000 -seed 1 -out g.tsv
//	mbegen -kind powerlaw -nu 5000 -nv 1000 -m 40000 -su 1.4 -sv 1.5 -out g.tsv
//	mbegen -kind affiliation -nu 2000 -nv 800 -comms 300 -mu 8 -mv 4 -dens 0.9 -out g.tsv
//
// Exactly one of -out (KONECT text format) or -bin (binary cache) selects
// the output.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datasets"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	var (
		dataset = flag.String("d", "", "registry dataset name (GH, BX, ceb, LJ30, …)")
		kind    = flag.String("kind", "", "generator: uniform|powerlaw|affiliation")
		nu      = flag.Int("nu", 1000, "|U|")
		nv      = flag.Int("nv", 500, "|V|")
		m       = flag.Int("m", 5000, "edge samples (uniform/powerlaw)")
		su      = flag.Float64("su", 1.4, "U-side Zipf exponent (powerlaw)")
		sv      = flag.Float64("sv", 1.4, "V-side Zipf exponent (powerlaw)")
		comms   = flag.Int("comms", 100, "communities (affiliation)")
		mu      = flag.Int("mu", 8, "mean community size on U (affiliation)")
		mv      = flag.Int("mv", 4, "mean community size on V (affiliation)")
		dens    = flag.Float64("dens", 0.9, "within-community density (affiliation)")
		noise   = flag.Int("noise", 0, "background noise edges (affiliation)")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", "", "output KONECT edge-list path")
		binOut  = flag.String("bin", "", "output binary cache path")
	)
	flag.Parse()

	g, err := build(*dataset, *kind, *nu, *nv, *m, *su, *sv, *comms, *mu, *mv, *dens, *noise, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbegen:", err)
		os.Exit(1)
	}
	st := graph.Summarize(g)
	fmt.Printf("generated: |U|=%d |V|=%d |E|=%d Δ(U)=%d Δ(V)=%d\n",
		st.NU, st.NV, st.Edges, st.MaxDegU, st.MaxDegV)

	switch {
	case *out != "" && *binOut == "":
		f, err := os.Create(*out)
		if err == nil {
			err = g.WriteEdgeList(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mbegen:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	case *binOut != "" && *out == "":
		if err := g.WriteBinaryFile(*binOut); err != nil {
			fmt.Fprintln(os.Stderr, "mbegen:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *binOut)
	default:
		fmt.Fprintln(os.Stderr, "mbegen: exactly one of -out or -bin is required")
		os.Exit(2)
	}
}

func build(dataset, kind string, nu, nv, m int, su, sv float64, comms, mu, mv int, dens float64, noise int, seed int64) (*graph.Bipartite, error) {
	if dataset != "" {
		s, ok := datasets.ByName(dataset)
		if !ok {
			return nil, fmt.Errorf("unknown dataset %q", dataset)
		}
		return s.Build(), nil
	}
	switch kind {
	case "uniform":
		return gen.Uniform(seed, nu, nv, m), nil
	case "powerlaw":
		return gen.PowerLaw(seed, nu, nv, m, su, sv), nil
	case "affiliation":
		return gen.Affiliation(seed, gen.AffiliationConfig{
			NU: nu, NV: nv, Communities: comms,
			MeanU: mu, MeanV: mv, Density: dens, NoiseEdges: noise,
		}), nil
	case "":
		return nil, fmt.Errorf("one of -d or -kind is required")
	default:
		return nil, fmt.Errorf("unknown generator kind %q", kind)
	}
}
